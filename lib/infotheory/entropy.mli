(** Shannon entropy, conditional entropy and (conditional) mutual
    information of random variables over an explicit finite space.

    A random variable is any function of the outcome; values are compared
    with polymorphic equality, so use ints, tuples, lists or strings. All
    quantities are in bits (log base 2). *)

val entropy : 'a Space.t -> ('a -> 'b) -> float
(** [H(X)] *)

val joint_entropy : 'a Space.t -> ('a -> 'b) -> ('a -> 'c) -> float
(** [H(X, Y)] *)

val conditional_entropy : 'a Space.t -> ('a -> 'b) -> given:('a -> 'c) -> float
(** [H(X | Y)] *)

val mutual_information : 'a Space.t -> ('a -> 'b) -> ('a -> 'c) -> float
(** [I(X ; Y) = H(X) - H(X | Y)] *)

val conditional_mutual_information :
  'a Space.t -> ('a -> 'b) -> ('a -> 'c) -> given:('a -> 'd) -> float
(** [I(X ; Y | Z)] *)

val kl_divergence : 'a Space.t -> 'a Space.t -> float
(** [D(P || Q)]; [infinity] if [P] puts mass outside [Q]'s support. *)

val pair : ('a -> 'b) -> ('a -> 'c) -> 'a -> 'b * 'c
(** Combine random variables: [pair x y] is the joint variable [(X, Y)].
    Chain it to build tuples of any arity. *)

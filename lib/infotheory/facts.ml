let tolerance = 1e-9

let log2 x = log x /. log 2.

let entropy_bounds space a =
  let h = Entropy.entropy space a in
  let support = Hashtbl.create 16 in
  Space.iter (fun outcome _ -> Hashtbl.replace support (a outcome) ()) space;
  (h, log2 (float_of_int (Hashtbl.length support)))

let mi_nonneg space a b = Entropy.mutual_information space a b

let conditioning_reduces_entropy space a ~given ~extra =
  Entropy.conditional_entropy space a ~given
  -. Entropy.conditional_entropy space a ~given:(Entropy.pair given extra)

let chain_rule_entropy_residual space a b ~given =
  let lhs = Entropy.conditional_entropy space (Entropy.pair a b) ~given in
  let rhs =
    Entropy.conditional_entropy space a ~given
    +. Entropy.conditional_entropy space b ~given:(Entropy.pair given a)
  in
  abs_float (lhs -. rhs)

let chain_rule_mi_residual space a b c ~given =
  let lhs = Entropy.conditional_mutual_information space (Entropy.pair a b) c ~given in
  let rhs =
    Entropy.conditional_mutual_information space a c ~given
    +. Entropy.conditional_mutual_information space b c ~given:(Entropy.pair a given)
  in
  abs_float (lhs -. rhs)

let cond_independent space a d ~given =
  Entropy.conditional_mutual_information space a d ~given <= tolerance

let proposition_2_3 space ~a ~b ~c ~d =
  if not (cond_independent space a d ~given:c) then None
  else
    Some
      (Entropy.conditional_mutual_information space a b ~given:(Entropy.pair c d)
      -. Entropy.conditional_mutual_information space a b ~given:c)

let proposition_2_4 space ~a ~b ~c ~d =
  if not (cond_independent space a d ~given:(Entropy.pair b c)) then None
  else
    Some
      (Entropy.conditional_mutual_information space a b ~given:c
      -. Entropy.conditional_mutual_information space a b ~given:(Entropy.pair c d))

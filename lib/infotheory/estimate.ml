let log2 x = log x /. log 2.

let counts samples =
  let table = Hashtbl.create 64 in
  Array.iter
    (fun x -> Hashtbl.replace table x (1 + Option.value ~default:0 (Hashtbl.find_opt table x)))
    samples;
  table

let entropy_plugin samples =
  let n = Array.length samples in
  if n = 0 then invalid_arg "Estimate.entropy_plugin: empty";
  let total = float_of_int n in
  Hashtbl.fold
    (fun _ c acc ->
      let p = float_of_int c /. total in
      acc -. (p *. log2 p))
    (counts samples) 0.

let entropy_miller_madow samples =
  let n = Array.length samples in
  if n = 0 then invalid_arg "Estimate.entropy_miller_madow: empty";
  let support = Hashtbl.length (counts samples) in
  entropy_plugin samples +. (float_of_int (support - 1) /. (2. *. float_of_int n *. log 2.))

let mutual_information_plugin joint =
  let xs = Array.map fst joint and ys = Array.map snd joint in
  let v = entropy_plugin xs +. entropy_plugin ys -. entropy_plugin joint in
  if v < 0. then 0. else v

let conditional_mutual_information_plugin samples =
  (* I(X;Y|Z) = H(X,Z) + H(Y,Z) - H(X,Y,Z) - H(Z). *)
  let xz = Array.map (fun (x, (_, z)) -> (x, z)) samples in
  let yz = Array.map (fun (_, (y, z)) -> (y, z)) samples in
  let z = Array.map (fun (_, (_, z)) -> z) samples in
  let v =
    entropy_plugin xz +. entropy_plugin yz -. entropy_plugin samples -. entropy_plugin z
  in
  if v < 0. then 0. else v

let sample_space rng space count =
  if count <= 0 then invalid_arg "Estimate.sample_space: count";
  (* Build the cumulative table once. *)
  let outcomes = ref [] in
  Space.iter (fun x p -> outcomes := (x, p) :: !outcomes) space;
  let table = Array.of_list (List.rev !outcomes) in
  let cumulative = Array.make (Array.length table) 0. in
  let acc = ref 0. in
  Array.iteri
    (fun i (_, p) ->
      acc := !acc +. p;
      cumulative.(i) <- !acc)
    table;
  let draw () =
    let u = Stdx.Prng.float rng in
    let rec bsearch lo hi =
      if lo >= hi then lo
      else
        let mid = (lo + hi) / 2 in
        if cumulative.(mid) < u then bsearch (mid + 1) hi else bsearch lo mid
    in
    fst table.(bsearch 0 (Array.length table - 1))
  in
  Array.init count (fun _ -> draw ())

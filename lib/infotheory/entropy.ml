let log2 x = log x /. log 2.

let marginal space f =
  let table = Hashtbl.create 64 in
  Space.iter
    (fun outcome p ->
      let v = f outcome in
      let cur = Option.value ~default:0. (Hashtbl.find_opt table v) in
      Hashtbl.replace table v (cur +. p))
    space;
  table

let entropy_of_table table =
  Hashtbl.fold (fun _ p acc -> if p > 0. then acc -. (p *. log2 p) else acc) table 0.

let entropy space f = entropy_of_table (marginal space f)

let pair x y outcome = (x outcome, y outcome)

let joint_entropy space x y = entropy space (pair x y)

let conditional_entropy space x ~given = joint_entropy space x given -. entropy space given

let mutual_information space x y =
  (* Computed as H(X) + H(Y) - H(X,Y); clamp tiny negative float noise. *)
  let v = entropy space x +. entropy space y -. joint_entropy space x y in
  if v < 0. && v > -1e-9 then 0. else v

let conditional_mutual_information space x y ~given =
  let v =
    joint_entropy space x given +. joint_entropy space y given
    -. joint_entropy space (pair x y) given
    -. entropy space given
  in
  if v < 0. && v > -1e-9 then 0. else v

let kl_divergence p q =
  let q_table = Hashtbl.create 64 in
  Space.iter (fun x pr -> Hashtbl.replace q_table x pr) q;
  Space.fold
    (fun x pr acc ->
      match Hashtbl.find_opt q_table x with
      | None -> infinity
      | Some qr -> acc +. (pr *. log2 (pr /. qr)))
    p 0.

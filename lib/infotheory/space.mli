(** Finite probability spaces with explicit outcomes.

    The paper's information accounting (Lemmas 3.3–3.5) talks about random
    variables over the sample space of the hard distribution: the edge-drop
    indicators [M_{i,j}], the transcript [Π], the permutation [Σ] and the
    index [J]. For exact (not estimated) computation we enumerate the whole
    space on micro instances: an outcome is a concrete value of all the
    underlying randomness, and every random variable is an ordinary OCaml
    function of the outcome. *)

type 'a t
(** A finitely-supported distribution over outcomes of type ['a]. *)

val of_weighted : ('a * float) list -> 'a t
(** Normalises the weights; requires a positive total. Outcomes may repeat
    (their weights add). *)

val uniform : 'a list -> 'a t

val product : 'a t -> 'b t -> ('a * 'b) t
(** Independent product. *)

val bits : int -> bool array t
(** The uniform distribution over bit vectors of the given length — the
    edge-drop randomness of [D_MM]. Space size [2^k]; keep [k] small. *)

val map : ('a -> 'b) -> 'a t -> 'b t
val condition : ('a -> bool) -> 'a t -> 'a t
(** Conditional distribution; requires positive probability of the event. *)

val support_size : 'a t -> int
val iter : ('a -> float -> unit) -> 'a t -> unit
val fold : ('a -> float -> 'b -> 'b) -> 'a t -> 'b -> 'b
val prob : 'a t -> ('a -> bool) -> float
val expectation : 'a t -> ('a -> float) -> float

val of_samples : 'a array -> 'a t
(** Empirical (plug-in) distribution from samples. *)

(* Outcomes are kept in a flat array; equal outcomes are merged through a
   polymorphic-hash table at construction time, so iteration later is cheap
   and every probability is strictly positive. *)

type 'a t = ('a * float) array

let normalize pairs =
  let table = Hashtbl.create (List.length pairs) in
  let total = ref 0. in
  List.iter
    (fun (x, w) ->
      if w < 0. then invalid_arg "Space: negative weight";
      if w > 0. then begin
        total := !total +. w;
        let cur = Option.value ~default:0. (Hashtbl.find_opt table x) in
        Hashtbl.replace table x (cur +. w)
      end)
    pairs;
  if !total <= 0. then invalid_arg "Space: total weight must be positive";
  let out = Hashtbl.fold (fun x w acc -> (x, w /. !total) :: acc) table [] in
  Array.of_list out

let of_weighted pairs = normalize pairs

let uniform xs = normalize (List.map (fun x -> (x, 1.)) xs)

let product a b =
  let pairs = ref [] in
  Array.iter
    (fun (x, px) -> Array.iter (fun (y, py) -> pairs := ((x, y), px *. py) :: !pairs) b)
    a;
  normalize !pairs

let bits k =
  if k < 0 || k > 22 then invalid_arg "Space.bits: k out of tractable range";
  let outcomes = ref [] in
  for code = 0 to (1 lsl k) - 1 do
    outcomes := Array.init k (fun i -> code land (1 lsl i) <> 0) :: !outcomes
  done;
  uniform !outcomes

let map f d = normalize (Array.to_list (Array.map (fun (x, p) -> (f x, p)) d))

let condition pred d =
  let kept = Array.to_list (Array.of_seq (Seq.filter (fun (x, _) -> pred x) (Array.to_seq d))) in
  if kept = [] then invalid_arg "Space.condition: event has probability zero";
  normalize kept

let support_size d = Array.length d

let iter f d = Array.iter (fun (x, p) -> f x p) d

let fold f d init =
  let acc = ref init in
  iter (fun x p -> acc := f x p !acc) d;
  !acc

let prob d pred = fold (fun x p acc -> if pred x then acc +. p else acc) d 0.

let expectation d f = fold (fun x p acc -> acc +. (p *. f x)) d 0.

let of_samples xs =
  if Array.length xs = 0 then invalid_arg "Space.of_samples: empty";
  normalize (Array.to_list (Array.map (fun x -> (x, 1.)) xs))

(** Executable versions of the paper's information-theory toolbox
    (Fact 2.2 and Propositions 2.3 / 2.4).

    Each check returns the numerical slack of the corresponding
    (in)equality on the given space and random variables; tests assert the
    slack is non-negative (inequalities) or negligible (identities). These
    are the exact tools the lower-bound proof chains together, so having
    them as runnable assertions lets the accounting harness validate every
    step it takes. *)

val tolerance : float
(** Numerical tolerance used by the [*_ok] helpers ([1e-9]). *)

val entropy_bounds : 'a Space.t -> ('a -> 'b) -> float * float
(** Fact 2.2-(1): returns [(H(A), log2 |supp A|)]; the invariant is
    [0 <= H(A) <= log2 |supp A|]. *)

val mi_nonneg : 'a Space.t -> ('a -> 'b) -> ('a -> 'c) -> float
(** Fact 2.2-(2): returns [I(A ; B)], which must be [>= 0]. *)

val conditioning_reduces_entropy :
  'a Space.t -> ('a -> 'b) -> given:('a -> 'c) -> extra:('a -> 'd) -> float
(** Fact 2.2-(3): slack [H(A | B) - H(A | B, C)], must be [>= 0]. *)

val chain_rule_entropy_residual :
  'a Space.t -> ('a -> 'b) -> ('a -> 'c) -> given:('a -> 'd) -> float
(** Fact 2.2-(4): [|H(A,B | C) - H(A | C) - H(B | C,A)|], must be ~0. *)

val chain_rule_mi_residual :
  'a Space.t -> ('a -> 'b) -> ('a -> 'c) -> ('a -> 'd) -> given:('a -> 'e) -> float
(** Fact 2.2-(5): [|I(A,B ; C | D) - I(A ; C | D) - I(B ; C | A,D)|]. *)

val cond_independent :
  'a Space.t -> ('a -> 'b) -> ('a -> 'c) -> given:('a -> 'd) -> bool
(** [A ⊥ D | C], decided as [I(A ; D | C) <= tolerance]. *)

val proposition_2_3 :
  'a Space.t -> a:('a -> 'b) -> b:('a -> 'c) -> c:('a -> 'd) -> d:('a -> 'e) -> float option
(** If the premise [A ⊥ D | C] holds, returns
    [Some (I(A;B | C,D) - I(A;B | C))] (must be [>= 0]); otherwise [None]. *)

val proposition_2_4 :
  'a Space.t -> a:('a -> 'b) -> b:('a -> 'c) -> c:('a -> 'd) -> d:('a -> 'e) -> float option
(** If the premise [A ⊥ D | B,C] holds, returns
    [Some (I(A;B | C) - I(A;B | C,D))] (must be [>= 0]); otherwise [None]. *)

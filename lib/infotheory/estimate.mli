(** Entropy and mutual-information estimation from samples.

    The exact accounting of Lemmas 3.3–3.5 enumerates micro sample spaces;
    for anything larger only sampling is available. This module provides
    the plug-in (maximum-likelihood) estimators plus the Miller–Madow bias
    correction, and the F5b experiment checks them against the exact
    values on the enumerable instances — quantifying how far a sampled
    audit of the information chain can be trusted.

    Plug-in estimates of [H] are biased {e down} by roughly
    [(support − 1) / (2·samples)] nats; MI estimates are biased {e up}.
    The correction compensates the first-order term. *)

val entropy_plugin : 'a array -> float
(** [H] of the empirical distribution of the samples, in bits. *)

val entropy_miller_madow : 'a array -> float
(** Plug-in plus the [(K−1)/(2N ln 2)] correction, [K] = observed support. *)

val mutual_information_plugin : ('a * 'b) array -> float
(** Plug-in [I(X;Y)] from joint samples. *)

val conditional_mutual_information_plugin : ('a * ('b * 'c)) array -> float
(** Plug-in [I(X;Y | Z)] from samples of [(x, (y, z))]. *)

val sample_space : Stdx.Prng.t -> 'a Space.t -> int -> 'a array
(** Draw i.i.d. outcomes from an explicit space (inverse-CDF over the
    stored outcome table). *)

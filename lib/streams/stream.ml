module Graph = Dgraph.Graph

type event = Insert of Graph.edge | Delete of Graph.edge

type t = { n : int; events : event list }

let of_graph g =
  { n = Graph.n g; events = List.rev (Graph.fold_edges (fun u v acc -> Insert (u, v) :: acc) g []) }

let shuffled rng g =
  let edges = Graph.edges_array g in
  Stdx.Prng.shuffle rng edges;
  { n = Graph.n g; events = Array.to_list (Array.map (fun e -> Insert e) edges) }

let with_decoys rng g ~decoys =
  let n = Graph.n g in
  if n < 2 then invalid_arg "Stream.with_decoys: need at least two vertices";
  (* Pick decoy edges absent from the final graph. *)
  let decoy_edges = ref [] and found = ref 0 and attempts = ref 0 in
  while !found < decoys && !attempts < 100 * (decoys + 1) do
    incr attempts;
    let u = Stdx.Prng.int rng n and v = Stdx.Prng.int rng n in
    if u <> v then begin
      let e = Graph.normalize_edge u v in
      if (not (Graph.mem_edge g u v)) && not (List.mem e !decoy_edges) then begin
        decoy_edges := e :: !decoy_edges;
        incr found
      end
    end
  done;
  (* Each decoy contributes an Insert..Delete bracket; shuffle everything
     respecting bracket order by assigning random (open, close) positions. *)
  let real =
    List.rev (Graph.fold_edges (fun u v acc -> (Stdx.Prng.float rng, Insert (u, v)) :: acc) g [])
  in
  let brackets =
    List.concat_map
      (fun e ->
        let a = Stdx.Prng.float rng and b = Stdx.Prng.float rng in
        let open_pos = min a b and close_pos = max a b in
        [ (open_pos, Insert e); (close_pos, Delete e) ])
      !decoy_edges
  in
  let events =
    List.sort (fun (a, _) (b, _) -> compare a b) (real @ brackets) |> List.map snd
  in
  { n; events }

let chunks stream k =
  if k < 1 then invalid_arg "Stream.chunks: k must be positive";
  let events = Array.of_list stream.events in
  let total = Array.length events in
  let base = total / k and extra = total mod k in
  let start = ref 0 in
  List.init k (fun i ->
      let len = base + if i < extra then 1 else 0 in
      let piece = Array.sub events !start len in
      start := !start + len;
      { n = stream.n; events = Array.to_list piece })

let concat pieces =
  match pieces with
  | [] -> invalid_arg "Stream.concat: empty list"
  | first :: rest ->
      List.iter
        (fun p -> if p.n <> first.n then invalid_arg "Stream.concat: size mismatch")
        rest;
      { n = first.n; events = List.concat_map (fun p -> p.events) pieces }

let final_graph stream =
  let present = Hashtbl.create 256 in
  List.iter
    (fun event ->
      match event with
      | Insert (u, v) ->
          let e = Graph.normalize_edge u v in
          if Hashtbl.mem present e then invalid_arg "Stream.final_graph: double insert";
          Hashtbl.replace present e ()
      | Delete (u, v) ->
          let e = Graph.normalize_edge u v in
          if not (Hashtbl.mem present e) then invalid_arg "Stream.final_graph: deleting absent edge";
          Hashtbl.remove present e)
    stream.events;
  let b = Graph.Builder.create ~capacity:(max 1 (Hashtbl.length present)) stream.n in
  Hashtbl.iter (fun (u, v) _ -> Graph.Builder.add_edge b u v) present;
  Graph.Builder.freeze b

let length stream = List.length stream.events

let is_insertion_only stream =
  List.for_all (function Insert _ -> true | Delete _ -> false) stream.events

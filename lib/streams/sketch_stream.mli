(** Linear sketches under dynamic streams.

    AGM sketches are linear transforms of the edge-incidence vectors, so a
    streaming processor can maintain them under arbitrary interleavings of
    insertions and deletions: an insert applies the edge's updates, a
    delete applies their negation. When the stream ends, the stored
    sketches are {e bit-identical} to the ones the one-round distributed
    protocol would have produced on the final graph — the equivalence the
    paper's related-work discussion (dynamic streams vs sketching) rests
    on, here checkable by the byte. *)

type t

val create :
  ?config:Agm.Spanning_forest.config -> n:int -> Sketchmodel.Public_coins.t -> t
(** A streaming processor holding one AGM sampler stack per vertex. *)

val feed : t -> Stream.event -> unit
val feed_all : t -> Stream.t -> unit

val space_bits : t -> int
(** Exact serialised size of the whole state (all vertex sketches). *)

val spanning_forest : t -> Dgraph.Graph.edge list
(** Decode a spanning forest of the current graph from the maintained
    sketches (same referee as the distributed protocol). *)

val messages_equal_distributed : t -> Dgraph.Graph.t -> bool
(** Serialise the streamed per-vertex sketches and compare them, bit for
    bit, with the messages of the one-round protocol run on the given
    graph under the same coins. *)

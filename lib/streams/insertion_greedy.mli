(** Insertion-only streaming baselines for MM and MIS.

    The classical single-pass algorithms the streaming lower bounds cited
    by the paper ([CDK19] for MIS, [AKLY16] for matching) are measured
    against:

    - greedy maximal matching over an edge-arrival stream, [O(n log n)]
      bits of state;
    - greedy MIS over a vertex-arrival stream (each vertex arrives with its
      edges to earlier vertices), [O(n)] bits of state.

    Both are exact; the interesting quantity is the state size, which the
    module accounts in bits like everything else in this repository. *)

type mm_state

val mm_create : int -> mm_state
val mm_feed : mm_state -> Dgraph.Graph.edge -> unit
val mm_result : mm_state -> Dgraph.Matching.t
val mm_state_bits : mm_state -> int
(** Bits to store the current matching: [2 log n] per matched pair plus the
    matched-vertex bitmap. *)

val mm_of_stream : Stream.t -> Dgraph.Matching.t
(** Runs the matching over a stream; raises [Invalid_argument] if the
    stream contains deletions (greedy cannot handle them — that is the
    point of the linear-sketch comparison). *)

type mis_state

val mis_create : int -> mis_state

val mis_feed : mis_state -> vertex:int -> earlier_neighbors:int list -> unit
(** Vertex-arrival: the vertex and its edges to already-arrived vertices. *)

val mis_result : mis_state -> Dgraph.Mis.t
val mis_state_bits : mis_state -> int

val mis_of_graph : Dgraph.Graph.t -> order:int array -> Dgraph.Mis.t
(** Replays a vertex-arrival stream in the given order; the result is
    always a maximal independent set of the graph. *)

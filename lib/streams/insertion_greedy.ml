module Graph = Dgraph.Graph

type mm_state = { n : int; matched : Stdx.Bitset.t; mutable pairs : Graph.edge list }

let mm_create n = { n; matched = Stdx.Bitset.create n; pairs = [] }

let mm_feed state (u, v) =
  if u <> v && (not (Stdx.Bitset.mem state.matched u)) && not (Stdx.Bitset.mem state.matched v)
  then begin
    Stdx.Bitset.add state.matched u;
    Stdx.Bitset.add state.matched v;
    state.pairs <- Graph.normalize_edge u v :: state.pairs
  end

let mm_result state = List.rev state.pairs

let bits_needed n =
  let rec go v acc = if v <= 1 then acc else go ((v + 1) / 2) (acc + 1) in
  max 1 (go n 0)

let mm_state_bits state =
  state.n + (2 * bits_needed state.n * List.length state.pairs)

let mm_of_stream stream =
  let state = mm_create stream.Stream.n in
  List.iter
    (fun event ->
      match event with
      | Stream.Insert e -> mm_feed state e
      | Stream.Delete _ ->
          invalid_arg "Insertion_greedy.mm_of_stream: deletions are not supported")
    stream.Stream.events;
  mm_result state

type mis_state = {
  mis_n : int;
  in_set : Stdx.Bitset.t;
  arrived : Stdx.Bitset.t;
  mutable members : int list;
}

let mis_create n =
  { mis_n = n; in_set = Stdx.Bitset.create n; arrived = Stdx.Bitset.create n; members = [] }

let mis_feed state ~vertex ~earlier_neighbors =
  if Stdx.Bitset.mem state.arrived vertex then
    invalid_arg "Insertion_greedy.mis_feed: vertex arrived twice";
  List.iter
    (fun u ->
      if not (Stdx.Bitset.mem state.arrived u) then
        invalid_arg "Insertion_greedy.mis_feed: neighbor has not arrived")
    earlier_neighbors;
  Stdx.Bitset.add state.arrived vertex;
  if not (List.exists (Stdx.Bitset.mem state.in_set) earlier_neighbors) then begin
    Stdx.Bitset.add state.in_set vertex;
    state.members <- vertex :: state.members
  end

let mis_result state = List.rev state.members

let mis_state_bits state = 2 * state.mis_n

let mis_of_graph g ~order =
  let state = mis_create (Graph.n g) in
  let position = Array.make (Graph.n g) max_int in
  Array.iteri (fun i v -> position.(v) <- i) order;
  Array.iter
    (fun v ->
      let earlier =
        List.rev
          (Graph.fold_neighbors
             (fun u acc -> if position.(u) < position.(v) then u :: acc else acc)
             g v [])
      in
      mis_feed state ~vertex:v ~earlier_neighbors:earlier)
    order;
  mis_result state

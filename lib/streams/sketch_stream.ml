module SF = Agm.Spanning_forest
module L0 = Linear_sketch.L0_sampler
module Graph = Dgraph.Graph

type t = {
  n : int;
  per_vertex : L0.t array array;  (** [per_vertex.(v).(round)] *)
}

let create ?(config = SF.default_config) ~n coins =
  { n; per_vertex = Array.init n (fun _ -> SF.empty_stack config ~n coins) }

let apply t (u, v) ~weight =
  if u < 0 || v < 0 || u >= t.n || v >= t.n then invalid_arg "Sketch_stream: vertex out of range";
  (* Both endpoints' vectors change, with opposite signs on the shared
     coordinate — exactly what the two players would have done. *)
  SF.stack_update ~n:t.n t.per_vertex.(u) u v ~weight;
  SF.stack_update ~n:t.n t.per_vertex.(v) v u ~weight

let feed t event =
  match event with
  | Stream.Insert e -> apply t e ~weight:1
  | Stream.Delete e -> apply t e ~weight:(-1)

let feed_all t stream =
  if stream.Stream.n <> t.n then invalid_arg "Sketch_stream.feed_all: size mismatch";
  List.iter (feed t) stream.Stream.events

let space_bits t =
  Array.fold_left
    (fun acc stack -> acc + Stdx.Bitbuf.Writer.length_bits (SF.write_stack stack))
    0 t.per_vertex

let spanning_forest t = SF.decode_forest ~n:t.n ~per_vertex:t.per_vertex

let messages_equal_distributed t g =
  Graph.n g = t.n
  &&
  (* The one-round players' messages are rebuilt through the exact same
     stack primitives from the final graph (a pure-insertion pass), then
     compared bit for bit: linearity makes the interleaving irrelevant. *)
  let reference = { n = t.n; per_vertex = Array.map (Array.map L0.zero_like) t.per_vertex } in
  let () = feed_all reference (Stream.of_graph g) in
  let equal_stack sa sb =
    let bytes_a, bits_a = Stdx.Bitbuf.Writer.contents (SF.write_stack sa) in
    let bytes_b, bits_b = Stdx.Bitbuf.Writer.contents (SF.write_stack sb) in
    bits_a = bits_b && Bytes.equal bytes_a bytes_b
  in
  Array.for_all2 equal_stack t.per_vertex reference.per_vertex

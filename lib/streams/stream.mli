(** Dynamic graph streams: sequences of edge insertions and deletions.

    The paper's Section 1.1 relates distributed sketching to dynamic
    streams: {e linear} sketches (such as AGM's) are exactly the ones that
    survive deletions, and the known MM/MIS streaming lower bounds
    ([AKLY16], [CDK19]) only constrain that linear subclass. This module
    supplies the stream substrate those comparisons run on. *)

type event = Insert of Dgraph.Graph.edge | Delete of Dgraph.Graph.edge

type t = { n : int; events : event list }

val of_graph : Dgraph.Graph.t -> t
(** Pure insertion stream in lexicographic edge order. *)

val shuffled : Stdx.Prng.t -> Dgraph.Graph.t -> t
(** Pure insertion stream in uniformly random order. *)

val with_decoys : Stdx.Prng.t -> Dgraph.Graph.t -> decoys:int -> t
(** A dynamic stream whose final graph is the given one: besides the real
    insertions, [decoys] random non-final edges are inserted and later
    deleted, at random positions (every deletion follows its insertion). *)

val chunks : t -> int -> t list
(** [chunks s k] splits the event sequence into [k] contiguous pieces
    (the trailing pieces may be empty when [k > length s]); each piece
    keeps [s.n]. Concatenation order is preserved: [concat (chunks s k)]
    has exactly [s]'s events. Multi-pass processors use this to model a
    pass as a sequence of arrival batches. Requires [k >= 1]. *)

val concat : t list -> t
(** [concat pieces] joins event sequences end to end. All pieces must
    agree on [n]; raises [Invalid_argument] on an empty list or a
    mismatch. For insertion-only pieces with disjoint edges, any
    ordering of the pieces freezes to the same final graph
    (qcheck-pinned in [test_streams.ml]). *)

val final_graph : t -> Dgraph.Graph.t
(** Replays the stream; raises [Invalid_argument] on inconsistent events
    (inserting a present edge / deleting an absent one). *)

val length : t -> int

val is_insertion_only : t -> bool

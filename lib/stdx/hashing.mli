(** Pairwise-independent hash families.

    The AGM sparse-recovery stack needs hash functions drawn from a
    pairwise-independent family: [h(x) = ((a*x + b) mod p) mod m] with [p]
    prime above the universe and [a <> 0]. Pairwise independence is exactly
    the property the collision analysis of s-sparse recovery uses. *)

type t
(** One sampled function from the family. *)

val sample : Prng.t -> universe:int -> buckets:int -> t
(** [sample g ~universe ~buckets] draws a function [\[0, universe) ->
    \[0, buckets)]. Requires [universe < 2^31] (field-size constraint). *)

val apply : t -> int -> int
(** [apply h x] evaluates the function; [x] must lie in the universe. *)

val buckets : t -> int
(** The size of the function's range. *)

val mix64 : int -> int
(** A fixed SplitMix64-style bijective mixer on 62-bit integers; handy for
    cheap value fingerprints in tests. *)

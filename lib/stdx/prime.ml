(* Deterministic Miller-Rabin.  For n < 3,215,031,751 the witness set
   {2, 3, 5, 7} is exact, which covers the full [0, 2^31) range we allow. *)

let powmod base exp m =
  let rec go base exp acc =
    if exp = 0 then acc
    else
      let acc = if exp land 1 = 1 then acc * base mod m else acc in
      go (base * base mod m) (exp lsr 1) acc
  in
  go (base mod m) exp 1

let is_prime n =
  if n < 0 || n >= 1 lsl 31 then invalid_arg "Prime.is_prime: out of range";
  if n < 2 then false
  else if n < 4 then true
  else if n land 1 = 0 then false
  else begin
    (* n - 1 = d * 2^s with d odd *)
    let s = ref 0 and d = ref (n - 1) in
    while !d land 1 = 0 do
      incr s;
      d := !d lsr 1
    done;
    let witnesses = [ 2; 3; 5; 7 ] in
    let composite_for a =
      let x = powmod a !d n in
      if x = 1 || x = n - 1 then false
      else
        let rec squares i x =
          if i >= !s - 1 then true
          else
            let x = x * x mod n in
            if x = n - 1 then false else squares (i + 1) x
        in
        squares 0 x
    in
    not (List.exists (fun a -> a mod n <> 0 && composite_for a) witnesses)
  end

let next_prime_above n =
  let rec go c =
    if c >= 1 lsl 31 then invalid_arg "Prime.next_prime_above: exceeds 2^31";
    if is_prime c then c else go (c + 1)
  in
  go (max 2 (n + 1))

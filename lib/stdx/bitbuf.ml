module Writer = struct
  type t = { mutable data : Bytes.t; mutable len_bits : int }

  let create () = { data = Bytes.make 16 '\000'; len_bits = 0 }

  let length_bits w = w.len_bits

  let ensure w extra_bits =
    let needed_bytes = (w.len_bits + extra_bits + 7) / 8 in
    if needed_bytes > Bytes.length w.data then begin
      let cap = max needed_bytes (2 * Bytes.length w.data) in
      let fresh = Bytes.make cap '\000' in
      Bytes.blit w.data 0 fresh 0 (Bytes.length w.data);
      w.data <- fresh
    end

  let bit w b =
    ensure w 1;
    if b then begin
      let byte = w.len_bits / 8 and off = w.len_bits mod 8 in
      let cur = Char.code (Bytes.get w.data byte) in
      Bytes.set w.data byte (Char.chr (cur lor (1 lsl (7 - off))))
    end;
    w.len_bits <- w.len_bits + 1

  let bits w v ~width =
    if width < 0 || width > 62 then invalid_arg "Bitbuf.Writer.bits: width";
    if v < 0 || (width < 62 && v lsr width <> 0) then
      invalid_arg "Bitbuf.Writer.bits: value does not fit width";
    for i = width - 1 downto 0 do
      bit w ((v lsr i) land 1 = 1)
    done

  let rec uvarint w v =
    if v < 0 then invalid_arg "Bitbuf.Writer.uvarint: negative";
    if v < 128 then bits w v ~width:8
    else begin
      bits w (128 lor (v land 127)) ~width:8;
      uvarint w (v lsr 7)
    end

  let int_list w l =
    uvarint w (List.length l);
    List.iter (uvarint w) l

  let string w s =
    if w.len_bits mod 8 = 0 then begin
      (* Aligned fast path: blit whole bytes. *)
      let n = String.length s in
      ensure w (8 * n);
      Bytes.blit_string s 0 w.data (w.len_bits / 8) n;
      w.len_bits <- w.len_bits + (8 * n)
    end
    else String.iter (fun c -> bits w (Char.code c) ~width:8) s

  let contents w = (Bytes.sub w.data 0 ((w.len_bits + 7) / 8), w.len_bits)
end

module Reader = struct
  type t = { data : Bytes.t; len_bits : int; mutable pos : int }

  exception Underflow

  let of_writer w =
    let data, len_bits = Writer.contents w in
    { data; len_bits; pos = 0 }

  let of_string s = { data = Bytes.of_string s; len_bits = 8 * String.length s; pos = 0 }

  let remaining_bits r = r.len_bits - r.pos

  let bit r =
    if r.pos >= r.len_bits then raise Underflow;
    let byte = r.pos / 8 and off = r.pos mod 8 in
    r.pos <- r.pos + 1;
    Char.code (Bytes.get r.data byte) land (1 lsl (7 - off)) <> 0

  (* Closure- and ref-free extraction loop: [bits]/[uvarint] run once
     per serialised sketch counter on the referee hot path, where a
     [ref] accumulator or a captured-environment closure per call is
     exactly the boxed-intermediate churn PERFORMANCE.md bans. All
     state is threaded through arguments of top-level functions. *)
  let rec bits_loop data pos k acc =
    if k = 0 then acc
    else
      let b = (Char.code (Bytes.unsafe_get data (pos lsr 3)) lsr (7 - (pos land 7))) land 1 in
      bits_loop data (pos + 1) (k - 1) ((acc lsl 1) lor b)

  let bits r ~width =
    if width < 0 || width > 62 then invalid_arg "Bitbuf.Reader.bits: width";
    if r.len_bits - r.pos < width then raise Underflow;
    let v = bits_loop r.data r.pos width 0 in
    r.pos <- r.pos + width;
    v

  let rec uvarint_loop r shift acc =
    let group = bits r ~width:8 in
    let acc = acc lor ((group land 127) lsl shift) in
    if group land 128 = 0 then acc else uvarint_loop r (shift + 7) acc

  let uvarint r = uvarint_loop r 0 0

  let int_list r =
    let n = uvarint r in
    List.init n (fun _ -> uvarint r)

  let string r ~len =
    if len < 0 then invalid_arg "Bitbuf.Reader.string: len";
    if remaining_bits r < 8 * len then raise Underflow;
    if r.pos mod 8 = 0 then begin
      (* Aligned fast path: slice whole bytes. *)
      let s = Bytes.sub_string r.data (r.pos / 8) len in
      r.pos <- r.pos + (8 * len);
      s
    end
    else String.init len (fun _ -> Char.chr (bits r ~width:8))
end

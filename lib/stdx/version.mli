(** Build identification.

    One module owns the version string; every binary ([sketchlb], [sketchd],
    [sketchctl]) and the daemon's [stats] RPC surface it, so a deployment or
    a bug report can always name the exact build. *)

val current : string
(** The semantic version of this build, e.g. ["1.6.0"]. *)

val describe : unit -> string
(** Human-readable one-liner: version plus the OCaml compiler it was built
    with. *)

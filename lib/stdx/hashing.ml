type t = { a : int; b : int; p : int; m : int }

let sample g ~universe ~buckets =
  if universe <= 0 || universe >= 1 lsl 31 then invalid_arg "Hashing.sample: universe";
  if buckets <= 0 then invalid_arg "Hashing.sample: buckets";
  let p = Prime.next_prime_above (max universe buckets) in
  let a = 1 + Prng.int g (p - 1) in
  let b = Prng.int g p in
  { a; b; p; m = buckets }

let apply h x =
  if x < 0 || x >= h.p then invalid_arg "Hashing.apply: out of universe";
  ((h.a * x) + h.b) mod h.p mod h.m

let buckets h = h.m

let mix64 x =
  let open Int64 in
  let z = add (of_int x) 0x9E3779B97F4A7C15L in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  to_int (shift_right_logical (logxor z (shift_right_logical z 31)) 2)

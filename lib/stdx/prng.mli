(** Deterministic pseudo-random number generation.

    The library deliberately does not use [Stdlib.Random]: distributed
    sketching protocols need {e public coins} — randomness that is shared
    between every player and the referee, and that can be re-derived by key
    (e.g. "the coins of vertex 17 in round 2") without any communication.
    Everything here is a pure function of the seed, so a protocol run is
    reproducible bit-for-bit.

    The generator is xoshiro256** seeded through SplitMix64, the standard
    combination recommended by the xoshiro authors. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator from a 63-bit seed. *)

val split : t -> int -> t
(** [split g key] derives an independent generator from [g]'s seed and an
    integer [key], without advancing [g]. Two distinct keys give streams that
    are independent for all practical purposes. This is how public coins are
    distributed: every player calls [split coins vertex_id].

    {b Trial-key derivation (the seeding scheme).} [split] is also the
    contract the deterministic parallel engine ({!Parallel}) is built on:
    Monte-Carlo trial [i] of an experiment rooted at generator [root] uses
    exactly [split root i] as its private generator. The derivation is a
    pure function of [(root seed, key)] — one SplitMix64 step of the root
    seed, XORed with [key * 0x9E3779B97F4A7C15], masked to 63 bits, then
    fed to {!create} — and never reads or advances the root's stream
    state, so trial [i]'s randomness is identical whether the trials run
    sequentially, sharded over any number of domains, or in any order.
    This derivation is pinned by golden-value tests in [test_prng.ml];
    changing it silently would break bit-for-bit reproducibility of every
    published table, so any change must update those goldens (and the
    recorded tables) deliberately. *)

val copy : t -> t
(** [copy g] duplicates the state; the copy evolves independently. *)

val bits64 : t -> int64
(** Next 64 uniformly random bits. *)

val int : t -> int -> int
(** [int g bound] is uniform in [\[0, bound)]. Requires [bound > 0]. *)

val int_in : t -> int -> int -> int
(** [int_in g lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val bool : t -> bool
(** A fair coin. *)

val fill_bools : t -> bool array -> unit
(** [fill_bools g a] overwrites every cell of [a] with a fair coin,
    consuming {e exactly} the stream positions repeated {!bool} calls
    would — [fill_bools g a] and [Array.map (fun _ -> bool g) a] produce
    identical contents from identical states (qcheck-pinned). Bulk-fill
    form for hot paths such as [Hard_dist.sample]'s kept masks. *)

val bernoulli : t -> float -> bool
(** [bernoulli g p] is [true] with probability [p]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val permutation : t -> int -> int array
(** [permutation g n] is a uniformly random permutation of [0 .. n-1]. *)

val sample_distinct : t -> int -> int -> int array
(** [sample_distinct g k n] draws [k] distinct values from [\[0, n)]
    uniformly (Floyd's algorithm). Requires [k <= n]. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val subset_mask : t -> int -> p:float -> bool array
(** [subset_mask g n ~p] keeps each of [n] items independently with
    probability [p]; used for the half-edge-dropping step of [D_MM]. *)

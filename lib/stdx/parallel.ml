(* Deterministic Domain-sharded trial execution. Chunks are fixed up front
   ([jobs] contiguous slices of the index range), each worker fills its own
   slice in increasing index order, and slices are concatenated in order —
   so the result never depends on worker interleaving. *)

let default_jobs () = Domain.recommended_domain_count ()

(* In-order sequential fill of [a.(lo .. hi-1)] with [f i]; explicit loop
   because [Array.init]'s evaluation order is unspecified and [f] may be
   effectful (the [jobs = 1] path must be the reference sequential order). *)
let fill_range a f lo hi =
  for i = lo to hi - 1 do
    a.(i) <- Some (f i)
  done

let init ?jobs n f =
  if n < 0 then invalid_arg "Parallel.init: negative length";
  let jobs = max 1 (match jobs with Some j -> j | None -> default_jobs ()) in
  let jobs = min jobs (max 1 n) in
  if n = 0 then [||]
  else begin
    let slots = Array.make n None in
    (* Each chunk fill runs inside a "parallel.chunk" trace span — one per
       worker domain — so a trace shows exactly how the index range was
       sharded and how balanced the shards were. *)
    let traced_fill lo hi =
      (* Warm this domain's scratch arena before the first trial of the
         chunk runs: buffers borrowed by trials are then cache hits from
         trial 2 on (Scratch's "allocated once per chunk" contract). *)
      Scratch.chunk_begin ();
      Trace.begin_ "parallel.chunk";
      match fill_range slots f lo hi with
      | () -> Trace.end_ ()
      | exception e ->
          Trace.end_ ();
          raise e
    in
    (if jobs = 1 then traced_fill 0 n
     else begin
       let chunk = (n + jobs - 1) / jobs in
       let bounds w = (w * chunk, min n ((w + 1) * chunk)) in
       let workers =
         Array.init (jobs - 1) (fun i ->
             let lo, hi = bounds (i + 1) in
             Domain.spawn (fun () -> traced_fill lo hi))
       in
       (* The calling domain takes the first chunk instead of idling. *)
       let first_error =
         let lo, hi = bounds 0 in
         try
           traced_fill lo hi;
           None
         with e -> Some e
       in
       (* Join everything before re-raising so no domain leaks. *)
       let errors =
         Array.to_list workers
         |> List.filter_map (fun d ->
                match Domain.join d with () -> None | exception e -> Some e)
       in
       match (first_error, errors) with
       | Some e, _ | None, e :: _ -> raise e
       | None, [] -> ()
     end);
    Array.map (function Some v -> v | None -> assert false) slots
  end

let map ?jobs f a = init ?jobs (Array.length a) (fun i -> f a.(i))

let map_list ?jobs f l =
  Array.to_list (map ?jobs f (Array.of_list l))

let timed f =
  let t0 = Unix.gettimeofday () in
  let result = f () in
  (result, Unix.gettimeofday () -. t0)

(* A persistent domain pool for long-lived services: [init] above spawns and
   joins domains per call, which is right for one-shot table generation but
   too expensive per request for a server. The pool keeps [workers] domains
   alive, feeding them submitted thunks through one mutex-protected queue.

   Scheduling order is FIFO but completion order is not deterministic —
   unlike [init], the pool is for independent side-effecting jobs (each
   server request carries its own result cell), not for value-returning
   trial sharding. A job that raises is swallowed after running [on_error]:
   a worker domain must never die with jobs still queued. *)
module Pool = struct
  type t = {
    mutex : Mutex.t;
    nonempty : Condition.t;
    queue : (unit -> unit) Queue.t;
    mutable closed : bool;
    mutable domains : unit Domain.t array;
    on_error : exn -> unit;
    workers : int;
  }

  let worker_loop pool =
    let rec next () =
      Mutex.lock pool.mutex;
      let rec wait () =
        if not (Queue.is_empty pool.queue) then Some (Queue.pop pool.queue)
        else if pool.closed then None
        else begin
          Condition.wait pool.nonempty pool.mutex;
          wait ()
        end
      in
      let job = wait () in
      Mutex.unlock pool.mutex;
      match job with
      | None -> ()
      | Some job ->
          (* Stack-free span: pool workers are domains running systhread-free
             loops, but [span] is the safe default and exception-tight. *)
          (try Trace.span "pool.job" job with e -> pool.on_error e);
          next ()
    in
    next ()

  let create ?(on_error = fun _ -> ()) ~workers () =
    if workers < 1 then invalid_arg "Parallel.Pool.create: workers";
    let pool =
      {
        mutex = Mutex.create ();
        nonempty = Condition.create ();
        queue = Queue.create ();
        closed = false;
        domains = [||];
        on_error;
        workers;
      }
    in
    pool.domains <- Array.init workers (fun _ -> Domain.spawn (fun () -> worker_loop pool));
    pool

  let workers pool = pool.workers

  let submit pool job =
    Mutex.lock pool.mutex;
    let accepted = not pool.closed in
    if accepted then begin
      Queue.push job pool.queue;
      Condition.signal pool.nonempty
    end;
    Mutex.unlock pool.mutex;
    accepted

  let shutdown pool =
    Mutex.lock pool.mutex;
    let first = not pool.closed in
    pool.closed <- true;
    Condition.broadcast pool.nonempty;
    Mutex.unlock pool.mutex;
    if first then Array.iter Domain.join pool.domains
end

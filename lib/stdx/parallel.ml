(* Deterministic Domain-sharded trial execution. Chunks are fixed up front
   ([jobs] contiguous slices of the index range), each worker fills its own
   slice in increasing index order, and slices are concatenated in order —
   so the result never depends on worker interleaving. *)

let default_jobs () = Domain.recommended_domain_count ()

(* In-order sequential fill of [a.(lo .. hi-1)] with [f i]; explicit loop
   because [Array.init]'s evaluation order is unspecified and [f] may be
   effectful (the [jobs = 1] path must be the reference sequential order). *)
let fill_range a f lo hi =
  for i = lo to hi - 1 do
    a.(i) <- Some (f i)
  done

let init ?jobs n f =
  if n < 0 then invalid_arg "Parallel.init: negative length";
  let jobs = max 1 (match jobs with Some j -> j | None -> default_jobs ()) in
  let jobs = min jobs (max 1 n) in
  if n = 0 then [||]
  else begin
    let slots = Array.make n None in
    (if jobs = 1 then fill_range slots f 0 n
     else begin
       let chunk = (n + jobs - 1) / jobs in
       let bounds w = (w * chunk, min n ((w + 1) * chunk)) in
       let workers =
         Array.init (jobs - 1) (fun i ->
             let lo, hi = bounds (i + 1) in
             Domain.spawn (fun () -> fill_range slots f lo hi))
       in
       (* The calling domain takes the first chunk instead of idling. *)
       let first_error =
         let lo, hi = bounds 0 in
         try
           fill_range slots f lo hi;
           None
         with e -> Some e
       in
       (* Join everything before re-raising so no domain leaks. *)
       let errors =
         Array.to_list workers
         |> List.filter_map (fun d ->
                match Domain.join d with () -> None | exception e -> Some e)
       in
       match (first_error, errors) with
       | Some e, _ | None, e :: _ -> raise e
       | None, [] -> ()
     end);
    Array.map (function Some v -> v | None -> assert false) slots
  end

let map ?jobs f a = init ?jobs (Array.length a) (fun i -> f a.(i))

let map_list ?jobs f l =
  Array.to_list (map ?jobs f (Array.of_list l))

let timed f =
  let t0 = Unix.gettimeofday () in
  let result = f () in
  (result, Unix.gettimeofday () -. t0)

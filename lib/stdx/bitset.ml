type t = { words : int array; n : int }

let bits_per_word = 62

let create n =
  if n < 0 then invalid_arg "Bitset.create";
  { words = Array.make ((n + bits_per_word - 1) / bits_per_word + 1) 0; n }

let capacity s = s.n

let check s i =
  if i < 0 || i >= s.n then invalid_arg "Bitset: index out of range"

let mem s i =
  check s i;
  s.words.(i / bits_per_word) land (1 lsl (i mod bits_per_word)) <> 0

let add s i =
  check s i;
  let w = i / bits_per_word in
  s.words.(w) <- s.words.(w) lor (1 lsl (i mod bits_per_word))

let remove s i =
  check s i;
  let w = i / bits_per_word in
  s.words.(w) <- s.words.(w) land lnot (1 lsl (i mod bits_per_word))

let popcount x =
  let rec go x acc = if x = 0 then acc else go (x land (x - 1)) (acc + 1) in
  go x 0

let cardinal s = Array.fold_left (fun acc w -> acc + popcount w) 0 s.words

let is_empty s = Array.for_all (fun w -> w = 0) s.words

let clear s = Array.fill s.words 0 (Array.length s.words) 0

let copy s = { words = Array.copy s.words; n = s.n }

let iter f s =
  for i = 0 to s.n - 1 do
    if s.words.(i / bits_per_word) land (1 lsl (i mod bits_per_word)) <> 0 then f i
  done

let fold f s init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) s;
  !acc

let to_list s = List.rev (fold (fun i acc -> i :: acc) s [])

let of_list n l =
  let s = create n in
  List.iter (add s) l;
  s

let union_into dst src =
  if dst.n <> src.n then invalid_arg "Bitset.union_into: capacity mismatch";
  Array.iteri (fun i w -> dst.words.(i) <- dst.words.(i) lor w) src.words

let inter_cardinal a b =
  if a.n <> b.n then invalid_arg "Bitset.inter_cardinal: capacity mismatch";
  let total = ref 0 in
  Array.iteri (fun i w -> total := !total + popcount (w land b.words.(i))) a.words;
  !total

let equal a b = a.n = b.n && Array.for_all2 ( = ) a.words b.words

(* Per-domain keyed scratch arenas (PERFORMANCE.md).

   The hot experiment loops (AGM sketch stacks, L0-sampler decode work
   buffers, CSR fill scratch) want the same transient buffers over and
   over, once per trial. Allocating them fresh each time is exactly the
   GC churn BENCH_tables.json exposes, so instead each worker domain
   owns one arena: a hash table from string keys to flat unboxed
   buffers. A borrow returns the cached buffer when the requested
   length matches the cached one and reallocates otherwise — steady
   workloads (every trial at the same [n]) reallocate once per domain
   and then only reset.

   Ownership is by key: a borrow of key [k] invalidates every earlier
   borrow of [k] in the same domain (same backing store), so each call
   site owns its keys exclusively. Arenas are never shared across
   domains — [domain ()] hands each domain its own via [Domain.DLS] —
   which is what makes borrowing race-free without locks and keeps
   [Parallel]'s determinism contract intact (a buffer's contents are a
   function of the trial that filled it, never of a sibling domain). *)

type buf = Ints of int array | Floats of float array

type t = {
  tbl : (string, buf) Hashtbl.t;
  mutable borrows : int;
  mutable reallocs : int;
}

let create () = { tbl = Hashtbl.create 32; borrows = 0; reallocs = 0 }

(* One arena per domain, created lazily on first use. [Domain.DLS] gives
   every domain (including short-lived [Parallel.init] workers) its own
   slot; a worker that dies takes its arena with it. *)
let key = Domain.DLS.new_key create
let domain () = Domain.DLS.get key

(* Chunk notifications from [Parallel]: today this only warms the
   arena so the table itself is not allocated mid-trial; the counter
   hook point is kept separate from [create] so the contract "the arena
   outlives the chunk's trials" is visible in code. *)
let chunks = Domain.DLS.new_key (fun () -> ref 0)
let chunk_begin () =
  incr (Domain.DLS.get chunks);
  ignore (domain ())

let chunk_count () = !(Domain.DLS.get chunks)

let ints_raw t name len ~zero =
  if len < 0 then invalid_arg "Scratch.ints: negative length";
  t.borrows <- t.borrows + 1;
  match Hashtbl.find_opt t.tbl name with
  | Some (Ints a) when Array.length a = len ->
      if zero then Array.fill a 0 len 0;
      a
  | _ ->
      t.reallocs <- t.reallocs + 1;
      let a = Array.make len 0 in
      Hashtbl.replace t.tbl name (Ints a);
      a

let ints t name len = ints_raw t name len ~zero:true
let dirty_ints t name len = ints_raw t name len ~zero:false

let floats_raw t name len ~zero =
  if len < 0 then invalid_arg "Scratch.floats: negative length";
  t.borrows <- t.borrows + 1;
  match Hashtbl.find_opt t.tbl name with
  | Some (Floats a) when Array.length a = len ->
      if zero then Array.fill a 0 len 0.0;
      a
  | _ ->
      t.reallocs <- t.reallocs + 1;
      let a = Array.make len 0.0 in
      Hashtbl.replace t.tbl name (Floats a);
      a

let floats t name len = floats_raw t name len ~zero:true
let dirty_floats t name len = floats_raw t name len ~zero:false

let clear t =
  Hashtbl.reset t.tbl;
  t.borrows <- 0;
  t.reallocs <- 0

(* Declared after the functions that mutate [t]: the [stats] fields
   share names with [t]'s mutable ones and would otherwise shadow them
   in field resolution. *)
type stats = { keys : int; borrows : int; reallocs : int; live_words : int }

let stats t =
  let live_words =
    Hashtbl.fold
      (fun _ b acc ->
        acc
        + (match b with
          | Ints a -> 1 + Array.length a
          | Floats a -> 1 + Array.length a))
      t.tbl 0
  in
  { keys = Hashtbl.length t.tbl; borrows = t.borrows; reallocs = t.reallocs; live_words }

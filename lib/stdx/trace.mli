(** Low-overhead, domain-safe span tracing with Chrome [trace_event] export.

    Every layer of the system — the trial engine, the graph freeze
    pipeline, the experiment registry, the whole sketchd request path —
    records {e spans} (named intervals), {e instants} (point events) and
    {e counters} (sampled values) into this module. The collected events
    export to the Chrome [trace_event] JSON format (via
    [Report.Trace_export]), loadable in [chrome://tracing] or
    {{:https://ui.perfetto.dev}Perfetto}, so "where does the time go
    inside one trial shard / CSR freeze / sketchd request?" has a visual
    answer.

    {2 Design constraints}

    - {b Disabled is (almost) free.} Tracing starts disabled, and every
      recording entry point first reads one [Atomic.t] flag and returns:
      no allocation, no syscall, no lock. Hot loops (the per-trial shard
      fill, [Graph.of_keys]) may therefore call {!begin_}/{!end_}
      unconditionally; [test_trace.ml] pins the disabled path to zero
      allocation per call.
    - {b Domain-safe.} Each domain owns a private ring buffer (created
      lazily through [Domain.DLS], registered globally); recording never
      contends across domains. A per-buffer mutex serialises systhreads
      that share a domain (the daemon's connection threads). {!dump}
      merges all rings into one timestamp-ordered list.
    - {b Bounded.} Rings hold {!enable}'s [capacity] events per domain;
      beyond that the oldest events are overwritten and counted in
      {!stats}' [dropped]. A runaway trace degrades, never OOMs.
    - {b Inert.} Recording writes only to the side buffers — enabling
      tracing cannot change any experiment output. [test_trace.ml]
      asserts golden tables render byte-identically with tracing on. *)

(** {1 Events} *)

type arg =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool  (** One annotation value attached to an event under a string key. *)

(** The three Chrome [trace_event] phases this tracer records: [Complete]
    is a span with a duration ([ph = "X"]), [Instant] a point event
    ([ph = "i"]), [Counter] a sampled value ([ph = "C"]). *)
type phase = Complete | Instant | Counter

type event = {
  name : string;  (** Span/event name, e.g. ["graph.freeze"]. *)
  cat : string;
      (** Chrome category (trace-viewer filtering). Derived from [name]'s
          dot-prefix by the recording functions: ["graph.freeze"] gets
          category ["graph"]. *)
  ph : phase;  (** Event phase. *)
  ts_us : float;
      (** Start time in microseconds since the trace epoch (the first
          {!enable} of the process). *)
  dur_us : float;  (** Duration in microseconds; [0.] unless [ph = Complete]. *)
  tid : int;  (** Recording domain's id ([Domain.self ()]). *)
  args : (string * arg) list;  (** Annotations, shown by the trace viewer. *)
}
(** One recorded event, exposed so exporters and tests can consume traces
    without going through JSON. *)

(** {1 Lifecycle} *)

val enable : ?capacity:int -> unit -> unit
(** Start recording. [capacity] (default [65536], min [1]) bounds each
    domain's ring buffer; buffers already created keep their capacity.
    The first [enable] of the process fixes the trace epoch — timestamps
    stay monotonic across later {!disable}/[enable] cycles. Idempotent.
    Raises [Invalid_argument] if [capacity < 1]. *)

val disable : unit -> unit
(** Stop recording. Already-recorded events are kept (visible to {!dump})
    until {!reset}. Spans begun before [disable] and ended after it are
    dropped (the {!end_} is ignored, never mis-paired). *)

val enabled : unit -> bool
(** Whether recording is on — one atomic load. Use to guard argument
    construction that would itself allocate, e.g.
    [if Trace.enabled () then Trace.instant ~args:[...] "x"]. *)

val reset : unit -> unit
(** Discard every recorded event, open-span stack and drop counter in
    every domain's buffer. Recording state (enabled/disabled) is kept.
    The bench harness calls this between tables. *)

(** {1 Recording} *)

val begin_ : string -> unit
(** [begin_ name] opens a span. Zero-allocation when disabled; pairs with
    the next {!end_} on the same domain (per-domain stack, so spans nest
    and balance per domain). Only for code where a domain runs one
    logical task at a time — systhreads sharing a domain must use {!span}
    or {!complete} instead (the stack is per-domain, not per-thread). *)

val end_ : unit -> unit
(** Close the innermost open span of this domain and record it as a
    [Complete] event. An unbalanced [end_] (empty stack — e.g. tracing
    was enabled mid-span) is ignored. *)

val span : ?args:(unit -> (string * arg) list) -> string -> (unit -> 'a) -> 'a
(** [span name f] runs [f ()] inside a [Complete] span. Stack-free (the
    interval lives in [span]'s own frame), hence safe from any thread;
    exception-safe (the span is recorded even when [f] raises). [args]
    is a thunk, evaluated only when tracing is enabled, at span end —
    annotation construction costs nothing when disabled. When disabled,
    [span name f] is exactly [f ()] plus one branch. *)

val complete : ?args:(string * arg) list -> t0:float -> t1:float -> string -> unit
(** [complete ~t0 ~t1 name] records an already-measured interval,
    [t0]/[t1] in [Unix.gettimeofday] seconds. For call sites that
    already clock themselves (the service's per-request timing) and for
    multi-threaded contexts where {!begin_}/{!end_} would mis-pair. *)

val instant : ?args:(string * arg) list -> string -> unit
(** [instant name] records a point event (a cache hit, a shed request). *)

val counter : string -> int -> unit
(** [counter name v] records a sampled counter value; trace viewers plot
    the series as a track. The value is stored under the [args] key
    ["value"]. Zero-allocation when disabled. *)

(** {1 Flushing} *)

val dump : unit -> event list
(** Merge every domain's ring into one list ordered by [ts_us].
    Non-destructive: buffers keep their events (use {!reset} to clear).
    Spans still open at [dump] time are not included. *)

type stats = {
  tracing : bool;  (** Recording currently enabled? *)
  events : int;  (** Events currently buffered across all domains. *)
  dropped : int;  (** Events lost to ring overwrite since the last {!reset}. *)
  domains : int;  (** Domains that have recorded at least one event. *)
}
(** Cheap observability snapshot — the `stats` RPC's [trace] field. *)

val stats : unit -> stats
(** Current {!stats}, without copying any events. *)

val now_us : unit -> float
(** Current time in microseconds since the trace epoch — the clock
    {!event}.[ts_us] is expressed in. Used to window {!dump} results
    (e.g. the bench harness attributing events to one table). *)

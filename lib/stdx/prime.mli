(** Primality testing and prime search for field moduli.

    The linear-sketching layer needs primes [p] with the universe size
    [< p < 2^31] for fingerprinting; the bound keeps every product of two
    residues inside OCaml's 63-bit native integers. *)

val is_prime : int -> bool
(** Deterministic Miller–Rabin, valid for all [0 <= n < 2^31]. *)

val next_prime_above : int -> int
(** Smallest prime strictly greater than the argument.
    Requires the result to stay below [2^31]. *)

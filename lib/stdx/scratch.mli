(** Per-domain keyed scratch arenas for the hot experiment loops.

    The Monte-Carlo inner loops (AGM sketch stacks, L0-sampler decode
    buffers, bit-accounting accumulators, CSR fill scratch) need the
    same transient flat buffers once per trial. Allocating them fresh
    every trial is the dominant GC load that BENCH_tables.json exposes
    at [--fast] scale; an arena instead hands out {e cached} unboxed
    [int array] / [float array] buffers keyed by name, reallocating
    only when the requested length changes. A steady workload — every
    trial at the same problem size — reallocates each buffer once per
    domain and thereafter only resets it.

    {2 Ownership contract}

    The contract, spelled out in full in [PERFORMANCE.md]:

    - {b Keys are exclusive to one call site.} Borrowing key [k]
      returns the same backing store as every previous borrow of [k]
      in that domain, so two concurrent users of one key would corrupt
      each other. Name keys after the borrowing module
      (["sf.stack"], ["sr.decode"], ...) and never pass a borrowed
      buffer to code that might borrow the same key.
    - {b Borrows do not escape the trial.} A borrowed buffer is valid
      until the same key is borrowed again; anything that must survive
      (a result row, a frozen CSR column) is copied out.
    - {b Arenas are domain-local.} {!domain} returns the calling
      domain's own arena via [Domain.DLS]; arenas are never shared, so
      borrowing needs no locks, and a trial's buffer contents are a
      function of that trial alone — {!Parallel}'s bit-for-bit
      determinism contract is untouched by any [--jobs] count.
    - {b Reset, never reallocated.} {!ints}/{!floats} zero-fill the
      cached buffer on each borrow (the reset); {!dirty_ints}/
      {!dirty_floats} skip the fill for callers that overwrite every
      slot themselves.

    {!Parallel.init} calls {!chunk_begin} at the start of every chunk
    fill, so the arena (and its table) exists before the first trial
    of the chunk runs — "allocated once per chunk, reused across
    trials". *)

type t
(** A scratch arena: a table from string keys to cached flat buffers,
    plus borrow/realloc counters. Owned by exactly one domain. *)

type stats = {
  keys : int;  (** Distinct buffer keys currently cached. *)
  borrows : int;  (** Total borrows since creation or {!clear}. *)
  reallocs : int;
      (** Borrows that had to allocate (first use of a key, or a
          length change). [reallocs] staying flat while [borrows]
          grows is the signature of a healthy steady-state arena. *)
  live_words : int;
      (** Approximate words held by cached buffers (array contents
          plus one header word each). *)
}

val create : unit -> t
(** A fresh empty arena. Prefer {!domain} in library code — explicit
    arenas are for tests and for call sites that must not share keys
    with anyone. *)

val domain : unit -> t
(** The calling domain's arena, created on first use and cached in
    domain-local storage. Never shared across domains. *)

val ints : t -> string -> int -> int array
(** [ints t key len] borrows the arena's [int] buffer for [key],
    zero-filled, of exactly [len] elements. Reuses the cached backing
    store when its length is already [len]; reallocates (and caches
    the replacement) otherwise. Raises [Invalid_argument] on negative
    [len]. *)

val dirty_ints : t -> string -> int -> int array
(** Like {!ints} but skips the zero fill — the caller promises to
    write every slot it reads. A fresh allocation (length change or
    first borrow) is still all-zero. *)

val floats : t -> string -> int -> float array
(** [float array] analogue of {!ints} (zero-filled with [0.0]). *)

val dirty_floats : t -> string -> int -> float array
(** [float array] analogue of {!dirty_ints}. *)

val clear : t -> unit
(** Drop every cached buffer and reset the counters. Outstanding
    borrows keep their (now unmanaged) arrays alive; the arena simply
    forgets them. *)

val stats : t -> stats
(** Current counters; see {!type-stats}. *)

val chunk_begin : unit -> unit
(** Notify the arena layer that a {!Parallel} chunk is starting in the
    calling domain: warms the domain arena so no trial pays for table
    creation, and bumps the per-domain chunk counter. Called by
    {!Parallel.init}; safe (and idempotent in effect) to call
    manually. *)

val chunk_count : unit -> int
(** Chunks started in the calling domain since it was spawned — test
    hook for the {!Parallel} wiring. *)

(* xoshiro256** seeded through SplitMix64.  All state is explicit so that
   public coins can be re-derived by (seed, key) without communication. *)

type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64; seed : int }

let splitmix64_next state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create seed =
  let state = ref (Int64.of_int seed) in
  let s0 = splitmix64_next state in
  let s1 = splitmix64_next state in
  let s2 = splitmix64_next state in
  let s3 = splitmix64_next state in
  { s0; s1; s2; s3; seed }

(* Mix the original seed with the key through SplitMix64 so that derived
   streams for distinct keys are unrelated. *)
let split g key =
  let state = ref (Int64.of_int g.seed) in
  let a = splitmix64_next state in
  let mixed =
    Int64.to_int (Int64.logxor a (Int64.mul (Int64.of_int key) 0x9E3779B97F4A7C15L))
    land max_int
  in
  create mixed

let copy g = { g with s0 = g.s0 }

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let bits64 g =
  let open Int64 in
  let result = mul (rotl (mul g.s1 5L) 7) 9L in
  let t = shift_left g.s1 17 in
  g.s2 <- logxor g.s2 g.s0;
  g.s3 <- logxor g.s3 g.s1;
  g.s1 <- logxor g.s1 g.s2;
  g.s0 <- logxor g.s0 g.s3;
  g.s2 <- logxor g.s2 t;
  g.s3 <- rotl g.s3 45;
  result

(* 62 uniform non-negative bits as a native int. *)
let bits g = Int64.to_int (Int64.shift_right_logical (bits64 g) 2)

let int g bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let mask_bound = bound - 1 in
  if bound land mask_bound = 0 then bits g land mask_bound
  else
    (* [bits] is uniform on [0, 2^62); accept below the largest multiple of
       [bound] representable there (computed via max_int = 2^62 - 1 to avoid
       overflowing the native int). *)
    let limit = max_int / bound * bound in
    let rec draw () =
      let v = bits g in
      if v < limit then v mod bound else draw ()
    in
    draw ()

let int_in g lo hi =
  if hi < lo then invalid_arg "Prng.int_in: empty range";
  lo + int g (hi - lo + 1)

let float g = Stdlib.float_of_int (Int64.to_int (Int64.shift_right_logical (bits64 g) 11)) *. 0x1p-53

let bool g = Int64.logand (bits64 g) 1L = 1L

(* One [bits64] per element, exactly like repeated [bool] calls — the
   draw sequence is pinned by goldens, so the win is the single tight
   loop over a preallocated array (no per-element closure dispatch), not
   fewer draws. *)
let fill_bools g a =
  for i = 0 to Array.length a - 1 do
    Array.unsafe_set a i (Int64.logand (bits64 g) 1L = 1L)
  done

let bernoulli g p = float g < p

let shuffle g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let permutation g n =
  let a = Array.init n (fun i -> i) in
  shuffle g a;
  a

(* Floyd's algorithm: k distinct samples in O(k) expected time. *)
let sample_distinct g k n =
  if k > n then invalid_arg "Prng.sample_distinct: k > n";
  let seen = Hashtbl.create (2 * k) in
  let out = Array.make k 0 in
  let pos = ref 0 in
  for j = n - k to n - 1 do
    let v = int g (j + 1) in
    let v = if Hashtbl.mem seen v then j else v in
    Hashtbl.replace seen v ();
    out.(!pos) <- v;
    incr pos
  done;
  out

let choose g a =
  if Array.length a = 0 then invalid_arg "Prng.choose: empty array";
  a.(int g (Array.length a))

let subset_mask g n ~p = Array.init n (fun _ -> bernoulli g p)

type arg = Int of int | Float of float | Str of string | Bool of bool
type phase = Complete | Instant | Counter

type event = {
  name : string;
  cat : string;
  ph : phase;
  ts_us : float;
  dur_us : float;
  tid : int;
  args : (string * arg) list;
}

(* One open begin_/end_ frame. [name]/[t0] are captured at begin_ time. *)
type frame = { f_name : string; f_t0 : float }

(* Per-domain ring buffer. The mutex serialises systhreads sharing the
   domain (daemon connection threads); cross-domain there is no sharing,
   so recording never contends between domains. *)
type buf = {
  b_tid : int;
  b_lock : Mutex.t;
  mutable ring : event array;
  mutable capacity : int;
  mutable next : int; (* slot of the next write *)
  mutable used : int; (* live events, <= capacity *)
  mutable dropped : int;
  mutable stack : frame list;
}

let on = Atomic.make false
let default_capacity = 65536
let requested_capacity = Atomic.make default_capacity

(* Epoch: Unix.gettimeofday at first enable; timestamps are microseconds
   since then. 0. means "not yet set". *)
let epoch = Atomic.make 0.

let registry : buf list ref = ref []
let registry_lock = Mutex.create ()

let dummy_event =
  { name = ""; cat = ""; ph = Instant; ts_us = 0.; dur_us = 0.; tid = 0; args = [] }

let make_buf () =
  let capacity = max 1 (Atomic.get requested_capacity) in
  let b =
    {
      b_tid = (Domain.self () :> int);
      b_lock = Mutex.create ();
      ring = Array.make capacity dummy_event;
      capacity;
      next = 0;
      used = 0;
      dropped = 0;
      stack = [];
    }
  in
  Mutex.lock registry_lock;
  registry := b :: !registry;
  Mutex.unlock registry_lock;
  b

let key = Domain.DLS.new_key make_buf
let my_buf () = Domain.DLS.get key

let enabled () = Atomic.get on

let enable ?(capacity = default_capacity) () =
  if capacity < 1 then invalid_arg "Trace.enable: capacity < 1";
  Atomic.set requested_capacity capacity;
  if Atomic.get epoch = 0. then Atomic.set epoch (Unix.gettimeofday ());
  Atomic.set on true

let disable () = Atomic.set on false

let now_us () = (Unix.gettimeofday () -. Atomic.get epoch) *. 1e6
let to_us t = (t -. Atomic.get epoch) *. 1e6

let cat_of name =
  match String.index_opt name '.' with
  | Some i -> String.sub name 0 i
  | None -> name

(* Append under the buffer's lock; drop-oldest beyond capacity. *)
let push b ev =
  Mutex.lock b.b_lock;
  b.ring.(b.next) <- ev;
  b.next <- (b.next + 1) mod b.capacity;
  if b.used < b.capacity then b.used <- b.used + 1
  else b.dropped <- b.dropped + 1;
  Mutex.unlock b.b_lock

let record ?(args = []) ph ~ts_us ~dur_us name =
  let b = my_buf () in
  push b { name; cat = cat_of name; ph; ts_us; dur_us; tid = b.b_tid; args }

let begin_ name =
  if Atomic.get on then begin
    let b = my_buf () in
    Mutex.lock b.b_lock;
    b.stack <- { f_name = name; f_t0 = Unix.gettimeofday () } :: b.stack;
    Mutex.unlock b.b_lock
  end

let end_ () =
  if Atomic.get on then begin
    let b = my_buf () in
    Mutex.lock b.b_lock;
    (match b.stack with
    | [] -> Mutex.unlock b.b_lock
    | f :: rest ->
        b.stack <- rest;
        Mutex.unlock b.b_lock;
        let t1 = Unix.gettimeofday () in
        push b
          {
            name = f.f_name;
            cat = cat_of f.f_name;
            ph = Complete;
            ts_us = to_us f.f_t0;
            dur_us = (t1 -. f.f_t0) *. 1e6;
            tid = b.b_tid;
            args = [];
          })
  end

let span ?args name f =
  if not (Atomic.get on) then f ()
  else begin
    let t0 = Unix.gettimeofday () in
    let finish () =
      let t1 = Unix.gettimeofday () in
      let args = match args with None -> [] | Some mk -> mk () in
      record ~args Complete ~ts_us:(to_us t0) ~dur_us:((t1 -. t0) *. 1e6) name
    in
    match f () with
    | v ->
        finish ();
        v
    | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        finish ();
        Printexc.raise_with_backtrace e bt
  end

let complete ?(args = []) ~t0 ~t1 name =
  if Atomic.get on then
    record ~args Complete ~ts_us:(to_us t0) ~dur_us:((t1 -. t0) *. 1e6) name

let instant ?(args = []) name =
  if Atomic.get on then record ~args Instant ~ts_us:(now_us ()) ~dur_us:0. name

let counter name v =
  if Atomic.get on then
    record ~args:[ ("value", Int v) ] Counter ~ts_us:(now_us ()) ~dur_us:0. name

let with_all_bufs f =
  Mutex.lock registry_lock;
  let bufs = !registry in
  Mutex.unlock registry_lock;
  List.iter f bufs

let reset () =
  with_all_bufs (fun b ->
      Mutex.lock b.b_lock;
      Array.fill b.ring 0 b.capacity dummy_event;
      b.next <- 0;
      b.used <- 0;
      b.dropped <- 0;
      b.stack <- [];
      Mutex.unlock b.b_lock)

type stats = { tracing : bool; events : int; dropped : int; domains : int }

let stats () =
  let events = ref 0 and dropped = ref 0 and domains = ref 0 in
  with_all_bufs (fun b ->
      Mutex.lock b.b_lock;
      events := !events + b.used;
      dropped := !dropped + b.dropped;
      if b.used > 0 then incr domains;
      Mutex.unlock b.b_lock);
  { tracing = Atomic.get on; events = !events; dropped = !dropped; domains = !domains }

let dump () =
  let acc = ref [] in
  with_all_bufs (fun b ->
      Mutex.lock b.b_lock;
      (* Oldest event lives at [next] when the ring has wrapped, at 0
         otherwise; emit in write order so per-buffer order is preserved. *)
      let start = if b.used = b.capacity then b.next else 0 in
      for i = 0 to b.used - 1 do
        acc := b.ring.((start + i) mod b.capacity) :: !acc
      done;
      Mutex.unlock b.b_lock);
  List.stable_sort (fun a b -> compare a.ts_us b.ts_us) (List.rev !acc)

(** Bit-exact message buffers.

    Sketch sizes in the paper are measured in {e bits}, so protocol messages
    are built with a bit-level writer and consumed with a bit-level reader.
    The writer records the exact number of bits appended; the model layer
    ([Sketchmodel]) charges that number as communication cost. *)

(** Append-only bit stream; grows as needed. *)
module Writer : sig
  type t
  (** A mutable buffer of bits. *)

  val create : unit -> t
  (** An empty writer. *)

  val length_bits : t -> int
  (** Exact number of bits written so far. *)

  val bit : t -> bool -> unit
  (** Append one bit. *)

  val bits : t -> int -> width:int -> unit
  (** [bits w v ~width] appends the low [width] bits of [v], most significant
      first. Requires [0 <= width <= 62] and [v] representable in [width]
      bits. *)

  val uvarint : t -> int -> unit
  (** LEB128-style variable-length encoding of a non-negative integer:
      7 payload bits + 1 continuation bit per group. *)

  val int_list : t -> int list -> unit
  (** Length-prefixed list of non-negative integers, each as a [uvarint]. *)

  val string : t -> string -> unit
  (** [string w s] appends every byte of [s], 8 bits each, MSB first —
      [8 * String.length s] bits at any alignment (whole-byte blit when the
      writer is byte-aligned). The length is {e not} encoded; frame it
      yourself (e.g. a [uvarint] prefix, as the [sketchd] wire codec does). *)

  val contents : t -> Bytes.t * int
  (** Raw bytes plus the exact bit length (the final byte may be partial). *)
end

(** Sequential consumer of a bit stream; each read advances the
    position and raises {!Reader.Underflow} past the end. *)
module Reader : sig
  type t
  (** A cursor over a finished bit stream. *)

  val of_writer : Writer.t -> t
  (** A reader positioned at the first bit of a finished message. *)

  val of_string : string -> t
  (** A reader over raw bytes received from elsewhere (a socket, a file):
      [8 * String.length s] bits, positioned at the first bit. *)

  val bit : t -> bool
  (** Read one bit. *)

  val bits : t -> width:int -> int
  (** Read back [width] bits written by {!Writer.bits}, MSB first. *)

  val uvarint : t -> int
  (** Read back one {!Writer.uvarint}. *)

  val int_list : t -> int list
  (** Read back one {!Writer.int_list}. *)

  val string : t -> len:int -> string
  (** [string r ~len] reads back [len] bytes written by {!Writer.string}. *)

  val remaining_bits : t -> int
  (** Bits left between the cursor and the end of the stream. *)

  exception Underflow
  (** Raised when reading past the end of the message. *)
end

(** Bit-exact message buffers.

    Sketch sizes in the paper are measured in {e bits}, so protocol messages
    are built with a bit-level writer and consumed with a bit-level reader.
    The writer records the exact number of bits appended; the model layer
    ([Sketchmodel]) charges that number as communication cost. *)

module Writer : sig
  type t

  val create : unit -> t

  val length_bits : t -> int
  (** Exact number of bits written so far. *)

  val bit : t -> bool -> unit

  val bits : t -> int -> width:int -> unit
  (** [bits w v ~width] appends the low [width] bits of [v], most significant
      first. Requires [0 <= width <= 62] and [v] representable in [width]
      bits. *)

  val uvarint : t -> int -> unit
  (** LEB128-style variable-length encoding of a non-negative integer:
      7 payload bits + 1 continuation bit per group. *)

  val int_list : t -> int list -> unit
  (** Length-prefixed list of non-negative integers, each as a [uvarint]. *)

  val contents : t -> Bytes.t * int
  (** Raw bytes plus the exact bit length (the final byte may be partial). *)
end

module Reader : sig
  type t

  val of_writer : Writer.t -> t
  (** A reader positioned at the first bit of a finished message. *)

  val bit : t -> bool
  val bits : t -> width:int -> int
  val uvarint : t -> int
  val int_list : t -> int list

  val remaining_bits : t -> int

  exception Underflow
  (** Raised when reading past the end of the message. *)
end

(** Deterministic multicore execution of independent trials.

    The Monte-Carlo experiment suite spends nearly all of its time in loops
    of the form "for each trial index [i], derive a generator from [(root
    seed, i)] and run one independent simulation". Those loops are
    embarrassingly parallel {e provided} the randomness of trial [i] is a
    pure function of [i] — which is exactly what {!Prng.split} gives us.

    This module shards such loops across OCaml 5 [Domain.t] workers in
    fixed, statically computed chunks. Scheduling is deterministic by
    construction: trial [i] always computes the same value no matter how
    many workers run, so results are bit-identical for every job count,
    including [jobs = 1] (which runs in the calling domain with no domain
    spawned at all, and is the reference sequential order).

    {2 The determinism contract}

    [init ~jobs n f] computes [f i] for [i = 0 .. n-1] and never shares
    state between calls: each [f i] must depend only on [i] (deriving any
    randomness it needs via [Prng.split root i] — see the seeding-scheme
    note in {!Prng.split}) and on immutable captured data. Under that
    contract:

    - [init ~jobs:a n f] and [init ~jobs:b n f] return equal arrays for
      all [a, b >= 1];
    - every index is computed exactly once (chunks partition [0 .. n-1]);
    - within a chunk, indices are evaluated in increasing order.

    Nothing enforces the purity of [f]; feeding it a shared mutable
    generator silently breaks both determinism and memory safety.

    When {!Trace} is enabled, each chunk fill records a ["parallel.chunk"]
    span and each pool job a ["pool.job"] span, so a trace shows the
    sharding and its balance.

    Each chunk fill also calls {!Scratch.chunk_begin} before its first
    trial, warming the worker domain's scratch arena — buffers borrowed
    inside trials are allocated once per chunk and reused (reset, never
    reallocated) across the chunk's trials. See {!Scratch} and
    [PERFORMANCE.md] for the arena ownership contract. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()]: the runtime's estimate of how
    many domains this machine runs well, used when [?jobs] is omitted. *)

val init : ?jobs:int -> int -> (int -> 'a) -> 'a array
(** [init ~jobs n f] is [[| f 0; f 1; ...; f (n-1) |]], computed on up to
    [jobs] domains ([max 1 jobs]; never more than [n]). Raises whatever
    [f] raises (the first failing chunk in index order wins); all spawned
    domains are joined before the exception propagates. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map ~jobs f a] is [Array.map f a] sharded like {!init}. *)

val map_list : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map_list ~jobs f l] is [List.map f l] sharded like {!init}. *)

val timed : (unit -> 'a) -> 'a * float
(** [timed f] runs [f ()] and also returns the elapsed wall-clock seconds
    (monotonic; safe across domains — [Sys.time] counts CPU seconds summed
    over every domain and would over-report parallel runs). *)

(** A persistent worker-domain pool for long-lived services.

    {!init} spawns and joins domains per call — right for one-shot table
    generation, too expensive per request for a server. A [Pool.t] keeps its
    domains alive and feeds them submitted thunks FIFO through one shared
    queue. Jobs are independent side-effecting closures (a server request
    carries its own result cell); completion order is unspecified, so the
    pool is {e not} a substitute for {!init}'s deterministic sharding. Jobs
    may themselves call {!init} (nested domain spawns are fine). *)
module Pool : sig
  type t
  (** A running pool; owns its worker domains until {!shutdown}. *)

  val create : ?on_error:(exn -> unit) -> workers:int -> unit -> t
  (** [create ~workers ()] spawns [workers] domains ([>= 1] required).
      A job that raises is passed to [on_error] (default: ignore) and the
      worker keeps running — a worker domain never dies with jobs queued. *)

  val workers : t -> int
  (** The worker count the pool was created with. *)

  val submit : t -> (unit -> unit) -> bool
  (** Enqueue a job; [false] if {!shutdown} has begun (job not enqueued).
      The pool's queue is unbounded — admission control (bounded depth,
      load shedding) belongs to the caller, e.g. [Server.Scheduler]. *)

  val shutdown : t -> unit
  (** Stop accepting jobs, drain the queue, and join every worker domain.
      Blocks until all in-flight and queued jobs have finished. Idempotent
      (second call returns immediately). *)
end

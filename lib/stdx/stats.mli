(** Summary statistics for experiment outputs. *)

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
}

val mean : float array -> float
val variance : float array -> float
(** Unbiased sample variance; [0.] for fewer than two points. *)

val stddev : float array -> float

val quantile : float array -> float -> float
(** [quantile xs q] for [q] in [\[0, 1\]], linear interpolation between order
    statistics. Requires a non-empty array. *)

val summarize : float array -> summary
val of_ints : int array -> float array

val pp_summary : Format.formatter -> summary -> unit

val wilson_interval : successes:int -> trials:int -> z:float -> float * float
(** Wilson score confidence interval for a binomial proportion. *)

val binomial_tail_ge : n:int -> p:float -> k:int -> float
(** [binomial_tail_ge ~n ~p ~k] = Pr[Bin(n, p) >= k], computed exactly by
    summing the mass function in log-space. Used to check the Chernoff step
    of Claim 3.1 against exact tail values on small instances. *)

val chernoff_lower_tail : n:int -> p:float -> delta:float -> float
(** The multiplicative Chernoff upper bound
    [exp (-delta^2 * n * p / 2)] on [Pr\[Bin(n,p) <= (1-delta) n p\]]. *)

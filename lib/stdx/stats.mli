(** Summary statistics for experiment outputs.

    Small, exact helpers behind every "mean ± stddev" column the tables
    print and the tail bounds the Claim 3.1 experiments check. *)

type summary = {
  count : int;  (** Number of samples. *)
  mean : float;  (** Arithmetic mean; [nan] on empty input. *)
  stddev : float;  (** Unbiased sample standard deviation. *)
  min : float;  (** Smallest sample. *)
  max : float;  (** Largest sample. *)
  p50 : float;  (** Median ({!quantile} at 0.5). *)
  p90 : float;  (** 90th percentile ({!quantile} at 0.9). *)
}
(** The descriptive statistics of one sample array. *)

val mean : float array -> float
(** Arithmetic mean; [nan] on an empty array. *)

val variance : float array -> float
(** Unbiased sample variance; [0.] for fewer than two points. *)

val stddev : float array -> float
(** Square root of {!variance}. *)

val quantile : float array -> float -> float
(** [quantile xs q] for [q] in [\[0, 1\]], linear interpolation between order
    statistics. Requires a non-empty array. *)

val summarize : float array -> summary
(** All of the above in one pass (plus a sort for the percentiles). *)

val of_ints : int array -> float array
(** Element-wise [float_of_int] — adapter for integer-valued trials. *)

val pp_summary : Format.formatter -> summary -> unit
(** Renders a {!summary} as one human-readable line. *)

val wilson_interval : successes:int -> trials:int -> z:float -> float * float
(** Wilson score confidence interval for a binomial proportion. *)

val binomial_tail_ge : n:int -> p:float -> k:int -> float
(** [binomial_tail_ge ~n ~p ~k] = Pr[Bin(n, p) >= k], computed exactly by
    summing the mass function in log-space. Used to check the Chernoff step
    of Claim 3.1 against exact tail values on small instances. *)

val chernoff_lower_tail : n:int -> p:float -> delta:float -> float
(** The multiplicative Chernoff upper bound
    [exp (-delta^2 * n * p / 2)] on [Pr\[Bin(n,p) <= (1-delta) n p\]]. *)

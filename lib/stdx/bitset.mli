(** Compact fixed-capacity sets of small integers.

    One bit per universe element, packed into an [int array] — the
    working set representation of the matching/MIS algorithms and the
    hard-distribution bookkeeping. All operations are unchecked-fast
    except that out-of-range elements raise [Invalid_argument]. *)

type t
(** A mutable set over the universe [\[0, n)] fixed at {!create}. *)

val create : int -> t
(** [create n] is the empty set over universe [\[0, n)]. *)

val capacity : t -> int
(** The universe size [n] the set was created with. *)

val mem : t -> int -> bool
(** Membership test; O(1). *)

val add : t -> int -> unit
(** Insert an element; idempotent. *)

val remove : t -> int -> unit
(** Delete an element; a no-op if absent. *)

val cardinal : t -> int
(** Number of members, by popcount over the words. *)

val is_empty : t -> bool
(** [cardinal s = 0], without counting past the first set bit. *)

val clear : t -> unit
(** Remove every member, keeping the capacity. *)

val copy : t -> t
(** An independent snapshot with the same members and capacity. *)

val iter : (int -> unit) -> t -> unit
(** Visits members in increasing order. *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
(** Folds over members in increasing order. *)

val to_list : t -> int list
(** Members in increasing order. *)

val of_list : int -> int list -> t
(** [of_list n elems] is the set over [\[0, n)] containing [elems]. *)

val union_into : t -> t -> unit
(** [union_into dst src] adds every member of [src] to [dst]. The two sets
    must have the same capacity. *)

val inter_cardinal : t -> t -> int
(** Size of the intersection, without materialising it. *)

val equal : t -> t -> bool
(** Same capacity and same members. *)

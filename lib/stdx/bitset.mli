(** Compact fixed-capacity sets of small integers. *)

type t

val create : int -> t
(** [create n] is the empty set over universe [\[0, n)]. *)

val capacity : t -> int

val mem : t -> int -> bool
val add : t -> int -> unit
val remove : t -> int -> unit
val cardinal : t -> int
val is_empty : t -> bool
val clear : t -> unit
val copy : t -> t

val iter : (int -> unit) -> t -> unit
(** Visits members in increasing order. *)

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
val to_list : t -> int list
val of_list : int -> int list -> t

val union_into : t -> t -> unit
(** [union_into dst src] adds every member of [src] to [dst]. The two sets
    must have the same capacity. *)

val inter_cardinal : t -> t -> int
(** Size of the intersection, without materialising it. *)

val equal : t -> t -> bool

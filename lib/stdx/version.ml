(* The single source of truth for the build version. Bump here and every
   binary (`sketchlb`, `sketchd`, `sketchctl`), the `stats` RPC and the
   bench JSON pick it up — deployments and bug reports can always identify
   the build they are talking to. *)

let current = "1.7.0"

let describe () = Printf.sprintf "sketchlb %s (ocaml %s)" current Sys.ocaml_version

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
}

let mean xs =
  let n = Array.length xs in
  if n = 0 then 0. else Array.fold_left ( +. ) 0. xs /. float_of_int n

let variance xs =
  let n = Array.length xs in
  if n < 2 then 0.
  else begin
    let m = mean xs in
    let ss = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0. xs in
    ss /. float_of_int (n - 1)
  end

let stddev xs = sqrt (variance xs)

let quantile xs q =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.quantile: empty";
  if q < 0. || q > 1. then invalid_arg "Stats.quantile: q out of range";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let pos = q *. float_of_int (n - 1) in
  let lo = int_of_float (floor pos) and hi = int_of_float (ceil pos) in
  let frac = pos -. floor pos in
  (sorted.(lo) *. (1. -. frac)) +. (sorted.(hi) *. frac)

let summarize xs =
  let n = Array.length xs in
  if n = 0 then { count = 0; mean = 0.; stddev = 0.; min = 0.; max = 0.; p50 = 0.; p90 = 0. }
  else
    {
      count = n;
      mean = mean xs;
      stddev = stddev xs;
      min = Array.fold_left min xs.(0) xs;
      max = Array.fold_left max xs.(0) xs;
      p50 = quantile xs 0.5;
      p90 = quantile xs 0.9;
    }

let of_ints xs = Array.map float_of_int xs

let pp_summary ppf s =
  Format.fprintf ppf "n=%d mean=%.3f sd=%.3f min=%.3f p50=%.3f p90=%.3f max=%.3f" s.count
    s.mean s.stddev s.min s.p50 s.p90 s.max

let wilson_interval ~successes ~trials ~z =
  if trials = 0 then (0., 1.)
  else begin
    let n = float_of_int trials in
    let phat = float_of_int successes /. n in
    let z2 = z *. z in
    let denom = 1. +. (z2 /. n) in
    let centre = phat +. (z2 /. (2. *. n)) in
    let margin = z *. sqrt ((phat *. (1. -. phat) /. n) +. (z2 /. (4. *. n *. n))) in
    (max 0. ((centre -. margin) /. denom), min 1. ((centre +. margin) /. denom))
  end

(* log of the binomial coefficient via lgamma-free summation of logs;
   n is small (<= a few thousand) in every use here. *)
let log_choose n k =
  if k < 0 || k > n then neg_infinity
  else begin
    let acc = ref 0. in
    for i = 1 to k do
      acc := !acc +. log (float_of_int (n - k + i)) -. log (float_of_int i)
    done;
    !acc
  end

let binomial_tail_ge ~n ~p ~k =
  if p <= 0. then if k <= 0 then 1. else 0.
  else if p >= 1. then if k <= n then 1. else 0.
  else begin
    let lp = log p and lq = log (1. -. p) in
    let total = ref 0. in
    for i = max 0 k to n do
      let lmass = log_choose n i +. (float_of_int i *. lp) +. (float_of_int (n - i) *. lq) in
      total := !total +. exp lmass
    done;
    min 1. !total
  end

let chernoff_lower_tail ~n ~p ~delta = exp (-.(delta *. delta) *. float_of_int n *. p /. 2.)

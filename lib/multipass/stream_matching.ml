module Graph = Dgraph.Graph
module Matching = Dgraph.Matching
module Stream = Streams.Stream

type pass_stat = {
  pass : int;
  events : int;
  kept_edges : int;
  memory_bits : int;
  matching_size : int;
  augmented : int;
}

type result = {
  matching : Matching.t;
  passes : pass_stat list;
  peak_memory_bits : int;
  converged : bool;
}

let bits_per_vertex n =
  let rec go b v = if v >= n then b else go (b + 1) (v * 2) in
  go 1 2

(* Matching state between passes: the matched-vertex bitmap plus two
   vertex ids per matched pair — the same accounting as
   [Insertion_greedy.mm_state_bits]. *)
let matching_bits ~n size = n + (size * 2 * bits_per_vertex n)

let pass_span ~pass ~memory_bits ~matching_size body =
  Stdx.Trace.span
    ~args:(fun () ->
      [
        ("pass", Stdx.Trace.Int pass);
        ("memory_bits", Stdx.Trace.Int memory_bits);
        ("matching_size", Stdx.Trace.Int matching_size);
      ])
    "stream.pass" body

let insert_only_edges stream =
  List.map
    (function
      | Stream.Insert e -> e
      | Stream.Delete _ ->
          invalid_arg "Stream_matching.run: dynamic streams are not supported")
    stream.Stream.events

let run ?(eps = 0.25) ?max_passes stream =
  if eps <= 0.0 then invalid_arg "Stream_matching.run: eps must be positive";
  let n = stream.Stream.n in
  let edges = insert_only_edges stream in
  let events = List.length edges in
  let k = max 1 (int_of_float (ceil (1.0 /. eps))) in
  let max_passes = match max_passes with Some p -> max 1 p | None -> k * k in
  (* Pass 1: greedy maximal matching, the one-pass 2-approximation. *)
  let matched = Array.make n false in
  let m = ref [] in
  List.iter
    (fun (u, v) ->
      if (not matched.(u)) && not matched.(v) then begin
        matched.(u) <- true;
        matched.(v) <- true;
        m := (u, v) :: !m
      end)
    edges;
  let matching = ref (List.rev !m) in
  let size = ref (List.length !matching) in
  let mem1 = matching_bits ~n !size in
  let first_stat =
    pass_span ~pass:1 ~memory_bits:mem1 ~matching_size:!size (fun () ->
        {
          pass = 1;
          events;
          kept_edges = !size;
          memory_bits = mem1;
          matching_size = !size;
          augmented = !size;
        })
  in
  let stats = ref [ first_stat ] in
  let converged = ref false in
  let pass = ref 2 in
  while (not !converged) && !pass <= max_passes do
    let p = !pass in
    (* Sparsifier pass: keep up to 2k edges at a free endpoint, k at a
       matched one — free vertices are where augmenting paths start, so
       they get the larger budget. *)
    let matched_now = Array.make n false in
    List.iter
      (fun (u, v) ->
        matched_now.(u) <- true;
        matched_now.(v) <- true)
      !matching;
    let cap v = if matched_now.(v) then k else 2 * k in
    let kept_deg = Array.make n 0 in
    let builder = Graph.Builder.create ~capacity:(max 16 ((n * k) / 2)) n in
    let kept = ref 0 in
    List.iter
      (fun (u, v) ->
        if kept_deg.(u) < cap u && kept_deg.(v) < cap v then begin
          kept_deg.(u) <- kept_deg.(u) + 1;
          kept_deg.(v) <- kept_deg.(v) + 1;
          Graph.Builder.add_edge builder u v;
          incr kept
        end)
      edges;
    (* The current matching rides along so blossom can only grow it. *)
    List.iter (fun (u, v) -> Graph.Builder.add_edge builder u v) !matching;
    let sub = Graph.Builder.freeze builder in
    let memory_bits =
      matching_bits ~n !size + (!kept * 2 * bits_per_vertex n)
    in
    let stat =
      pass_span ~pass:p ~memory_bits ~matching_size:!size (fun () ->
          let improved = Dgraph.Blossom.maximum_matching sub in
          let new_size = Matching.size improved in
          let augmented = new_size - !size in
          if augmented > 0 then begin
            matching := improved;
            size := new_size
          end
          else converged := true;
          {
            pass = p;
            events;
            kept_edges = !kept;
            memory_bits;
            matching_size = !size;
            augmented = max 0 augmented;
          })
    in
    stats := stat :: !stats;
    incr pass
  done;
  (* Blossom maximises over the sparsified subgraph only: an edge the
     caps dropped can be left with both endpoints free when augmenting
     frees a previously matched vertex. One last greedy sweep over the
     stream restores maximality in the full graph — the same one-pass
     memory budget as pass 1, and a no-op on almost every instance. *)
  let matched_fin = Array.make n false in
  List.iter
    (fun (u, v) ->
      matched_fin.(u) <- true;
      matched_fin.(v) <- true)
    !matching;
  let extra = ref [] in
  List.iter
    (fun (u, v) ->
      if (not matched_fin.(u)) && not matched_fin.(v) then begin
        matched_fin.(u) <- true;
        matched_fin.(v) <- true;
        extra := (u, v) :: !extra
      end)
    edges;
  if !extra <> [] then matching := !matching @ List.rev !extra;
  let passes = List.rev !stats in
  {
    matching = !matching;
    passes;
    peak_memory_bits = List.fold_left (fun acc s -> max acc s.memory_bits) 0 passes;
    converged = !converged;
  }

(* The r-round referee engine. One iteration = one simultaneous sketch
   round followed by one referee step; [Continue] charges the broadcast,
   [Finish] ends the run. The two fixed engines embed exactly (adapters
   below), which is what lets test_multipass pin r=1/r=2 runs
   byte-identical to [Model.run]/[Rounds.run]. *)

module Model = Sketchmodel.Model
module Coins = Sketchmodel.Public_coins
module Writer = Stdx.Bitbuf.Writer
module Reader = Stdx.Bitbuf.Reader

type ('b, 'a) step = Continue of 'b | Finish of 'a

type ('b, 'a) protocol = {
  name : string;
  max_rounds : int;
  init : n:int -> Coins.t -> 'b;
  player : round:int -> Model.view -> 'b -> Coins.t -> Writer.t;
  referee :
    round:int -> n:int -> state:'b -> sketches:Reader.t array -> Coins.t -> ('b, 'a) step;
  encode_broadcast : 'b -> Writer.t;
}

type stats = {
  rounds : int;
  max_bits : int;
  total_bits : int;
  broadcast_bits : int;
  round_max : int array;
  round_total : int array;
  round_broadcast : int array;
}

(* Same span name and args as [Sketchmodel.Rounds.run] and the hypergraph
   multi-round runner, so every protocol's round structure reads uniformly
   in a trace. *)
let round_span name r body =
  Stdx.Trace.span
    ~args:(fun () -> [ ("round", Stdx.Trace.Int r); ("protocol", Stdx.Trace.Str name) ])
    "protocol.round" body

let run_views protocol ~n views coins =
  let players = Array.length views in
  let per_player = Array.make players 0 in
  let round_max = ref [] and round_total = ref [] and round_broadcast = ref [] in
  let state = ref (protocol.init ~n coins) in
  let result = ref None in
  let round = ref 1 in
  while Option.is_none !result do
    if !round > protocol.max_rounds then
      failwith (protocol.name ^ ": round limit exceeded");
    let r = !round in
    round_span protocol.name r (fun () ->
        let writers = Array.map (fun view -> protocol.player ~round:r view !state coins) views in
        let sizes = Array.map Writer.length_bits writers in
        Array.iteri (fun p bits -> per_player.(p) <- per_player.(p) + bits) sizes;
        round_max := Array.fold_left max 0 sizes :: !round_max;
        round_total := Array.fold_left ( + ) 0 sizes :: !round_total;
        let sketches = Array.map Reader.of_writer writers in
        match protocol.referee ~round:r ~n ~state:!state ~sketches coins with
        | Continue b ->
            round_broadcast := Writer.length_bits (protocol.encode_broadcast b) :: !round_broadcast;
            state := b
        | Finish a ->
            round_broadcast := 0 :: !round_broadcast;
            result := Some a);
    incr round
  done;
  let output = match !result with Some a -> a | None -> assert false in
  let round_max = Array.of_list (List.rev !round_max) in
  let round_total = Array.of_list (List.rev !round_total) in
  let round_broadcast = Array.of_list (List.rev !round_broadcast) in
  ( output,
    {
      rounds = Array.length round_max;
      max_bits = Array.fold_left max 0 per_player;
      total_bits = Array.fold_left ( + ) 0 per_player;
      broadcast_bits = Array.fold_left ( + ) 0 round_broadcast;
      round_max;
      round_total;
      round_broadcast;
    } )

let run protocol g coins =
  run_views protocol ~n:(Dgraph.Graph.n g) (Model.views g) coins

let of_one_round (p : 'a Model.protocol) =
  {
    name = p.Model.name;
    max_rounds = 1;
    init = (fun ~n:_ _ -> ());
    player = (fun ~round:_ view () coins -> p.Model.player view coins);
    referee =
      (fun ~round:_ ~n ~state:() ~sketches coins -> Finish (p.Model.referee ~n ~sketches coins));
    encode_broadcast = (fun () -> Writer.create ());
  }

let of_two_round (p : ('b, 'a) Sketchmodel.Rounds.protocol) =
  {
    name = p.Sketchmodel.Rounds.name;
    max_rounds = 2;
    init = (fun ~n:_ _ -> None);
    player =
      (fun ~round view state coins ->
        match (round, state) with
        | 1, _ -> p.Sketchmodel.Rounds.round1 view coins
        | _, Some b -> p.Sketchmodel.Rounds.round2 view b coins
        | _, None -> assert false);
    referee =
      (fun ~round ~n ~state ~sketches coins ->
        match (round, state) with
        | 1, _ -> Continue (Some (p.Sketchmodel.Rounds.decide ~n ~sketches coins))
        | _, Some b -> Finish (p.Sketchmodel.Rounds.finish ~n ~broadcast:b ~sketches coins)
        | _, None -> assert false);
    encode_broadcast =
      (function
      | None -> Writer.create () | Some b -> p.Sketchmodel.Rounds.encode_broadcast b);
  }

let pp_stats ppf s =
  Format.fprintf ppf "rounds=%d max=%d bits total=%d bits broadcast=%d bits [per-round max:%s]"
    s.rounds s.max_bits s.total_bits s.broadcast_bits
    (String.concat ","
       (Array.to_list (Array.map string_of_int s.round_max)))

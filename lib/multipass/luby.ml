module Model = Sketchmodel.Model
module Public_coins = Sketchmodel.Public_coins
module Writer = Stdx.Bitbuf.Writer
module Reader = Stdx.Bitbuf.Reader

type priority = Random | Degree | Index

let priority_name = function
  | Random -> "random"
  | Degree -> "degree"
  | Index -> "index"

type state = {
  degs : int array option;
  degs_fresh : bool;
  chosen : bool array;
  blocked : bool array;
}

let draw coins ~label v = Stdx.Prng.int (Public_coins.keyed coins label v) (1 lsl 40)

(* u strictly beats v; a total order (id tie-breaks), so two active
   neighbours can never join in the same round. *)
let beats kind ~degs coins ~label u v =
  match kind with
  | Index -> u > v
  | Random ->
      let pu = draw coins ~label u and pv = draw coins ~label v in
      pu > pv || (pu = pv && u > v)
  | Degree ->
      let du = degs.(u) and dv = degs.(v) in
      du < dv
      ||
      (du = dv
      &&
      let pu = draw coins ~label u and pv = draw coins ~label v in
      pu > pv || (pu = pv && u > v))

let round_label kind lr = Printf.sprintf "mp-luby-%s-r%d" (priority_name kind) lr

let needs_degrees = function Degree -> true | Random | Index -> false

let protocol kind ~n =
  let prep = if needs_degrees kind then 1 else 0 in
  {
    Rounds.name = "luby-mis-" ^ priority_name kind;
    max_rounds = n + 2 + prep;
    init =
      (fun ~n _coins ->
        {
          degs = None;
          degs_fresh = false;
          chosen = Array.make n false;
          blocked = Array.make n false;
        });
    player =
      (fun ~round (view : Model.view) state coins ->
        let w = Writer.create () in
        let v = view.Model.vertex in
        if round <= prep then Writer.uvarint w (Array.length view.Model.neighbors)
        else if not (state.chosen.(v) || state.blocked.(v)) then begin
          let degs = match state.degs with Some d -> d | None -> [||] in
          let label = round_label kind (round - prep) in
          let blocked_now =
            Array.exists (fun u -> state.chosen.(u)) view.Model.neighbors
          in
          let joins =
            (not blocked_now)
            && Array.for_all
                 (fun u ->
                   state.chosen.(u) || state.blocked.(u)
                   || beats kind ~degs coins ~label v u)
                 view.Model.neighbors
          in
          Writer.bit w joins;
          Writer.bit w blocked_now
        end;
        w);
    referee =
      (fun ~round ~n ~state ~sketches _coins ->
        if round <= prep then begin
          let degs = Array.map Reader.uvarint sketches in
          Rounds.Continue { state with degs = Some degs; degs_fresh = true }
        end
        else begin
          let chosen = Array.copy state.chosen
          and blocked = Array.copy state.blocked in
          Array.iteri
            (fun v r ->
              if Reader.remaining_bits r >= 2 then begin
                let joins = Reader.bit r in
                let blocked_now = Reader.bit r in
                if joins then chosen.(v) <- true
                else if blocked_now then blocked.(v) <- true
              end)
            sketches;
          let active = ref false in
          for v = 0 to n - 1 do
            if not (chosen.(v) || blocked.(v)) then active := true
          done;
          if !active then
            Rounds.Continue { state with chosen; blocked; degs_fresh = false }
          else begin
            let out = ref [] in
            for v = n - 1 downto 0 do
              if chosen.(v) then out := v :: !out
            done;
            Rounds.Finish !out
          end
        end);
    encode_broadcast =
      (fun state ->
        let w = Writer.create () in
        (match (state.degs_fresh, state.degs) with
        | true, Some degs -> Array.iter (Writer.uvarint w) degs
        | _ -> ());
        Array.iter (Writer.bit w) state.chosen;
        Array.iter (Writer.bit w) state.blocked;
        w);
  }

let run kind g coins = Rounds.run (protocol kind ~n:(Dgraph.Graph.n g)) g coins

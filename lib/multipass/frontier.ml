module Model = Sketchmodel.Model
module Public_coins = Sketchmodel.Public_coins
module Writer = Stdx.Bitbuf.Writer
module Reader = Stdx.Bitbuf.Reader

type state = { decided : bool array; mis_rev : int list; fresh : int list }

let blocks ~n ~rounds =
  if rounds < 1 then invalid_arg "Frontier.blocks: rounds must be >= 1";
  let cutoffs = Array.make rounds n in
  let fn = float_of_int n in
  for t = 0 to rounds - 2 do
    let raw =
      int_of_float (ceil (fn ** (float_of_int (t + 1) /. float_of_int rounds)))
    in
    let prev = if t = 0 then 0 else cutoffs.(t - 1) in
    cutoffs.(t) <- min n (max raw prev)
  done;
  cutoffs

(* The permutation is public: every player and the referee re-derive it
   from the coins, costing no communication. *)
let shared_order coins ~n =
  let rng = Public_coins.global coins "frontier-prefix-permutation" in
  let pi = Stdx.Prng.permutation rng n in
  let pos = Array.make n 0 in
  Array.iteri (fun p v -> pos.(v) <- p) pi;
  (pi, pos)

(* Round t: every still-undecided player reports its undecided neighbours
   inside the round's prefix [0, s_t). Decided players stay silent (empty
   sketch). Undecided neighbours in *earlier* blocks cannot exist — greedy
   over a block decides all its members — so the reports are exactly the
   edges against the new block. *)
let player ~cutoffs ~round (view : Model.view) state coins =
  let w = Writer.create () in
  let v = view.Model.vertex in
  if not state.decided.(v) then begin
    let _, pos = shared_order coins ~n:view.Model.n in
    let cutoff = cutoffs.(round - 1) in
    Writer.int_list w
      (Array.to_list view.Model.neighbors
      |> List.filter (fun u -> pos.(u) < cutoff && not state.decided.(u)))
  end;
  w

let referee ~rounds ~cutoffs ~round ~n ~state ~sketches coins =
  let pi, _ = shared_order coins ~n in
  let lo = if round = 1 then 0 else cutoffs.(round - 2) in
  let hi = cutoffs.(round - 1) in
  let adj = Array.make n [] in
  Array.iteri
    (fun v r ->
      if Reader.remaining_bits r > 0 then
        List.iter
          (fun u -> if u <> v && u >= 0 && u < n then adj.(v) <- u :: adj.(v))
          (Reader.int_list r))
    sketches;
  (* Greedy over the new block in permutation order. Undecided block
     members have no neighbour in the current MIS (they would be decided),
     so independence only needs guarding against this round's joins. *)
  let new_in = Array.make n false in
  let fresh = ref [] in
  for p = lo to hi - 1 do
    let v = pi.(p) in
    if (not state.decided.(v)) && not (List.exists (fun u -> new_in.(u)) adj.(v))
    then begin
      new_in.(v) <- true;
      fresh := v :: !fresh
    end
  done;
  let decided = Array.copy state.decided in
  for v = 0 to n - 1 do
    if not decided.(v) then
      decided.(v) <- new_in.(v) || List.exists (fun u -> new_in.(u)) adj.(v)
  done;
  let fresh = List.rev !fresh in
  let mis_rev = List.rev_append fresh state.mis_rev in
  if round = rounds then Rounds.Finish (List.rev mis_rev)
  else Rounds.Continue { decided; mis_rev; fresh }

let encode_broadcast state =
  let w = Writer.create () in
  Array.iter (Writer.bit w) state.decided;
  Writer.int_list w state.fresh;
  w

let protocol ~rounds ~n =
  if rounds < 1 then invalid_arg "Frontier.protocol: rounds must be >= 1";
  let cutoffs = blocks ~n ~rounds in
  {
    Rounds.name = Printf.sprintf "frontier-prefix-mis-r%d" rounds;
    max_rounds = rounds;
    init =
      (fun ~n _coins ->
        { decided = Array.make n false; mis_rev = []; fresh = [] });
    player = (fun ~round view state coins -> player ~cutoffs ~round view state coins);
    referee =
      (fun ~round ~n ~state ~sketches coins ->
        referee ~rounds ~cutoffs ~round ~n ~state ~sketches coins);
    encode_broadcast;
  }

let run ?(rounds = 2) g coins =
  Rounds.run (protocol ~rounds ~n:(Dgraph.Graph.n g)) g coins

(** Luby-style r-round MIS protocols under three priority schemes
    (SNIPPETS.md snippets 1–2): the upper-bound contrast rows of the
    round frontier.

    Each round, every active vertex (neither chosen nor blocked) compares
    itself against its active neighbours under a strict total priority
    order and joins iff it beats them all; vertices with a chosen
    neighbour report themselves blocked. Players send two bits per round
    ([joins], [blocked_now]); the referee broadcasts the updated
    chosen/blocked bitmaps. Simultaneous joins of two neighbours are
    impossible (one beats the other), and the globally top-priority active
    vertex always joins or blocks, so the protocol terminates with a
    maximal independent set in at most n rounds.

    Priorities:
    - {!Random}: fresh public-coin draws each round (classic Luby) — no
      extra communication, both sides derive the draws from the coins;
    - {!Degree}: lower degree beats higher (random + id tie-breaks) —
      players cannot see neighbours' degrees, so a one-round degree
      exchange precedes the Luby rounds (uvarint up, degree vector down);
    - {!Index}: the fixed id order — deterministic, the worst case of the
      family (a path decided one vertex per round). *)

type priority = Random | Degree | Index

val priority_name : priority -> string
(** ["random"], ["degree"], ["index"] — used in protocol ids and table
    rows. *)

type state = {
  degs : int array option;  (** broadcast by the prep round (Degree only) *)
  degs_fresh : bool;  (** charge the degree vector only once *)
  chosen : bool array;
  blocked : bool array;
}

val protocol : priority -> n:int -> (state, Dgraph.Mis.t) Rounds.protocol
(** The r-round protocol; [n >= 0]. The output lists MIS members in
    ascending vertex order. *)

val run :
  priority ->
  Dgraph.Graph.t ->
  Sketchmodel.Public_coins.t ->
  Dgraph.Mis.t * Rounds.stats

(** Multi-pass semi-streaming (1+ε)-approximate maximum matching
    (SNIPPETS.md snippet 3 / arXiv:2412.19057 lineage): the pass axis of
    the frontier.

    Pass 1 runs greedy maximal matching over the edge stream (a
    2-approximation, the single-pass baseline of [Streams.Insertion_greedy]).
    Each later pass streams the edges again and keeps a bounded-degree
    {e sparsifier}: at most [2k] kept edges incident to a free vertex and
    [k] to a matched one, [k = ⌈1/ε⌉], so the retained state is
    [O(nk log n)] bits — semi-streaming. The pass then re-matches the
    sparsifier plus the current matching with the exact blossom matcher;
    since the current matching is a subgraph, the matching never shrinks.
    Passes stop at the first non-improving pass or at the pass budget.

    By Hopcroft–Karp, a matching with no augmenting path shorter than
    [2k+1] is a (1+1/k)-approximation; the sparsifier is the pass-bounded
    surrogate for that search, and the [stream-matching] experiment
    measures the achieved ratio against the exact optimum. Every pass is
    wrapped in a [stream.pass] trace span carrying its memory and matching
    size. *)

type pass_stat = {
  pass : int;  (** 1-based *)
  events : int;  (** stream events scanned in this pass *)
  kept_edges : int;  (** sparsifier size (pass 1: the matching itself) *)
  memory_bits : int;  (** retained state during the pass *)
  matching_size : int;  (** matching size after the pass *)
  augmented : int;  (** matching growth in this pass *)
}

type result = {
  matching : Dgraph.Matching.t;
  passes : pass_stat list;  (** in pass order *)
  peak_memory_bits : int;
  converged : bool;  (** stopped on a non-improving pass, not the budget *)
}

val run : ?eps:float -> ?max_passes:int -> Streams.Stream.t -> result
(** [run ~eps stream] on an insertion-only stream; raises
    [Invalid_argument] on deletions (greedy cannot start from a dynamic
    stream) or [eps <= 0]. [max_passes] defaults to [k²], the poly(1/ε)
    budget. *)

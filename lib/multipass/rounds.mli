(** The r-round referee engine: the general form of the model's adaptive
    extension, with first-class per-round accounting.

    The repo's fixed engines are special cases: {!Sketchmodel.Model.run}
    is one round (the referee answers immediately), {!Sketchmodel.Rounds.run}
    is two (one broadcast in between). This module runs {e any} number of
    sketch rounds, each followed by one referee broadcast, and records the
    bit cost of every boundary: per-round player maxima and totals,
    per-round broadcast sizes, and the cumulative figures the two fixed
    engines report. The adapters {!of_one_round} and {!of_two_round} embed
    the existing protocol types so that an r=1 or r=2 run is byte-identical
    — same output, same bit counts — to the engine it generalises
    ([test_multipass.ml] pins both).

    Every round boundary is a [protocol.round] trace span (args [round],
    [protocol]), the same span name the two fixed engines emit, so a
    Perfetto trace of any protocol in the repo shows its round structure
    uniformly. *)

module Model = Sketchmodel.Model

(** What the referee does with a round's sketches: broadcast a new state
    (its encoded size is charged) and run another round, or stop. *)
type ('b, 'a) step = Continue of 'b | Finish of 'a

type ('b, 'a) protocol = {
  name : string;
  max_rounds : int;  (** Hard round limit; exceeding it is a protocol bug. *)
  init : n:int -> Sketchmodel.Public_coins.t -> 'b;
      (** The state players see in round 1. Not charged: it is a pure
          function of public information (n and the coins). *)
  player : round:int -> Model.view -> 'b -> Sketchmodel.Public_coins.t -> Stdx.Bitbuf.Writer.t;
      (** Player sketch for the given (1-based) round, seeing the latest
          broadcast state. *)
  referee :
    round:int ->
    n:int ->
    state:'b ->
    sketches:Stdx.Bitbuf.Reader.t array ->
    Sketchmodel.Public_coins.t ->
    ('b, 'a) step;
      (** Consume a round's sketches: [Continue b] broadcasts [b] (charged
          at [encode_broadcast b]'s size) and runs another round; [Finish]
          ends the protocol (nothing further is charged). *)
  encode_broadcast : 'b -> Stdx.Bitbuf.Writer.t;
      (** How a broadcast state would be serialised; only its length is
          used, exactly as in {!Sketchmodel.Rounds}. *)
}

type stats = {
  rounds : int;  (** Rounds actually run. *)
  max_bits : int;  (** Worst-case per-player total over all rounds. *)
  total_bits : int;  (** Sum over players and rounds. *)
  broadcast_bits : int;  (** Cumulative broadcast cost. *)
  round_max : int array;  (** Per round: worst single player's bits. *)
  round_total : int array;  (** Per round: summed player bits. *)
  round_broadcast : int array;
      (** Per round: the broadcast that {e followed} it (0 for the final
          round — a [Finish] broadcasts nothing). *)
}

val run_views :
  ('b, 'a) protocol ->
  n:int ->
  Model.view array ->
  Sketchmodel.Public_coins.t ->
  'a * stats
(** Run on explicit player views (the {!Sketchmodel.Model.run_views}
    analogue); raises [Failure] if the referee never finishes within
    [max_rounds]. *)

val run : ('b, 'a) protocol -> Dgraph.Graph.t -> Sketchmodel.Public_coins.t -> 'a * stats
(** Run on a graph's standard one-player-per-vertex views. *)

val of_one_round : 'a Model.protocol -> (unit, 'a) protocol
(** Embed a one-round protocol: running it here gives the same output and
    the same [max_bits]/[total_bits] as {!Sketchmodel.Model.run}, with
    [rounds = 1] and no broadcast. *)

val of_two_round : ('b, 'a) Sketchmodel.Rounds.protocol -> ('b option, 'a) protocol
(** Embed a two-round protocol: same output as {!Sketchmodel.Rounds.run},
    with [round_max] matching [round1_max]/[round2_max] and
    [broadcast_bits] equal bit for bit. *)

val pp_stats : Format.formatter -> stats -> unit

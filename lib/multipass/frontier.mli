(** The r-round prefix-greedy MIS family: the rounds-vs-communication
    frontier.

    Generalises the two-round protocol of [Protocols.Two_round_mis] to any
    number of rounds. A shared random permutation π splits the vertices
    into r blocks with boundaries s_t = ⌈n^(t/r)⌉ (s_r = n); round t runs
    referee-side greedy over the still-undecided vertices of block t, using
    only the edges the undecided players report against that block. After
    its block is processed every vertex is decided (chosen or dominated),
    so after round r the output is a maximal independent set of the input
    graph — for {e every} r.

    The bit cost interpolates the frontier of arXiv:2209.09049: r = 1
    degenerates to players shipping their whole adjacency (the regime the
    paper's one-round lower bound lives in), r = 2 matches the √n-prefix
    shape of the two-round protocol, and larger r trades rounds for
    per-round communication. The [round-frontier] experiment tabulates
    exactly this curve. *)

type state = {
  decided : bool array;  (** chosen or dominated so far *)
  mis_rev : int list;  (** members, most recent first *)
  fresh : int list;  (** members added by the latest round (broadcast) *)
}

val blocks : n:int -> rounds:int -> int array
(** [blocks ~n ~rounds] is the r monotone prefix cutoffs
    s_t = ⌈n^(t/r)⌉ with the last forced to n. *)

val protocol : rounds:int -> n:int -> (state, Dgraph.Mis.t) Rounds.protocol
(** The r-round protocol; [rounds >= 1]. The output lists MIS members in
    joining (permutation) order. *)

val run :
  ?rounds:int ->
  Dgraph.Graph.t ->
  Sketchmodel.Public_coins.t ->
  Dgraph.Mis.t * Rounds.stats
(** Run on a graph (default [rounds = 2]). *)

(* Daemon observability: request counters per operation, error counts, and
   a fixed-size ring of recent request latencies from which the `stats` RPC
   computes percentiles. All updates take one mutex — contention is
   irrelevant next to the experiment runs being measured. *)

type t = {
  mutex : Mutex.t;
  by_op : (string, int) Hashtbl.t;
  mutable total : int;
  mutable errors : int;
  latency_ring : float array;  (* milliseconds, newest overwrites oldest *)
  mutable ring_used : int;
  mutable ring_next : int;
  started_at : float;
  (* Connection book-keeping, fed by the daemon's event loop. *)
  mutable conns_open : int;  (* gauge: currently accepted *)
  mutable conns_accepted : int;
  mutable conns_rejected : int;  (* over the max-connections cap *)
  mutable idle_timeouts : int;
  mutable rate_limited : int;
}

let ring_size = 1024

let create () =
  {
    mutex = Mutex.create ();
    by_op = Hashtbl.create 8;
    total = 0;
    errors = 0;
    latency_ring = Array.make ring_size 0.;
    ring_used = 0;
    ring_next = 0;
    started_at = Unix.gettimeofday ();
    conns_open = 0;
    conns_accepted = 0;
    conns_rejected = 0;
    idle_timeouts = 0;
    rate_limited = 0;
  }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let record t ~op ~ok ~ms =
  locked t (fun () ->
      t.total <- t.total + 1;
      if not ok then t.errors <- t.errors + 1;
      Hashtbl.replace t.by_op op (1 + Option.value ~default:0 (Hashtbl.find_opt t.by_op op));
      t.latency_ring.(t.ring_next) <- ms;
      t.ring_next <- (t.ring_next + 1) mod ring_size;
      t.ring_used <- min ring_size (t.ring_used + 1))

let conn_opened t =
  locked t (fun () ->
      t.conns_open <- t.conns_open + 1;
      t.conns_accepted <- t.conns_accepted + 1)

let conn_closed t = locked t (fun () -> t.conns_open <- max 0 (t.conns_open - 1))
let conn_rejected t = locked t (fun () -> t.conns_rejected <- t.conns_rejected + 1)
let idle_timeout t = locked t (fun () -> t.idle_timeouts <- t.idle_timeouts + 1)
let rate_limited t = locked t (fun () -> t.rate_limited <- t.rate_limited + 1)

type snapshot = {
  uptime_s : float;
  total : int;
  errors : int;
  by_op : (string * int) list;  (* sorted by op name *)
  latency_count : int;
  p50_ms : float;
  p90_ms : float;
  p99_ms : float;
  max_ms : float;
  conns_open : int;
  conns_accepted : int;
  conns_rejected : int;
  idle_timeouts : int;
  rate_limited : int;
}

let snapshot t =
  locked t (fun () ->
      let lat = Array.sub t.latency_ring 0 t.ring_used in
      let q p = if t.ring_used = 0 then 0. else Stdx.Stats.quantile lat p in
      {
        uptime_s = Unix.gettimeofday () -. t.started_at;
        total = t.total;
        errors = t.errors;
        by_op =
          Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.by_op []
          |> List.sort (fun (a, _) (b, _) -> compare a b);
        latency_count = t.ring_used;
        p50_ms = q 0.5;
        p90_ms = q 0.9;
        p99_ms = q 0.99;
        max_ms = (if t.ring_used = 0 then 0. else Array.fold_left max 0. lat);
        conns_open = t.conns_open;
        conns_accepted = t.conns_accepted;
        conns_rejected = t.conns_rejected;
        idle_timeouts = t.idle_timeouts;
        rate_limited = t.rate_limited;
      })

(* Request scheduler: admission control in front of a persistent
   [Stdx.Parallel.Pool] of worker domains.

   The pool's queue is unbounded; this layer bounds it. [run] counts a
   request against [capacity] at submission and releases the slot when the
   job finishes (or is dropped), so [depth] is "queued + running". A
   request arriving with all slots taken is shed immediately — the 429 of
   the wire protocol — instead of growing an unbounded backlog under
   overload.

   Two best-effort drop points run on the worker, just before the real
   work: a deadline check (a request that waited past its budget is not
   worth computing — the client has likely timed out) and a caller-supplied
   cancellation probe (the daemon passes "has the client socket gone?", so
   a disconnected client's heavy run is skipped rather than computed into
   the void). Neither preempts running work: OCaml compute can't be safely
   interrupted mid-table, and a completed run is still useful — it is
   cached. *)

type t = {
  pool : Stdx.Parallel.Pool.t;
  mutex : Mutex.t;
  mutable depth : int;  (* queued + running *)
  capacity : int;
  mutable shed : int;
  mutable deadline_drops : int;
  mutable cancelled_drops : int;
  mutable closing : bool;
}

type error = Overloaded | Deadline_exceeded | Cancelled | Shutting_down | Failed of string

let create ?(workers = 2) ?(capacity = 16) () =
  if capacity < 1 then invalid_arg "Scheduler.create: capacity";
  {
    pool = Stdx.Parallel.Pool.create ~workers ();
    mutex = Mutex.create ();
    depth = 0;
    capacity;
    shed = 0;
    deadline_drops = 0;
    cancelled_drops = 0;
    closing = false;
  }

let workers t = Stdx.Parallel.Pool.workers t.pool

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* Per-request result cell the submitting thread blocks on. *)
type 'a cell = {
  cmutex : Mutex.t;
  cond : Condition.t;
  mutable result : ('a, error) result option;
}

let fill cell r =
  Mutex.lock cell.cmutex;
  cell.result <- Some r;
  Condition.signal cell.cond;
  Mutex.unlock cell.cmutex

let await cell =
  Mutex.lock cell.cmutex;
  while cell.result = None do
    Condition.wait cell.cond cell.cmutex
  done;
  let r = match cell.result with Some r -> r | None -> assert false in
  Mutex.unlock cell.cmutex;
  r

(* Asynchronous submission: admission happens here (a shed request's [k]
   runs synchronously on the caller — the event thread gets its 429
   without a thread handoff); an admitted job's [k] runs on the worker
   domain that executed (or dropped) it. The event engine's completion
   path is [k]'s responsibility — it posts back to the event loop. *)
let submit t ?deadline ?(cancelled = fun () -> false) f ~k =
  let admitted =
    locked t (fun () ->
        if t.closing then Error Shutting_down
        else if t.depth >= t.capacity then begin
          t.shed <- t.shed + 1;
          Error Overloaded
        end
        else begin
          t.depth <- t.depth + 1;
          Ok ()
        end)
  in
  match admitted with
  | Error Overloaded ->
      Stdx.Trace.instant "scheduler.shed";
      k (Error Overloaded)
  | Error _ as e -> k e
  | Ok () ->
      (* Guarded: the depth read takes the mutex, don't pay it when off. *)
      if Stdx.Trace.enabled () then
        Stdx.Trace.counter "scheduler.depth" (locked t (fun () -> t.depth));
      let job () =
        let outcome =
          if (match deadline with Some d -> Unix.gettimeofday () > d | None -> false) then begin
            locked t (fun () -> t.deadline_drops <- t.deadline_drops + 1);
            Stdx.Trace.instant "scheduler.deadline-drop";
            Error Deadline_exceeded
          end
          else if cancelled () then begin
            locked t (fun () -> t.cancelled_drops <- t.cancelled_drops + 1);
            Stdx.Trace.instant "scheduler.cancelled-drop";
            Error Cancelled
          end
          else
            match Stdx.Trace.span "scheduler.compute" f with
            | v -> Ok v
            | exception e -> Error (Failed (Printexc.to_string e))
        in
        locked t (fun () -> t.depth <- t.depth - 1);
        k outcome
      in
      if not (Stdx.Parallel.Pool.submit t.pool job) then begin
        locked t (fun () -> t.depth <- t.depth - 1);
        k (Error Shutting_down)
      end

let run t ?deadline ?cancelled f =
  let cell = { cmutex = Mutex.create (); cond = Condition.create (); result = None } in
  submit t ?deadline ?cancelled f ~k:(fill cell);
  await cell

type stats = {
  depth : int;
  capacity : int;
  workers : int;
  shed : int;
  deadline_drops : int;
  cancelled_drops : int;
}

let stats t =
  locked t (fun () ->
      {
        depth = t.depth;
        capacity = t.capacity;
        workers = workers t;
        shed = t.shed;
        deadline_drops = t.deadline_drops;
        cancelled_drops = t.cancelled_drops;
      })

(* Graceful drain: refuse new work, then block until the pool has finished
   everything already admitted. *)
let shutdown t =
  locked t (fun () -> t.closing <- true);
  Stdx.Parallel.Pool.shutdown t.pool

let string_of_error = function
  | Overloaded -> "overloaded"
  | Deadline_exceeded -> "deadline-exceeded"
  | Cancelled -> "cancelled"
  | Shutting_down -> "shutting-down"
  | Failed msg -> "failed: " ^ msg

(* Backend health book-keeping for the proxy: one entry per configured
   backend, flipped up/down by the periodic ping sweep and by forwarding
   outcomes (a transport failure marks the backend down immediately; a
   successful response marks it up). One mutex — updates are a few words,
   contention is irrelevant next to the forwarded requests. *)

type status = {
  healthy : bool;
  failures : int;  (* consecutive failures since the last success *)
  last_error : string option;  (* what the most recent failure said *)
}

type entry = { addr : string; mutable status : status }
type t = { mutex : Mutex.t; entries : entry list (* configured order *) }

let create backends =
  {
    mutex = Mutex.create ();
    entries =
      (* Optimistic start: a backend is presumed healthy until a ping or a
         forward says otherwise, so the proxy serves before the first
         sweep completes. *)
      List.map
        (fun addr -> { addr; status = { healthy = true; failures = 0; last_error = None } })
        backends;
  }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let find t addr = List.find_opt (fun e -> e.addr = addr) t.entries

let mark_up t addr =
  locked t (fun () ->
      match find t addr with
      | Some e ->
          if not e.status.healthy then Stdx.Trace.instant "health.recovered";
          e.status <- { healthy = true; failures = 0; last_error = None }
      | None -> ())

let mark_down t addr ~error =
  locked t (fun () ->
      match find t addr with
      | Some e ->
          if e.status.healthy then Stdx.Trace.instant "health.down";
          e.status <-
            { healthy = false; failures = e.status.failures + 1; last_error = Some error }
      | None -> ())

let healthy t addr =
  locked t (fun () -> match find t addr with Some e -> e.status.healthy | None -> false)

let snapshot t = locked t (fun () -> List.map (fun e -> (e.addr, e.status)) t.entries)

let healthy_count t =
  locked t (fun () ->
      List.fold_left (fun n e -> if e.status.healthy then n + 1 else n) 0 t.entries)

(* One synchronous sweep: probe every backend, update its entry. *)
let sweep t ~ping =
  List.iter
    (fun (addr, _) ->
      match ping addr with
      | Ok () -> mark_up t addr
      | Error msg -> mark_down t addr ~error:msg)
    (snapshot t)

(* ------------------------------------------------------------------ *)
(* Periodic pinger: a background thread sweeping every [interval_s],
   woken early through a self-pipe when stopped.                       *)

type pinger = {
  thread : Thread.t;
  stop_w : Unix.file_descr;
  mutable stopped : bool;
}

let start_pinger t ~interval_s ~ping =
  let stop_r, stop_w = Unix.pipe () in
  let rec loop () =
    (* Sleep with a wake-up: select returns early when [stop] writes. *)
    match Unix.select [ stop_r ] [] [] interval_s with
    | [], _, _ ->
        sweep t ~ping;
        loop ()
    | _ -> ()  (* stop requested *)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
    | exception Unix.Unix_error _ -> ()
  in
  let thread =
    Thread.create
      (fun () ->
        loop ();
        try Unix.close stop_r with Unix.Unix_error _ -> ())
      ()
  in
  { thread; stop_w; stopped = false }

let stop_pinger p =
  if not p.stopped then begin
    p.stopped <- true;
    (try ignore (Unix.write p.stop_w (Bytes.of_string "!") 0 1) with Unix.Unix_error _ -> ());
    Thread.join p.thread;
    try Unix.close p.stop_w with Unix.Unix_error _ -> ()
  end

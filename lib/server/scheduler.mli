(** Request scheduler: bounded admission in front of a persistent pool of
    worker domains ({!Stdx.Parallel.Pool}).

    [depth] counts queued-plus-running requests against [capacity]; a
    request arriving with every slot taken is shed immediately
    ({!error.Overloaded} — the wire protocol's 429) instead of growing an
    unbounded backlog. Two best-effort drop points run on the worker just
    before the real work: a deadline check and a caller-supplied
    cancellation probe (the daemon passes "has the client disconnected?").
    Neither preempts running work. *)

type t
(** A scheduler: admission counter + worker pool. Safe to share. *)

type error =
  | Overloaded  (** queue full at submission — load shed *)
  | Deadline_exceeded  (** waited past its deadline; work skipped *)
  | Cancelled  (** cancellation probe fired before the work started *)
  | Shutting_down  (** submitted during {!shutdown} *)
  | Failed of string  (** the work itself raised *)

val create : ?workers:int -> ?capacity:int -> unit -> t
(** Defaults: 2 worker domains, capacity 16. *)

val workers : t -> int
(** Number of worker domains in the pool. *)

val submit :
  t ->
  ?deadline:float ->
  ?cancelled:(unit -> bool) ->
  (unit -> 'a) ->
  k:(('a, error) result -> unit) ->
  unit
(** Submit [f] without blocking; [k] receives the outcome exactly once.
    Admission happens here: a shed/draining request's [k] runs
    {e synchronously} on the caller (the event thread gets its 429
    without a thread handoff); an admitted job's [k] runs on the worker
    domain, after the compute (or the deadline/cancellation drop). [k]
    must not block for long and must not raise. [deadline] is an
    absolute [Unix.gettimeofday] instant checked when the job reaches a
    worker; [cancelled] is probed at the same point. *)

val run : t -> ?deadline:float -> ?cancelled:(unit -> bool) -> (unit -> 'a) -> ('a, error) result
(** {!submit} plus a blocking wait for the outcome — the synchronous
    convenience used by tests and anything with a thread to park. Safe to
    call from many threads concurrently. *)

type stats = {
  depth : int;  (** queued + running right now *)
  capacity : int;
  workers : int;
  shed : int;  (** requests rejected with [Overloaded] *)
  deadline_drops : int;
  cancelled_drops : int;
}
(** Live depth plus lifetime drop counters — the `stats` RPC's
    [scheduler] field. *)

val stats : t -> stats
(** A consistent snapshot of {!stats}. *)

val shutdown : t -> unit
(** Refuse new work and block until everything already admitted finishes.
    Idempotent. *)

val string_of_error : error -> string
(** Stable machine-readable tag, e.g. ["overloaded"] — the wire
    protocol's [error] field. *)

(** Content-addressed LRU result cache.

    Sound because runs are deterministic: a response payload is a pure
    function of its canonical key (experiment id, canonical params, seed —
    the [jobs] knob is excluded, results being bit-identical at any job
    count), so a stored payload is indistinguishable from a recomputation.

    Bounded in entries and in total payload bytes; least-recently-used
    entries evict first. Thread- and domain-safe (one internal mutex). *)

type t
(** A bounded cache; safe to share across threads and domains. *)

val create : ?max_entries:int -> ?max_bytes:int -> unit -> t
(** Defaults: 512 entries, 64 MiB. An entry larger than [max_bytes] on its
    own is simply not stored. *)

val find : t -> string -> string option
(** Lookup; bumps recency and the hit/miss counters. Records a
    ["cache.hit"]/["cache.miss"] trace instant when {!Stdx.Trace} is
    enabled. *)

val add : t -> string -> string -> unit
(** Insert (or refresh) [key -> payload], evicting LRU entries as needed. *)

val keys : ?prefix:string -> ?limit:int -> t -> int * (string * int) list
(** [keys ~prefix ~limit t] lists cached entries whose key starts with
    [prefix] (default: all) as [(key, payload_bytes)] pairs, sorted by
    key (deterministic — recency order would depend on arrival order) and
    truncated to [limit]. Returns [(matched, listed)] where [matched]
    counts every match before truncation. Does not bump recency or the
    hit/miss counters — inspection is not use. *)

val invalidate_prefix : t -> prefix:string -> int
(** Remove every entry whose key starts with [prefix]; returns how many
    were removed. Counted as [invalidations], not [evictions] — deliberate
    removal must not pollute the LRU-pressure signal. *)

type stats = {
  entries : int;
  bytes : int;
  hits : int;
  misses : int;
  evictions : int;
  invalidations : int;  (** removed via {!invalidate_prefix} *)
}
(** Lifetime counters plus current occupancy — the `stats` RPC's [cache]
    field. *)

val stats : t -> stats
(** A consistent snapshot of {!stats}. *)

(** Content-addressed LRU result cache.

    Sound because runs are deterministic: a response payload is a pure
    function of its canonical key (experiment id, canonical params, seed —
    the [jobs] knob is excluded, results being bit-identical at any job
    count), so a stored payload is indistinguishable from a recomputation.

    Bounded in entries and in total payload bytes; least-recently-used
    entries evict first. Thread- and domain-safe (one internal mutex). *)

type t
(** A bounded cache; safe to share across threads and domains. *)

val create : ?max_entries:int -> ?max_bytes:int -> unit -> t
(** Defaults: 512 entries, 64 MiB. An entry larger than [max_bytes] on its
    own is simply not stored. *)

val find : t -> string -> string option
(** Lookup; bumps recency and the hit/miss counters. Records a
    ["cache.hit"]/["cache.miss"] trace instant when {!Stdx.Trace} is
    enabled. *)

val add : t -> string -> string -> unit
(** Insert (or refresh) [key -> payload], evicting LRU entries as needed. *)

type stats = { entries : int; bytes : int; hits : int; misses : int; evictions : int }
(** Lifetime counters plus current occupancy — the `stats` RPC's [cache]
    field. *)

val stats : t -> stats
(** A consistent snapshot of {!stats}. *)

(** The [sketchd] TCP daemon: accept loop, per-connection threads, graceful
    shutdown — {!Service} does the thinking, this module does the I/O.

    Concurrency shape: connections ride lightweight threads (blocking I/O
    and framing only); compute rides the {!Scheduler}'s worker domains. A
    misbehaving client — garbage frame, oversized frame, mid-request
    disconnect — costs its own connection and nothing else. *)

type t
(** A running daemon: listener, accept thread, connection threads. *)

val start :
  ?host:string ->
  ?port:int ->
  ?workers:int ->
  ?capacity:int ->
  ?cache_entries:int ->
  ?cache_bytes:int ->
  ?log:(string -> unit) ->
  unit ->
  t
(** Bind, listen and start accepting. [port 0] (the default) lets the
    kernel choose — read it back with {!port}. [host] defaults to
    ["127.0.0.1"]. The remaining knobs are {!Service.create}'s. Installs a
    [SIGPIPE] ignore (a dead client mid-write must surface as [EPIPE]). *)

val start_handler :
  ?host:string ->
  ?port:int ->
  ?on_drain:(unit -> unit) ->
  ?service:Service.t ->
  handle:(cancelled:(unit -> bool) -> string -> Service.reply) ->
  unit ->
  t
(** {!start} generalised over the request brain: the same TCP layer —
    accept loop, per-connection threads, framing-error handling, graceful
    drain — around an arbitrary payload-to-reply function. This is how
    {!Proxy} listens without duplicating any socket machinery. [handle]
    must never raise (every failure should become an [ok:false] payload);
    [on_drain] runs once inside {!wait} after the last connection ends. *)

val port : t -> int
(** The bound TCP port (kernel-chosen when [start ~port:0]). *)

val service : t -> Service.t
(** The daemon's brain — exposed for in-process tests and stats. Raises
    [Invalid_argument] on a {!start_handler} daemon started without one. *)

val stop : ?abort_connections:bool -> t -> unit
(** Begin shutdown: close the listener (no new connections). With
    [~abort_connections:true] — the signal path — also shut down active
    sockets so idle connection readers wake up; in-flight computations
    still complete. The [shutdown] RPC triggers the gentle variant
    internally. *)

val wait : t -> unit
(** Block until the daemon is stopped (by {!stop}, a [shutdown] RPC, or a
    signal handler calling {!stop}) and every connection has finished, then
    drain the scheduler. The daemon's main thread lives here. *)

(** The [sketchd] TCP daemon: a single poll(2)-based event loop owning
    every socket — {!Service} does the thinking, this module does the I/O.

    Concurrency shape: one event thread multiplexes the listener and all
    client connections via {!Poll} (no [select], no [FD_SETSIZE] cliff);
    frames reassemble incrementally on {!Wire.Decoder}; compute rides the
    {!Scheduler}'s worker domains and replies return to the event thread
    as posted completions. Each connection is an explicit state machine:
    at most one request in flight (replies stay in request order, so
    clients may pipeline), partial writes buffered per connection, and
    reads suspended while output is pending or the pending-request queue
    is full — back-pressure that a slow or flooding client pays alone.

    A misbehaving client — garbage frame, oversized frame, mid-request
    disconnect — costs its own connection and nothing else. The event
    loop notices EOF immediately, which flags the scheduler's
    cancellation probe for that connection's queued compute.

    Hardening knobs (each observable in the `stats` RPC's [connections]
    block and as a trace instant): [max_conns] (accept, best-effort
    503 [conn-limit] frame, close), [idle_timeout_s] (best-effort 408
    [idle-timeout] frame), [rate_limit] (in-order 429 [rate-limited]
    replies; the connection survives), and TCP [keepalive]. *)

type t
(** A running daemon: listener plus one event thread. *)

val start :
  ?host:string ->
  ?port:int ->
  ?workers:int ->
  ?capacity:int ->
  ?cache_entries:int ->
  ?cache_bytes:int ->
  ?max_conns:int ->
  ?idle_timeout_s:float ->
  ?rate_limit:float ->
  ?keepalive:bool ->
  ?log:(string -> unit) ->
  unit ->
  t
(** Bind, listen and start accepting. [port 0] (the default) lets the
    kernel choose — read it back with {!port}. [host] defaults to
    ["127.0.0.1"]. [workers]/[capacity]/[cache_entries]/[cache_bytes]/[log]
    are {!Service.create}'s. Connection knobs: [max_conns] (default 8192)
    caps concurrent connections; [idle_timeout_s] (default 0 = off) evicts
    idle connections; [rate_limit] (default 0 = off) is requests/second
    per connection; [keepalive] (default true) sets [SO_KEEPALIVE] on
    accepted sockets. Installs a [SIGPIPE] ignore (a dead client
    mid-write must surface as [EPIPE]). *)

val start_handler :
  ?host:string ->
  ?port:int ->
  ?on_drain:(unit -> unit) ->
  ?service:Service.t ->
  ?metrics:Metrics.t ->
  ?max_conns:int ->
  ?idle_timeout_s:float ->
  ?rate_limit:float ->
  ?keepalive:bool ->
  ?dispatch_threads:int ->
  handle:(cancelled:(unit -> bool) -> string -> Service.reply) ->
  unit ->
  t
(** {!start} generalised over the request brain: the same event engine —
    poll loop, frame reassembly, buffered writes, connection limits,
    graceful drain — around an arbitrary blocking payload-to-reply
    function. This is how {!Proxy} listens without duplicating any socket
    machinery. [handle] runs on an internal pool of [dispatch_threads]
    (default 16) so its blocking I/O never stalls the event loop; it must
    never raise (every failure should become an [ok:false] payload).
    [metrics] receives the connection gauges (pass the proxy's own
    accumulator so its `stats` sees them). [on_drain] runs once inside
    {!wait} after the loop exits. *)

val port : t -> int
(** The bound TCP port (kernel-chosen when [start ~port:0]). *)

val service : t -> Service.t
(** The daemon's brain — exposed for in-process tests and stats. Raises
    [Invalid_argument] on a {!start_handler} daemon started without one. *)

val stop : ?abort_connections:bool -> t -> unit
(** Begin shutdown: close the listener (no new connections), stop
    dispatching pending requests, and close each connection once its
    in-flight reply has flushed. With [~abort_connections:true] — the
    signal path — close every connection immediately; in-flight
    computations still complete on the worker domains (their replies are
    discarded). The [shutdown] RPC triggers the gentle variant
    internally, after its acknowledgement frame is queued. *)

val wait : t -> unit
(** Block until the daemon is stopped (by {!stop}, a [shutdown] RPC, or a
    signal handler calling {!stop}) and the event loop has exited, then
    drain the dispatch pool and the scheduler. The daemon's main thread
    lives here. *)

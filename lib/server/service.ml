(* The daemon's brain, socket-free: parse a request payload, dispatch, and
   produce a response payload. Keeping this layer free of file descriptors
   makes every endpoint unit-testable in-process; [Daemon] only adds TCP
   framing, threads and signals around [handle].

   Request/response bodies are JSON objects through [Report.Tabular]'s
   bundled codec. Responses are built as canonical strings (object fields
   in fixed order, no whitespace) so that a cached payload is byte-
   identical to a recomputed one — the end-to-end determinism the CI smoke
   job asserts with `diff`.

   Cheap endpoints (`ping`, `list`, `stats`, `shutdown`) are answered on
   the calling (connection) thread; compute endpoints (`run`, `simulate`)
   first consult the result cache and only then go through the bounded
   [Scheduler] onto a worker domain. *)

module T = Report.Tabular
module R = Core.Exp_registry

type t = {
  cache : Cache.t;
  scheduler : Scheduler.t;
  metrics : Metrics.t;
  log : string -> unit;
  mutable draining : bool;  (* set once `shutdown` has been accepted *)
}

let create ?(workers = 2) ?(capacity = 16) ?cache_entries ?cache_bytes
    ?(log = fun _ -> ()) () =
  {
    cache = Cache.create ?max_entries:cache_entries ?max_bytes:cache_bytes ();
    scheduler = Scheduler.create ~workers ~capacity ();
    metrics = Metrics.create ();
    log;
    draining = false;
  }

let scheduler t = t.scheduler
let cache t = t.cache
let metrics t = t.metrics

(* ------------------------------------------------------------------ *)
(* Response building: canonical JSON text                              *)

let jstr s = "\"" ^ T.json_escape s ^ "\""

(* Fields are pre-rendered JSON text; order is the order given. *)
let obj fields =
  "{" ^ String.concat "," (List.map (fun (k, v) -> jstr k ^ ":" ^ v) fields) ^ "}"

let arr items = "[" ^ String.concat "," items ^ "]"
let ok_response fields = obj (("ok", "true") :: fields)

(* Machine-readable [error] tag, HTTP-flavoured [code], human [msg]. *)
let error_response ~code ~error msg =
  obj
    [
      ("ok", "false");
      ("error", jstr error);
      ("code", string_of_int code);
      ("msg", jstr msg);
    ]

let bad_request msg = error_response ~code:400 ~error:"bad-request" msg
let not_found msg = error_response ~code:404 ~error:"not-found" msg

let of_scheduler_error = function
  | Scheduler.Overloaded -> error_response ~code:429 ~error:"overloaded" "queue full; retry later"
  | Scheduler.Deadline_exceeded ->
      error_response ~code:504 ~error:"deadline-exceeded" "request waited past its deadline"
  | Scheduler.Cancelled -> error_response ~code:499 ~error:"cancelled" "client went away"
  | Scheduler.Shutting_down ->
      error_response ~code:503 ~error:"shutting-down" "server is draining"
  | Scheduler.Failed msg -> error_response ~code:500 ~error:"failed" msg

(* ------------------------------------------------------------------ *)
(* Request-field accessors                                             *)

let str_field j k = match T.member k j with Some (T.Jstr s) -> Some s | _ -> None
let int_field j k = match T.member k j with Some (T.Jint i) -> Some i | _ -> None
let bool_field j k = match T.member k j with Some (T.Jbool b) -> Some b | _ -> None

(* An absolute deadline from a relative "deadline_ms" request field. *)
let deadline_of j =
  match int_field j "deadline_ms" with
  | Some ms when ms > 0 -> Some (Unix.gettimeofday () +. (float_of_int ms /. 1000.))
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Experiment parameters                                               *)

let render_pvalue = function
  | R.Vint i -> string_of_int i
  | R.Vints l -> arr (List.map string_of_int l)

(* Canonical cache key: id plus every merged param in spec order — except
   [jobs], which only affects scheduling; the trial engine guarantees rows
   bit-identical at any job count, so two requests differing only in [jobs]
   share one cache entry. *)
let canonical_key id merged =
  let render (name, v) =
    name ^ "="
    ^ (match v with R.Vint i -> string_of_int i | R.Vints l -> String.concat "," (List.map string_of_int l))
  in
  id ^ "?" ^ String.concat "&" (List.map render (List.remove_assoc "jobs" merged))

let params_json merged =
  obj (List.map (fun (n, v) -> (n, render_pvalue v)) (List.remove_assoc "jobs" merged))

(* JSON request params -> registry overrides. *)
let overrides_of_json j =
  match T.member "params" j with
  | None -> Ok []
  | Some (T.Jobj fields) ->
      let rec conv acc = function
        | [] -> Ok (List.rev acc)
        | (name, T.Jint i) :: rest -> conv ((name, R.Vint i) :: acc) rest
        | (name, T.Jarr items) :: rest -> (
            let ints =
              List.fold_right
                (fun item acc ->
                  match (item, acc) with T.Jint i, Some l -> Some (i :: l) | _ -> None)
                items (Some [])
            in
            match ints with
            | Some l -> conv ((name, R.Vints l) :: acc) rest
            | None -> Error (Printf.sprintf "param %S: expected an integer array" name))
        | (name, _) :: _ ->
            Error (Printf.sprintf "param %S: expected an integer or integer array" name)
      in
      conv [] fields
  | Some _ -> Error "\"params\" must be a JSON object"

(* ------------------------------------------------------------------ *)
(* Endpoints                                                           *)

let handle_ping _t = ok_response [ ("op", jstr "ping"); ("version", jstr Stdx.Version.current) ]

let handle_list _t =
  let param_json (p : R.param) =
    obj
      [
        ("name", jstr p.R.name);
        ("doc", jstr p.R.doc);
        ("default", render_pvalue p.R.default);
      ]
  in
  let exp_json e =
    obj
      [
        ("id", jstr (R.id e));
        ("title", jstr (R.title e));
        ("doc", jstr (R.doc e));
        ("params", arr (List.map param_json (R.params e)));
      ]
  in
  let protocol_json (name, doc) = obj [ ("name", jstr name); ("doc", jstr doc) ] in
  ok_response
    [
      ("op", jstr "list");
      ("version", jstr Stdx.Version.current);
      ("experiments", arr (List.map exp_json (Core.Exp_all.all ())));
      ("protocols", arr (List.map protocol_json Simulate.protocols));
    ]

let handle_stats t =
  let m = Metrics.snapshot t.metrics in
  let c = Cache.stats t.cache in
  let s = Scheduler.stats t.scheduler in
  let f = T.float_repr in
  ok_response
    [
      ("op", jstr "stats");
      ("version", jstr Stdx.Version.current);
      ("uptime_s", f m.Metrics.uptime_s);
      ( "requests",
        obj
          [
            ("total", string_of_int m.Metrics.total);
            ("errors", string_of_int m.Metrics.errors);
            ("by_op", obj (List.map (fun (op, n) -> (op, string_of_int n)) m.Metrics.by_op));
          ] );
      ( "cache",
        obj
          [
            ("hits", string_of_int c.Cache.hits);
            ("misses", string_of_int c.Cache.misses);
            ("entries", string_of_int c.Cache.entries);
            ("bytes", string_of_int c.Cache.bytes);
            ("evictions", string_of_int c.Cache.evictions);
            ("invalidations", string_of_int c.Cache.invalidations);
          ] );
      ( "queue",
        obj
          [
            ("depth", string_of_int s.Scheduler.depth);
            ("capacity", string_of_int s.Scheduler.capacity);
            ("workers", string_of_int s.Scheduler.workers);
            ("shed", string_of_int s.Scheduler.shed);
            ("deadline_drops", string_of_int s.Scheduler.deadline_drops);
            ("cancelled_drops", string_of_int s.Scheduler.cancelled_drops);
          ] );
      ( "latency_ms",
        obj
          [
            ("count", string_of_int m.Metrics.latency_count);
            ("p50", f m.Metrics.p50_ms);
            ("p90", f m.Metrics.p90_ms);
            ("p99", f m.Metrics.p99_ms);
            ("max", f m.Metrics.max_ms);
          ] );
      ( "trace",
        let tr = Stdx.Trace.stats () in
        obj
          [
            ("enabled", string_of_bool tr.Stdx.Trace.tracing);
            ("events", string_of_int tr.Stdx.Trace.events);
            ("dropped", string_of_int tr.Stdx.Trace.dropped);
          ] );
      (* Appended per PROTOCOL.md §6: new fields go after existing ones. *)
      ( "connections",
        obj
          [
            ("open", string_of_int m.Metrics.conns_open);
            ("accepted", string_of_int m.Metrics.conns_accepted);
            ("rejected", string_of_int m.Metrics.conns_rejected);
            ("idle_timeouts", string_of_int m.Metrics.idle_timeouts);
            ("rate_limited", string_of_int m.Metrics.rate_limited);
          ] );
    ]

(* The `cache` RPC: introspection and prefix invalidation of the result
   cache. Sound to expose because invalidation can never change what a
   client observes — any future recomputation is byte-identical to the
   dropped entry (the determinism contract). Cheap: answered on the
   calling thread, never scheduled. *)
let handle_cache t j =
  let prefix = str_field j "prefix" in
  match str_field j "action" with
  | Some "stats" ->
      let c = Cache.stats t.cache in
      ok_response
        [
          ("op", jstr "cache");
          ("action", jstr "stats");
          ("entries", string_of_int c.Cache.entries);
          ("bytes", string_of_int c.Cache.bytes);
          ("hits", string_of_int c.Cache.hits);
          ("misses", string_of_int c.Cache.misses);
          ("evictions", string_of_int c.Cache.evictions);
          ("invalidations", string_of_int c.Cache.invalidations);
        ]
  | Some "keys" ->
      let limit =
        match int_field j "limit" with Some l when l > 0 -> l | Some _ | None -> 100
      in
      let matched, listed = Cache.keys ?prefix ~limit t.cache in
      ok_response
        [
          ("op", jstr "cache");
          ("action", jstr "keys");
          ("prefix", jstr (Option.value ~default:"" prefix));
          ("matched", string_of_int matched);
          ( "keys",
            arr
              (List.map
                 (fun (key, bytes) ->
                   obj [ ("key", jstr key); ("bytes", string_of_int bytes) ])
                 listed) );
        ]
  | Some "invalidate" -> (
      match prefix with
      | None ->
          bad_request
            "cache invalidate needs a string field \"prefix\" (\"\" clears everything)"
      | Some prefix ->
          let n = Cache.invalidate_prefix t.cache ~prefix in
          ok_response
            [
              ("op", jstr "cache");
              ("action", jstr "invalidate");
              ("prefix", jstr prefix);
              ("invalidated", string_of_int n);
            ])
  | Some a ->
      bad_request (Printf.sprintf "unknown cache action %S (stats, keys or invalidate)" a)
  | None -> bad_request "cache needs a string field \"action\" (stats, keys or invalidate)"

(* Consult the cache under [key]; on a miss compute the payload on a worker
   domain through the bounded scheduler. [k] receives the response and
   whether it was served from cache — synchronously on the caller for a
   hit or a shed, from the worker domain after a computed miss. *)
let cached_compute t ~key ~deadline ~cancelled compute ~k =
  match Cache.find t.cache key with
  | Some payload -> k (payload, true)
  | None ->
      (* The "service.schedule" span covers queueing + compute on the
         worker; the nested "scheduler.compute" span isolates the compute
         part, so the gap between the two is time spent waiting for a
         worker slot. Recorded with [complete] because connection threads
         share domains and may interleave. *)
      let t0 = Unix.gettimeofday () in
      Scheduler.submit t.scheduler ?deadline ~cancelled compute ~k:(fun outcome ->
          Stdx.Trace.complete ~t0 ~t1:(Unix.gettimeofday ()) "service.schedule";
          match outcome with
          | Ok payload ->
              Cache.add t.cache key payload;
              k (payload, false)
          | Error e -> k (of_scheduler_error e, false))

(* Assemble and validate a [run] request's merged parameter list against
   experiment [e]'s spec — shared by [handle_run] and [request_key] so the
   proxy's routing key derivation is exactly the cache key derivation.
   [Error] carries a ready-to-send error response. *)
let merged_of_run_request e j =
  match overrides_of_json j with
  | Error msg -> Error (bad_request msg)
  | Ok param_overrides -> (
      (* [merge] keeps the first binding per name, so explicit request
         fields come first and beat the --smoke defaults (same precedence
         as the CLI's `run` subcommand). *)
      let overrides =
        param_overrides
        @ (match int_field j "seed" with Some s -> [ ("seed", R.Vint s) ] | None -> [])
        @ [ ("jobs", R.Vint (Option.value ~default:1 (int_field j "jobs"))) ]
        @ (if bool_field j "smoke" = Some true then R.smoke e else [])
      in
      (* Server-side validation against the experiment's spec, before any
         scheduling. *)
      match R.merge (R.params e) overrides with
      | exception R.Unknown_param p ->
          Error (bad_request (Printf.sprintf "experiment %S has no parameter %S" (R.id e) p))
      | exception R.Wrong_param_type p ->
          Error (bad_request (Printf.sprintf "parameter %S has the wrong type" p))
      | merged -> (
          (* [merge] validates names only; shape mismatches would
             otherwise surface mid-compute as a 500. Catch them here. *)
          match
            List.find_opt
              (fun (p : R.param) ->
                match (List.assoc p.R.name merged, p.R.default) with
                | R.Vint _, R.Vint _ | R.Vints _, R.Vints _ -> false
                | _ -> true)
              (R.params e)
          with
          | Some bad ->
              Error
                (bad_request
                   (Printf.sprintf "parameter %S has the wrong type (expected %s)" bad.R.name
                      (match bad.R.default with
                      | R.Vint _ -> "an integer"
                      | R.Vints _ -> "an integer array")))
          | None -> Ok merged))

let simulate_key ~protocol ~graph ~seed =
  Printf.sprintf "simulate?protocol=%s&graph=%s&seed=%d" protocol
    (T.string_of_json (Simulate.json_of_gspec graph))
    seed

(* The canonical cache key a compute request will be stored under — what
   the proxy consistent-hashes on, so every replica of a request lands on
   the backend already holding (or about to hold) its cache entry.
   [None] when the request is not a valid [run]/[simulate]: those never
   reach a cache and may be routed anywhere. *)
let request_key j =
  match str_field j "op" with
  | Some "run" -> (
      match str_field j "id" with
      | None -> None
      | Some id -> (
          match Core.Exp_all.find id with
          | None -> None
          | Some e -> (
              match merged_of_run_request e j with
              | Ok merged -> Some (canonical_key id merged)
              | Error _ -> None)))
  | Some "simulate" -> (
      match (str_field j "protocol", T.member "graph" j) with
      | Some protocol, Some gj when List.mem_assoc protocol Simulate.protocols -> (
          match Simulate.gspec_of_json gj with
          | Ok graph when Simulate.compatible ~protocol graph ->
              let seed = Option.value ~default:7 (int_field j "seed") in
              Some (simulate_key ~protocol ~graph ~seed)
          | Ok _ | Error _ -> None)
      | _ -> None)
  | _ -> None

let handle_run t ~cancelled j ~k =
  match str_field j "id" with
  | None -> k (bad_request "run needs a string field \"id\"")
  | Some id -> (
      match Core.Exp_all.find id with
      | None -> k (not_found (Printf.sprintf "unknown experiment %S; see `list`" id))
      | Some e -> (
          match merged_of_run_request e j with
          | Error response -> k response
          | Ok merged ->
              let key = canonical_key id merged in
              let compute () =
                let tbl = R.table e merged in
                let rows = List.map (T.json_of_row tbl.T.schema) tbl.T.rows in
                ok_response
                  [
                    ("op", jstr "run");
                    ("id", jstr id);
                    ("title", jstr (R.title e));
                    ("params", params_json merged);
                    ("rows", arr rows);
                  ]
              in
              cached_compute t ~key ~deadline:(deadline_of j) ~cancelled compute
                ~k:(fun (payload, hit) ->
                  t.log
                    (Printf.sprintf "op=run id=%s cache=%s key=%S" id
                       (if hit then "hit" else "miss")
                       key);
                  k payload)))

let handle_simulate t ~cancelled j ~k =
  match str_field j "protocol" with
  | None -> k (bad_request "simulate needs a string field \"protocol\"")
  | Some name when not (List.mem_assoc name Simulate.protocols) ->
      k
        (bad_request
           (Printf.sprintf "unknown protocol %S; valid protocols: %s" name
              (String.concat ", " (List.map fst Simulate.protocols))))
  | Some name -> (
      match T.member "graph" j with
      | None -> k (bad_request "simulate needs an object field \"graph\"")
      | Some gj -> (
          match Simulate.gspec_of_json gj with
          | Error msg -> k (bad_request msg)
          | Ok graph when not (Simulate.compatible ~protocol:name graph) ->
              k
                (bad_request
                   (Printf.sprintf "protocol %S cannot run on a %s input" name
                      (T.string_of_json (Simulate.json_of_gspec graph))))
          | Ok graph ->
              let seed = Option.value ~default:7 (int_field j "seed") in
              let spec = { Simulate.protocol = name; graph; seed } in
              let key = simulate_key ~protocol:name ~graph ~seed in
              let compute () =
                let fields = Simulate.run spec in
                ok_response
                  (("op", jstr "simulate")
                  :: List.map (fun (k, v) -> (k, T.string_of_json v)) fields)
              in
              cached_compute t ~key ~deadline:(deadline_of j) ~cancelled compute
                ~k:(fun (payload, hit) ->
                  t.log
                    (Printf.sprintf "op=simulate protocol=%s cache=%s" name
                       (if hit then "hit" else "miss"));
                  k payload)))

(* ------------------------------------------------------------------ *)
(* Dispatch                                                            *)

type reply = { payload : string; shutdown : bool }

(* Close out one request: trace span, metrics, log line, then deliver.
   Runs on whichever thread produced the response — the caller for cheap
   ops and cache hits, a worker domain for computed misses — so the
   "rpc.<op>" span and the recorded latency cover queueing + compute, the
   same envelope the blocking dispatch used to measure. *)
let finish t ~t0 ~op ~shutdown ~k response =
  let t1 = Unix.gettimeofday () in
  let ms = (t1 -. t0) *. 1000. in
  let ok = String.length response >= 11 && String.sub response 0 11 = "{\"ok\":true," in
  (* One span per request, named by op. [complete] (not begin_/end_):
     requests from many connections share a domain, so a stack would
     mis-pair. The args guard avoids building the list when tracing is
     off. *)
  if Stdx.Trace.enabled () then
    Stdx.Trace.complete ~args:[ ("ok", Stdx.Trace.Bool ok) ] ~t0 ~t1 ("rpc." ^ op);
  Metrics.record t.metrics ~op ~ok ~ms;
  t.log (Printf.sprintf "op=%s status=%s ms=%.2f" op (if ok then "ok" else "error") ms);
  k { payload = response; shutdown }

let handle_async t ?(cancelled = fun () -> false) payload ~k =
  let t0 = Unix.gettimeofday () in
  let sync op response = finish t ~t0 ~op ~shutdown:false ~k response in
  match T.json_of_string payload with
  | exception T.Parse_error msg -> sync "parse-error" (bad_request ("invalid JSON: " ^ msg))
  | j -> (
      match str_field j "op" with
      | None -> sync "bad-op" (bad_request "request needs a string field \"op\"")
      | Some "ping" -> sync "ping" (handle_ping t)
      | Some "list" -> sync "list" (handle_list t)
      | Some "stats" -> sync "stats" (handle_stats t)
      | Some "cache" -> sync "cache" (handle_cache t j)
      | Some "run" -> handle_run t ~cancelled j ~k:(finish t ~t0 ~op:"run" ~shutdown:false ~k)
      | Some "simulate" ->
          handle_simulate t ~cancelled j ~k:(finish t ~t0 ~op:"simulate" ~shutdown:false ~k)
      | Some "shutdown" ->
          t.draining <- true;
          finish t ~t0 ~op:"shutdown" ~shutdown:true ~k
            (ok_response [ ("op", jstr "shutdown"); ("msg", jstr "draining; no new requests") ])
      | Some op -> sync "bad-op" (not_found (Printf.sprintf "unknown op %S" op)))

(* Blocking convenience over [handle_async] — a result cell the calling
   thread parks on. Used by in-process tests and anything with a thread
   to spare; the event engine calls [handle_async] directly. *)
let handle t ?cancelled payload =
  let cmutex = Mutex.create () in
  let cond = Condition.create () in
  let result = ref None in
  handle_async t ?cancelled payload ~k:(fun reply ->
      Mutex.lock cmutex;
      result := Some reply;
      Condition.signal cond;
      Mutex.unlock cmutex);
  Mutex.lock cmutex;
  while !result = None do
    Condition.wait cond cmutex
  done;
  let reply = match !result with Some r -> r | None -> assert false in
  Mutex.unlock cmutex;
  reply

let draining t = t.draining

(* Stop accepting compute work and wait for in-flight jobs. *)
let shutdown t =
  t.draining <- true;
  Scheduler.shutdown t.scheduler

(** A thin binding to [poll(2)] — readiness over an explicit fd array, so
    the event engine has no [FD_SETSIZE] cliff (the stdlib only exposes
    [select(2)], whose fd sets cap out at 1024 descriptors on Linux).

    The syscall runs with the OCaml runtime lock released; worker domains
    and completion posters keep running while the event thread sleeps. *)

val pollin : int
(** Readable (or a pending connection on a listener). *)

val pollout : int
(** Writable without blocking. *)

val pollerr : int
(** Error condition (always reported, never requested). *)

val pollhup : int
(** Peer hung up (always reported, never requested). *)

val pollnval : int
(** Invalid descriptor (always reported, never requested). *)

type set
(** A reusable registration buffer: parallel fd/interest/result arrays,
    grown geometrically and rebuilt (via {!clear} + {!add}) each loop
    iteration. Not thread-safe — owned by the event thread. *)

val create_set : unit -> set
(** An empty set with a small initial capacity. *)

val clear : set -> unit
(** Forget every registration (capacity is kept). *)

val add : set -> Unix.file_descr -> int -> int
(** [add s fd interest] registers [fd] with an interest mask (an [lor] of
    {!pollin}/{!pollout}; [0] polls only for errors) and returns the slot
    index to pass to {!revents} after {!wait}. *)

val wait : set -> timeout_ms:int -> int
(** Block until at least one registered fd is ready or the timeout lapses
    ([-1] = forever, [0] = non-blocking probe). Returns the number of
    ready descriptors; [EINTR] surfaces as [0] (the caller re-loops).
    Raises [Unix.Unix_error] on real failures. *)

val revents : set -> int -> int
(** The result mask of slot [i] after the last {!wait} — test with
    [revents land pollin <> 0] etc. *)

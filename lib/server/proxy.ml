(* sketchproxy's brain: consistent-hash routing of compute requests across
   N sketchd backends, over the same wire protocol the backends speak.

   Why this is easy here: the determinism contract (PROTOCOL.md §5) makes
   every `run`/`simulate` response a pure function of its canonical cache
   key, so placement needs no coherence — the proxy hashes the request's
   cache key ([Service.request_key], exactly the derivation the backend
   cache uses) onto a ring of backends, and any failover target recomputes
   the byte-identical payload its dead peer would have served.

   Request flow per compute op:
     route   — derive the cache key, order backends by ring succession
               (healthy first);                       span "proxy.route"
     forward — relay the raw payload to a backend over a pooled
               connection, return its raw response;   span "proxy.forward"
     failover— on a transport failure (connect refused, mid-frame death,
               garbage framing) mark the backend down and try the next
               replica;                            instant "proxy.failover"
     shed    — a 429/503 response is not death: back off briefly and
               retry the next replica, relaying the last shed response
               if every backend sheds.

   `ping`, `cluster`, `stats` and `shutdown` are answered by the proxy
   itself; `stats` aggregates every backend's counters into one cluster
   view (schema pinned by a golden snapshot). Everything else — `list`,
   `run`, `simulate`, unknown ops — forwards, keeping the proxy
   transparent to whatever the backends grow next. *)

module T = Report.Tabular

(* ------------------------------------------------------------------ *)
(* Plumbing                                                            *)

type pool = {
  pmutex : Mutex.t;
  mutable idle : Client.t list;
  mutable closed : bool;  (* draining: release closes instead of pooling *)
}

let max_idle = 4

type counters = {
  mutable forwarded : int;  (* responses relayed from a backend *)
  mutable failovers : int;  (* backends skipped for transport failure *)
  mutable retries : int;  (* backends retried past a shed response *)
  mutable shed_relayed : int;  (* requests where every backend shed *)
}

type t = {
  ring : Ring.t;
  health : Health.t;
  metrics : Metrics.t;
  pools : (string * pool) list;  (* one per configured backend *)
  addrs : (string * (string * int)) list;  (* parsed host/port per backend *)
  counters : counters;
  cmutex : Mutex.t;
  shed_backoff_ms : int;
  log : string -> unit;
  mutable draining : bool;
  mutable daemon : Daemon.t option;
  mutable pinger : Health.pinger option;
}

let parse_addr addr =
  match String.rindex_opt addr ':' with
  | Some i when i > 0 && i < String.length addr - 1 -> (
      let host = String.sub addr 0 i in
      let port = String.sub addr (i + 1) (String.length addr - i - 1) in
      match int_of_string_opt port with
      | Some p when p > 0 && p < 65536 -> (host, p)
      | _ -> invalid_arg (Printf.sprintf "Proxy: bad backend port in %S" addr))
  | _ -> invalid_arg (Printf.sprintf "Proxy: backend %S is not HOST:PORT" addr)

let create ?(vnodes = 128) ?(shed_backoff_ms = 5) ?(log = fun _ -> ()) ~backends () =
  let addrs = List.map (fun a -> (a, parse_addr a)) backends in
  {
    ring = Ring.create ~vnodes backends;
    health = Health.create backends;
    metrics = Metrics.create ();
    pools =
      List.map (fun a -> (a, { pmutex = Mutex.create (); idle = []; closed = false })) backends;
    addrs;
    counters = { forwarded = 0; failovers = 0; retries = 0; shed_relayed = 0 };
    cmutex = Mutex.create ();
    shed_backoff_ms;
    log;
    draining = false;
    daemon = None;
    pinger = None;
  }

let ring t = t.ring
let health t = t.health

let bump t f =
  Mutex.lock t.cmutex;
  f t.counters;
  Mutex.unlock t.cmutex

let counters t =
  Mutex.lock t.cmutex;
  let c = t.counters in
  let copy = (c.forwarded, c.failovers, c.retries, c.shed_relayed) in
  Mutex.unlock t.cmutex;
  copy

(* ------------------------------------------------------------------ *)
(* Backend connections: a small per-backend pool of idle connections.  *)

let connect t addr =
  let host, port = List.assoc addr t.addrs in
  Client.connect ~host ~port ()

(* Returns the connection and whether it was reused from the pool (a
   reused connection may be stale — the backend restarted since — so the
   first transport error on one warrants a single fresh-connection
   retry). *)
let acquire t addr =
  let p = List.assoc addr t.pools in
  Mutex.lock p.pmutex;
  match p.idle with
  | c :: rest ->
      p.idle <- rest;
      Mutex.unlock p.pmutex;
      (c, true)
  | [] ->
      Mutex.unlock p.pmutex;
      (connect t addr, false)

let release t addr c =
  let p = List.assoc addr t.pools in
  Mutex.lock p.pmutex;
  if (not p.closed) && List.length p.idle < max_idle then begin
    p.idle <- c :: p.idle;
    Mutex.unlock p.pmutex
  end
  else begin
    Mutex.unlock p.pmutex;
    Client.close c
  end

let close_pools t =
  List.iter
    (fun (_, p) ->
      Mutex.lock p.pmutex;
      p.closed <- true;
      let conns = p.idle in
      p.idle <- [];
      Mutex.unlock p.pmutex;
      List.iter Client.close conns)
    t.pools

(* One request/response exchange with one backend. [Reply] is any
   well-framed response (including backend-reported errors — those relay);
   [Transport] is a connection-level failure (refused, mid-frame death,
   garbage framing, oversized header) — the backend is unusable. *)
type attempt = Reply of string | Transport of string

let rec attempt t addr payload ~fresh_retry =
  match acquire t addr with
  | exception Unix.Unix_error (e, _, _) -> Transport ("connect: " ^ Unix.error_message e)
  | exception e -> Transport (Printexc.to_string e)
  | c, reused -> (
      match Client.request c payload with
      | response ->
          release t addr c;
          Reply response
      | exception e ->
          Client.close c;
          let msg =
            match e with
            | Unix.Unix_error (ue, _, _) -> Unix.error_message ue
            | Wire.Closed -> "backend closed mid-request"
            | Wire.Malformed m -> "malformed backend frame: " ^ m
            | Wire.Oversized n -> Printf.sprintf "oversized backend frame: %d bytes" n
            | e -> Printexc.to_string e
          in
          if reused && fresh_retry then attempt t addr payload ~fresh_retry:false
          else Transport msg)

let attempt t addr payload = attempt t addr payload ~fresh_retry:true

(* ------------------------------------------------------------------ *)
(* Canonical JSON response text (same discipline as [Service]).        *)

let jstr s = "\"" ^ T.json_escape s ^ "\""

let obj fields =
  "{" ^ String.concat "," (List.map (fun (k, v) -> jstr k ^ ":" ^ v) fields) ^ "}"

let arr items = "[" ^ String.concat "," items ^ "]"
let ok_response fields = obj (("ok", "true") :: fields)

let error_response ~code ~error msg =
  obj
    [ ("ok", "false"); ("error", jstr error); ("code", string_of_int code); ("msg", jstr msg) ]

let no_backend_response =
  error_response ~code:502 ~error:"no-backend" "no backend reachable; cluster is down"

let cancelled_response = error_response ~code:499 ~error:"cancelled" "client went away"

(* ------------------------------------------------------------------ *)
(* Forwarding with failover                                            *)

let is_shed response =
  match T.member "error" (T.json_of_string response) with
  | Some (T.Jstr ("overloaded" | "shutting-down")) -> true
  | _ -> false
  | exception T.Parse_error _ -> false

(* Backends to try, in ring-successor order from the request's cache key,
   known-healthy ones first. Unhealthy backends stay as a last resort —
   the mark may be stale (the backend restarted) and recovery must not
   wait for the next health sweep. *)
let route_candidates t key =
  Stdx.Trace.span "proxy.route"
    ~args:(fun () -> [ ("key", Stdx.Trace.Str key) ])
    (fun () ->
      let succ = Ring.successors t.ring key in
      let healthy, down = List.partition (Health.healthy t.health) succ in
      healthy @ down)

let forward t ~key payload ~cancelled =
  let rec go candidates last_shed =
    match candidates with
    | [] -> (
        match last_shed with
        | Some shed ->
            bump t (fun c -> c.shed_relayed <- c.shed_relayed + 1);
            shed
        | None -> no_backend_response)
    | addr :: rest ->
        if cancelled () then cancelled_response
        else begin
          let t0 = Unix.gettimeofday () in
          let outcome = attempt t addr payload in
          if Stdx.Trace.enabled () then
            Stdx.Trace.complete
              ~args:
                [
                  ("backend", Stdx.Trace.Str addr);
                  ("ok", Stdx.Trace.Bool (match outcome with Reply _ -> true | Transport _ -> false));
                ]
              ~t0 ~t1:(Unix.gettimeofday ()) "proxy.forward";
          match outcome with
          | Reply response when is_shed response ->
              (* Shedding is load, not death: the backend stays healthy,
                 the request moves on after a brief backoff so a burst
                 does not hammer every replica in a tight loop. *)
              bump t (fun c -> c.retries <- c.retries + 1);
              t.log (Printf.sprintf "backend %s shed; retrying next replica" addr);
              if rest <> [] && t.shed_backoff_ms > 0 then
                Thread.delay (float_of_int t.shed_backoff_ms /. 1000.);
              go rest (Some response)
          | Reply response ->
              Health.mark_up t.health addr;
              bump t (fun c -> c.forwarded <- c.forwarded + 1);
              response
          | Transport msg ->
              Health.mark_down t.health addr ~error:msg;
              bump t (fun c -> c.failovers <- c.failovers + 1);
              Stdx.Trace.instant "proxy.failover"
                ~args:[ ("backend", Stdx.Trace.Str addr) ];
              t.log (Printf.sprintf "backend %s failed (%s); failing over" addr msg);
              go rest last_shed
        end
  in
  go (route_candidates t key) None

(* ------------------------------------------------------------------ *)
(* Local endpoints                                                     *)

let handle_ping _t =
  ok_response
    [ ("op", jstr "ping"); ("version", jstr Stdx.Version.current); ("role", jstr "proxy") ]

let handle_cluster t =
  let backend_json (addr, (s : Health.status)) =
    obj
      (("addr", jstr addr)
      :: ("healthy", string_of_bool s.Health.healthy)
      :: ("failures", string_of_int s.Health.failures)
      ::
      (match s.Health.last_error with
      | Some e -> [ ("last_error", jstr e) ]
      | None -> []))
  in
  ok_response
    [
      ("op", jstr "cluster");
      ("version", jstr Stdx.Version.current);
      ("vnodes", string_of_int (Ring.vnodes t.ring));
      ("backends", arr (List.map backend_json (Health.snapshot t.health)));
    ]

(* Aggregated cluster stats, as a pure function of the per-backend stats
   responses — pinned by the golden snapshot in test_proxy.ml. Counters
   sum across backends; latency percentiles do not aggregate, so they
   stay per-backend (and the proxy's own end-to-end percentiles cover the
   cluster view). A backend with [None] was unreachable at snapshot time
   and contributes only its address and health flag. *)
let render_stats ~version ~uptime_s ~(m : Metrics.snapshot) ~forwarded ~failovers ~retries
    ~shed_relayed ~backends =
  let f = T.float_repr in
  let mem j path =
    List.fold_left
      (fun acc k -> match acc with Some j -> T.member k j | None -> None)
      (Some j) path
  in
  let int_at j path = match mem j path with Some (T.Jint i) -> i | _ -> 0 in
  let render_at j path =
    match mem j path with Some v -> T.string_of_json v | None -> "0"
  in
  let sum path =
    List.fold_left
      (fun acc (_, _, stats) -> match stats with Some j -> acc + int_at j path | None -> acc)
      0 backends
  in
  let by_op_merged =
    let tbl = Hashtbl.create 8 in
    List.iter
      (fun (_, _, stats) ->
        match stats with
        | Some j -> (
            match mem j [ "requests"; "by_op" ] with
            | Some (T.Jobj fields) ->
                List.iter
                  (fun (op, v) ->
                    match v with
                    | T.Jint n ->
                        Hashtbl.replace tbl op
                          (n + Option.value ~default:0 (Hashtbl.find_opt tbl op))
                    | _ -> ())
                  fields
            | _ -> ())
        | None -> ())
      backends;
    Hashtbl.fold (fun k v acc -> (k, string_of_int v) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let backend_json (addr, healthy, stats) =
    match stats with
    | None -> obj [ ("addr", jstr addr); ("healthy", string_of_bool healthy) ]
    | Some j ->
        obj
          [
            ("addr", jstr addr);
            ("healthy", string_of_bool healthy);
            ("uptime_s", render_at j [ "uptime_s" ]);
            ("requests_total", string_of_int (int_at j [ "requests"; "total" ]));
            ("errors", string_of_int (int_at j [ "requests"; "errors" ]));
            ("cache_hits", string_of_int (int_at j [ "cache"; "hits" ]));
            ("cache_misses", string_of_int (int_at j [ "cache"; "misses" ]));
            ("queue_depth", string_of_int (int_at j [ "queue"; "depth" ]));
            ("shed", string_of_int (int_at j [ "queue"; "shed" ]));
            ("p50_ms", render_at j [ "latency_ms"; "p50" ]);
            ("p99_ms", render_at j [ "latency_ms"; "p99" ]);
          ]
  in
  let healthy_count =
    List.fold_left (fun n (_, h, _) -> if h then n + 1 else n) 0 backends
  in
  ok_response
    [
      ("op", jstr "stats");
      ("version", jstr version);
      ("uptime_s", f uptime_s);
      ( "cluster",
        obj
          [
            ("backends", string_of_int (List.length backends));
            ("healthy", string_of_int healthy_count);
          ] );
      ( "proxy",
        obj
          [
            ("forwarded", string_of_int forwarded);
            ("failovers", string_of_int failovers);
            ("retries", string_of_int retries);
            ("shed_relayed", string_of_int shed_relayed);
            ( "requests",
              obj
                [
                  ("total", string_of_int m.Metrics.total);
                  ("errors", string_of_int m.Metrics.errors);
                  ( "by_op",
                    obj (List.map (fun (op, n) -> (op, string_of_int n)) m.Metrics.by_op) );
                ] );
            ( "latency_ms",
              obj
                [
                  ("count", string_of_int m.Metrics.latency_count);
                  ("p50", f m.Metrics.p50_ms);
                  ("p90", f m.Metrics.p90_ms);
                  ("p99", f m.Metrics.p99_ms);
                  ("max", f m.Metrics.max_ms);
                ] );
          ] );
      ( "requests",
        obj
          [
            ("total", string_of_int (sum [ "requests"; "total" ]));
            ("errors", string_of_int (sum [ "requests"; "errors" ]));
            ("by_op", obj by_op_merged);
          ] );
      ( "cache",
        obj
          [
            ("hits", string_of_int (sum [ "cache"; "hits" ]));
            ("misses", string_of_int (sum [ "cache"; "misses" ]));
            ("entries", string_of_int (sum [ "cache"; "entries" ]));
            ("bytes", string_of_int (sum [ "cache"; "bytes" ]));
            ("evictions", string_of_int (sum [ "cache"; "evictions" ]));
          ] );
      ( "queue",
        obj
          [
            ("depth", string_of_int (sum [ "queue"; "depth" ]));
            ("capacity", string_of_int (sum [ "queue"; "capacity" ]));
            ("workers", string_of_int (sum [ "queue"; "workers" ]));
            ("shed", string_of_int (sum [ "queue"; "shed" ]));
            ("deadline_drops", string_of_int (sum [ "queue"; "deadline_drops" ]));
            ("cancelled_drops", string_of_int (sum [ "queue"; "cancelled_drops" ]));
          ] );
      ("backends", arr (List.map backend_json backends));
    ]

(* Probe one backend with a `ping` — the health sweep's instrument. *)
let ping_backend t addr =
  match attempt t addr "{\"op\":\"ping\"}" with
  | Reply r -> (
      match T.member "ok" (T.json_of_string r) with
      | Some (T.Jbool true) -> Ok ()
      | _ -> Error "ping returned an error"
      | exception T.Parse_error _ -> Error "ping returned garbage JSON")
  | Transport msg -> Error msg

let check_health t = Health.sweep t.health ~ping:(ping_backend t)

(* Live `stats`: snapshot every backend, then aggregate. The probe itself
   updates health, so `stats` doubles as a sweep. *)
let handle_stats t =
  let backends =
    List.map
      (fun addr ->
        let stats =
          match attempt t addr "{\"op\":\"stats\"}" with
          | Reply r -> (
              match T.json_of_string r with
              | j when T.member "ok" j = Some (T.Jbool true) ->
                  Health.mark_up t.health addr;
                  Some j
              | _ ->
                  Health.mark_down t.health addr ~error:"stats returned an error";
                  None
              | exception T.Parse_error _ ->
                  Health.mark_down t.health addr ~error:"stats returned garbage JSON";
                  None)
          | Transport msg ->
              Health.mark_down t.health addr ~error:msg;
              None
        in
        (addr, Health.healthy t.health addr, stats))
      (Ring.backends t.ring)
  in
  let m = Metrics.snapshot t.metrics in
  let forwarded, failovers, retries, shed_relayed = counters t in
  render_stats ~version:Stdx.Version.current ~uptime_s:m.Metrics.uptime_s ~m ~forwarded
    ~failovers ~retries ~shed_relayed ~backends

(* ------------------------------------------------------------------ *)
(* Dispatch                                                            *)

let bad_request msg = error_response ~code:400 ~error:"bad-request" msg

let handle t ?(cancelled = fun () -> false) payload =
  let t0 = Unix.gettimeofday () in
  let op, response, shutdown =
    match T.json_of_string payload with
    | exception T.Parse_error msg -> ("parse-error", bad_request ("invalid JSON: " ^ msg), false)
    | j -> (
        match T.member "op" j with
        | Some (T.Jstr "ping") -> ("ping", handle_ping t, false)
        | Some (T.Jstr "cluster") -> ("cluster", handle_cluster t, false)
        | Some (T.Jstr "stats") -> ("stats", handle_stats t, false)
        | Some (T.Jstr "shutdown") ->
            t.draining <- true;
            ( "shutdown",
              ok_response
                [ ("op", jstr "shutdown"); ("msg", jstr "proxy draining; no new requests") ],
              true )
        | Some (T.Jstr op) ->
            (* Compute requests route by their canonical cache key — the
               whole point: a request always lands on the backend whose
               cache holds (or will hold) its entry. Anything without a
               key (`list`, unknown ops, invalid compute requests) routes
               by the raw payload, still deterministic, and the backend
               answers with its own taxonomy. *)
            let key = Option.value ~default:payload (Service.request_key j) in
            (op, forward t ~key payload ~cancelled, false)
        | Some _ | None ->
            ("bad-op", bad_request "request needs a string field \"op\"", false))
  in
  let t1 = Unix.gettimeofday () in
  let ms = (t1 -. t0) *. 1000. in
  let ok = String.length response >= 11 && String.sub response 0 11 = "{\"ok\":true," in
  if Stdx.Trace.enabled () then
    Stdx.Trace.complete ~args:[ ("ok", Stdx.Trace.Bool ok) ] ~t0 ~t1 ("proxy." ^ op);
  Metrics.record t.metrics ~op ~ok ~ms;
  t.log (Printf.sprintf "op=%s status=%s ms=%.2f" op (if ok then "ok" else "error") ms);
  { Service.payload = response; shutdown }

let draining t = t.draining

let close t =
  (match t.pinger with
  | Some p ->
      Health.stop_pinger p;
      t.pinger <- None
  | None -> ());
  close_pools t

(* ------------------------------------------------------------------ *)
(* TCP front: the generic daemon around [handle]                       *)

let start ?host ?port ?vnodes ?(health_interval_s = 2.0) ?shed_backoff_ms ?max_conns
    ?idle_timeout_s ?rate_limit ?keepalive ?dispatch_threads ?log ~backends () =
  let t = create ?vnodes ?shed_backoff_ms ?log ~backends () in
  let daemon =
    Daemon.start_handler ?host ?port
      ~on_drain:(fun () -> close t)
      ~metrics:t.metrics ?max_conns ?idle_timeout_s ?rate_limit ?keepalive
      ?dispatch_threads
      ~handle:(fun ~cancelled payload -> handle t ~cancelled payload)
      ()
  in
  t.daemon <- Some daemon;
  t.pinger <-
    Some (Health.start_pinger t.health ~interval_s:health_interval_s ~ping:(ping_backend t));
  t

let daemon_exn t =
  match t.daemon with
  | Some d -> d
  | None -> invalid_arg "Proxy: not started with start"

let port t = Daemon.port (daemon_exn t)
let stop ?abort_connections t = Daemon.stop ?abort_connections (daemon_exn t)
let wait t = Daemon.wait (daemon_exn t)

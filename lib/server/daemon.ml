(* sketchd's TCP layer: an accept loop on its own thread, one lightweight
   thread per connection, the [Service] brain behind both. Threads (not
   domains) carry connections — they only do blocking I/O and frame
   parsing; the compute lands on the scheduler's worker domains.

   Lifecycle: [start] binds and accepts (port 0 = kernel-chosen, read back
   with getsockname). [stop] closes the listener so no new connections
   arrive; with [~abort_connections:true] (the signal path) it also shuts
   down active sockets so idle readers wake up. [wait] blocks until the
   listener is stopped and the last connection has finished, then drains
   the scheduler — in-flight computations always complete.

   A misbehaving client costs its own connection, nothing else: garbage or
   oversized frames get one best-effort error frame and a close; a peer
   that vanishes mid-request surfaces as a Unix error that ends only that
   connection thread, and the scheduler's cancellation probe keeps its
   queued compute from running into the void. *)

type t = {
  (* The request brain, abstracted: [start] plugs in [Service.handle] of a
     fresh service; [start_handler] (the proxy's entry point) plugs in any
     payload -> reply function, reusing this whole TCP layer — accept
     loop, connection threads, graceful drain — unchanged. *)
  handle : cancelled:(unit -> bool) -> string -> Service.reply;
  on_drain : unit -> unit;  (* run once by [wait] after the last connection *)
  service : Service.t option;
  listen_fd : Unix.file_descr;
  port : int;
  mutex : Mutex.t;
  idle : Condition.t;  (* signalled when a connection ends or stop begins *)
  mutable active : Unix.file_descr list;
  mutable stopping : bool;
  mutable accept_thread : Thread.t option;
  (* Self-pipe: closing a listening socket does NOT wake a thread blocked
     in accept(2), so the accept loop selects on [listener; stop_r] and a
     byte written to [stop_w] is the wake-up call. *)
  stop_r : Unix.file_descr;
  stop_w : Unix.file_descr;
}

let port t = t.port

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* "Has the client gone?" — probe without consuming: readable + zero-byte
   peek means EOF. Pipelined request bytes make the peek positive, which
   correctly reads as "still there". *)
let client_gone fd () =
  match Unix.select [ fd ] [] [] 0.0 with
  | [], _, _ -> false
  | _ -> (
      match Unix.recv fd (Bytes.create 1) 0 1 [ Unix.MSG_PEEK ] with
      | 0 -> true
      | _ -> false
      | exception Unix.Unix_error _ -> true)
  | exception Unix.Unix_error _ -> true

let frame_error ~error msg =
  Printf.sprintf "{\"ok\":false,\"error\":%S,\"code\":400,\"msg\":%S}" error msg

(* Flip to stopping and wake the accept loop; idempotent, callable from a
   connection thread (shutdown RPC) or a signal handler (via [stop]). *)
let initiate_stop t =
  locked t (fun () ->
      if not t.stopping then begin
        t.stopping <- true;
        try ignore (Unix.write t.stop_w (Bytes.of_string "!") 0 1) with Unix.Unix_error _ -> ()
      end;
      Condition.broadcast t.idle)

let serve_connection t fd =
  let finish () =
    (try Unix.close fd with Unix.Unix_error _ -> ());
    locked t (fun () ->
        t.active <- List.filter (fun fd' -> fd' != fd) t.active;
        Condition.broadcast t.idle)
  in
  let rec loop () =
    if locked t (fun () -> t.stopping) then ()
    else
      match Wire.read_frame fd with
      | exception Wire.Closed -> ()
      | exception Wire.Malformed msg ->
          (* One best-effort complaint, then hang up: the stream position
             is unrecoverable after garbage framing. *)
          (try Wire.write_frame fd (frame_error ~error:"malformed-frame" msg)
           with _ -> ())
      | exception Wire.Oversized n ->
          (try
             Wire.write_frame fd
               (frame_error ~error:"oversized-frame"
                  (Printf.sprintf "declared %d bytes; max %d" n Wire.max_frame))
           with _ -> ())
      | exception Unix.Unix_error _ -> ()
      | request ->
          let t0 = Unix.gettimeofday () in
          let reply = t.handle ~cancelled:(client_gone fd) request in
          let written =
            match Wire.write_frame fd reply.Service.payload with
            | () -> true
            | exception (Unix.Unix_error _ | Sys_error _) -> false
          in
          (* Whole-request envelope: dispatch + response write. The nested
             "rpc.<op>" span (recorded by [Service.handle]) isolates the
             dispatch, so the difference is wire time. *)
          Stdx.Trace.complete ~t0 ~t1:(Unix.gettimeofday ()) "daemon.request";
          if reply.Service.shutdown then initiate_stop t
          else if written then loop ()
  in
  Fun.protect ~finally:finish loop

let accept_one t =
  match Unix.accept t.listen_fd with
  | fd, _ ->
      Stdx.Trace.instant "daemon.accept";
      Unix.setsockopt fd Unix.TCP_NODELAY true;
      let admitted =
        locked t (fun () ->
            if t.stopping then false
            else begin
              t.active <- fd :: t.active;
              true
            end)
      in
      if admitted then ignore (Thread.create (fun () -> serve_connection t fd) ())
      else (try Unix.close fd with Unix.Unix_error _ -> ())
  (* Transient accept failure (ECONNABORTED, EMFILE, ...): drop this one. *)
  | exception Unix.Unix_error _ -> ()

let accept_loop t =
  let rec loop () =
    if locked t (fun () -> t.stopping) then ()
    else
      match Unix.select [ t.listen_fd; t.stop_r ] [] [] (-1.) with
      | ready, _, _ ->
          if List.memq t.stop_r ready then ()
          else begin
            if List.memq t.listen_fd ready then accept_one t;
            loop ()
          end
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
      | exception Unix.Unix_error _ -> ()
  in
  loop ();
  try Unix.close t.listen_fd with Unix.Unix_error _ -> ()

let start_handler ?(host = "127.0.0.1") ?(port = 0) ?(on_drain = fun () -> ())
    ?service ~handle () =
  (* A dead client mid-write must surface as EPIPE, not kill the process. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let addr = Unix.inet_addr_of_string host in
  let listen_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
  (try Unix.bind listen_fd (Unix.ADDR_INET (addr, port))
   with e ->
     Unix.close listen_fd;
     raise e);
  Unix.listen listen_fd 64;
  let port =
    match Unix.getsockname listen_fd with Unix.ADDR_INET (_, p) -> p | _ -> assert false
  in
  let stop_r, stop_w = Unix.pipe () in
  let t =
    {
      handle;
      on_drain;
      service;
      listen_fd;
      port;
      mutex = Mutex.create ();
      idle = Condition.create ();
      active = [];
      stopping = false;
      accept_thread = None;
      stop_r;
      stop_w;
    }
  in
  t.accept_thread <- Some (Thread.create (fun () -> accept_loop t) ());
  t

let start ?host ?port ?workers ?capacity ?cache_entries ?cache_bytes ?log () =
  let service = Service.create ?workers ?capacity ?cache_entries ?cache_bytes ?log () in
  start_handler ?host ?port
    ~on_drain:(fun () -> Service.shutdown service)
    ~service
    ~handle:(fun ~cancelled request -> Service.handle service ~cancelled request)
    ()

let service t =
  match t.service with
  | Some s -> s
  | None -> invalid_arg "Daemon.service: handler daemon has no service"

let stop ?(abort_connections = false) t =
  initiate_stop t;
  let fds = locked t (fun () -> if abort_connections then t.active else []) in
  (* Wake idle connection readers so their threads can exit; in-flight
     computations still complete on the worker domains. *)
  List.iter (fun fd -> try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ()) fds

let wait t =
  locked t (fun () ->
      while not (t.stopping && t.active = []) do
        Condition.wait t.idle t.mutex
      done);
  (match t.accept_thread with Some th -> Thread.join th | None -> ());
  (try Unix.close t.stop_r with Unix.Unix_error _ -> ());
  (try Unix.close t.stop_w with Unix.Unix_error _ -> ());
  t.on_drain ()

(* sketchd's TCP layer, rebuilt as an event engine: ONE thread owns every
   socket — the listener, a wake pipe, and all client connections — via
   poll(2) ([Poll], no FD_SETSIZE cliff), so thousands of idle clients
   cost file descriptors, not threads. Compute still lands on the
   [Scheduler]'s worker domains; replies come back to the event thread as
   posted completions (action queue + wake pipe) and leave through a
   buffered, non-blocking write path.

   Each connection is an explicit state machine owned by the event thread:

     readable --Decoder--> pending --pump--> in-flight --k--> outq --POLLOUT

   Invariants: at most one request per connection is in flight, so replies
   stay in request order and pipelining is safe; a connection with queued
   output or a full pending queue is not read from (back-pressure — a
   stalled or flooding reader blocks only itself); EOF is seen by the loop
   the moment the peer closes, which flips the cancellation flag the
   scheduler probes — replacing the old select(2)-based client_gone peek
   that silently broke for fds >= FD_SETSIZE.

   The hardening knobs live here, each observable via `stats` and a trace
   instant: a max-connections cap (accept, best-effort 503 frame, close —
   "daemon.conn-limit"), an idle-connection timeout (best-effort 408 frame
   — "daemon.idle-timeout"), a per-connection token-bucket rate limit
   (in-order 429 replies, connection kept — "daemon.rate-limited"), and
   TCP keepalive on accepted sockets.

   A misbehaving client still costs its own connection and nothing else:
   garbage or oversized framing gets one best-effort error frame — after
   the well-formed requests that preceded it on the stream — then the
   close. *)

(* Request handler in continuation style: the daemon calls [k] with the
   reply whenever it is ready — possibly synchronously on the event
   thread, possibly later from a worker domain or dispatch thread. *)
type async_handle = cancelled:(unit -> bool) -> string -> (Service.reply -> unit) -> unit

(* ------------------------------------------------------------------ *)
(* A small thread pool for blocking handlers                           *)

(* [start_handler]'s contract predates the event engine: [handle] is a
   plain blocking function (the proxy's does socket I/O to its backends).
   It must not run on the event thread, so a fixed pool of dispatch
   threads carries those calls; [start]'s async service path never
   touches this. *)
module Dispatch = struct
  type t = {
    q : (unit -> unit) Queue.t;
    m : Mutex.t;
    c : Condition.t;
    mutable closing : bool;
    mutable threads : Thread.t list;
  }

  let create ~threads =
    let d =
      { q = Queue.create (); m = Mutex.create (); c = Condition.create ();
        closing = false; threads = [] }
    in
    let rec worker () =
      Mutex.lock d.m;
      while Queue.is_empty d.q && not d.closing do
        Condition.wait d.c d.m
      done;
      if Queue.is_empty d.q then Mutex.unlock d.m
      else begin
        let f = Queue.pop d.q in
        Mutex.unlock d.m;
        (try f () with _ -> ());
        worker ()
      end
    in
    d.threads <- List.init (max 1 threads) (fun _ -> Thread.create worker ());
    d

  let submit d f =
    Mutex.lock d.m;
    if d.closing then begin
      Mutex.unlock d.m;
      (* Draining: run inline rather than drop a completion. *)
      try f () with _ -> ()
    end
    else begin
      Queue.add f d.q;
      Condition.signal d.c;
      Mutex.unlock d.m
    end

  let shutdown d =
    Mutex.lock d.m;
    d.closing <- true;
    Condition.broadcast d.c;
    Mutex.unlock d.m;
    List.iter Thread.join d.threads
end

(* ------------------------------------------------------------------ *)
(* Connection state                                                    *)

type conn = {
  fd : Unix.file_descr;
  decoder : Wire.Decoder.t;
  outq : string Queue.t;  (* encoded frames awaiting socket room *)
  mutable out_off : int;  (* bytes of the head frame already written *)
  pending : string Queue.t;  (* decoded requests not yet dispatched *)
  mutable busy : bool;  (* one request is at the handler *)
  mutable eof : bool;  (* no more reads; serve what's pending, then close *)
  mutable closing : bool;  (* close as soon as outq drains *)
  mutable dead : bool;  (* closed and removed; discard late completions *)
  gone : bool Atomic.t;  (* the scheduler's cancellation probe reads this *)
  mutable failure : string option;  (* framing-error frame, sent after pending *)
  mutable last_activity : float;
  mutable tokens : float;  (* rate-limit token bucket *)
  mutable last_refill : float;
  mutable req_t0 : float;  (* dispatch time of the in-flight request *)
}

type config = {
  max_conns : int;
  idle_timeout_s : float;  (* <= 0 disables *)
  rate_limit : float;  (* requests/second per connection; <= 0 disables *)
  keepalive : bool;
}

type t = {
  ahandle : async_handle;
  on_drain : unit -> unit;  (* run once by [wait] after the loop exits *)
  service : Service.t option;
  metrics : Metrics.t option;
  cfg : config;
  listen_fd : Unix.file_descr;
  port : int;
  (* Cross-thread door into the loop: completions (and stop requests)
     enqueue an action and write one byte into the wake pipe. *)
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  amutex : Mutex.t;
  actions : (unit -> unit) Queue.t;
  mutable stopping : bool;
  mutable abort : bool;
  mutable ev_thread : Thread.t option;
  (* Event-thread-only state below. *)
  conns : (Unix.file_descr, conn) Hashtbl.t;
  dispatch : Dispatch.t option;
  rbuf : Bytes.t;
  pset : Poll.set;
  mutable listener_open : bool;
}

let port t = t.port

(* Decoded-but-undispatched requests one connection may hold before the
   loop stops reading from it: bounds a pipelining flood the same way
   queued output bounds a stalled reader. *)
let pending_max = 64

let locked t f =
  Mutex.lock t.amutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.amutex) f

let wake_byte = Bytes.of_string "!"

(* Nonblocking write; a full pipe already guarantees a wake-up. *)
let wake t = try ignore (Unix.write t.wake_w wake_byte 0 1) with Unix.Unix_error _ -> ()

let post t f =
  locked t (fun () -> Queue.add f t.actions);
  wake t

let frame_error ~code ~error msg =
  Printf.sprintf "{\"ok\":false,\"error\":%S,\"code\":%d,\"msg\":%S}" error code msg

let metric t f = match t.metrics with Some m -> f m | None -> ()

(* ------------------------------------------------------------------ *)
(* Event-thread connection machinery                                   *)

let close_conn t conn =
  if not conn.dead then begin
    conn.dead <- true;
    Atomic.set conn.gone true;
    Hashtbl.remove t.conns conn.fd;
    (try Unix.close conn.fd with Unix.Unix_error _ -> ());
    metric t Metrics.conn_closed
  end

(* Push as much of the out-queue into the socket as it will take; stop at
   the first partial write (POLLOUT finishes the job later). A write
   error is a dead peer — close. *)
let rec try_flush t conn =
  if not conn.dead then
    if Queue.is_empty conn.outq then begin
      if
        conn.closing
        || (conn.eof && (not conn.busy) && Queue.is_empty conn.pending
            && conn.failure = None)
      then close_conn t conn
    end
    else begin
      let head = Queue.peek conn.outq in
      let len = String.length head - conn.out_off in
      match Unix.write conn.fd (Bytes.unsafe_of_string head) conn.out_off len with
      | n when n = len ->
          ignore (Queue.pop conn.outq);
          conn.out_off <- 0;
          try_flush t conn
      | n -> conn.out_off <- conn.out_off + n
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> try_flush t conn
      | exception Unix.Unix_error _ -> close_conn t conn
    end

let enqueue_frame t conn payload =
  Queue.add (Wire.encode payload) conn.outq;
  try_flush t conn

(* Dispatch the next pending request if the connection is quiet: nothing
   in flight, nothing buffered for write. Called after every state change
   that could unblock one. *)
let rec pump t conn =
  if (not conn.dead) && (not conn.busy) && (not conn.closing) && Queue.is_empty conn.outq
  then
    if Queue.is_empty conn.pending then begin
      match conn.failure with
      | Some frame ->
          (* Framing garbage is reported only after every request that
             preceded it on the stream has been answered, matching the
             blocking daemon's frame-at-a-time order. *)
          conn.failure <- None;
          conn.closing <- true;
          enqueue_frame t conn frame
      | None -> if conn.eof then close_conn t conn
    end
    else if locked t (fun () -> t.stopping) then ()
    else if t.cfg.rate_limit > 0. then begin
      (* Token bucket: capacity = one second of burst, refilled
         continuously. An empty bucket answers 429 in order and keeps the
         connection — a client that slows down recovers. *)
      let now = Unix.gettimeofday () in
      let cap = Float.max 1. t.cfg.rate_limit in
      conn.tokens <-
        Float.min cap (conn.tokens +. ((now -. conn.last_refill) *. t.cfg.rate_limit));
      conn.last_refill <- now;
      if conn.tokens < 1. then begin
        ignore (Queue.pop conn.pending);
        metric t Metrics.rate_limited;
        Stdx.Trace.instant "daemon.rate-limited";
        enqueue_frame t conn
          (frame_error ~code:429 ~error:"rate-limited"
             "per-connection request rate exceeded; slow down");
        pump t conn
      end
      else begin
        conn.tokens <- conn.tokens -. 1.;
        dispatch_one t conn
      end
    end
    else dispatch_one t conn

and dispatch_one t conn =
  let request = Queue.pop conn.pending in
  conn.busy <- true;
  conn.req_t0 <- Unix.gettimeofday ();
  let k reply = post t (fun () -> on_reply t conn reply) in
  match t.ahandle ~cancelled:(fun () -> Atomic.get conn.gone) request k with
  | () -> ()
  | exception e ->
      (* The handler contract says "never raise"; if one does anyway,
         answer a 500 so the connection's reply order survives. *)
      k
        {
          Service.payload = frame_error ~code:500 ~error:"failed" (Printexc.to_string e);
          shutdown = false;
        }

and on_reply t conn reply =
  if reply.Service.shutdown then locked t (fun () -> t.stopping <- true);
  if not conn.dead then begin
    conn.busy <- false;
    conn.last_activity <- Unix.gettimeofday ();
    enqueue_frame t conn reply.Service.payload;
    (* Whole-request envelope: dispatch + compute + response write (a
       buffered remainder drains via POLLOUT outside the span, much as
       the blocking daemon's write_frame could block inside it). *)
    Stdx.Trace.complete ~t0:conn.req_t0 ~t1:(Unix.gettimeofday ()) "daemon.request";
    pump t conn
  end

(* Frame reassembly over freshly read bytes. A framing error parks one
   error frame in [conn.failure] (served after the pending requests) and
   stops all further reading — the stream position is unrecoverable. *)
let feed_conn t conn n =
  match Wire.Decoder.feed conn.decoder t.rbuf ~off:0 ~len:n with
  | () ->
      let rec drain () =
        match Wire.Decoder.next conn.decoder with
        | Some request ->
            Queue.add request conn.pending;
            drain ()
        | None -> ()
      in
      drain ()
  | exception Wire.Malformed msg ->
      conn.failure <- Some (frame_error ~code:400 ~error:"malformed-frame" msg);
      conn.eof <- true
  | exception Wire.Oversized n ->
      conn.failure <-
        Some
          (frame_error ~code:400 ~error:"oversized-frame"
             (Printf.sprintf "declared %d bytes; max %d" n Wire.max_frame));
      conn.eof <- true

let on_eof t conn =
  conn.eof <- true;
  Atomic.set conn.gone true;
  (* Half-close semantics, same as the blocking daemon's: requests that
     arrived before the FIN are still answered (the peer may be reading),
     but their queued compute is flagged for cancellation. *)
  if
    (not conn.busy) && Queue.is_empty conn.pending && Queue.is_empty conn.outq
    && conn.failure = None
  then close_conn t conn

let read_conn t conn =
  let rec go budget =
    if budget > 0 && (not conn.dead) && not conn.eof then
      match Unix.read conn.fd t.rbuf 0 (Bytes.length t.rbuf) with
      | 0 -> on_eof t conn
      | n ->
          conn.last_activity <- Unix.gettimeofday ();
          feed_conn t conn n;
          (* A full buffer means more may be waiting; a short read means
             the socket drained. The budget keeps one firehose client
             from starving the rest of the loop. *)
          if n = Bytes.length t.rbuf && Queue.length conn.pending < pending_max then
            go (budget - 1)
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go budget
      | exception Unix.Unix_error _ -> close_conn t conn
  in
  go 4;
  if not conn.dead then pump t conn

(* ------------------------------------------------------------------ *)
(* Accepting                                                           *)

let admit t fd =
  Unix.set_nonblock fd;
  (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
  if t.cfg.keepalive then
    (try Unix.setsockopt fd Unix.SO_KEEPALIVE true with Unix.Unix_error _ -> ());
  if locked t (fun () -> t.stopping) then (
    try Unix.close fd with Unix.Unix_error _ -> ())
  else if Hashtbl.length t.conns >= t.cfg.max_conns then begin
    (* Accept-then-503: the client learns why instead of waiting in the
       backlog. Best-effort single write — the frame is tiny and the
       socket buffer empty, so a short write means a dead peer. *)
    metric t Metrics.conn_rejected;
    Stdx.Trace.instant "daemon.conn-limit";
    let frame =
      Wire.encode
        (frame_error ~code:503 ~error:"conn-limit"
           (Printf.sprintf "connection limit (%d) reached; retry later" t.cfg.max_conns))
    in
    (try ignore (Unix.write fd (Bytes.unsafe_of_string frame) 0 (String.length frame))
     with Unix.Unix_error _ -> ());
    try Unix.close fd with Unix.Unix_error _ -> ()
  end
  else begin
    Stdx.Trace.instant "daemon.accept";
    let now = Unix.gettimeofday () in
    let conn =
      {
        fd;
        decoder = Wire.Decoder.create ();
        outq = Queue.create ();
        out_off = 0;
        pending = Queue.create ();
        busy = false;
        eof = false;
        closing = false;
        dead = false;
        gone = Atomic.make false;
        failure = None;
        last_activity = now;
        tokens = Float.max 1. t.cfg.rate_limit;
        last_refill = now;
        req_t0 = now;
      }
    in
    Hashtbl.replace t.conns fd conn;
    metric t Metrics.conn_opened
  end

let accept_burst t =
  let rec go n =
    if n > 0 then
      match Unix.accept t.listen_fd with
      | fd, _ ->
          admit t fd;
          go (n - 1)
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go n
      (* Transient accept failure (ECONNABORTED, EMFILE, ...): drop. *)
      | exception Unix.Unix_error _ -> ()
  in
  go 64

(* ------------------------------------------------------------------ *)
(* The loop                                                            *)

let idle_sweep t =
  if t.cfg.idle_timeout_s > 0. then begin
    let now = Unix.gettimeofday () in
    let victims =
      Hashtbl.fold
        (fun _ conn acc ->
          if
            (not conn.busy) && Queue.is_empty conn.outq && Queue.is_empty conn.pending
            && (not conn.dead)
            && now -. conn.last_activity > t.cfg.idle_timeout_s
          then conn :: acc
          else acc)
        t.conns []
    in
    List.iter
      (fun conn ->
        metric t Metrics.idle_timeout;
        Stdx.Trace.instant "daemon.idle-timeout";
        let frame =
          Wire.encode
            (frame_error ~code:408 ~error:"idle-timeout"
               (Printf.sprintf "idle longer than %gs; closing" t.cfg.idle_timeout_s))
        in
        (try ignore (Unix.write conn.fd (Bytes.unsafe_of_string frame) 0 (String.length frame))
         with Unix.Unix_error _ -> ());
        close_conn t conn)
      victims
  end

let drain_wake t =
  let buf = Bytes.create 256 in
  let rec go () =
    match Unix.read t.wake_r buf 0 256 with
    | 256 -> go ()
    | _ -> ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    | exception Unix.Unix_error _ -> ()
  in
  go ()

let run_actions t =
  let batch =
    locked t (fun () ->
        let b = Queue.copy t.actions in
        Queue.clear t.actions;
        b)
  in
  Queue.iter (fun f -> try f () with _ -> ()) batch

let event_loop t =
  let rec loop () =
    run_actions t;
    let stopping, abort = locked t (fun () -> (t.stopping, t.abort)) in
    if stopping && t.listener_open then begin
      t.listener_open <- false;
      (try Unix.close t.listen_fd with Unix.Unix_error _ -> ())
    end;
    if stopping then begin
      let all = Hashtbl.fold (fun _ c acc -> c :: acc) t.conns [] in
      List.iter
        (fun conn ->
          (* Gentle drain: keep a connection only while a reply is in
             flight or still flushing; abort closes everything now. *)
          if abort || ((not conn.busy) && Queue.is_empty conn.outq) then
            close_conn t conn)
        all
    end;
    if stopping && Hashtbl.length t.conns = 0 then ()
    else begin
      Poll.clear t.pset;
      let wake_slot = Poll.add t.pset t.wake_r Poll.pollin in
      let listen_slot =
        if t.listener_open then Some (Poll.add t.pset t.listen_fd Poll.pollin) else None
      in
      let regs =
        Hashtbl.fold
          (fun _ conn acc ->
            let interest =
              if not (Queue.is_empty conn.outq) then Poll.pollout
              else if (not conn.eof) && Queue.length conn.pending < pending_max then
                (* Back-pressure by omission: pending output (the branch
                   above) or a full pending queue suspends reads; EOF'd
                   and garbage streams are never read again. *)
                Poll.pollin
              else 0
            in
            (Poll.add t.pset conn.fd interest, conn) :: acc)
          t.conns []
      in
      let timeout_ms =
        if stopping then 50
        else if t.cfg.idle_timeout_s > 0. then
          max 10 (min 1000 (int_of_float (t.cfg.idle_timeout_s *. 250.)))
        else 1000
      in
      ignore (Poll.wait t.pset ~timeout_ms);
      if Poll.revents t.pset wake_slot land Poll.pollin <> 0 then drain_wake t;
      (match listen_slot with
      | Some slot when Poll.revents t.pset slot land Poll.pollin <> 0 -> accept_burst t
      | _ -> ());
      List.iter
        (fun (slot, conn) ->
          if not conn.dead then begin
            let r = Poll.revents t.pset slot in
            if r land (Poll.pollerr lor Poll.pollnval) <> 0 then close_conn t conn
            else begin
              if r land Poll.pollout <> 0 then begin
                try_flush t conn;
                if not conn.dead then pump t conn
              end;
              if (not conn.dead) && r land Poll.pollin <> 0 then read_conn t conn
              else if
                  (* HUP with nothing readable and nothing in flight: the
                     peer is gone for good — let read observe the EOF. *)
                  (not conn.dead) && r land Poll.pollhup <> 0
                  && Queue.is_empty conn.outq && not conn.busy
                then read_conn t conn
            end
          end)
        regs;
      idle_sweep t;
      loop ()
    end
  in
  loop ();
  if t.listener_open then begin
    t.listener_open <- false;
    try Unix.close t.listen_fd with Unix.Unix_error _ -> ()
  end

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)

let start_async ?(host = "127.0.0.1") ?(port = 0) ?(on_drain = fun () -> ()) ?service
    ?metrics ?(max_conns = 8192) ?(idle_timeout_s = 0.) ?(rate_limit = 0.)
    ?(keepalive = true) ?dispatch ~ahandle () =
  if max_conns < 1 then invalid_arg "Daemon: max_conns must be at least 1";
  (* A dead client mid-write must surface as EPIPE, not kill the process. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let addr = Unix.inet_addr_of_string host in
  let listen_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
  (try Unix.bind listen_fd (Unix.ADDR_INET (addr, port))
   with e ->
     Unix.close listen_fd;
     raise e);
  Unix.listen listen_fd 511;
  Unix.set_nonblock listen_fd;
  let port =
    match Unix.getsockname listen_fd with Unix.ADDR_INET (_, p) -> p | _ -> assert false
  in
  let wake_r, wake_w = Unix.pipe () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  let t =
    {
      ahandle;
      on_drain;
      service;
      metrics;
      cfg = { max_conns; idle_timeout_s; rate_limit; keepalive };
      listen_fd;
      port;
      wake_r;
      wake_w;
      amutex = Mutex.create ();
      actions = Queue.create ();
      stopping = false;
      abort = false;
      ev_thread = None;
      conns = Hashtbl.create 64;
      dispatch;
      rbuf = Bytes.create 65536;
      pset = Poll.create_set ();
      listener_open = true;
    }
  in
  t.ev_thread <- Some (Thread.create (fun () -> event_loop t) ());
  t

let start_handler ?host ?port ?on_drain ?service ?metrics ?max_conns ?idle_timeout_s
    ?rate_limit ?keepalive ?(dispatch_threads = 16) ~handle () =
  let dispatch = Dispatch.create ~threads:dispatch_threads in
  let ahandle ~cancelled request k =
    Dispatch.submit dispatch (fun () -> k (handle ~cancelled request))
  in
  start_async ?host ?port ?on_drain ?service ?metrics ?max_conns ?idle_timeout_s
    ?rate_limit ?keepalive ~dispatch ~ahandle ()

let start ?host ?port ?workers ?capacity ?cache_entries ?cache_bytes ?max_conns
    ?idle_timeout_s ?rate_limit ?keepalive ?log () =
  let service = Service.create ?workers ?capacity ?cache_entries ?cache_bytes ?log () in
  start_async ?host ?port
    ~on_drain:(fun () -> Service.shutdown service)
    ~service
    ~metrics:(Service.metrics service)
    ?max_conns ?idle_timeout_s ?rate_limit ?keepalive
    ~ahandle:(fun ~cancelled request k -> Service.handle_async service ~cancelled request ~k)
    ()

let service t =
  match t.service with
  | Some s -> s
  | None -> invalid_arg "Daemon.service: handler daemon has no service"

let stop ?(abort_connections = false) t =
  locked t (fun () ->
      t.stopping <- true;
      if abort_connections then t.abort <- true);
  wake t

let wait t =
  (match t.ev_thread with Some th -> Thread.join th | None -> ());
  (match t.dispatch with Some d -> Dispatch.shutdown d | None -> ());
  t.on_drain ();
  (try Unix.close t.wake_r with Unix.Unix_error _ -> ());
  (try Unix.close t.wake_w with Unix.Unix_error _ -> ())

(** The daemon's request handler, socket-free.

    [handle] maps one request payload (a JSON object with a string field
    ["op"]) to one response payload. Keeping this layer free of file
    descriptors makes every endpoint unit-testable in-process; {!Daemon}
    adds TCP framing, connection threads and signals around it.

    Operations: [ping], [list], [stats], [cache], [run], [simulate],
    [shutdown].
    Responses are canonical JSON strings (fixed field order, no
    whitespace): a cached payload is byte-identical to a recomputed one.
    [run]/[simulate] go through the result cache and then the bounded
    {!Scheduler}; errors come back as
    [{"ok":false,"error":...,"code":...,"msg":...}] with HTTP-flavoured
    codes (400 bad request, 404 unknown id/op, 429 overloaded, 499 client
    cancelled, 500 failed, 503 shutting down, 504 deadline exceeded).

    The [stats] response includes a [trace] object (enabled flag, buffered
    and dropped event counts) reflecting the process-wide {!Stdx.Trace}
    state. The full request/response schema of every operation is specified
    in [PROTOCOL.md] at the repository root. *)

type t
(** One service instance: scheduler + cache + metrics + registry. *)

val create :
  ?workers:int ->
  ?capacity:int ->
  ?cache_entries:int ->
  ?cache_bytes:int ->
  ?log:(string -> unit) ->
  unit ->
  t
(** Defaults: 2 worker domains, queue capacity 16, cache 512 entries /
    64 MiB, no logging. [log] receives one structured line per request
    (and per cache decision). *)

val scheduler : t -> Scheduler.t
(** The bounded scheduler behind [run]/[simulate]. *)

val cache : t -> Cache.t
(** The result cache — exposed for tests and stats. *)

val metrics : t -> Metrics.t
(** The metrics accumulator — the daemon feeds connection gauges into it
    so the `stats` RPC's [connections] block reflects the event loop. *)

val request_key : Report.Tabular.json -> string option
(** The canonical cache key a parsed [run]/[simulate] request will be
    stored under — exactly the key derivation the cache uses ([jobs]
    excluded, merged params in spec order), exposed so the routing proxy
    can consistent-hash requests onto the backend that already holds (or
    is about to hold) the entry. [None] when the request is not a valid
    compute request (bad op, unknown id/protocol, ill-typed params):
    those never reach a cache and may be routed anywhere. *)

type reply = { payload : string; shutdown : bool }
(** [shutdown] is [true] exactly when the request was an accepted
    [shutdown] op — the daemon should reply, then drain and exit. *)

val handle_async : t -> ?cancelled:(unit -> bool) -> string -> k:(reply -> unit) -> unit
(** Process one request payload without blocking the caller; [k] receives
    the reply exactly once. Cheap endpoints ([ping], [list], [stats],
    [cache], [shutdown]), validation failures, cache hits and shed
    requests call [k] {e synchronously} on the caller — the event thread
    answers them without a thread handoff; computed misses call [k] from
    the worker domain that produced the payload. [k] must not block for
    long and must not raise. [cancelled] is probed by the scheduler just
    before compute starts (the daemon passes the event loop's EOF flag).
    Never raises: every failure becomes an [ok:false] response. *)

val handle : t -> ?cancelled:(unit -> bool) -> string -> reply
(** Blocking convenience over {!handle_async} — parks the calling thread
    until the reply is ready. Used by in-process tests and the proxy's
    dispatch threads. *)

val draining : t -> bool
(** Has a [shutdown] request been accepted? *)

val shutdown : t -> unit
(** Refuse new compute work and block until in-flight jobs finish. *)

(** Consistent-hash ring over backend addresses.

    Each backend owns [vnodes] points on a 61-bit hash circle; a key
    routes to the owner of the first point clockwise from the key's hash.
    Fully deterministic (FNV-1a folded through {!Stdx.Hashing.mix64}, no
    process randomness): the same (backends, key) pair routes identically
    everywhere, which is what lets any proxy replica agree on placement
    without coordination.

    Stability contract, pinned by the qcheck suite in [test_proxy.ml]:
    {!remove} re-routes {e only} keys the removed backend owned — every
    other key keeps its target — and with the default [vnodes] the
    per-backend key shares stay within a small constant of ideal. *)

type t
(** An immutable ring; share freely. *)

val create : ?vnodes:int -> string list -> t
(** [create backends] builds the ring. [vnodes] (default 128) is the
    number of ring points per backend — more points, smoother balance.
    Raises [Invalid_argument] on an empty or duplicate-bearing list, or
    [vnodes < 1]. *)

val backends : t -> string list
(** The configured backends, in the order given to {!create}. *)

val vnodes : t -> int
(** Ring points per backend. *)

val route : t -> string -> string
(** [route t key] is the backend owning [key]. *)

val successors : t -> string -> string list
(** Distinct backends in clockwise ring order from [key]'s position —
    head is {!route}[ t key], the rest is the failover order. Contains
    every backend exactly once. *)

val remove : t -> string -> t
(** The ring without one backend; other backends' points are unchanged,
    so only the removed backend's keys re-route. Raises
    [Invalid_argument] if the backend is unknown or the last one. *)

val hash_key : string -> int
(** The ring's key hash (exposed for tests). Non-negative. *)

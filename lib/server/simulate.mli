(** The [simulate] endpoint: run a named sketching protocol on a generated
    graph and report its exact per-player bit accounting.

    Determinism contract (what makes simulate responses cacheable and
    testable): for a [spec] with seed [s], the graph generator is
    [Stdx.Prng.split (Stdx.Prng.create s) 1] and the public coins are
    [Sketchmodel.Public_coins.create s]. An in-process
    [Sketchmodel.Model.run] (or [Rounds.run]) of the same protocol over
    {!graph_of_spec} with {!coins} produces {e exactly} the [max_bits] /
    [total_bits] the response reports. *)

module T = Report.Tabular

(** A generated input graph, named as on the wire ([{"kind":"gnp",...}]). *)
type gspec =
  | Gnp of { n : int; p : float }
  | Path of int
  | Cycle of int
  | Complete of int
  | Star of int

type spec = { protocol : string; graph : gspec; seed : int }
(** One simulation request: which protocol, on which graph, which seed. *)

val graph_rng : int -> Stdx.Prng.t
(** The generator a seed derives for graph construction. *)

val coins : int -> Sketchmodel.Public_coins.t
(** The public coins a seed derives for the protocol run. *)

val graph_of_spec : spec -> Dgraph.Graph.t
(** Build the input graph from [spec.graph] using {!graph_rng}[ spec.seed]. *)

val json_of_gspec : gspec -> T.json
(** Wire encoding of a graph spec (canonical field order). *)

val gspec_of_json : T.json -> (gspec, string) result
(** Parse a wire graph spec; [Error] carries a human-readable reason. *)

val protocols : (string * string) list
(** [(name, doc)] for every runnable protocol: [trivial-mm], [trivial-mis],
    [local-minima], [two-round-mm], [two-round-mis]. *)

val run : spec -> (string * T.json) list
(** Execute the simulation; the response body's fields ([protocol], [graph],
    [seed], [vertices], [edges], [output], [stats]). Raises
    [Invalid_argument] on an unknown protocol name — the service layer
    validates first via {!protocols}. *)

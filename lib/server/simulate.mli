(** The [simulate] endpoint: run a named sketching protocol on a generated
    graph and report its exact per-player bit accounting.

    Determinism contract (what makes simulate responses cacheable and
    testable): for a [spec] with seed [s], the graph generator is
    [Stdx.Prng.split (Stdx.Prng.create s) 1] and the public coins are
    [Sketchmodel.Public_coins.create s]. An in-process
    [Sketchmodel.Model.run] (or [Rounds.run]) of the same protocol over
    {!graph_of_spec} with {!coins} produces {e exactly} the [max_bits] /
    [total_bits] the response reports. *)

module T = Report.Tabular

(** A generated input, named as on the wire ([{"kind":"gnp",...}]).
    [Hyperk] is a random [k]-uniform hypergraph; the graph kinds double
    as hypergraph inputs through the 2-uniform embedding. *)
type gspec =
  | Gnp of { n : int; p : float }
  | Path of int
  | Cycle of int
  | Complete of int
  | Star of int
  | Hyperk of { n : int; m : int; k : int }

type spec = { protocol : string; graph : gspec; seed : int }
(** One simulation request: which protocol, on which graph, which seed. *)

val graph_rng : int -> Stdx.Prng.t
(** The generator a seed derives for graph construction. *)

val stream_rng : int -> Stdx.Prng.t
(** The generator a seed derives for edge-stream order
    ([Stdx.Prng.split (Stdx.Prng.create seed) 2]): what the
    [stream-matching] protocol shuffles the input's edges with. *)

val coins : int -> Sketchmodel.Public_coins.t
(** The public coins a seed derives for the protocol run. *)

val graph_of_spec : spec -> Dgraph.Graph.t
(** Build the input graph from [spec.graph] using {!graph_rng}[ spec.seed].
    Raises [Invalid_argument] on [Hyperk] (not a graph). *)

val hypergraph_of_spec : spec -> Dgraph.Hypergraph.t
(** Build the input hypergraph: [Hyperk] through
    [Dgraph.Hgen.uniform_random] over {!graph_rng}[ spec.seed], every
    graph kind through [Dgraph.Hypergraph.of_graph] of
    {!graph_of_spec}. *)

val json_of_gspec : gspec -> T.json
(** Wire encoding of a graph spec (canonical field order). *)

val gspec_of_json : T.json -> (gspec, string) result
(** Parse a wire graph spec; [Error] carries a human-readable reason. *)

val protocols : (string * string) list
(** [(name, doc)] for every runnable protocol: [trivial-mm], [trivial-mis],
    [local-minima], [two-round-mm], [two-round-mis], the hypergraph
    protocols [hyper-trivial-mm], [hyper-iterated-mm],
    [hyper-local-minima-mis], [hyper-luby-mis], and the multipass wing
    [prefix-mis-r4], [luby-mis-random], [luby-mis-degree],
    [luby-mis-index], [stream-matching] (PROTOCOL.md §4.5). *)

val compatible : protocol:string -> gspec -> bool
(** Whether the protocol can run on the input: graph protocols need a
    graph kind, the [hyper-*] protocols accept every kind. The service
    layer rejects incompatible pairs as a 400 before computing. *)

val run : spec -> (string * T.json) list
(** Execute the simulation; the response body's fields ([protocol], [graph],
    [seed], [vertices], [edges], [output], [stats]). Raises
    [Invalid_argument] on an unknown protocol name or an incompatible
    (protocol, input) pair — the service layer validates first via
    {!protocols} and {!compatible}. *)

(* Client side of the wire protocol: one TCP connection, synchronous
   request/response frames. Used by `sketchctl`, the server tests and the
   `serve` bench — anything that talks to a running sketchd. *)

module T = Report.Tabular

type t = { fd : Unix.file_descr }

exception Server_error of { code : int; error : string; msg : string }

let connect ?(host = "127.0.0.1") ~port () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port))
   with e ->
     Unix.close fd;
     raise e);
  Unix.setsockopt fd Unix.TCP_NODELAY true;
  { fd }

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let with_connection ?host ~port f =
  let t = connect ?host ~port () in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f t)

(* Raw payload in, raw payload out — the byte-exact response, which is what
   determinism checks diff. *)
let request t payload =
  Wire.write_frame t.fd payload;
  Wire.read_frame t.fd

let request_json t j =
  let response = request t (T.string_of_json j) in
  T.json_of_string response

(* [request_json], but server-reported failures become an exception. *)
let request_json_exn t j =
  let r = request_json t j in
  match T.member "ok" r with
  | Some (T.Jbool true) -> r
  | _ ->
      let str k = match T.member k r with Some (T.Jstr s) -> s | _ -> "" in
      let code = match T.member "code" r with Some (T.Jint c) -> c | _ -> 0 in
      raise (Server_error { code; error = str "error"; msg = str "msg" })

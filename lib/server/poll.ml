(* OCaml face of the poll(2) stub: parallel fds/events/revents arrays,
   resized geometrically by the caller (see [ensure]). Only the first [n]
   entries of each array are live on any given call. *)

external poll_stub :
  Unix.file_descr array -> int array -> int array -> int -> int -> int
  = "sketchlb_poll"

external constants : unit -> int * int * int * int * int = "sketchlb_poll_constants"

let pollin, pollout, pollerr, pollhup, pollnval = constants ()

type set = {
  mutable fds : Unix.file_descr array;
  mutable events : int array;
  mutable revents : int array;
  mutable n : int;
}

let create_set () =
  {
    fds = Array.make 64 Unix.stdin;
    events = Array.make 64 0;
    revents = Array.make 64 0;
    n = 0;
  }

let clear s = s.n <- 0

(* Make room for at least [extra] more entries. *)
let ensure s extra =
  let need = s.n + extra in
  if need > Array.length s.fds then begin
    let cap = ref (Array.length s.fds) in
    while !cap < need do
      cap := !cap * 2
    done;
    let fds = Array.make !cap Unix.stdin in
    let events = Array.make !cap 0 in
    let revents = Array.make !cap 0 in
    Array.blit s.fds 0 fds 0 s.n;
    Array.blit s.events 0 events 0 s.n;
    s.fds <- fds;
    s.events <- events;
    s.revents <- revents
  end

(* Register one fd with an interest mask; returns its slot index. *)
let add s fd events =
  ensure s 1;
  let i = s.n in
  s.fds.(i) <- fd;
  s.events.(i) <- events;
  s.revents.(i) <- 0;
  s.n <- i + 1;
  i

let wait s ~timeout_ms =
  match poll_stub s.fds s.events s.revents s.n timeout_ms with
  | n -> n
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> 0

let revents s i = s.revents.(i)

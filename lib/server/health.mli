(** Backend health book-keeping for the proxy.

    One entry per configured backend, updated from two directions: the
    periodic [ping] sweep (a {!pinger} thread, or {!sweep} called
    directly) and the forwarding path itself (a transport failure calls
    {!mark_down} immediately, a successful response {!mark_up}).
    Thread-safe (one internal mutex). *)

type status = {
  healthy : bool;
  failures : int;  (** consecutive failures since the last success *)
  last_error : string option;  (** what the most recent failure said *)
}

type t
(** The health table; safe to share across threads. *)

val create : string list -> t
(** One optimistic (healthy) entry per backend, in the order given. *)

val mark_up : t -> string -> unit
(** Record a success: healthy, failure streak reset. Unknown addresses
    are ignored. *)

val mark_down : t -> string -> error:string -> unit
(** Record a failure: unhealthy, streak incremented, [error] kept. *)

val healthy : t -> string -> bool
(** Current verdict for one backend ([false] for unknown addresses). *)

val healthy_count : t -> int
(** How many backends are currently healthy. *)

val snapshot : t -> (string * status) list
(** Every entry, in configured order — the `cluster` RPC's source. *)

val sweep : t -> ping:(string -> (unit, string) result) -> unit
(** One synchronous probe of every backend, updating each entry. *)

type pinger
(** A background thread running {!sweep} periodically. *)

val start_pinger : t -> interval_s:float -> ping:(string -> (unit, string) result) -> pinger
(** Sweep every [interval_s] seconds until {!stop_pinger}. *)

val stop_pinger : pinger -> unit
(** Wake, stop and join the pinger thread. Idempotent. *)

(* The `simulate` endpoint: run a named sketching protocol on a generated
   graph and report its exact bit accounting.

   This is the served version of what the repo's experiments do in-process
   — the same [Sketchmodel.Model.run] / [Sketchmodel.Rounds.run] with the
   same generators and the same coins, so a response's [max_bits] and
   [total_bits] are {e exactly} the numbers an in-process run of the same
   (protocol, graph, seed) triple produces; [test_server] pins that.

   Derivations are fixed and documented in the mli: the graph generator is
   [Prng.split (Prng.create seed) 1], the coins are
   [Public_coins.create seed]. Everything downstream is deterministic, so
   simulate responses are cacheable like experiment runs. *)

module T = Report.Tabular
module Model = Sketchmodel.Model
module Rounds = Sketchmodel.Rounds

type gspec =
  | Gnp of { n : int; p : float }
  | Path of int
  | Cycle of int
  | Complete of int
  | Star of int
  | Hyperk of { n : int; m : int; k : int }

type spec = { protocol : string; graph : gspec; seed : int }

let graph_rng seed = Stdx.Prng.split (Stdx.Prng.create seed) 1
let stream_rng seed = Stdx.Prng.split (Stdx.Prng.create seed) 2
let coins seed = Sketchmodel.Public_coins.create seed

let graph_of_spec { graph; seed; _ } =
  match graph with
  | Gnp { n; p } -> Dgraph.Gen.gnp (graph_rng seed) n p
  | Path n -> Dgraph.Gen.path n
  | Cycle n -> Dgraph.Gen.cycle n
  | Complete n -> Dgraph.Gen.complete n
  | Star n -> Dgraph.Gen.star n
  | Hyperk _ -> invalid_arg "Simulate.graph_of_spec: hyperk is not a graph"

(* Every gspec also names a hypergraph: [hyperk] directly (through the
   same derived generator as {!graph_of_spec} uses), the graph kinds via
   the 2-uniform embedding — so the hypergraph protocols run on every
   input the graph protocols do. *)
let hypergraph_of_spec ({ graph; seed; _ } as spec) =
  match graph with
  | Hyperk { n; m; k } -> Dgraph.Hgen.uniform_random (graph_rng seed) ~n ~m ~k
  | _ -> Dgraph.Hypergraph.of_graph (graph_of_spec spec)

let json_of_gspec = function
  | Gnp { n; p } -> T.Jobj [ ("kind", T.Jstr "gnp"); ("n", T.Jint n); ("p", T.Jfloat p) ]
  | Path n -> T.Jobj [ ("kind", T.Jstr "path"); ("n", T.Jint n) ]
  | Cycle n -> T.Jobj [ ("kind", T.Jstr "cycle"); ("n", T.Jint n) ]
  | Complete n -> T.Jobj [ ("kind", T.Jstr "complete"); ("n", T.Jint n) ]
  | Star n -> T.Jobj [ ("kind", T.Jstr "star"); ("n", T.Jint n) ]
  | Hyperk { n; m; k } ->
      T.Jobj [ ("kind", T.Jstr "hyperk"); ("n", T.Jint n); ("m", T.Jint m); ("k", T.Jint k) ]

let gspec_of_json j =
  let int k = match T.member k j with Some (T.Jint i) -> Some i | _ -> None in
  let num k =
    match T.member k j with
    | Some (T.Jfloat f) -> Some f
    | Some (T.Jint i) -> Some (float_of_int i)
    | _ -> None
  in
  match (T.member "kind" j, int "n") with
  | Some (T.Jstr "gnp"), Some n -> (
      match num "p" with
      | Some p when p >= 0. && p <= 1. && n >= 0 -> Ok (Gnp { n; p })
      | _ -> Error "gnp needs a probability field \"p\" in [0,1]")
  | Some (T.Jstr "path"), Some n -> Ok (Path n)
  | Some (T.Jstr "cycle"), Some n -> Ok (Cycle n)
  | Some (T.Jstr "complete"), Some n -> Ok (Complete n)
  | Some (T.Jstr "star"), Some n -> Ok (Star n)
  | Some (T.Jstr "hyperk"), Some n -> (
      match (int "m", int "k") with
      | Some m, Some k when n >= 0 && m >= 0 && k >= 2 && k <= n -> Ok (Hyperk { n; m; k })
      | Some _, Some _ -> Error "hyperk needs 2 <= k <= n and m >= 0"
      | _ -> Error "hyperk needs integer fields \"m\" and \"k\"")
  | Some (T.Jstr k), None -> Error (Printf.sprintf "graph kind %S needs an integer field \"n\"" k)
  | Some (T.Jstr k), _ -> Error (Printf.sprintf "unknown graph kind %S" k)
  | _ -> Error "graph spec needs a string field \"kind\""

(* ------------------------------------------------------------------ *)
(* The protocol catalogue                                              *)

let protocols =
  [
    ("trivial-mm", "full neighbourhoods, referee solves MM exactly (one round)");
    ("trivial-mis", "full neighbourhoods, referee solves MIS exactly (one round)");
    ("local-minima", "one-bit local-minima MIS attempt (one round; rarely maximal)");
    ("two-round-mm", "Lattanzi-style filtering MM (two rounds, O~(sqrt n))");
    ("two-round-mis", "random-prefix greedy MIS (two rounds, O~(sqrt n))");
    ("hyper-trivial-mm", "full incident pin sets, referee solves hypergraph MM (one round)");
    ("hyper-iterated-mm", "proposal rounds to a maximal hypergraph matching (multi-round)");
    ("hyper-local-minima-mis", "one-bit hypergraph MIS attempt (one round; rarely maximal)");
    ("hyper-luby-mis", "Luby-style hypergraph MIS (multi-round, always maximal)");
    ("prefix-mis-r4", "r-round prefix-greedy MIS at r=4 (multipass frontier)");
    ("luby-mis-random", "Luby MIS, fresh public-coin priorities (2 bits/player/round)");
    ("luby-mis-degree", "Luby MIS, degree-biased priorities (degree prep round first)");
    ("luby-mis-index", "Luby MIS, fixed index priorities (deterministic rounds)");
    ("stream-matching", "multi-pass semi-streaming (1+eps) matching at eps=1/4");
  ]

(* Graph protocols need a graph-shaped input; the hypergraph protocols
   accept everything (graph kinds embed 2-uniformly). The service checks
   this before computing, so a mismatch is a 400, not a crash. *)
let compatible ~protocol graph =
  match (protocol, graph) with
  | ("hyper-trivial-mm" | "hyper-iterated-mm" | "hyper-local-minima-mis" | "hyper-luby-mis"), _
    ->
      true
  | _, Hyperk _ -> false
  | _, _ -> true

let mm_output g m =
  let v = Dgraph.Matching.verify g m in
  T.Jobj
    [
      ("kind", T.Jstr "matching");
      ("size", T.Jint (Dgraph.Matching.size m));
      ("edges_exist", T.Jbool v.Dgraph.Matching.edges_exist);
      ("disjoint", T.Jbool v.Dgraph.Matching.disjoint);
      ("maximal", T.Jbool v.Dgraph.Matching.maximal);
    ]

let mis_output g s =
  let v = Dgraph.Mis.verify g s in
  T.Jobj
    [
      ("kind", T.Jstr "mis");
      ("size", T.Jint (List.length s));
      ("independent", T.Jbool v.Dgraph.Mis.independent);
      ("maximal", T.Jbool v.Dgraph.Mis.maximal);
    ]

let one_round_stats (s : Model.stats) =
  T.Jobj
    [
      ("rounds", T.Jint 1);
      ("players", T.Jint s.Model.players);
      ("max_bits", T.Jint s.Model.max_bits);
      ("total_bits", T.Jint s.Model.total_bits);
      ("avg_bits", T.Jfloat s.Model.avg_bits);
    ]

let two_round_stats (s : Rounds.stats) =
  T.Jobj
    [
      ("rounds", T.Jint 2);
      ("max_bits", T.Jint s.Rounds.max_bits);
      ("round1_max", T.Jint s.Rounds.round1_max);
      ("round2_max", T.Jint s.Rounds.round2_max);
      ("broadcast_bits", T.Jint s.Rounds.broadcast_bits);
      ("total_bits", T.Jint s.Rounds.total_bits);
    ]

let jarr_of_ints a = T.Jarr (Array.to_list (Array.map (fun i -> T.Jint i) a))

(* The r-round engine's stats: the cumulative figures the fixed engines
   report, plus the per-round curves the round-frontier experiment plots. *)
let multipass_stats (s : Multipass.Rounds.stats) =
  T.Jobj
    [
      ("rounds", T.Jint s.Multipass.Rounds.rounds);
      ("max_bits", T.Jint s.Multipass.Rounds.max_bits);
      ("total_bits", T.Jint s.Multipass.Rounds.total_bits);
      ("broadcast_bits", T.Jint s.Multipass.Rounds.broadcast_bits);
      ("round_max", jarr_of_ints s.Multipass.Rounds.round_max);
      ("round_total", jarr_of_ints s.Multipass.Rounds.round_total);
      ("round_broadcast", jarr_of_ints s.Multipass.Rounds.round_broadcast);
    ]

(* Streaming passes are the cost axis, not rounds: report per-pass memory
   and matching growth alongside the peak. *)
let stream_stats (r : Multipass.Stream_matching.result) =
  let passes = r.Multipass.Stream_matching.passes in
  let per f = T.Jarr (List.map (fun p -> T.Jint (f p)) passes) in
  T.Jobj
    [
      ("passes", T.Jint (List.length passes));
      ("peak_memory_bits", T.Jint r.Multipass.Stream_matching.peak_memory_bits);
      ("converged", T.Jbool r.Multipass.Stream_matching.converged);
      ("pass_memory_bits", per (fun p -> p.Multipass.Stream_matching.memory_bits));
      ("pass_matching", per (fun p -> p.Multipass.Stream_matching.matching_size));
      ("pass_augmented", per (fun p -> p.Multipass.Stream_matching.augmented));
    ]

let multi_round_stats (s : Protocols.Hyper_views.multi_stats) =
  T.Jobj
    [
      ("rounds", T.Jint s.Protocols.Hyper_views.rounds);
      ("max_bits", T.Jint s.Protocols.Hyper_views.max_bits);
      ("total_bits", T.Jint s.Protocols.Hyper_views.total_bits);
      ("broadcast_bits", T.Jint s.Protocols.Hyper_views.broadcast_bits);
    ]

(* A hypergraph matching arrives as pin sets (players cannot name frozen
   edge ids); map them back through [find_edge] for the id-based
   verdicts. An unmappable pin set is a fabricated edge. *)
let hyper_mm_output h pin_sets =
  let ids = List.map (fun pins -> Dgraph.Hypergraph.find_edge h pins) pin_sets in
  let all_exist = List.for_all Option.is_some ids in
  let known = List.filter_map Fun.id ids in
  let v = Dgraph.Hmatching.verify h known in
  T.Jobj
    [
      ("kind", T.Jstr "hyper-matching");
      ("size", T.Jint (List.length pin_sets));
      ("edges_exist", T.Jbool (all_exist && v.Dgraph.Hmatching.edges_exist));
      ("disjoint", T.Jbool v.Dgraph.Hmatching.disjoint);
      ("maximal", T.Jbool (all_exist && v.Dgraph.Hmatching.maximal));
    ]

let hyper_mis_output h s =
  let v = Dgraph.Hmis.verify h s in
  T.Jobj
    [
      ("kind", T.Jstr "hyper-mis");
      ("size", T.Jint (List.length s));
      ("independent", T.Jbool v.Dgraph.Hmis.independent);
      ("maximal", T.Jbool v.Dgraph.Hmis.maximal);
    ]

let run spec =
  if not (compatible ~protocol:spec.protocol spec.graph) then
    invalid_arg (Printf.sprintf "Simulate.run: protocol %S needs a graph input" spec.protocol);
  let coins = coins spec.seed in
  let sizes, output, stats =
    match spec.protocol with
    | "trivial-mm" ->
        let g = graph_of_spec spec in
        let m, s = Model.run Protocols.Trivial.mm g coins in
        ((Dgraph.Graph.n g, Dgraph.Graph.m g), mm_output g m, one_round_stats s)
    | "trivial-mis" ->
        let g = graph_of_spec spec in
        let mis, s = Model.run Protocols.Trivial.mis g coins in
        ((Dgraph.Graph.n g, Dgraph.Graph.m g), mis_output g mis, one_round_stats s)
    | "local-minima" ->
        let g = graph_of_spec spec in
        let mis, s = Model.run Protocols.One_round_mis.local_minima g coins in
        ((Dgraph.Graph.n g, Dgraph.Graph.m g), mis_output g mis, one_round_stats s)
    | "two-round-mm" ->
        let g = graph_of_spec spec in
        let m, s = Protocols.Two_round_mm.run g coins in
        ((Dgraph.Graph.n g, Dgraph.Graph.m g), mm_output g m, two_round_stats s)
    | "two-round-mis" ->
        let g = graph_of_spec spec in
        let mis, s = Protocols.Two_round_mis.run g coins in
        ((Dgraph.Graph.n g, Dgraph.Graph.m g), mis_output g mis, two_round_stats s)
    | "hyper-trivial-mm" ->
        let h = hypergraph_of_spec spec in
        let m, s = Protocols.Hyper_mm.run_trivial h coins in
        ((Dgraph.Hypergraph.n h, Dgraph.Hypergraph.m h), hyper_mm_output h m, one_round_stats s)
    | "hyper-iterated-mm" ->
        let h = hypergraph_of_spec spec in
        let m, s = Protocols.Hyper_mm.run_iterated h coins in
        ((Dgraph.Hypergraph.n h, Dgraph.Hypergraph.m h), hyper_mm_output h m, multi_round_stats s)
    | "hyper-local-minima-mis" ->
        let h = hypergraph_of_spec spec in
        let mis, s = Protocols.Hyper_mis.run_local_minima h coins in
        ((Dgraph.Hypergraph.n h, Dgraph.Hypergraph.m h), hyper_mis_output h mis, one_round_stats s)
    | "hyper-luby-mis" ->
        let h = hypergraph_of_spec spec in
        let mis, s = Protocols.Hyper_mis.run_luby h coins in
        ((Dgraph.Hypergraph.n h, Dgraph.Hypergraph.m h), hyper_mis_output h mis, multi_round_stats s)
    | "prefix-mis-r4" ->
        let g = graph_of_spec spec in
        let mis, s = Multipass.Frontier.run ~rounds:4 g coins in
        ((Dgraph.Graph.n g, Dgraph.Graph.m g), mis_output g mis, multipass_stats s)
    | ("luby-mis-random" | "luby-mis-degree" | "luby-mis-index") as name ->
        let kind =
          match name with
          | "luby-mis-random" -> Multipass.Luby.Random
          | "luby-mis-degree" -> Multipass.Luby.Degree
          | _ -> Multipass.Luby.Index
        in
        let g = graph_of_spec spec in
        let mis, s = Multipass.Luby.run kind g coins in
        ((Dgraph.Graph.n g, Dgraph.Graph.m g), mis_output g mis, multipass_stats s)
    | "stream-matching" ->
        let g = graph_of_spec spec in
        let stream = Streams.Stream.shuffled (stream_rng spec.seed) g in
        let res = Multipass.Stream_matching.run ~eps:0.25 stream in
        ( (Dgraph.Graph.n g, Dgraph.Graph.m g),
          mm_output g res.Multipass.Stream_matching.matching,
          stream_stats res )
    | other -> invalid_arg (Printf.sprintf "Simulate.run: unknown protocol %S" other)
  in
  [
    ("protocol", T.Jstr spec.protocol);
    ("graph", json_of_gspec spec.graph);
    ("seed", T.Jint spec.seed);
    ("vertices", T.Jint (fst sizes));
    ("edges", T.Jint (snd sizes));
    ("output", output);
    ("stats", stats);
  ]

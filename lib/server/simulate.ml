(* The `simulate` endpoint: run a named sketching protocol on a generated
   graph and report its exact bit accounting.

   This is the served version of what the repo's experiments do in-process
   — the same [Sketchmodel.Model.run] / [Sketchmodel.Rounds.run] with the
   same generators and the same coins, so a response's [max_bits] and
   [total_bits] are {e exactly} the numbers an in-process run of the same
   (protocol, graph, seed) triple produces; [test_server] pins that.

   Derivations are fixed and documented in the mli: the graph generator is
   [Prng.split (Prng.create seed) 1], the coins are
   [Public_coins.create seed]. Everything downstream is deterministic, so
   simulate responses are cacheable like experiment runs. *)

module T = Report.Tabular
module Model = Sketchmodel.Model
module Rounds = Sketchmodel.Rounds

type gspec =
  | Gnp of { n : int; p : float }
  | Path of int
  | Cycle of int
  | Complete of int
  | Star of int

type spec = { protocol : string; graph : gspec; seed : int }

let graph_rng seed = Stdx.Prng.split (Stdx.Prng.create seed) 1
let coins seed = Sketchmodel.Public_coins.create seed

let graph_of_spec { graph; seed; _ } =
  match graph with
  | Gnp { n; p } -> Dgraph.Gen.gnp (graph_rng seed) n p
  | Path n -> Dgraph.Gen.path n
  | Cycle n -> Dgraph.Gen.cycle n
  | Complete n -> Dgraph.Gen.complete n
  | Star n -> Dgraph.Gen.star n

let json_of_gspec = function
  | Gnp { n; p } -> T.Jobj [ ("kind", T.Jstr "gnp"); ("n", T.Jint n); ("p", T.Jfloat p) ]
  | Path n -> T.Jobj [ ("kind", T.Jstr "path"); ("n", T.Jint n) ]
  | Cycle n -> T.Jobj [ ("kind", T.Jstr "cycle"); ("n", T.Jint n) ]
  | Complete n -> T.Jobj [ ("kind", T.Jstr "complete"); ("n", T.Jint n) ]
  | Star n -> T.Jobj [ ("kind", T.Jstr "star"); ("n", T.Jint n) ]

let gspec_of_json j =
  let int k = match T.member k j with Some (T.Jint i) -> Some i | _ -> None in
  let num k =
    match T.member k j with
    | Some (T.Jfloat f) -> Some f
    | Some (T.Jint i) -> Some (float_of_int i)
    | _ -> None
  in
  match (T.member "kind" j, int "n") with
  | Some (T.Jstr "gnp"), Some n -> (
      match num "p" with
      | Some p when p >= 0. && p <= 1. && n >= 0 -> Ok (Gnp { n; p })
      | _ -> Error "gnp needs a probability field \"p\" in [0,1]")
  | Some (T.Jstr "path"), Some n -> Ok (Path n)
  | Some (T.Jstr "cycle"), Some n -> Ok (Cycle n)
  | Some (T.Jstr "complete"), Some n -> Ok (Complete n)
  | Some (T.Jstr "star"), Some n -> Ok (Star n)
  | Some (T.Jstr k), None -> Error (Printf.sprintf "graph kind %S needs an integer field \"n\"" k)
  | Some (T.Jstr k), _ -> Error (Printf.sprintf "unknown graph kind %S" k)
  | _ -> Error "graph spec needs a string field \"kind\""

(* ------------------------------------------------------------------ *)
(* The protocol catalogue                                              *)

let protocols =
  [
    ("trivial-mm", "full neighbourhoods, referee solves MM exactly (one round)");
    ("trivial-mis", "full neighbourhoods, referee solves MIS exactly (one round)");
    ("local-minima", "one-bit local-minima MIS attempt (one round; rarely maximal)");
    ("two-round-mm", "Lattanzi-style filtering MM (two rounds, O~(sqrt n))");
    ("two-round-mis", "random-prefix greedy MIS (two rounds, O~(sqrt n))");
  ]

let mm_output g m =
  let v = Dgraph.Matching.verify g m in
  T.Jobj
    [
      ("kind", T.Jstr "matching");
      ("size", T.Jint (Dgraph.Matching.size m));
      ("edges_exist", T.Jbool v.Dgraph.Matching.edges_exist);
      ("disjoint", T.Jbool v.Dgraph.Matching.disjoint);
      ("maximal", T.Jbool v.Dgraph.Matching.maximal);
    ]

let mis_output g s =
  let v = Dgraph.Mis.verify g s in
  T.Jobj
    [
      ("kind", T.Jstr "mis");
      ("size", T.Jint (List.length s));
      ("independent", T.Jbool v.Dgraph.Mis.independent);
      ("maximal", T.Jbool v.Dgraph.Mis.maximal);
    ]

let one_round_stats (s : Model.stats) =
  T.Jobj
    [
      ("rounds", T.Jint 1);
      ("players", T.Jint s.Model.players);
      ("max_bits", T.Jint s.Model.max_bits);
      ("total_bits", T.Jint s.Model.total_bits);
      ("avg_bits", T.Jfloat s.Model.avg_bits);
    ]

let two_round_stats (s : Rounds.stats) =
  T.Jobj
    [
      ("rounds", T.Jint 2);
      ("max_bits", T.Jint s.Rounds.max_bits);
      ("round1_max", T.Jint s.Rounds.round1_max);
      ("round2_max", T.Jint s.Rounds.round2_max);
      ("broadcast_bits", T.Jint s.Rounds.broadcast_bits);
      ("total_bits", T.Jint s.Rounds.total_bits);
    ]

let run spec =
  let g = graph_of_spec spec in
  let coins = coins spec.seed in
  let output, stats =
    match spec.protocol with
    | "trivial-mm" ->
        let m, s = Model.run Protocols.Trivial.mm g coins in
        (mm_output g m, one_round_stats s)
    | "trivial-mis" ->
        let mis, s = Model.run Protocols.Trivial.mis g coins in
        (mis_output g mis, one_round_stats s)
    | "local-minima" ->
        let mis, s = Model.run Protocols.One_round_mis.local_minima g coins in
        (mis_output g mis, one_round_stats s)
    | "two-round-mm" ->
        let m, s = Protocols.Two_round_mm.run g coins in
        (mm_output g m, two_round_stats s)
    | "two-round-mis" ->
        let mis, s = Protocols.Two_round_mis.run g coins in
        (mis_output g mis, two_round_stats s)
    | other -> invalid_arg (Printf.sprintf "Simulate.run: unknown protocol %S" other)
  in
  [
    ("protocol", T.Jstr spec.protocol);
    ("graph", json_of_gspec spec.graph);
    ("seed", T.Jint spec.seed);
    ("vertices", T.Jint (Dgraph.Graph.n g));
    ("edges", T.Jint (Dgraph.Graph.m g));
    ("output", output);
    ("stats", stats);
  ]

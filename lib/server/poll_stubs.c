/* A minimal poll(2) binding for the event-driven daemon core.
 *
 * The OCaml standard library only exposes select(2), whose fd_set caps
 * out at FD_SETSIZE (1024 on Linux) — one silent cliff the daemon used
 * to live under.  poll(2) takes an explicit array, so the only limit is
 * the process's fd rlimit.
 *
 * Calling convention: the OCaml side keeps three parallel arrays
 * (fds, events, revents) and tells us how many leading entries are
 * live.  We build the struct pollfd array on the C heap, release the
 * OCaml runtime lock for the duration of the syscall (other threads —
 * worker domains, completion posters — keep running), and copy the
 * revents back.  Unix.file_descr is an int on Unix, so Int_val/Val_int
 * move descriptors directly.
 */

#include <poll.h>
#include <errno.h>

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <caml/memory.h>
#include <caml/fail.h>
#include <caml/signals.h>
#include <caml/unixsupport.h>

CAMLprim value sketchlb_poll(value v_fds, value v_events, value v_revents,
                             value v_n, value v_timeout_ms)
{
  CAMLparam5(v_fds, v_events, v_revents, v_n, v_timeout_ms);
  int n = Int_val(v_n);
  int timeout_ms = Int_val(v_timeout_ms);
  struct pollfd *pfds;
  int ret, i;

  if (n < 0 || (uintnat) n > Wosize_val(v_fds)
      || (uintnat) n > Wosize_val(v_events)
      || (uintnat) n > Wosize_val(v_revents))
    caml_invalid_argument("Poll.poll: n out of bounds");

  pfds = caml_stat_alloc(sizeof(struct pollfd) * (n == 0 ? 1 : n));
  for (i = 0; i < n; i++) {
    pfds[i].fd = Int_val(Field(v_fds, i));
    pfds[i].events = (short) Int_val(Field(v_events, i));
    pfds[i].revents = 0;
  }

  caml_enter_blocking_section();
  ret = poll(pfds, (nfds_t) n, timeout_ms);
  caml_leave_blocking_section();

  if (ret < 0) {
    caml_stat_free(pfds);
    uerror("poll", Nothing);
  }
  /* Plain immediates into a preallocated int array: no caml_modify needed,
   * but Store_field keeps us honest if the array representation changes. */
  for (i = 0; i < n; i++)
    Store_field(v_revents, i, Val_int(pfds[i].revents));
  caml_stat_free(pfds);
  CAMLreturn(Val_int(ret));
}

/* The event-bit constants are platform-defined; export them rather than
 * hard-coding Linux's values in OCaml. */
CAMLprim value sketchlb_poll_constants(value unit)
{
  CAMLparam1(unit);
  CAMLlocal1(res);
  res = caml_alloc_tuple(5);
  Store_field(res, 0, Val_int(POLLIN));
  Store_field(res, 1, Val_int(POLLOUT));
  Store_field(res, 2, Val_int(POLLERR));
  Store_field(res, 3, Val_int(POLLHUP));
  Store_field(res, 4, Val_int(POLLNVAL));
  CAMLreturn(res);
}

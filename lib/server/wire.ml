(* The sketchd wire format: length-prefixed JSON frames over a stream.

   A frame is a LEB128 varint byte count followed by that many payload
   bytes (UTF-8 JSON text). Both halves go through [Stdx.Bitbuf] — the
   varint is [Writer.uvarint] (8-bit groups, so on the wire it is standard
   LEB128) and the payload is [Writer.string] — which keeps the server's
   framing on the same bit-exact codec the protocol sketches use, and lets
   the qcheck suites fuzz one buffer implementation for both.

   Misbehaving peers are first-class: a header longer than [max_header]
   groups or a declared length over [max_frame] raises before any payload
   allocation, and a connection that dies mid-frame surfaces as [Closed]
   (clean boundary) or [Malformed] (mid-frame). *)

module W = Stdx.Bitbuf.Writer
module R = Stdx.Bitbuf.Reader

exception Closed
exception Malformed of string
exception Oversized of int

(* 16 MiB: far above any table payload, far below a memory-exhaustion
   attack. A 9-group LEB128 header can claim up to 2^63 bytes; the check
   runs on the declared length, before allocating. *)
let max_frame = 16 * 1024 * 1024
let max_header = 9

let encode payload =
  let w = W.create () in
  W.uvarint w (String.length payload);
  W.string w payload;
  let data, len_bits = W.contents w in
  assert (len_bits mod 8 = 0);
  Bytes.unsafe_to_string data

(* Decode one frame from [s] at byte offset [off]. Returns the payload and
   the offset one past the frame. Raises [Malformed]/[Oversized] like the
   socket path; [Closed] if [off] is exactly the end. *)
let decode s ~off =
  let len = String.length s in
  if off >= len then raise Closed;
  let rec header_end i groups =
    if groups > max_header then raise (Malformed "header too long")
    else if i >= len then raise (Malformed "truncated header")
    else if Char.code s.[i] land 0x80 = 0 then i + 1
    else header_end (i + 1) (groups + 1)
  in
  let hend = header_end off 1 in
  let r = R.of_string (String.sub s off (hend - off)) in
  let n = R.uvarint r in
  (* [n < 0]: a 9-group varint can overflow the 63-bit int — treat as huge. *)
  if n < 0 || n > max_frame then raise (Oversized n);
  if hend + n > len then raise (Malformed "truncated payload");
  (String.sub s hend n, hend + n)

(* ------------------------------------------------------------------ *)
(* Incremental decoding: the event loop's frame reassembler            *)

module Decoder = struct
  (* Feed bytes as they arrive off a non-blocking socket; completed frames
     queue up internally. The same defenses as the blocking reader run at
     the same points: the header is capped at [max_header] groups, and the
     declared length is checked against [max_frame] (negative = 63-bit
     overflow) *before* the payload buffer is allocated. *)
  type t = {
    hdr : Bytes.t;  (* header bytes seen so far, < max_header of them *)
    mutable hdr_len : int;
    mutable expect : int;  (* payload length; -1 while still in the header *)
    mutable payload : Bytes.t;
    mutable filled : int;
    ready : string Queue.t;
  }

  let create () =
    {
      hdr = Bytes.create max_header;
      hdr_len = 0;
      expect = -1;
      payload = Bytes.empty;
      filled = 0;
      ready = Queue.create ();
    }

  let reset t =
    t.hdr_len <- 0;
    t.expect <- -1;
    t.payload <- Bytes.empty;
    t.filled <- 0

  let buffered t = if t.expect < 0 then t.hdr_len else t.hdr_len + t.filled

  let complete t =
    Queue.add (Bytes.unsafe_to_string t.payload) t.ready;
    reset t

  let feed t buf ~off ~len =
    if off < 0 || len < 0 || off + len > Bytes.length buf then
      invalid_arg "Wire.Decoder.feed";
    let i = ref off in
    let stop = off + len in
    while !i < stop do
      if t.expect < 0 then begin
        (* Header byte. A valid header's last group has the high bit
           clear; [max_header] groups all with it set is garbage (same
           cutoff as the blocking reader: the 9th continuation byte). *)
        let c = Char.code (Bytes.get buf !i) in
        incr i;
        Bytes.set t.hdr t.hdr_len (Char.chr c);
        t.hdr_len <- t.hdr_len + 1;
        if c land 0x80 = 0 then begin
          let n = R.uvarint (R.of_string (Bytes.sub_string t.hdr 0 t.hdr_len)) in
          (* [n < 0]: a 9-group varint can overflow the 63-bit int. *)
          if n < 0 || n > max_frame then raise (Oversized n);
          t.expect <- n;
          t.payload <- Bytes.create n;
          t.filled <- 0;
          if n = 0 then complete t
        end
        else if t.hdr_len >= max_header then raise (Malformed "header too long")
      end
      else begin
        let take = min (t.expect - t.filled) (stop - !i) in
        Bytes.blit buf !i t.payload t.filled take;
        t.filled <- t.filled + take;
        i := !i + take;
        if t.filled = t.expect then complete t
      end
    done

  let next t = Queue.take_opt t.ready
end

(* ------------------------------------------------------------------ *)
(* Socket I/O                                                          *)

let rec write_all fd buf off len =
  if len > 0 then begin
    let n =
      try Unix.write fd buf off len
      with Unix.Unix_error (Unix.EINTR, _, _) -> 0
    in
    write_all fd buf (off + n) (len - n)
  end

let write_frame fd payload =
  let t0 = Unix.gettimeofday () in
  let s = encode payload in
  write_all fd (Bytes.unsafe_of_string s) 0 (String.length s);
  if Stdx.Trace.enabled () then
    Stdx.Trace.complete
      ~args:[ ("bytes", Stdx.Trace.Int (String.length s)) ]
      ~t0 ~t1:(Unix.gettimeofday ()) "wire.encode"

let read_byte fd =
  let b = Bytes.create 1 in
  let rec go () =
    match Unix.read fd b 0 1 with
    | 0 -> None
    | _ -> Some (Bytes.get b 0)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

let rec read_exact fd buf off len =
  if len > 0 then
    match Unix.read fd buf off len with
    | 0 -> raise (Malformed "truncated payload")
    | n -> read_exact fd buf (off + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_exact fd buf off len

let read_frame fd =
  (* Header: LEB128 groups, one byte at a time (at most [max_header]), then
     decoded through the same [Bitbuf.Reader] the pure codec uses. *)
  let hdr = Buffer.create 4 in
  let rec read_header () =
    if Buffer.length hdr >= max_header then raise (Malformed "header too long");
    match read_byte fd with
    | None -> if Buffer.length hdr = 0 then raise Closed else raise (Malformed "truncated header")
    | Some c ->
        Buffer.add_char hdr c;
        if Char.code c land 0x80 <> 0 then read_header ()
  in
  read_header ();
  (* Clock from after the header arrived: the blocking wait for the first
     byte is idle time between requests, not decode work. *)
  let t0 = Unix.gettimeofday () in
  let n = R.uvarint (R.of_string (Buffer.contents hdr)) in
  (* [n < 0]: a 9-group varint can overflow the 63-bit int — treat as huge. *)
  if n < 0 || n > max_frame then raise (Oversized n);
  let buf = Bytes.create n in
  read_exact fd buf 0 n;
  if Stdx.Trace.enabled () then
    Stdx.Trace.complete
      ~args:[ ("bytes", Stdx.Trace.Int n) ]
      ~t0 ~t1:(Unix.gettimeofday ()) "wire.decode";
  Bytes.unsafe_to_string buf

(* Content-addressed result cache. Soundness rests on the repo's
   determinism contract: a response payload is a pure function of
   (experiment id, canonical params, seed) — the trial engine guarantees
   bit-identical rows at any job count — so serving a stored payload is
   indistinguishable from recomputing it.

   Plain LRU: a hash table over an intrusive doubly-linked recency list,
   bounded both in entries and in total payload bytes. One mutex guards
   everything; the daemon only touches the cache for a lookup or an insert,
   never during a computation. *)

type node = {
  key : string;
  payload : string;
  mutable prev : node option;  (* towards most-recent *)
  mutable next : node option;  (* towards least-recent *)
}

type t = {
  mutex : Mutex.t;
  table : (string, node) Hashtbl.t;
  max_entries : int;
  max_bytes : int;
  mutable head : node option;  (* most recently used *)
  mutable tail : node option;  (* least recently used *)
  mutable bytes : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable invalidations : int;  (* removed via [invalidate_prefix] *)
}

let create ?(max_entries = 512) ?(max_bytes = 64 * 1024 * 1024) () =
  if max_entries < 1 || max_bytes < 1 then invalid_arg "Cache.create";
  {
    mutex = Mutex.create ();
    table = Hashtbl.create 64;
    max_entries;
    max_bytes;
    head = None;
    tail = None;
    bytes = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    invalidations = 0;
  }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* Recency-list surgery; all under the mutex. *)
let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  n.prev <- None;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let entry_bytes n = String.length n.key + String.length n.payload

let evict_tail t =
  match t.tail with
  | None -> ()
  | Some n ->
      unlink t n;
      Hashtbl.remove t.table n.key;
      t.bytes <- t.bytes - entry_bytes n;
      t.evictions <- t.evictions + 1

let find t key =
  let r =
    locked t (fun () ->
        match Hashtbl.find_opt t.table key with
        | Some n ->
            t.hits <- t.hits + 1;
            unlink t n;
            push_front t n;
            Some n.payload
        | None ->
            t.misses <- t.misses + 1;
            None)
  in
  (* Instants outside the cache mutex: the trace shows every probe's
     outcome without stretching the critical section. *)
  (match r with
  | Some _ -> Stdx.Trace.instant "cache.hit"
  | None -> Stdx.Trace.instant "cache.miss");
  r

let add t key payload =
  locked t (fun () ->
      (* Replace an existing entry (a racing duplicate computation of the
         same key necessarily computed the same payload — determinism). *)
      (match Hashtbl.find_opt t.table key with
      | Some old ->
          unlink t old;
          Hashtbl.remove t.table key;
          t.bytes <- t.bytes - entry_bytes old
      | None -> ());
      let n = { key; payload; prev = None; next = None } in
      if entry_bytes n <= t.max_bytes then begin
        Hashtbl.replace t.table key n;
        push_front t n;
        t.bytes <- t.bytes + entry_bytes n;
        while Hashtbl.length t.table > t.max_entries || t.bytes > t.max_bytes do
          evict_tail t
        done
      end)

let has_prefix ~prefix s =
  String.length s >= String.length prefix && String.sub s 0 (String.length prefix) = prefix

(* Key listing for the `cache` RPC: sorted by key (deterministic — the
   recency order depends on request arrival and would break the golden
   pin), truncated to [limit] after the prefix filter. *)
let keys ?(prefix = "") ?(limit = max_int) t =
  let all =
    locked t (fun () ->
        Hashtbl.fold
          (fun key n acc ->
            if has_prefix ~prefix key then (key, String.length n.payload) :: acc else acc)
          t.table [])
  in
  let sorted = List.sort (fun (a, _) (b, _) -> compare a b) all in
  let rec take n = function
    | x :: rest when n > 0 -> x :: take (n - 1) rest
    | _ -> []
  in
  (List.length sorted, take limit sorted)

(* Deliberate removal is not an eviction: it gets its own counter so the
   LRU-pressure signal in `stats` stays meaningful. *)
let invalidate_prefix t ~prefix =
  locked t (fun () ->
      let doomed =
        Hashtbl.fold
          (fun key n acc -> if has_prefix ~prefix key then n :: acc else acc)
          t.table []
      in
      List.iter
        (fun n ->
          unlink t n;
          Hashtbl.remove t.table n.key;
          t.bytes <- t.bytes - entry_bytes n;
          t.invalidations <- t.invalidations + 1)
        doomed;
      List.length doomed)

type stats = {
  entries : int;
  bytes : int;
  hits : int;
  misses : int;
  evictions : int;
  invalidations : int;
}

let stats t =
  locked t (fun () ->
      {
        entries = Hashtbl.length t.table;
        bytes = t.bytes;
        hits = t.hits;
        misses = t.misses;
        evictions = t.evictions;
        invalidations = t.invalidations;
      })

(** Client side of the [sketchd] wire protocol: one TCP connection,
    synchronous request/response frames. *)

module T = Report.Tabular

type t
(** One open connection; not thread-safe (one request at a time). *)

exception Server_error of { code : int; error : string; msg : string }
(** An [{"ok":false}] response, decoded: HTTP-flavoured [code],
    machine-readable [error] tag, human-readable [msg]. *)

val connect : ?host:string -> port:int -> unit -> t
(** Default host ["127.0.0.1"]. *)

val close : t -> unit
(** Close the socket; the [t] must not be used afterwards. *)

val with_connection : ?host:string -> port:int -> (t -> 'a) -> 'a
(** Connect, run, always close. *)

val request : t -> string -> string
(** Send one payload, return the {e byte-exact} response payload — what
    determinism checks diff. *)

val request_json : t -> T.json -> T.json
(** {!request} through the JSON codec. *)

val request_json_exn : t -> T.json -> T.json
(** Like {!request_json}, but an [{"ok":false}] response raises
    {!Server_error}. *)

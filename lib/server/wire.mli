(** The [sketchd] wire format: length-prefixed JSON frames.

    A frame is a LEB128 varint byte count followed by that many payload
    bytes (UTF-8 JSON text). Both halves are built and parsed with
    {!Stdx.Bitbuf}, the same bit-exact buffers protocol sketches use.

    The codec is defensive by design — the daemon must survive garbage:
    a header longer than 9 varint groups raises {!Malformed}, a declared
    length over {!max_frame} raises {!Oversized} {e before} any payload
    allocation, and a peer dying mid-frame raises {!Malformed} (vs
    {!Closed} at a clean frame boundary). *)

exception Closed
(** The peer closed the connection at a frame boundary (normal EOF). *)

exception Malformed of string
(** Garbage framing: over-long header, or EOF mid-header/mid-payload. *)

exception Oversized of int
(** A frame declaring more than {!max_frame} payload bytes. *)

val max_frame : int
(** Maximum accepted payload size (16 MiB). *)

val encode : string -> string
(** [encode payload] is the exact byte sequence of one frame. *)

val decode : string -> off:int -> string * int
(** [decode s ~off] parses one frame at byte offset [off] of [s]; returns
    the payload and the offset one past the frame. Raises like the socket
    path ({!Closed} when [off] is the end of [s]). Inverse of {!encode}:
    [decode (encode p) ~off:0 = (p, String.length (encode p))]. *)

(** Incremental decoding for non-blocking sockets: feed whatever bytes
    arrived, collect zero or more completed frames. This is the event
    engine's frame reassembler — one per connection — running the exact
    defenses of the blocking reader at the same points (header capped at
    9 groups, declared length checked {e before} the payload buffer is
    allocated). *)
module Decoder : sig
  type t
  (** Reassembly state for one byte stream. Not thread-safe — owned by
      the event thread. *)

  val create : unit -> t
  (** At a frame boundary, nothing buffered. *)

  val feed : t -> Bytes.t -> off:int -> len:int -> unit
  (** Consume [len] bytes of [buf] at [off]. Completed frames queue up
      for {!next}. Raises {!Malformed} (over-long header) or
      {!Oversized} (length over {!max_frame}); after either, the stream
      position is unrecoverable and the connection should be dropped. *)

  val next : t -> string option
  (** Pop the oldest completed frame payload, if any. *)

  val buffered : t -> int
  (** Bytes of the {e incomplete} frame currently buffered — [> 0] at
      EOF means the peer died mid-frame (the blocking reader's
      [Malformed]), [0] a clean close at a boundary ({!Closed}). *)
end

val write_frame : Unix.file_descr -> string -> unit
(** Write one complete frame (loops over partial writes). *)

val read_frame : Unix.file_descr -> string
(** Read one complete frame's payload. *)

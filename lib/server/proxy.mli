(** The sketchproxy routing tier: consistent-hash request placement across
    N sketchd backends, speaking the same {!Wire} protocol on both sides.

    Compute requests ([run]/[simulate]) route by their canonical cache key
    ({!Service.request_key} — exactly the derivation the backend cache
    uses), so a request always lands on the backend whose cache holds, or
    is about to hold, its entry. The determinism contract (PROTOCOL.md §5)
    makes failover safe: any replica recomputes the byte-identical
    response its dead peer would have served.

    The proxy answers [ping], [cluster], [stats] (aggregated across
    backends) and [shutdown] itself; everything else forwards verbatim. A
    transport failure marks the backend down and fails over to the next
    ring successor; a shed response (429/503) backs off briefly and tries
    the next replica, relaying the final shed response only when every
    backend sheds. No backend reachable at all is error 502
    [no-backend]. *)

type t
(** One proxy instance (with or without a TCP front). *)

val create :
  ?vnodes:int ->
  ?shed_backoff_ms:int ->
  ?log:(string -> unit) ->
  backends:string list ->
  unit ->
  t
(** A socket-free proxy over [backends] (each ["HOST:PORT"]) — drive it
    with {!handle} for in-process tests. [vnodes] (default 128) is ring
    points per backend; [shed_backoff_ms] (default 5) is the pause before
    retrying past a shed response. Raises [Invalid_argument] on a
    malformed address, an empty or duplicate-bearing backend list.
    Backends need not be reachable yet: health starts optimistic and
    adjusts on first contact. *)

val handle : t -> ?cancelled:(unit -> bool) -> string -> Service.reply
(** Process one request payload, forwarding compute ops with failover.
    Same contract as {!Service.handle}: never raises, every failure is an
    [ok:false] payload. *)

val ring : t -> Ring.t
(** The routing ring — exposed so tests can predict placement. *)

val health : t -> Health.t
(** The live health table. *)

val check_health : t -> unit
(** One synchronous [ping] sweep of every backend (what the background
    pinger runs periodically). *)

val draining : t -> bool
(** Has a [shutdown] request been accepted? *)

val close : t -> unit
(** Stop the pinger (if started) and close pooled backend connections.
    Idempotent; called automatically when a {!start}ed proxy drains. *)

val render_stats :
  version:string ->
  uptime_s:float ->
  m:Metrics.snapshot ->
  forwarded:int ->
  failovers:int ->
  retries:int ->
  shed_relayed:int ->
  backends:(string * bool * Report.Tabular.json option) list ->
  string
(** The aggregated cluster [stats] payload as a pure function of its
    inputs — exposed so the golden snapshot test can pin the schema
    without live backends. [backends] carries each backend's address,
    health verdict, and parsed [stats] response ([None] = unreachable).
    Counter fields sum across backends; latency percentiles stay
    per-backend (they do not aggregate). *)

(** {1 TCP front} *)

val start :
  ?host:string ->
  ?port:int ->
  ?vnodes:int ->
  ?health_interval_s:float ->
  ?shed_backoff_ms:int ->
  ?max_conns:int ->
  ?idle_timeout_s:float ->
  ?rate_limit:float ->
  ?keepalive:bool ->
  ?dispatch_threads:int ->
  ?log:(string -> unit) ->
  backends:string list ->
  unit ->
  t
(** {!create}, then listen via {!Daemon.start_handler} (the same poll
    event engine, frame reassembly and graceful drain as sketchd — the
    proxy inherits every connection knob) and start a background health
    pinger sweeping every [health_interval_s] (default 2.0) seconds.
    [max_conns]/[idle_timeout_s]/[rate_limit]/[keepalive]/[dispatch_threads]
    are {!Daemon.start_handler}'s; the daemon feeds connection gauges into
    this proxy's own metrics. [port 0] (the default) lets the kernel
    choose — read it back with {!port}. *)

val port : t -> int
(** The bound TCP port. Raises [Invalid_argument] unless {!start}ed. *)

val stop : ?abort_connections:bool -> t -> unit
(** Begin shutdown of the TCP front ({!Daemon.stop}). *)

val wait : t -> unit
(** Block until the TCP front has drained ({!Daemon.wait}); also stops
    the pinger and closes backend pools. *)

(** Daemon observability: per-operation request counters and latency
    percentiles over a ring of the most recent requests. Thread- and
    domain-safe (one internal mutex). *)

type t

val create : unit -> t

val record : t -> op:string -> ok:bool -> ms:float -> unit
(** Count one request for [op] with wall latency [ms]; [ok = false] also
    bumps the error counter. *)

type snapshot = {
  uptime_s : float;
  total : int;
  errors : int;
  by_op : (string * int) list;  (** sorted by operation name *)
  latency_count : int;  (** requests the percentiles are over (≤ 1024) *)
  p50_ms : float;
  p90_ms : float;
  p99_ms : float;
  max_ms : float;
}

val snapshot : t -> snapshot
(** A consistent copy of all counters, percentiles computed on the spot. *)

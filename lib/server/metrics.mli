(** Daemon observability: per-operation request counters and latency
    percentiles over a ring of the most recent requests. Thread- and
    domain-safe (one internal mutex). *)

type t
(** A metrics accumulator; one per service. *)

val create : unit -> t
(** Fresh counters; uptime starts now. *)

val record : t -> op:string -> ok:bool -> ms:float -> unit
(** Count one request for [op] with wall latency [ms]; [ok = false] also
    bumps the error counter. *)

type snapshot = {
  uptime_s : float;
  total : int;
  errors : int;
  by_op : (string * int) list;  (** sorted by operation name *)
  latency_count : int;  (** requests the percentiles are over (≤ 1024) *)
  p50_ms : float;  (** Median request latency. *)
  p90_ms : float;  (** 90th-percentile request latency. *)
  p99_ms : float;  (** 99th-percentile request latency. *)
  max_ms : float;  (** Slowest request in the ring. *)
}
(** One consistent reading of every counter — the `stats` RPC's source. *)

val snapshot : t -> snapshot
(** A consistent copy of all counters, percentiles computed on the spot. *)

(** Daemon observability: per-operation request counters and latency
    percentiles over a ring of the most recent requests. Thread- and
    domain-safe (one internal mutex). *)

type t
(** A metrics accumulator; one per service. *)

val create : unit -> t
(** Fresh counters; uptime starts now. *)

val record : t -> op:string -> ok:bool -> ms:float -> unit
(** Count one request for [op] with wall latency [ms]; [ok = false] also
    bumps the error counter. *)

(** {2 Connection book-keeping}

    Fed by the daemon's event loop; surfaced as the [connections] block
    of the `stats` RPC. *)

val conn_opened : t -> unit
(** One connection accepted — bumps the open gauge and lifetime count. *)

val conn_closed : t -> unit
(** One connection closed — drops the open gauge. *)

val conn_rejected : t -> unit
(** One connection turned away over the max-connections cap. *)

val idle_timeout : t -> unit
(** One connection evicted by the idle timeout. *)

val rate_limited : t -> unit
(** One request answered 429 by the per-connection rate limiter. *)

type snapshot = {
  uptime_s : float;
  total : int;
  errors : int;
  by_op : (string * int) list;  (** sorted by operation name *)
  latency_count : int;  (** requests the percentiles are over (≤ 1024) *)
  p50_ms : float;  (** Median request latency. *)
  p90_ms : float;  (** 90th-percentile request latency. *)
  p99_ms : float;  (** 99th-percentile request latency. *)
  max_ms : float;  (** Slowest request in the ring. *)
  conns_open : int;  (** Connections open right now. *)
  conns_accepted : int;  (** Lifetime accepted connections. *)
  conns_rejected : int;  (** Turned away over the connection cap. *)
  idle_timeouts : int;  (** Evicted by the idle timeout. *)
  rate_limited : int;  (** Requests 429'd by the rate limiter. *)
}
(** One consistent reading of every counter — the `stats` RPC's source. *)

val snapshot : t -> snapshot
(** A consistent copy of all counters, percentiles computed on the spot. *)

(* Consistent-hash ring over backend addresses.

   Each backend owns [vnodes] points on a 61-bit hash circle; a key routes
   to the owner of the first point at or clockwise-after the key's hash.
   Virtual nodes smooth the arc-length shares (the balance qcheck property
   pins the bound); hashing each backend's points independently gives the
   classic stability property exactly: removing a backend re-routes only
   the keys it owned, every other key keeps its target.

   Everything is deterministic — the hash is FNV-1a folded through
   [Stdx.Hashing.mix64], no process randomness — so the same (backends,
   key) pair routes identically in the proxy, the tests and any replica
   of the proxy itself. *)

type t = {
  backends : string array;  (* configured order, duplicates rejected *)
  point_hash : int array;  (* ring points, ascending *)
  point_owner : int array;  (* index into [backends] per point *)
  vnodes : int;
}

(* FNV-1a over the bytes, then SplitMix64-style finalisation: FNV alone is
   weak in its low bits, which is exactly where ring comparisons look. *)
let hash_key s =
  let open Int64 in
  let h = ref 0xcbf29ce484222325L in
  String.iter (fun c -> h := mul (logxor !h (of_int (Char.code c))) 0x100000001b3L) s;
  Stdx.Hashing.mix64 (to_int !h)

let backends t = Array.to_list t.backends
let vnodes t = t.vnodes

let create ?(vnodes = 128) backend_list =
  if backend_list = [] then invalid_arg "Ring.create: no backends";
  if vnodes < 1 then invalid_arg "Ring.create: vnodes < 1";
  let sorted = List.sort_uniq compare backend_list in
  if List.length sorted <> List.length backend_list then
    invalid_arg "Ring.create: duplicate backend";
  let backends = Array.of_list backend_list in
  let n = Array.length backends in
  let points = Array.make (n * vnodes) (0, 0) in
  for b = 0 to n - 1 do
    for v = 0 to vnodes - 1 do
      points.((b * vnodes) + v) <- (hash_key (Printf.sprintf "%s#%d" backends.(b) v), b)
    done
  done;
  (* Ties broken by backend index: a full-ring collision between two
     backends' points is astronomically unlikely but must still be
     deterministic. *)
  Array.sort compare points;
  {
    backends;
    point_hash = Array.map fst points;
    point_owner = Array.map snd points;
    vnodes;
  }

(* First point with hash >= h, wrapping to 0 past the last point. *)
let successor_point t h =
  let n = Array.length t.point_hash in
  if h > t.point_hash.(n - 1) then 0
  else begin
    (* Invariant: point_hash.(hi) >= h, lo is the first candidate. *)
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if t.point_hash.(mid) >= h then hi := mid else lo := mid + 1
    done;
    !lo
  end

let route t key = t.backends.(t.point_owner.(successor_point t (hash_key key)))

(* Distinct backends in clockwise point order from the key's position —
   the failover order. Walks at most every point once. *)
let successors t key =
  let n_points = Array.length t.point_hash in
  let n_backends = Array.length t.backends in
  let seen = Array.make n_backends false in
  let start = successor_point t (hash_key key) in
  let acc = ref [] in
  let found = ref 0 in
  let i = ref 0 in
  while !found < n_backends && !i < n_points do
    let owner = t.point_owner.((start + !i) mod n_points) in
    if not seen.(owner) then begin
      seen.(owner) <- true;
      acc := t.backends.(owner) :: !acc;
      incr found
    end;
    incr i
  done;
  List.rev !acc

let remove t addr =
  match Array.to_list t.backends |> List.filter (fun b -> b <> addr) with
  | [] -> invalid_arg "Ring.remove: removing the last backend"
  | rest when List.length rest = Array.length t.backends ->
      invalid_arg "Ring.remove: unknown backend"
  | rest -> create ~vnodes:t.vnodes rest

(* F4: success of budget-limited protocols on D_MM as a function of the
   per-player bit budget (DESIGN.md §4). *)

module T = Report.Tabular
module R = Exp_registry
module Graph = Dgraph.Graph
module Model = Sketchmodel.Model
module Public_coins = Sketchmodel.Public_coins
module Rs = Rsgraph.Rs_graph
module Params = Rsgraph.Params

type sweep_row = {
  budget_bits : int;
  strategy : string;
  special_recovered : float;
  relaxed_success : float;
  maximal_success : float;
}

type sweep = {
  m : int;
  k : int;
  r : int;
  n : int;
  predicted_bits : float;
  oracle_success : float;
  oracle_bits : int;
  rows : sweep_row list;
}

(* The registry view flattens the shared instance context into every
   per-budget row so that CSV/JSON output is self-contained. *)
type row = { ctx : sweep; line : sweep_row }

let edge_table edges =
  let t = Hashtbl.create (List.length edges) in
  List.iter (fun (u, v) -> Hashtbl.replace t (Graph.normalize_edge u v) ()) edges;
  t

let relaxed_ok = Remarks.meets_remark_iv

(* Players handed sigma and j-star by an oracle: each unique vertex reports just
   its surviving hidden-matching edge.  Shows the hardness is exactly the
   secrecy of sigma and j-star, not volume of data. *)
let oracle_protocol dmm =
  let special = Hard_dist.surviving_special dmm in
  let partner = Hashtbl.create 64 in
  List.iter
    (fun (_, (u, v)) ->
      Hashtbl.replace partner u v;
      Hashtbl.replace partner v u)
    special;
  {
    Model.name = "oracle-mm";
    player =
      (fun view _coins ->
        let w = Stdx.Bitbuf.Writer.create () in
        (match Hashtbl.find_opt partner view.Model.vertex with
        | Some p when p > view.Model.vertex -> Stdx.Bitbuf.Writer.uvarint w p
        | Some _ | None -> ());
        w);
    referee =
      (fun ~n ~sketches _coins ->
        ignore n;
        let out = ref [] in
        Array.iteri
          (fun v r ->
            if Stdx.Bitbuf.Reader.remaining_bits r >= 8 then
              out := Graph.normalize_edge v (Stdx.Bitbuf.Reader.uvarint r) :: !out)
          sketches;
        !out);
  }

let compute ?jobs ~m ?k ~budgets ~trials ~seed () =
  let rs = Rs.bipartite m in
  let k = Option.value ~default:rs.Rs.t_count k in
  (* Same per-trial scheme as claim31: instance [i] is a pure function of
     [(seed, m, i)], so both sampling and evaluation shard across domains. *)
  let root = Stdx.Prng.create (Stdx.Hashing.mix64 ((seed * 31) + m)) in
  let instances =
    Stdx.Parallel.init ?jobs trials (fun i ->
        let rng = Stdx.Prng.split root i in
        (Hard_dist.sample rs ~k rng, Public_coins.create (Stdx.Hashing.mix64 (seed + (1000 * i)))))
  in
  let first = fst instances.(0) in
  let eval_protocol make_protocol =
    let per_instance =
      Stdx.Parallel.map ?jobs
        (fun (dmm, coins) ->
          let output, _stats = Model.run (make_protocol dmm) dmm.Hard_dist.graph coins in
          let special = List.map snd (Hard_dist.surviving_special dmm) in
          let out_set = edge_table output in
          let hit = List.length (List.filter (fun e -> Hashtbl.mem out_set e) special) in
          ( float_of_int hit /. float_of_int (max 1 (List.length special)),
            relaxed_ok dmm output,
            Dgraph.Matching.is_maximal dmm.Hard_dist.graph output ))
        instances
    in
    (* Accumulate sequentially in index order: float addition is not
       associative, and the printed tables must not depend on job count. *)
    let recovered = ref 0. and relaxed = ref 0 and maximal = ref 0 in
    Array.iter
      (fun (frac, ok_relaxed, ok_maximal) ->
        recovered := !recovered +. frac;
        if ok_relaxed then incr relaxed;
        if ok_maximal then incr maximal)
      per_instance;
    let tf = float_of_int trials in
    (!recovered /. tf, float_of_int !relaxed /. tf, float_of_int !maximal /. tf)
  in
  let rows =
    List.concat_map
      (fun budget ->
        List.map
          (fun strategy ->
            let rec_frac, relax, maxi =
              eval_protocol (fun _dmm ->
                  Protocols.Sampled_mm.protocol ~budget_bits:budget ~strategy)
            in
            {
              budget_bits = budget;
              strategy = Protocols.Sampled_mm.strategy_name strategy;
              special_recovered = rec_frac;
              relaxed_success = relax;
              maximal_success = maxi;
            })
          Protocols.Sampled_mm.all_strategies)
      budgets
  in
  let oracle_bits = ref 0 in
  let oracle_success =
    let per_instance =
      Stdx.Parallel.map ?jobs
        (fun (dmm, coins) ->
          let output, stats = Model.run (oracle_protocol dmm) dmm.Hard_dist.graph coins in
          (stats.Model.max_bits, relaxed_ok dmm output))
        instances
    in
    let hits = ref 0 in
    Array.iter
      (fun (bits, ok) ->
        oracle_bits := max !oracle_bits bits;
        if ok then incr hits)
      per_instance;
    float_of_int !hits /. float_of_int trials
  in
  let bound = Params.bound_of_rs rs ~k in
  {
    m;
    k;
    r = Hard_dist.r first;
    n = first.Hard_dist.n;
    predicted_bits = bound.Params.bits_lower_bound;
    oracle_success;
    oracle_bits = !oracle_bits;
    rows;
  }

let schema =
  [
    T.int_col ~width:10 ~header:"bits" "budget_bits";
    T.str_col ~width:15 "strategy";
    T.float_col ~width:10 ~digits:3 ~header:"recovered" "special_recovered";
    T.float_col ~width:9 ~digits:2 ~header:"relaxed" "relaxed_success";
    T.float_col ~width:9 ~digits:2 ~header:"maximal" "maximal_success";
    (* Shared instance context, machine formats only. *)
    T.int_col ~width:1 ~text:false "m";
    T.int_col ~width:1 ~text:false "k";
    T.int_col ~width:1 ~text:false "r";
    T.int_col ~width:1 ~text:false "n";
    T.float_col ~width:1 ~digits:2 ~text:false "predicted_bits";
    T.float_col ~width:1 ~digits:2 ~text:false "oracle_success";
    T.int_col ~width:1 ~text:false "oracle_bits";
  ]

let to_row { ctx; line } =
  T.
    [
      Int line.budget_bits;
      Str line.strategy;
      Float line.special_recovered;
      Float line.relaxed_success;
      Float line.maximal_success;
      Int ctx.m;
      Int ctx.k;
      Int ctx.r;
      Int ctx.n;
      Float ctx.predicted_bits;
      Float ctx.oracle_success;
      Int ctx.oracle_bits;
    ]

let preamble_of ctx =
  [
    "";
    Printf.sprintf "F4. Theorem 1 shape — budget-limited protocols on D_MM (m=%d, k=%d, r=%d, n=%d)"
      ctx.m ctx.k ctx.r ctx.n;
    Printf.sprintf "    information-theoretic per-player bound at these parameters: %.2f bits"
      ctx.predicted_bits;
    Printf.sprintf
      "    oracle players (handed sigma, j*): relaxed success %.2f with only %d bits/player"
      ctx.oracle_success ctx.oracle_bits;
  ]

let rows_of_sweep ctx = List.map (fun line -> { ctx; line }) ctx.rows

let experiment : R.experiment =
  (module struct
    type nonrec row = row

    let id = "budget-sweep"
    let title = "F4"
    let doc = "F4: success of budget-b protocols on D_MM vs b."

    let params =
      R.std_params
        [
          R.int_param "m" ~doc:"RS parameter m." 25;
          R.int_param "k" ~doc:"Copies k (0 = t, the paper's choice)." 0;
          R.ints_param "budgets" ~doc:"Per-player budgets in bits."
            [ 8; 16; 32; 64; 128; 256; 512; 1024 ];
          R.int_param "trials" ~doc:"Trials per configuration." 10;
        ]

    let schema = schema
    let to_row = to_row

    let run ps =
      let k = match R.int_value ps "k" with k when k <= 0 -> None | k -> Some k in
      rows_of_sweep
        (compute ?jobs:(R.jobs ps) ~m:(R.int_value ps "m") ?k
           ~budgets:(R.ints_value ps "budgets") ~trials:(R.int_value ps "trials")
           ~seed:(R.seed ps) ())

    let preamble _ rows = match rows with [] -> [] | { ctx; _ } :: _ -> preamble_of ctx
    let footer _ = []

    let fast_overrides =
      [ ("budgets", R.Vints [ 8; 64; 512 ]); ("trials", R.Vint 3); ("seed", R.Vint 11) ]

    let full_overrides =
      [
        ("budgets", R.Vints [ 8; 16; 32; 64; 128; 256; 512; 1024 ]);
        ("trials", R.Vint 10);
        ("seed", R.Vint 11);
      ]

    let smoke = [ ("m", R.Vint 4); ("budgets", R.Vints [ 8 ]); ("trials", R.Vint 2) ]
  end)

let table_of sweep =
  T.table ~preamble:(preamble_of sweep) schema (List.map to_row (rows_of_sweep sweep))

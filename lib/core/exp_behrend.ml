(* T2: Behrend 3-AP-free set sizes (DESIGN.md §4). *)

module T = Report.Tabular
module R = Exp_registry
module Params = Rsgraph.Params

type row = {
  m : int;
  greedy_size : int;
  behrend_size : int;
  best_size : int;
  exact_size : int option;
  rate : float;
}

(* Pure per-m computations: the per-m axis shards across domains. *)
let compute ?jobs ~ms () =
  Stdx.Parallel.map_list ?jobs
    (fun m ->
      {
        m;
        greedy_size = List.length (Rsgraph.Behrend.greedy m);
        behrend_size = List.length (Rsgraph.Behrend.behrend m);
        best_size = List.length (Rsgraph.Behrend.best m);
        exact_size = (if m <= 30 then Some (List.length (Rsgraph.Behrend.maximum m)) else None);
        rate = Params.behrend_rate m;
      })
    ms

let schema =
  [
    T.int_col ~width:8 "m";
    T.int_col ~width:8 "greedy";
    T.int_col ~width:9 "behrend";
    T.int_col ~width:8 "best";
    T.opt_col (T.int_col ~width:8 "exact");
    T.float_col ~width:8 ~digits:3 "rate";
  ]

let to_row r =
  T.
    [
      Int r.m;
      Int r.greedy_size;
      Int r.behrend_size;
      Int r.best_size;
      Opt (Option.map (fun e -> Int e) r.exact_size);
      Float r.rate;
    ]

let preamble = [ ""; "T2. Behrend's theorem — 3-AP-free subsets of [1, m]" ]

let experiment : R.experiment =
  (module struct
    type nonrec row = row

    let id = "behrend"
    let title = "T2"
    let doc = "T2: 3-AP-free set sizes (greedy vs Behrend vs exact)."

    let params =
      R.std_params
        ~seed_doc:"Random seed (unused: the constructions are deterministic)."
        [ R.ints_param "m" ~doc:"Set range bounds m." [ 10; 30; 100; 300; 1000; 3000; 10000 ] ]

    let schema = schema
    let to_row = to_row
    let run ps = compute ?jobs:(R.jobs ps) ~ms:(R.ints_value ps "m") ()
    let preamble _ _ = preamble
    let footer _ = []
    let fast_overrides = [ ("m", R.Vints [ 10; 30; 100 ]) ]
    let full_overrides = [ ("m", R.Vints [ 10; 30; 100; 300; 1000; 3000; 10000 ]) ]
    let smoke = [ ("m", R.Vints [ 10; 25 ]) ]
  end)

let table_of rows = T.table ~preamble schema (List.map to_row rows)

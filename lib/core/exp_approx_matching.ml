(* F10: approximation ratio of budget-limited matching protocols against
   a Blossom maximum-matching oracle (DESIGN.md §4). *)

module T = Report.Tabular
module R = Exp_registry
module Graph = Dgraph.Graph
module Model = Sketchmodel.Model
module Public_coins = Sketchmodel.Public_coins

type row = { an : int; abudget : int; ratio_mean : float; ratio_min : float }

let compute ~ns ~budgets ~trials ~seed =
  List.concat_map
    (fun n ->
      List.map
        (fun budget ->
          let ratios =
            List.init trials (fun i ->
                let rng = Stdx.Prng.create (Stdx.Hashing.mix64 (seed + (i * 131) + n)) in
                let g = Dgraph.Gen.gnp rng n (4.0 /. float_of_int n) in
                let coins = Public_coins.create (Stdx.Hashing.mix64 (seed + i + (n * budget))) in
                let protocol =
                  Protocols.Sampled_mm.protocol ~budget_bits:budget
                    ~strategy:Protocols.Sampled_mm.Uniform
                in
                let output, _ = Model.run protocol g coins in
                let valid = List.filter (fun (u, v) -> Graph.mem_edge g u v) output in
                let opt = Dgraph.Blossom.maximum_matching_size g in
                if opt = 0 then 1.
                else float_of_int (List.length valid) /. float_of_int opt)
          in
          {
            an = n;
            abudget = budget;
            ratio_mean = List.fold_left ( +. ) 0. ratios /. float_of_int trials;
            ratio_min = List.fold_left min 1. ratios;
          })
        budgets)
    ns

let schema =
  [
    T.int_col ~width:7 ~header:"n" "n";
    T.int_col ~width:9 ~header:"bits" "budget_bits";
    T.float_col ~width:11 ~digits:3 ~header:"mean ratio" "ratio_mean";
    T.float_col ~width:10 ~digits:3 ~header:"min ratio" "ratio_min";
  ]

let to_row r = T.[ Int r.an; Int r.abudget; Float r.ratio_mean; Float r.ratio_min ]

let preamble =
  [ ""; "F10. Approximate matching vs per-player budget (Blossom oracle; avg degree 4)" ]

let experiment : R.experiment =
  (module struct
    type nonrec row = row

    let id = "approx-matching"
    let title = "F10"
    let doc = "F10: approximation ratio of budget protocols (Blossom oracle)."

    let params =
      R.std_params
        [
          R.ints_param "n" ~doc:"Graph sizes n." [ 40; 80; 160 ];
          R.ints_param "budgets" ~doc:"Budgets in bits." [ 8; 24; 64; 256 ];
          R.int_param "trials" ~doc:"Trials per configuration." 8;
        ]

    let schema = schema
    let to_row = to_row

    let run ps =
      compute ~ns:(R.ints_value ps "n") ~budgets:(R.ints_value ps "budgets")
        ~trials:(R.int_value ps "trials") ~seed:(R.seed ps)

    let preamble _ _ = preamble
    let footer _ = []

    let fast_overrides = [ ("n", R.Vints [ 40 ]); ("trials", R.Vint 3); ("seed", R.Vint 31) ]

    let full_overrides =
      [ ("n", R.Vints [ 40; 80; 160 ]); ("trials", R.Vint 8); ("seed", R.Vint 31) ]

    let smoke = [ ("n", R.Vints [ 16 ]); ("budgets", R.Vints [ 16 ]); ("trials", R.Vint 2) ]
  end)

let table_of rows = T.table ~preamble schema (List.map to_row rows)

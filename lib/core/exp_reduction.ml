(* T8: the Section-4 MM-to-MIS reduction on H, end to end (DESIGN.md §4). *)

module T = Report.Tabular
module R = Exp_registry
module Graph = Dgraph.Graph
module Model = Sketchmodel.Model
module Public_coins = Sketchmodel.Public_coins
module Rs = Rsgraph.Rs_graph

type row = {
  m : int;
  samples : int;
  lemma41_all : bool;
  complete_all : bool;
  min_rule_exact_all : bool;
  mean_valid_fraction : float;
  cost_ratio : float;
}

let compute ~ms ~samples ~seed =
  List.map
    (fun m ->
      let rs = Rs.bipartite m in
      let rng = Stdx.Prng.create (Stdx.Hashing.mix64 (seed + (13 * m))) in
      let lemma_ok = ref true and complete_ok = ref true and min_ok = ref true in
      let valid_frac = ref 0. and ratio = ref 0. in
      for i = 0 to samples - 1 do
        let dmm = Hard_dist.sample rs rng in
        let coins = Public_coins.create (Stdx.Hashing.mix64 (seed + (97 * i) + m)) in
        let solver g =
          Dgraph.Mis.greedy g
            ~order:(Stdx.Prng.permutation (Stdx.Prng.create (seed + i)) (Graph.n g))
            ()
        in
        let verdict, g_stats, h_stats =
          Reduction.end_to_end_cost dmm Protocols.Trivial.mis coins
        in
        ignore solver;
        lemma_ok := !lemma_ok && verdict.Reduction.lemma41_ok;
        complete_ok := !complete_ok && verdict.Reduction.complete;
        valid_frac :=
          !valid_frac
          +. (float_of_int verdict.Reduction.valid_edges
             /. float_of_int (max 1 verdict.Reduction.output_size));
        ratio :=
          !ratio
          +. (float_of_int g_stats.Model.max_bits /. float_of_int h_stats.Model.max_bits);
        (* min-rule ablation on a referee-side exact MIS *)
        let mis = solver (Reduction.build_h dmm) in
        let mn =
          List.sort compare
            (List.map (fun (u, v) -> Graph.normalize_edge u v) (Reduction.referee_output_min dmm mis))
        in
        let survivors =
          List.sort compare
            (List.map
               (fun (_, (u, v)) -> Graph.normalize_edge u v)
               (Hard_dist.surviving_special dmm))
        in
        min_ok := !min_ok && mn = survivors
      done;
      {
        m;
        samples;
        lemma41_all = !lemma_ok;
        complete_all = !complete_ok;
        min_rule_exact_all = !min_ok;
        mean_valid_fraction = !valid_frac /. float_of_int samples;
        cost_ratio = !ratio /. float_of_int samples;
      })
    ms

let schema =
  [
    T.int_col ~width:6 "m";
    T.int_col ~width:8 "samples";
    T.bool_col ~width:9 ~header:"lemma4.1" "lemma41_all";
    T.bool_col ~width:9 ~header:"complete" "complete_all";
    T.bool_col ~width:10 ~header:"min-exact" "min_rule_exact_all";
    T.float_col ~width:11 ~digits:3 ~header:"valid-frac" "mean_valid_fraction";
    T.float_col ~width:11 ~digits:3 ~header:"cost-ratio" "cost_ratio";
  ]

let to_row r =
  T.
    [
      Int r.m;
      Int r.samples;
      Bool r.lemma41_all;
      Bool r.complete_all;
      Bool r.min_rule_exact_all;
      Float r.mean_valid_fraction;
      Float r.cost_ratio;
    ]

let preamble = [ ""; "T8. Theorem 2 — the MM-to-MIS reduction on H (two copies + public biclique)" ]

let experiment : R.experiment =
  (module struct
    type nonrec row = row

    let id = "reduction"
    let title = "T8"
    let doc = "T8: the Section-4 MM-to-MIS reduction, end to end."

    let params =
      R.std_params
        [
          R.ints_param "m" ~doc:"RS parameters m." [ 5; 10; 25 ];
          R.int_param "samples" ~doc:"Samples per m." 10;
        ]

    let schema = schema
    let to_row = to_row

    let run ps =
      compute ~ms:(R.ints_value ps "m") ~samples:(R.int_value ps "samples") ~seed:(R.seed ps)

    let preamble _ _ = preamble
    let footer _ = []
    let fast_overrides = [ ("m", R.Vints [ 5; 10 ]); ("samples", R.Vint 3); ("seed", R.Vint 23) ]
    let full_overrides = [ ("m", R.Vints [ 5; 10; 25 ]); ("samples", R.Vint 10); ("seed", R.Vint 23) ]
    let smoke = [ ("m", R.Vints [ 4 ]); ("samples", R.Vint 2) ]
  end)

let table_of rows = T.table ~preamble schema (List.map to_row rows)

(* T14: BCC rounds vs bandwidth trade-off on D_MM (DESIGN.md §4). *)

module T = Report.Tabular
module R = Exp_registry
module Model = Sketchmodel.Model
module Public_coins = Sketchmodel.Public_coins
module Rs = Rsgraph.Rs_graph

type row = {
  bn : int;
  bcc_rounds : int;
  bcc_bits_per_round : int;
  bcc_total_bits : int;
  bcc_maximal : bool;
  one_round_same_budget_maximal : float;
}

let compute ~ms ~trials ~seed =
  List.map
    (fun m ->
      let rs = Rs.bipartite m in
      let rng = Stdx.Prng.create (Stdx.Hashing.mix64 (seed + m)) in
      let dmm = Hard_dist.sample rs rng in
      let g = dmm.Hard_dist.graph in
      let coins = Public_coins.create (Stdx.Hashing.mix64 (seed * 19 + m)) in
      let mm, stats = Protocols.Bcc_mm.run g coins in
      (* Apples to apples: the BCC bandwidth measure is bits per round, so
         the one-round comparison gets exactly that per-player budget. *)
      let budget = stats.Sketchmodel.Bcc.max_bits_per_round in
      let successes = ref 0 in
      for i = 1 to trials do
        let one_round =
          Protocols.Sampled_mm.protocol ~budget_bits:budget
            ~strategy:Protocols.Sampled_mm.Uniform
        in
        let out, _ =
          Model.run one_round g (Public_coins.create (Stdx.Hashing.mix64 (seed + (i * 71))))
        in
        if Dgraph.Matching.is_maximal g out then incr successes
      done;
      {
        bn = dmm.Hard_dist.n;
        bcc_rounds = stats.Sketchmodel.Bcc.rounds_used;
        bcc_bits_per_round = stats.Sketchmodel.Bcc.max_bits_per_round;
        bcc_total_bits = stats.Sketchmodel.Bcc.max_bits_total;
        bcc_maximal = Dgraph.Matching.is_maximal g mm;
        one_round_same_budget_maximal = float_of_int !successes /. float_of_int trials;
      })
    ms

let schema =
  [
    T.int_col ~width:8 ~header:"n" "n";
    T.int_col ~width:8 ~header:"rounds" "bcc_rounds";
    T.int_col ~width:11 ~header:"bits/round" "bcc_bits_per_round";
    T.int_col ~width:11 ~header:"total bits" "bcc_total_bits";
    T.bool_col ~width:9 ~header:"maximal" "bcc_maximal";
    T.float_col ~width:21 ~digits:2 ~header:"1-round same b/round" "one_round_same_budget_maximal";
  ]

let to_row r =
  T.
    [
      Int r.bn;
      Int r.bcc_rounds;
      Int r.bcc_bits_per_round;
      Int r.bcc_total_bits;
      Bool r.bcc_maximal;
      Float r.one_round_same_budget_maximal;
    ]

let preamble =
  [
    "";
    "T14. BCC rounds vs bandwidth on D_MM: O(log n) rounds of O(log n)-bit broadcasts";
    "     solve MM; one round at the same per-round bandwidth does not.";
  ]

let experiment : R.experiment =
  (module struct
    type nonrec row = row

    let id = "bcc"
    let title = "T14"
    let doc = "T14: BCC rounds/bandwidth trade-off on D_MM."

    let params =
      R.std_params
        [
          R.ints_param "m" ~doc:"RS parameters m." [ 10; 25 ];
          R.int_param "trials" ~doc:"One-round trials." 10;
        ]

    let schema = schema
    let to_row = to_row

    let run ps =
      compute ~ms:(R.ints_value ps "m") ~trials:(R.int_value ps "trials") ~seed:(R.seed ps)

    let preamble _ _ = preamble
    let footer _ = []
    let fast_overrides = [ ("m", R.Vints [ 10 ]); ("trials", R.Vint 3); ("seed", R.Vint 67) ]
    let full_overrides = [ ("m", R.Vints [ 10; 25 ]); ("trials", R.Vint 10); ("seed", R.Vint 67) ]
    let smoke = [ ("m", R.Vints [ 4 ]); ("trials", R.Vint 2) ]
  end)

let table_of rows = T.table ~preamble schema (List.map to_row rows)

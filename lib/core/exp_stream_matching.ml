(* T17: semi-streaming (1+eps) matching — eps vs passes vs memory,
   scored against the exact blossom optimum (DESIGN.md §4). *)

module T = Report.Tabular
module R = Exp_registry
module Graph = Dgraph.Graph

type row = {
  sn : int;
  eps_pct : int;
  passes : int;
  peak_memory_bits : int;
  matching : int;
  optimum : int;
  ratio : float;
  within_eps : bool;
  converged : bool;
}

let compute ~ns ~eps_pcts ~seed =
  List.concat_map
    (fun n ->
      let rng = Stdx.Prng.create (Stdx.Hashing.mix64 (seed + (5 * n))) in
      let g = Dgraph.Gen.gnp rng n (8.0 /. float_of_int n) in
      let stream = Streams.Stream.shuffled rng g in
      let optimum = Dgraph.Blossom.maximum_matching_size g in
      List.map
        (fun eps_pct ->
          let eps = float_of_int eps_pct /. 100.0 in
          let res = Multipass.Stream_matching.run ~eps stream in
          let size = Dgraph.Matching.size res.Multipass.Stream_matching.matching in
          let ratio =
            if size = 0 then if optimum = 0 then 1.0 else infinity
            else float_of_int optimum /. float_of_int size
          in
          {
            sn = n;
            eps_pct;
            passes = List.length res.Multipass.Stream_matching.passes;
            peak_memory_bits = res.Multipass.Stream_matching.peak_memory_bits;
            matching = size;
            optimum;
            ratio;
            within_eps = ratio <= 1.0 +. eps +. 1e-9;
            converged = res.Multipass.Stream_matching.converged;
          })
        eps_pcts)
    ns

let schema =
  [
    T.int_col ~width:6 "n";
    T.int_col ~width:6 ~header:"eps%" "eps_pct";
    T.int_col ~width:7 "passes";
    T.int_col ~width:10 ~header:"peak bits" "peak_memory_bits";
    T.int_col ~width:9 ~header:"matching" "matching";
    T.int_col ~width:8 ~header:"optimum" "optimum";
    T.float_col ~width:7 ~digits:3 "ratio";
    T.bool_col ~width:10 ~header:"within eps" "within_eps";
    T.bool_col ~width:10 "converged";
  ]

let to_row r =
  T.
    [
      Int r.sn;
      Int r.eps_pct;
      Int r.passes;
      Int r.peak_memory_bits;
      Int r.matching;
      Int r.optimum;
      Float r.ratio;
      Bool r.within_eps;
      Bool r.converged;
    ]

let preamble =
  [
    "";
    "T17. Semi-streaming (1+eps) matching: eps vs passes vs memory, scored";
    "     against the exact blossom optimum";
  ]

let experiment : R.experiment =
  (module struct
    type nonrec row = row

    let id = "stream-matching"
    let title = "T17"
    let doc = "T17: multi-pass (1+eps) streaming matching vs the blossom optimum."

    let params =
      R.std_params
        [
          R.ints_param "n" ~doc:"Graph sizes n." [ 48; 96 ];
          R.ints_param "eps" ~doc:"Epsilon values, in percent." [ 50; 25; 10 ];
        ]

    let schema = schema
    let to_row = to_row

    let run ps =
      compute ~ns:(R.ints_value ps "n") ~eps_pcts:(R.ints_value ps "eps")
        ~seed:(R.seed ps)

    let preamble _ _ = preamble
    let footer _ = []

    let fast_overrides =
      [ ("n", R.Vints [ 48 ]); ("eps", R.Vints [ 50; 25 ]); ("seed", R.Vint 59) ]

    let full_overrides =
      [ ("n", R.Vints [ 48; 96 ]); ("eps", R.Vints [ 50; 25; 10 ]); ("seed", R.Vint 59) ]

    let smoke = [ ("n", R.Vints [ 16 ]); ("eps", R.Vints [ 50 ]); ("seed", R.Vint 59) ]
  end)

let table_of rows = T.table ~preamble schema (List.map to_row rows)

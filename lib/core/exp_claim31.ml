(* T3: Claim 3.1 — unique-unique edges in maximal matchings of G ~ D_MM
   (DESIGN.md §4). *)

module T = Report.Tabular
module R = Exp_registry
module Rs = Rsgraph.Rs_graph
module Params = Rsgraph.Params

type row = {
  m : int;
  k : int;
  r : int;
  n : int;
  samples : int;
  min_union : int;
  mean_union : float;
  chernoff_threshold : float;
  min_unique_unique : int;
  claim_threshold : float;
  violations : int;
  failure_bound : float;
  consistent : bool;
}

let compute ?jobs ~ms ~samples ~seed () =
  List.map
    (fun m ->
      let rs = Rs.bipartite m in
      (* Per-trial seeding scheme: trial [i] draws from [split root i], so
         the sample set is a pure function of [(seed, m, i)] and the trials
         shard across domains without changing a single bit. *)
      let root = Stdx.Prng.create (Stdx.Hashing.mix64 (seed + m)) in
      let stats_list =
        Stdx.Parallel.init ?jobs samples (fun i ->
            let rng = Stdx.Prng.split root i in
            let dmm = Hard_dist.sample rs rng in
            Claims.check dmm ())
        |> Array.to_list
      in
      let unions = List.map (fun s -> s.Claims.union_special) stats_list in
      let uu_min =
        List.concat_map (fun s -> List.map (fun (_, uu, _) -> uu) s.Claims.per_order) stats_list
        |> List.fold_left min max_int
      in
      let first = List.hd stats_list in
      let dmm_n =
        let b = Params.bound_of_rs rs ~k:first.Claims.k in
        b.Params.n_vertices
      in
      {
        m;
        k = first.Claims.k;
        r = first.Claims.r;
        n = dmm_n;
        samples;
        min_union = List.fold_left min max_int unions;
        mean_union =
          float_of_int (List.fold_left ( + ) 0 unions) /. float_of_int (List.length unions);
        chernoff_threshold = first.Claims.chernoff_threshold;
        min_unique_unique = uu_min;
        claim_threshold = first.Claims.claim_threshold;
        violations = List.length (List.filter (fun s -> not (Claims.holds s)) stats_list);
        failure_bound = first.Claims.failure_bound;
        consistent =
          (let bound = first.Claims.failure_bound in
           let sigma = sqrt (bound *. (1. -. bound) /. float_of_int samples) in
           let rate =
             float_of_int
               (List.length (List.filter (fun s -> not (Claims.holds s)) stats_list))
             /. float_of_int samples
           in
           rate <= bound +. (3. *. sigma) +. (1. /. float_of_int samples));
      })
    ms

let schema =
  [
    T.int_col ~width:6 "m";
    T.int_col ~width:5 "k";
    T.int_col ~width:5 "r";
    T.int_col ~width:7 "n";
    T.int_col ~width:8 ~text:false "samples";
    T.int_col ~width:8 ~header:"minU" "min_union";
    T.float_col ~width:9 ~digits:1 ~header:"meanU" "mean_union";
    T.float_col ~width:9 ~digits:1 ~header:"kr/3" "chernoff_threshold";
    T.int_col ~width:8 ~header:"min-uu" "min_unique_unique";
    T.float_col ~width:8 ~digits:1 ~header:"kr/4" "claim_threshold";
    T.int_col ~width:6 ~header:"viol" "violations";
    T.float_col ~width:9 ~digits:2 ~sci:true ~header:"2^-kr/10" "failure_bound";
    T.bool_col ~width:7 ~header:"consis" "consistent";
  ]

let to_row r =
  T.
    [
      Int r.m;
      Int r.k;
      Int r.r;
      Int r.n;
      Int r.samples;
      Int r.min_union;
      Float r.mean_union;
      Float r.chernoff_threshold;
      Int r.min_unique_unique;
      Float r.claim_threshold;
      Int r.violations;
      Float r.failure_bound;
      Bool r.consistent;
    ]

let preamble = [ ""; "T3. Claim 3.1 — unique-unique edges in maximal matchings of G ~ D_MM" ]

let experiment : R.experiment =
  (module struct
    type nonrec row = row

    let id = "claim31"
    let title = "T3"
    let doc = "T3: Claim 3.1 — unique-unique edges in maximal matchings of D_MM."

    let params =
      R.std_params
        [
          R.ints_param "m" ~doc:"RS parameters m." [ 10; 25; 50 ];
          R.int_param "samples" ~doc:"Samples per m." 20;
        ]

    let schema = schema
    let to_row = to_row

    let run ps =
      compute ?jobs:(R.jobs ps) ~ms:(R.ints_value ps "m") ~samples:(R.int_value ps "samples")
        ~seed:(R.seed ps) ()

    let preamble _ _ = preamble
    let footer _ = []
    let fast_overrides = [ ("m", R.Vints [ 10; 25 ]); ("samples", R.Vint 5); ("seed", R.Vint 7) ]

    let full_overrides =
      [ ("m", R.Vints [ 10; 25; 50 ]); ("samples", R.Vint 20); ("seed", R.Vint 7) ]

    let smoke = [ ("m", R.Vints [ 5 ]); ("samples", R.Vint 3); ("seed", R.Vint 1) ]
  end)

let table_of rows = T.table ~preamble schema (List.map to_row rows)

(* T12: one round fails, two rounds suffice, on D_MM itself
   (DESIGN.md §4). *)

module T = Report.Tabular
module R = Exp_registry
module Public_coins = Sketchmodel.Public_coins
module Rs = Rsgraph.Rs_graph

type row = {
  rm : int;
  one_round_undominated : float;
  one_round_bits : int;
  two_round_mm_maximal : bool;
  two_round_mm_bits : int;
  two_round_mis_maximal : bool;
  two_round_mis_bits : int;
  sqrt_n_dmm : float;
}

let compute ~ms ~seed =
  List.map
    (fun m ->
      let rs = Rs.bipartite m in
      let rng = Stdx.Prng.create (Stdx.Hashing.mix64 (seed + m)) in
      let dmm = Hard_dist.sample rs rng in
      let g = dmm.Hard_dist.graph in
      let coins = Public_coins.create (Stdx.Hashing.mix64 (seed * 17 + m)) in
      let undominated, one_stats = Protocols.One_round_mis.undominated_fraction g coins in
      let mm, mm_stats = Protocols.Two_round_mm.run g coins in
      let mis, mis_stats = Protocols.Two_round_mis.run g coins in
      {
        rm = m;
        one_round_undominated = undominated;
        one_round_bits = one_stats.Sketchmodel.Model.max_bits;
        two_round_mm_maximal = Dgraph.Matching.is_maximal g mm;
        two_round_mm_bits = mm_stats.Sketchmodel.Rounds.max_bits;
        two_round_mis_maximal = Dgraph.Mis.is_maximal g mis;
        two_round_mis_bits = mis_stats.Sketchmodel.Rounds.max_bits;
        sqrt_n_dmm = sqrt (float_of_int dmm.Hard_dist.n);
      })
    ms

let schema =
  [
    T.int_col ~width:6 "m";
    T.float_col ~width:13 ~digits:3 ~header:"undominated" "one_round_undominated";
    T.int_col ~width:9 ~header:"1r bits" "one_round_bits";
    T.bool_col ~width:8 ~header:"2r-mm" "two_round_mm_maximal";
    T.int_col ~width:9 ~header:"mm bits" "two_round_mm_bits";
    T.bool_col ~width:9 ~header:"2r-mis" "two_round_mis_maximal";
    T.int_col ~width:9 ~header:"mis bits" "two_round_mis_bits";
    T.float_col ~width:9 ~digits:1 ~header:"sqrt(n)" "sqrt_n_dmm";
  ]

let to_row r =
  T.
    [
      Int r.rm;
      Float r.one_round_undominated;
      Int r.one_round_bits;
      Bool r.two_round_mm_maximal;
      Int r.two_round_mm_bits;
      Bool r.two_round_mis_maximal;
      Int r.two_round_mis_bits;
      Float r.sqrt_n_dmm;
    ]

let preamble =
  [ ""; "T12. On D_MM: one-round local-minima MIS fails; two rounds solve MM and MIS" ]

let experiment : R.experiment =
  (module struct
    type nonrec row = row

    let id = "rounds"
    let title = "T12"
    let doc = "T12: one-round MIS failure vs two-round success on D_MM."

    let params = R.std_params [ R.ints_param "m" ~doc:"RS parameters m." [ 10; 25; 50 ] ]
    let schema = schema
    let to_row = to_row
    let run ps = compute ~ms:(R.ints_value ps "m") ~seed:(R.seed ps)
    let preamble _ _ = preamble
    let footer _ = []
    let fast_overrides = [ ("m", R.Vints [ 10 ]); ("seed", R.Vint 47) ]
    let full_overrides = [ ("m", R.Vints [ 10; 25; 50 ]); ("seed", R.Vint 47) ]
    let smoke = [ ("m", R.Vints [ 4 ]); ("seed", R.Vint 47) ]
  end)

let table_of rows = T.table ~preamble schema (List.map to_row rows)

(** The experiment registry: a first-class-module interface every
    DESIGN.md §4 table implements, plus a global catalogue with
    unique-id enforcement.

    An experiment declares its parameter spec once ({!EXPERIMENT.params},
    including the uniform [seed]/[jobs] knobs) and the CLI, the [all]
    runner, the bench JSON writer and the tests all derive their
    behaviour from it — adding a workload is one new [Exp_*] module plus
    one line in {!Exp_all}. Rendering goes through {!table}, which runs
    the experiment inside an [exp.<id>] trace span annotated with the
    merged parameters. *)

exception Duplicate_id of string
(** Raised by {!register} when an experiment id is already taken. *)

exception Unknown_param of string
(** Raised when an override or lookup names a parameter the spec does
    not declare (a silent typo would otherwise be ignored). *)

exception Wrong_param_type of string
(** Raised when a parameter is read at the wrong shape (int vs list). *)

(** {1 Parameter specs} *)

(** A parameter value: a single int or an int list (sweep axes). *)
type pvalue = Vint of int | Vints of int list

type param = {
  name : string;  (** Merge key and JSON name. *)
  keys : string list;  (** CLI flag spellings, e.g. [\["j"; "jobs"\]]. *)
  doc : string;  (** One-line help text. *)
  default : pvalue;
}
(** One declared parameter of an experiment. *)

type params = (string * pvalue) list
(** A merged assignment: every declared parameter bound to a value. *)

val int_param : ?keys:string list -> ?doc:string -> string -> int -> param
(** [int_param name default] declares a scalar int parameter; [keys]
    defaults to [\[name\]]. *)

val ints_param : ?keys:string list -> ?doc:string -> string -> int list -> param
(** [ints_param name default] declares an int-list parameter (a sweep
    axis, comma-separated on the CLI). *)

val seed_param : ?doc:string -> unit -> param
(** The uniform ["seed"] parameter (default 7). *)

val jobs_param : param
(** The uniform ["jobs"] parameter ([-j]; 0 means
    [Domain.recommended_domain_count]). Excluded from cache keys — every
    table is bit-identical at any job count. *)

val std_params : ?seed_doc:string -> param list -> param list
(** [std_params specific] appends the uniform [seed] and [jobs]
    parameters — every experiment takes both, with no CLI special cases
    (deterministic or sequential tables simply ignore them). *)

val int_value : params -> string -> int
(** Read a scalar parameter; raises {!Unknown_param} or
    {!Wrong_param_type}. *)

val ints_value : params -> string -> int list
(** Read a list parameter; raises {!Unknown_param} or
    {!Wrong_param_type}. *)

val seed : params -> int
(** [int_value ps "seed"]. *)

val jobs : params -> int option
(** The jobs override, with [<= 0] mapped to [None] (engine default). *)

val merge : param list -> params -> params
(** [merge spec overrides] overlays caller overrides on the spec
    defaults, in spec order. Overriding an undeclared name raises
    {!Unknown_param}. *)

(** {1 The experiment interface} *)

(** What a DESIGN.md §4 table implements. [run] produces typed rows;
    [schema]/[to_row] render them through {!Report.Tabular}; the
    override sets pin the [all] (full/fast) and test sizes. *)
module type EXPERIMENT = sig
  type row

  val id : string
  (** CLI subcommand and registry key, e.g. ["claim31"]. *)

  val title : string
  (** Short table tag, e.g. ["T3"]. *)

  val doc : string
  (** One-line description (CLI help, the daemon's [list]). *)

  val params : param list
  val schema : Report.Tabular.col list
  val to_row : row -> Report.Tabular.row
  val run : params -> row list

  val preamble : params -> row list -> string list
  (** Text-format title block. *)

  val footer : row list -> string list
  (** Text-format trailer. *)

  val fast_overrides : params
  (** [all --fast] sizes. *)

  val full_overrides : params
  (** [all] sizes. *)

  val smoke : params
  (** Tiny sizes for the registry smoke test. *)
end

type experiment = (module EXPERIMENT)

(** {2 Accessors} *)

val id : experiment -> string
val title : experiment -> string
val doc : experiment -> string
val params : experiment -> param list
val schema : experiment -> Report.Tabular.col list
val smoke : experiment -> params

val overrides_for : fast:bool -> experiment -> params
(** The [all] override set for the chosen speed. *)

type gc_cost = {
  alloc_bytes : float;  (** [Gc.allocated_bytes] delta across the body. *)
  minor_collections : int;  (** Minor-collection count delta. *)
  major_collections : int;  (** Major-collection cycle delta. *)
}
(** GC cost of one experiment body. The snapshots bracket
    {!EXPERIMENT.run} alone — parameter merging and row/preamble/footer
    rendering stay outside the window — and count the calling domain
    only, so worker-domain shares are invisible at [jobs > 1]. The bench
    harness measures at [jobs = 1] when the absolute figure matters; see
    PERFORMANCE.md ("Reading the bench columns"). *)

val table : experiment -> params -> Report.Tabular.table
(** Merge overrides, run the experiment inside an [exp.<id>] trace span
    annotated with every merged parameter (seed included), and package
    rows, preamble and footer for any renderer. *)

val measured_table : experiment -> params -> Report.Tabular.table * gc_cost
(** Like {!table}, and additionally reports the {!gc_cost} of the
    experiment body — allocation bytes and minor/major collection deltas
    measured around {!EXPERIMENT.run} only. *)

(** {1 The global catalogue} *)

val register : experiment -> unit
(** Register under {!id}; raises {!Duplicate_id} on a collision.
    {!Exp_all} registers the canonical list at module initialisation. *)

val find : string -> experiment option
val ids : unit -> string list
(** Registered ids, in registration order. *)

val all : unit -> experiment list
(** Registered experiments, in registration order. *)

(* P1: wall-clock of the deterministic trial engine (claim31) at
   1, 2, 4, ... domains, with a bit-identity check against the
   sequential run (DESIGN.md §4). *)

module T = Report.Tabular
module R = Exp_registry

type row = { pjobs : int; wall_s : float; speedup : float; identical : bool }

let compute ?jobs ~m ~samples ~seed () =
  let max_jobs =
    match jobs with Some j when j > 0 -> j | Some _ | None -> Stdx.Parallel.default_jobs ()
  in
  let run j =
    Stdx.Parallel.timed (fun () -> Exp_claim31.compute ~jobs:j ~ms:[ m ] ~samples ~seed ())
  in
  let reference, baseline_wall = run 1 in
  let job_counts =
    List.sort_uniq compare (List.filter (fun j -> j <= max_jobs) [ 1; 2; 4; max_jobs ])
  in
  List.map
    (fun j ->
      let rows, wall = if j = 1 then (reference, baseline_wall) else run j in
      {
        pjobs = j;
        wall_s = wall;
        speedup = baseline_wall /. wall;
        identical = rows = reference;
      })
    job_counts

let schema =
  [
    T.int_col ~width:6 ~header:"jobs" "jobs";
    T.float_col ~width:10 ~digits:3 ~header:"wall (s)" "wall_s";
    T.float_col ~width:9 ~digits:2 "speedup";
    T.bool_col ~width:10 "identical";
  ]

let to_row r = T.[ Int r.pjobs; Float r.wall_s; Float r.speedup; Bool r.identical ]

let preamble_of ~m ~samples =
  [
    "";
    Printf.sprintf
      "P1. Deterministic trial engine — claim31 (m=%d, %d samples) sharded over domains" m
      samples;
    Printf.sprintf "    %d cores recommended by the runtime; identical = rows bit-equal to jobs=1"
      (Stdx.Parallel.default_jobs ());
  ]

let experiment : R.experiment =
  (module struct
    type nonrec row = row

    let id = "speedup"
    let title = "P1"

    let doc =
      "P1: wall-clock of the deterministic trial engine (claim31) at 1, 2, 4, ... domains, \
       with a bit-identity check against the sequential run."

    let params =
      R.std_params
        [
          R.int_param "m" ~doc:"RS parameter m." 25;
          R.int_param "samples" ~doc:"Samples." 2000;
        ]

    let schema = schema
    let to_row = to_row

    let run ps =
      compute ?jobs:(R.jobs ps) ~m:(R.int_value ps "m") ~samples:(R.int_value ps "samples")
        ~seed:(R.seed ps) ()

    let preamble ps _ = preamble_of ~m:(R.int_value ps "m") ~samples:(R.int_value ps "samples")
    let footer _ = []
    let fast_overrides = [ ("m", R.Vint 10); ("samples", R.Vint 8); ("seed", R.Vint 71) ]
    let full_overrides = [ ("m", R.Vint 25); ("samples", R.Vint 40); ("seed", R.Vint 71) ]
    let smoke = [ ("m", R.Vint 4); ("samples", R.Vint 4); ("jobs", R.Vint 2) ]
  end)

let table_of ~m ~samples rows =
  T.table ~preamble:(preamble_of ~m ~samples) schema (List.map to_row rows)

(* F5: exact Lemma 3.3-3.5 information accounting on micro D_MM
   instances (DESIGN.md §4). *)

module T = Report.Tabular
module R = Exp_registry

type row = Accounting.report

let compute ~bits =
  List.concat_map
    (fun b ->
      [
        Accounting.analyze
          {
            Accounting.rs = Accounting.tiny_rs ();
            k = 2;
            bits = b;
            strategy = Accounting.Truncate;
            sigma_mode = Accounting.Enumerate_sigma;
          };
        Accounting.analyze
          {
            Accounting.rs = Accounting.micro_rs ();
            k = 2;
            bits = b;
            strategy = Accounting.Truncate;
            sigma_mode = Accounting.Fix_sigma;
          };
      ])
    bits

let schema =
  [
    T.int_col ~width:5 ~header:"b" "bits";
    T.str_col ~width:6 "sigma";
    T.int_col ~width:9 "outcomes";
    T.float_col ~width:7 ~digits:0 "kr";
    T.float_col ~width:9 ~digits:4 ~header:"I(M;Pi)" "info";
    T.float_col ~width:8 ~digits:3 ~header:"E|M^U|" "expected_recovered";
    T.float_col ~width:9 ~digits:4 ~header:"L3.3" "lemma33_slack";
    T.float_col ~width:9 ~digits:4 ~header:"L3.4" "lemma34_slack";
    T.float_col ~width:9 ~digits:4 ~header:"L3.5min" "lemma35_min_slack";
    T.bool_col ~width:6 "ok";
  ]

let to_row (r : Accounting.report) =
  T.
    [
      Int r.Accounting.spec_bits;
      Str (if r.Accounting.sigma_enumerated then "enum" else "fixed");
      Int r.Accounting.outcomes;
      Float r.Accounting.kr;
      Float r.Accounting.info;
      Float r.Accounting.expected_recovered;
      Float r.Accounting.lemma33_slack;
      Float r.Accounting.lemma34_slack;
      Float (Array.fold_left min infinity r.Accounting.lemma35_slacks);
      Bool (Accounting.all_inequalities_hold r);
    ]

let preamble = [ ""; "F5. Lemmas 3.3-3.5 — exact information accounting on micro D_MM instances" ]

let experiment : R.experiment =
  (module struct
    type nonrec row = row

    let id = "info-accounting"
    let title = "F5"
    let doc = "F5: exact Lemma 3.3-3.5 information accounting on micro instances."

    let params =
      R.std_params
        ~seed_doc:"Random seed (unused: the accounting enumerates exactly)."
        [ R.ints_param "bits" ~doc:"Per-player budgets in bits." [ 0; 2; 4; 6; 10 ] ]

    let schema = schema
    let to_row = to_row
    let run ps = compute ~bits:(R.ints_value ps "bits")
    let preamble _ _ = preamble
    let footer _ = []
    let fast_overrides = [ ("bits", R.Vints [ 2; 6 ]) ]
    let full_overrides = [ ("bits", R.Vints [ 0; 2; 4; 6; 10 ]) ]
    let smoke = [ ("bits", R.Vints [ 2 ]) ]
  end)

let table_of rows = T.table ~preamble schema (List.map to_row rows)

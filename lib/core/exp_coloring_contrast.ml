(* T6b: palette sparsification vs the trivial protocol on dense G(n, 1/2)
   (DESIGN.md §4). *)

module T = Report.Tabular
module R = Exp_registry
module Graph = Dgraph.Graph
module Model = Sketchmodel.Model
module Public_coins = Sketchmodel.Public_coins

type row = {
  cn : int;
  delta : int;
  list_size : int;
  palette_bits : int;
  full_bits : int;
  ratio : float;
  proper : bool;
}

let compute ~ns ~seed =
  List.map
    (fun n ->
      let rng = Stdx.Prng.create (Stdx.Hashing.mix64 (seed + (5 * n))) in
      let g = Dgraph.Gen.gnp rng n 0.5 in
      let coins = Public_coins.create (Stdx.Hashing.mix64 (seed * 11 + n)) in
      let outcome, stats = Coloring.Palette.run g coins in
      let _, trivial_stats = Model.run Protocols.Trivial.mm g coins in
      let delta = Graph.max_degree g in
      {
        cn = n;
        delta;
        list_size = int_of_float (ceil (4. *. log (float_of_int (n + 1)))) + 4;
        palette_bits = stats.Model.max_bits;
        full_bits = trivial_stats.Model.max_bits;
        ratio = float_of_int stats.Model.max_bits /. float_of_int trivial_stats.Model.max_bits;
        proper =
          (match outcome.Coloring.Palette.coloring with
          | Some colors ->
              Coloring.Palette.is_proper g colors && Coloring.Palette.max_color colors <= delta
          | None -> false);
      })
    ns

let schema =
  [
    T.int_col ~width:7 ~header:"n" "n";
    T.int_col ~width:7 ~header:"Delta" "delta";
    T.int_col ~width:6 ~header:"list" "list_size";
    T.int_col ~width:13 ~header:"palette bits" "palette_bits";
    T.int_col ~width:13 ~header:"full bits" "full_bits";
    T.float_col ~width:8 ~digits:3 "ratio";
    T.bool_col ~width:8 "proper";
  ]

let to_row r =
  T.
    [
      Int r.cn;
      Int r.delta;
      Int r.list_size;
      Int r.palette_bits;
      Int r.full_bits;
      Float r.ratio;
      Bool r.proper;
    ]

let preamble =
  [ ""; "T6b. (Delta+1)-coloring vs trivial on dense G(n, 1/2) — the ratio decays with n" ]

let experiment : R.experiment =
  (module struct
    type nonrec row = row

    let id = "coloring-contrast"
    let title = "T6b"
    let doc = "T6b: palette sparsification vs trivial on dense graphs."

    let params =
      R.std_params [ R.ints_param "n" ~doc:"Graph sizes n." [ 256; 512; 1024; 2048 ] ]

    let schema = schema
    let to_row = to_row
    let run ps = compute ~ns:(R.ints_value ps "n") ~seed:(R.seed ps)
    let preamble _ _ = preamble
    let footer _ = []
    let fast_overrides = [ ("n", R.Vints [ 128; 256 ]); ("seed", R.Vint 19) ]
    let full_overrides = [ ("n", R.Vints [ 256; 512; 1024; 2048 ]); ("seed", R.Vint 19) ]
    let smoke = [ ("n", R.Vints [ 32 ]); ("seed", R.Vint 19) ]
  end)

let table_of rows = T.table ~preamble schema (List.map to_row rows)

(* T6: the Section-1 upper-bound landscape — measured per-player sketch
   bits of the cited protocols (DESIGN.md §4). *)

module T = Report.Tabular
module R = Exp_registry
module Graph = Dgraph.Graph
module Model = Sketchmodel.Model
module Public_coins = Sketchmodel.Public_coins

type row = {
  n : int;
  agm_forest_bits : int;
  agm_ok : bool;
  coloring_bits : int;
  coloring_ok : bool;
  trivial_mm_bits : int;
  two_round_mm_bits : int;
  two_round_mm_ok : bool;
  two_round_mis_bits : int;
  two_round_mis_ok : bool;
}

let compute ~ns ~seed =
  List.map
    (fun n ->
      let rng = Stdx.Prng.create (Stdx.Hashing.mix64 (seed + n)) in
      (* Proportional degree (n/4 on average): the trivial protocol must
         then grow linearly in n while the sketches stay polylog — the
         Section-1 contrast. *)
      let g = Dgraph.Gen.gnp rng n 0.25 in
      let coins = Public_coins.create (Stdx.Hashing.mix64 (seed * 7 + n)) in
      let forest, agm_stats = Agm.Spanning_forest.run g coins in
      let color_outcome, color_stats = Coloring.Palette.run g coins in
      let _, trivial_stats = Model.run Protocols.Trivial.mm g coins in
      let mm2, mm2_stats = Protocols.Two_round_mm.run g coins in
      let mis2, mis2_stats = Protocols.Two_round_mis.run g coins in
      {
        n;
        agm_forest_bits = agm_stats.Model.max_bits;
        agm_ok = Dgraph.Components.is_spanning_forest g forest;
        coloring_bits = color_stats.Model.max_bits;
        coloring_ok =
          (match color_outcome.Coloring.Palette.coloring with
          | Some colors ->
              Array.length colors = n
              && Graph.fold_edges (fun u v acc -> acc && colors.(u) <> colors.(v)) g true
          | None -> false);
        trivial_mm_bits = trivial_stats.Model.max_bits;
        two_round_mm_bits = mm2_stats.Sketchmodel.Rounds.max_bits;
        two_round_mm_ok = Dgraph.Matching.is_maximal g mm2;
        two_round_mis_bits = mis2_stats.Sketchmodel.Rounds.max_bits;
        two_round_mis_ok = Dgraph.Mis.is_maximal g mis2;
      })
    ns

(* log2(bits(n2)/bits(n1)) / log2(n2/n1): 1.0 = linear growth in n,
   ~0 = polylogarithmic. *)
let growth_exponents rows select =
  let rec pairs = function
    | a :: (b :: _ as rest) ->
        let e =
          log (float_of_int (select b) /. float_of_int (select a))
          /. log (float_of_int b.n /. float_of_int a.n)
        in
        e :: pairs rest
    | [ _ ] | [] -> []
  in
  pairs rows

let schema =
  [
    T.int_col ~width:7 "n";
    T.int_col ~width:12 ~header:"agm-forest" "agm_forest_bits";
    T.bool_col ~width:7 ~header:"ok" "agm_ok";
    T.int_col ~width:12 ~header:"coloring" "coloring_bits";
    T.bool_col ~width:7 ~header:"ok" "coloring_ok";
    T.int_col ~width:12 ~header:"trivial-mm" "trivial_mm_bits";
    T.int_col ~width:12 ~header:"2r-mm" "two_round_mm_bits";
    T.bool_col ~width:7 ~header:"ok" "two_round_mm_ok";
    T.int_col ~width:12 ~header:"2r-mis" "two_round_mis_bits";
    T.bool_col ~width:7 ~header:"ok" "two_round_mis_ok";
  ]

let to_row r =
  T.
    [
      Int r.n;
      Int r.agm_forest_bits;
      Bool r.agm_ok;
      Int r.coloring_bits;
      Bool r.coloring_ok;
      Int r.trivial_mm_bits;
      Int r.two_round_mm_bits;
      Bool r.two_round_mm_ok;
      Int r.two_round_mis_bits;
      Bool r.two_round_mis_ok;
    ]

let preamble = [ ""; "T6. Section 1 landscape — measured per-player sketch bits (avg degree n/4)" ]

let footer rows =
  let mean l = List.fold_left ( +. ) 0. l /. float_of_int (max 1 (List.length l)) in
  if List.length rows >= 2 then
    [
      Printf.sprintf
        "    growth exponents (1.0 = linear in n, ~0 = polylog): agm=%.2f coloring=%.2f \
         trivial=%.2f 2r-mm=%.2f 2r-mis=%.2f"
        (mean (growth_exponents rows (fun r -> r.agm_forest_bits)))
        (mean (growth_exponents rows (fun r -> r.coloring_bits)))
        (mean (growth_exponents rows (fun r -> r.trivial_mm_bits)))
        (mean (growth_exponents rows (fun r -> r.two_round_mm_bits)))
        (mean (growth_exponents rows (fun r -> r.two_round_mis_bits)));
    ]
  else []

let experiment : R.experiment =
  (module struct
    type nonrec row = row

    let id = "upper-bounds"
    let title = "T6"
    let doc = "T6: measured sketch sizes of the cited upper bounds."

    let params =
      R.std_params [ R.ints_param "n" ~doc:"Graph sizes n." [ 64; 128; 256 ] ]

    let schema = schema
    let to_row = to_row
    let run ps = compute ~ns:(R.ints_value ps "n") ~seed:(R.seed ps)
    let preamble _ _ = preamble
    let footer = footer
    let fast_overrides = [ ("n", R.Vints [ 64; 128 ]); ("seed", R.Vint 3) ]
    let full_overrides = [ ("n", R.Vints [ 64; 128; 256 ]); ("seed", R.Vint 3) ]
    let smoke = [ ("n", R.Vints [ 24; 32 ]); ("seed", R.Vint 3) ]
  end)

let table_of rows = T.table ~preamble ~footer:(footer rows) schema (List.map to_row rows)

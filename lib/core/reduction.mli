(** The Section-4 reduction: maximal matching on [D_MM] via maximal
    independent set on a doubled graph [H].

    [H] has [2n] vertices: two disjoint copies [G^ℓ] and [G^r] of
    [G ~ D_MM] (vertex [u] becomes [uℓ = u] and [ur = n + u]), plus a
    complete bipartite graph between the public vertices of the two copies
    (including the pair [(uℓ, ur)] for each public [u], so no public vertex
    can appear on both sides of an independent set).

    Given a maximal independent set [S] of [H], the referee — who knows
    [σ] and [j*] for free (Remark 3.6) — reconstructs the survived hidden
    matching: Lemma 4.1 states that on a side whose public copies avoid
    [S], a pair [(u,v) ∈ M^RS_{i,j*}] survived the edge-dropping {e iff}
    not both of its copies are in [S]. *)

val build_h : Hard_dist.t -> Dgraph.Graph.t

val left : int -> int
(** [uℓ] for label [u] (identity). *)

val right : Hard_dist.t -> int -> int
(** [ur = n + u]. *)

type side = Left | Right

val side_public_empty : Hard_dist.t -> Dgraph.Mis.t -> side -> bool
(** Does the MIS avoid every public copy on this side? The biclique
    guarantees at least one side satisfies this. *)

val extract : Hard_dist.t -> Dgraph.Mis.t -> side -> Dgraph.Matching.t
(** [M^side] of the reduction: the [G]-pre-images of the pairs
    [(u, v) ∈ M^RS_{i,j*}] for which not both copies lie in the MIS. *)

val referee_output : Hard_dist.t -> Dgraph.Mis.t -> Dgraph.Matching.t
(** The paper's rule verbatim: the larger of [M^ℓ] and [M^r] (pre-images). *)

val referee_output_min : Hard_dist.t -> Dgraph.Mis.t -> Dgraph.Matching.t
(** Ablation: the {e smaller} side — by Lemma 4.1 this equals the exact
    surviving hidden matching whenever the MIS is correct. *)

type verdict = {
  lemma41_ok : bool;  (** the iff of Lemma 4.1 on the public-free side *)
  complete : bool;  (** output ⊇ all surviving hidden edges *)
  output_size : int;
  valid_edges : int;  (** output edges actually present in [G] *)
  surviving : int;
  side_used : side;
}

val check : Hard_dist.t -> Dgraph.Mis.t -> verdict
(** Full analysis of the paper's referee on a given MIS of [H]. *)

val run_with_solver :
  Hard_dist.t -> (Dgraph.Graph.t -> Dgraph.Mis.t) -> verdict
(** Build [H], solve MIS with the given (referee-side) solver, analyse. *)

val end_to_end_cost :
  Hard_dist.t ->
  Dgraph.Mis.t Sketchmodel.Model.protocol ->
  Sketchmodel.Public_coins.t ->
  verdict * Sketchmodel.Model.stats * Sketchmodel.Model.stats
(** Run an actual one-round MIS sketching protocol on [H], with each
    [G]-vertex simulating both of its copies (message = concatenation, as
    in the paper's cost argument). Returns the verdict, the per-[G]-player
    cost of the simulation, and the per-[H]-player cost of the underlying
    MIS protocol — the ratio is the factor-2 blow-up of Theorem 2. *)

(* The experiment catalogue: every DESIGN.md §4 table, in the canonical
   `run_all` order. Registration happens at module-initialization time,
   so any code that touches [Exp_all] (the CLI, the bench driver, the
   tests) sees a fully-populated registry — and because the list below is
   an explicit value, the linker can never drop an experiment module. *)

module T = Report.Tabular
module R = Exp_registry

let experiments : R.experiment list =
  [
    Exp_rs.experiment;
    Exp_behrend.experiment;
    Exp_claim31.experiment;
    Exp_budget_sweep.experiment;
    Exp_info_accounting.experiment;
    Exp_upper_bounds.experiment;
    Exp_coloring_contrast.experiment;
    Exp_bound_curve.experiment;
    Exp_reduction.experiment;
    Exp_bridge.experiment;
    Exp_approx_matching.experiment;
    Exp_k_sweep.experiment;
    Exp_streams.experiment;
    Exp_connectivity.experiment;
    Exp_rounds.experiment;
    Exp_packing.experiment;
    Exp_estimate_info.experiment;
    Exp_yao.experiment;
    Exp_bcc.experiment;
    Exp_hyper_mm.experiment;
    Exp_round_frontier.experiment;
    Exp_stream_matching.experiment;
    Exp_speedup.experiment;
  ]

let () = List.iter R.register experiments
let find = R.find
let all () = R.all ()

(* Run every experiment at its `all` (or `all --fast`) sizes, rendering
   through the chosen format. Text goes to [out] interleaved with wall-time
   lines, exactly as the classic `run_all` printed; machine formats keep
   [out] clean (rows only, each stamped with its experiment id) and push
   the timing lines to stderr. *)
let run_all ?(fast = false) ?jobs ?(format = T.Text) ?(out = stdout) () =
  let jobs =
    match jobs with Some j when j > 0 -> j | Some _ | None -> Stdx.Parallel.default_jobs ()
  in
  let progress fmt =
    Printf.ksprintf
      (fun s ->
        match format with
        | T.Text ->
            output_string out s;
            flush out
        | T.Csv | T.Json ->
            output_string stderr s;
            flush stderr)
      fmt
  in
  let total = ref 0. in
  List.iter
    (fun e ->
      let overrides = R.overrides_for ~fast e @ [ ("jobs", R.Vint jobs) ] in
      let wall =
        match format with
        | T.Text ->
            let (), wall =
              Stdx.Parallel.timed (fun () ->
                  output_string out (T.to_text (R.table e overrides)))
            in
            flush out;
            wall
        | T.Csv | T.Json ->
            let tbl, wall = Stdx.Parallel.timed (fun () -> R.table e overrides) in
            T.emit ~tag:("experiment", R.id e) ~format ~out tbl;
            flush out;
            wall
      in
      total := !total +. wall;
      progress "    [%s: %.2f s wall]\n" (R.title e) wall)
    (all ());
  progress "\nTotal wall-clock: %.2f s (jobs=%d; every table bit-identical at any job count)\n"
    !total jobs

(* Experiment registry: a first-class-module interface every DESIGN.md §4
   table implements, plus a global registry with unique-id enforcement.

   An experiment declares its parameter spec once ([params], including the
   uniform [seed]/[jobs] knobs) and the CLI, the `all` runner, the bench
   JSON writer and the tests all derive their behaviour from it — adding a
   workload is one new [Exp_*] module plus one line in [Exp_all]. *)

module T = Report.Tabular

exception Duplicate_id of string
exception Unknown_param of string
exception Wrong_param_type of string

(* ------------------------------------------------------------------ *)
(* Parameter specs                                                     *)

type pvalue = Vint of int | Vints of int list

type param = {
  name : string;  (* merge key, JSON name *)
  keys : string list;  (* CLI flag names, e.g. ["j"; "jobs"] *)
  doc : string;
  default : pvalue;
}

type params = (string * pvalue) list

let int_param ?keys ?(doc = "") name default =
  { name; keys = Option.value keys ~default:[ name ]; doc; default = Vint default }

let ints_param ?keys ?(doc = "") name default =
  { name; keys = Option.value keys ~default:[ name ]; doc; default = Vints default }

let seed_param ?(doc = "Random seed.") () = int_param "seed" ~doc 7

let jobs_param =
  int_param "jobs" ~keys:[ "j"; "jobs" ]
    ~doc:"Worker domains for trial sharding (0 = Domain.recommended_domain_count)." 0

(* Every experiment takes [seed] and [jobs], uniformly — no CLI special
   cases. Tables that are deterministic or sequential simply ignore them
   (their [~doc] says so). *)
let std_params ?seed_doc specific = specific @ [ seed_param ?doc:seed_doc (); jobs_param ]

let int_value ps name =
  match List.assoc_opt name ps with
  | Some (Vint i) -> i
  | Some (Vints _) -> raise (Wrong_param_type name)
  | None -> raise (Unknown_param name)

let ints_value ps name =
  match List.assoc_opt name ps with
  | Some (Vints l) -> l
  | Some (Vint _) -> raise (Wrong_param_type name)
  | None -> raise (Unknown_param name)

let seed ps = int_value ps "seed"
let jobs ps = match int_value ps "jobs" with j when j <= 0 -> None | j -> Some j

(* Spec defaults overlaid with caller overrides; overriding a name the
   spec does not declare is an error (it would be silently ignored). *)
let merge spec overrides =
  List.iter
    (fun (name, _) ->
      if not (List.exists (fun p -> p.name = name) spec) then raise (Unknown_param name))
    overrides;
  List.map
    (fun p ->
      (p.name, match List.assoc_opt p.name overrides with Some v -> v | None -> p.default))
    spec

(* ------------------------------------------------------------------ *)
(* The experiment interface                                            *)

module type EXPERIMENT = sig
  type row

  val id : string  (* CLI subcommand / registry key, e.g. "claim31" *)
  val title : string  (* short table tag, e.g. "T3" *)
  val doc : string  (* one-line description (CLI help, `list`) *)
  val params : param list
  val schema : T.col list
  val to_row : row -> T.row
  val run : params -> row list
  val preamble : params -> row list -> string list  (* text-format title block *)
  val footer : row list -> string list  (* text-format trailer *)
  val fast_overrides : params  (* `all --fast` sizes *)
  val full_overrides : params  (* `all` sizes *)
  val smoke : params  (* tiny sizes for the registry test *)
end

type experiment = (module EXPERIMENT)

let id (module E : EXPERIMENT) = E.id
let title (module E : EXPERIMENT) = E.title
let doc (module E : EXPERIMENT) = E.doc
let params (module E : EXPERIMENT) = E.params
let schema (module E : EXPERIMENT) = E.schema
let smoke (module E : EXPERIMENT) = E.smoke
let overrides_for ~fast (module E : EXPERIMENT) = if fast then E.fast_overrides else E.full_overrides

(* Trace annotations for one experiment run: every (name, value) of the
   merged parameter list, so a span in the viewer identifies the exact
   configuration (seed included) that produced it. Built lazily — the
   thunk is only evaluated when tracing is enabled. *)
let trace_args ps () =
  List.map
    (fun (name, v) ->
      match v with
      | Vint i -> (name, Stdx.Trace.Int i)
      | Vints l -> (name, Stdx.Trace.Str (String.concat "," (List.map string_of_int l))))
    ps

(* GC cost of one experiment body, measured on the calling domain. *)
type gc_cost = { alloc_bytes : float; minor_collections : int; major_collections : int }

(* Run an experiment and package the result for any renderer, with the
   GC cost of the body. The snapshots bracket [E.run] alone — parameter
   merging, row rendering and preamble/footer formatting stay outside the
   window, so the figure is the experiment's own allocation, not the
   harness's. [Gc.allocated_bytes] and the collection counters cover the
   calling domain only: at jobs>1 worker-domain shares are invisible, so
   bench measures at jobs=1 when the absolute number matters. *)
let measured_table (module E : EXPERIMENT) overrides =
  let ps = merge E.params overrides in
  let cost = ref { alloc_bytes = 0.; minor_collections = 0; major_collections = 0 } in
  let rows =
    Stdx.Trace.span ~args:(trace_args ps) ("exp." ^ E.id) (fun () ->
        let s0 = Gc.quick_stat () in
        let a0 = Gc.allocated_bytes () in
        let rows = E.run ps in
        let a1 = Gc.allocated_bytes () in
        let s1 = Gc.quick_stat () in
        cost :=
          {
            alloc_bytes = a1 -. a0;
            minor_collections = s1.Gc.minor_collections - s0.Gc.minor_collections;
            major_collections = s1.Gc.major_collections - s0.Gc.major_collections;
          };
        rows)
  in
  ( {
      T.schema = E.schema;
      rows = List.map E.to_row rows;
      preamble = E.preamble ps rows;
      footer = E.footer rows;
    },
    !cost )

let table e overrides = fst (measured_table e overrides)

(* ------------------------------------------------------------------ *)
(* The registry                                                        *)

let registered : (string, experiment) Hashtbl.t = Hashtbl.create 32
let order : string list ref = ref []

let register e =
  let key = id e in
  if Hashtbl.mem registered key then raise (Duplicate_id key);
  Hashtbl.replace registered key e;
  order := key :: !order

let find key = Hashtbl.find_opt registered key
let ids () = List.rev !order
let all () = List.rev_map (fun key -> Hashtbl.find registered key) !order

module Graph = Dgraph.Graph
module Rs = Rsgraph.Rs_graph

type t = {
  rs : Rs.t;
  k : int;
  j_star : int;
  sigma : int array;
  graph : Graph.t;
  n : int;
  public_labels : int array;
  unique_labels : int array array;
  copy_map : int array array;
  kept : bool array array;
  rs_edges : Graph.edge array;
}

let big_n dmm = Rs.n dmm.rs
let r dmm = dmm.rs.Rs.r
let t_count dmm = dmm.rs.Rs.t_count

let make rs ~k ~j_star ~sigma ~kept =
  Stdx.Trace.span "hard_dist.make" @@ fun () ->
  if k < 1 then invalid_arg "Hard_dist.make: k";
  let nn = Rs.n rs in
  let rr = rs.Rs.r in
  let tt = rs.Rs.t_count in
  let n = nn - (2 * rr) + (2 * rr * k) in
  if j_star < 0 || j_star >= tt then invalid_arg "Hard_dist.make: j_star";
  if Array.length sigma <> n then invalid_arg "Hard_dist.make: sigma length";
  let v_star = Rs.matching_vertices rs j_star in
  let in_star = Stdx.Bitset.create nn in
  Array.iter (Stdx.Bitset.add in_star) v_star;
  let non_star =
    Array.of_list (List.filter (fun v -> not (Stdx.Bitset.mem in_star v)) (List.init nn (fun v -> v)))
  in
  let n_public = nn - (2 * rr) in
  let public_labels = Array.init n_public (fun l -> sigma.(l)) in
  let unique_labels =
    Array.init k (fun i -> Array.init (2 * rr) (fun l -> sigma.(n_public + (i * 2 * rr) + l)))
  in
  (* star_pos.(v) = rank of v inside V*, or -1; non_pos likewise. *)
  let star_pos = Array.make nn (-1) and non_pos = Array.make nn (-1) in
  Array.iteri (fun pos v -> star_pos.(v) <- pos) v_star;
  Array.iteri (fun pos v -> non_pos.(v) <- pos) non_star;
  let copy_map =
    Array.init k (fun i ->
        Array.init nn (fun v ->
            if star_pos.(v) >= 0 then unique_labels.(i).(star_pos.(v))
            else public_labels.(non_pos.(v))))
  in
  let rs_edges = Graph.edges_array rs.Rs.graph in
  if
    Array.length kept <> k
    || Array.exists (fun row -> Array.length row <> Array.length rs_edges) kept
  then invalid_arg "Hard_dist.make: kept shape";
  (* Counted two-pass fill: size the builder exactly from [kept], then
     stream the surviving copy edges straight into the columnar store (the
     freeze dedups public-public edges shared across copies). *)
  let edge_count = Array.length rs_edges in
  let total = ref 0 in
  for i = 0 to k - 1 do
    let row = kept.(i) in
    for e = 0 to edge_count - 1 do
      if row.(e) then incr total
    done
  done;
  let b = Graph.Builder.create ~capacity:(max 1 !total) n in
  for i = 0 to k - 1 do
    let row = kept.(i) and map = copy_map.(i) in
    for e = 0 to edge_count - 1 do
      if row.(e) then begin
        let u, v = rs_edges.(e) in
        Graph.Builder.add_edge b map.(u) map.(v)
      end
    done
  done;
  let graph = Graph.Builder.freeze b in
  { rs; k; j_star; sigma; graph; n; public_labels; unique_labels; copy_map; kept; rs_edges }

let sample rs ?k rng =
  Stdx.Trace.span "hard_dist.sample" @@ fun () ->
  let k = Option.value ~default:rs.Rs.t_count k in
  let nn = Rs.n rs in
  let rr = rs.Rs.r in
  let n = nn - (2 * rr) + (2 * rr * k) in
  let j_star = Stdx.Prng.int rng rs.Rs.t_count in
  let sigma = Stdx.Prng.permutation rng n in
  let edge_count = Graph.m rs.Rs.graph in
  (* One bulk fill for all k x edge_count Bernoulli draws (row-major, the
     same stream positions the per-edge draws consumed — goldens pin it),
     then split into per-copy rows. Its own phase so BENCH_tables.json
     [phases] shows the fill cost next to [hard_dist.make]. *)
  let kept =
    Stdx.Trace.span "hard_dist.kept_fill" @@ fun () ->
    let flat = Array.make (k * edge_count) false in
    Stdx.Prng.fill_bools rng flat;
    Array.init k (fun i -> Array.sub flat (i * edge_count) edge_count)
  in
  make rs ~k ~j_star ~sigma ~kept

let public_set dmm =
  let s = Stdx.Bitset.create dmm.n in
  Array.iter (Stdx.Bitset.add s) dmm.public_labels;
  s

let is_public dmm label = Array.exists (fun l -> l = label) dmm.public_labels

let is_unique dmm label = label >= 0 && label < dmm.n && not (is_public dmm label)

let rs_edge_index dmm edge =
  let e = Graph.normalize_edge (fst edge) (snd edge) in
  let found = ref None in
  Array.iteri (fun idx e' -> if e' = e then found := Some idx) dmm.rs_edges;
  !found

let kept_vector dmm ~copy ~j =
  if copy < 0 || copy >= dmm.k then invalid_arg "Hard_dist.kept_vector: copy";
  Array.map
    (fun (u, v) ->
      match rs_edge_index dmm (u, v) with
      | Some idx -> dmm.kept.(copy).(idx)
      | None -> invalid_arg "Hard_dist.kept_vector: matching edge missing from RS edge list")
    dmm.rs.Rs.matchings.(j)

let special_pairs dmm =
  List.concat
    (List.init dmm.k (fun i ->
         Array.to_list dmm.rs.Rs.matchings.(dmm.j_star)
         |> List.map (fun (u, v) ->
                (i, Graph.normalize_edge dmm.copy_map.(i).(u) dmm.copy_map.(i).(v)))))

let surviving_special dmm =
  List.concat
    (List.init dmm.k (fun i ->
         Array.to_list dmm.rs.Rs.matchings.(dmm.j_star)
         |> List.filter_map (fun (u, v) ->
                match rs_edge_index dmm (u, v) with
                | Some idx when dmm.kept.(i).(idx) ->
                    Some (i, Graph.normalize_edge dmm.copy_map.(i).(u) dmm.copy_map.(i).(v))
                | Some _ | None -> None)))

let unique_unique_edges dmm matching =
  let pub = public_set dmm in
  List.filter
    (fun (u, v) -> (not (Stdx.Bitset.mem pub u)) && not (Stdx.Bitset.mem pub v))
    matching

let public_player_count dmm = Array.length dmm.public_labels
let unique_player_count dmm = dmm.k * big_n dmm

let augmented_views dmm =
  let nn = big_n dmm in
  let public_views =
    Array.map
      (fun label ->
        {
          Sketchmodel.Model.n = dmm.n;
          vertex = label;
          neighbors = Graph.neighbors dmm.graph label;
        })
      dmm.public_labels
  in
  (* Copy-i adjacency at RS granularity: unique player (i, v) sees the
     surviving copy-i edges at v, translated to G labels. *)
  let unique_views =
    Array.init (dmm.k * nn) (fun idx ->
        let i = idx / nn and v = idx mod nn in
        let nbrs = ref [] in
        Array.iteri
          (fun e (a, b) ->
            if dmm.kept.(i).(e) then
              if a = v then nbrs := dmm.copy_map.(i).(b) :: !nbrs
              else if b = v then nbrs := dmm.copy_map.(i).(a) :: !nbrs)
          dmm.rs_edges;
        {
          Sketchmodel.Model.n = dmm.n;
          vertex = dmm.copy_map.(i).(v);
          neighbors = Array.of_list (List.sort compare !nbrs);
        })
  in
  Array.append public_views unique_views

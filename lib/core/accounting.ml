module Graph = Dgraph.Graph
module Rs = Rsgraph.Rs_graph
module Model = Sketchmodel.Model

type strategy = Truncate | Hash

type sigma_mode = Fix_sigma | Enumerate_sigma

type spec = { rs : Rs.t; k : int; bits : int; strategy : strategy; sigma_mode : sigma_mode }

type report = {
  spec_bits : int;
  outcomes : int;
  sigma_enumerated : bool;
  kr : float;
  info : float;
  h_m_given_pi : float;
  eq1_residual : float;
  expected_recovered : float;
  lemma33_slack : float;
  h_public : float;
  per_copy_info : float array;
  per_copy_h : float array;
  lemma34_slack : float;
  lemma35_slacks : float array;
  budget_bound : float;
  theorem_slack : float;
}

let tiny_rs () = Rs.trivial ~r:1 ~t:2

let micro_rs () = Rs.bipartite 2

let permutations n =
  let rec insert_everywhere x = function
    | [] -> [ [ x ] ]
    | y :: rest -> (x :: y :: rest) :: List.map (fun l -> y :: l) (insert_everywhere x rest)
  in
  let rec perms = function
    | [] -> [ [] ]
    | x :: rest -> List.concat_map (insert_everywhere x) (perms rest)
  in
  perms (List.init n (fun i -> i)) |> List.map Array.of_list

(* Message of one player: a prefix (or hash) of its adjacency bitmap over
   the vertex labels [0 .. bits-1].  A genuine function of the player's
   input (its view) and nothing else. *)
let message spec (view : Model.view) =
  let b = spec.bits in
  match spec.strategy with
  | Truncate ->
      let bytes = Bytes.make ((b + 7) / 8) '\000' in
      Array.iter
        (fun u ->
          if u < b then
            Bytes.set bytes (u / 8)
              (Char.chr (Char.code (Bytes.get bytes (u / 8)) lor (1 lsl (u mod 8)))))
        view.Model.neighbors;
      Bytes.to_string bytes
  | Hash ->
      let acc =
        Array.fold_left
          (fun acc u -> Stdx.Hashing.mix64 (acc lxor (u + 1)))
          (Stdx.Hashing.mix64 (view.Model.vertex + 17))
          view.Model.neighbors
      in
      let masked = if b >= 62 then acc else acc land ((1 lsl b) - 1) in
      string_of_int masked

(* Everything the random variables need, precomputed per outcome. *)
type cell = {
  sigma_id : int;
  j : int;
  m_codes : int array;  (** M_{i,J} packed as an r-bit code per copy *)
  pi_public : string;
  pi_unique : string array;  (** per copy: concatenated unique messages *)
  recovered : int;  (** |M^U_π| of the certifying referee *)
}

let build_cell spec ~edge_count ~sigma ~sigma_id (j, code) =
  let rs = spec.rs in
  let nn = Rs.n rs in
  let kept =
    Array.init spec.k (fun i ->
        Array.init edge_count (fun e -> code land (1 lsl ((i * edge_count) + e)) <> 0))
  in
  let dmm = Hard_dist.make rs ~k:spec.k ~j_star:j ~sigma ~kept in
  let views = Hard_dist.augmented_views dmm in
  let p = Hard_dist.public_player_count dmm in
  let msgs = Array.map (fun view -> message spec view) views in
  let concat lo hi =
    let buf = Buffer.create 64 in
    for idx = lo to hi do
      Buffer.add_string buf msgs.(idx);
      Buffer.add_char buf '|'
    done;
    Buffer.contents buf
  in
  let pi_public = concat 0 (p - 1) in
  let pi_unique = Array.init spec.k (fun i -> concat (p + (i * nn)) (p + ((i + 1) * nn) - 1)) in
  let m_codes =
    Array.init spec.k (fun i ->
        let v = Hard_dist.kept_vector dmm ~copy:i ~j in
        Array.to_list v
        |> List.fold_left (fun acc kept_bit -> (acc lsl 1) lor (if kept_bit then 1 else 0)) 0)
  in
  (* Certifying referee (Truncate only): a surviving special edge (i,(a,b))
     is output iff one endpoint's transmitted bitmap prefix covers the
     other endpoint's label, so the referee is certain it exists. *)
  let recovered =
    match spec.strategy with
    | Hash -> 0
    | Truncate ->
        Hard_dist.surviving_special dmm
        |> List.filter (fun (_, (a, b)) -> a < spec.bits || b < spec.bits)
        |> List.length
  in
  { sigma_id; j; m_codes; pi_public; pi_unique; recovered }

let analyze spec =
  let rs = spec.rs in
  let edge_count = Graph.m rs.Rs.graph in
  if spec.k * edge_count > 16 then invalid_arg "Accounting.analyze: space too large";
  if spec.k < 1 || spec.bits < 0 then invalid_arg "Accounting.analyze: spec";
  let tt = rs.Rs.t_count and rr = rs.Rs.r in
  let nn = Rs.n rs in
  let n = nn - (2 * rr) + (2 * rr * spec.k) in
  let sigmas =
    match spec.sigma_mode with
    | Fix_sigma -> [| Array.init n (fun v -> v) |]
    | Enumerate_sigma ->
        if n > 7 then invalid_arg "Accounting.analyze: n too large to enumerate sigma";
        Array.of_list (permutations n)
  in
  let code_count = 1 lsl (spec.k * edge_count) in
  let per_sigma = tt * code_count in
  let cells =
    Array.init (Array.length sigmas * per_sigma) (fun idx ->
        let sigma_id = idx / per_sigma in
        let rest = idx mod per_sigma in
        build_cell spec ~edge_count ~sigma:sigmas.(sigma_id) ~sigma_id
          (rest / code_count, rest mod code_count))
  in
  let space = Infotheory.Space.uniform (List.init (Array.length cells) (fun i -> i)) in
  let sigma_rv i = cells.(i).sigma_id in
  let j_rv i = cells.(i).j in
  let given_rv i = (cells.(i).sigma_id, cells.(i).j) in
  let m_rv i = Array.to_list cells.(i).m_codes in
  let m_i_rv copy i = cells.(i).m_codes.(copy) in
  let pi_p_rv i = cells.(i).pi_public in
  let pi_u_rv copy i = cells.(i).pi_unique.(copy) in
  let pi_rv i = (cells.(i).pi_public, Array.to_list cells.(i).pi_unique) in
  ignore sigma_rv;
  ignore j_rv;
  let module E = Infotheory.Entropy in
  let info = E.conditional_mutual_information space m_rv pi_rv ~given:given_rv in
  let h_m_given_pi = E.conditional_entropy space m_rv ~given:(E.pair pi_rv given_rv) in
  let kr = float_of_int (spec.k * rr) in
  let expected_recovered =
    Infotheory.Space.expectation space (fun i -> float_of_int cells.(i).recovered)
  in
  let h_public = E.entropy space pi_p_rv in
  let per_copy_info =
    Array.init spec.k (fun copy ->
        E.conditional_mutual_information space (m_i_rv copy) (pi_u_rv copy) ~given:given_rv)
  in
  let per_copy_h = Array.init spec.k (fun copy -> E.entropy space (pi_u_rv copy)) in
  let sum = Array.fold_left ( +. ) 0. in
  let p_count = nn - (2 * rr) in
  let budget_bound =
    float_of_int spec.bits
    *. (float_of_int p_count +. (float_of_int (spec.k * nn) /. float_of_int tt))
  in
  {
    spec_bits = spec.bits;
    outcomes = Array.length cells;
    sigma_enumerated = spec.sigma_mode = Enumerate_sigma;
    kr;
    info;
    h_m_given_pi;
    eq1_residual = abs_float (info -. (kr -. h_m_given_pi));
    expected_recovered;
    lemma33_slack = kr -. expected_recovered +. 1. -. h_m_given_pi;
    h_public;
    per_copy_info;
    per_copy_h;
    lemma34_slack = h_public +. sum per_copy_info -. info;
    lemma35_slacks =
      Array.init spec.k (fun i -> (per_copy_h.(i) /. float_of_int tt) -. per_copy_info.(i));
    budget_bound;
    theorem_slack = budget_bound -. info;
  }

let all_inequalities_hold report =
  let tol = 1e-6 in
  report.eq1_residual < tol
  && report.lemma33_slack >= -.tol
  && report.lemma34_slack >= -.tol
  && ((not report.sigma_enumerated) || Array.for_all (fun s -> s >= -.tol) report.lemma35_slacks)
  && ((not report.sigma_enumerated) || report.theorem_slack >= -.tol)

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>b=%d outcomes=%d sigma_enumerated=%b kr=%.0f@,\
     I(M;Pi|S,J)=%.4f  H(M|Pi,S,J)=%.4f  eq1_residual=%.2e@,\
     E|M^U|=%.4f  lemma3.3 slack=%.4f@,\
     H(Pi(P))=%.4f  sum I(M_i;Pi(U_i)|S,J)=%.4f  lemma3.4 slack=%.4f@,\
     lemma3.5 slacks=[%s]@,\
     budget bound=%.2f  theorem slack=%.2f@]"
    r.spec_bits r.outcomes r.sigma_enumerated r.kr r.info r.h_m_given_pi r.eq1_residual
    r.expected_recovered r.lemma33_slack r.h_public
    (Array.fold_left ( +. ) 0. r.per_copy_info)
    r.lemma34_slack
    (String.concat "; " (Array.to_list (Array.map (Printf.sprintf "%.4f") r.lemma35_slacks)))
    r.budget_bound r.theorem_slack

module Graph = Dgraph.Graph
module Rs = Rsgraph.Rs_graph
module Model = Sketchmodel.Model

type strategy = Truncate | Hash

type sigma_mode = Fix_sigma | Enumerate_sigma

type spec = { rs : Rs.t; k : int; bits : int; strategy : strategy; sigma_mode : sigma_mode }

type report = {
  spec_bits : int;
  outcomes : int;
  sigma_enumerated : bool;
  kr : float;
  info : float;
  h_m_given_pi : float;
  eq1_residual : float;
  expected_recovered : float;
  lemma33_slack : float;
  h_public : float;
  per_copy_info : float array;
  per_copy_h : float array;
  lemma34_slack : float;
  lemma35_slacks : float array;
  budget_bound : float;
  theorem_slack : float;
}

let tiny_rs () = Rs.trivial ~r:1 ~t:2

let micro_rs () = Rs.bipartite 2

let permutations n =
  let rec insert_everywhere x = function
    | [] -> [ [ x ] ]
    | y :: rest -> (x :: y :: rest) :: List.map (fun l -> y :: l) (insert_everywhere x rest)
  in
  let rec perms = function
    | [] -> [ [] ]
    | x :: rest -> List.concat_map (insert_everywhere x) (perms rest)
  in
  perms (List.init n (fun i -> i)) |> List.map Array.of_list

(* Message of one player: a prefix (or hash) of its adjacency bitmap over
   the vertex labels [0 .. bits-1].  A genuine function of the player's
   input (its view) and nothing else. *)
let message spec (view : Model.view) =
  let b = spec.bits in
  match spec.strategy with
  | Truncate ->
      let bytes = Bytes.make ((b + 7) / 8) '\000' in
      Array.iter
        (fun u ->
          if u < b then
            Bytes.set bytes (u / 8)
              (Char.chr (Char.code (Bytes.get bytes (u / 8)) lor (1 lsl (u mod 8)))))
        view.Model.neighbors;
      Bytes.to_string bytes
  | Hash ->
      let acc =
        Array.fold_left
          (fun acc u -> Stdx.Hashing.mix64 (acc lxor (u + 1)))
          (Stdx.Hashing.mix64 (view.Model.vertex + 17))
          view.Model.neighbors
      in
      let masked = if b >= 62 then acc else acc land ((1 lsl b) - 1) in
      string_of_int masked

(* Everything the random variables need, precomputed per outcome. *)
type cell = {
  sigma_id : int;
  j : int;
  m_codes : int array;  (** M_{i,J} packed as an r-bit code per copy *)
  pi_public : string;
  pi_unique : string array;  (** per copy: concatenated unique messages *)
  recovered : int;  (** |M^U_π| of the certifying referee *)
}

(* Per-(σ, j_star) invariants, hoisted out of the inner coin-pattern loop:
   the label maps and the matching-edge indices depend only on the
   permutation and the special index, so the 2^(k·|E|) coin patterns of
   one (σ, j_star) share a single frame instead of each re-deriving it (and,
   previously, each freezing a throwaway columnar graph — the dominant
   allocation of the whole enumeration). *)
type frame = {
  frame_sigma_id : int;
  frame_j : int;
  public_labels : int array;
  copy_map : int array array;  (** [copy_map.(i).(v)]: G label of copy-i RS vertex [v] *)
  match_idx : int array;  (** index into the RS edge list of each edge of matching [j] *)
  special : (int * int) array array;
      (** per copy, the normalized mapped edges of matching [j] *)
  mapped : (int * int) array array;  (** per copy, all RS edges mapped to G labels *)
}

let build_frame spec ~rs_edges ~sigma ~sigma_id j =
  let rs = spec.rs in
  let nn = Rs.n rs in
  let rr = rs.Rs.r in
  let n_public = nn - (2 * rr) in
  let v_star = Rs.matching_vertices rs j in
  let star_pos = Array.make nn (-1) in
  Array.iteri (fun pos v -> star_pos.(v) <- pos) v_star;
  (* Rank of each non-star vertex among non-star vertices, in vertex
     order — the same order Hard_dist.make derives from its filter. *)
  let non_pos = Array.make nn (-1) in
  let next = ref 0 in
  for v = 0 to nn - 1 do
    if star_pos.(v) < 0 then begin
      non_pos.(v) <- !next;
      incr next
    end
  done;
  let public_labels = Array.init n_public (fun l -> sigma.(l)) in
  let unique_label i l = sigma.(n_public + (i * 2 * rr) + l) in
  let copy_map =
    Array.init spec.k (fun i ->
        Array.init nn (fun v ->
            if star_pos.(v) >= 0 then unique_label i star_pos.(v)
            else public_labels.(non_pos.(v))))
  in
  let match_idx =
    Array.map
      (fun (u, v) ->
        let e = Graph.normalize_edge u v in
        let found = ref (-1) in
        Array.iteri (fun idx e' -> if e' = e then found := idx) rs_edges;
        if !found < 0 then
          invalid_arg "Accounting.build_frame: matching edge missing from RS edge list";
        !found)
      rs.Rs.matchings.(j)
  in
  let special =
    Array.init spec.k (fun i ->
        Array.map
          (fun (u, v) -> Graph.normalize_edge copy_map.(i).(u) copy_map.(i).(v))
          rs.Rs.matchings.(j))
  in
  let mapped =
    Array.init spec.k (fun i ->
        Array.map (fun (u, v) -> Graph.normalize_edge copy_map.(i).(u) copy_map.(i).(v)) rs_edges)
  in
  { frame_sigma_id = sigma_id; frame_j = j; public_labels; copy_map; match_idx; special; mapped }

let kept_of_code spec ~edge_count code =
  Array.init spec.k (fun i ->
      Array.init edge_count (fun e -> code land (1 lsl ((i * edge_count) + e)) <> 0))

(* Views of one outcome, computed without materialising the graph. Public
   players read their neighbourhood off the deduped mapped edge set — the
   exact edge set [Hard_dist.make] freezes, so sorting the collected
   endpoints reproduces [Graph.neighbors]'s ascending CSR rows; unique
   players use copy-local RS adjacency exactly as
   [Hard_dist.augmented_views] does. The equivalence is pinned by test. *)
let public_views ~n frame mapped =
  Array.map
    (fun label ->
      let nbrs =
        List.filter_map
          (fun (a, b) -> if a = label then Some b else if b = label then Some a else None)
          mapped
        |> List.sort compare
      in
      { Model.n; vertex = label; neighbors = Array.of_list nbrs })
    frame.public_labels

let unique_views_row spec ~rs_edges ~n frame ~copy ~kept_row =
  let nn = Rs.n spec.rs in
  Array.init nn (fun v ->
      let nbrs = ref [] in
      Array.iteri
        (fun e (a, b) ->
          if kept_row.(e) then
            if a = v then nbrs := frame.copy_map.(copy).(b) :: !nbrs
            else if b = v then nbrs := frame.copy_map.(copy).(a) :: !nbrs)
        rs_edges;
      {
        Model.n;
        vertex = frame.copy_map.(copy).(v);
        neighbors = Array.of_list (List.sort compare !nbrs);
      })

(* Truncate messages are adjacency bitmaps over the labels [< b] —
   insensitive to neighbour order and duplicates — so the hot enumeration
   writes them straight off the mapped edge arrays, skipping the sorted
   view construction entirely. Hash hashes the ordered neighbour
   sequence, so it still goes through the view builders; the test suite
   pins the fast path byte-identical to the view-based messages. *)
let set_bit bytes b u =
  if u < b then
    Bytes.set bytes (u / 8) (Char.chr (Char.code (Bytes.get bytes (u / 8)) lor (1 lsl (u mod 8))))

let truncate_public_message spec ~edge_count frame code label =
  let b = spec.bits in
  let bytes = Bytes.make ((b + 7) / 8) '\000' in
  for i = 0 to spec.k - 1 do
    let row = frame.mapped.(i) in
    for e = 0 to edge_count - 1 do
      if code land (1 lsl ((i * edge_count) + e)) <> 0 then begin
        let a, c = row.(e) in
        if a = label then set_bit bytes b c else if c = label then set_bit bytes b a
      end
    done
  done;
  Bytes.to_string bytes

let truncate_unique_message spec ~rs_edges frame ~copy ~kept_row v =
  let b = spec.bits in
  let bytes = Bytes.make ((b + 7) / 8) '\000' in
  Array.iteri
    (fun e (a, c) ->
      if kept_row.(e) then
        if a = v then set_bit bytes b frame.copy_map.(copy).(c)
        else if c = v then set_bit bytes b frame.copy_map.(copy).(a))
    rs_edges;
  Bytes.to_string bytes

let surviving_mapped spec ~edge_count frame code =
  let acc = ref [] in
  for i = spec.k - 1 downto 0 do
    let row = frame.mapped.(i) in
    for e = edge_count - 1 downto 0 do
      if code land (1 lsl ((i * edge_count) + e)) <> 0 then acc := row.(e) :: !acc
    done
  done;
  List.sort_uniq compare !acc

let frame_views spec ~rs_edges ~edge_count ~n frame code =
  let pviews = public_views ~n frame (surviving_mapped spec ~edge_count frame code) in
  let kept = kept_of_code spec ~edge_count code in
  let uviews =
    Array.concat
      (List.init spec.k (fun i ->
           unique_views_row spec ~rs_edges ~n frame ~copy:i ~kept_row:kept.(i)))
  in
  Array.append pviews uviews

let enumerated_views spec ~sigma ~j ~code =
  let rs_edges = Graph.edges_array spec.rs.Rs.graph in
  let edge_count = Array.length rs_edges in
  let nn = Rs.n spec.rs in
  let rr = spec.rs.Rs.r in
  let n = nn - (2 * rr) + (2 * rr * spec.k) in
  let frame = build_frame spec ~rs_edges ~sigma ~sigma_id:0 j in
  frame_views spec ~rs_edges ~edge_count ~n frame code

(* Per-player messages of one outcome on the path [analyze] actually
   takes: the Truncate bitmap fast path (no views), the view-based
   [message] for Hash. Exported so the test suite can pin it
   byte-identical to [message] over the reference views. *)
let enumerated_messages spec ~sigma ~j ~code =
  let rs_edges = Graph.edges_array spec.rs.Rs.graph in
  let edge_count = Array.length rs_edges in
  let nn = Rs.n spec.rs in
  let rr = spec.rs.Rs.r in
  let n = nn - (2 * rr) + (2 * rr * spec.k) in
  let frame = build_frame spec ~rs_edges ~sigma ~sigma_id:0 j in
  match spec.strategy with
  | Hash -> Array.map (message spec) (frame_views spec ~rs_edges ~edge_count ~n frame code)
  | Truncate ->
      let kept = kept_of_code spec ~edge_count code in
      let publics =
        Array.map (truncate_public_message spec ~edge_count frame code) frame.public_labels
      in
      let uniques =
        Array.concat
          (List.init spec.k (fun i ->
               Array.init nn
                 (truncate_unique_message spec ~rs_edges frame ~copy:i ~kept_row:kept.(i))))
      in
      Array.append publics uniques

(* A frame plus everything per-copy that only depends on that copy's
   2^|E| edge-drop pattern: the unique players of copy i see copy-i edges
   only, so their concatenated transcript Π(U_i), the survivor code
   M_{i,J}, and the copy's certified-recovery count all take just
   2^|E| values per frame — memoising them here means each is built once
   per frame instead of once per each of the 2^(k·|E|) cells. *)
type frame_prep = {
  frame : frame;
  pi_u : string array array;  (** [pi_u.(i).(p)]: Π(U_i) under copy-i pattern [p] *)
  m_code : int array array;
  rec_cnt : int array array;
}

let prep_frame spec ~rs_edges ~edge_count ~n frame =
  let patterns = 1 lsl edge_count in
  let per_copy build = Array.init spec.k (fun i -> Array.init patterns (build i)) in
  let row_of p = Array.init edge_count (fun e -> p land (1 lsl e) <> 0) in
  let nn = Rs.n spec.rs in
  let pi_u =
    per_copy (fun i p ->
        let kept_row = row_of p in
        let buf = Buffer.create 64 in
        (match spec.strategy with
        | Truncate ->
            for v = 0 to nn - 1 do
              Buffer.add_string buf (truncate_unique_message spec ~rs_edges frame ~copy:i ~kept_row v);
              Buffer.add_char buf '|'
            done
        | Hash ->
            Array.iter
              (fun view ->
                Buffer.add_string buf (message spec view);
                Buffer.add_char buf '|')
              (unique_views_row spec ~rs_edges ~n frame ~copy:i ~kept_row));
        Buffer.contents buf)
  in
  let m_code =
    per_copy (fun _ p ->
        Array.fold_left
          (fun acc idx -> (acc lsl 1) lor (if p land (1 lsl idx) <> 0 then 1 else 0))
          0 frame.match_idx)
  in
  (* Certifying referee (Truncate only): a surviving special edge (i,(a,b))
     is output iff one endpoint's transmitted bitmap prefix covers the
     other endpoint's label, so the referee is certain it exists. *)
  let rec_cnt =
    per_copy (fun i p ->
        match spec.strategy with
        | Hash -> 0
        | Truncate ->
            let count = ref 0 in
            Array.iteri
              (fun pos idx ->
                if p land (1 lsl idx) <> 0 then begin
                  let a, b = frame.special.(i).(pos) in
                  if a < spec.bits || b < spec.bits then incr count
                end)
              frame.match_idx;
            !count)
  in
  { frame; pi_u; m_code; rec_cnt }

let build_cell spec ~edge_count ~n prep code =
  let frame = prep.frame in
  let mask = (1 lsl edge_count) - 1 in
  let pat i = (code lsr (i * edge_count)) land mask in
  let buf = Buffer.create 64 in
  (match spec.strategy with
  | Truncate ->
      Array.iter
        (fun label ->
          Buffer.add_string buf (truncate_public_message spec ~edge_count frame code label);
          Buffer.add_char buf '|')
        frame.public_labels
  | Hash ->
      Array.iter
        (fun view ->
          Buffer.add_string buf (message spec view);
          Buffer.add_char buf '|')
        (public_views ~n frame (surviving_mapped spec ~edge_count frame code)));
  let pi_public = Buffer.contents buf in
  let pi_unique = Array.init spec.k (fun i -> prep.pi_u.(i).(pat i)) in
  let m_codes = Array.init spec.k (fun i -> prep.m_code.(i).(pat i)) in
  let recovered = ref 0 in
  for i = 0 to spec.k - 1 do
    recovered := !recovered + prep.rec_cnt.(i).(pat i)
  done;
  {
    sigma_id = frame.frame_sigma_id;
    j = frame.frame_j;
    m_codes;
    pi_public;
    pi_unique;
    recovered = !recovered;
  }

let analyze spec =
  let rs = spec.rs in
  let edge_count = Graph.m rs.Rs.graph in
  if spec.k * edge_count > 16 then invalid_arg "Accounting.analyze: space too large";
  if spec.k < 1 || spec.bits < 0 then invalid_arg "Accounting.analyze: spec";
  let tt = rs.Rs.t_count and rr = rs.Rs.r in
  let nn = Rs.n rs in
  let n = nn - (2 * rr) + (2 * rr * spec.k) in
  let sigmas =
    match spec.sigma_mode with
    | Fix_sigma -> [| Array.init n (fun v -> v) |]
    | Enumerate_sigma ->
        if n > 7 then invalid_arg "Accounting.analyze: n too large to enumerate sigma";
        Array.of_list (permutations n)
  in
  let rs_edges = Graph.edges_array rs.Rs.graph in
  let code_count = 1 lsl (spec.k * edge_count) in
  let per_sigma = tt * code_count in
  let preps =
    Array.init
      (Array.length sigmas * tt)
      (fun f ->
        prep_frame spec ~rs_edges ~edge_count ~n
          (build_frame spec ~rs_edges ~sigma:sigmas.(f / tt) ~sigma_id:(f / tt) (f mod tt)))
  in
  let cells =
    Array.init (Array.length sigmas * per_sigma) (fun idx ->
        let sigma_id = idx / per_sigma in
        let rest = idx mod per_sigma in
        let j = rest / code_count in
        build_cell spec ~edge_count ~n preps.((sigma_id * tt) + j) (rest mod code_count))
  in
  let space = Infotheory.Space.uniform (List.init (Array.length cells) (fun i -> i)) in
  (* RV keys are materialised once per outcome and shared across every
     entropy pass below: the passes only consume the keys through
     structural hashing/equality, so sharing cannot change any table —
     it only stops each pass re-boxing the same lists and tuples. *)
  let m_keys = Array.map (fun c -> Array.to_list c.m_codes) cells in
  let given_keys = Array.map (fun c -> (c.sigma_id, c.j)) cells in
  let pi_keys =
    Array.map (fun c -> (c.pi_public, Array.to_list c.pi_unique)) cells
  in
  let given_rv i = given_keys.(i) in
  let m_rv i = m_keys.(i) in
  let m_i_rv copy i = cells.(i).m_codes.(copy) in
  let pi_p_rv i = cells.(i).pi_public in
  let pi_u_rv copy i = cells.(i).pi_unique.(copy) in
  let pi_rv i = pi_keys.(i) in
  let module E = Infotheory.Entropy in
  let info = E.conditional_mutual_information space m_rv pi_rv ~given:given_rv in
  let h_m_given_pi = E.conditional_entropy space m_rv ~given:(E.pair pi_rv given_rv) in
  let kr = float_of_int (spec.k * rr) in
  let expected_recovered =
    Infotheory.Space.expectation space (fun i -> float_of_int cells.(i).recovered)
  in
  let h_public = E.entropy space pi_p_rv in
  let per_copy_info =
    Array.init spec.k (fun copy ->
        E.conditional_mutual_information space (m_i_rv copy) (pi_u_rv copy) ~given:given_rv)
  in
  let per_copy_h = Array.init spec.k (fun copy -> E.entropy space (pi_u_rv copy)) in
  let sum = Array.fold_left ( +. ) 0. in
  let p_count = nn - (2 * rr) in
  let budget_bound =
    float_of_int spec.bits
    *. (float_of_int p_count +. (float_of_int (spec.k * nn) /. float_of_int tt))
  in
  {
    spec_bits = spec.bits;
    outcomes = Array.length cells;
    sigma_enumerated = spec.sigma_mode = Enumerate_sigma;
    kr;
    info;
    h_m_given_pi;
    eq1_residual = abs_float (info -. (kr -. h_m_given_pi));
    expected_recovered;
    lemma33_slack = kr -. expected_recovered +. 1. -. h_m_given_pi;
    h_public;
    per_copy_info;
    per_copy_h;
    lemma34_slack = h_public +. sum per_copy_info -. info;
    lemma35_slacks =
      Array.init spec.k (fun i -> (per_copy_h.(i) /. float_of_int tt) -. per_copy_info.(i));
    budget_bound;
    theorem_slack = budget_bound -. info;
  }

let all_inequalities_hold report =
  let tol = 1e-6 in
  report.eq1_residual < tol
  && report.lemma33_slack >= -.tol
  && report.lemma34_slack >= -.tol
  && ((not report.sigma_enumerated) || Array.for_all (fun s -> s >= -.tol) report.lemma35_slacks)
  && ((not report.sigma_enumerated) || report.theorem_slack >= -.tol)

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>b=%d outcomes=%d sigma_enumerated=%b kr=%.0f@,\
     I(M;Pi|S,J)=%.4f  H(M|Pi,S,J)=%.4f  eq1_residual=%.2e@,\
     E|M^U|=%.4f  lemma3.3 slack=%.4f@,\
     H(Pi(P))=%.4f  sum I(M_i;Pi(U_i)|S,J)=%.4f  lemma3.4 slack=%.4f@,\
     lemma3.5 slacks=[%s]@,\
     budget bound=%.2f  theorem slack=%.2f@]"
    r.spec_bits r.outcomes r.sigma_enumerated r.kr r.info r.h_m_given_pi r.eq1_residual
    r.expected_recovered r.lemma33_slack r.h_public
    (Array.fold_left ( +. ) 0. r.per_copy_info)
    r.lemma34_slack
    (String.concat "; " (Array.to_list (Array.map (Printf.sprintf "%.4f") r.lemma35_slacks)))
    r.budget_bound r.theorem_slack

(** Executable Claim 3.1: w.p. [>= 1 - 2^{-kr/10}] over [G ~ D_MM], every
    maximal matching of [G] has at least [k·r/4] edges whose endpoints are
    both unique vertices.

    The checker measures both halves of the claim's proof: the Chernoff
    event [|∪_i M_i| >= k·r/3] on the surviving hidden matchings, and the
    counting step (at most [N - 2r] matched edges can touch a public
    vertex). Maximal matchings are generated under several edge orders,
    including an adversarial order that matches public vertices first —
    the order that makes the unique–unique count smallest. *)

type order = Lexicographic | Random of int | Public_first
(** [Public_first] greedily matches every public-touching edge before any
    unique–unique edge — the adversarial case for the claim. *)

val order_name : order -> string

val maximal_matching_under : Hard_dist.t -> order -> Dgraph.Matching.t

type stats = {
  k : int;
  r : int;
  union_special : int;  (** [|∪_i M_i|], surviving hidden edges *)
  chernoff_threshold : float;  (** [k·r/3] *)
  claim_threshold : float;  (** [k·r/4] *)
  failure_bound : float;  (** [2^{-k·r/10}] *)
  per_order : (string * int * bool) list;
      (** (order, unique–unique edges in that maximal matching, is the
          matching really maximal) *)
}

val check : Hard_dist.t -> ?orders:order list -> unit -> stats

val holds : stats -> bool
(** Every tested maximal matching met the [k·r/4] bound. *)

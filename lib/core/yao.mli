(** The averaging step of Theorem 1's proof, executable ("the easy
    direction of Yao's minimax principle" [53]).

    The proof fixes a public-coin protocol for [D_MM] and argues: since
    the distributional success probability is an average over coin
    outcomes, {e some} fixed coin outcome does at least as well, giving a
    deterministic protocol with the same worst-case message length. This
    module performs exactly that step on concrete protocols: evaluate a
    finite set of coin seeds against a sample of instances, and return the
    best fixed seed — whose success rate provably dominates the average.

    (The converse hard direction — distributional lower bounds imply
    randomized ones — is what makes analysing [D_MM] sufficient.) *)

type 'i report = {
  per_seed : (int * float) list;  (** success rate of each fixed seed *)
  average : float;  (** randomized (coin-averaged) success rate *)
  best_seed : int;
  best_rate : float;  (** [>= average], always *)
}

val derandomize :
  seeds:int list ->
  instances:'i array ->
  run:(Sketchmodel.Public_coins.t -> 'i -> bool) ->
  'i report
(** Requires non-empty [seeds] and [instances]. *)

val dominates : 'i report -> bool
(** [best_rate >= average] — the inequality the proof step rests on;
    always true, asserted in tests and the T13 experiment. *)

(* T11: k-forest edge-connectivity certificates and bipartiteness from
   sketches, over a fixed workload suite (DESIGN.md §4). *)

module T = Report.Tabular
module R = Exp_registry
module Graph = Dgraph.Graph
module Model = Sketchmodel.Model
module Public_coins = Sketchmodel.Public_coins

type row = {
  workload : string;
  k_cert : int;
  cert_valid : bool;
  estimate : int;
  truth : int;
  bipartite_sketch : bool;
  bipartite_truth : bool;
  conn_bits : int;
}

let compute ~seed =
  let rng = Stdx.Prng.create (Stdx.Hashing.mix64 seed) in
  let coins = Public_coins.create (Stdx.Hashing.mix64 (seed + 1)) in
  let workloads =
    [
      ("cycle(16)", Dgraph.Gen.cycle 16, 3);
      ("complete(9)", Dgraph.Gen.complete 9, 4);
      ("path(12)", Dgraph.Gen.path 12, 2);
      ("gnp(48,.25)", Dgraph.Gen.gnp rng 48 0.25, 4);
      ("bipartite(14,12)", Dgraph.Gen.random_bipartite rng ~left:14 ~right:12 ~p:0.5, 3);
      ("2 components", Graph.disjoint_union (Dgraph.Gen.cycle 6) (Dgraph.Gen.complete 5), 2);
    ]
  in
  List.map
    (fun (workload, g, k) ->
      let cert, stats = Agm.Connectivity.k_forests g ~k coins in
      let bip, _ = Agm.Connectivity.is_bipartite_via_sketches g coins in
      {
        workload;
        k_cert = k;
        cert_valid = Agm.Connectivity.certificate_valid g ~k cert;
        estimate = Agm.Connectivity.edge_connectivity_estimate cert ~k;
        truth = (let c = Dgraph.Mincut.min_cut g in if c = max_int then 0 else min k c);
        bipartite_sketch = bip;
        bipartite_truth = Agm.Connectivity.is_bipartite_exact g;
        conn_bits = stats.Model.max_bits;
      })
    workloads

let schema =
  [
    T.str_col ~width:18 ~left:true "workload";
    T.int_col ~width:4 ~header:"k" "k_cert";
    T.bool_col ~width:7 ~header:"valid" "cert_valid";
    T.int_col ~width:5 ~header:"est" "estimate";
    T.int_col ~width:6 ~header:"truth" "truth";
    T.bool_col ~width:11 ~header:"bip-sketch" "bipartite_sketch";
    T.bool_col ~width:10 ~header:"bip-truth" "bipartite_truth";
    T.int_col ~width:10 ~header:"bits" "conn_bits";
  ]

let to_row r =
  T.
    [
      Str r.workload;
      Int r.k_cert;
      Bool r.cert_valid;
      Int r.estimate;
      Int r.truth;
      Bool r.bipartite_sketch;
      Bool r.bipartite_truth;
      Int r.conn_bits;
    ]

let preamble =
  [ ""; "T11. Edge connectivity (k-forest certificate) and bipartiteness from sketches" ]

let experiment : R.experiment =
  (module struct
    type nonrec row = row

    let id = "connectivity"
    let title = "T11"
    let doc = "T11: k-forest edge-connectivity and bipartiteness sketches."

    let params = R.std_params []
    let schema = schema
    let to_row = to_row
    let run ps = compute ~seed:(R.seed ps)
    let preamble _ _ = preamble
    let footer _ = []
    let fast_overrides = [ ("seed", R.Vint 43) ]
    let full_overrides = [ ("seed", R.Vint 43) ]
    let smoke = [ ("seed", R.Vint 43) ]
  end)

let table_of rows = T.table ~preamble schema (List.map to_row rows)

(* T10: dynamic streams = linear sketches, bit for bit (DESIGN.md §4). *)

module T = Report.Tabular
module R = Exp_registry
module Graph = Dgraph.Graph
module Public_coins = Sketchmodel.Public_coins

type row = {
  sn : int;
  decoys : int;
  events : int;
  forest_ok : bool;
  messages_identical : bool;
  greedy_mm_ok : bool;
}

let compute ~ns ~seed =
  List.map
    (fun n ->
      let rng = Stdx.Prng.create (Stdx.Hashing.mix64 (seed + (3 * n))) in
      let g = Dgraph.Gen.gnp rng n (6.0 /. float_of_int n) in
      let decoys = Graph.m g in
      let stream = Streams.Stream.with_decoys rng g ~decoys in
      let coins = Public_coins.create (Stdx.Hashing.mix64 (seed * 13 + n)) in
      let proc = Streams.Sketch_stream.create ~n coins in
      Streams.Sketch_stream.feed_all proc stream;
      let forest = Streams.Sketch_stream.spanning_forest proc in
      let insertion_only = Streams.Stream.shuffled rng g in
      let mm = Streams.Insertion_greedy.mm_of_stream insertion_only in
      {
        sn = n;
        decoys;
        events = Streams.Stream.length stream;
        forest_ok = Dgraph.Components.is_spanning_forest g forest;
        messages_identical = Streams.Sketch_stream.messages_equal_distributed proc g;
        greedy_mm_ok = Dgraph.Matching.is_maximal g mm;
      })
    ns

let schema =
  [
    T.int_col ~width:7 ~header:"n" "n";
    T.int_col ~width:8 "decoys";
    T.int_col ~width:8 "events";
    T.bool_col ~width:10 ~header:"forest ok" "forest_ok";
    T.bool_col ~width:11 ~header:"bits equal" "messages_identical";
    T.bool_col ~width:11 ~header:"greedy mm" "greedy_mm_ok";
  ]

let to_row r =
  T.
    [
      Int r.sn;
      Int r.decoys;
      Int r.events;
      Bool r.forest_ok;
      Bool r.messages_identical;
      Bool r.greedy_mm_ok;
    ]

let preamble =
  [ ""; "T10. Dynamic streams = linear sketches (insert/delete decoys, bitwise equality)" ]

let experiment : R.experiment =
  (module struct
    type nonrec row = row

    let id = "streams"
    let title = "T10"
    let doc = "T10: dynamic streams = linear sketches, bit for bit."

    let params = R.std_params [ R.ints_param "n" ~doc:"Graph sizes n." [ 24; 48; 96 ] ]
    let schema = schema
    let to_row = to_row
    let run ps = compute ~ns:(R.ints_value ps "n") ~seed:(R.seed ps)
    let preamble _ _ = preamble
    let footer _ = []
    let fast_overrides = [ ("n", R.Vints [ 24 ]); ("seed", R.Vint 41) ]
    let full_overrides = [ ("n", R.Vints [ 24; 48; 96 ]); ("seed", R.Vint 41) ]
    let smoke = [ ("n", R.Vints [ 16 ]); ("seed", R.Vint 41) ]
  end)

let table_of rows = T.table ~preamble schema (List.map to_row rows)

(* T13: the Yao averaging step — best fixed coins dominate the
   coin-averaged success (DESIGN.md §4). *)

module T = Report.Tabular
module R = Exp_registry
module Model = Sketchmodel.Model
module Rs = Rsgraph.Rs_graph

type row = {
  ym : int;
  ybudget : int;
  randomized : float;
  derandomized : float;
  dominates : bool;
}

let compute ~m ~budgets ~instances ~seeds ~seed =
  let rs = Rs.bipartite m in
  let insts =
    Array.init instances (fun i ->
        Hard_dist.sample rs (Stdx.Prng.create (Stdx.Hashing.mix64 (seed + (i * 53)))))
  in
  let seed_list = List.init seeds (fun i -> Stdx.Hashing.mix64 (seed + (811 * i))) in
  List.map
    (fun budget ->
      let report =
        Yao.derandomize ~seeds:seed_list ~instances:insts ~run:(fun coins dmm ->
            let p =
              Protocols.Sampled_mm.protocol ~budget_bits:budget
                ~strategy:Protocols.Sampled_mm.Uniform
            in
            let out, _ = Model.run p dmm.Hard_dist.graph coins in
            Dgraph.Matching.is_maximal dmm.Hard_dist.graph out)
      in
      {
        ym = m;
        ybudget = budget;
        randomized = report.Yao.average;
        derandomized = report.Yao.best_rate;
        dominates = Yao.dominates report;
      })
    budgets

let schema =
  [
    T.int_col ~width:6 ~header:"m" "m";
    T.int_col ~width:9 ~header:"bits" "budget_bits";
    T.float_col ~width:12 ~digits:3 "randomized";
    T.float_col ~width:14 ~digits:3 "derandomized";
    T.bool_col ~width:10 "dominates";
  ]

let to_row r =
  T.[ Int r.ym; Int r.ybudget; Float r.randomized; Float r.derandomized; Bool r.dominates ]

let preamble =
  [ ""; "T13. The averaging step: best fixed coins >= coin-averaged success (Yao [53])" ]

let experiment : R.experiment =
  (module struct
    type nonrec row = row

    let id = "yao"
    let title = "T13"
    let doc = "T13: derandomization by averaging on D_MM."

    let params =
      R.std_params
        [
          R.int_param "m" ~doc:"RS parameter m." 10;
          R.ints_param "budgets" ~doc:"Budgets in bits." [ 16; 32; 48 ];
          R.int_param "instances" ~doc:"Sampled instances." 20;
          R.int_param "seeds" ~doc:"Coin seeds evaluated." 8;
        ]

    let schema = schema
    let to_row = to_row

    let run ps =
      compute ~m:(R.int_value ps "m") ~budgets:(R.ints_value ps "budgets")
        ~instances:(R.int_value ps "instances") ~seeds:(R.int_value ps "seeds")
        ~seed:(R.seed ps)

    let preamble _ _ = preamble
    let footer _ = []

    let fast_overrides =
      [ ("instances", R.Vint 8); ("seeds", R.Vint 4); ("seed", R.Vint 61) ]

    let full_overrides =
      [ ("instances", R.Vint 20); ("seeds", R.Vint 8); ("seed", R.Vint 61) ]

    let smoke =
      [ ("m", R.Vint 4); ("budgets", R.Vints [ 16 ]); ("instances", R.Vint 2); ("seeds", R.Vint 2) ]
  end)

let table_of rows = T.table ~preamble schema (List.map to_row rows)

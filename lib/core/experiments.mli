(** The experiment suite: one function per table/figure of DESIGN.md §4.

    Each function returns plain row records (so tests can assert on them)
    and has a matching [print_*] that renders the table the bench harness
    and the CLI show. Sizes are chosen so the whole suite runs in a couple
    of minutes; every knob is exposed for larger runs from the CLI.

    This module is a compatibility facade: each table now lives in its own
    [Exp_*] module, registered with {!Exp_registry} (see {!Exp_all}), and
    renders through {!Report.Tabular}. The functions here delegate; new
    experiments should implement {!Exp_registry.EXPERIMENT} instead of
    adding entry points here. *)

(** {1 T1 — Proposition 2.1: RS graph parameters} *)

type rs_verified_row = { row : Rsgraph.Params.rs_row; verified : bool }

val rs_table : ms:int list -> rs_verified_row list
val print_rs_table : rs_verified_row list -> unit

(** {1 T2 — Behrend's theorem: 3-AP-free set sizes} *)

type behrend_row = {
  m : int;
  greedy_size : int;
  behrend_size : int;
  best_size : int;
  exact_size : int option;  (** branch-and-bound optimum, small [m] only *)
  rate : float;  (** [ln(m/best) / √(ln m)], the Behrend exponent constant *)
}

val behrend_table : ms:int list -> behrend_row list
val print_behrend_table : behrend_row list -> unit

(** {1 T2b — alternative RS families: random packing vs Behrend}

    The paper cites several incomparable RS constructions; this table
    measures the [t] achieved by greedy random induced-matching packing
    ({!Rsgraph.Packed}) against the Behrend-based construction at equal
    [(N, r)] — packing wins at small [N], the additive-combinatorics
    construction asymptotically. *)

type packing_row = {
  pn : int;  (** vertices N *)
  pr : int;  (** matching size r *)
  packed_t : int;
  behrend_t : int;
  tries : int;
}

val packing_table : ?jobs:int -> ms:int list -> tries:int -> seed:int -> unit -> packing_row list
val print_packing_table : packing_row list -> unit

(** {1 T3 — Claim 3.1} *)

type claim_row = {
  m : int;
  k : int;
  r : int;
  n : int;
  samples : int;
  min_union : int;  (** min over samples of [|∪_i M_i|] *)
  mean_union : float;
  chernoff_threshold : float;
  min_unique_unique : int;  (** min over samples and orders *)
  claim_threshold : float;
  violations : int;  (** samples where some maximal matching fell below [k·r/4] *)
  failure_bound : float;  (** the claim's own failure probability [2^{-kr/10}] *)
  consistent : bool;
      (** violation rate within 3 binomial standard deviations of the
          theoretical bound (the claim is probabilistic; at small [k·r]
          occasional violations are {e predicted}) *)
}

val claim31 : ?jobs:int -> ms:int list -> samples:int -> seed:int -> unit -> claim_row list
val print_claim31 : claim_row list -> unit

(** {1 F4 — Theorem 1's shape: budget sweep on [D_MM]} *)

type sweep_row = {
  budget_bits : int;
  strategy : string;
  special_recovered : float;  (** mean fraction of surviving hidden edges in the output *)
  relaxed_success : float;
      (** Remark 3.6(iv): output is a valid disjoint edge set with
          [>= k·r/4] unique–unique edges of [G] *)
  maximal_success : float;  (** output is a maximal matching of [G] *)
}

type sweep = {
  m : int;
  k : int;
  r : int;
  n : int;
  predicted_bits : float;  (** Theorem 1 arithmetic at these parameters *)
  oracle_success : float;
      (** ablation: players told [σ, j*] succeed (relaxed) with [O(log n)] bits *)
  oracle_bits : int;
  rows : sweep_row list;
}

val budget_sweep :
  ?jobs:int -> m:int -> ?k:int -> budgets:int list -> trials:int -> seed:int -> unit -> sweep
val print_budget_sweep : sweep -> unit

(** {1 F5 — Lemmas 3.3–3.5: exact accounting} *)

val info_accounting : bits:int list -> Accounting.report list
(** Runs both Σ modes ({!Accounting.tiny_rs} enumerated, then
    {!Accounting.micro_rs} fixed) for each budget. *)

val print_info_accounting : Accounting.report list -> unit

(** {1 F5b — sampled information estimates vs exact}

    The plug-in MI estimator ({!Infotheory.Estimate}) evaluated on i.i.d.
    samples of the micro instance, against the exact enumeration of F5 —
    quantifying the sampling error a larger-instance audit would incur. *)

type estimate_row = {
  ebits : int;
  samples : int;
  exact_info : float;
  estimated_info : float;
  abs_error : float;
}

val estimate_accounting :
  ?jobs:int -> bits:int list -> samples:int -> seed:int -> unit -> estimate_row list
val print_estimate_accounting : estimate_row list -> unit

(** {1 T6 — Section 1 landscape: upper-bound protocol costs} *)

type ub_row = {
  n : int;
  agm_forest_bits : int;  (** AGM spanning forest, per-player max *)
  agm_ok : bool;
  coloring_bits : int;
  coloring_ok : bool;
  trivial_mm_bits : int;
  two_round_mm_bits : int;  (** both rounds, per-player max *)
  two_round_mm_ok : bool;
  two_round_mis_bits : int;
  two_round_mis_ok : bool;
}

val upper_bounds : ns:int list -> seed:int -> ub_row list
val print_upper_bounds : ub_row list -> unit

(** {1 T6b — the coloring contrast on dense graphs}

    Palette sparsification beats the trivial protocol only once
    [Δ ≫ log² n]; this table uses dense [G(n, 1/2)] instances, where the
    ratio [coloring/trivial] visibly decays with [n]. *)

type coloring_row = {
  cn : int;
  delta : int;
  list_size : int;
  palette_bits : int;
  full_bits : int;
  ratio : float;
  proper : bool;
}

val coloring_contrast : ns:int list -> seed:int -> coloring_row list
val print_coloring_contrast : coloring_row list -> unit

(** {1 F7 — The gap: lower-bound curve vs upper bounds} *)

type curve_row = {
  m : int;
  n_dmm : int;
  lower_bound_bits : float;  (** Theorem 1 arithmetic *)
  sqrt_n : float;
  trivial_bits : float;
  two_round_bits : float;
}

val bound_curve : ms:int list -> curve_row list
val print_bound_curve : curve_row list -> unit

(** {1 T8 — Theorem 2: the MM→MIS reduction} *)

type reduction_row = {
  m : int;
  samples : int;
  lemma41_all : bool;
  complete_all : bool;  (** output always contained every surviving edge *)
  min_rule_exact_all : bool;  (** the min-side ablation recovered exactly *)
  mean_valid_fraction : float;
  cost_ratio : float;  (** per-G-player bits / per-H-player bits, = 2.0 *)
}

val reduction_check : ms:int list -> samples:int -> seed:int -> reduction_row list
val print_reduction : reduction_row list -> unit

(** {1 F9 — Footnote 1: bridge recovery} *)

type bridge_row = { half : int; samples_per_vertex : int; max_bits : int; success : float }

val bridge : halves:int list -> samples:int list -> trials:int -> seed:int -> bridge_row list
val print_bridge : bridge_row list -> unit

(** {1 F10 — approximate matching vs budget (the [AKLY16] connection)} *)

type approx_row = {
  an : int;
  abudget : int;
  ratio_mean : float;  (** output size / maximum matching (Blossom oracle) *)
  ratio_min : float;
}

val approx_matching : ns:int list -> budgets:int list -> trials:int -> seed:int -> approx_row list
val print_approx_matching : approx_row list -> unit

(** {1 F11 — ablation: decoupling k from t}

    The proof sets [k = t]. The bound arithmetic degrades linearly as [k]
    shrinks, while the natural sampling protocol's measured threshold is
    [k]-independent (each unique player faces the same local task
    whatever [k] is) — so the lower bound is tightest exactly at the
    paper's choice [k = t]. *)

type k_sweep_row = {
  kk : int;
  kt_ratio : float;
  predicted : float;  (** Theorem 1 arithmetic at this k *)
  threshold_bits : int option;  (** smallest tested budget with relaxed success >= 1/2 *)
}

val k_sweep :
  m:int -> ks:int list -> budgets:int list -> trials:int -> seed:int -> k_sweep_row list
val print_k_sweep : k_sweep_row list -> unit

(** {1 T10 — dynamic streams = linear sketches} *)

type stream_row = {
  sn : int;
  decoys : int;
  events : int;
  forest_ok : bool;
  messages_identical : bool;  (** streamed state = one-round messages, bitwise *)
  greedy_mm_ok : bool;  (** insertion-only greedy still fine without deletions *)
}

val stream_table : ns:int list -> seed:int -> stream_row list
val print_stream_table : stream_row list -> unit

(** {1 T11 — further AGM positives: edge connectivity and bipartiteness} *)

type connectivity_row = {
  workload : string;
  k_cert : int;
  cert_valid : bool;
  estimate : int;
  truth : int;
  bipartite_sketch : bool;
  bipartite_truth : bool;
  conn_bits : int;
}

val connectivity_table : seed:int -> connectivity_row list
val print_connectivity_table : connectivity_row list -> unit

(** {1 T12 — why one round fails and one more round suffices, on D_MM} *)

type rounds_row = {
  rm : int;
  one_round_undominated : float;  (** local-minima MIS: undominated fraction *)
  one_round_bits : int;
  two_round_mm_maximal : bool;
  two_round_mm_bits : int;
  two_round_mis_maximal : bool;
  two_round_mis_bits : int;
  sqrt_n_dmm : float;
}

val rounds_table : ms:int list -> seed:int -> rounds_row list
val print_rounds_table : rounds_row list -> unit

(** {1 T13 — the averaging (Yao) step}

    Fixing the best coin seed does at least as well as the coin-averaged
    protocol on the sampled distribution — the derandomization step at the
    start of Theorem 1's proof, run on real [D_MM] instances. *)

type yao_row = {
  ym : int;
  ybudget : int;
  randomized : float;  (** coin-averaged success *)
  derandomized : float;  (** best fixed seed *)
  dominates : bool;
}

val yao_table : m:int -> budgets:int list -> instances:int -> seeds:int -> seed:int -> yao_row list
val print_yao_table : yao_row list -> unit

(** {1 T14 — the rounds/bandwidth trade-off in the BCC}

    Result 1 reads as a one-round broadcast-congested-clique bound; with
    [O(log n)] rounds, maximal matching needs only [O(log n)] bits per
    round (proposal/resolution, Israeli–Itai style). This table shows the
    measured frontier: per-round bits stay tiny while one-round protocols
    below the [Ω(√n)]-ish threshold fail on the same instances. *)

type bcc_row = {
  bn : int;  (** vertices of the D_MM instance *)
  bcc_rounds : int;
  bcc_bits_per_round : int;
  bcc_total_bits : int;
  bcc_maximal : bool;
  one_round_same_budget_maximal : float;
      (** success of a one-round protocol given the same {e per-round}
          bandwidth (the BCC cost measure) *)
}

val bcc_table : ms:int list -> trials:int -> seed:int -> bcc_row list
val print_bcc_table : bcc_row list -> unit

(** {1 P1 — the deterministic parallel trial engine}

    The Monte-Carlo loops above ([claim31], [budget_sweep],
    [estimate_accounting], [packing_table]) take an optional [?jobs]
    argument and shard their independent trials over that many OCaml 5
    domains via {!Stdx.Parallel}. Trial [i] derives its generator as
    [Prng.split root i], so every table is bit-identical at every job
    count; this report measures the wall-clock side of that claim. *)

type speedup_row = {
  pjobs : int;
  wall_s : float;
  speedup : float;  (** wall-clock at [jobs=1] / wall-clock at [pjobs] *)
  identical : bool;  (** rows structurally equal to the [jobs=1] rows *)
}

val parallel_speedup :
  ?jobs:int -> m:int -> samples:int -> seed:int -> unit -> speedup_row list
(** Times [claim31 ~ms:[m] ~samples] at job counts [1, 2, 4, jobs]
    (deduplicated, capped at [jobs]; default
    [Stdx.Parallel.default_jobs ()]) and checks each run's rows against
    the sequential reference. *)

val print_parallel_speedup : m:int -> samples:int -> speedup_row list -> unit

(** {1 Everything} *)

val run_all : ?fast:bool -> ?jobs:int -> unit -> unit
(** Print every table at default sizes ([fast] shrinks them for tests),
    sharding the Monte-Carlo tables over [jobs] domains (default: the
    runtime's recommended count; results are identical either way) and
    reporting per-table wall-clock. *)

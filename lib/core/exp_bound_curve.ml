(* F7: Theorem 1 arithmetic vs upper bounds along the construction curve
   (DESIGN.md §4). *)

module T = Report.Tabular
module R = Exp_registry
module Rs = Rsgraph.Rs_graph
module Params = Rsgraph.Params

type row = {
  m : int;
  n_dmm : int;
  lower_bound_bits : float;
  sqrt_n : float;
  trivial_bits : float;
  two_round_bits : float;
}

let compute ~ms =
  List.map
    (fun m ->
      let rs = Rs.bipartite m in
      let bound = Params.bound_of_rs rs ~k:rs.Rs.t_count in
      {
        m;
        n_dmm = bound.Params.n_vertices;
        lower_bound_bits = bound.Params.bits_lower_bound;
        sqrt_n = sqrt (float_of_int bound.Params.n_vertices);
        trivial_bits = bound.Params.trivial_upper_bound;
        two_round_bits = bound.Params.two_round_upper_bound;
      })
    ms

(* Column order follows the classic printout: the two-round upper bound
   sits left of the trivial one. *)
let schema =
  [
    T.int_col ~width:6 "m";
    T.int_col ~width:9 ~header:"n" "n_dmm";
    T.float_col ~width:12 ~digits:2 ~header:"LB bits" "lower_bound_bits";
    T.float_col ~width:9 ~digits:1 ~header:"sqrt(n)" "sqrt_n";
    T.float_col ~width:14 ~digits:1 ~header:"2-round UB" "two_round_bits";
    T.float_col ~width:14 ~digits:1 ~header:"trivial UB" "trivial_bits";
  ]

let to_row r =
  T.
    [
      Int r.m;
      Int r.n_dmm;
      Float r.lower_bound_bits;
      Float r.sqrt_n;
      Float r.two_round_bits;
      Float r.trivial_bits;
    ]

let preamble = [ ""; "F7. Theorem 1 arithmetic vs upper bounds along the construction curve" ]

let experiment : R.experiment =
  (module struct
    type nonrec row = row

    let id = "bound-curve"
    let title = "F7"
    let doc = "F7: Theorem 1 arithmetic vs upper bounds along the curve."

    let params =
      R.std_params
        ~seed_doc:"Random seed (unused: the curve is closed-form)."
        [ R.ints_param "m" ~doc:"RS parameters m." [ 10; 25; 50; 100; 200; 400 ] ]

    let schema = schema
    let to_row = to_row
    let run ps = compute ~ms:(R.ints_value ps "m")
    let preamble _ _ = preamble
    let footer _ = []
    let fast_overrides = [ ("m", R.Vints [ 10; 50 ]) ]
    let full_overrides = [ ("m", R.Vints [ 10; 25; 50; 100; 200; 400 ]) ]
    let smoke = [ ("m", R.Vints [ 5; 20 ]) ]
  end)

let table_of rows = T.table ~preamble schema (List.map to_row rows)

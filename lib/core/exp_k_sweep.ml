(* F11: ablation decoupling k from t at fixed m (DESIGN.md §4). *)

module T = Report.Tabular
module R = Exp_registry
module Rs = Rsgraph.Rs_graph
module Params = Rsgraph.Params

type row = {
  kk : int;
  kt_ratio : float;
  predicted : float;
  threshold_bits : int option;
}

let compute ~m ~ks ~budgets ~trials ~seed =
  let rs = Rs.bipartite m in
  List.map
    (fun k ->
      let sweep = Exp_budget_sweep.compute ~m ~k ~budgets ~trials ~seed () in
      let uniform_rows =
        List.filter (fun r -> r.Exp_budget_sweep.strategy = "uniform") sweep.Exp_budget_sweep.rows
        |> List.sort (fun a b ->
               compare a.Exp_budget_sweep.budget_bits b.Exp_budget_sweep.budget_bits)
      in
      let threshold =
        List.find_opt (fun r -> r.Exp_budget_sweep.relaxed_success >= 0.5) uniform_rows
        |> Option.map (fun r -> r.Exp_budget_sweep.budget_bits)
      in
      let bound = Params.bound_of_rs rs ~k in
      {
        kk = k;
        kt_ratio = float_of_int k /. float_of_int rs.Rs.t_count;
        predicted = bound.Params.bits_lower_bound;
        threshold_bits = threshold;
      })
    ks

let schema =
  [
    T.int_col ~width:6 ~header:"k" "k";
    T.float_col ~width:8 ~digits:2 ~header:"k/t" "kt_ratio";
    T.float_col ~width:12 ~digits:4 ~header:"LB bits" "predicted";
    T.opt_col ~none:">max tested" (T.int_col ~width:16 ~header:"threshold bits" "threshold_bits");
  ]

let to_row r =
  T.
    [
      Int r.kk;
      Float r.kt_ratio;
      Float r.predicted;
      Opt (Option.map (fun b -> Int b) r.threshold_bits);
    ]

let preamble =
  [
    "";
    "F11. Ablation — decoupling k from t (m fixed). The information bound grows";
    "     linearly with k while the natural protocol's per-player threshold is";
    "     k-independent: the lower bound is tightest at the paper's choice k = t.";
  ]

let experiment : R.experiment =
  (module struct
    type nonrec row = row

    let id = "k-sweep"
    let title = "F11"
    let doc = "F11: ablation decoupling k from t."

    let params =
      R.std_params
        [
          R.int_param "m" ~doc:"RS parameter m." 25;
          R.ints_param "k" ~doc:"Values of k." [ 3; 6; 12; 25 ];
          R.ints_param "budgets" ~doc:"Budgets in bits." [ 4; 8; 16; 32; 64; 128 ];
          R.int_param "trials" ~doc:"Trials per configuration." 8;
        ]

    let schema = schema
    let to_row = to_row

    let run ps =
      compute ~m:(R.int_value ps "m") ~ks:(R.ints_value ps "k")
        ~budgets:(R.ints_value ps "budgets") ~trials:(R.int_value ps "trials") ~seed:(R.seed ps)

    let preamble _ _ = preamble
    let footer _ = []
    let fast_overrides = [ ("k", R.Vints [ 5; 25 ]); ("trials", R.Vint 3); ("seed", R.Vint 37) ]

    let full_overrides =
      [ ("k", R.Vints [ 3; 6; 12; 25 ]); ("trials", R.Vint 8); ("seed", R.Vint 37) ]

    let smoke =
      [ ("m", R.Vint 4); ("k", R.Vints [ 2 ]); ("budgets", R.Vints [ 8 ]); ("trials", R.Vint 2) ]
  end)

let table_of rows = T.table ~preamble schema (List.map to_row rows)

(** The experiment catalogue: every DESIGN.md §4 table, registered at
    module-initialisation time in the canonical [run_all] order — any
    code that touches this module (the CLI, the bench driver, the tests)
    sees a fully-populated {!Exp_registry}, and because the list is an
    explicit value the linker can never drop an experiment module. *)

val experiments : Exp_registry.experiment list
(** The canonical ordered catalogue (registered as a side effect of
    module initialisation). *)

val find : string -> Exp_registry.experiment option
(** Look an experiment up by id; {!Exp_registry.find} with the
    catalogue guaranteed populated. *)

val all : unit -> Exp_registry.experiment list
(** Every registered experiment in registration order. *)

val run_all :
  ?fast:bool ->
  ?jobs:int ->
  ?format:Report.Tabular.format ->
  ?out:out_channel ->
  unit ->
  unit
(** Run every experiment at its [all] (or [all --fast]) sizes. Text
    format interleaves tables with wall-time lines on [out] (classic
    [run_all] output); CSV/JSON keep [out] clean — rows only, each
    stamped with its experiment id — and push timing lines to stderr. *)

(* T15: hypergraph MM/MIS through the sketching model — the k-uniform
   generalisation served end-to-end (DESIGN.md §11).

   For each arity k, a random k-uniform hypergraph goes through three
   protocols with exact bit accounting: the trivial one-round MM (ship
   every incident pin set), the iterated proposal MM (multi-round, one
   broadcast per round) and the Luby-style multi-round MIS. The verdict
   columns are referee-blind checks by [Hmatching]/[Hmis]; at k = 2 the
   numbers coincide with the ordinary graph protocols. *)

module T = Report.Tabular
module R = Exp_registry
module Public_coins = Sketchmodel.Public_coins
module H = Dgraph.Hypergraph

type row = {
  k : int;
  hm : int;
  triv_bits : int;
  triv_ok : bool;
  msize : int;
  it_rounds : int;
  it_bits : int;
  it_bcast : int;
  it_ok : bool;
  luby_rounds : int;
  luby_bits : int;
  luby_ok : bool;
}

(* Pin sets back to frozen edge ids; a maximal matching of real edges is
   the only acceptable outcome for both MM protocols. *)
let matching_ok h pin_sets =
  let ids = List.map (fun pins -> H.find_edge h pins) pin_sets in
  List.for_all Option.is_some ids
  && Dgraph.Hmatching.is_maximal h (List.filter_map Fun.id ids)

let compute ~n ~m ~ks ~seed =
  List.map
    (fun k ->
      let rng = Stdx.Prng.create (Stdx.Hashing.mix64 (seed + (k * 7919))) in
      let h = Dgraph.Hgen.uniform_random rng ~n ~m ~k in
      let coins = Public_coins.create (Stdx.Hashing.mix64 ((seed * 31) + k)) in
      let triv, triv_stats = Protocols.Hyper_mm.run_trivial h coins in
      let it, it_stats = Protocols.Hyper_mm.run_iterated h coins in
      let mis, mis_stats = Protocols.Hyper_mis.run_luby h coins in
      let mis_verdict = Dgraph.Hmis.verify h mis in
      {
        k;
        hm = H.m h;
        triv_bits = triv_stats.Sketchmodel.Model.max_bits;
        triv_ok = matching_ok h triv;
        msize = List.length it;
        it_rounds = it_stats.Protocols.Hyper_views.rounds;
        it_bits = it_stats.Protocols.Hyper_views.max_bits;
        it_bcast = it_stats.Protocols.Hyper_views.broadcast_bits;
        it_ok = matching_ok h it;
        luby_rounds = mis_stats.Protocols.Hyper_views.rounds;
        luby_bits = mis_stats.Protocols.Hyper_views.max_bits;
        luby_ok = mis_verdict.Dgraph.Hmis.independent && mis_verdict.Dgraph.Hmis.maximal;
      })
    ks

let schema =
  [
    T.int_col ~width:4 "k";
    T.int_col ~width:5 ~header:"m" "hm";
    T.int_col ~width:9 ~header:"triv bits" "triv_bits";
    T.bool_col ~width:8 ~header:"triv ok" "triv_ok";
    T.int_col ~width:6 ~header:"|M|" "msize";
    T.int_col ~width:7 ~header:"it rds" "it_rounds";
    T.int_col ~width:8 ~header:"it bits" "it_bits";
    T.int_col ~width:8 ~header:"bcast" "it_bcast";
    T.bool_col ~width:7 ~header:"it ok" "it_ok";
    T.int_col ~width:8 ~header:"mis rds" "luby_rounds";
    T.int_col ~width:9 ~header:"mis bits" "luby_bits";
    T.bool_col ~width:7 ~header:"mis ok" "luby_ok";
  ]

let to_row r =
  T.
    [
      Int r.k;
      Int r.hm;
      Int r.triv_bits;
      Bool r.triv_ok;
      Int r.msize;
      Int r.it_rounds;
      Int r.it_bits;
      Int r.it_bcast;
      Bool r.it_ok;
      Int r.luby_rounds;
      Int r.luby_bits;
      Bool r.luby_ok;
    ]

let preamble =
  [ ""; "T15. Hypergraph MM/MIS: trivial one-round vs iterated proposals vs Luby rounds" ]

let experiment : R.experiment =
  (module struct
    type nonrec row = row

    let id = "hypergraph-mm"
    let title = "T15"
    let doc = "T15: hypergraph MM/MIS protocols over the k-uniform workload."

    let params =
      R.std_params
        [
          R.int_param "n" ~doc:"Vertices." 60;
          R.int_param "m" ~doc:"Sampled hyperedges (before dedup)." 40;
          R.ints_param "k" ~doc:"Hyperedge arities." [ 2; 3; 4 ];
        ]

    let schema = schema
    let to_row = to_row

    let run ps =
      compute ~n:(R.int_value ps "n") ~m:(R.int_value ps "m") ~ks:(R.ints_value ps "k")
        ~seed:(R.seed ps)

    let preamble _ _ = preamble
    let footer _ = []
    let fast_overrides = [ ("k", R.Vints [ 3 ]); ("seed", R.Vint 71) ]
    let full_overrides = [ ("k", R.Vints [ 2; 3; 4 ]); ("seed", R.Vint 71) ]
    let smoke = [ ("n", R.Vint 12); ("m", R.Vint 8); ("k", R.Vints [ 3 ]); ("seed", R.Vint 71) ]
  end)

let table_of rows = T.table ~preamble schema (List.map to_row rows)

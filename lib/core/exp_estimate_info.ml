(* F5b: plug-in mutual-information estimates from samples vs the exact
   enumeration of the micro instance (DESIGN.md §4). *)

module T = Report.Tabular
module R = Exp_registry
module Graph = Dgraph.Graph
module Model = Sketchmodel.Model
module Rs = Rsgraph.Rs_graph

type row = {
  ebits : int;
  samples : int;
  exact_info : float;
  estimated_info : float;
  abs_error : float;
}

let compute ?jobs ~bits ~samples ~seed () =
  List.map
    (fun b ->
      let spec =
        {
          Accounting.rs = Accounting.micro_rs ();
          k = 2;
          bits = b;
          strategy = Accounting.Truncate;
          sigma_mode = Accounting.Fix_sigma;
        }
      in
      let exact = Accounting.analyze spec in
      (* Re-derive the joint (M, Pi, J) samples by drawing outcomes of the
         same micro space through the deterministic constructor. *)
      let rs = Accounting.micro_rs () in
      let edge_count = Graph.m rs.Rs.graph in
      let nn = Rsgraph.Rs_graph.n rs in
      let n = nn - (2 * rs.Rs.r) + (2 * rs.Rs.r * spec.Accounting.k) in
      let sigma = Array.init n (fun v -> v) in
      let root = Stdx.Prng.create (Stdx.Hashing.mix64 (seed + b)) in
      let draw i =
        (* Per-sample seeding scheme: sample [i] is a pure function of
           [(seed, b, i)], independent of job count and worker order. *)
        let rng = Stdx.Prng.split root i in
        let j = Stdx.Prng.int rng rs.Rs.t_count in
        let kept =
          Array.init spec.Accounting.k (fun _ ->
              Array.init edge_count (fun _ -> Stdx.Prng.bool rng))
        in
        let dmm = Hard_dist.make rs ~k:spec.Accounting.k ~j_star:j ~sigma ~kept in
        let views = Hard_dist.augmented_views dmm in
        let msgs =
          Array.to_list views
          |> List.map (fun view ->
                 let bitmap = Stdx.Bitset.create (max 1 b) in
                 Array.iter
                   (fun u -> if u < b then Stdx.Bitset.add bitmap u)
                   view.Model.neighbors;
                 String.concat "," (List.map string_of_int (Stdx.Bitset.to_list bitmap)))
          |> String.concat "|"
        in
        let m_code =
          List.init spec.Accounting.k (fun i ->
              Array.to_list (Hard_dist.kept_vector dmm ~copy:i ~j)
              |> List.fold_left (fun acc kept_bit -> (acc * 2) + if kept_bit then 1 else 0) 0)
        in
        (m_code, (msgs, j))
      in
      let joint = Stdx.Parallel.init ?jobs samples draw in
      let estimated = Infotheory.Estimate.conditional_mutual_information_plugin joint in
      {
        ebits = b;
        samples;
        exact_info = exact.Accounting.info;
        estimated_info = estimated;
        abs_error = abs_float (estimated -. exact.Accounting.info);
      })
    bits

let schema =
  [
    T.int_col ~width:5 ~header:"b" "bits";
    T.int_col ~width:9 "samples";
    T.float_col ~width:11 ~digits:4 ~header:"exact I" "exact_info";
    T.float_col ~width:12 ~digits:4 ~header:"estimated I" "estimated_info";
    T.float_col ~width:10 ~digits:4 ~header:"abs error" "abs_error";
  ]

let to_row r =
  T.[ Int r.ebits; Int r.samples; Float r.exact_info; Float r.estimated_info; Float r.abs_error ]

let preamble =
  [ ""; "F5b. Plug-in MI estimates from samples vs exact enumeration (micro instance)" ]

let experiment : R.experiment =
  (module struct
    type nonrec row = row

    let id = "estimate-info"
    let title = "F5b"
    let doc = "F5b: sampled MI estimates vs exact enumeration."

    let params =
      R.std_params
        [
          R.ints_param "bits" ~doc:"Budgets in bits." [ 6; 10; 14 ];
          R.int_param "samples" ~doc:"Samples." 6000;
        ]

    let schema = schema
    let to_row = to_row

    let run ps =
      compute ?jobs:(R.jobs ps) ~bits:(R.ints_value ps "bits")
        ~samples:(R.int_value ps "samples") ~seed:(R.seed ps) ()

    let preamble _ _ = preamble
    let footer _ = []

    let fast_overrides =
      [ ("bits", R.Vints [ 10 ]); ("samples", R.Vint 1500); ("seed", R.Vint 59) ]

    let full_overrides =
      [ ("bits", R.Vints [ 6; 10; 14 ]); ("samples", R.Vint 6000); ("seed", R.Vint 59) ]

    let smoke = [ ("bits", R.Vints [ 3 ]); ("samples", R.Vint 40) ]
  end)

let table_of rows = T.table ~preamble schema (List.map to_row rows)

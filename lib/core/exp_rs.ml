(* T1: RS graph parameter table (DESIGN.md §4). *)

module T = Report.Tabular
module R = Exp_registry
module Rs = Rsgraph.Rs_graph
module Params = Rsgraph.Params

type row = { row : Params.rs_row; verified : bool }

(* Each m is an independent pure construction, so the per-m axis shards
   across domains; map_list preserves order, so output is job-count
   independent. *)
let compute ?jobs ~ms () =
  Stdx.Parallel.map_list ?jobs
    (fun m ->
      let rs = Rs.bipartite m in
      { row = Params.rs_row m; verified = Rsgraph.Verify.is_valid_rs rs })
    ms

let schema =
  [
    T.int_col ~width:8 "m";
    T.int_col ~width:8 ~header:"N" "n";
    T.int_col ~width:8 "r";
    T.int_col ~width:8 "t";
    T.int_col ~width:10 "edges";
    T.float_col ~width:10 ~digits:5 "density";
    T.float_col ~width:10 ~digits:4 ~header:"r/N" "r_over_n";
    T.bool_col ~width:9 "verified";
  ]

let to_row { row; verified } =
  T.
    [
      Int row.Params.m;
      Int row.Params.big_n;
      Int row.Params.r;
      Int row.Params.t;
      Int row.Params.edges;
      Float row.Params.density;
      Float row.Params.r_over_n;
      Bool verified;
    ]

let preamble = [ "T1. Proposition 2.1 — (r,t)-RS graphs from Behrend sets (ours: N=5m, t=m)" ]

let experiment : R.experiment =
  (module struct
    type nonrec row = row

    let id = "rs-table"
    let title = "T1"
    let doc = "T1: Proposition 2.1 RS-graph parameter table (verified)."

    let params =
      R.std_params
        ~seed_doc:"Random seed (unused: the construction is deterministic)."
        [ R.ints_param "m" ~doc:"Construction parameters m." [ 5; 10; 25; 50; 100; 200 ] ]

    let schema = schema
    let to_row = to_row
    let run ps = compute ?jobs:(R.jobs ps) ~ms:(R.ints_value ps "m") ()
    let preamble _ _ = preamble
    let footer _ = []
    let fast_overrides = [ ("m", R.Vints [ 5; 10; 25 ]) ]
    let full_overrides = [ ("m", R.Vints [ 5; 10; 25; 50; 100; 200 ]) ]
    let smoke = [ ("m", R.Vints [ 3; 6 ]) ]
  end)

let table_of rows = T.table ~preamble schema (List.map to_row rows)

type 'i report = {
  per_seed : (int * float) list;
  average : float;
  best_seed : int;
  best_rate : float;
}

let derandomize ~seeds ~instances ~run =
  if seeds = [] then invalid_arg "Yao.derandomize: no seeds";
  if Array.length instances = 0 then invalid_arg "Yao.derandomize: no instances";
  let total = float_of_int (Array.length instances) in
  let per_seed =
    List.map
      (fun seed ->
        let coins = Sketchmodel.Public_coins.create seed in
        let wins =
          Array.fold_left (fun acc inst -> if run coins inst then acc + 1 else acc) 0 instances
        in
        (seed, float_of_int wins /. total))
      seeds
  in
  let average =
    List.fold_left (fun acc (_, rate) -> acc +. rate) 0. per_seed
    /. float_of_int (List.length per_seed)
  in
  let best_seed, best_rate =
    List.fold_left
      (fun ((_, br) as best) ((_, rate) as cand) -> if rate > br then cand else best)
      (List.hd per_seed) (List.tl per_seed)
  in
  { per_seed; average; best_seed; best_rate }

let dominates report = report.best_rate >= report.average -. 1e-12

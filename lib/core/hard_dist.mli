(** The hard input distribution [D_MM] of Section 3.1.

    Parameters (paper notation): an [(r, t)]-RS graph [G^RS] on [N]
    vertices, [k] copies (the paper sets [k = t]), a secret matching index
    [j* ∈ [t]], and a secret permutation [σ] of [\[n\]],
    [n = N - 2r + 2rk].

    Construction: every copy [G_i] keeps each RS edge independently with
    probability 1/2; the [N - 2r] vertices outside [V* = V(M_{j*})] are
    {e public} — glued across all copies under one label — while the [2r]
    vertices of [V*] get fresh {e unique} labels per copy. [G] is the
    union.

    A sample keeps all hidden structure ([σ], [j*], the drop coins) so the
    experiments can play referee-with-free-advice exactly as Remark 3.6
    allows. *)

type t = {
  rs : Rsgraph.Rs_graph.t;
  k : int;
  j_star : int;
  sigma : int array;
  graph : Dgraph.Graph.t;  (** the players' input graph [G] *)
  n : int;  (** vertices of [G] *)
  public_labels : int array;
      (** [public_labels.(ℓ)]: label of the ℓ-th non-[V*] RS vertex *)
  unique_labels : int array array;
      (** [unique_labels.(i).(ℓ)]: label of the ℓ-th [V*] vertex in copy i *)
  copy_map : int array array;  (** [copy_map.(i).(v)]: label of RS vertex [v] in copy [i] *)
  kept : bool array array;  (** [kept.(i).(e)]: did RS edge [e] survive in copy [i] *)
  rs_edges : Dgraph.Graph.edge array;  (** indexed RS edge list *)
}

val sample : Rsgraph.Rs_graph.t -> ?k:int -> Stdx.Prng.t -> t
(** Draw [G ~ D_MM]. [k] defaults to [t], the paper's choice. *)

val make :
  Rsgraph.Rs_graph.t ->
  k:int ->
  j_star:int ->
  sigma:int array ->
  kept:bool array array ->
  t
(** Deterministic constructor with all randomness injected — the
    information-accounting harness enumerates the whole sample space
    through this. [kept.(i).(e)] follows the edge order of
    [Graph.edges_array rs.graph]; [sigma] must be a permutation of
    [\[0, N - 2r + 2rk)]. *)

val big_n : t -> int
val r : t -> int
val t_count : t -> int

val is_public : t -> int -> bool
(** Is this [G]-label a public vertex? *)

val is_unique : t -> int -> bool

val rs_edge_index : t -> Dgraph.Graph.edge -> int option
(** Index of an RS edge in [rs_edges]. *)

val kept_vector : t -> copy:int -> j:int -> bool array
(** The paper's [M_{i,j}]: for each edge of RS matching [j] (in matching
    order), whether it survived in copy [i]. *)

val special_pairs : t -> (int * Dgraph.Graph.edge) list
(** All [(i, (u, v))] with [(u, v)] the [G]-labelled copy of an edge of
    [M_{j*}] in copy [i] — the paper's [M^RS_{i,j*}], {e before} edge
    dropping. Both endpoints are always unique vertices. *)

val surviving_special : t -> (int * Dgraph.Graph.edge) list
(** The subset of {!special_pairs} that survived the coin flips: the union
    [∪_i M_i] of Claim 3.1. These are vertex-disjoint. *)

val unique_unique_edges : t -> Dgraph.Matching.t -> Dgraph.Matching.t
(** The edges of a matching whose endpoints are both unique. *)

val augmented_views : t -> Sketchmodel.Model.view array
(** The public/unique player model of Section 3.1: [N - 2r] public players
    (seeing all [G]-edges of their public vertex) followed by [k·N] unique
    players in copy-major order ([u_{i,v}] sees the copy-[i] edges at RS
    vertex [v], translated to [G] labels). *)

val public_player_count : t -> int
val unique_player_count : t -> int

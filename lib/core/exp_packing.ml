(* T2b: greedy random induced-matching packing vs the Behrend RS
   construction at equal (N, r) (DESIGN.md §4). *)

module T = Report.Tabular
module R = Exp_registry
module Params = Rsgraph.Params

type row = { pn : int; pr : int; packed_t : int; behrend_t : int; tries : int }

(* The greedy packing loop is inherently sequential (every try depends on
   the matchings accepted so far), so the parallel axis is the independent
   per-m packings; each m re-derives its generator from the seed alone. *)
let compute ?jobs ~ms ~tries ~seed () =
  Stdx.Parallel.map_list ?jobs
    (fun m ->
      let row = Params.rs_row m in
      let rng = Stdx.Prng.create (Stdx.Hashing.mix64 (seed + m)) in
      let packed_t =
        Rsgraph.Packed.achieved_t rng ~big_n:row.Params.big_n ~r:row.Params.r ~tries
      in
      {
        pn = row.Params.big_n;
        pr = row.Params.r;
        packed_t;
        behrend_t = row.Params.t;
        tries;
      })
    ms

let schema =
  [
    T.int_col ~width:7 ~header:"N" "n";
    T.int_col ~width:6 "r";
    T.int_col ~width:10 ~header:"packed t" "packed_t";
    T.int_col ~width:11 ~header:"behrend t" "behrend_t";
    T.int_col ~width:8 "tries";
  ]

let to_row r = T.[ Int r.pn; Int r.pr; Int r.packed_t; Int r.behrend_t; Int r.tries ]

let preamble =
  [ ""; "T2b. RS families — greedy random packing vs the Behrend construction (equal N, r)" ]

let experiment : R.experiment =
  (module struct
    type nonrec row = row

    let id = "packing"
    let title = "T2b"
    let doc = "T2b: random induced-matching packing vs Behrend RS graphs."

    let params =
      R.std_params
        [
          R.ints_param "m" ~doc:"RS parameters m." [ 5; 10; 25; 50 ];
          R.int_param "tries" ~doc:"Packing attempts." 3000;
        ]

    let schema = schema
    let to_row = to_row

    let run ps =
      compute ?jobs:(R.jobs ps) ~ms:(R.ints_value ps "m") ~tries:(R.int_value ps "tries")
        ~seed:(R.seed ps) ()

    let preamble _ _ = preamble
    let footer _ = []
    let fast_overrides = [ ("m", R.Vints [ 5; 10 ]); ("tries", R.Vint 500); ("seed", R.Vint 53) ]

    let full_overrides =
      [ ("m", R.Vints [ 5; 10; 25; 50 ]); ("tries", R.Vint 3000); ("seed", R.Vint 53) ]

    let smoke = [ ("m", R.Vints [ 4 ]); ("tries", R.Vint 120) ]
  end)

let table_of rows = T.table ~preamble schema (List.map to_row rows)

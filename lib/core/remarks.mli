(** Remark 3.6, executable: the four extra conditions under which the
    lower bound still holds, each of which the Section-4 reduction leans
    on. Tests and experiments call these rather than re-deriving them.

    (i)   the base RS graph is known to everyone — structural in our
          implementation ({!base_graph_shared});
    (ii)  the referee knows [σ] and [j*] — every referee-side function in
          {!Reduction} takes the [Hard_dist.t] record, which carries them;
    (iii) public vertices know they are public and know each other —
          {!distributed_h} builds the reduction's doubled graph [H] from
          purely {e local} information plus exactly that knowledge, and
          must reproduce {!Reduction.build_h};
    (iv)  outputting [k·r/4] unique–unique edges suffices —
          {!meets_remark_iv} is the relaxed success notion every
          budget-sweep experiment scores against. *)

val base_graph_shared : Hard_dist.t -> bool
(** Every copy is a relabelling of the same RS edge set: the pre-drop
    graph each player would reconstruct locally is the public [G^RS]. *)

val distributed_h : Hard_dist.t -> Dgraph.Graph.t
(** [H] assembled from per-player local computations only: each vertex
    [u] contributes the [H]-edges incident on its two copies, computed
    from its own [G]-neighbourhood plus the public-vertex list
    (Remark 3.6(iii)). Must equal {!Reduction.build_h} — asserted in
    tests; the reduction is thus implementable by the players. *)

val meets_remark_iv : Hard_dist.t -> Dgraph.Matching.t -> bool
(** All output edges exist and are disjoint, and at least [k·r/4] of them
    have both endpoints unique. *)

module Graph = Dgraph.Graph
module Model = Sketchmodel.Model
module Public_coins = Sketchmodel.Public_coins
module Rs = Rsgraph.Rs_graph
module Params = Rsgraph.Params

let pr fmt = Printf.printf fmt

(* ------------------------------------------------------------------ *)
(* T1: RS graph parameter table                                        *)

type rs_verified_row = { row : Params.rs_row; verified : bool }

let rs_table ~ms =
  List.map
    (fun m ->
      let rs = Rs.bipartite m in
      { row = Params.rs_row m; verified = Rsgraph.Verify.is_valid_rs rs })
    ms

let print_rs_table rows =
  pr "T1. Proposition 2.1 — (r,t)-RS graphs from Behrend sets (ours: N=5m, t=m)\n";
  pr "%8s %8s %8s %8s %10s %10s %10s %9s\n" "m" "N" "r" "t" "edges" "density" "r/N" "verified";
  List.iter
    (fun { row; verified } ->
      pr "%8d %8d %8d %8d %10d %10.5f %10.4f %9b\n" row.Params.m row.Params.big_n row.Params.r
        row.Params.t row.Params.edges row.Params.density row.Params.r_over_n verified)
    rows

(* ------------------------------------------------------------------ *)
(* T2: Behrend sets                                                    *)

type behrend_row = {
  m : int;
  greedy_size : int;
  behrend_size : int;
  best_size : int;
  exact_size : int option;
  rate : float;
}

let behrend_table ~ms =
  List.map
    (fun m ->
      {
        m;
        greedy_size = List.length (Rsgraph.Behrend.greedy m);
        behrend_size = List.length (Rsgraph.Behrend.behrend m);
        best_size = List.length (Rsgraph.Behrend.best m);
        exact_size = (if m <= 30 then Some (List.length (Rsgraph.Behrend.maximum m)) else None);
        rate = Params.behrend_rate m;
      })
    ms

let print_behrend_table rows =
  pr "\nT2. Behrend's theorem — 3-AP-free subsets of [1, m]\n";
  pr "%8s %8s %9s %8s %8s %8s\n" "m" "greedy" "behrend" "best" "exact" "rate";
  List.iter
    (fun r ->
      pr "%8d %8d %9d %8d %8s %8.3f\n" r.m r.greedy_size r.behrend_size r.best_size
        (match r.exact_size with Some e -> string_of_int e | None -> "-")
        r.rate)
    rows

(* ------------------------------------------------------------------ *)
(* T2b: packed RS vs Behrend                                           *)

type packing_row = { pn : int; pr : int; packed_t : int; behrend_t : int; tries : int }

(* The greedy packing loop is inherently sequential (every try depends on
   the matchings accepted so far), so the parallel axis is the independent
   per-m packings; each m re-derives its generator from the seed alone. *)
let packing_table ?jobs ~ms ~tries ~seed () =
  Stdx.Parallel.map_list ?jobs
    (fun m ->
      let row = Params.rs_row m in
      let rng = Stdx.Prng.create (Stdx.Hashing.mix64 (seed + m)) in
      let packed_t =
        Rsgraph.Packed.achieved_t rng ~big_n:row.Params.big_n ~r:row.Params.r ~tries
      in
      {
        pn = row.Params.big_n;
        pr = row.Params.r;
        packed_t;
        behrend_t = row.Params.t;
        tries;
      })
    ms

let print_packing_table rows =
  pr "\nT2b. RS families — greedy random packing vs the Behrend construction (equal N, r)\n";
  pr "%7s %6s %10s %11s %8s\n" "N" "r" "packed t" "behrend t" "tries";
  List.iter
    (fun row -> pr "%7d %6d %10d %11d %8d\n" row.pn row.pr row.packed_t row.behrend_t row.tries)
    rows

(* ------------------------------------------------------------------ *)
(* T3: Claim 3.1                                                       *)

type claim_row = {
  m : int;
  k : int;
  r : int;
  n : int;
  samples : int;
  min_union : int;
  mean_union : float;
  chernoff_threshold : float;
  min_unique_unique : int;
  claim_threshold : float;
  violations : int;
  failure_bound : float;
  consistent : bool;
}

let claim31 ?jobs ~ms ~samples ~seed () =
  List.map
    (fun m ->
      let rs = Rs.bipartite m in
      (* Per-trial seeding scheme: trial [i] draws from [split root i], so
         the sample set is a pure function of [(seed, m, i)] and the trials
         shard across domains without changing a single bit. *)
      let root = Stdx.Prng.create (Stdx.Hashing.mix64 (seed + m)) in
      let stats_list =
        Stdx.Parallel.init ?jobs samples (fun i ->
            let rng = Stdx.Prng.split root i in
            let dmm = Hard_dist.sample rs rng in
            Claims.check dmm ())
        |> Array.to_list
      in
      let unions = List.map (fun s -> s.Claims.union_special) stats_list in
      let uu_min =
        List.concat_map (fun s -> List.map (fun (_, uu, _) -> uu) s.Claims.per_order) stats_list
        |> List.fold_left min max_int
      in
      let first = List.hd stats_list in
      let dmm_n =
        let b = Params.bound_of_rs rs ~k:first.Claims.k in
        b.Params.n_vertices
      in
      {
        m;
        k = first.Claims.k;
        r = first.Claims.r;
        n = dmm_n;
        samples;
        min_union = List.fold_left min max_int unions;
        mean_union =
          float_of_int (List.fold_left ( + ) 0 unions) /. float_of_int (List.length unions);
        chernoff_threshold = first.Claims.chernoff_threshold;
        min_unique_unique = uu_min;
        claim_threshold = first.Claims.claim_threshold;
        violations = List.length (List.filter (fun s -> not (Claims.holds s)) stats_list);
        failure_bound = first.Claims.failure_bound;
        consistent =
          (let bound = first.Claims.failure_bound in
           let sigma = sqrt (bound *. (1. -. bound) /. float_of_int samples) in
           let rate =
             float_of_int
               (List.length (List.filter (fun s -> not (Claims.holds s)) stats_list))
             /. float_of_int samples
           in
           rate <= bound +. (3. *. sigma) +. (1. /. float_of_int samples));
      })
    ms

let print_claim31 rows =
  pr "\nT3. Claim 3.1 — unique-unique edges in maximal matchings of G ~ D_MM\n";
  pr "%6s %5s %5s %7s %8s %9s %9s %8s %8s %6s %9s %7s\n" "m" "k" "r" "n" "minU" "meanU" "kr/3"
    "min-uu" "kr/4" "viol" "2^-kr/10" "consis";
  List.iter
    (fun r ->
      pr "%6d %5d %5d %7d %8d %9.1f %9.1f %8d %8.1f %6d %9.2e %7b\n" r.m r.k r.r r.n r.min_union
        r.mean_union r.chernoff_threshold r.min_unique_unique r.claim_threshold r.violations
        r.failure_bound r.consistent)
    rows

(* ------------------------------------------------------------------ *)
(* F4: budget sweep                                                    *)

type sweep_row = {
  budget_bits : int;
  strategy : string;
  special_recovered : float;
  relaxed_success : float;
  maximal_success : float;
}

type sweep = {
  m : int;
  k : int;
  r : int;
  n : int;
  predicted_bits : float;
  oracle_success : float;
  oracle_bits : int;
  rows : sweep_row list;
}

let edge_table edges =
  let t = Hashtbl.create (List.length edges) in
  List.iter (fun (u, v) -> Hashtbl.replace t (Graph.normalize_edge u v) ()) edges;
  t

let relaxed_ok = Remarks.meets_remark_iv

(* Players handed sigma and j-star by an oracle: each unique vertex reports just
   its surviving hidden-matching edge.  Shows the hardness is exactly the
   secrecy of sigma and j-star, not volume of data. *)
let oracle_protocol dmm =
  let special = Hard_dist.surviving_special dmm in
  let partner = Hashtbl.create 64 in
  List.iter
    (fun (_, (u, v)) ->
      Hashtbl.replace partner u v;
      Hashtbl.replace partner v u)
    special;
  {
    Model.name = "oracle-mm";
    player =
      (fun view _coins ->
        let w = Stdx.Bitbuf.Writer.create () in
        (match Hashtbl.find_opt partner view.Model.vertex with
        | Some p when p > view.Model.vertex -> Stdx.Bitbuf.Writer.uvarint w p
        | Some _ | None -> ());
        w);
    referee =
      (fun ~n ~sketches _coins ->
        ignore n;
        let out = ref [] in
        Array.iteri
          (fun v r ->
            if Stdx.Bitbuf.Reader.remaining_bits r >= 8 then
              out := Graph.normalize_edge v (Stdx.Bitbuf.Reader.uvarint r) :: !out)
          sketches;
        !out);
  }

let budget_sweep ?jobs ~m ?k ~budgets ~trials ~seed () =
  let rs = Rs.bipartite m in
  let k = Option.value ~default:rs.Rs.t_count k in
  (* Same per-trial scheme as claim31: instance [i] is a pure function of
     [(seed, m, i)], so both sampling and evaluation shard across domains. *)
  let root = Stdx.Prng.create (Stdx.Hashing.mix64 ((seed * 31) + m)) in
  let instances =
    Stdx.Parallel.init ?jobs trials (fun i ->
        let rng = Stdx.Prng.split root i in
        (Hard_dist.sample rs ~k rng, Public_coins.create (Stdx.Hashing.mix64 (seed + (1000 * i)))))
  in
  let first = fst instances.(0) in
  let eval_protocol make_protocol =
    let per_instance =
      Stdx.Parallel.map ?jobs
        (fun (dmm, coins) ->
          let output, _stats = Model.run (make_protocol dmm) dmm.Hard_dist.graph coins in
          let special = List.map snd (Hard_dist.surviving_special dmm) in
          let out_set = edge_table output in
          let hit = List.length (List.filter (fun e -> Hashtbl.mem out_set e) special) in
          ( float_of_int hit /. float_of_int (max 1 (List.length special)),
            relaxed_ok dmm output,
            Dgraph.Matching.is_maximal dmm.Hard_dist.graph output ))
        instances
    in
    (* Accumulate sequentially in index order: float addition is not
       associative, and the printed tables must not depend on job count. *)
    let recovered = ref 0. and relaxed = ref 0 and maximal = ref 0 in
    Array.iter
      (fun (frac, ok_relaxed, ok_maximal) ->
        recovered := !recovered +. frac;
        if ok_relaxed then incr relaxed;
        if ok_maximal then incr maximal)
      per_instance;
    let tf = float_of_int trials in
    (!recovered /. tf, float_of_int !relaxed /. tf, float_of_int !maximal /. tf)
  in
  let rows =
    List.concat_map
      (fun budget ->
        List.map
          (fun strategy ->
            let rec_frac, relax, maxi =
              eval_protocol (fun _dmm ->
                  Protocols.Sampled_mm.protocol ~budget_bits:budget ~strategy)
            in
            {
              budget_bits = budget;
              strategy = Protocols.Sampled_mm.strategy_name strategy;
              special_recovered = rec_frac;
              relaxed_success = relax;
              maximal_success = maxi;
            })
          Protocols.Sampled_mm.all_strategies)
      budgets
  in
  let oracle_bits = ref 0 in
  let oracle_success =
    let per_instance =
      Stdx.Parallel.map ?jobs
        (fun (dmm, coins) ->
          let output, stats = Model.run (oracle_protocol dmm) dmm.Hard_dist.graph coins in
          (stats.Model.max_bits, relaxed_ok dmm output))
        instances
    in
    let hits = ref 0 in
    Array.iter
      (fun (bits, ok) ->
        oracle_bits := max !oracle_bits bits;
        if ok then incr hits)
      per_instance;
    float_of_int !hits /. float_of_int trials
  in
  let bound = Params.bound_of_rs rs ~k in
  {
    m;
    k;
    r = Hard_dist.r first;
    n = first.Hard_dist.n;
    predicted_bits = bound.Params.bits_lower_bound;
    oracle_success;
    oracle_bits = !oracle_bits;
    rows;
  }

let print_budget_sweep sweep =
  pr "\nF4. Theorem 1 shape — budget-limited protocols on D_MM (m=%d, k=%d, r=%d, n=%d)\n"
    sweep.m sweep.k sweep.r sweep.n;
  pr "    information-theoretic per-player bound at these parameters: %.2f bits\n"
    sweep.predicted_bits;
  pr "    oracle players (handed sigma, j*): relaxed success %.2f with only %d bits/player\n"
    sweep.oracle_success sweep.oracle_bits;
  pr "%10s %15s %10s %9s %9s\n" "bits" "strategy" "recovered" "relaxed" "maximal";
  List.iter
    (fun r ->
      pr "%10d %15s %10.3f %9.2f %9.2f\n" r.budget_bits r.strategy r.special_recovered
        r.relaxed_success r.maximal_success)
    sweep.rows

(* ------------------------------------------------------------------ *)
(* F5: information accounting                                          *)

let info_accounting ~bits =
  List.concat_map
    (fun b ->
      [
        Accounting.analyze
          {
            Accounting.rs = Accounting.tiny_rs ();
            k = 2;
            bits = b;
            strategy = Accounting.Truncate;
            sigma_mode = Accounting.Enumerate_sigma;
          };
        Accounting.analyze
          {
            Accounting.rs = Accounting.micro_rs ();
            k = 2;
            bits = b;
            strategy = Accounting.Truncate;
            sigma_mode = Accounting.Fix_sigma;
          };
      ])
    bits

let print_info_accounting reports =
  pr "\nF5. Lemmas 3.3-3.5 — exact information accounting on micro D_MM instances\n";
  pr "%5s %6s %9s %7s %9s %8s %9s %9s %9s %6s\n" "b" "sigma" "outcomes" "kr" "I(M;Pi)" "E|M^U|"
    "L3.3" "L3.4" "L3.5min" "ok";
  List.iter
    (fun (r : Accounting.report) ->
      pr "%5d %6s %9d %7.0f %9.4f %8.3f %9.4f %9.4f %9.4f %6b\n" r.Accounting.spec_bits
        (if r.Accounting.sigma_enumerated then "enum" else "fixed")
        r.Accounting.outcomes r.Accounting.kr r.Accounting.info r.Accounting.expected_recovered
        r.Accounting.lemma33_slack r.Accounting.lemma34_slack
        (Array.fold_left min infinity r.Accounting.lemma35_slacks)
        (Accounting.all_inequalities_hold r))
    reports

(* ------------------------------------------------------------------ *)
(* F5b: sampled information estimates vs exact                         *)

type estimate_row = {
  ebits : int;
  samples : int;
  exact_info : float;
  estimated_info : float;
  abs_error : float;
}

let estimate_accounting ?jobs ~bits ~samples ~seed () =
  List.map
    (fun b ->
      let spec =
        {
          Accounting.rs = Accounting.micro_rs ();
          k = 2;
          bits = b;
          strategy = Accounting.Truncate;
          sigma_mode = Accounting.Fix_sigma;
        }
      in
      let exact = Accounting.analyze spec in
      (* Re-derive the joint (M, Pi, J) samples by drawing outcomes of the
         same micro space through the deterministic constructor. *)
      let rs = Accounting.micro_rs () in
      let edge_count = Graph.m rs.Rs.graph in
      let nn = Rsgraph.Rs_graph.n rs in
      let n = nn - (2 * rs.Rs.r) + (2 * rs.Rs.r * spec.Accounting.k) in
      let sigma = Array.init n (fun v -> v) in
      let root = Stdx.Prng.create (Stdx.Hashing.mix64 (seed + b)) in
      let draw i =
        (* Per-sample seeding scheme: sample [i] is a pure function of
           [(seed, b, i)], independent of job count and worker order. *)
        let rng = Stdx.Prng.split root i in
        let j = Stdx.Prng.int rng rs.Rs.t_count in
        let kept =
          Array.init spec.Accounting.k (fun _ ->
              Array.init edge_count (fun _ -> Stdx.Prng.bool rng))
        in
        let dmm = Hard_dist.make rs ~k:spec.Accounting.k ~j_star:j ~sigma ~kept in
        let views = Hard_dist.augmented_views dmm in
        let msgs =
          Array.to_list views
          |> List.map (fun view ->
                 let bitmap = Stdx.Bitset.create (max 1 b) in
                 Array.iter
                   (fun u -> if u < b then Stdx.Bitset.add bitmap u)
                   view.Model.neighbors;
                 String.concat "," (List.map string_of_int (Stdx.Bitset.to_list bitmap)))
          |> String.concat "|"
        in
        let m_code =
          List.init spec.Accounting.k (fun i ->
              Array.to_list (Hard_dist.kept_vector dmm ~copy:i ~j)
              |> List.fold_left (fun acc kept_bit -> (acc * 2) + if kept_bit then 1 else 0) 0)
        in
        (m_code, (msgs, j))
      in
      let joint = Stdx.Parallel.init ?jobs samples draw in
      let estimated = Infotheory.Estimate.conditional_mutual_information_plugin joint in
      {
        ebits = b;
        samples;
        exact_info = exact.Accounting.info;
        estimated_info = estimated;
        abs_error = abs_float (estimated -. exact.Accounting.info);
      })
    bits

let print_estimate_accounting rows =
  pr "\nF5b. Plug-in MI estimates from samples vs exact enumeration (micro instance)\n";
  pr "%5s %9s %11s %12s %10s\n" "b" "samples" "exact I" "estimated I" "abs error";
  List.iter
    (fun r ->
      pr "%5d %9d %11.4f %12.4f %10.4f\n" r.ebits r.samples r.exact_info r.estimated_info
        r.abs_error)
    rows

(* ------------------------------------------------------------------ *)
(* T6: upper-bound landscape                                           *)

type ub_row = {
  n : int;
  agm_forest_bits : int;
  agm_ok : bool;
  coloring_bits : int;
  coloring_ok : bool;
  trivial_mm_bits : int;
  two_round_mm_bits : int;
  two_round_mm_ok : bool;
  two_round_mis_bits : int;
  two_round_mis_ok : bool;
}

let upper_bounds ~ns ~seed =
  List.map
    (fun n ->
      let rng = Stdx.Prng.create (Stdx.Hashing.mix64 (seed + n)) in
      (* Proportional degree (n/4 on average): the trivial protocol must
         then grow linearly in n while the sketches stay polylog — the
         Section-1 contrast. *)
      let g = Dgraph.Gen.gnp rng n 0.25 in
      let coins = Public_coins.create (Stdx.Hashing.mix64 (seed * 7 + n)) in
      let forest, agm_stats = Agm.Spanning_forest.run g coins in
      let color_outcome, color_stats = Coloring.Palette.run g coins in
      let _, trivial_stats = Model.run Protocols.Trivial.mm g coins in
      let mm2, mm2_stats = Protocols.Two_round_mm.run g coins in
      let mis2, mis2_stats = Protocols.Two_round_mis.run g coins in
      {
        n;
        agm_forest_bits = agm_stats.Model.max_bits;
        agm_ok = Dgraph.Components.is_spanning_forest g forest;
        coloring_bits = color_stats.Model.max_bits;
        coloring_ok =
          (match color_outcome.Coloring.Palette.coloring with
          | Some colors ->
              Array.length colors = n
              && Graph.fold_edges (fun u v acc -> acc && colors.(u) <> colors.(v)) g true
          | None -> false);
        trivial_mm_bits = trivial_stats.Model.max_bits;
        two_round_mm_bits = mm2_stats.Sketchmodel.Rounds.max_bits;
        two_round_mm_ok = Dgraph.Matching.is_maximal g mm2;
        two_round_mis_bits = mis2_stats.Sketchmodel.Rounds.max_bits;
        two_round_mis_ok = Dgraph.Mis.is_maximal g mis2;
      })
    ns

(* log2(bits(n2)/bits(n1)) / log2(n2/n1): 1.0 = linear growth in n,
   ~0 = polylogarithmic. *)
let growth_exponents rows select =
  let rec pairs = function
    | a :: (b :: _ as rest) ->
        let e =
          log (float_of_int (select b) /. float_of_int (select a))
          /. log (float_of_int b.n /. float_of_int a.n)
        in
        e :: pairs rest
    | [ _ ] | [] -> []
  in
  pairs rows

let print_upper_bounds rows =
  pr "\nT6. Section 1 landscape — measured per-player sketch bits (avg degree n/4)\n";
  pr "%7s %12s %7s %12s %7s %12s %12s %7s %12s %7s\n" "n" "agm-forest" "ok" "coloring" "ok"
    "trivial-mm" "2r-mm" "ok" "2r-mis" "ok";
  List.iter
    (fun r ->
      pr "%7d %12d %7b %12d %7b %12d %12d %7b %12d %7b\n" r.n r.agm_forest_bits r.agm_ok
        r.coloring_bits r.coloring_ok r.trivial_mm_bits r.two_round_mm_bits r.two_round_mm_ok
        r.two_round_mis_bits r.two_round_mis_ok)
    rows;
  let mean l = List.fold_left ( +. ) 0. l /. float_of_int (max 1 (List.length l)) in
  if List.length rows >= 2 then
    pr
      "    growth exponents (1.0 = linear in n, ~0 = polylog): agm=%.2f coloring=%.2f \
       trivial=%.2f 2r-mm=%.2f 2r-mis=%.2f\n"
      (mean (growth_exponents rows (fun r -> r.agm_forest_bits)))
      (mean (growth_exponents rows (fun r -> r.coloring_bits)))
      (mean (growth_exponents rows (fun r -> r.trivial_mm_bits)))
      (mean (growth_exponents rows (fun r -> r.two_round_mm_bits)))
      (mean (growth_exponents rows (fun r -> r.two_round_mis_bits)))

(* ------------------------------------------------------------------ *)
(* T6b: coloring contrast on dense graphs                              *)

type coloring_row = {
  cn : int;
  delta : int;
  list_size : int;
  palette_bits : int;
  full_bits : int;
  ratio : float;
  proper : bool;
}

let coloring_contrast ~ns ~seed =
  List.map
    (fun n ->
      let rng = Stdx.Prng.create (Stdx.Hashing.mix64 (seed + (5 * n))) in
      let g = Dgraph.Gen.gnp rng n 0.5 in
      let coins = Public_coins.create (Stdx.Hashing.mix64 (seed * 11 + n)) in
      let outcome, stats = Coloring.Palette.run g coins in
      let _, trivial_stats = Model.run Protocols.Trivial.mm g coins in
      let delta = Graph.max_degree g in
      {
        cn = n;
        delta;
        list_size = int_of_float (ceil (4. *. log (float_of_int (n + 1)))) + 4;
        palette_bits = stats.Model.max_bits;
        full_bits = trivial_stats.Model.max_bits;
        ratio = float_of_int stats.Model.max_bits /. float_of_int trivial_stats.Model.max_bits;
        proper =
          (match outcome.Coloring.Palette.coloring with
          | Some colors ->
              Coloring.Palette.is_proper g colors && Coloring.Palette.max_color colors <= delta
          | None -> false);
      })
    ns

let print_coloring_contrast rows =
  pr "\nT6b. (Delta+1)-coloring vs trivial on dense G(n, 1/2) — the ratio decays with n\n";
  pr "%7s %7s %6s %13s %13s %8s %8s\n" "n" "Delta" "list" "palette bits" "full bits" "ratio"
    "proper";
  List.iter
    (fun r ->
      pr "%7d %7d %6d %13d %13d %8.3f %8b\n" r.cn r.delta r.list_size r.palette_bits r.full_bits
        r.ratio r.proper)
    rows

(* ------------------------------------------------------------------ *)
(* F7: the gap                                                         *)

type curve_row = {
  m : int;
  n_dmm : int;
  lower_bound_bits : float;
  sqrt_n : float;
  trivial_bits : float;
  two_round_bits : float;
}

let bound_curve ~ms =
  List.map
    (fun m ->
      let rs = Rs.bipartite m in
      let bound = Params.bound_of_rs rs ~k:rs.Rs.t_count in
      {
        m;
        n_dmm = bound.Params.n_vertices;
        lower_bound_bits = bound.Params.bits_lower_bound;
        sqrt_n = sqrt (float_of_int bound.Params.n_vertices);
        trivial_bits = bound.Params.trivial_upper_bound;
        two_round_bits = bound.Params.two_round_upper_bound;
      })
    ms

let print_bound_curve rows =
  pr "\nF7. Theorem 1 arithmetic vs upper bounds along the construction curve\n";
  pr "%6s %9s %12s %9s %14s %14s\n" "m" "n" "LB bits" "sqrt(n)" "2-round UB" "trivial UB";
  List.iter
    (fun r ->
      pr "%6d %9d %12.2f %9.1f %14.1f %14.1f\n" r.m r.n_dmm r.lower_bound_bits r.sqrt_n
        r.two_round_bits r.trivial_bits)
    rows

(* ------------------------------------------------------------------ *)
(* T8: reduction                                                       *)

type reduction_row = {
  m : int;
  samples : int;
  lemma41_all : bool;
  complete_all : bool;
  min_rule_exact_all : bool;
  mean_valid_fraction : float;
  cost_ratio : float;
}

let reduction_check ~ms ~samples ~seed =
  List.map
    (fun m ->
      let rs = Rs.bipartite m in
      let rng = Stdx.Prng.create (Stdx.Hashing.mix64 (seed + (13 * m))) in
      let lemma_ok = ref true and complete_ok = ref true and min_ok = ref true in
      let valid_frac = ref 0. and ratio = ref 0. in
      for i = 0 to samples - 1 do
        let dmm = Hard_dist.sample rs rng in
        let coins = Public_coins.create (Stdx.Hashing.mix64 (seed + (97 * i) + m)) in
        let solver g =
          Dgraph.Mis.greedy g
            ~order:(Stdx.Prng.permutation (Stdx.Prng.create (seed + i)) (Graph.n g))
            ()
        in
        let verdict, g_stats, h_stats =
          Reduction.end_to_end_cost dmm Protocols.Trivial.mis coins
        in
        ignore solver;
        lemma_ok := !lemma_ok && verdict.Reduction.lemma41_ok;
        complete_ok := !complete_ok && verdict.Reduction.complete;
        valid_frac :=
          !valid_frac
          +. (float_of_int verdict.Reduction.valid_edges
             /. float_of_int (max 1 verdict.Reduction.output_size));
        ratio :=
          !ratio
          +. (float_of_int g_stats.Model.max_bits /. float_of_int h_stats.Model.max_bits);
        (* min-rule ablation on a referee-side exact MIS *)
        let mis = solver (Reduction.build_h dmm) in
        let mn =
          List.sort compare
            (List.map (fun (u, v) -> Graph.normalize_edge u v) (Reduction.referee_output_min dmm mis))
        in
        let survivors =
          List.sort compare
            (List.map
               (fun (_, (u, v)) -> Graph.normalize_edge u v)
               (Hard_dist.surviving_special dmm))
        in
        min_ok := !min_ok && mn = survivors
      done;
      {
        m;
        samples;
        lemma41_all = !lemma_ok;
        complete_all = !complete_ok;
        min_rule_exact_all = !min_ok;
        mean_valid_fraction = !valid_frac /. float_of_int samples;
        cost_ratio = !ratio /. float_of_int samples;
      })
    ms

let print_reduction rows =
  pr "\nT8. Theorem 2 — the MM-to-MIS reduction on H (two copies + public biclique)\n";
  pr "%6s %8s %9s %9s %10s %11s %11s\n" "m" "samples" "lemma4.1" "complete" "min-exact"
    "valid-frac" "cost-ratio";
  List.iter
    (fun r ->
      pr "%6d %8d %9b %9b %10b %11.3f %11.3f\n" r.m r.samples r.lemma41_all r.complete_all
        r.min_rule_exact_all r.mean_valid_fraction r.cost_ratio)
    rows

(* ------------------------------------------------------------------ *)
(* F9: bridge                                                          *)

type bridge_row = { half : int; samples_per_vertex : int; max_bits : int; success : float }

let bridge ~halves ~samples ~trials ~seed =
  List.concat_map
    (fun half ->
      List.map
        (fun s ->
          let success =
            Agm.Bridge_demo.success_probability ~half ~samples_per_vertex:s ~trials ~seed
          in
          let rng = Stdx.Prng.create (Stdx.Hashing.mix64 (seed + half + s)) in
          let g, _ = Dgraph.Gen.bridge_of_clouds rng ~half ~p:0.5 in
          let result =
            Agm.Bridge_demo.run g ~samples_per_vertex:s
              (Public_coins.create (Stdx.Hashing.mix64 (seed * 3 + half)))
          in
          { half; samples_per_vertex = s; max_bits = result.Agm.Bridge_demo.stats.Model.max_bits; success })
        samples)
    halves

let print_bridge rows =
  pr "\nF9. Footnote 1 — recovering the bridge between two random clouds\n";
  pr "%7s %9s %10s %9s\n" "half" "samples" "max bits" "success";
  List.iter
    (fun r -> pr "%7d %9d %10d %9.2f\n" r.half r.samples_per_vertex r.max_bits r.success)
    rows


(* ------------------------------------------------------------------ *)
(* F10: approximate matching vs budget                                 *)

type approx_row = { an : int; abudget : int; ratio_mean : float; ratio_min : float }

let approx_matching ~ns ~budgets ~trials ~seed =
  List.concat_map
    (fun n ->
      List.map
        (fun budget ->
          let ratios =
            List.init trials (fun i ->
                let rng = Stdx.Prng.create (Stdx.Hashing.mix64 (seed + (i * 131) + n)) in
                let g = Dgraph.Gen.gnp rng n (4.0 /. float_of_int n) in
                let coins = Public_coins.create (Stdx.Hashing.mix64 (seed + i + (n * budget))) in
                let protocol =
                  Protocols.Sampled_mm.protocol ~budget_bits:budget
                    ~strategy:Protocols.Sampled_mm.Uniform
                in
                let output, _ = Model.run protocol g coins in
                let valid = List.filter (fun (u, v) -> Graph.mem_edge g u v) output in
                let opt = Dgraph.Blossom.maximum_matching_size g in
                if opt = 0 then 1.
                else float_of_int (List.length valid) /. float_of_int opt)
          in
          {
            an = n;
            abudget = budget;
            ratio_mean = List.fold_left ( +. ) 0. ratios /. float_of_int trials;
            ratio_min = List.fold_left min 1. ratios;
          })
        budgets)
    ns

let print_approx_matching rows =
  pr "\nF10. Approximate matching vs per-player budget (Blossom oracle; avg degree 4)\n";
  pr "%7s %9s %11s %10s\n" "n" "bits" "mean ratio" "min ratio";
  List.iter
    (fun r -> pr "%7d %9d %11.3f %10.3f\n" r.an r.abudget r.ratio_mean r.ratio_min)
    rows

(* ------------------------------------------------------------------ *)
(* F11: k vs t ablation                                                *)

type k_sweep_row = {
  kk : int;
  kt_ratio : float;
  predicted : float;
  threshold_bits : int option;
}

let k_sweep ~m ~ks ~budgets ~trials ~seed =
  let rs = Rs.bipartite m in
  List.map
    (fun k ->
      let sweep = budget_sweep ~m ~k ~budgets ~trials ~seed () in
      let uniform_rows =
        List.filter (fun r -> r.strategy = "uniform") sweep.rows
        |> List.sort (fun a b -> compare a.budget_bits b.budget_bits)
      in
      let threshold =
        List.find_opt (fun r -> r.relaxed_success >= 0.5) uniform_rows
        |> Option.map (fun r -> r.budget_bits)
      in
      let bound = Params.bound_of_rs rs ~k in
      {
        kk = k;
        kt_ratio = float_of_int k /. float_of_int rs.Rs.t_count;
        predicted = bound.Params.bits_lower_bound;
        threshold_bits = threshold;
      })
    ks

let print_k_sweep rows =
  pr "\nF11. Ablation — decoupling k from t (m fixed). The information bound grows\n";
  pr "     linearly with k while the natural protocol's per-player threshold is\n";
  pr "     k-independent: the lower bound is tightest at the paper's choice k = t.\n";
  pr "%6s %8s %12s %16s\n" "k" "k/t" "LB bits" "threshold bits";
  List.iter
    (fun r ->
      pr "%6d %8.2f %12.4f %16s\n" r.kk r.kt_ratio r.predicted
        (match r.threshold_bits with Some b -> string_of_int b | None -> ">max tested"))
    rows

(* ------------------------------------------------------------------ *)
(* T10: dynamic streams                                                *)

type stream_row = {
  sn : int;
  decoys : int;
  events : int;
  forest_ok : bool;
  messages_identical : bool;
  greedy_mm_ok : bool;
}

let stream_table ~ns ~seed =
  List.map
    (fun n ->
      let rng = Stdx.Prng.create (Stdx.Hashing.mix64 (seed + (3 * n))) in
      let g = Dgraph.Gen.gnp rng n (6.0 /. float_of_int n) in
      let decoys = Graph.m g in
      let stream = Streams.Stream.with_decoys rng g ~decoys in
      let coins = Public_coins.create (Stdx.Hashing.mix64 (seed * 13 + n)) in
      let proc = Streams.Sketch_stream.create ~n coins in
      Streams.Sketch_stream.feed_all proc stream;
      let forest = Streams.Sketch_stream.spanning_forest proc in
      let insertion_only = Streams.Stream.shuffled rng g in
      let mm = Streams.Insertion_greedy.mm_of_stream insertion_only in
      {
        sn = n;
        decoys;
        events = Streams.Stream.length stream;
        forest_ok = Dgraph.Components.is_spanning_forest g forest;
        messages_identical = Streams.Sketch_stream.messages_equal_distributed proc g;
        greedy_mm_ok = Dgraph.Matching.is_maximal g mm;
      })
    ns

let print_stream_table rows =
  pr "\nT10. Dynamic streams = linear sketches (insert/delete decoys, bitwise equality)\n";
  pr "%7s %8s %8s %10s %11s %11s\n" "n" "decoys" "events" "forest ok" "bits equal" "greedy mm";
  List.iter
    (fun r ->
      pr "%7d %8d %8d %10b %11b %11b\n" r.sn r.decoys r.events r.forest_ok
        r.messages_identical r.greedy_mm_ok)
    rows

(* ------------------------------------------------------------------ *)
(* T11: edge connectivity + bipartiteness sketches                     *)

type connectivity_row = {
  workload : string;
  k_cert : int;
  cert_valid : bool;
  estimate : int;
  truth : int;
  bipartite_sketch : bool;
  bipartite_truth : bool;
  conn_bits : int;
}

let connectivity_table ~seed =
  let rng = Stdx.Prng.create (Stdx.Hashing.mix64 seed) in
  let coins = Public_coins.create (Stdx.Hashing.mix64 (seed + 1)) in
  let workloads =
    [
      ("cycle(16)", Dgraph.Gen.cycle 16, 3);
      ("complete(9)", Dgraph.Gen.complete 9, 4);
      ("path(12)", Dgraph.Gen.path 12, 2);
      ("gnp(48,.25)", Dgraph.Gen.gnp rng 48 0.25, 4);
      ("bipartite(14,12)", Dgraph.Gen.random_bipartite rng ~left:14 ~right:12 ~p:0.5, 3);
      ("2 components", Graph.disjoint_union (Dgraph.Gen.cycle 6) (Dgraph.Gen.complete 5), 2);
    ]
  in
  List.map
    (fun (workload, g, k) ->
      let cert, stats = Agm.Connectivity.k_forests g ~k coins in
      let bip, _ = Agm.Connectivity.is_bipartite_via_sketches g coins in
      {
        workload;
        k_cert = k;
        cert_valid = Agm.Connectivity.certificate_valid g ~k cert;
        estimate = Agm.Connectivity.edge_connectivity_estimate cert ~k;
        truth = (let c = Dgraph.Mincut.min_cut g in if c = max_int then 0 else min k c);
        bipartite_sketch = bip;
        bipartite_truth = Agm.Connectivity.is_bipartite_exact g;
        conn_bits = stats.Model.max_bits;
      })
    workloads

let print_connectivity_table rows =
  pr "\nT11. Edge connectivity (k-forest certificate) and bipartiteness from sketches\n";
  pr "%-18s %4s %7s %5s %6s %11s %10s %10s\n" "workload" "k" "valid" "est" "truth" "bip-sketch"
    "bip-truth" "bits";
  List.iter
    (fun r ->
      pr "%-18s %4d %7b %5d %6d %11b %10b %10d\n" r.workload r.k_cert r.cert_valid r.estimate
        r.truth r.bipartite_sketch r.bipartite_truth r.conn_bits)
    rows

(* ------------------------------------------------------------------ *)
(* T12: one round fails, two rounds suffice, on D_MM itself            *)

type rounds_row = {
  rm : int;
  one_round_undominated : float;
  one_round_bits : int;
  two_round_mm_maximal : bool;
  two_round_mm_bits : int;
  two_round_mis_maximal : bool;
  two_round_mis_bits : int;
  sqrt_n_dmm : float;
}

let rounds_table ~ms ~seed =
  List.map
    (fun m ->
      let rs = Rs.bipartite m in
      let rng = Stdx.Prng.create (Stdx.Hashing.mix64 (seed + m)) in
      let dmm = Hard_dist.sample rs rng in
      let g = dmm.Hard_dist.graph in
      let coins = Public_coins.create (Stdx.Hashing.mix64 (seed * 17 + m)) in
      let undominated, one_stats = Protocols.One_round_mis.undominated_fraction g coins in
      let mm, mm_stats = Protocols.Two_round_mm.run g coins in
      let mis, mis_stats = Protocols.Two_round_mis.run g coins in
      {
        rm = m;
        one_round_undominated = undominated;
        one_round_bits = one_stats.Model.max_bits;
        two_round_mm_maximal = Dgraph.Matching.is_maximal g mm;
        two_round_mm_bits = mm_stats.Sketchmodel.Rounds.max_bits;
        two_round_mis_maximal = Dgraph.Mis.is_maximal g mis;
        two_round_mis_bits = mis_stats.Sketchmodel.Rounds.max_bits;
        sqrt_n_dmm = sqrt (float_of_int dmm.Hard_dist.n);
      })
    ms

let print_rounds_table rows =
  pr "\nT12. On D_MM: one-round local-minima MIS fails; two rounds solve MM and MIS\n";
  pr "%6s %13s %9s %8s %9s %9s %9s %9s\n" "m" "undominated" "1r bits" "2r-mm" "mm bits"
    "2r-mis" "mis bits" "sqrt(n)";
  List.iter
    (fun r ->
      pr "%6d %13.3f %9d %8b %9d %9b %9d %9.1f\n" r.rm r.one_round_undominated r.one_round_bits
        r.two_round_mm_maximal r.two_round_mm_bits r.two_round_mis_maximal r.two_round_mis_bits
        r.sqrt_n_dmm)
    rows

(* ------------------------------------------------------------------ *)
(* T13: the Yao averaging step                                         *)

type yao_row = {
  ym : int;
  ybudget : int;
  randomized : float;
  derandomized : float;
  dominates : bool;
}

let yao_table ~m ~budgets ~instances ~seeds ~seed =
  let rs = Rs.bipartite m in
  let insts =
    Array.init instances (fun i ->
        Hard_dist.sample rs (Stdx.Prng.create (Stdx.Hashing.mix64 (seed + (i * 53)))))
  in
  let seed_list = List.init seeds (fun i -> Stdx.Hashing.mix64 (seed + (811 * i))) in
  List.map
    (fun budget ->
      let report =
        Yao.derandomize ~seeds:seed_list ~instances:insts ~run:(fun coins dmm ->
            let p =
              Protocols.Sampled_mm.protocol ~budget_bits:budget
                ~strategy:Protocols.Sampled_mm.Uniform
            in
            let out, _ = Model.run p dmm.Hard_dist.graph coins in
            Dgraph.Matching.is_maximal dmm.Hard_dist.graph out)
      in
      {
        ym = m;
        ybudget = budget;
        randomized = report.Yao.average;
        derandomized = report.Yao.best_rate;
        dominates = Yao.dominates report;
      })
    budgets

let print_yao_table rows =
  pr "\nT13. The averaging step: best fixed coins >= coin-averaged success (Yao [53])\n";
  pr "%6s %9s %12s %14s %10s\n" "m" "bits" "randomized" "derandomized" "dominates";
  List.iter
    (fun r -> pr "%6d %9d %12.3f %14.3f %10b\n" r.ym r.ybudget r.randomized r.derandomized r.dominates)
    rows

(* ------------------------------------------------------------------ *)
(* T14: BCC rounds/bandwidth trade-off                                 *)

type bcc_row = {
  bn : int;
  bcc_rounds : int;
  bcc_bits_per_round : int;
  bcc_total_bits : int;
  bcc_maximal : bool;
  one_round_same_budget_maximal : float;
}

let bcc_table ~ms ~trials ~seed =
  List.map
    (fun m ->
      let rs = Rs.bipartite m in
      let rng = Stdx.Prng.create (Stdx.Hashing.mix64 (seed + m)) in
      let dmm = Hard_dist.sample rs rng in
      let g = dmm.Hard_dist.graph in
      let coins = Public_coins.create (Stdx.Hashing.mix64 (seed * 19 + m)) in
      let mm, stats = Protocols.Bcc_mm.run g coins in
      (* Apples to apples: the BCC bandwidth measure is bits per round, so
         the one-round comparison gets exactly that per-player budget. *)
      let budget = stats.Sketchmodel.Bcc.max_bits_per_round in
      let successes = ref 0 in
      for i = 1 to trials do
        let one_round =
          Protocols.Sampled_mm.protocol ~budget_bits:budget
            ~strategy:Protocols.Sampled_mm.Uniform
        in
        let out, _ =
          Model.run one_round g (Public_coins.create (Stdx.Hashing.mix64 (seed + (i * 71))))
        in
        if Dgraph.Matching.is_maximal g out then incr successes
      done;
      {
        bn = dmm.Hard_dist.n;
        bcc_rounds = stats.Sketchmodel.Bcc.rounds_used;
        bcc_bits_per_round = stats.Sketchmodel.Bcc.max_bits_per_round;
        bcc_total_bits = stats.Sketchmodel.Bcc.max_bits_total;
        bcc_maximal = Dgraph.Matching.is_maximal g mm;
        one_round_same_budget_maximal = float_of_int !successes /. float_of_int trials;
      })
    ms

let print_bcc_table rows =
  pr "\nT14. BCC rounds vs bandwidth on D_MM: O(log n) rounds of O(log n)-bit broadcasts\n";
  pr "     solve MM; one round at the same per-round bandwidth does not.\n";
  pr "%8s %8s %11s %11s %9s %21s\n" "n" "rounds" "bits/round" "total bits" "maximal"
    "1-round same b/round";
  List.iter
    (fun r ->
      pr "%8d %8d %11d %11d %9b %21.2f\n" r.bn r.bcc_rounds r.bcc_bits_per_round
        r.bcc_total_bits r.bcc_maximal r.one_round_same_budget_maximal)
    rows

(* ------------------------------------------------------------------ *)
(* P1: the parallel trial engine itself                                *)

type speedup_row = { pjobs : int; wall_s : float; speedup : float; identical : bool }

let parallel_speedup ?jobs ~m ~samples ~seed () =
  let max_jobs =
    match jobs with Some j when j > 0 -> j | Some _ | None -> Stdx.Parallel.default_jobs ()
  in
  let run j = Stdx.Parallel.timed (fun () -> claim31 ~jobs:j ~ms:[ m ] ~samples ~seed ()) in
  let reference, baseline_wall = run 1 in
  let job_counts =
    List.sort_uniq compare (List.filter (fun j -> j <= max_jobs) [ 1; 2; 4; max_jobs ])
  in
  List.map
    (fun j ->
      let rows, wall = if j = 1 then (reference, baseline_wall) else run j in
      {
        pjobs = j;
        wall_s = wall;
        speedup = baseline_wall /. wall;
        identical = rows = reference;
      })
    job_counts

let print_parallel_speedup ~m ~samples rows =
  pr "\nP1. Deterministic trial engine — claim31 (m=%d, %d samples) sharded over domains\n" m
    samples;
  pr "    %d cores recommended by the runtime; identical = rows bit-equal to jobs=1\n"
    (Stdx.Parallel.default_jobs ());
  pr "%6s %10s %9s %10s\n" "jobs" "wall (s)" "speedup" "identical";
  List.iter
    (fun r -> pr "%6d %10.3f %9.2f %10b\n" r.pjobs r.wall_s r.speedup r.identical)
    rows

(* ------------------------------------------------------------------ *)

let run_all ?(fast = false) ?jobs () =
  let jobs = match jobs with Some j when j > 0 -> j | Some _ | None -> Stdx.Parallel.default_jobs () in
  let total = ref 0. in
  let table name f =
    let (), wall = Stdx.Parallel.timed f in
    total := !total +. wall;
    pr "    [%s: %.2f s wall]\n%!" name wall
  in
  let rs_ms = if fast then [ 5; 10; 25 ] else [ 5; 10; 25; 50; 100; 200 ] in
  table "T1" (fun () -> print_rs_table (rs_table ~ms:rs_ms));
  let behrend_ms = if fast then [ 10; 30; 100 ] else [ 10; 30; 100; 300; 1000; 3000; 10000 ] in
  table "T2" (fun () -> print_behrend_table (behrend_table ~ms:behrend_ms));
  let claim_ms = if fast then [ 10; 25 ] else [ 10; 25; 50 ] in
  table "T3" (fun () ->
      print_claim31 (claim31 ~jobs ~ms:claim_ms ~samples:(if fast then 5 else 20) ~seed:7 ()));
  table "F4" (fun () ->
      print_budget_sweep
        (budget_sweep ~jobs ~m:25
           ~budgets:(if fast then [ 8; 64; 512 ] else [ 8; 16; 32; 64; 128; 256; 512; 1024 ])
           ~trials:(if fast then 3 else 10) ~seed:11 ()));
  table "F5" (fun () ->
      print_info_accounting (info_accounting ~bits:(if fast then [ 2; 6 ] else [ 0; 2; 4; 6; 10 ])));
  table "T6" (fun () ->
      print_upper_bounds (upper_bounds ~ns:(if fast then [ 64; 128 ] else [ 64; 128; 256 ]) ~seed:3));
  table "T6b" (fun () ->
      print_coloring_contrast
        (coloring_contrast ~ns:(if fast then [ 128; 256 ] else [ 256; 512; 1024; 2048 ]) ~seed:19));
  table "F7" (fun () ->
      print_bound_curve (bound_curve ~ms:(if fast then [ 10; 50 ] else [ 10; 25; 50; 100; 200; 400 ])));
  table "T8" (fun () ->
      print_reduction
        (reduction_check ~ms:(if fast then [ 5; 10 ] else [ 5; 10; 25 ])
           ~samples:(if fast then 3 else 10) ~seed:23));
  table "F9" (fun () ->
      print_bridge
        (bridge
           ~halves:(if fast then [ 32 ] else [ 32; 128; 512 ])
           ~samples:[ 1; 2; 4 ] ~trials:(if fast then 5 else 20) ~seed:29));
  table "F10" (fun () ->
      print_approx_matching
        (approx_matching
           ~ns:(if fast then [ 40 ] else [ 40; 80; 160 ])
           ~budgets:[ 8; 24; 64; 256 ] ~trials:(if fast then 3 else 8) ~seed:31));
  table "F11" (fun () ->
      print_k_sweep
        (k_sweep ~m:25
           ~ks:(if fast then [ 5; 25 ] else [ 3; 6; 12; 25 ])
           ~budgets:[ 4; 8; 16; 32; 64; 128 ] ~trials:(if fast then 3 else 8) ~seed:37));
  table "T10" (fun () ->
      print_stream_table (stream_table ~ns:(if fast then [ 24 ] else [ 24; 48; 96 ]) ~seed:41));
  table "T11" (fun () -> print_connectivity_table (connectivity_table ~seed:43));
  table "T12" (fun () ->
      print_rounds_table (rounds_table ~ms:(if fast then [ 10 ] else [ 10; 25; 50 ]) ~seed:47));
  table "T2b" (fun () ->
      print_packing_table
        (packing_table ~jobs ~ms:(if fast then [ 5; 10 ] else [ 5; 10; 25; 50 ])
           ~tries:(if fast then 500 else 3000) ~seed:53 ()));
  table "F5b" (fun () ->
      print_estimate_accounting
        (estimate_accounting ~jobs ~bits:(if fast then [ 10 ] else [ 6; 10; 14 ])
           ~samples:(if fast then 1500 else 6000) ~seed:59 ()));
  table "T13" (fun () ->
      print_yao_table
        (yao_table ~m:10 ~budgets:[ 16; 32; 48 ] ~instances:(if fast then 8 else 20)
           ~seeds:(if fast then 4 else 8) ~seed:61));
  table "T14" (fun () ->
      print_bcc_table
        (bcc_table ~ms:(if fast then [ 10 ] else [ 10; 25 ]) ~trials:(if fast then 3 else 10)
           ~seed:67));
  table "P1" (fun () ->
      let m = if fast then 10 else 25 in
      let samples = if fast then 8 else 40 in
      print_parallel_speedup ~m ~samples (parallel_speedup ~jobs ~m ~samples ~seed:71 ()));
  pr "\nTotal wall-clock: %.2f s (jobs=%d; every table bit-identical at any job count)\n" !total
    jobs

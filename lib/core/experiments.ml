(* Compatibility facade over the per-table experiment modules.

   The monolith this file used to be now lives in [Exp_rs], [Exp_behrend],
   ..., one module per DESIGN.md §4 table, each registered in [Exp_all]
   and rendered through [Report.Tabular]. This facade re-exports the old
   record types (as equations, so existing field accesses keep compiling)
   and the old compute/print entry points, delegating everything. New code
   should go through [Exp_registry] / [Exp_all] instead. *)

module Params = Rsgraph.Params
module T = Report.Tabular

let print_table t = print_string (T.to_text t)

(* ------------------------------------------------------------------ *)
(* T1: RS graph parameter table                                        *)

type rs_verified_row = Exp_rs.row = { row : Params.rs_row; verified : bool }

let rs_table ~ms = Exp_rs.compute ~ms ()
let print_rs_table rows = print_table (Exp_rs.table_of rows)

(* ------------------------------------------------------------------ *)
(* T2: Behrend sets                                                    *)

type behrend_row = Exp_behrend.row = {
  m : int;
  greedy_size : int;
  behrend_size : int;
  best_size : int;
  exact_size : int option;
  rate : float;
}

let behrend_table ~ms = Exp_behrend.compute ~ms ()
let print_behrend_table rows = print_table (Exp_behrend.table_of rows)

(* ------------------------------------------------------------------ *)
(* T2b: packed RS vs Behrend                                           *)

type packing_row = Exp_packing.row = {
  pn : int;
  pr : int;
  packed_t : int;
  behrend_t : int;
  tries : int;
}

let packing_table ?jobs ~ms ~tries ~seed () = Exp_packing.compute ?jobs ~ms ~tries ~seed ()
let print_packing_table rows = print_table (Exp_packing.table_of rows)

(* ------------------------------------------------------------------ *)
(* T3: Claim 3.1                                                       *)

type claim_row = Exp_claim31.row = {
  m : int;
  k : int;
  r : int;
  n : int;
  samples : int;
  min_union : int;
  mean_union : float;
  chernoff_threshold : float;
  min_unique_unique : int;
  claim_threshold : float;
  violations : int;
  failure_bound : float;
  consistent : bool;
}

let claim31 ?jobs ~ms ~samples ~seed () = Exp_claim31.compute ?jobs ~ms ~samples ~seed ()
let print_claim31 rows = print_table (Exp_claim31.table_of rows)

(* ------------------------------------------------------------------ *)
(* F4: budget sweep                                                    *)

type sweep_row = Exp_budget_sweep.sweep_row = {
  budget_bits : int;
  strategy : string;
  special_recovered : float;
  relaxed_success : float;
  maximal_success : float;
}

type sweep = Exp_budget_sweep.sweep = {
  m : int;
  k : int;
  r : int;
  n : int;
  predicted_bits : float;
  oracle_success : float;
  oracle_bits : int;
  rows : sweep_row list;
}

let budget_sweep ?jobs ~m ?k ~budgets ~trials ~seed () =
  Exp_budget_sweep.compute ?jobs ~m ?k ~budgets ~trials ~seed ()

let print_budget_sweep sweep = print_table (Exp_budget_sweep.table_of sweep)

(* ------------------------------------------------------------------ *)
(* F5: information accounting                                          *)

let info_accounting ~bits = Exp_info_accounting.compute ~bits
let print_info_accounting reports = print_table (Exp_info_accounting.table_of reports)

(* ------------------------------------------------------------------ *)
(* F5b: sampled information estimates vs exact                         *)

type estimate_row = Exp_estimate_info.row = {
  ebits : int;
  samples : int;
  exact_info : float;
  estimated_info : float;
  abs_error : float;
}

let estimate_accounting ?jobs ~bits ~samples ~seed () =
  Exp_estimate_info.compute ?jobs ~bits ~samples ~seed ()

let print_estimate_accounting rows = print_table (Exp_estimate_info.table_of rows)

(* ------------------------------------------------------------------ *)
(* T6: upper-bound landscape                                           *)

type ub_row = Exp_upper_bounds.row = {
  n : int;
  agm_forest_bits : int;
  agm_ok : bool;
  coloring_bits : int;
  coloring_ok : bool;
  trivial_mm_bits : int;
  two_round_mm_bits : int;
  two_round_mm_ok : bool;
  two_round_mis_bits : int;
  two_round_mis_ok : bool;
}

let upper_bounds ~ns ~seed = Exp_upper_bounds.compute ~ns ~seed
let print_upper_bounds rows = print_table (Exp_upper_bounds.table_of rows)

(* ------------------------------------------------------------------ *)
(* T6b: coloring contrast on dense graphs                              *)

type coloring_row = Exp_coloring_contrast.row = {
  cn : int;
  delta : int;
  list_size : int;
  palette_bits : int;
  full_bits : int;
  ratio : float;
  proper : bool;
}

let coloring_contrast ~ns ~seed = Exp_coloring_contrast.compute ~ns ~seed
let print_coloring_contrast rows = print_table (Exp_coloring_contrast.table_of rows)

(* ------------------------------------------------------------------ *)
(* F7: the gap                                                         *)

type curve_row = Exp_bound_curve.row = {
  m : int;
  n_dmm : int;
  lower_bound_bits : float;
  sqrt_n : float;
  trivial_bits : float;
  two_round_bits : float;
}

let bound_curve ~ms = Exp_bound_curve.compute ~ms
let print_bound_curve rows = print_table (Exp_bound_curve.table_of rows)

(* ------------------------------------------------------------------ *)
(* T8: reduction                                                       *)

type reduction_row = Exp_reduction.row = {
  m : int;
  samples : int;
  lemma41_all : bool;
  complete_all : bool;
  min_rule_exact_all : bool;
  mean_valid_fraction : float;
  cost_ratio : float;
}

let reduction_check ~ms ~samples ~seed = Exp_reduction.compute ~ms ~samples ~seed
let print_reduction rows = print_table (Exp_reduction.table_of rows)

(* ------------------------------------------------------------------ *)
(* F9: bridge                                                          *)

type bridge_row = Exp_bridge.row = {
  half : int;
  samples_per_vertex : int;
  max_bits : int;
  success : float;
}

let bridge ~halves ~samples ~trials ~seed = Exp_bridge.compute ~halves ~samples ~trials ~seed
let print_bridge rows = print_table (Exp_bridge.table_of rows)

(* ------------------------------------------------------------------ *)
(* F10: approximate matching vs budget                                 *)

type approx_row = Exp_approx_matching.row = {
  an : int;
  abudget : int;
  ratio_mean : float;
  ratio_min : float;
}

let approx_matching ~ns ~budgets ~trials ~seed =
  Exp_approx_matching.compute ~ns ~budgets ~trials ~seed

let print_approx_matching rows = print_table (Exp_approx_matching.table_of rows)

(* ------------------------------------------------------------------ *)
(* F11: k vs t ablation                                                *)

type k_sweep_row = Exp_k_sweep.row = {
  kk : int;
  kt_ratio : float;
  predicted : float;
  threshold_bits : int option;
}

let k_sweep ~m ~ks ~budgets ~trials ~seed = Exp_k_sweep.compute ~m ~ks ~budgets ~trials ~seed
let print_k_sweep rows = print_table (Exp_k_sweep.table_of rows)

(* ------------------------------------------------------------------ *)
(* T10: dynamic streams                                                *)

type stream_row = Exp_streams.row = {
  sn : int;
  decoys : int;
  events : int;
  forest_ok : bool;
  messages_identical : bool;
  greedy_mm_ok : bool;
}

let stream_table ~ns ~seed = Exp_streams.compute ~ns ~seed
let print_stream_table rows = print_table (Exp_streams.table_of rows)

(* ------------------------------------------------------------------ *)
(* T11: edge connectivity + bipartiteness sketches                     *)

type connectivity_row = Exp_connectivity.row = {
  workload : string;
  k_cert : int;
  cert_valid : bool;
  estimate : int;
  truth : int;
  bipartite_sketch : bool;
  bipartite_truth : bool;
  conn_bits : int;
}

let connectivity_table ~seed = Exp_connectivity.compute ~seed
let print_connectivity_table rows = print_table (Exp_connectivity.table_of rows)

(* ------------------------------------------------------------------ *)
(* T12: one round fails, two rounds suffice, on D_MM itself            *)

type rounds_row = Exp_rounds.row = {
  rm : int;
  one_round_undominated : float;
  one_round_bits : int;
  two_round_mm_maximal : bool;
  two_round_mm_bits : int;
  two_round_mis_maximal : bool;
  two_round_mis_bits : int;
  sqrt_n_dmm : float;
}

let rounds_table ~ms ~seed = Exp_rounds.compute ~ms ~seed
let print_rounds_table rows = print_table (Exp_rounds.table_of rows)

(* ------------------------------------------------------------------ *)
(* T13: the Yao averaging step                                         *)

type yao_row = Exp_yao.row = {
  ym : int;
  ybudget : int;
  randomized : float;
  derandomized : float;
  dominates : bool;
}

let yao_table ~m ~budgets ~instances ~seeds ~seed =
  Exp_yao.compute ~m ~budgets ~instances ~seeds ~seed

let print_yao_table rows = print_table (Exp_yao.table_of rows)

(* ------------------------------------------------------------------ *)
(* T14: BCC rounds/bandwidth trade-off                                 *)

type bcc_row = Exp_bcc.row = {
  bn : int;
  bcc_rounds : int;
  bcc_bits_per_round : int;
  bcc_total_bits : int;
  bcc_maximal : bool;
  one_round_same_budget_maximal : float;
}

let bcc_table ~ms ~trials ~seed = Exp_bcc.compute ~ms ~trials ~seed
let print_bcc_table rows = print_table (Exp_bcc.table_of rows)

(* ------------------------------------------------------------------ *)
(* P1: the parallel trial engine itself                                *)

type speedup_row = Exp_speedup.row = {
  pjobs : int;
  wall_s : float;
  speedup : float;
  identical : bool;
}

let parallel_speedup ?jobs ~m ~samples ~seed () = Exp_speedup.compute ?jobs ~m ~samples ~seed ()

let print_parallel_speedup ~m ~samples rows = print_table (Exp_speedup.table_of ~m ~samples rows)

(* ------------------------------------------------------------------ *)

let run_all ?(fast = false) ?jobs () = Exp_all.run_all ~fast ?jobs ()

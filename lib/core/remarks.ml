module Graph = Dgraph.Graph

let base_graph_shared dmm =
  (* Re-map every copy's pre-drop edge set back through its labelling; all
     copies must land on the same RS edge list. *)
  let rs_edges = Array.to_list dmm.Hard_dist.rs_edges in
  List.for_all
    (fun i ->
      let back = Hashtbl.create 64 in
      Array.iteri (fun v label -> Hashtbl.replace back label v) dmm.Hard_dist.copy_map.(i);
      List.for_all
        (fun (u, v) ->
          let lu = dmm.Hard_dist.copy_map.(i).(u) and lv = dmm.Hard_dist.copy_map.(i).(v) in
          Hashtbl.find_opt back lu = Some u && Hashtbl.find_opt back lv = Some v)
        rs_edges)
    (List.init dmm.Hard_dist.k (fun i -> i))

let distributed_h dmm =
  let n = dmm.Hard_dist.n in
  let g = dmm.Hard_dist.graph in
  let public = Stdx.Bitset.create n in
  Array.iter (Stdx.Bitset.add public) dmm.Hard_dist.public_labels;
  (* Each player u contributes, from local knowledge only:
     - copies of its own G-edges on both sides;
     - if public: its biclique edges to every public vertex (incl itself),
       which requires exactly Remark 3.6(iii). *)
  let b = Graph.Builder.create ~capacity:(max 1 (4 * Graph.m g)) (2 * n) in
  for u = 0 to n - 1 do
    Graph.iter_neighbors
      (fun v ->
        Graph.Builder.add_edge b u v;
        Graph.Builder.add_edge b (u + n) (v + n))
      g u;
    if Stdx.Bitset.mem public u then
      Array.iter
        (fun p ->
          Graph.Builder.add_edge b u (p + n);
          Graph.Builder.add_edge b p (u + n))
        dmm.Hard_dist.public_labels
  done;
  Graph.Builder.freeze b

let meets_remark_iv dmm output =
  let verdict = Dgraph.Matching.verify dmm.Hard_dist.graph output in
  verdict.Dgraph.Matching.edges_exist && verdict.Dgraph.Matching.disjoint
  && float_of_int (List.length (Hard_dist.unique_unique_edges dmm output))
     >= float_of_int (dmm.Hard_dist.k * Hard_dist.r dmm) /. 4.

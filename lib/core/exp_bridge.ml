(* F9: Footnote 1 — recovering the bridge between two random clouds via
   AGM-style sampling (DESIGN.md §4). *)

module T = Report.Tabular
module R = Exp_registry
module Model = Sketchmodel.Model
module Public_coins = Sketchmodel.Public_coins

type row = { half : int; samples_per_vertex : int; max_bits : int; success : float }

let compute ~halves ~samples ~trials ~seed =
  List.concat_map
    (fun half ->
      List.map
        (fun s ->
          let success =
            Agm.Bridge_demo.success_probability ~half ~samples_per_vertex:s ~trials ~seed
          in
          let rng = Stdx.Prng.create (Stdx.Hashing.mix64 (seed + half + s)) in
          let g, _ = Dgraph.Gen.bridge_of_clouds rng ~half ~p:0.5 in
          let result =
            Agm.Bridge_demo.run g ~samples_per_vertex:s
              (Public_coins.create (Stdx.Hashing.mix64 (seed * 3 + half)))
          in
          { half; samples_per_vertex = s; max_bits = result.Agm.Bridge_demo.stats.Model.max_bits; success })
        samples)
    halves

let schema =
  [
    T.int_col ~width:7 "half";
    T.int_col ~width:9 ~header:"samples" "samples_per_vertex";
    T.int_col ~width:10 ~header:"max bits" "max_bits";
    T.float_col ~width:9 ~digits:2 "success";
  ]

let to_row r = T.[ Int r.half; Int r.samples_per_vertex; Int r.max_bits; Float r.success ]
let preamble = [ ""; "F9. Footnote 1 — recovering the bridge between two random clouds" ]

let experiment : R.experiment =
  (module struct
    type nonrec row = row

    let id = "bridge"
    let title = "F9"
    let doc = "F9: Footnote 1 — find the bridge between two random clouds."

    let params =
      R.std_params
        [
          R.ints_param "halves" ~doc:"Cloud sizes (n/2)." [ 32; 128; 512 ];
          R.ints_param "samples" ~doc:"Sampled edges per vertex." [ 1; 2; 4 ];
          R.int_param "trials" ~doc:"Trials per configuration." 20;
        ]

    let schema = schema
    let to_row = to_row

    let run ps =
      compute ~halves:(R.ints_value ps "halves") ~samples:(R.ints_value ps "samples")
        ~trials:(R.int_value ps "trials") ~seed:(R.seed ps)

    let preamble _ _ = preamble
    let footer _ = []

    let fast_overrides =
      [ ("halves", R.Vints [ 32 ]); ("trials", R.Vint 5); ("seed", R.Vint 29) ]

    let full_overrides =
      [ ("halves", R.Vints [ 32; 128; 512 ]); ("trials", R.Vint 20); ("seed", R.Vint 29) ]

    let smoke = [ ("halves", R.Vints [ 12 ]); ("samples", R.Vints [ 2 ]); ("trials", R.Vint 2) ]
  end)

let table_of rows = T.table ~preamble schema (List.map to_row rows)

module Graph = Dgraph.Graph
module Model = Sketchmodel.Model

let left u = u

let right dmm u = dmm.Hard_dist.n + u

(* H is assembled straight from G's columnar store: each G edge appears on
   both sides, plus the public-public biclique across the middle. The three
   blocks live on disjoint vertex pairs (left x left, right x right,
   left x right), so the exactly-sized builder freezes without collapsing
   anything. *)
let build_h dmm =
  Stdx.Trace.span "reduction.build_h" @@ fun () ->
  let n = dmm.Hard_dist.n in
  let g = dmm.Hard_dist.graph in
  let public = dmm.Hard_dist.public_labels in
  let p = Array.length public in
  let b = Graph.Builder.create ~capacity:(max 1 ((2 * Graph.m g) + (p * p))) (2 * n) in
  Graph.iter_edges
    (fun u v ->
      Graph.Builder.add_edge b u v;
      Graph.Builder.add_edge b (u + n) (v + n))
    g;
  Array.iter (fun u -> Array.iter (fun v -> Graph.Builder.add_edge b u (v + n)) public) public;
  Graph.Builder.freeze b

type side = Left | Right

let copies dmm side u = match side with Left -> left u | Right -> right dmm u

let side_public_empty dmm mis side =
  let in_mis = Stdx.Bitset.create (2 * dmm.Hard_dist.n) in
  List.iter (Stdx.Bitset.add in_mis) mis;
  Array.for_all (fun u -> not (Stdx.Bitset.mem in_mis (copies dmm side u))) dmm.Hard_dist.public_labels

let extract dmm mis side =
  let in_mis = Stdx.Bitset.create (2 * dmm.Hard_dist.n) in
  List.iter (Stdx.Bitset.add in_mis) mis;
  Hard_dist.special_pairs dmm
  |> List.filter_map (fun (_, (u, v)) ->
         let cu = copies dmm side u and cv = copies dmm side v in
         if Stdx.Bitset.mem in_mis cu && Stdx.Bitset.mem in_mis cv then None else Some (u, v))

let referee_output dmm mis =
  let ml = extract dmm mis Left and mr = extract dmm mis Right in
  if List.length ml >= List.length mr then ml else mr

let referee_output_min dmm mis =
  let ml = extract dmm mis Left and mr = extract dmm mis Right in
  if List.length ml <= List.length mr then ml else mr

type verdict = {
  lemma41_ok : bool;
  complete : bool;
  output_size : int;
  valid_edges : int;
  surviving : int;
  side_used : side;
}

let edge_set edges =
  let table = Hashtbl.create (List.length edges) in
  List.iter (fun (u, v) -> Hashtbl.replace table (Graph.normalize_edge u v) ()) edges;
  table

let check dmm mis =
  let surviving_pairs = List.map snd (Hard_dist.surviving_special dmm) in
  let surviving_set = edge_set surviving_pairs in
  (* Lemma 4.1 on a public-free side: extracted = exactly the survivors. *)
  let lemma_on side =
    let extracted = extract dmm mis side in
    List.length extracted = List.length surviving_pairs
    && List.for_all (fun e -> Hashtbl.mem surviving_set e) extracted
  in
  let lemma41_ok =
    (side_public_empty dmm mis Left && lemma_on Left)
    || (side_public_empty dmm mis Right && lemma_on Right)
  in
  let ml = extract dmm mis Left and mr = extract dmm mis Right in
  let output, side_used =
    if List.length ml >= List.length mr then (ml, Left) else (mr, Right)
  in
  let output_set = edge_set output in
  {
    lemma41_ok;
    complete = List.for_all (fun e -> Hashtbl.mem output_set e) surviving_pairs;
    output_size = List.length output;
    valid_edges =
      List.length (List.filter (fun (u, v) -> Graph.mem_edge dmm.Hard_dist.graph u v) output);
    surviving = List.length surviving_pairs;
    side_used;
  }

let run_with_solver dmm solver = check dmm (solver (build_h dmm))

let end_to_end_cost dmm protocol coins =
  let h = build_h dmm in
  let n2 = Graph.n h in
  let h_views = Model.views h in
  let writers = Array.map (fun view -> protocol.Model.player view coins) h_views in
  let sizes = Array.map Stdx.Bitbuf.Writer.length_bits writers in
  let sketches = Array.map Stdx.Bitbuf.Reader.of_writer writers in
  let mis = protocol.Model.referee ~n:n2 ~sketches coins in
  let n = dmm.Hard_dist.n in
  (* Each G-player u simulates both u_l and u_r; its message is the
     concatenation of the two H-messages. *)
  let g_player_bits = Array.init n (fun u -> sizes.(u) + sizes.(n + u)) in
  let stats_of arr players =
    let total = Array.fold_left ( + ) 0 arr in
    {
      Model.max_bits = Array.fold_left max 0 arr;
      total_bits = total;
      avg_bits = float_of_int total /. float_of_int players;
      players;
    }
  in
  (check dmm mis, stats_of g_player_bits n, stats_of sizes n2)

(* T16: the rounds-vs-communication frontier for MIS on D_MM — the
   r-round prefix family against the Luby-style upper-bound rows
   (DESIGN.md §4, arXiv:2209.09049). *)

module T = Report.Tabular
module R = Exp_registry
module Public_coins = Sketchmodel.Public_coins
module Rs = Rsgraph.Rs_graph

type row = {
  fm : int;
  protocol : string;
  rounds_used : int;
  max_bits : int;
  total_bits : int;
  broadcast_bits : int;
  r1_max : int;
  maximal : bool;
  sqrt_n : float;
}

let row_of ~m ~g ~sqrt_n name (mis, (stats : Multipass.Rounds.stats)) =
  {
    fm = m;
    protocol = name;
    rounds_used = stats.Multipass.Rounds.rounds;
    max_bits = stats.Multipass.Rounds.max_bits;
    total_bits = stats.Multipass.Rounds.total_bits;
    broadcast_bits = stats.Multipass.Rounds.broadcast_bits;
    r1_max = stats.Multipass.Rounds.round_max.(0);
    maximal = Dgraph.Mis.is_maximal g mis;
    sqrt_n;
  }

let compute ~ms ~rounds ~seed =
  List.concat_map
    (fun m ->
      let rs = Rs.bipartite m in
      let rng = Stdx.Prng.create (Stdx.Hashing.mix64 (seed + m)) in
      let dmm = Hard_dist.sample rs rng in
      let g = dmm.Hard_dist.graph in
      let sqrt_n = sqrt (float_of_int dmm.Hard_dist.n) in
      let coins = Public_coins.create (Stdx.Hashing.mix64 (seed * 17 + m)) in
      let row = row_of ~m ~g ~sqrt_n in
      let frontier =
        List.map
          (fun r ->
            row
              (Printf.sprintf "prefix r=%d" r)
              (Multipass.Frontier.run ~rounds:r g coins))
          rounds
      in
      let luby =
        List.map
          (fun kind ->
            row
              ("luby " ^ Multipass.Luby.priority_name kind)
              (Multipass.Luby.run kind g coins))
          [ Multipass.Luby.Random; Multipass.Luby.Degree; Multipass.Luby.Index ]
      in
      frontier @ luby)
    ms

let schema =
  [
    T.int_col ~width:5 "m";
    T.str_col ~width:14 ~left:true "protocol";
    T.int_col ~width:7 ~header:"rounds" "rounds_used";
    T.int_col ~width:9 ~header:"max bits" "max_bits";
    T.int_col ~width:11 ~header:"total bits" "total_bits";
    T.int_col ~width:10 ~header:"bcast bits" "broadcast_bits";
    T.int_col ~width:8 ~header:"r1 max" "r1_max";
    T.bool_col ~width:8 "maximal";
    T.float_col ~width:9 ~digits:1 ~header:"sqrt(n)" "sqrt_n";
  ]

let to_row r =
  T.
    [
      Int r.fm;
      Str r.protocol;
      Int r.rounds_used;
      Int r.max_bits;
      Int r.total_bits;
      Int r.broadcast_bits;
      Int r.r1_max;
      Bool r.maximal;
      Float r.sqrt_n;
    ]

let preamble =
  [
    "";
    "T16. Round frontier on D_MM: r-round prefix MIS vs Luby-style rounds";
    "     (r=1 is the one-round regime of the paper's lower bound)";
  ]

let experiment : R.experiment =
  (module struct
    type nonrec row = row

    let id = "round-frontier"
    let title = "T16"
    let doc = "T16: bits-per-round frontier for MIS (prefix r-round vs Luby variants)."

    let params =
      R.std_params
        [
          R.ints_param "m" ~doc:"RS parameters m." [ 10; 25 ];
          R.ints_param "rounds" ~doc:"Prefix-protocol round counts r." [ 1; 2; 3; 4 ];
        ]

    let schema = schema
    let to_row = to_row

    let run ps =
      compute ~ms:(R.ints_value ps "m") ~rounds:(R.ints_value ps "rounds")
        ~seed:(R.seed ps)

    let preamble _ _ = preamble
    let footer _ = []

    let fast_overrides =
      [ ("m", R.Vints [ 10 ]); ("rounds", R.Vints [ 1; 2; 4 ]); ("seed", R.Vint 53) ]

    let full_overrides =
      [ ("m", R.Vints [ 10; 25 ]); ("rounds", R.Vints [ 1; 2; 3; 4 ]); ("seed", R.Vint 53) ]

    let smoke = [ ("m", R.Vints [ 4 ]); ("rounds", R.Vints [ 1; 2 ]); ("seed", R.Vint 53) ]
  end)

let table_of rows = T.table ~preamble schema (List.map to_row rows)

module Graph = Dgraph.Graph

type order = Lexicographic | Random of int | Public_first

let order_name = function
  | Lexicographic -> "lexicographic"
  | Random seed -> Printf.sprintf "random(%d)" seed
  | Public_first -> "public-first"

let maximal_matching_under dmm order =
  let g = dmm.Hard_dist.graph in
  let edges = Graph.edges_array g in
  (match order with
  | Lexicographic -> ()
  | Random seed -> Stdx.Prng.shuffle (Stdx.Prng.create seed) edges
  | Public_first ->
      let pub = Stdx.Bitset.create dmm.Hard_dist.n in
      Array.iter (Stdx.Bitset.add pub) dmm.Hard_dist.public_labels;
      let touches_public (u, v) = Stdx.Bitset.mem pub u || Stdx.Bitset.mem pub v in
      (* Stable partition: public-touching edges first. *)
      let first = Array.of_list (List.filter touches_public (Array.to_list edges)) in
      let second =
        Array.of_list (List.filter (fun e -> not (touches_public e)) (Array.to_list edges))
      in
      Array.blit first 0 edges 0 (Array.length first);
      Array.blit second 0 edges (Array.length first) (Array.length second));
  Dgraph.Matching.greedy g ~order:edges ()

type stats = {
  k : int;
  r : int;
  union_special : int;
  chernoff_threshold : float;
  claim_threshold : float;
  failure_bound : float;
  per_order : (string * int * bool) list;
}

let check dmm ?(orders = [ Lexicographic; Random 17; Random 43; Public_first ]) () =
  Stdx.Trace.span "claims.check" @@ fun () ->
  let k = dmm.Hard_dist.k and r = Hard_dist.r dmm in
  let union_special = List.length (Hard_dist.surviving_special dmm) in
  let per_order =
    List.map
      (fun order ->
        let matching = maximal_matching_under dmm order in
        let uu = List.length (Hard_dist.unique_unique_edges dmm matching) in
        (order_name order, uu, Dgraph.Matching.is_maximal dmm.Hard_dist.graph matching))
      orders
  in
  {
    k;
    r;
    union_special;
    chernoff_threshold = float_of_int (k * r) /. 3.;
    claim_threshold = float_of_int (k * r) /. 4.;
    failure_bound = 2. ** (-.float_of_int (k * r) /. 10.);
    per_order;
  }

let holds stats =
  List.for_all (fun (_, uu, maximal) -> maximal && float_of_int uu >= stats.claim_threshold)
    stats.per_order

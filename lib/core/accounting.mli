(** Exact information accounting for Theorem 1 (Lemmas 3.3–3.5) on
    enumerable micro-instances of [D_MM].

    The proof of Theorem 1 is a chain of exact information (in)equalities.
    On a micro instance the entire sample space [(σ, j*, edge-drop coins)]
    is enumerable, so every quantity in the chain can be computed
    {e exactly} for a concrete protocol:

    - Eq (1):   [I(M_{1,J}..M_{k,J}; Π | Σ, J) = k·r − H(M | Π, Σ, J)]
    - Lemma 3.3 (referee side): [H(M | Π, Σ, J) <= Pr(O=0)·kr + (kr − E|M^U_π|) + 1]
    - Lemma 3.4: [I(M ; Π | Σ, J) <= H(Π(P)) + Σ_i I(M_{i,J} ; Π(U_i) | Σ, J)]
    - Lemma 3.5: [I(M_{i,J} ; Π(U_i) | Σ, J) <= H(Π(U_i)) / t]
    - Theorem 1: [I(M ; Π | Σ, J) <= |P|·b + k·N·b/t]

    Two Σ modes:
    - [Enumerate_sigma]: Σ uniform over {e all} [n!] permutations — the
      honest sample space; requires [n <= 7], i.e. the {!tiny_rs} instance.
      All five checks apply.
    - [Fix_sigma]: Σ pinned to the identity. Eq (1) and Lemmas 3.3/3.4
      hold conditioned on any fixed σ and are still checked exactly;
      Lemma 3.5's direct-sum argument averages over Σ, so its per-copy
      check is reported but only guaranteed in [Enumerate_sigma] mode.

    The protocols analysed are the deterministic budget-[b] family used
    throughout: every player (in the augmented public/unique model of
    Section 3.1) sends a [b]-bit prefix (or hash) of its adjacency
    bitmap. *)

type strategy =
  | Truncate  (** first [b] bits of the player's adjacency bitmap *)
  | Hash  (** a [b]-bit hash of the whole neighbourhood *)

type sigma_mode = Fix_sigma | Enumerate_sigma

type spec = {
  rs : Rsgraph.Rs_graph.t;
  k : int;
  bits : int;  (** the per-player budget [b] *)
  strategy : strategy;
  sigma_mode : sigma_mode;
}

type report = {
  spec_bits : int;
  outcomes : int;
  sigma_enumerated : bool;
  kr : float;
  info : float;  (** [I(M_{1,J}..M_{k,J} ; Π | Σ, J)] *)
  h_m_given_pi : float;  (** [H(M | Π, Σ, J)] *)
  eq1_residual : float;  (** should be ~0 *)
  expected_recovered : float;  (** [E|M^U_π|] for the certifying referee *)
  lemma33_slack : float;  (** [>= 0] *)
  h_public : float;  (** [H(Π(P))] *)
  per_copy_info : float array;  (** [I(M_{i,J} ; Π(U_i) | Σ, J)] *)
  per_copy_h : float array;  (** [H(Π(U_i))] *)
  lemma34_slack : float;  (** [>= 0] *)
  lemma35_slacks : float array;  (** [>= 0] when [sigma_enumerated] *)
  budget_bound : float;  (** [|P|·b + k·N·b/t] *)
  theorem_slack : float;  (** [>= 0] *)
}

val analyze : spec -> report
(** Requires the space to stay enumerable: [k·|E(rs)| <= 16], and in
    [Enumerate_sigma] mode additionally [n <= 7]. *)

val message : spec -> Sketchmodel.Model.view -> string
(** The [b]-bit message of one player given its view: the adjacency
    bitmap over labels [< bits] ({!Truncate}) or a hash of the whole
    ordered neighbourhood ({!Hash}). The reference semantics the
    enumeration fast paths must reproduce byte-for-byte. *)

val enumerated_views :
  spec -> sigma:int array -> j:int -> code:int -> Sketchmodel.Model.view array
(** The augmented views of one outcome [(σ, j, code)] of the enumeration,
    computed without materialising the outcome's graph ([code] packs the
    [k·|E(rs)|] edge-drop coins, row-major by copy as in {!analyze}).
    Byte-identical to
    [Hard_dist.augmented_views (Hard_dist.make rs ~k ~j_star:j ~sigma ~kept)]
    — the equivalence the test suite pins; {!analyze} runs on this
    graph-free path. *)

val enumerated_messages : spec -> sigma:int array -> j:int -> code:int -> string array
(** Per-player messages of the same outcome, in the player order of
    {!enumerated_views}, computed on the path {!analyze} actually takes:
    the bitmap fast path for {!Truncate} (messages written straight off
    the mapped edge arrays, no views), {!message} over views for
    {!Hash}. Byte-identical to [Array.map (message spec)
    (enumerated_views ...)] — the fast-path equivalence the test suite
    pins. *)

val tiny_rs : unit -> Rsgraph.Rs_graph.t
(** The [(1, 2)]-RS instance (two disjoint edges, [N = 4]) whose [D_MM]
    with [k = 2] has [n = 6] — small enough to enumerate all [6!]
    permutations. *)

val micro_rs : unit -> Rsgraph.Rs_graph.t
(** The genuine bipartite RS construction for [m = 2]
    ([N = 10], [r = 2], [t = 2]); used with [Fix_sigma]. *)

val all_inequalities_hold : report -> bool
(** All checks applicable to the report's Σ mode pass. *)

val pp_report : Format.formatter -> report -> unit

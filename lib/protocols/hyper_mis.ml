module Public_coins = Sketchmodel.Public_coins
module H = Dgraph.Hypergraph
module Writer = Stdx.Bitbuf.Writer
module Reader = Stdx.Bitbuf.Reader

let priority coins ~label u = Stdx.Prng.int (Public_coins.keyed coins label u) (1 lsl 40)

(* u strictly dominates v in priority order (ties by id). *)
let beats coins ~label u v =
  let pu = priority coins ~label u and pv = priority coins ~label v in
  pu > pv || (pu = pv && u > v)

(* Weak independence only needs the top-priority pin of every hyperedge
   to stay out: a vertex joins iff it is not the maximum of any incident
   edge. On 2-uniform hypergraphs this is exactly the graph local-minima
   protocol (not-max in every pair = min among neighbours). *)
let local_minima =
  {
    Hyper_views.name = "hyper-local-minima-mis";
    player =
      (fun view coins ->
        let w = Writer.create () in
        let v = view.Hyper_views.vertex in
        let is_max pins =
          Array.for_all (fun u -> u = v || beats coins ~label:"hmis-priority" v u) pins
        in
        Writer.bit w (not (Array.exists is_max view.Hyper_views.edges));
        w);
    referee =
      (fun ~n ~sketches _coins ->
        ignore n;
        let out = ref [] in
        Array.iteri (fun v r -> if Reader.bit r then out := v :: !out) sketches;
        List.rev !out);
  }

type state = { chosen : bool array; blocked : bool array }

(* Luby-style rounds. Per round, fresh public-coin priorities; an active
   vertex v looks at each incident edge e that is still [live] (no
   blocked pin — an edge with a blocked pin can never be completed):

   - if every other pin of some incident edge is chosen, v is blocked
     (joining would complete that edge) and says so;
   - otherwise v joins iff it is not the top-priority active pin of any
     live incident edge.

   Each live edge keeps its top active pin out for the round, so no edge
   is ever completed — even with simultaneous joins. The globally
   minimum-priority active vertex always either joins or blocks, so the
   active set shrinks every round and termination (all vertices chosen
   or blocked = maximality) needs at most n rounds. *)
let luby ~n =
  let round_label round = Printf.sprintf "hmis-luby-r%d" round in
  {
    Hyper_views.name = "hyper-luby-mis";
    rounds_limit = (4 * (n + 2));
    player =
      (fun ~round view state coins ->
        let w = Writer.create () in
        let v = view.Hyper_views.vertex in
        if not (state.chosen.(v) || state.blocked.(v)) then begin
          let label = round_label round in
          let blocked_now =
            Array.exists
              (fun pins -> Array.for_all (fun u -> u = v || state.chosen.(u)) pins)
              view.Hyper_views.edges
          in
          let joins =
            (not blocked_now)
            && not
                 (Array.exists
                    (fun pins ->
                      let live = Array.for_all (fun u -> not state.blocked.(u)) pins in
                      live
                      && Array.for_all
                           (fun u ->
                             u = v || state.chosen.(u) || beats coins ~label v u)
                           pins)
                    view.Hyper_views.edges)
          in
          Writer.bit w joins;
          Writer.bit w blocked_now
        end;
        w);
    step =
      (fun ~round:_ ~n ~state ~sketches _coins ->
        let chosen = Array.copy state.chosen and blocked = Array.copy state.blocked in
        Array.iteri
          (fun v r ->
            if Reader.remaining_bits r >= 2 then begin
              let joins = Reader.bit r in
              let blocked_now = Reader.bit r in
              if joins then chosen.(v) <- true
              else if blocked_now then blocked.(v) <- true
            end)
          sketches;
        let active = ref false in
        for v = 0 to n - 1 do
          if not (chosen.(v) || blocked.(v)) then active := true
        done;
        ({ chosen; blocked }, !active));
    encode_broadcast =
      (fun state ->
        let w = Writer.create () in
        Array.iter (fun c -> Writer.bit w c) state.chosen;
        Array.iter (fun b -> Writer.bit w b) state.blocked;
        w);
  }

let run_local_minima h coins = Hyper_views.run local_minima h coins

let run_luby h coins =
  let n = H.n h in
  let init = { chosen = Array.make n false; blocked = Array.make n false } in
  let state, stats = Hyper_views.run_multi (luby ~n) h ~init coins in
  let out = ref [] in
  for v = n - 1 downto 0 do
    if state.chosen.(v) then out := v :: !out
  done;
  (!out, stats)

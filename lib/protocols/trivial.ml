module Model = Sketchmodel.Model
module Graph = Dgraph.Graph
module Writer = Stdx.Bitbuf.Writer
module Reader = Stdx.Bitbuf.Reader

let player (view : Model.view) _coins =
  let w = Writer.create () in
  Writer.int_list w (Array.to_list view.Model.neighbors);
  w

let reconstruct ~n ~sketches =
  let edges = ref [] in
  Array.iteri
    (fun v r ->
      List.iter (fun u -> if u <> v && u >= 0 && u < n then edges := (v, u) :: !edges) (Reader.int_list r))
    sketches;
  Graph.create n !edges

let mm =
  {
    Model.name = "trivial-mm";
    player;
    referee =
      (fun ~n ~sketches _coins -> Dgraph.Matching.greedy (reconstruct ~n ~sketches) ());
  }

let mis =
  {
    Model.name = "trivial-mis";
    player;
    referee = (fun ~n ~sketches _coins -> Dgraph.Mis.greedy (reconstruct ~n ~sketches) ());
  }

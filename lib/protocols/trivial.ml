module Model = Sketchmodel.Model
module Graph = Dgraph.Graph
module Writer = Stdx.Bitbuf.Writer
module Reader = Stdx.Bitbuf.Reader

let player (view : Model.view) _coins =
  let w = Writer.create () in
  Writer.int_list w (Array.to_list view.Model.neighbors);
  w

let reconstruct ~n ~sketches =
  let b = Graph.Builder.create ~capacity:(max 16 n) n in
  Array.iteri
    (fun v r ->
      List.iter
        (fun u -> if u <> v && u >= 0 && u < n then Graph.Builder.add_edge b v u)
        (Reader.int_list r))
    sketches;
  Graph.Builder.freeze b

let mm =
  {
    Model.name = "trivial-mm";
    player;
    referee =
      (fun ~n ~sketches _coins -> Dgraph.Matching.greedy (reconstruct ~n ~sketches) ());
  }

let mis =
  {
    Model.name = "trivial-mis";
    player;
    referee = (fun ~n ~sketches _coins -> Dgraph.Mis.greedy (reconstruct ~n ~sketches) ());
  }

module Model = Sketchmodel.Model
module Public_coins = Sketchmodel.Public_coins
module Graph = Dgraph.Graph
module Writer = Stdx.Bitbuf.Writer
module Reader = Stdx.Bitbuf.Reader

let priority coins v = Stdx.Prng.int (Public_coins.keyed coins "mis-priority" v) (1 lsl 40)

let local_minima =
  {
    Model.name = "one-round-local-minima";
    player =
      (fun view coins ->
        let w = Writer.create () in
        let mine = priority coins view.Model.vertex in
        let beaten =
          Array.exists
            (fun u ->
              let p = priority coins u in
              p < mine || (p = mine && u < view.Model.vertex))
            view.Model.neighbors
        in
        Writer.bit w (not beaten);
        w);
    referee =
      (fun ~n ~sketches _coins ->
        ignore n;
        let out = ref [] in
        Array.iteri (fun v r -> if Reader.bit r then out := v :: !out) sketches;
        List.rev !out);
  }

let undominated_fraction g coins =
  let set, stats = Model.run local_minima g coins in
  let n = Graph.n g in
  let covered = Stdx.Bitset.create n in
  List.iter
    (fun v ->
      Stdx.Bitset.add covered v;
      Graph.iter_neighbors (Stdx.Bitset.add covered) g v)
    set;
  (float_of_int (n - Stdx.Bitset.cardinal covered) /. float_of_int n, stats)

let varint_bits v =
  let rec go v acc = if v < 128 then acc + 8 else go (v lsr 7) (acc + 8) in
  go (max 0 v) 0

let budgeted ~budget_bits =
  {
    Model.name = Printf.sprintf "one-round-mis-b%d" budget_bits;
    player =
      (fun view _coins ->
        let w = Writer.create () in
        (try
           Array.iter
             (fun u ->
               if Writer.length_bits w + varint_bits u > budget_bits then raise Exit;
               Writer.uvarint w u)
             view.Model.neighbors
         with Exit -> ());
        w);
    referee =
      (fun ~n ~sketches _coins ->
        let known = Array.make n [] in
        Array.iteri
          (fun v r ->
            while Reader.remaining_bits r >= 8 do
              let u = Reader.uvarint r in
              if u <> v && u >= 0 && u < n then begin
                known.(v) <- u :: known.(v);
                known.(u) <- v :: known.(u)
              end
            done)
          sketches;
        (* Greedy over the reported graph. *)
        let chosen = Stdx.Bitset.create n in
        let out = ref [] in
        for v = 0 to n - 1 do
          if not (List.exists (Stdx.Bitset.mem chosen) known.(v)) then begin
            Stdx.Bitset.add chosen v;
            out := v :: !out
          end
        done;
        List.rev !out);
  }

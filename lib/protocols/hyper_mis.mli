(** Hypergraph MIS protocols (weak independence) over {!Hyper_views}.

    {b Local minima (one-shot).} Public coins give every vertex a
    priority; weak independence only needs the top-priority pin of every
    hyperedge to stay out, so one bit — "I am not the maximum of any
    incident edge" — yields an independent set that is essentially never
    maximal. On 2-uniform hypergraphs this is exactly
    {!One_round_mis.local_minima}.

    {b Luby-style (multi-round).} Fresh priorities each round; an active
    vertex blocks itself when some incident edge has every other pin
    chosen, and otherwise joins unless it is the top-priority active pin
    of a live incident edge (an edge with a blocked pin can never be
    completed). Every live edge keeps its top active pin out for the
    round, so simultaneous joins never complete an edge; the globally
    minimum-priority active vertex always joins or blocks, so the
    protocol reaches a maximal independent set in at most [n] rounds. *)

val local_minima : Dgraph.Hmis.t Hyper_views.protocol
(** One bit per player; output independent, rarely maximal. *)

(** Broadcast state of {!luby}: chosen and blocked vertex bitmaps. *)
type state = { chosen : bool array; blocked : bool array }

val luby : n:int -> state Hyper_views.multi
(** The Luby-style multi-round protocol for an [n]-vertex hypergraph. *)

val run_local_minima :
  Dgraph.Hypergraph.t ->
  Sketchmodel.Public_coins.t ->
  Dgraph.Hmis.t * Sketchmodel.Model.stats
(** {!Hyper_views.run} of {!local_minima}. *)

val run_luby :
  Dgraph.Hypergraph.t ->
  Sketchmodel.Public_coins.t ->
  Dgraph.Hmis.t * Hyper_views.multi_stats
(** Run {!luby} to termination; returns a maximal independent set and
    the multi-round bit accounting. *)

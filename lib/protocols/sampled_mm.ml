module Model = Sketchmodel.Model
module Public_coins = Sketchmodel.Public_coins
module Graph = Dgraph.Graph
module Writer = Stdx.Bitbuf.Writer
module Reader = Stdx.Bitbuf.Reader

type strategy = Uniform | Prefix | Random_prefix

let strategy_name = function
  | Uniform -> "uniform"
  | Prefix -> "prefix"
  | Random_prefix -> "random-prefix"

let all_strategies = [ Uniform; Prefix; Random_prefix ]

let varint_bits v =
  let rec go v acc = if v < 128 then acc + 8 else go (v lsr 7) (acc + 8) in
  go (max 0 v) 0

(* Choose the order in which this player would like to report neighbours,
   then emit complete varints while they fit in the budget. *)
let player ~budget_bits ~strategy (view : Model.view) coins =
  let deg = Array.length view.Model.neighbors in
  let order =
    match strategy with
    | Prefix -> Array.init deg (fun i -> i)
    | Uniform ->
        let rng = Public_coins.keyed coins "sampled-mm" view.Model.vertex in
        Stdx.Prng.permutation rng deg
    | Random_prefix ->
        let rng = Public_coins.keyed coins "sampled-mm-rot" view.Model.vertex in
        let shift = if deg = 0 then 0 else Stdx.Prng.int rng deg in
        Array.init deg (fun i -> (i + shift) mod deg)
  in
  let w = Writer.create () in
  (try
     Array.iter
       (fun idx ->
         let u = view.Model.neighbors.(idx) in
         if Writer.length_bits w + varint_bits u > budget_bits then raise Exit;
         Writer.uvarint w u)
       order
   with Exit -> ());
  w

let reported_edges ~n ~sketches =
  let out = ref [] in
  Array.iteri
    (fun v r ->
      while Reader.remaining_bits r >= 8 do
        let u = Reader.uvarint r in
        if u <> v && u >= 0 && u < n then out := Graph.normalize_edge v u :: !out
      done)
    sketches;
  List.rev !out

let protocol ~budget_bits ~strategy =
  {
    Model.name = Printf.sprintf "sampled-mm-%s-b%d" (strategy_name strategy) budget_bits;
    player = (fun view coins -> player ~budget_bits ~strategy view coins);
    referee =
      (fun ~n ~sketches _coins ->
        let reported = reported_edges ~n ~sketches in
        (* Greedy over the union of reports; maximal in the reported
           subgraph. *)
        let dummy = Graph.empty n in
        Dgraph.Matching.greedy_on_reported dummy reported);
  }

module Bcc = Sketchmodel.Bcc
module Model = Sketchmodel.Model
module Public_coins = Sketchmodel.Public_coins
module Graph = Dgraph.Graph
module W = Stdx.Bitbuf.Writer
module R = Stdx.Bitbuf.Reader

let rounds_for n =
  let rec bits v acc = if v <= 1 then acc else bits ((v + 1) / 2) (acc + 1) in
  (3 * max 1 (bits n 0)) + 8

(* Public per-round edge priority: everyone derives the same salt from the
   coins, so the round resolution below is a pure function of history. *)
let salt coins round = Stdx.Prng.int (Public_coins.keyed coins "bcc-mm" round) (1 lsl 60)

let priority ~n ~salt (u, v) =
  Stdx.Hashing.mix64 (salt lxor (((min u v * n) + max u v) * 2654435761))

(* Resolve one round: given everyone's proposals and the matched set so
   far, add the greedy matching over proposal edges in priority order. *)
let resolve ~n ~round_salt ~matched proposals =
  let edges = ref [] in
  Array.iteri
    (fun v proposal ->
      match proposal with
      | Some u
        when u >= 0 && u < n && u <> v
             && (not (Stdx.Bitset.mem matched v))
             && not (Stdx.Bitset.mem matched u) ->
          edges := Graph.normalize_edge v u :: !edges
      | Some _ | None -> ())
    proposals;
  let unique = List.sort_uniq compare !edges in
  let ordered =
    List.sort
      (fun a b -> compare (priority ~n ~salt:round_salt a) (priority ~n ~salt:round_salt b))
      unique
  in
  let added = ref [] in
  List.iter
    (fun (u, v) ->
      if (not (Stdx.Bitset.mem matched u)) && not (Stdx.Bitset.mem matched v) then begin
        Stdx.Bitset.add matched u;
        Stdx.Bitset.add matched v;
        added := (u, v) :: !added
      end)
    ordered;
  List.rev !added

(* Replayed state is derived from the public history alone, so it never
   has to be recomputed from round 1: each protocol value carries the
   state it last derived and consumes only the rounds that arrived since.
   Within one [Bcc.run], the n broadcasts of a round all see the same
   history, so the first replays the newest round and the other n-1 are
   cache hits — total replay work drops from O(n * rounds^2) reader
   parses to O(rounds). The cache keys on the coins seed and resets if
   the history rewinds, so a protocol value can be reused across runs. *)
type replay_cache = {
  mutable seed : int;
  mutable upto : int;  (** rounds already folded into [matched]/[matching] *)
  mutable matched : Stdx.Bitset.t;
  mutable matching : (int * int) list;
}

let replay ~n coins cache history =
  let seed = Public_coins.seed coins in
  let upto = Bcc.rounds_so_far history in
  if seed <> cache.seed || upto < cache.upto || Stdx.Bitset.capacity cache.matched <> n
  then begin
    cache.seed <- seed;
    cache.upto <- 0;
    cache.matched <- Stdx.Bitset.create n;
    cache.matching <- []
  end;
  for r = cache.upto + 1 to upto do
    let proposals =
      Array.map
        (fun reader ->
          let code = R.uvarint reader in
          if code = 0 then None else Some (code - 1))
        (Bcc.round_readers history r)
    in
    let added = resolve ~n ~round_salt:(salt coins r) ~matched:cache.matched proposals in
    cache.matching <- cache.matching @ added
  done;
  cache.upto <- upto;
  (cache.matched, cache.matching)

let propose ~n coins ~round ~matched (view : Model.view) =
  if Stdx.Bitset.mem matched view.Model.vertex then None
  else begin
    let round_salt = salt coins round in
    let best = ref None in
    Array.iter
      (fun u ->
        if not (Stdx.Bitset.mem matched u) then begin
          let p = priority ~n ~salt:round_salt (view.Model.vertex, u) in
          match !best with
          | Some (_, bp) when bp <= p -> ()
          | Some _ | None -> best := Some (u, p)
        end)
      view.Model.neighbors;
    Option.map fst !best
  end

let protocol ~n =
  let cache = { seed = min_int; upto = 0; matched = Stdx.Bitset.create n; matching = [] } in
  {
    Bcc.name = "bcc-logn-mm";
    rounds = rounds_for n;
    broadcast =
      (fun ~round view history coins ->
        let matched, _ = replay ~n coins cache history in
        let w = W.create () in
        (match propose ~n coins ~round ~matched view with
        | Some u -> W.uvarint w (u + 1)
        | None -> W.uvarint w 0);
        w);
    output = (fun ~n history coins -> snd (replay ~n coins cache history));
  }

let run g coins = Bcc.run (protocol ~n:(Graph.n g)) g coins

module Model = Sketchmodel.Model
module Rounds = Sketchmodel.Rounds
module Public_coins = Sketchmodel.Public_coins
module Graph = Dgraph.Graph
module Writer = Stdx.Bitbuf.Writer
module Reader = Stdx.Bitbuf.Reader

type broadcast = { matched : bool array; m1 : Dgraph.Matching.t }

let round1 ~cap (view : Model.view) coins =
  let deg = Array.length view.Model.neighbors in
  let count = min deg cap in
  let rng = Public_coins.keyed coins "filter-mm" view.Model.vertex in
  let picks = Stdx.Prng.sample_distinct rng count deg in
  let w = Writer.create () in
  Writer.int_list w (Array.to_list (Array.map (fun i -> view.Model.neighbors.(i)) picks));
  w

let decide ~n ~sketches _coins =
  let b = Graph.Builder.create ~capacity:(max 16 n) n in
  Array.iteri
    (fun v r ->
      List.iter
        (fun u -> if u <> v && u >= 0 && u < n then Graph.Builder.add_edge b v u)
        (Reader.int_list r))
    sketches;
  let sampled = Graph.Builder.freeze b in
  let m1 = Dgraph.Matching.greedy sampled () in
  let matched = Array.make n false in
  List.iter
    (fun (a, b) ->
      matched.(a) <- true;
      matched.(b) <- true)
    m1;
  { matched; m1 }

let encode_broadcast b =
  let w = Writer.create () in
  Array.iter (Writer.bit w) b.matched;
  Writer.int_list w (List.concat_map (fun (a, c) -> [ a; c ]) b.m1);
  w

let round2 (view : Model.view) b _coins =
  let w = Writer.create () in
  if not b.matched.(view.Model.vertex) then
    Writer.int_list w
      (Array.to_list view.Model.neighbors |> List.filter (fun u -> not b.matched.(u)))
  else Writer.int_list w [];
  w

let finish ~n ~broadcast ~sketches _coins =
  let residual = ref [] in
  Array.iteri
    (fun v r ->
      List.iter
        (fun u -> if u <> v && u >= 0 && u < n then residual := Graph.normalize_edge v u :: !residual)
        (Reader.int_list r))
    sketches;
  let matched = Array.copy broadcast.matched in
  let extension = ref [] in
  List.iter
    (fun (a, b) ->
      if (not matched.(a)) && not matched.(b) then begin
        matched.(a) <- true;
        matched.(b) <- true;
        extension := (a, b) :: !extension
      end)
    !residual;
  broadcast.m1 @ List.rev !extension

let protocol ?(cap_factor = 1.0) ~n () =
  let cap = max 1 (int_of_float (ceil (cap_factor *. sqrt (float_of_int n)))) in
  {
    Rounds.name = "two-round-filtering-mm";
    round1 = (fun view coins -> round1 ~cap view coins);
    decide;
    encode_broadcast;
    round2;
    finish;
  }

let run ?cap_factor g coins = Rounds.run (protocol ?cap_factor ~n:(Graph.n g) ()) g coins

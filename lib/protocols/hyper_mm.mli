(** Hypergraph maximal-matching protocols over {!Hyper_views}.

    {b Trivial.} Every vertex ships the full pin set of every incident
    hyperedge; the referee reconstructs the hypergraph and runs greedy.
    Always maximal, with per-player cost proportional to the incident
    pin mass — the hypergraph analogue of the trivial graph protocol the
    lower bound is measured against.

    {b Iterated (multi-round).} Each round, every still-uncovered vertex
    proposes its best fully-uncovered incident hyperedge (best = lowest
    public-coin priority, ties by lexicographic pins — players and
    referee derive edge priorities from pin sets, never from frozen edge
    ids, which no player can see). The referee commits disjoint
    proposals greedily in that same order and broadcasts the covered
    set. When no vertex proposes, every hyperedge meets a covered
    vertex, so the chosen set is a maximal matching. Terminates in at
    most [n/2 + 1] rounds (every non-final round commits at least one
    edge). *)

val trivial : int array list Hyper_views.protocol
(** One round; output is the matching as a list of pin sets. *)

(** Broadcast state of {!iterated}: players may only read [covered]
    (the pin-covered vertices); [chosen] rides along for the referee
    and is not part of the encoded broadcast. *)
type state = { covered : bool array; chosen : int array list }

val iterated : n:int -> state Hyper_views.multi
(** The multi-round proposal protocol for an [n]-vertex hypergraph. *)

val run_trivial :
  Dgraph.Hypergraph.t ->
  Sketchmodel.Public_coins.t ->
  int array list * Sketchmodel.Model.stats
(** {!Hyper_views.run} of {!trivial}. *)

val run_iterated :
  Dgraph.Hypergraph.t ->
  Sketchmodel.Public_coins.t ->
  int array list * Hyper_views.multi_stats
(** Run {!iterated} to termination; returns the maximal matching as pin
    sets in commit order, plus the multi-round bit accounting. *)

(** Two-round MIS by random-prefix greedy [Ghaffari et al., PODC'18 style]
    — the adaptive [Õ(√n)] MIS upper bound cited in Section 1.1.

    A public-coin random permutation [π] is shared for free. Round 1:
    every vertex reports its neighbours among the first [⌈c·√n⌉] vertices
    of [π] (the prefix [P]); the referee runs greedy MIS over [P] in
    [π]-order, learns exactly which vertices are dominated, and broadcasts
    the partial MIS and the decided bitmap. Round 2: undecided vertices
    report their undecided neighbours (w.h.p. [Õ(√n)] of them, by the
    residual-sparsification property of random-order greedy); the referee
    finishes greedily on the fully-known residual graph.

    The output is {e always} a maximal independent set. *)

type broadcast = { decided : bool array; i1 : Dgraph.Mis.t }

val protocol :
  ?prefix_factor:float -> n:int -> unit -> (broadcast, Dgraph.Mis.t) Sketchmodel.Rounds.protocol

val run :
  ?prefix_factor:float ->
  Dgraph.Graph.t ->
  Sketchmodel.Public_coins.t ->
  Dgraph.Mis.t * Sketchmodel.Rounds.stats

(** Two-round maximal matching by filtering [Lattanzi et al., SPAA'11] —
    the adaptive [Õ(√n)] upper bound the paper cites (Section 1.1) right
    above its one-round lower bound.

    Round 1: every vertex samples up to [cap ≈ c·√n] incident edges; the
    referee computes a greedy matching [M₁] on the sampled graph and
    broadcasts the matched-vertex bitmap. Round 2: every unmatched vertex
    reports its unmatched neighbours; the referee extends [M₁] greedily.
    The output is {e always} a maximal matching; the filtering argument
    keeps round-2 messages small w.h.p., which the harness measures. *)

type broadcast = { matched : bool array; m1 : Dgraph.Matching.t }

val protocol :
  ?cap_factor:float -> n:int -> unit -> (broadcast, Dgraph.Matching.t) Sketchmodel.Rounds.protocol
(** [cap_factor] scales the round-1 sample cap [⌈cap_factor·√n⌉]
    (default 1.0). *)

val run :
  ?cap_factor:float ->
  Dgraph.Graph.t ->
  Sketchmodel.Public_coins.t ->
  Dgraph.Matching.t * Sketchmodel.Rounds.stats

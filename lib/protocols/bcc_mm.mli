(** Maximal matching in [O(log n)] broadcast-congested-clique rounds of
    [O(log n)] bits each — the other end of the round/bandwidth trade-off
    around the paper's one-round lower bound (cf. Drucker et al. [30] on
    multi-round BCC).

    Each round, every still-unmatched vertex broadcasts one proposal: the
    unmatched neighbour minimising a public-coin edge priority. Broadcasts
    are public, so every participant deterministically resolves the round
    by running greedy over the proposed edges in priority order; matched
    vertices fall silent. Israeli–Itai-style analysis gives [O(log n)]
    rounds w.h.p.; the implementation runs a fixed [3⌈log₂ n⌉ + 8] rounds
    and the referee outputs the accumulated matching. *)

val protocol : n:int -> Dgraph.Matching.t Sketchmodel.Bcc.protocol

val run :
  Dgraph.Graph.t ->
  Sketchmodel.Public_coins.t ->
  Dgraph.Matching.t * Sketchmodel.Bcc.stats

val rounds_for : int -> int
(** The round budget used for an [n]-vertex graph. *)

(** One-round MIS attempts — the protocols the lower bound says cannot
    work.

    {b Local-minima (one-shot Luby).} Public coins assign every vertex a
    priority; a vertex can evaluate its neighbours' priorities locally (a
    priority is a function of coins and id), so one bit — "I am a local
    minimum" — lets the referee output an independent set. It is
    {e always} independent but essentially never maximal: the expected
    fraction of undominated vertices is constant on sparse graphs. This is
    the natural one-round attempt whose failure rate the T12 experiment
    measures against Theorem 2.

    {b Budgeted neighbourhoods.} Every vertex ships a [b]-bit prefix of
    its neighbour list; the referee runs greedy over what it can see. The
    MIS analogue of {!Sampled_mm} — and errs on the {e independence} side
    (unreported edges can join two chosen vertices), the other error mode
    of the paper's Section 2.1. *)

val local_minima : Dgraph.Mis.t Sketchmodel.Model.protocol
(** One bit per player; output independent, rarely maximal. *)

val undominated_fraction :
  Dgraph.Graph.t -> Sketchmodel.Public_coins.t -> float * Sketchmodel.Model.stats
(** Run {!local_minima}; return the fraction of vertices that are neither
    in the output nor adjacent to it (0 would mean maximal). *)

val budgeted : budget_bits:int -> Dgraph.Mis.t Sketchmodel.Model.protocol
(** Greedy MIS over reported adjacency prefixes. *)

module Model = Sketchmodel.Model
module Rounds = Sketchmodel.Rounds
module Public_coins = Sketchmodel.Public_coins
module Graph = Dgraph.Graph
module Writer = Stdx.Bitbuf.Writer
module Reader = Stdx.Bitbuf.Reader

type broadcast = { decided : bool array; i1 : Dgraph.Mis.t }

let shared_prefix coins ~n ~prefix_size =
  let rng = Public_coins.global coins "mis-prefix-permutation" in
  let pi = Stdx.Prng.permutation rng n in
  (pi, Array.sub pi 0 (min n prefix_size))

let round1 ~prefix_size (view : Model.view) coins =
  let _, prefix = shared_prefix coins ~n:view.Model.n ~prefix_size in
  let in_prefix = Stdx.Bitset.create view.Model.n in
  Array.iter (Stdx.Bitset.add in_prefix) prefix;
  let w = Writer.create () in
  Writer.int_list w
    (Array.to_list view.Model.neighbors |> List.filter (Stdx.Bitset.mem in_prefix));
  w

let decide ~prefix_size ~n ~sketches coins =
  let _, prefix = shared_prefix coins ~n ~prefix_size in
  let neighbor_in_prefix = Array.make n [] in
  Array.iteri
    (fun v r ->
      List.iter
        (fun u -> if u <> v && u >= 0 && u < n then neighbor_in_prefix.(v) <- u :: neighbor_in_prefix.(v))
        (Reader.int_list r))
    sketches;
  (* Greedy over the prefix in permutation order, using the edges inside
     the prefix (both endpoints reported them). *)
  let in_i1 = Array.make n false in
  let i1 = ref [] in
  Array.iter
    (fun v ->
      let blocked = List.exists (fun u -> in_i1.(u)) neighbor_in_prefix.(v) in
      if not blocked then begin
        in_i1.(v) <- true;
        i1 := v :: !i1
      end)
    prefix;
  (* A vertex is decided iff it joined i1 or has an i1 neighbour; the
     referee sees N(v) ∩ P ⊇ N(v) ∩ I1 for every v. *)
  let decided = Array.make n false in
  for v = 0 to n - 1 do
    decided.(v) <- in_i1.(v) || List.exists (fun u -> in_i1.(u)) neighbor_in_prefix.(v)
  done;
  { decided; i1 = List.rev !i1 }

let encode_broadcast b =
  let w = Writer.create () in
  Array.iter (Writer.bit w) b.decided;
  Writer.int_list w b.i1;
  w

let round2 (view : Model.view) b _coins =
  let w = Writer.create () in
  if not b.decided.(view.Model.vertex) then
    Writer.int_list w
      (Array.to_list view.Model.neighbors |> List.filter (fun u -> not b.decided.(u)))
  else Writer.int_list w [];
  w

let finish ~n ~broadcast ~sketches _coins =
  let residual_adj = Array.make n [] in
  Array.iteri
    (fun v r ->
      List.iter
        (fun u -> if u <> v && u >= 0 && u < n then residual_adj.(v) <- u :: residual_adj.(v))
        (Reader.int_list r))
    sketches;
  let in_set = Array.make n false in
  List.iter (fun v -> in_set.(v) <- true) broadcast.i1;
  let extension = ref [] in
  for v = 0 to n - 1 do
    if (not broadcast.decided.(v)) && not (List.exists (fun u -> in_set.(u)) residual_adj.(v)) then begin
      in_set.(v) <- true;
      extension := v :: !extension
    end
  done;
  broadcast.i1 @ List.rev !extension

let protocol ?(prefix_factor = 1.0) ~n () =
  let prefix_size = max 1 (int_of_float (ceil (prefix_factor *. sqrt (float_of_int n)))) in
  {
    Rounds.name = "two-round-prefix-mis";
    round1 = (fun view coins -> round1 ~prefix_size view coins);
    decide = (fun ~n ~sketches coins -> decide ~prefix_size ~n ~sketches coins);
    encode_broadcast;
    round2;
    finish;
  }

let run ?prefix_factor g coins = Rounds.run (protocol ?prefix_factor ~n:(Graph.n g) ()) g coins

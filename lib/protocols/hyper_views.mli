(** The distributed sketching model over hypergraphs.

    One player per vertex, as in {!Sketchmodel.Model}; a player's whole
    input is the vertex/edge counts, its own id, and the full pin set of
    every incident hyperedge (for 2-uniform hypergraphs this is the
    graph view). {!run} executes one simultaneous round with exact bit
    accounting; {!run_multi} is the adaptive extension the iterated
    hypergraph protocols use — any number of sketch rounds, each
    followed by one referee broadcast, every round wrapped in a
    [protocol.round] trace span (with [round] and [protocol] args) so
    Perfetto shows the round boundaries. *)

type view = {
  n : int;  (** number of vertices *)
  m : int;  (** number of hyperedges *)
  vertex : int;  (** this player's id *)
  edges : int array array;  (** sorted pins of each incident hyperedge, ascending edge id *)
}
(** Everything a player is allowed to see. *)

val views : Dgraph.Hypergraph.t -> view array
(** The honest per-vertex views. *)

type 'a protocol = {
  name : string;
  player : view -> Sketchmodel.Public_coins.t -> Stdx.Bitbuf.Writer.t;
  referee :
    n:int -> sketches:Stdx.Bitbuf.Reader.t array -> Sketchmodel.Public_coins.t -> 'a;
}
(** A one-round protocol; referee sees only sketches and coins. *)

val run :
  'a protocol -> Dgraph.Hypergraph.t -> Sketchmodel.Public_coins.t -> 'a * Sketchmodel.Model.stats
(** One honest round; bit accounting as in {!Sketchmodel.Model.run}. *)

type 'b multi = {
  name : string;
  rounds_limit : int;  (** fail-stop bound on rounds (convergence guard) *)
  player : round:int -> view -> 'b -> Sketchmodel.Public_coins.t -> Stdx.Bitbuf.Writer.t;
      (** The sketch of one vertex given the decoded broadcast state. *)
  step :
    round:int ->
    n:int ->
    state:'b ->
    sketches:Stdx.Bitbuf.Reader.t array ->
    Sketchmodel.Public_coins.t ->
    'b * bool;
      (** Referee transition: next broadcast state and whether to
          continue. *)
  encode_broadcast : 'b -> Stdx.Bitbuf.Writer.t;
      (** How the broadcast would be serialised; only its length is
          accounted. *)
}
(** A multi-round protocol: rounds of simultaneous sketches, each
    followed by one broadcast of the referee state. *)

type multi_stats = {
  rounds : int;  (** rounds actually executed *)
  max_bits : int;  (** worst-case per-player total across all rounds *)
  total_bits : int;
  broadcast_bits : int;  (** sum of all broadcast lengths *)
}

val run_multi :
  'b multi -> Dgraph.Hypergraph.t -> init:'b -> Sketchmodel.Public_coins.t -> 'b * multi_stats
(** Run until [step] stops (the final state is the output) or
    [rounds_limit] is hit ([Failure]). *)

(** The trivial [Θ(n log n)]-bit upper bound (Section 1 of the paper): every
    vertex ships its entire neighbourhood, the referee reconstructs the
    graph and solves the problem exactly. Always correct; exists to anchor
    the upper end of the gap the paper leaves open. *)

val mm : Dgraph.Matching.t Sketchmodel.Model.protocol
(** Referee outputs a greedy maximal matching of the reconstructed graph. *)

val mis : Dgraph.Mis.t Sketchmodel.Model.protocol
(** Referee outputs a greedy MIS of the reconstructed graph. *)

val reconstruct :
  n:int -> sketches:Stdx.Bitbuf.Reader.t array -> Dgraph.Graph.t
(** The shared referee front half: rebuild the exact input graph. *)

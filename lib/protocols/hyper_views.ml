(* The distributed sketching model over hypergraphs.

   One player per vertex; a player sees the vertex/edge counts, its own
   id, and the full pin set of every incident hyperedge — the hypergraph
   analogue of [Model.view]'s sorted neighbour list (for 2-uniform
   hypergraphs the two views carry the same information). One-round
   execution and bit accounting mirror [Model.run]; [run_multi] adds the
   adaptive extension used by the iterated protocols: any number of
   sketch rounds, each followed by one referee broadcast, with the
   per-round boundary recorded as a [protocol.round] trace span. *)

module Public_coins = Sketchmodel.Public_coins
module Hypergraph = Dgraph.Hypergraph
module Writer = Stdx.Bitbuf.Writer
module Reader = Stdx.Bitbuf.Reader

type view = { n : int; m : int; vertex : int; edges : int array array }

let views h =
  Array.init (Hypergraph.n h) (fun v ->
      {
        n = Hypergraph.n h;
        m = Hypergraph.m h;
        vertex = v;
        edges =
          Array.map (fun e -> Hypergraph.pins h e) (Hypergraph.incident h v);
      })

type 'a protocol = {
  name : string;
  player : view -> Public_coins.t -> Writer.t;
  referee : n:int -> sketches:Reader.t array -> Public_coins.t -> 'a;
}

let run protocol h coins =
  let player_views = views h in
  let writers = Array.map (fun view -> protocol.player view coins) player_views in
  let sizes = Array.map Writer.length_bits writers in
  let total_bits = Array.fold_left ( + ) 0 sizes in
  let max_bits = Array.fold_left max 0 sizes in
  let sketches = Array.map Reader.of_writer writers in
  let output = protocol.referee ~n:(Hypergraph.n h) ~sketches coins in
  let players = Array.length player_views in
  ( output,
    {
      Sketchmodel.Model.max_bits;
      total_bits;
      avg_bits = (if players = 0 then 0. else float_of_int total_bits /. float_of_int players);
      players;
    } )

type 'b multi = {
  name : string;
  rounds_limit : int;
  player : round:int -> view -> 'b -> Public_coins.t -> Writer.t;
  step : round:int -> n:int -> state:'b -> sketches:Reader.t array -> Public_coins.t -> 'b * bool;
  encode_broadcast : 'b -> Writer.t;
}

type multi_stats = {
  rounds : int;
  max_bits : int;
  total_bits : int;
  broadcast_bits : int;
}

let run_multi protocol h ~init coins =
  let player_views = views h in
  let players = Array.length player_views in
  let per_player = Array.make players 0 in
  let total_broadcast = ref 0 in
  let state = ref init and continue = ref true and round = ref 0 in
  while !continue do
    if !round >= protocol.rounds_limit then
      failwith (protocol.name ^ ": round limit exceeded");
    let r = !round in
    Stdx.Trace.span
      ~args:(fun () -> [ ("round", Stdx.Trace.Int r); ("protocol", Stdx.Trace.Str protocol.name) ])
      "protocol.round"
      (fun () ->
        let writers =
          Array.map (fun view -> protocol.player ~round:r view !state coins) player_views
        in
        Array.iteri (fun v w -> per_player.(v) <- per_player.(v) + Writer.length_bits w) writers;
        let sketches = Array.map Reader.of_writer writers in
        let next, go =
          protocol.step ~round:r ~n:(Hypergraph.n h) ~state:!state ~sketches coins
        in
        total_broadcast := !total_broadcast + Writer.length_bits (protocol.encode_broadcast next);
        state := next;
        continue := go);
    incr round
  done;
  ( !state,
    {
      rounds = !round;
      max_bits = Array.fold_left max 0 per_player;
      total_bits = Array.fold_left ( + ) 0 per_player;
      broadcast_bits = !total_broadcast;
    } )

(** Budget-limited one-round matching protocols — the protocol family the
    F4 experiment sweeps against Theorem 1's threshold.

    Every player gets a hard per-message budget of [b] bits and reports as
    many of its incident edges as fit; the referee outputs a greedy
    matching over the union of reports (maximal {e in the reported
    subgraph}, which is all a one-round referee can certify). Against the
    hard distribution [D_MM], the hidden-matching edges are an
    [O(1/r)]-fraction of each unique vertex's edges, so uniform sampling
    recovers them only when [b = Ω(r log n)] — the lower bound's shape.

    Strategies (the ablation DESIGN.md §7 calls out):
    - [Uniform]: a uniformly random subset of incident edges (public
      coins), the natural strategy;
    - [Prefix]: the lexicographically first edges — a deterministic
      "compression" strategy;
    - [Random_prefix]: first edges of a public-coin random rotation, a
      middle ground breaking adversarial orderings. *)

type strategy = Uniform | Prefix | Random_prefix

val strategy_name : strategy -> string
val all_strategies : strategy list

val protocol :
  budget_bits:int -> strategy:strategy -> Dgraph.Matching.t Sketchmodel.Model.protocol

val reported_edges :
  n:int -> sketches:Stdx.Bitbuf.Reader.t array -> Dgraph.Graph.edge list
(** The referee front half: decode every player's edge report (attributed
    pairs, normalised, duplicates kept). *)

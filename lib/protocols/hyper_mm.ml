module Public_coins = Sketchmodel.Public_coins
module H = Dgraph.Hypergraph
module Writer = Stdx.Bitbuf.Writer
module Reader = Stdx.Bitbuf.Reader

(* An edge on the wire is its arity followed by its sorted pins, all
   uvarint. Players only ever ship edges they are a pin of, so the
   referee reconstructs true subhypergraphs. *)
let write_edge w pins =
  Writer.uvarint w (Array.length pins);
  Array.iter (fun v -> Writer.uvarint w v) pins

let read_edge r = Array.init (Reader.uvarint r) (fun _ -> Reader.uvarint r)

(* A public-coin priority of an edge, derived from its pin set — players
   and referee compute it identically without naming global edge ids
   (ids are frozen-order artefacts no player can see). *)
let edge_priority coins pins =
  let key =
    Array.fold_left (fun acc v -> Stdx.Hashing.mix64 (acc lxor ((v * 2) + 1))) 0 pins
  in
  Stdx.Prng.int (Public_coins.keyed coins "hmm-priority" key) (1 lsl 40)

let compare_pin_arrays (a : int array) b =
  let la = Array.length a and lb = Array.length b in
  let rec go j =
    if j >= la || j >= lb then compare la lb
    else if a.(j) <> b.(j) then compare a.(j) b.(j)
    else go (j + 1)
  in
  go 0

let trivial =
  {
    Hyper_views.name = "hyper-trivial-mm";
    player =
      (fun view _coins ->
        let w = Writer.create () in
        Array.iter (fun pins -> write_edge w pins) view.Hyper_views.edges;
        w);
    referee =
      (fun ~n ~sketches _coins ->
        let b = H.Builder.create ~capacity:(max n 1) n in
        Array.iter
          (fun r ->
            while Reader.remaining_bits r >= 8 do
              H.Builder.add_edge b (read_edge r)
            done)
          sketches;
        let h = H.Builder.freeze b in
        List.map (fun e -> H.pins h e) (Dgraph.Hmatching.greedy h ()));
  }

type state = { covered : bool array; chosen : int array list }

(* One proposal round: every uncovered vertex nominates its best
   (lowest-priority, then lex-smallest) incident hyperedge whose pins
   are all uncovered; the referee greedily commits disjoint proposals in
   that same order and broadcasts the grown covered set. No proposals
   means every hyperedge already meets a covered vertex — the chosen set
   is a maximal matching. *)
let iterated ~n =
  {
    Hyper_views.name = "hyper-iterated-mm";
    rounds_limit = n + 2;
    player =
      (fun ~round:_ view state coins ->
        let w = Writer.create () in
        let v = view.Hyper_views.vertex in
        if not state.covered.(v) then begin
          let best = ref None in
          Array.iter
            (fun pins ->
              if Array.for_all (fun u -> not state.covered.(u)) pins then begin
                let p = edge_priority coins pins in
                match !best with
                | Some (bp, bpins)
                  when bp < p || (bp = p && compare_pin_arrays bpins pins <= 0) ->
                    ()
                | _ -> best := Some (p, pins)
              end)
            view.Hyper_views.edges;
          match !best with None -> () | Some (_, pins) -> write_edge w pins
        end;
        w);
    step =
      (fun ~round:_ ~n:_ ~state ~sketches coins ->
        let proposals = ref [] in
        Array.iter
          (fun r ->
            if Reader.remaining_bits r >= 8 then begin
              let pins = read_edge r in
              proposals := (edge_priority coins pins, pins) :: !proposals
            end)
          sketches;
        match !proposals with
        | [] -> (state, false)
        | ps ->
            let ps =
              List.sort
                (fun (pa, a) (pb, b) ->
                  if pa <> pb then compare pa pb else compare_pin_arrays a b)
                ps
            in
            let covered = Array.copy state.covered in
            let chosen = ref state.chosen in
            List.iter
              (fun (_, pins) ->
                if Array.for_all (fun u -> not covered.(u)) pins then begin
                  Array.iter (fun u -> covered.(u) <- true) pins;
                  chosen := pins :: !chosen
                end)
              ps;
            ({ covered; chosen = !chosen }, true));
    encode_broadcast =
      (fun state ->
        let w = Writer.create () in
        Array.iter (fun c -> Writer.bit w c) state.covered;
        w);
  }

let run_trivial h coins = Hyper_views.run trivial h coins

let run_iterated h coins =
  let init = { covered = Array.make (H.n h) false; chosen = [] } in
  let state, stats = Hyper_views.run_multi (iterated ~n:(H.n h)) h ~init coins in
  (List.rev state.chosen, stats)

let components g =
  let n = Graph.n g in
  let label = Array.make n (-1) in
  let count = ref 0 in
  let queue = Queue.create () in
  for start = 0 to n - 1 do
    if label.(start) = -1 then begin
      label.(start) <- !count;
      Queue.add start queue;
      while not (Queue.is_empty queue) do
        let u = Queue.pop queue in
        Graph.iter_neighbors
          (fun v ->
            if label.(v) = -1 then begin
              label.(v) <- !count;
              Queue.add v queue
            end)
          g u
      done;
      incr count
    end
  done;
  (label, !count)

let same_component g u v =
  let label, _ = components g in
  label.(u) = label.(v)

let spanning_forest g =
  let n = Graph.n g in
  let visited = Array.make n false in
  let out = ref [] in
  let queue = Queue.create () in
  for start = 0 to n - 1 do
    if not visited.(start) then begin
      visited.(start) <- true;
      Queue.add start queue;
      while not (Queue.is_empty queue) do
        let u = Queue.pop queue in
        Graph.iter_neighbors
          (fun v ->
            if not visited.(v) then begin
              visited.(v) <- true;
              out := Graph.normalize_edge u v :: !out;
              Queue.add v queue
            end)
          g u
      done
    end
  done;
  List.rev !out

let is_spanning_forest g forest =
  let n = Graph.n g in
  let all_edges = List.for_all (fun (u, v) -> Graph.mem_edge g u v) forest in
  if not all_edges then false
  else begin
    let uf = Unionfind.create n in
    let acyclic = List.for_all (fun (u, v) -> Unionfind.union uf u v) forest in
    if not acyclic then false
    else begin
      let _, count = components g in
      (* Same number of classes as true components, and every graph edge
         stays within one class. *)
      Unionfind.count uf = count
      && Graph.fold_edges (fun u v acc -> acc && Unionfind.same uf u v) g true
    end
  end

(* Edmonds' blossom algorithm, classic O(n^3) formulation: repeated BFS for
   augmenting paths with blossom contraction tracked through [base].
   Invariants per search:
   - [parent.(u)] is the BFS tree edge used to reach the odd vertex [u];
   - [base.(v)] is the base vertex of the contracted blossom containing v;
   - even (outer) vertices are the [used] ones. *)

let maximum_matching g =
  let n = Graph.n g in
  let mate = Array.make n (-1) in
  let parent = Array.make n (-1) in
  let base = Array.make n 0 in
  let used = Array.make n false in
  let blossom = Array.make n false in
  let queue = Queue.create () in

  let lca a b =
    let used_path = Array.make n false in
    (* Walk a's alternating path to the root, marking blossom bases. *)
    let rec mark v =
      let v = base.(v) in
      used_path.(v) <- true;
      if mate.(v) <> -1 then mark parent.(mate.(v))
    in
    mark a;
    let rec find v =
      let v = base.(v) in
      if used_path.(v) then v else find parent.(mate.(v))
    in
    find b
  in

  let mark_path v b child =
    let v = ref v and child = ref child in
    while base.(!v) <> b do
      blossom.(base.(!v)) <- true;
      blossom.(base.(mate.(!v))) <- true;
      parent.(!v) <- !child;
      child := mate.(!v);
      v := parent.(mate.(!v))
    done
  in

  let find_path root =
    Array.fill used 0 n false;
    Array.fill parent 0 n (-1);
    for i = 0 to n - 1 do
      base.(i) <- i
    done;
    Queue.clear queue;
    used.(root) <- true;
    Queue.add root queue;
    let found = ref (-1) in
    while !found = -1 && not (Queue.is_empty queue) do
      let v = Queue.pop queue in
      let deg = Graph.degree g v in
      let i = ref 0 in
      while !found = -1 && !i < deg do
        let u = Graph.neighbor g v !i in
        incr i;
        if base.(v) <> base.(u) && mate.(v) <> u then begin
          if u = root || (mate.(u) <> -1 && parent.(mate.(u)) <> -1) then begin
            (* An edge between two outer vertices: contract the blossom. *)
            let cur_base = lca v u in
            Array.fill blossom 0 n false;
            mark_path v cur_base u;
            mark_path u cur_base v;
            for j = 0 to n - 1 do
              if blossom.(base.(j)) then begin
                base.(j) <- cur_base;
                if not used.(j) then begin
                  used.(j) <- true;
                  Queue.add j queue
                end
              end
            done
          end
          else if parent.(u) = -1 then begin
            parent.(u) <- v;
            if mate.(u) = -1 then found := u
            else begin
              used.(mate.(u)) <- true;
              Queue.add mate.(u) queue
            end
          end
        end
      done
    done;
    if !found = -1 then false
    else begin
      (* Augment along the alternating path ending at [found]. *)
      let v = ref !found in
      while !v <> -1 do
        let pv = parent.(!v) in
        let ppv = mate.(pv) in
        mate.(!v) <- pv;
        mate.(pv) <- !v;
        v := ppv
      done;
      true
    end
  in

  for v = 0 to n - 1 do
    if mate.(v) = -1 then ignore (find_path v)
  done;
  let out = ref [] in
  for v = 0 to n - 1 do
    if mate.(v) > v then out := Graph.normalize_edge v mate.(v) :: !out
  done;
  List.rev !out

let maximum_matching_size g = List.length (maximum_matching g)

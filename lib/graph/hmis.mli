(** Hypergraph maximal independent sets (weak/covering sense) — the
    {!Mis} counterpart for {!Hypergraph}.

    A vertex set [S] is independent when no hyperedge has {e all} its
    pins inside [S], and maximal when adding any outside vertex would
    complete some hyperedge (the vertex is {e blocked}). On 2-uniform
    hypergraphs this coincides with graph MIS. The two failure modes
    are reported separately, mirroring the paper's error model. *)

type t = int list
(** A (candidate) independent set: a list of vertices. *)

(** The two failure modes, reported separately. *)
type verdict = {
  independent : bool;  (** no hyperedge fully inside the set *)
  maximal : bool;  (** every outside vertex is blocked *)
}

val is_independent : Hypergraph.t -> t -> bool
(** No hyperedge has all pins in the set. *)

val is_maximal : Hypergraph.t -> t -> bool
(** [is_independent] and every outside vertex is blocked. *)

val verify : Hypergraph.t -> t -> verdict
(** Both checks of {!verdict} in one pass. *)

val blocked : Hypergraph.t -> Stdx.Bitset.t -> int -> bool
(** [blocked h s v]: some hyperedge incident to [v] has every other pin
    in [s] — adding [v] to [s] would break independence. The greedy and
    the protocol players share this predicate. *)

val greedy : Hypergraph.t -> ?order:int array -> unit -> t
(** Scan vertices in the given order (default [0 .. n-1]), adding each
    vertex not blocked by the earlier choices. Always maximal. *)

(** Graph generators for tests, examples and workloads. *)

val gnp : Stdx.Prng.t -> int -> float -> Graph.t
(** Erdős–Rényi [G(n, p)]. *)

val random_bipartite : Stdx.Prng.t -> left:int -> right:int -> p:float -> Graph.t
(** Bipartite random graph; left vertices are [0 .. left-1]. *)

val path : int -> Graph.t
(** [path n]: vertices [0 .. n-1] joined in a line. *)

val cycle : int -> Graph.t
(** [cycle n]: {!path} plus the closing edge [(0, n-1)]. *)

val complete : int -> Graph.t
(** [complete n]: every pair joined — [K_n]. *)

val star : int -> Graph.t
(** [star n]: centre [0] joined to [1 .. n-1]. *)

val complete_bipartite : int -> int -> Graph.t
(** [complete_bipartite a b]: [K_{a,b}], left side [0 .. a-1]. *)

val perfect_matching : int -> Graph.t
(** [perfect_matching k]: [2k] vertices, edges [(2i, 2i+1)]. *)

val disjoint_matchings : sizes:int list -> Graph.t
(** A union of vertex-disjoint matchings with the given sizes — the
    degenerate RS graph used in micro information-accounting instances. *)

val random_regular_ish : Stdx.Prng.t -> int -> int -> Graph.t
(** Approximately [d]-regular: [d * n / 2] random edges sampled without
    replacement (self-loops and duplicates discarded). *)

val grid : int -> int -> Graph.t
(** [grid rows cols]: the 2D lattice, vertex [(i, j)] at index
    [i * cols + j]. *)

val configuration_model : Stdx.Prng.t -> degrees:int array -> Graph.t
(** The configuration model: pair up half-edges uniformly; self-loops and
    multi-edges are dropped, so realised degrees can fall slightly short.
    Requires an even degree sum. *)

val power_law_degrees : Stdx.Prng.t -> n:int -> exponent:float -> dmax:int -> int array
(** Degree sequence sampled from [P(d) ∝ d^{-exponent}], [1 <= d <= dmax],
    adjusted to an even sum — feed to {!configuration_model} for heavy-tail
    workloads. *)

val bridge_of_clouds : Stdx.Prng.t -> half:int -> p:float -> Graph.t * Graph.edge
(** The Footnote-1 instance: two disjoint [G(half, p)] "clouds" joined by a
    single uniformly random bridge edge. Returns the graph and the bridge.
    The first cloud is vertices [0 .. half-1]. *)

type t = { parent : int array; rank : int array; mutable classes : int }

let create n = { parent = Array.init n (fun i -> i); rank = Array.make n 0; classes = n }

let rec find uf x =
  let p = uf.parent.(x) in
  if p = x then x
  else begin
    let root = find uf p in
    uf.parent.(x) <- root;
    root
  end

let union uf a b =
  let ra = find uf a and rb = find uf b in
  if ra = rb then false
  else begin
    let ra, rb = if uf.rank.(ra) < uf.rank.(rb) then (rb, ra) else (ra, rb) in
    uf.parent.(rb) <- ra;
    if uf.rank.(ra) = uf.rank.(rb) then uf.rank.(ra) <- uf.rank.(ra) + 1;
    uf.classes <- uf.classes - 1;
    true
  end

let same uf a b = find uf a = find uf b

let count uf = uf.classes

let class_members uf =
  let n = Array.length uf.parent in
  let out = Array.make n [] in
  for v = n - 1 downto 0 do
    let r = find uf v in
    out.(r) <- v :: out.(r)
  done;
  out

(* Hypergraphs on vertex set [0, n) — the second instance of the
   schema-driven incidence store in [Cset] (DESIGN.md §11).

   The schema has parts "vertex" / "edge" and a single variable-arity,
   indexed morphism "pins" : edge -> vertex. A hyperedge is its sorted
   set of distinct pins (arity >= 2); edges are deduplicated at freeze
   by the store's lexicographic row pipeline, so edge ids enumerate the
   distinct hyperedges in lexicographic pin order. Two frozen CSRs come
   out: the pins segments (edge -> sorted vertices) and — because the
   schema marks "pins" indexed — the incident-lookup index
   (vertex -> incident edge ids, ascending). A graph is exactly the
   2-uniform special case; [of_graph] embeds one. *)

type t = {
  c : Cset.Store.t;
  n : int;
  m : int;
  pin_row : int array;  (* length m+1: edge e pins at pin_val.(pin_row.(e)..) *)
  pin_val : int array;
  inc_row : int array;  (* length n+1: vertex v edges at inc_val.(inc_row.(v)..) *)
  inc_val : int array;
}

let schema =
  Cset.Schema.make ~parts:[ "vertex"; "edge" ]
    ~morphisms:[ Cset.Schema.variable ~indexed:true ~dom:"edge" ~cod:"vertex" "pins" ]

let edge_part = 1
let pins_m = 0
let cset h = h.c

let of_store c =
  let n = Cset.Store.count c 0 and m = Cset.Store.count c edge_part in
  let pin_row, pin_val = Cset.Store.segments c pins_m in
  let inc_row, inc_val = Cset.Store.incidence c pins_m in
  { c; n; m; pin_row; pin_val; inc_row; inc_val }

(* Normalise one hyperedge in place of the caller's scratch: sort the
   pins, drop duplicates, reject arity < 2 (the self-loop analogue) and
   out-of-range vertices. Returns the normalised pins as a fresh array. *)
let normalize_pins n pins =
  let pins = Array.copy pins in
  Array.iter
    (fun v ->
      if v < 0 || v >= n then invalid_arg "Hypergraph: pin out of range")
    pins;
  Array.sort compare pins;
  let k = Array.length pins in
  let distinct = ref 0 in
  for i = 0 to k - 1 do
    if i = 0 || pins.(i) <> pins.(i - 1) then begin
      pins.(!distinct) <- pins.(i);
      incr distinct
    end
  done;
  if !distinct < 2 then invalid_arg "Hypergraph: hyperedge needs >= 2 distinct pins";
  if !distinct = k then pins else Array.sub pins 0 !distinct

module Builder = struct
  type hypergraph = t

  type t = { n : int; b : Cset.Store.Builder.t }

  let create ?(capacity = 16) n =
    if n < 0 then invalid_arg "Hypergraph.Builder.create: negative n";
    { n; b = Cset.Store.Builder.create ~capacity schema ~counts:[| n; 0 |] }

  let n b = b.n
  let length b = Cset.Store.Builder.length b.b ~part:edge_part

  let add_edge b pins =
    Cset.Store.Builder.add_row b.b ~part:edge_part (normalize_pins b.n pins)

  let freeze b : hypergraph =
    Stdx.Trace.begin_ "hypergraph.freeze";
    let c = Cset.Store.Builder.freeze ~span_prefix:"hypergraph" b.b in
    let h = of_store c in
    Stdx.Trace.end_ ();
    h
end

let create n edge_list =
  if n < 0 then invalid_arg "Hypergraph.create: negative n";
  let b = Builder.create ~capacity:(max (List.length edge_list) 1) n in
  List.iter (fun pins -> Builder.add_edge b (Array.of_list pins)) edge_list;
  Builder.freeze b

let of_edge_array n edges =
  if n < 0 then invalid_arg "Hypergraph.of_edge_array: negative n";
  let b = Builder.create ~capacity:(max (Array.length edges) 1) n in
  Array.iter (fun pins -> Builder.add_edge b pins) edges;
  Builder.freeze b

let of_graph g =
  let b = Builder.create ~capacity:(max (Graph.m g) 1) (Graph.n g) in
  Graph.iter_edges (fun u v -> Builder.add_edge b [| u; v |]) g;
  Builder.freeze b

let empty n = create n []

let n h = h.n
let m h = h.m
let arity h e = h.pin_row.(e + 1) - h.pin_row.(e)
let pins h e = Array.sub h.pin_val h.pin_row.(e) (arity h e)
let pin h e j = h.pin_val.(h.pin_row.(e) + j)

let iter_pins f h e =
  for idx = h.pin_row.(e) to h.pin_row.(e + 1) - 1 do
    f h.pin_val.(idx)
  done

let fold_pins f h e init =
  let acc = ref init in
  for idx = h.pin_row.(e) to h.pin_row.(e + 1) - 1 do
    acc := f h.pin_val.(idx) !acc
  done;
  !acc

let for_all_pins p h e =
  let rec go idx = idx >= h.pin_row.(e + 1) || (p h.pin_val.(idx) && go (idx + 1)) in
  go h.pin_row.(e)

let exists_pin p h e =
  let rec go idx = idx < h.pin_row.(e + 1) && (p h.pin_val.(idx) || go (idx + 1)) in
  go h.pin_row.(e)

let max_arity h =
  let best = ref 0 in
  for e = 0 to h.m - 1 do
    if arity h e > !best then best := arity h e
  done;
  !best

let degree h v = h.inc_row.(v + 1) - h.inc_row.(v)
let incident h v = Array.sub h.inc_val h.inc_row.(v) (degree h v)

let iter_incident f h v =
  for idx = h.inc_row.(v) to h.inc_row.(v + 1) - 1 do
    f h.inc_val.(idx)
  done

let fold_incident f h v init =
  let acc = ref init in
  for idx = h.inc_row.(v) to h.inc_row.(v + 1) - 1 do
    acc := f h.inc_val.(idx) !acc
  done;
  !acc

let exists_incident p h v =
  let rec go idx = idx < h.inc_row.(v + 1) && (p h.inc_val.(idx) || go (idx + 1)) in
  go h.inc_row.(v)

let iter_edges f h =
  for e = 0 to h.m - 1 do
    f e
  done

(* Compare hyperedge [e]'s pins to a normalised pin array, in the
   store's row order (lexicographic, shorter-prefix-first). *)
let compare_pins h e pins =
  let ka = arity h e and kb = Array.length pins in
  let o = h.pin_row.(e) in
  let rec go j =
    if j >= ka || j >= kb then compare ka kb
    else
      let c = compare (h.pin_val.(o + j) : int) pins.(j) in
      if c <> 0 then c else go (j + 1)
  in
  go 0

let find_edge h pins_raw =
  let pins = normalize_pins h.n pins_raw in
  let rec bsearch lo hi =
    if lo >= hi then None
    else
      let mid = (lo + hi) / 2 in
      let c = compare_pins h mid pins in
      if c = 0 then Some mid else if c < 0 then bsearch (mid + 1) hi else bsearch lo mid
  in
  bsearch 0 h.m

let mem_edge h pins = find_edge h pins <> None

let equal a b = Cset.Store.equal a.c b.c

let pp ppf h =
  Format.fprintf ppf "@[<v>hypergraph n=%d m=%d@," h.n h.m;
  for e = 0 to h.m - 1 do
    Format.fprintf ppf "{";
    for j = 0 to arity h e - 1 do
      if j > 0 then Format.fprintf ppf ", ";
      Format.fprintf ppf "%d" (pin h e j)
    done;
    Format.fprintf ppf "}@,"
  done;
  Format.fprintf ppf "@]"

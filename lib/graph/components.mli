(** Connected components and spanning forests (reference implementations the
    AGM sketch decoder is checked against). *)

val components : Graph.t -> int array * int
(** [(label, count)]: [label.(v)] is the component id of [v], ids are
    [0 .. count-1]. *)

val same_component : Graph.t -> int -> int -> bool
(** Whether two vertices are connected by some path. *)

val spanning_forest : Graph.t -> Graph.edge list
(** A BFS forest: exactly [n - #components] edges, acyclic, spanning. *)

val is_spanning_forest : Graph.t -> Graph.edge list -> bool
(** The given edges are graph edges, contain no cycle, and connect exactly
    the pairs the graph connects. *)

type t = Graph.edge list

type verdict = { edges_exist : bool; disjoint : bool; maximal : bool }

let size = List.length

let matched_vertices g matching =
  let s = Stdx.Bitset.create (Graph.n g) in
  List.iter
    (fun (u, v) ->
      Stdx.Bitset.add s u;
      Stdx.Bitset.add s v)
    matching;
  s

let disjoint_pairs n matching =
  let seen = Stdx.Bitset.create n in
  let ok = ref true in
  List.iter
    (fun (u, v) ->
      if u = v || Stdx.Bitset.mem seen u || Stdx.Bitset.mem seen v then ok := false
      else begin
        Stdx.Bitset.add seen u;
        Stdx.Bitset.add seen v
      end)
    matching;
  !ok

let is_matching g matching =
  disjoint_pairs (Graph.n g) matching && List.for_all (fun (u, v) -> Graph.mem_edge g u v) matching

let no_free_edge g matched =
  Graph.fold_edges
    (fun u v acc -> acc && not ((not (Stdx.Bitset.mem matched u)) && not (Stdx.Bitset.mem matched v)))
    g true

let is_maximal g matching = is_matching g matching && no_free_edge g (matched_vertices g matching)

let verify g matching =
  {
    edges_exist = List.for_all (fun (u, v) -> Graph.mem_edge g u v) matching;
    disjoint = disjoint_pairs (Graph.n g) matching;
    maximal = no_free_edge g (matched_vertices g matching);
  }

let greedy g ?order () =
  let order =
    match order with Some o -> o | None -> Graph.edges_array g
  in
  let matched = Stdx.Bitset.create (Graph.n g) in
  let out = ref [] in
  Array.iter
    (fun (u, v) ->
      if (not (Stdx.Bitset.mem matched u)) && not (Stdx.Bitset.mem matched v) then begin
        Stdx.Bitset.add matched u;
        Stdx.Bitset.add matched v;
        out := Graph.normalize_edge u v :: !out
      end)
    order;
  List.rev !out

let greedy_on_reported g reported =
  let matched = Stdx.Bitset.create (Graph.n g) in
  let out = ref [] in
  List.iter
    (fun (u, v) ->
      if u <> v && (not (Stdx.Bitset.mem matched u)) && not (Stdx.Bitset.mem matched v) then begin
        Stdx.Bitset.add matched u;
        Stdx.Bitset.add matched v;
        out := Graph.normalize_edge u v :: !out
      end)
    reported;
  List.rev !out

let augment_to_maximal g partial =
  let valid = List.filter (fun (u, v) -> Graph.mem_edge g u v) partial in
  let valid = greedy_on_reported g valid in
  let matched = matched_vertices g valid in
  let out = ref (List.rev valid) in
  Graph.iter_edges
    (fun u v ->
      if (not (Stdx.Bitset.mem matched u)) && not (Stdx.Bitset.mem matched v) then begin
        Stdx.Bitset.add matched u;
        Stdx.Bitset.add matched v;
        out := (u, v) :: !out
      end)
    g;
  List.rev !out

(* Hopcroft-Karp.  Left vertices are those in [left]; [pair.(v)] is the
   current partner or -1.  Distances drive the layered BFS/DFS phases. *)
let maximum_bipartite g ~left =
  let n = Graph.n g in
  if Stdx.Bitset.capacity left <> n then invalid_arg "Matching.maximum_bipartite: bitset capacity";
  Graph.iter_edges
    (fun u v ->
      if Stdx.Bitset.mem left u = Stdx.Bitset.mem left v then
        invalid_arg "Matching.maximum_bipartite: edge inside one side")
    g;
  let pair = Array.make n (-1) in
  let dist = Array.make n max_int in
  let lefts = Array.of_list (Stdx.Bitset.to_list left) in
  let queue = Queue.create () in
  let bfs () =
    Queue.clear queue;
    let found_free = ref false in
    Array.fill dist 0 n max_int;
    Array.iter
      (fun u ->
        if pair.(u) = -1 then begin
          dist.(u) <- 0;
          Queue.add u queue
        end)
      lefts;
    while not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      Graph.iter_neighbors
        (fun v ->
          let u' = pair.(v) in
          if u' = -1 then found_free := true
          else if dist.(u') = max_int then begin
            dist.(u') <- dist.(u) + 1;
            Queue.add u' queue
          end)
        g u
    done;
    !found_free
  in
  let rec dfs u =
    let deg = Graph.degree g u in
    let rec try_from i =
      if i >= deg then begin
        dist.(u) <- max_int;
        false
      end
      else begin
        let v = Graph.neighbor g u i in
        let u' = pair.(v) in
        let advance = u' = -1 || (dist.(u') = dist.(u) + 1 && dfs u') in
        if advance then begin
          pair.(v) <- u;
          pair.(u) <- v;
          true
        end
        else try_from (i + 1)
      end
    in
    try_from 0
  in
  while bfs () do
    Array.iter (fun u -> if pair.(u) = -1 then ignore (dfs u)) lefts
  done;
  Array.to_list lefts
  |> List.filter_map (fun u -> if pair.(u) = -1 then None else Some (Graph.normalize_edge u pair.(u)))

(* Hypergraph matchings: a matching is a set of pairwise vertex-disjoint
   hyperedges, maximal when every hyperedge of the graph meets a covered
   vertex. Edges are identified by id (lexicographic pin order). *)

type t = int list

type verdict = { edges_exist : bool; disjoint : bool; maximal : bool }

let size = List.length

let covered_vertices h ids =
  let s = Stdx.Bitset.create (Hypergraph.n h) in
  List.iter
    (fun e ->
      if e < 0 || e >= Hypergraph.m h then invalid_arg "Hmatching: edge id out of range";
      Hypergraph.iter_pins (fun v -> Stdx.Bitset.add s v) h e)
    ids;
  s

let is_matching h ids =
  let s = Stdx.Bitset.create (Hypergraph.n h) in
  List.for_all
    (fun e ->
      e >= 0 && e < Hypergraph.m h
      && begin
           let clash = Hypergraph.exists_pin (fun v -> Stdx.Bitset.mem s v) h e in
           Hypergraph.iter_pins (fun v -> Stdx.Bitset.add s v) h e;
           not clash
         end)
    ids

let is_maximal_given h covered =
  let ok = ref true in
  for e = 0 to Hypergraph.m h - 1 do
    if not (Hypergraph.exists_pin (fun v -> Stdx.Bitset.mem covered v) h e) then ok := false
  done;
  !ok

let is_maximal h ids = is_matching h ids && is_maximal_given h (covered_vertices h ids)

let verify h ids =
  let in_range = List.for_all (fun e -> e >= 0 && e < Hypergraph.m h) ids in
  if not in_range then { edges_exist = false; disjoint = false; maximal = false }
  else begin
    let s = Stdx.Bitset.create (Hypergraph.n h) in
    let disjoint =
      List.for_all
        (fun e ->
          let clash = Hypergraph.exists_pin (fun v -> Stdx.Bitset.mem s v) h e in
          Hypergraph.iter_pins (fun v -> Stdx.Bitset.add s v) h e;
          not clash)
        ids
    in
    { edges_exist = true; disjoint; maximal = is_maximal_given h s }
  end

let greedy h ?order () =
  let order = match order with Some o -> o | None -> Array.init (Hypergraph.m h) (fun e -> e) in
  let covered = Stdx.Bitset.create (Hypergraph.n h) in
  let out = ref [] in
  Array.iter
    (fun e ->
      if not (Hypergraph.exists_pin (fun v -> Stdx.Bitset.mem covered v) h e) then begin
        Hypergraph.iter_pins (fun v -> Stdx.Bitset.add covered v) h e;
        out := e :: !out
      end)
    order;
  List.rev !out

let augment_to_maximal h ids =
  let covered = Stdx.Bitset.create (Hypergraph.n h) in
  let kept = ref [] in
  List.iter
    (fun e ->
      if
        e >= 0
        && e < Hypergraph.m h
        && not (Hypergraph.exists_pin (fun v -> Stdx.Bitset.mem covered v) h e)
      then begin
        Hypergraph.iter_pins (fun v -> Stdx.Bitset.add covered v) h e;
        kept := e :: !kept
      end)
    ids;
  for e = 0 to Hypergraph.m h - 1 do
    if not (Hypergraph.exists_pin (fun v -> Stdx.Bitset.mem covered v) h e) then begin
      Hypergraph.iter_pins (fun v -> Stdx.Bitset.add covered v) h e;
      kept := e :: !kept
    end
  done;
  List.rev !kept

(* Hypergraph independent sets, in the weak (covering) sense: a set S of
   vertices is independent when no hyperedge has all its pins inside S,
   and maximal when adding any outside vertex would complete some
   hyperedge. For 2-uniform hypergraphs this is exactly graph MIS. *)

type t = int list

type verdict = { independent : bool; maximal : bool }

let member_set h set =
  let s = Stdx.Bitset.create (Hypergraph.n h) in
  List.iter
    (fun v ->
      if v < 0 || v >= Hypergraph.n h then invalid_arg "Hmis: vertex out of range";
      Stdx.Bitset.add s v)
    set;
  s

let independent_given h s =
  let ok = ref true in
  for e = 0 to Hypergraph.m h - 1 do
    if Hypergraph.for_all_pins (fun v -> Stdx.Bitset.mem s v) h e then ok := false
  done;
  !ok

let is_independent h set = independent_given h (member_set h set)

(* v is blocked by S when some incident hyperedge has every other pin in
   S — adding v would then complete that edge. *)
let blocked h s v =
  Hypergraph.exists_incident
    (fun e -> Hypergraph.for_all_pins (fun u -> u = v || Stdx.Bitset.mem s u) h e)
    h v

let maximal_given h s =
  let ok = ref true in
  for v = 0 to Hypergraph.n h - 1 do
    if not (Stdx.Bitset.mem s v || blocked h s v) then ok := false
  done;
  !ok

let is_maximal h set =
  let s = member_set h set in
  independent_given h s && maximal_given h s

let verify h set =
  let s = member_set h set in
  { independent = independent_given h s; maximal = maximal_given h s }

let greedy h ?order () =
  let order =
    match order with Some o -> o | None -> Array.init (Hypergraph.n h) (fun i -> i)
  in
  let s = Stdx.Bitset.create (Hypergraph.n h) in
  let out = ref [] in
  Array.iter
    (fun v ->
      if not (blocked h s v) then begin
        Stdx.Bitset.add s v;
        out := v :: !out
      end)
    order;
  List.rev !out

(** Global minimum edge cut (Stoer–Wagner).

    The referee-side oracle for the edge-connectivity sketching experiment:
    AGM-style sketches produce a sparse certificate (a union of [k]
    edge-disjoint spanning forests), and this exact min-cut decides whether
    the certificate preserves connectivity values below [k]. *)

val min_cut : Graph.t -> int
(** Size (number of edges) of a global minimum cut. By convention returns
    [0] for disconnected graphs and [max_int] for graphs with fewer than
    two vertices. Runs in [O(n^3)]. *)

val edge_connectivity : Graph.t -> int
(** Alias of {!min_cut} for connected graphs: the minimum number of edges
    whose removal disconnects the graph. *)

val is_k_edge_connected : Graph.t -> int -> bool
(** [is_k_edge_connected g k]: the graph is connected and every cut has at
    least [k] edges. [k <= 0] is always true for non-empty graphs. *)

(** Matchings: validity, maximality, greedy construction, and a maximum
    bipartite matching (Hopcroft–Karp) used as a test oracle.

    A matching is a list of normalised edges. The checkers mirror the
    paper's error model exactly (Section 2.1, "Types of error"): a protocol
    output can fail by (a) containing a non-edge, (b) sharing endpoints, or
    (c) not being maximal — each is reported separately. *)

type t = Graph.edge list
(** A (candidate) matching: a list of normalised edges. *)

(** The three failure modes of §2.1, each reported separately. *)
type verdict = {
  edges_exist : bool;  (** every listed edge is an edge of the graph *)
  disjoint : bool;  (** no two listed edges share an endpoint *)
  maximal : bool;  (** no graph edge has both endpoints unmatched *)
}

val size : t -> int
(** Number of edges in the matching. *)

val is_matching : Graph.t -> t -> bool
(** Edges exist and are pairwise disjoint. *)

val is_maximal : Graph.t -> t -> bool
(** [is_matching] and no extendable edge remains. *)

val verify : Graph.t -> t -> verdict
(** All three checks of {!verdict} in one pass. *)

val matched_vertices : Graph.t -> t -> Stdx.Bitset.t
(** The set of endpoints covered by the listed edges. *)

val greedy : Graph.t -> ?order:Graph.edge array -> unit -> t
(** Greedy maximal matching scanning edges in the given order (default:
    lexicographic). Always returns a maximal matching of the input graph. *)

val greedy_on_reported : Graph.t -> Graph.edge list -> t
(** Greedy matching over an arbitrary reported edge list (what a referee
    does with the union of received edge samples); edges not in the graph
    are kept — deciding validity is the experiment's job, as in the paper's
    error model. The result is pairwise disjoint but need not be a matching
    {e of the graph}. *)

val augment_to_maximal : Graph.t -> t -> t
(** Extends a disjoint edge set greedily to a maximal matching of the
    graph (keeping only its valid edges first). *)

val maximum_bipartite : Graph.t -> left:Stdx.Bitset.t -> t
(** Hopcroft–Karp maximum matching. [left] is one side of a bipartition;
    every edge must cross it, otherwise the function raises
    [Invalid_argument]. Used as an oracle in tests. *)

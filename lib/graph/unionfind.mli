(** Disjoint-set forests with union by rank and path compression.

    Used by the referee when decoding AGM sketches (Borůvka rounds) and by
    the spanning-forest checkers. *)

type t
(** A partition of [\[0, n)] into disjoint classes; mutable (finds
    compress paths). *)

val create : int -> t
(** [create n] is the discrete partition of [\[0, n)]: every element its
    own class. *)

val find : t -> int -> int
(** Canonical representative of the element's class (compresses the
    path it walks). *)

val union : t -> int -> int -> bool
(** [union uf a b] merges the two classes; returns [false] when they were
    already merged. *)

val same : t -> int -> int -> bool
(** Whether two elements share a class — [find uf a = find uf b]. *)

val count : t -> int
(** Number of distinct classes. *)

val class_members : t -> int list array
(** [class_members uf] groups vertices by representative: index by
    [find uf v]. Non-representative indices hold the empty list. *)

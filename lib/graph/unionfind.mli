(** Disjoint-set forests with union by rank and path compression.

    Used by the referee when decoding AGM sketches (Borůvka rounds) and by
    the spanning-forest checkers. *)

type t

val create : int -> t
val find : t -> int -> int
val union : t -> int -> int -> bool
(** [union uf a b] merges the two classes; returns [false] when they were
    already merged. *)

val same : t -> int -> int -> bool
val count : t -> int
(** Number of distinct classes. *)

val class_members : t -> int list array
(** [class_members uf] groups vertices by representative: index by
    [find uf v]. Non-representative indices hold the empty list. *)

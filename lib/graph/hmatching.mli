(** Hypergraph matchings: validity, maximality and greedy construction —
    the {!Matching} counterpart for {!Hypergraph}.

    A matching is a set of pairwise vertex-disjoint hyperedges, given by
    edge ids (the frozen lexicographic order); it is maximal when every
    hyperedge of the graph meets a covered vertex. The checkers mirror
    the paper's error model: a protocol output can fail by naming a
    non-edge, by overlapping, or by not being maximal — each reported
    separately. *)

type t = int list
(** A (candidate) matching: a list of hyperedge ids. *)

(** The three failure modes, each reported separately. *)
type verdict = {
  edges_exist : bool;  (** every listed id is an edge of the hypergraph *)
  disjoint : bool;  (** no two listed edges share a pin *)
  maximal : bool;  (** every hyperedge meets a covered vertex *)
}

val size : t -> int
(** Number of hyperedges in the matching. *)

val is_matching : Hypergraph.t -> t -> bool
(** Ids in range and edges pairwise vertex-disjoint. *)

val is_maximal : Hypergraph.t -> t -> bool
(** [is_matching] and no extendable hyperedge remains. *)

val verify : Hypergraph.t -> t -> verdict
(** All three checks of {!verdict} in one pass. *)

val covered_vertices : Hypergraph.t -> t -> Stdx.Bitset.t
(** The set of vertices pinned by the listed hyperedges. *)

val greedy : Hypergraph.t -> ?order:int array -> unit -> t
(** Greedy maximal matching scanning hyperedges in the given order
    (default: lexicographic edge ids). Always maximal. *)

val augment_to_maximal : Hypergraph.t -> t -> t
(** Extends a reported id list greedily to a maximal matching (keeping
    only its in-range, non-overlapping edges first, in list order). *)

(** Hypergraph generators for tests, examples and workloads — the
    {!Gen} counterpart for {!Hypergraph}. *)

val uniform_random : Stdx.Prng.t -> n:int -> m:int -> k:int -> Hypergraph.t
(** [m] hyperedges, each of [k] distinct vertices sampled uniformly from
    [\[0, n)] (duplicate hyperedges collapse at freeze, so the realised
    edge count can fall slightly short). Requires [2 <= k <= n]. *)

val random_arity : Stdx.Prng.t -> n:int -> m:int -> kmin:int -> kmax:int -> Hypergraph.t
(** Like {!uniform_random} with each hyperedge's arity drawn uniformly
    from [\[kmin, kmax\]]. Requires [2 <= kmin <= kmax <= n]. *)

val blocks : n:int -> k:int -> Hypergraph.t
(** The disjoint partition workload: hyperedges [{ik .. ik+k-1}] for
    consecutive blocks — the hypergraph analogue of
    {!Gen.perfect_matching} (any maximal matching must take every
    block). *)

val sunflower : petals:int -> core:int -> petal:int -> Hypergraph.t
(** A sunflower: [petals] hyperedges sharing the common core
    [0 .. core-1], each adding [petal] private vertices. Any two edges
    intersect, so a maximal matching has exactly one edge. *)

val tight_path : n:int -> k:int -> Hypergraph.t
(** The tight path: all [n-k+1] windows [{s .. s+k-1}] of width [k] —
    the hypergraph analogue of {!Gen.path}. *)

(** Undirected simple graphs on vertex set [\[0, n)].

    This is the substrate every layer above shares: the RS construction, the
    hard distribution, the sketching protocols and the referee all exchange
    values of this type. The representation is columnar (DESIGN.md §8,
    §11): the graph is the two-part, two-morphism instance of the
    schema-driven incidence store in {!Cset} — flat normalized src/dst
    edge columns in lexicographic order — topped with one derived index,
    a frozen CSR neighbour store (rows sorted ascending). Both
    neighbourhood queries and whole-edge-set scans are cache-friendly,
    deterministic and allocation-free. Graphs are assembled either
    through the legacy list-taking {!create}, or — on hot paths —
    through {!Builder}, {!of_edge_array} and {!of_sorted_csr}. *)

type t
(** A frozen graph: immutable once built, structurally comparable with
    {!equal}. *)

type edge = int * int
(** Normalised: [(u, v)] with [u < v]. *)

val normalize_edge : int -> int -> edge
(** Orders the endpoints; rejects self-loops. *)

val create : int -> edge list -> t
(** [create n edges] builds a graph; duplicate edges are collapsed,
    endpoints must lie in [\[0, n)], self-loops are rejected. Prefer
    {!Builder} or {!of_edge_array} on hot paths: they take the same
    sort+dedup freeze path without consing a list first. *)

(** Mutable edge accumulator: [create] a builder (with a capacity hint when
    the edge count is known), [add_edge] in any order — duplicates and
    unnormalised endpoint order are fine — then [freeze] once into an
    immutable graph. Freezing sorts and deduplicates in one pass over a
    flat key array; the builder must not be reused afterwards. *)
module Builder : sig
  type graph := t

  type t

  val create : ?capacity:int -> int -> t
  (** [create ?capacity n] is an empty builder over vertex set [\[0, n)].
      [capacity] (default 16) pre-sizes the edge store; adding beyond it
      grows by doubling. *)

  val n : t -> int
  (** Vertex count the builder was created with. *)

  val length : t -> int
  (** Edges added so far (before deduplication). *)

  val add_edge : t -> int -> int -> unit
  (** Endpoints in any order; rejects self-loops and out-of-range
      vertices. *)

  val freeze : t -> graph
  (** Sort + dedup into a frozen graph. The builder is consumed: using it
      after [freeze] is unspecified. *)
end

val of_edge_array : int -> edge array -> t
(** [of_edge_array n edges] is [create n] without the list: one
    validation pass over the array, then the shared sort+dedup freeze.
    Fast path for array-shaped producers ({!relabel}-style permuted edge
    sets, [kept]-filtered RS copies, decoded sketches). *)

val of_sorted_csr : n:int -> row_start:int array -> col:int array -> t
(** Adopts an already-validated CSR adjacency: [row_start] has length
    [n+1] with [row_start.(0) = 0] and [row_start.(n) = Array.length col],
    and row [v] is [col.(row_start.(v)) .. col.(row_start.(v+1)-1)], sorted
    ascending, symmetric and self-loop-free. The arrays are adopted, not
    copied — callers must not mutate them afterwards. Only shape is
    checked; per-row sortedness/symmetry is trusted. *)

val empty : int -> t
(** [empty n] has [n] vertices and no edges. *)

val n : t -> int
(** Number of vertices. *)

val m : t -> int
(** Number of edges. *)

val neighbors : t -> int -> int array
(** Sorted neighbours of [v], as a fresh owned copy of the CSR row — safe
    to mutate, and allocated per call. Iterate with {!iter_neighbors} /
    {!fold_neighbors} / {!exists_neighbor} (or index with {!neighbor})
    instead when the copy is not needed. *)

val neighbor : t -> int -> int -> int
(** [neighbor g v j] is the [j]-th (0-based) neighbour of [v] in sorted
    order, [0 <= j < degree g v]; reads the CSR row in place. *)

val iter_neighbors : (int -> unit) -> t -> int -> unit
(** [iter_neighbors f g v] applies [f] to each neighbour of [v] in sorted
    order, without allocating. *)

val fold_neighbors : (int -> 'a -> 'a) -> t -> int -> 'a -> 'a
(** Fold over the sorted neighbour row, without allocating. *)

val exists_neighbor : (int -> bool) -> t -> int -> bool
(** Short-circuiting exists over the sorted neighbour row. *)

val degree : t -> int -> int
(** Number of neighbours of a vertex; O(1). *)

val max_degree : t -> int
(** Largest {!degree} over all vertices. *)

val mem_edge : t -> int -> int -> bool
(** Edge test, order-insensitive; binary search in the shorter row. *)

val edges_array : t -> edge array
(** All edges, normalised, in lexicographic order, as a fresh array (safe
    to mutate, e.g. to shuffle into a greedy order). *)

val iter_edges : (int -> int -> unit) -> t -> unit
(** Lexicographic, allocation-free scan over the flat edge columns. *)

val fold_edges : (int -> int -> 'a -> 'a) -> t -> 'a -> 'a
(** Lexicographic, allocation-free fold over the flat edge columns. *)

val union : t -> t -> t
(** Union of edge sets; both graphs must have the same vertex count. *)

val union_all : int -> t list -> t
(** [union_all n gs] unions every edge set over vertex set [\[0, n)]. *)

val relabel : t -> int array -> t
(** [relabel g sigma] renames vertex [v] to [sigma.(v)]; [sigma] must be a
    permutation of [\[0, n)]. *)

val induced : t -> int list -> t * int array
(** [induced g vs] is the induced subgraph on [vs] with vertices renumbered
    [0 ..]; the returned array maps new indices back to original ones. *)

val disjoint_union : t -> t -> t
(** Vertices of the second graph are shifted by [n first]. Fast path: the
    two CSR stores are concatenated directly, no re-sort. *)

val equal : t -> t -> bool
(** Same vertex count and same edge set. *)

val cset : t -> Cset.Store.t
(** The underlying frozen incidence store (parts ["vertex"]/["edge"],
    fixed morphisms ["src"]/["dst"]); the edge columns are shared with
    the graph, not copied. *)

val pp : Format.formatter -> t -> unit
(** Debug printer: vertex count plus the edge list. *)

(** Undirected simple graphs on vertex set [\[0, n)].

    This is the substrate every layer above shares: the RS construction, the
    hard distribution, the sketching protocols and the referee all exchange
    values of this type. The representation is a frozen sorted adjacency
    array, so neighbourhood queries are cache-friendly and deterministic. *)

type t

type edge = int * int
(** Normalised: [(u, v)] with [u < v]. *)

val normalize_edge : int -> int -> edge
(** Orders the endpoints; rejects self-loops. *)

val create : int -> edge list -> t
(** [create n edges] builds a graph; duplicate edges are collapsed,
    endpoints must lie in [\[0, n)], self-loops are rejected. *)

val empty : int -> t

val n : t -> int
(** Number of vertices. *)

val m : t -> int
(** Number of edges. *)

val neighbors : t -> int -> int array
(** Sorted, read-only by convention (do not mutate). *)

val degree : t -> int -> int
val max_degree : t -> int
val mem_edge : t -> int -> int -> bool

val edges : t -> edge list
(** All edges, normalised, in lexicographic order. *)

val iter_edges : (int -> int -> unit) -> t -> unit

val fold_edges : (int -> int -> 'a -> 'a) -> t -> 'a -> 'a

val union : t -> t -> t
(** Union of edge sets; both graphs must have the same vertex count. *)

val union_all : int -> t list -> t

val relabel : t -> int array -> t
(** [relabel g sigma] renames vertex [v] to [sigma.(v)]; [sigma] must be a
    permutation of [\[0, n)]. *)

val induced : t -> int list -> t * int array
(** [induced g vs] is the induced subgraph on [vs] with vertices renumbered
    [0 ..]; the returned array maps new indices back to original ones. *)

val disjoint_union : t -> t -> t
(** Vertices of the second graph are shifted by [n first]. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

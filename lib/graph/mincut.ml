(* Stoer-Wagner minimum cut on unweighted simple graphs, implemented over a
   contracted weight matrix.  Each phase runs a maximum-adjacency search;
   the cut-of-the-phase isolates the last-added vertex, and the two last
   vertices are merged for the next phase. *)

let min_cut g =
  let n = Graph.n g in
  if n < 2 then max_int
  else begin
    let w = Array.make_matrix n n 0 in
    Graph.iter_edges
      (fun u v ->
        w.(u).(v) <- 1;
        w.(v).(u) <- 1)
      g;
    let merged = Array.make n false in
    let best = ref max_int in
    let active = ref n in
    while !active > 1 do
      (* Maximum-adjacency order over the still-active vertices. *)
      let in_a = Array.make n false in
      let weight_to_a = Array.make n 0 in
      let prev = ref (-1) and last = ref (-1) in
      for _ = 1 to !active do
        (* Pick the most tightly connected remaining vertex. *)
        let pick = ref (-1) in
        for v = 0 to n - 1 do
          if (not merged.(v)) && not in_a.(v) then
            if !pick = -1 || weight_to_a.(v) > weight_to_a.(!pick) then pick := v
        done;
        let v = !pick in
        in_a.(v) <- true;
        prev := !last;
        last := v;
        for u = 0 to n - 1 do
          if (not merged.(u)) && not in_a.(u) then weight_to_a.(u) <- weight_to_a.(u) + w.(v).(u)
        done
      done;
      (* Cut of the phase: the last vertex against the rest. *)
      let phase_cut = ref 0 in
      for u = 0 to n - 1 do
        if (not merged.(u)) && u <> !last then phase_cut := !phase_cut + w.(!last).(u)
      done;
      if !phase_cut < !best then best := !phase_cut;
      (* Merge last into prev. *)
      merged.(!last) <- true;
      for u = 0 to n - 1 do
        if not merged.(u) then begin
          w.(!prev).(u) <- w.(!prev).(u) + w.(!last).(u);
          w.(u).(!prev) <- w.(!prev).(u)
        end
      done;
      decr active
    done;
    !best
  end

let edge_connectivity = min_cut

let is_k_edge_connected g k =
  if k <= 0 then Graph.n g > 0 else Graph.n g >= 2 && min_cut g >= k

(* Columnar graph core — the graph instance of the schema-driven
   incidence store in [Cset] (DESIGN.md §8, §11).

   The underlying [Cset.Store.t] has parts "vertex" / "edge" and fixed
   morphism columns "src" / "dst"; an edge (u, v) with u < v packs into
   the single int key u*n + v (safe while n < 2^31 on 64-bit OCaml
   ints), so the store's packed sort+dedup freeze pipeline is exactly
   the historical one — radix-sorted key array, adjacent dedup, flat
   normalized edge columns [eu]/[ev] in lexicographic order (aliases of
   the store's src/dst columns, never copies). On top of the store the
   graph keeps its one derived index: the merged CSR neighbour store
   [row_start] (length n+1) indexing into [col] (length 2m), each row
   sorted ascending.

   Construction funnels through [of_keys] (the store's [freeze_keys]
   entry, under the same "graph.sort"/"graph.dedup"/"graph.csr-fill"
   trace spans as ever); [Builder] is the mutable front end for
   incremental assembly, and [of_sorted_csr] / [disjoint_union] adopt
   already-CSR-shaped input without re-sorting. *)

type edge = int * int

type t = {
  c : Cset.Store.t;
  n : int;
  m : int;
  row_start : int array;
  col : int array;
  eu : int array;
  ev : int array;
}

let schema =
  Cset.Schema.make ~parts:[ "vertex"; "edge" ]
    ~morphisms:
      [
        Cset.Schema.fixed ~dom:"edge" ~cod:"vertex" "src";
        Cset.Schema.fixed ~dom:"edge" ~cod:"vertex" "dst";
      ]

let edge_part = 1
let src_m = 0
let dst_m = 1
let cset g = g.c

let normalize_edge u v =
  if u = v then invalid_arg "Graph.normalize_edge: self-loop";
  if u < v then (u, v) else (v, u)

(* Wrap a frozen edge store with the graph-specific derived index (the
   merged neighbour CSR). [begin_]/[end_] is safe here: freezes happen
   on exactly one logical task per domain. *)
let of_store c =
  let n = Cset.Store.count c 0 and m = Cset.Store.count c edge_part in
  let eu = Cset.Store.fixed_column c src_m and ev = Cset.Store.fixed_column c dst_m in
  Stdx.Trace.begin_ "graph.csr-fill";
  let row_start, col = Cset.Columnar.neighbor_csr ~n ~eu ~ev in
  Stdx.Trace.end_ ();
  { c; n; m; row_start; col; eu; ev }

(* Build from the first [len] entries of [keys] (destroyed by sorting);
   duplicates are collapsed. The three phases — sort, dedup into edge
   columns, CSR fill — each run inside a trace span nested under
   "graph.freeze", so a Perfetto view of any experiment shows where
   graph-construction time goes. *)
let of_keys n keys len =
  Stdx.Trace.begin_ "graph.freeze";
  let c =
    Cset.Store.freeze_keys ~span_prefix:"graph" schema ~part:edge_part ~counts:[| n; 0 |] keys
      len
  in
  let g = of_store c in
  Stdx.Trace.end_ ();
  g

module Builder = struct
  type graph = t

  type t = { n : int; mutable keys : int array; mutable len : int }

  let create ?(capacity = 16) n =
    if n < 0 then invalid_arg "Graph.Builder.create: negative n";
    { n; keys = Array.make (max capacity 1) 0; len = 0 }

  let n b = b.n
  let length b = b.len

  let add_key b key =
    if b.len = Array.length b.keys then begin
      let bigger = Array.make (2 * b.len) 0 in
      Array.blit b.keys 0 bigger 0 b.len;
      b.keys <- bigger
    end;
    b.keys.(b.len) <- key;
    b.len <- b.len + 1

  let add_edge b u v =
    if u < 0 || u >= b.n || v < 0 || v >= b.n then
      invalid_arg "Graph.Builder.add_edge: vertex out of range";
    if u = v then invalid_arg "Graph.Builder.add_edge: self-loop";
    add_key b (if u < v then (u * b.n) + v else (v * b.n) + u)

  let freeze b : graph = of_keys b.n b.keys b.len
end

let create n edge_list =
  if n < 0 then invalid_arg "Graph.create: negative n";
  let len = List.length edge_list in
  let keys = Array.make (max len 1) 0 in
  let i = ref 0 in
  List.iter
    (fun (u, v) ->
      if u < 0 || u >= n || v < 0 || v >= n then invalid_arg "Graph.create: vertex out of range";
      let u, v = normalize_edge u v in
      keys.(!i) <- (u * n) + v;
      incr i)
    edge_list;
  of_keys n keys len

let of_edge_array n edge_arr =
  if n < 0 then invalid_arg "Graph.of_edge_array: negative n";
  let len = Array.length edge_arr in
  let keys = Array.make (max len 1) 0 in
  Array.iteri
    (fun i (u, v) ->
      if u < 0 || u >= n || v < 0 || v >= n then
        invalid_arg "Graph.of_edge_array: vertex out of range";
      if u = v then invalid_arg "Graph.of_edge_array: self-loop";
      keys.(i) <- (if u < v then (u * n) + v else (v * n) + u))
    edge_arr;
  of_keys n keys len

let of_sorted_csr ~n ~row_start ~col =
  if n < 0 then invalid_arg "Graph.of_sorted_csr: negative n";
  if Array.length row_start <> n + 1 || row_start.(0) <> 0 || row_start.(n) <> Array.length col
  then invalid_arg "Graph.of_sorted_csr: row_start shape";
  if Array.length col land 1 = 1 then invalid_arg "Graph.of_sorted_csr: odd half-edge count";
  let m = Array.length col / 2 in
  let eu = Array.make m 0 and ev = Array.make m 0 in
  let i = ref 0 in
  for u = 0 to n - 1 do
    for idx = row_start.(u) to row_start.(u + 1) - 1 do
      let v = col.(idx) in
      if u < v then begin
        eu.(!i) <- u;
        ev.(!i) <- v;
        incr i
      end
    done
  done;
  if !i <> m then invalid_arg "Graph.of_sorted_csr: not a symmetric simple adjacency";
  let c =
    Cset.Store.unsafe_of_columns schema ~counts:[| n; m |]
      ~columns:[| Cset.Store.Fixed_col eu; Cset.Store.Fixed_col ev |]
  in
  { c; n; m; row_start; col; eu; ev }

let empty n = create n []

let n g = g.n
let m g = g.m
let degree g v = g.row_start.(v + 1) - g.row_start.(v)

let neighbors g v = Array.sub g.col g.row_start.(v) (degree g v)

let neighbor g v j = g.col.(g.row_start.(v) + j)

let iter_neighbors f g v =
  for idx = g.row_start.(v) to g.row_start.(v + 1) - 1 do
    f g.col.(idx)
  done

let fold_neighbors f g v init =
  let acc = ref init in
  for idx = g.row_start.(v) to g.row_start.(v + 1) - 1 do
    acc := f g.col.(idx) !acc
  done;
  !acc

let exists_neighbor p g v =
  let rec go idx = idx < g.row_start.(v + 1) && (p g.col.(idx) || go (idx + 1)) in
  go g.row_start.(v)

let max_degree g =
  let best = ref 0 in
  for v = 0 to g.n - 1 do
    if degree g v > !best then best := degree g v
  done;
  !best

let mem_edge g u v =
  if u = v then false
  else begin
    let rec bsearch lo hi =
      if lo >= hi then false
      else
        let mid = (lo + hi) / 2 in
        if g.col.(mid) = v then true
        else if g.col.(mid) < v then bsearch (mid + 1) hi
        else bsearch lo mid
    in
    bsearch g.row_start.(u) g.row_start.(u + 1)
  end

let iter_edges f g =
  for i = 0 to g.m - 1 do
    f g.eu.(i) g.ev.(i)
  done

let fold_edges f g init =
  let acc = ref init in
  for i = 0 to g.m - 1 do
    acc := f g.eu.(i) g.ev.(i) !acc
  done;
  !acc

let edges_array g = Array.init g.m (fun i -> (g.eu.(i), g.ev.(i)))

let union a b =
  if a.n <> b.n then invalid_arg "Graph.union: vertex count mismatch";
  let keys = Array.make (max (a.m + b.m) 1) 0 in
  for i = 0 to a.m - 1 do
    keys.(i) <- (a.eu.(i) * a.n) + a.ev.(i)
  done;
  for i = 0 to b.m - 1 do
    keys.(a.m + i) <- (b.eu.(i) * b.n) + b.ev.(i)
  done;
  of_keys a.n keys (a.m + b.m)

let union_all n gs =
  let total = List.fold_left (fun acc g -> acc + g.m) 0 gs in
  let keys = Array.make (max total 1) 0 in
  let i = ref 0 in
  List.iter
    (fun g ->
      for e = 0 to g.m - 1 do
        if g.eu.(e) >= n || g.ev.(e) >= n then invalid_arg "Graph.union_all: vertex out of range";
        keys.(!i) <- (g.eu.(e) * n) + g.ev.(e);
        incr i
      done)
    gs;
  of_keys n keys total

let relabel g sigma =
  if Array.length sigma <> g.n then invalid_arg "Graph.relabel: bad permutation length";
  let seen = Array.make g.n false in
  Array.iter
    (fun x ->
      if x < 0 || x >= g.n || seen.(x) then invalid_arg "Graph.relabel: not a permutation";
      seen.(x) <- true)
    sigma;
  let keys = Array.make (max g.m 1) 0 in
  for i = 0 to g.m - 1 do
    let u = sigma.(g.eu.(i)) and v = sigma.(g.ev.(i)) in
    keys.(i) <- (if u < v then (u * g.n) + v else (v * g.n) + u)
  done;
  of_keys g.n keys g.m

let induced g vs =
  let vs = List.sort_uniq compare vs in
  let back = Array.of_list vs in
  let fwd = Hashtbl.create (Array.length back) in
  Array.iteri (fun i v -> Hashtbl.replace fwd v i) back;
  let b = Builder.create ~capacity:(Array.length back) (Array.length back) in
  iter_edges
    (fun u v ->
      match (Hashtbl.find_opt fwd u, Hashtbl.find_opt fwd v) with
      | Some u', Some v' -> Builder.add_edge b u' v'
      | _ -> ())
    g;
  (Builder.freeze b, back)

(* Fast path: both operands are already frozen CSR, and every shifted
   vertex of [b] is larger than every vertex of [a], so the concatenated
   rows and edge columns are already sorted — no re-sort needed. *)
let disjoint_union a b =
  let n = a.n + b.n in
  let row_start = Array.make (n + 1) 0 in
  Array.blit a.row_start 0 row_start 0 (a.n + 1);
  let off = a.row_start.(a.n) in
  for v = 1 to b.n do
    row_start.(a.n + v) <- off + b.row_start.(v)
  done;
  let col = Array.make (off + Array.length b.col) 0 in
  Array.blit a.col 0 col 0 off;
  Array.iteri (fun i v -> col.(off + i) <- v + a.n) b.col;
  let eu = Array.make (a.m + b.m) 0 and ev = Array.make (a.m + b.m) 0 in
  Array.blit a.eu 0 eu 0 a.m;
  Array.blit a.ev 0 ev 0 a.m;
  for i = 0 to b.m - 1 do
    eu.(a.m + i) <- b.eu.(i) + a.n;
    ev.(a.m + i) <- b.ev.(i) + a.n
  done;
  let c =
    Cset.Store.unsafe_of_columns schema ~counts:[| n; a.m + b.m |]
      ~columns:[| Cset.Store.Fixed_col eu; Cset.Store.Fixed_col ev |]
  in
  { c; n; m = a.m + b.m; row_start; col; eu; ev }

let equal a b = a.n = b.n && a.eu = b.eu && a.ev = b.ev

let pp ppf g =
  Format.fprintf ppf "@[<v>graph n=%d m=%d@," g.n g.m;
  iter_edges (fun u v -> Format.fprintf ppf "%d -- %d@," u v) g;
  Format.fprintf ppf "@]"

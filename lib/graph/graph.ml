type edge = int * int

type t = { n : int; adj : int array array; m : int }

let normalize_edge u v =
  if u = v then invalid_arg "Graph.normalize_edge: self-loop";
  if u < v then (u, v) else (v, u)

let create n edge_list =
  if n < 0 then invalid_arg "Graph.create: negative n";
  let buckets = Array.make n [] in
  let add_edge (u, v) =
    if u < 0 || u >= n || v < 0 || v >= n then invalid_arg "Graph.create: vertex out of range";
    let u, v = normalize_edge u v in
    buckets.(u) <- v :: buckets.(u);
    buckets.(v) <- u :: buckets.(v)
  in
  List.iter add_edge edge_list;
  let dedup_sorted l =
    let a = Array.of_list l in
    Array.sort compare a;
    let out = ref [] and last = ref min_int in
    Array.iter
      (fun x ->
        if x <> !last then begin
          out := x :: !out;
          last := x
        end)
      a;
    Array.of_list (List.rev !out)
  in
  let adj = Array.map dedup_sorted buckets in
  let m = Array.fold_left (fun acc nbrs -> acc + Array.length nbrs) 0 adj / 2 in
  { n; adj; m }

let empty n = create n []

let n g = g.n
let m g = g.m
let neighbors g v = g.adj.(v)
let degree g v = Array.length g.adj.(v)

let max_degree g = Array.fold_left (fun acc nbrs -> max acc (Array.length nbrs)) 0 g.adj

let mem_edge g u v =
  if u = v then false
  else begin
    let nbrs = g.adj.(u) in
    let rec bsearch lo hi =
      if lo >= hi then false
      else
        let mid = (lo + hi) / 2 in
        if nbrs.(mid) = v then true else if nbrs.(mid) < v then bsearch (mid + 1) hi else bsearch lo mid
    in
    bsearch 0 (Array.length nbrs)
  end

let iter_edges f g =
  for u = 0 to g.n - 1 do
    Array.iter (fun v -> if u < v then f u v) g.adj.(u)
  done

let fold_edges f g init =
  let acc = ref init in
  iter_edges (fun u v -> acc := f u v !acc) g;
  !acc

let edges g = List.rev (fold_edges (fun u v acc -> (u, v) :: acc) g [])

let union a b =
  if a.n <> b.n then invalid_arg "Graph.union: vertex count mismatch";
  create a.n (edges a @ edges b)

let union_all n gs = create n (List.concat_map edges gs)

let relabel g sigma =
  if Array.length sigma <> g.n then invalid_arg "Graph.relabel: bad permutation length";
  let seen = Array.make g.n false in
  Array.iter
    (fun x ->
      if x < 0 || x >= g.n || seen.(x) then invalid_arg "Graph.relabel: not a permutation";
      seen.(x) <- true)
    sigma;
  create g.n (List.map (fun (u, v) -> normalize_edge sigma.(u) sigma.(v)) (edges g))

let induced g vs =
  let vs = List.sort_uniq compare vs in
  let back = Array.of_list vs in
  let fwd = Hashtbl.create (List.length vs) in
  Array.iteri (fun i v -> Hashtbl.replace fwd v i) back;
  let sub_edges =
    fold_edges
      (fun u v acc ->
        match (Hashtbl.find_opt fwd u, Hashtbl.find_opt fwd v) with
        | Some u', Some v' -> (u', v') :: acc
        | _ -> acc)
      g []
  in
  (create (Array.length back) sub_edges, back)

let disjoint_union a b =
  let shift = a.n in
  create (a.n + b.n) (edges a @ List.map (fun (u, v) -> (u + shift, v + shift)) (edges b))

let equal a b = a.n = b.n && a.adj = b.adj

let pp ppf g =
  Format.fprintf ppf "@[<v>graph n=%d m=%d@," g.n g.m;
  iter_edges (fun u v -> Format.fprintf ppf "%d -- %d@," u v) g;
  Format.fprintf ppf "@]"

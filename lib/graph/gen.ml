let gnp rng n p =
  let edges = ref [] in
  for u = 0 to n - 2 do
    for v = u + 1 to n - 1 do
      if Stdx.Prng.bernoulli rng p then edges := (u, v) :: !edges
    done
  done;
  Graph.create n !edges

let random_bipartite rng ~left ~right ~p =
  let edges = ref [] in
  for u = 0 to left - 1 do
    for v = left to left + right - 1 do
      if Stdx.Prng.bernoulli rng p then edges := (u, v) :: !edges
    done
  done;
  Graph.create (left + right) !edges

let path n = Graph.create n (List.init (max 0 (n - 1)) (fun i -> (i, i + 1)))

let cycle n =
  if n < 3 then invalid_arg "Gen.cycle: needs >= 3 vertices";
  Graph.create n ((n - 1, 0) :: List.init (n - 1) (fun i -> (i, i + 1)))

let complete n =
  let edges = ref [] in
  for u = 0 to n - 2 do
    for v = u + 1 to n - 1 do
      edges := (u, v) :: !edges
    done
  done;
  Graph.create n !edges

let star n =
  if n < 1 then invalid_arg "Gen.star";
  Graph.create n (List.init (n - 1) (fun i -> (0, i + 1)))

let complete_bipartite a b =
  let edges = ref [] in
  for u = 0 to a - 1 do
    for v = a to a + b - 1 do
      edges := (u, v) :: !edges
    done
  done;
  Graph.create (a + b) !edges

let perfect_matching k = Graph.create (2 * k) (List.init k (fun i -> ((2 * i), (2 * i) + 1)))

let disjoint_matchings ~sizes =
  let total = 2 * List.fold_left ( + ) 0 sizes in
  let edges = ref [] and base = ref 0 in
  List.iter
    (fun size ->
      for i = 0 to size - 1 do
        edges := (!base + (2 * i), !base + (2 * i) + 1) :: !edges
      done;
      base := !base + (2 * size))
    sizes;
  Graph.create total !edges

let random_regular_ish rng n d =
  if d >= n then invalid_arg "Gen.random_regular_ish: d >= n";
  let target = d * n / 2 in
  let seen = Hashtbl.create (2 * target) in
  let edges = ref [] and count = ref 0 and attempts = ref 0 in
  while !count < target && !attempts < 50 * target do
    incr attempts;
    let u = Stdx.Prng.int rng n and v = Stdx.Prng.int rng n in
    if u <> v then begin
      let e = Graph.normalize_edge u v in
      if not (Hashtbl.mem seen e) then begin
        Hashtbl.replace seen e ();
        edges := e :: !edges;
        incr count
      end
    end
  done;
  Graph.create n !edges

let grid rows cols =
  if rows < 1 || cols < 1 then invalid_arg "Gen.grid";
  let idx i j = (i * cols) + j in
  let edges = ref [] in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      if j + 1 < cols then edges := (idx i j, idx i (j + 1)) :: !edges;
      if i + 1 < rows then edges := (idx i j, idx (i + 1) j) :: !edges
    done
  done;
  Graph.create (rows * cols) !edges

let configuration_model rng ~degrees =
  let n = Array.length degrees in
  let total = Array.fold_left ( + ) 0 degrees in
  if total mod 2 <> 0 then invalid_arg "Gen.configuration_model: odd degree sum";
  Array.iter (fun d -> if d < 0 then invalid_arg "Gen.configuration_model: negative degree") degrees;
  (* Stubs: one entry per half-edge. *)
  let stubs = Array.make total 0 in
  let pos = ref 0 in
  Array.iteri
    (fun v d ->
      for _ = 1 to d do
        stubs.(!pos) <- v;
        incr pos
      done)
    degrees;
  Stdx.Prng.shuffle rng stubs;
  let edges = ref [] in
  let i = ref 0 in
  while !i + 1 < total do
    let u = stubs.(!i) and v = stubs.(!i + 1) in
    if u <> v then edges := (u, v) :: !edges;
    i := !i + 2
  done;
  Graph.create n !edges

let power_law_degrees rng ~n ~exponent ~dmax =
  if n < 1 || dmax < 1 || exponent <= 1. then invalid_arg "Gen.power_law_degrees";
  (* Inverse-CDF sampling over the discrete truncated power law. *)
  let weights = Array.init dmax (fun i -> float_of_int (i + 1) ** -.exponent) in
  let total = Array.fold_left ( +. ) 0. weights in
  let draw () =
    let u = Stdx.Prng.float rng *. total in
    let rec go i acc =
      if i >= dmax - 1 then dmax
      else begin
        let acc = acc +. weights.(i) in
        if u < acc then i + 1 else go (i + 1) acc
      end
    in
    go 0 0.
  in
  let degrees = Array.init n (fun _ -> min (n - 1) (draw ())) in
  let sum = Array.fold_left ( + ) 0 degrees in
  if sum mod 2 = 1 then degrees.(0) <- degrees.(0) + if degrees.(0) < n - 1 then 1 else -1;
  degrees

let bridge_of_clouds rng ~half ~p =
  if half < 1 then invalid_arg "Gen.bridge_of_clouds";
  let a = gnp rng half p in
  let b = gnp rng half p in
  let g = Graph.disjoint_union a b in
  let u = Stdx.Prng.int rng half in
  let v = half + Stdx.Prng.int rng half in
  let bridge = Graph.normalize_edge u v in
  (Graph.union g (Graph.create (2 * half) [ bridge ]), bridge)

module B = Graph.Builder

let gnp rng n p =
  let b = B.create ~capacity:(max 16 (n * 4)) n in
  for u = 0 to n - 2 do
    for v = u + 1 to n - 1 do
      if Stdx.Prng.bernoulli rng p then B.add_edge b u v
    done
  done;
  B.freeze b

let random_bipartite rng ~left ~right ~p =
  let b = B.create ~capacity:(max 16 (left + right)) (left + right) in
  for u = 0 to left - 1 do
    for v = left to left + right - 1 do
      if Stdx.Prng.bernoulli rng p then B.add_edge b u v
    done
  done;
  B.freeze b

let path n =
  let b = B.create ~capacity:(max 1 (n - 1)) n in
  for i = 0 to n - 2 do
    B.add_edge b i (i + 1)
  done;
  B.freeze b

let cycle n =
  if n < 3 then invalid_arg "Gen.cycle: needs >= 3 vertices";
  let b = B.create ~capacity:n n in
  B.add_edge b (n - 1) 0;
  for i = 0 to n - 2 do
    B.add_edge b i (i + 1)
  done;
  B.freeze b

let complete n =
  let b = B.create ~capacity:(max 1 (n * (n - 1) / 2)) n in
  for u = 0 to n - 2 do
    for v = u + 1 to n - 1 do
      B.add_edge b u v
    done
  done;
  B.freeze b

let star n =
  if n < 1 then invalid_arg "Gen.star";
  let b = B.create ~capacity:(max 1 (n - 1)) n in
  for i = 1 to n - 1 do
    B.add_edge b 0 i
  done;
  B.freeze b

let complete_bipartite a b_count =
  let b = B.create ~capacity:(max 1 (a * b_count)) (a + b_count) in
  for u = 0 to a - 1 do
    for v = a to a + b_count - 1 do
      B.add_edge b u v
    done
  done;
  B.freeze b

let perfect_matching k =
  let b = B.create ~capacity:(max 1 k) (2 * k) in
  for i = 0 to k - 1 do
    B.add_edge b (2 * i) ((2 * i) + 1)
  done;
  B.freeze b

let disjoint_matchings ~sizes =
  let total = 2 * List.fold_left ( + ) 0 sizes in
  let b = B.create ~capacity:(max 1 (total / 2)) total in
  let base = ref 0 in
  List.iter
    (fun size ->
      for i = 0 to size - 1 do
        B.add_edge b (!base + (2 * i)) (!base + (2 * i) + 1)
      done;
      base := !base + (2 * size))
    sizes;
  B.freeze b

let random_regular_ish rng n d =
  if d >= n then invalid_arg "Gen.random_regular_ish: d >= n";
  let target = d * n / 2 in
  let seen = Hashtbl.create (2 * target) in
  let b = B.create ~capacity:(max 16 target) n in
  let count = ref 0 and attempts = ref 0 in
  while !count < target && !attempts < 50 * target do
    incr attempts;
    let u = Stdx.Prng.int rng n and v = Stdx.Prng.int rng n in
    if u <> v then begin
      let e = Graph.normalize_edge u v in
      if not (Hashtbl.mem seen e) then begin
        Hashtbl.replace seen e ();
        B.add_edge b u v;
        incr count
      end
    end
  done;
  B.freeze b

let grid rows cols =
  if rows < 1 || cols < 1 then invalid_arg "Gen.grid";
  let idx i j = (i * cols) + j in
  let b = B.create ~capacity:(2 * rows * cols) (rows * cols) in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      if j + 1 < cols then B.add_edge b (idx i j) (idx i (j + 1));
      if i + 1 < rows then B.add_edge b (idx i j) (idx (i + 1) j)
    done
  done;
  B.freeze b

let configuration_model rng ~degrees =
  let n = Array.length degrees in
  let total = Array.fold_left ( + ) 0 degrees in
  if total mod 2 <> 0 then invalid_arg "Gen.configuration_model: odd degree sum";
  Array.iter (fun d -> if d < 0 then invalid_arg "Gen.configuration_model: negative degree") degrees;
  (* Stubs: one entry per half-edge. *)
  let stubs = Array.make total 0 in
  let pos = ref 0 in
  Array.iteri
    (fun v d ->
      for _ = 1 to d do
        stubs.(!pos) <- v;
        incr pos
      done)
    degrees;
  Stdx.Prng.shuffle rng stubs;
  let b = B.create ~capacity:(max 16 (total / 2)) n in
  let i = ref 0 in
  while !i + 1 < total do
    let u = stubs.(!i) and v = stubs.(!i + 1) in
    if u <> v then B.add_edge b u v;
    i := !i + 2
  done;
  B.freeze b

let power_law_degrees rng ~n ~exponent ~dmax =
  if n < 1 || dmax < 1 || exponent <= 1. then invalid_arg "Gen.power_law_degrees";
  (* Inverse-CDF sampling over the discrete truncated power law. *)
  let weights = Array.init dmax (fun i -> float_of_int (i + 1) ** -.exponent) in
  let total = Array.fold_left ( +. ) 0. weights in
  let draw () =
    let u = Stdx.Prng.float rng *. total in
    let rec go i acc =
      if i >= dmax - 1 then dmax
      else begin
        let acc = acc +. weights.(i) in
        if u < acc then i + 1 else go (i + 1) acc
      end
    in
    go 0 0.
  in
  let degrees = Array.init n (fun _ -> min (n - 1) (draw ())) in
  let sum = Array.fold_left ( + ) 0 degrees in
  if sum mod 2 = 1 then degrees.(0) <- degrees.(0) + if degrees.(0) < n - 1 then 1 else -1;
  degrees

let bridge_of_clouds rng ~half ~p =
  if half < 1 then invalid_arg "Gen.bridge_of_clouds";
  let a = gnp rng half p in
  let b = gnp rng half p in
  let g = Graph.disjoint_union a b in
  let u = Stdx.Prng.int rng half in
  let v = half + Stdx.Prng.int rng half in
  let bridge = Graph.normalize_edge u v in
  (Graph.union g (Graph.of_edge_array (2 * half) [| bridge |]), bridge)

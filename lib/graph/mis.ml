type t = int list

type verdict = { independent : bool; maximal : bool }

let member_set g set =
  let s = Stdx.Bitset.create (Graph.n g) in
  List.iter
    (fun v ->
      if v < 0 || v >= Graph.n g then invalid_arg "Mis: vertex out of range";
      Stdx.Bitset.add s v)
    set;
  s

let is_independent g set =
  let s = member_set g set in
  Graph.fold_edges (fun u v acc -> acc && not (Stdx.Bitset.mem s u && Stdx.Bitset.mem s v)) g true

let dominated g s v =
  Stdx.Bitset.mem s v || Graph.exists_neighbor (fun u -> Stdx.Bitset.mem s u) g v

let is_maximal_given g s =
  let ok = ref true in
  for v = 0 to Graph.n g - 1 do
    if not (dominated g s v) then ok := false
  done;
  !ok

let is_maximal g set =
  let s = member_set g set in
  is_independent g set && is_maximal_given g s

let verify g set =
  let s = member_set g set in
  {
    independent =
      Graph.fold_edges (fun u v acc -> acc && not (Stdx.Bitset.mem s u && Stdx.Bitset.mem s v)) g true;
    maximal = is_maximal_given g s;
  }

let greedy g ?order () =
  let order = match order with Some o -> o | None -> Array.init (Graph.n g) (fun i -> i) in
  let chosen = Stdx.Bitset.create (Graph.n g) in
  let blocked = Stdx.Bitset.create (Graph.n g) in
  let out = ref [] in
  Array.iter
    (fun v ->
      if not (Stdx.Bitset.mem blocked v) then begin
        Stdx.Bitset.add chosen v;
        Stdx.Bitset.add blocked v;
        Graph.iter_neighbors (fun u -> Stdx.Bitset.add blocked u) g v;
        out := v :: !out
      end)
    order;
  List.rev !out

let greedy_prefix g ~order ~prefix =
  let n = Graph.n g in
  if prefix < 0 || prefix > Array.length order then invalid_arg "Mis.greedy_prefix";
  let blocked = Stdx.Bitset.create n in
  let decided = Stdx.Bitset.create n in
  let out = ref [] in
  for i = 0 to prefix - 1 do
    let v = order.(i) in
    if not (Stdx.Bitset.mem blocked v) then begin
      Stdx.Bitset.add blocked v;
      Stdx.Bitset.add decided v;
      Graph.iter_neighbors
        (fun u ->
          Stdx.Bitset.add blocked u;
          Stdx.Bitset.add decided u)
        g v;
      out := v :: !out
    end
  done;
  (List.rev !out, decided)

let luby g rng =
  let n = Graph.n g in
  let alive = Stdx.Bitset.create n in
  for v = 0 to n - 1 do
    Stdx.Bitset.add alive v
  done;
  let chosen = ref [] in
  let round = ref 0 in
  while not (Stdx.Bitset.is_empty alive) do
    incr round;
    if !round > 4 * (n + 2) then failwith "Mis.luby: did not converge";
    (* Each alive vertex draws a random priority; local minima join. *)
    let prio = Array.make n max_int in
    Stdx.Bitset.iter (fun v -> prio.(v) <- Stdx.Prng.int rng (n * n * 4 + 1)) alive;
    let winners =
      Stdx.Bitset.fold
        (fun v acc ->
          let beaten =
            Graph.exists_neighbor
              (fun u ->
                Stdx.Bitset.mem alive u
                && (prio.(u) < prio.(v) || (prio.(u) = prio.(v) && u < v)))
              g v
          in
          if beaten then acc else v :: acc)
        alive []
    in
    List.iter
      (fun v ->
        if Stdx.Bitset.mem alive v then begin
          chosen := v :: !chosen;
          Stdx.Bitset.remove alive v;
          Graph.iter_neighbors (fun u -> if Stdx.Bitset.mem alive u then Stdx.Bitset.remove alive u) g v
        end)
      winners
  done;
  List.rev !chosen

let residual_after g set =
  let s = member_set g set in
  let survivors = ref [] in
  for v = Graph.n g - 1 downto 0 do
    if not (dominated g s v) then survivors := v :: !survivors
  done;
  Graph.induced g !survivors

(** Maximal independent sets: validity, maximality, greedy and Luby's
    algorithm.

    Mirrors the paper's MIS error model: a protocol output can fail by not
    being independent or by not being maximal (dominating) — the two are
    reported separately by {!verify}. *)

type t = int list
(** A (candidate) independent set: a list of vertices. *)

(** The two MIS failure modes, reported separately. *)
type verdict = {
  independent : bool;  (** no graph edge inside the set *)
  maximal : bool;  (** every vertex outside the set has a neighbour inside *)
}

val is_independent : Graph.t -> t -> bool
(** No graph edge has both endpoints in the set. *)

val is_maximal : Graph.t -> t -> bool
(** [is_independent] and the set dominates every other vertex. *)

val verify : Graph.t -> t -> verdict
(** Both checks of {!verdict} in one pass. *)

val greedy : Graph.t -> ?order:int array -> unit -> t
(** Scan vertices in the given order (default [0 .. n-1]), adding each
    vertex with no earlier-chosen neighbour. Always maximal. *)

val greedy_prefix : Graph.t -> order:int array -> prefix:int -> t * Stdx.Bitset.t
(** Run greedy over only the first [prefix] vertices of [order]; returns the
    partial independent set and the set of {e decided} vertices (chosen or
    dominated). This is the round-1 step of the two-round MIS protocol. *)

val luby : Graph.t -> Stdx.Prng.t -> t
(** Luby's classic parallel MIS; returns a maximal independent set. *)

val residual_after : Graph.t -> t -> Graph.t * int array
(** Graph induced on vertices that are neither in the given independent set
    nor adjacent to it, with the back-mapping to original labels. *)

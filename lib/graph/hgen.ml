(* Hypergraph generators, mirroring [Gen] for ordinary graphs. *)

let uniform_random rng ~n ~m ~k =
  if k < 2 || k > n then invalid_arg "Hgen.uniform_random: need 2 <= k <= n";
  let b = Hypergraph.Builder.create ~capacity:(max m 1) n in
  let pins = Array.make k 0 in
  for _ = 1 to m do
    (* Sample k distinct vertices by rejection — k is tiny next to n in
       every workload we generate, so collisions are rare. *)
    let filled = ref 0 in
    while !filled < k do
      let v = Stdx.Prng.int rng n in
      let dup = ref false in
      for j = 0 to !filled - 1 do
        if pins.(j) = v then dup := true
      done;
      if not !dup then begin
        pins.(!filled) <- v;
        incr filled
      end
    done;
    Hypergraph.Builder.add_edge b pins
  done;
  Hypergraph.Builder.freeze b

let random_arity rng ~n ~m ~kmin ~kmax =
  if kmin < 2 || kmax < kmin || kmax > n then invalid_arg "Hgen.random_arity: bad arity range";
  let b = Hypergraph.Builder.create ~capacity:(max m 1) n in
  for _ = 1 to m do
    let k = kmin + Stdx.Prng.int rng (kmax - kmin + 1) in
    let pins = Array.make k 0 in
    let filled = ref 0 in
    while !filled < k do
      let v = Stdx.Prng.int rng n in
      let dup = ref false in
      for j = 0 to !filled - 1 do
        if pins.(j) = v then dup := true
      done;
      if not !dup then begin
        pins.(!filled) <- v;
        incr filled
      end
    done;
    Hypergraph.Builder.add_edge b pins
  done;
  Hypergraph.Builder.freeze b

let blocks ~n ~k =
  if k < 2 then invalid_arg "Hgen.blocks: need k >= 2";
  let b = Hypergraph.Builder.create ~capacity:(max (n / k) 1) n in
  let e = ref 0 in
  while (!e + 1) * k <= n do
    Hypergraph.Builder.add_edge b (Array.init k (fun j -> (!e * k) + j));
    incr e
  done;
  Hypergraph.Builder.freeze b

let sunflower ~petals ~core ~petal =
  if core < 1 || petal < 1 || petals < 1 then invalid_arg "Hgen.sunflower: bad shape";
  let n = core + (petals * petal) in
  let b = Hypergraph.Builder.create ~capacity:petals n in
  for p = 0 to petals - 1 do
    let pins =
      Array.init (core + petal) (fun j ->
          if j < core then j else core + (p * petal) + (j - core))
    in
    Hypergraph.Builder.add_edge b pins
  done;
  Hypergraph.Builder.freeze b

let tight_path ~n ~k =
  if k < 2 || n < k then invalid_arg "Hgen.tight_path: need 2 <= k <= n";
  let b = Hypergraph.Builder.create ~capacity:(n - k + 1) n in
  for s = 0 to n - k do
    Hypergraph.Builder.add_edge b (Array.init k (fun j -> s + j))
  done;
  Hypergraph.Builder.freeze b

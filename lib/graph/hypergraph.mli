(** Hypergraphs on vertex set [\[0, n)] — the second instance of the
    schema-driven incidence store in {!Cset} (DESIGN.md §11).

    A hyperedge is a set of at least two distinct vertices (its {e pins});
    pins are stored sorted, hyperedges are deduplicated at freeze, and
    edge ids [0 .. m-1] enumerate the distinct hyperedges in lexicographic
    pin order. The frozen representation is two CSRs over flat int
    columns: the pins segments (edge → sorted vertex list) and the
    incident-lookup index (vertex → ascending incident edge ids) that the
    store builds because the schema marks the pins morphism [indexed].
    An ordinary graph is exactly the 2-uniform special case —
    {!of_graph} embeds one. *)

type t
(** A frozen hypergraph: immutable once built. *)

(** Mutable hyperedge accumulator: [create] a builder, [add_edge] pin
    arrays in any order — duplicate edges, duplicate pins within an edge
    and unsorted pins are all fine — then [freeze] once. Freezing runs
    the store's lexicographic sort + dedup pipeline under
    [hypergraph.sort] / [.dedup] / [.csr-fill] trace spans. *)
module Builder : sig
  type hypergraph := t

  type t

  val create : ?capacity:int -> int -> t
  (** [create ?capacity n] is an empty builder over vertex set [\[0, n)].
      [capacity] (default 16) pre-sizes the row store. *)

  val n : t -> int
  (** Vertex count the builder was created with. *)

  val length : t -> int
  (** Hyperedges added so far (before deduplication). *)

  val add_edge : t -> int array -> unit
  (** Add one hyperedge given by its pins, in any order; duplicate pins
      collapse. Raises [Invalid_argument] on out-of-range pins or fewer
      than two distinct pins (the self-loop analogue). The array is not
      retained. *)

  val freeze : t -> hypergraph
  (** Sort + dedup into a frozen hypergraph. The builder is consumed:
      using it after [freeze] is unspecified. *)
end

val create : int -> int list list -> t
(** [create n edges] builds a hypergraph from pin lists; see
    {!Builder.add_edge} for normalisation rules. *)

val of_edge_array : int -> int array array -> t
(** [create] without the lists: one builder pass over pin arrays. *)

val of_graph : Graph.t -> t
(** The 2-uniform embedding: one hyperedge [{u, v}] per graph edge. *)

val empty : int -> t
(** [empty n] has [n] vertices and no hyperedges. *)

val n : t -> int
(** Number of vertices. *)

val m : t -> int
(** Number of distinct hyperedges. *)

val arity : t -> int -> int
(** Number of pins of a hyperedge; O(1). *)

val max_arity : t -> int
(** Largest {!arity} over all hyperedges (0 when [m = 0]). *)

val pins : t -> int -> int array
(** Sorted pins of a hyperedge, as a fresh owned copy. Iterate with
    {!iter_pins} / {!fold_pins} (or index with {!pin}) instead when the
    copy is not needed. *)

val pin : t -> int -> int -> int
(** [pin h e j] is the [j]-th (0-based) pin of [e] in sorted order;
    reads the segment row in place. *)

val iter_pins : (int -> unit) -> t -> int -> unit
(** Apply a function to each pin of a hyperedge in sorted order, without
    allocating. *)

val fold_pins : (int -> 'a -> 'a) -> t -> int -> 'a -> 'a
(** Fold over the sorted pins, without allocating. *)

val for_all_pins : (int -> bool) -> t -> int -> bool
(** Short-circuiting for-all over the pins of a hyperedge. *)

val exists_pin : (int -> bool) -> t -> int -> bool
(** Short-circuiting exists over the pins of a hyperedge. *)

val degree : t -> int -> int
(** Number of hyperedges a vertex pins; O(1). *)

val incident : t -> int -> int array
(** Ascending ids of the hyperedges incident to a vertex, as a fresh
    owned copy; iterate with {!iter_incident} / {!fold_incident} when
    the copy is not needed. *)

val iter_incident : (int -> unit) -> t -> int -> unit
(** Apply a function to each incident hyperedge id, ascending, without
    allocating. *)

val fold_incident : (int -> 'a -> 'a) -> t -> int -> 'a -> 'a
(** Fold over the ascending incident hyperedge ids, without allocating. *)

val exists_incident : (int -> bool) -> t -> int -> bool
(** Short-circuiting exists over the incident hyperedge ids. *)

val iter_edges : (int -> unit) -> t -> unit
(** Apply a function to each hyperedge id [0 .. m-1] in order. *)

val find_edge : t -> int array -> int option
(** Id of the hyperedge with exactly the given pins (normalised first),
    by binary search over the lexicographic edge order. *)

val mem_edge : t -> int array -> bool
(** [find_edge <> None]. *)

val equal : t -> t -> bool
(** Same vertex count and same hyperedge set. *)

val cset : t -> Cset.Store.t
(** The underlying frozen incidence store (parts ["vertex"]/["edge"],
    variable indexed morphism ["pins"]); columns are shared, not
    copied. *)

val pp : Format.formatter -> t -> unit
(** Debug printer: vertex count plus the pin sets. *)

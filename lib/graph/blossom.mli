(** Maximum matching in general graphs (Edmonds' blossom algorithm).

    The exact oracle behind the approximate-matching experiments: the
    quality of a budget-limited sketching protocol's output is its size
    relative to this maximum. [O(n^3)]; fine for the experiment sizes. *)

val maximum_matching : Graph.t -> Matching.t
(** A maximum-cardinality matching. *)

val maximum_matching_size : Graph.t -> int
(** [List.length (maximum_matching g)], without materialising the list
    twice. *)

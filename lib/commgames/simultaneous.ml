type structure = { players : int; coordinates : int; view : int -> int list }

type sharing = Nih | Shared of int | Nof

let multiplicity s =
  let counts = Array.make s.coordinates 0 in
  for i = 0 to s.players - 1 do
    List.iter
      (fun c ->
        if c < 0 || c >= s.coordinates then invalid_arg "Simultaneous: view out of range";
        counts.(c) <- counts.(c) + 1)
      (s.view i)
  done;
  counts

let classify s =
  let counts = multiplicity s in
  let max_mult = Array.fold_left max 0 counts in
  if max_mult <= 1 then Nih
  else if s.players >= 3 && Array.for_all (fun c -> c = s.players - 1) counts then Nof
  else Shared max_mult

let nih_example ~players ~per_player =
  {
    players;
    coordinates = players * per_player;
    view = (fun i -> List.init per_player (fun j -> (i * per_player) + j));
  }

let nof_example ~players ~block =
  {
    players;
    coordinates = players * block;
    view =
      (fun i ->
        List.concat
          (List.init players (fun owner ->
               if owner = i then []
               else List.init block (fun j -> (owner * block) + j))));
  }

(* Edge slot (u, v), u < v, gets index u*n + v - (u+1)*(u+2)/2 ... simpler:
   enumerate pairs lexicographically. *)
let slot ~n u v =
  let u, v = (min u v, max u v) in
  (* Number of pairs before row u: u*n - u*(u+1)/2; offset in row: v-u-1. *)
  (u * n) - (u * (u + 1) / 2) + (v - u - 1)

let of_vertex_partition ~n =
  {
    players = n;
    coordinates = n * (n - 1) / 2;
    view =
      (fun v ->
        List.init n (fun u -> u)
        |> List.filter (fun u -> u <> v)
        |> List.map (fun u -> slot ~n u v)
        |> List.sort compare);
  }

type 'a protocol = {
  name : string;
  player : int -> bool array -> Sketchmodel.Public_coins.t -> Stdx.Bitbuf.Writer.t;
  referee : sketches:Stdx.Bitbuf.Reader.t array -> Sketchmodel.Public_coins.t -> 'a;
}

let run s protocol ~input coins =
  if Array.length input <> s.coordinates then invalid_arg "Simultaneous.run: input length";
  let writers =
    Array.init s.players (fun i ->
        let visible = Array.of_list (List.map (fun c -> input.(c)) (s.view i)) in
        protocol.player i visible coins)
  in
  let sizes = Array.map Stdx.Bitbuf.Writer.length_bits writers in
  let sketches = Array.map Stdx.Bitbuf.Reader.of_writer writers in
  let out = protocol.referee ~sketches coins in
  let total = Array.fold_left ( + ) 0 sizes in
  ( out,
    {
      Sketchmodel.Model.max_bits = Array.fold_left max 0 sizes;
      total_bits = total;
      avg_bits = float_of_int total /. float_of_int s.players;
      players = s.players;
    } )

let equality_structure ~bits =
  {
    players = 2;
    coordinates = 2 * bits;
    view = (fun i -> List.init bits (fun c -> (i * bits) + c));
  }

let equality_two_party ~bits ~reps =
  ignore bits;
  {
    name = "public-coin-equality";
    player =
      (fun _i visible coins ->
        let w = Stdx.Bitbuf.Writer.create () in
        for rep = 0 to reps - 1 do
          let rng = Sketchmodel.Public_coins.keyed coins "eq-mask" rep in
          let dot = ref false in
          Array.iter
            (fun b ->
              let masked = Stdx.Prng.bool rng in
              if masked && b then dot := not !dot)
            visible;
          Stdx.Bitbuf.Writer.bit w !dot
        done;
        w);
    referee =
      (fun ~sketches _coins ->
        match sketches with
        | [| a; b |] ->
            let ok = ref true in
            for _ = 1 to reps do
              if Stdx.Bitbuf.Reader.bit a <> Stdx.Bitbuf.Reader.bit b then ok := false
            done;
            !ok
        | _ -> invalid_arg "equality: two players expected");
  }

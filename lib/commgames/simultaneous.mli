(** Simultaneous-message multiparty communication games with {e shared}
    inputs — the abstraction Section 2.1 places the paper's model in.

    A game over a coordinate universe assigns each player a subset of the
    coordinates (its {e view}). The two classical extremes:
    - number-in-hand (NIH): the view sets are pairwise disjoint;
    - number-on-forehead (NOF): player [i] sees every coordinate except
      its own block.

    The paper's model sits strictly between: the coordinates are edge
    slots and every slot lies in {e exactly two} players' views (each edge
    is seen by both endpoints). {!classify} computes where on this
    spectrum a game sits; {!of_vertex_partition} builds the sketching
    model's game for a given [n] and lets the tests verify the "between
    NIH and NOF" claim structurally rather than rhetorically. *)

type structure = {
  players : int;
  coordinates : int;
  view : int -> int list;  (** sorted coordinate indices player [i] sees *)
}

type sharing =
  | Nih  (** every coordinate in at most one view *)
  | Shared of int  (** maximum multiplicity, [>= 2], but not NOF *)
  | Nof  (** every coordinate seen by exactly [players - 1] players *)

val classify : structure -> sharing

val multiplicity : structure -> int array
(** [multiplicity s] counts, per coordinate, how many players see it. *)

val nih_example : players:int -> per_player:int -> structure
val nof_example : players:int -> block:int -> structure

val of_vertex_partition : n:int -> structure
(** The paper's model as a game: coordinates are the [n(n-1)/2] potential
    edge slots; player [v] sees exactly the slots incident to [v]. *)

(** {1 Simultaneous protocols over boolean inputs}

    A protocol sends one message per player (a function of the player's
    visible coordinates and public coins); the referee combines them.
    Costs are exact bit counts, as everywhere in this repository. *)

type 'a protocol = {
  name : string;
  player :
    int -> bool array -> Sketchmodel.Public_coins.t -> Stdx.Bitbuf.Writer.t;
      (** [player i visible coins]: [visible] lists the values of player
          [i]'s coordinates, in [view i] order. *)
  referee :
    sketches:Stdx.Bitbuf.Reader.t array -> Sketchmodel.Public_coins.t -> 'a;
}

val run :
  structure ->
  'a protocol ->
  input:bool array ->
  Sketchmodel.Public_coins.t ->
  'a * Sketchmodel.Model.stats

val equality_two_party : bits:int -> reps:int -> bool protocol
(** The classic public-coin simultaneous EQUALITY protocol on the 2-player
    NIH game of {!equality_structure}: each player sends [reps] one-bit
    random inner products of its own [bits]-bit string with shared masks;
    the referee accepts iff all pairs agree. One-sided error [2^{-reps}]
    on unequal inputs, zero error on equal ones — the textbook example of
    public coins making a simultaneous game easy, mirroring how public
    coins power every sketch in this repository. *)

val equality_structure : bits:int -> structure
(** The NIH board: [2·bits] coordinates, player 0 sees the first block
    (its string [x]), player 1 the second ([y]). *)

(* Chrome trace_event exporter for Stdx.Trace.

   Renders a dumped event list as the Chrome/Perfetto "JSON Object
   Format": {"traceEvents":[...],"displayTimeUnit":"ms","otherData":...}.
   Events become Complete ("X"), Instant ("i") or Counter ("C") records;
   timestamps/durations are microseconds, the unit the format mandates.
   Rendering goes through Tabular's [json] type and [string_of_json], so
   the output obeys the repo-wide canonical JSON contract (field order,
   escaping, float_repr) and round-trips through [Tabular.json_of_string]
   — which is what `jsoncheck` and the qcheck re-parse test rely on.

   The whole trace is one JSON object written as a single line, so a
   trace file is simultaneously valid JSON-lines (jsoncheck-able) and
   directly loadable in https://ui.perfetto.dev / chrome://tracing. *)

open Tabular

let json_of_arg = function
  | Stdx.Trace.Int i -> Jint i
  | Stdx.Trace.Float f -> Jfloat f
  | Stdx.Trace.Str s -> Jstr s
  | Stdx.Trace.Bool b -> Jbool b

let phase_string = function
  | Stdx.Trace.Complete -> "X"
  | Stdx.Trace.Instant -> "i"
  | Stdx.Trace.Counter -> "C"

(* One trace_event record. Field presence follows the format spec:
   Complete events carry "dur"; Instant events carry scope "s":"t"
   (thread-scoped); Counter values ride in "args". All events share
   pid 1 — there is one process; tid is the recording domain. *)
let json_of_event (e : Stdx.Trace.event) =
  let base =
    [
      ("name", Jstr e.name);
      ("cat", Jstr e.cat);
      ("ph", Jstr (phase_string e.ph));
      ("ts", Jfloat e.ts_us);
    ]
  in
  let dur = match e.ph with Stdx.Trace.Complete -> [ ("dur", Jfloat e.dur_us) ] | _ -> [] in
  let scope = match e.ph with Stdx.Trace.Instant -> [ ("s", Jstr "t") ] | _ -> [] in
  let ids = [ ("pid", Jint 1); ("tid", Jint e.tid) ] in
  let args =
    match e.args with
    | [] -> []
    | l -> [ ("args", Jobj (List.map (fun (k, v) -> (k, json_of_arg v)) l)) ]
  in
  Jobj (base @ dur @ scope @ ids @ args)

let json_of_events ?(dropped = 0) events =
  Jobj
    [
      ("traceEvents", Jarr (List.map json_of_event events));
      ("displayTimeUnit", Jstr "ms");
      ( "otherData",
        Jobj
          [
            ("producer", Jstr ("sketchlb " ^ Stdx.Version.current));
            ("droppedEvents", Jint dropped);
          ] );
    ]

let to_string ?dropped events = string_of_json (json_of_events ?dropped events)

(* Single line + trailing newline: valid JSON-lines for jsoncheck, valid
   JSON object for Perfetto. *)
let write_channel ?dropped oc events =
  output_string oc (to_string ?dropped events);
  output_char oc '\n'

(* Sum of Complete-span durations by name, in seconds, within the
   [since, until] window (ts_us clock) — bench's per-phase breakdown.
   A span belongs to the window iff it *started* inside it. *)
let phase_totals ?(since = neg_infinity) ?(until = infinity) events =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun (e : Stdx.Trace.event) ->
      if e.ph = Stdx.Trace.Complete && e.ts_us >= since && e.ts_us <= until then begin
        if not (Hashtbl.mem tbl e.name) then order := e.name :: !order;
        Hashtbl.replace tbl e.name
          (e.dur_us +. try Hashtbl.find tbl e.name with Not_found -> 0.)
      end)
    events;
  List.rev_map (fun name -> (name, Hashtbl.find tbl name /. 1e6)) !order

(* The CLI entry point: [with_file (Some path) f] enables tracing, runs
   [f], and writes the merged trace to [path] even if [f] raises — a
   crashed run still leaves an inspectable trace. [with_file None f] is
   just [f ()]. Tracing state is left enabled so callers composing
   several phases (bench) keep recording. *)
let with_file out f =
  match out with
  | None -> f ()
  | Some path ->
      Stdx.Trace.enable ();
      let write () =
        let events = Stdx.Trace.dump () in
        let dropped = (Stdx.Trace.stats ()).Stdx.Trace.dropped in
        let oc = open_out path in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () -> write_channel ~dropped oc events)
      in
      (match f () with
      | v ->
          write ();
          v
      | exception e ->
          let bt = Printexc.get_raw_backtrace () in
          (try write () with _ -> ());
          Printexc.raise_with_backtrace e bt)

(* Typed tabular reporting: one schema, three renderers.

   A [table] is a column schema plus value rows (with optional free-form
   preamble/footer lines that only the text renderer shows). The text
   renderer reproduces the classic [Printf]-aligned terminal tables
   byte-for-byte; the CSV and JSON-lines renderers emit machine-readable
   output for the same rows, including columns marked [~text:false] that
   the terminal view omits (per-row context such as instance parameters).

   A minimal JSON-lines parser lives here too, so round-trip tests and
   CI smoke checks need no external JSON dependency. *)

type format = Text | Csv | Json

exception Type_error of string

(* ------------------------------------------------------------------ *)
(* Schema                                                              *)

type typ =
  | TInt
  | TFloat of { digits : int; sci : bool }
  | TBool
  | TStr
  | TOpt of { some : typ; none : string }
      (* [none] is the text placeholder, e.g. "-" or ">max tested" *)

type col = {
  name : string;  (* machine key: CSV header cell, JSON object key *)
  header : string;  (* text-renderer column header (display form) *)
  width : int;  (* text-renderer minimum cell width *)
  left : bool;  (* left-align in text (Printf's "%-*s") *)
  text : bool;  (* shown by the text renderer at all *)
  typ : typ;
}

let make_col ?header ?(left = false) ?(text = true) ~width name typ =
  { name; header = Option.value header ~default:name; width; left; text; typ }

let int_col ?header ?left ?text ~width name = make_col ?header ?left ?text ~width name TInt

let float_col ?header ?left ?text ?(sci = false) ~width ~digits name =
  make_col ?header ?left ?text ~width name (TFloat { digits; sci })

let bool_col ?header ?left ?text ~width name = make_col ?header ?left ?text ~width name TBool
let str_col ?header ?left ?text ~width name = make_col ?header ?left ?text ~width name TStr
let opt_col ?(none = "-") c = { c with typ = TOpt { some = c.typ; none } }

(* ------------------------------------------------------------------ *)
(* Values and tables                                                   *)

type value = Int of int | Float of float | Bool of bool | Str of string | Opt of value option
type row = value list

type table = {
  schema : col list;
  rows : row list;
  preamble : string list;  (* text-only lines before the header *)
  footer : string list;  (* text-only lines after the rows *)
}

let table ?(preamble = []) ?(footer = []) schema rows = { schema; rows; preamble; footer }

let rec type_matches typ v =
  match (typ, v) with
  | TInt, Int _ | TFloat _, Float _ | TBool, Bool _ | TStr, Str _ -> true
  | TOpt _, Opt None -> true
  | TOpt { some; _ }, Opt (Some v) -> type_matches some v
  | (TInt | TFloat _ | TBool | TStr | TOpt _), _ -> false

(* Raises [Type_error] on the first row whose arity or cell types do not
   match the schema; the registry test validates every experiment with it. *)
let validate t =
  List.iteri
    (fun i row ->
      if List.length row <> List.length t.schema then
        raise
          (Type_error
             (Printf.sprintf "row %d: %d cells for %d columns" i (List.length row)
                (List.length t.schema)));
      List.iter2
        (fun c v ->
          if not (type_matches c.typ v) then
            raise (Type_error (Printf.sprintf "row %d, column %s: type mismatch" i c.name)))
        t.schema row)
    t.rows

(* ------------------------------------------------------------------ *)
(* Text renderer                                                       *)

let pad ~left ~width s =
  let n = String.length s in
  if n >= width then s
  else if left then s ^ String.make (width - n) ' '
  else String.make (width - n) ' ' ^ s

(* Exactly the strings the old Printf formats produced: "%d", "%.*f",
   "%.*e", "%b", "%s" — padding is applied separately so every cell type
   supports dynamic widths. *)
let rec raw_text typ v =
  match (typ, v) with
  | TInt, Int i -> string_of_int i
  | TFloat { digits; sci = false }, Float f -> Printf.sprintf "%.*f" digits f
  | TFloat { digits; sci = true }, Float f -> Printf.sprintf "%.*e" digits f
  | TBool, Bool b -> string_of_bool b
  | TStr, Str s -> s
  | TOpt { none; _ }, Opt None -> none
  | TOpt { some; _ }, Opt (Some v) -> raw_text some v
  | _ -> raise (Type_error "cell does not match its column type")

let text_line cols cells =
  String.concat " "
    (List.map2 (fun c s -> pad ~left:c.left ~width:c.width s) cols cells)
  ^ "\n"

let to_text t =
  let buf = Buffer.create 1024 in
  List.iter
    (fun l ->
      Buffer.add_string buf l;
      Buffer.add_char buf '\n')
    t.preamble;
  let cols = List.filter (fun c -> c.text) t.schema in
  if cols <> [] then begin
    Buffer.add_string buf (text_line cols (List.map (fun c -> c.header) cols));
    List.iter
      (fun row ->
        let cells =
          List.filter_map
            (fun (c, v) -> if c.text then Some (raw_text c.typ v) else None)
            (List.combine t.schema row)
        in
        Buffer.add_string buf (text_line cols cells))
      t.rows
  end;
  List.iter
    (fun l ->
      Buffer.add_string buf l;
      Buffer.add_char buf '\n')
    t.footer;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Machine-readable float representation                               *)

(* Shortest decimal form that parses back to the same float; forced to
   contain '.' or 'e' so a reader never mistakes it for an integer. *)
let float_repr f =
  let s = Printf.sprintf "%.15g" f in
  let s = if float_of_string s = f then s else Printf.sprintf "%.17g" f in
  if String.exists (fun c -> c = '.' || c = 'e' || c = 'E' || c = 'n' || c = 'i') s then s
  else s ^ ".0"

(* ------------------------------------------------------------------ *)
(* CSV renderer                                                        *)

let csv_escape s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s then begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else s

let rec raw_csv typ v =
  match (typ, v) with
  | TInt, Int i -> string_of_int i
  | TFloat _, Float f -> float_repr f
  | TBool, Bool b -> string_of_bool b
  | TStr, Str s -> csv_escape s
  | TOpt _, Opt None -> ""
  | TOpt { some; _ }, Opt (Some v) -> raw_csv some v
  | _ -> raise (Type_error "cell does not match its column type")

let to_csv ?comment t =
  let buf = Buffer.create 1024 in
  (match comment with
  | Some c -> Buffer.add_string buf ("# " ^ c ^ "\n")
  | None -> ());
  Buffer.add_string buf (String.concat "," (List.map (fun c -> csv_escape c.name) t.schema));
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf
        (String.concat "," (List.map2 (fun c v -> raw_csv c.typ v) t.schema row));
      Buffer.add_char buf '\n')
    t.rows;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* JSON-lines renderer                                                 *)

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec json_of_value typ v =
  match (typ, v) with
  | TInt, Int i -> string_of_int i
  | TFloat _, Float f -> if Float.is_finite f then float_repr f else "null"
  | TBool, Bool b -> string_of_bool b
  | TStr, Str s -> "\"" ^ json_escape s ^ "\""
  | TOpt _, Opt None -> "null"
  | TOpt { some; _ }, Opt (Some v) -> json_of_value some v
  | _ -> raise (Type_error "cell does not match its column type")

(* One flat JSON object per row; [tag] prepends a constant field, used by
   multi-experiment sinks to stamp each row with its experiment id. *)
let json_of_row ?tag schema row =
  let fields = List.map2 (fun c v -> (c.name, json_of_value c.typ v)) schema row in
  let fields =
    match tag with Some (k, v) -> (k, "\"" ^ json_escape v ^ "\"") :: fields | None -> fields
  in
  "{" ^ String.concat "," (List.map (fun (k, v) -> "\"" ^ json_escape k ^ "\":" ^ v) fields) ^ "}"

let to_json_lines ?tag t =
  String.concat "" (List.map (fun row -> json_of_row ?tag t.schema row ^ "\n") t.rows)

(* ------------------------------------------------------------------ *)
(* Sink                                                                *)

let emit ?tag ~format ~out t =
  let s =
    match format with
    | Text -> to_text t
    | Csv -> to_csv ?comment:(Option.map (fun (k, v) -> k ^ ": " ^ v) tag) t
    | Json -> to_json_lines ?tag t
  in
  output_string out s

(* ------------------------------------------------------------------ *)
(* JSON-lines parser (for round-trip tests and CI smoke checks)        *)

type json =
  | Jnull
  | Jbool of bool
  | Jint of int
  | Jfloat of float
  | Jstr of string
  | Jarr of json list
  | Jobj of (string * json) list

exception Parse_error of string

(* Serialise a [json] value back to canonical text: object fields in list
   order, no whitespace, strings through [json_escape], floats through
   [float_repr] (non-finite becomes [null] — JSON has no representation).
   Together with [json_of_string] below this is the daemon's wire codec, so
   [test_report] fuzzes the round-trip [json_of_string (string_of_json j) = j]. *)
let rec string_of_json j =
  match j with
  | Jnull -> "null"
  | Jbool b -> string_of_bool b
  | Jint i -> string_of_int i
  | Jfloat f -> if Float.is_finite f then float_repr f else "null"
  | Jstr s -> "\"" ^ json_escape s ^ "\""
  | Jarr l -> "[" ^ String.concat "," (List.map string_of_json l) ^ "]"
  | Jobj fields ->
      "{"
      ^ String.concat ","
          (List.map (fun (k, v) -> "\"" ^ json_escape k ^ "\":" ^ string_of_json v) fields)
      ^ "}"

(* Object-field accessor for consumers of parsed JSON (the daemon's request
   decoder, the CI validator): [None] on a missing key or a non-object. *)
let member key = function Jobj fields -> List.assoc_opt key fields | _ -> None

let json_of_string s =
  let pos = ref 0 in
  let len = String.length s in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < len then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal lit v =
    let n = String.length lit in
    if !pos + n <= len && String.sub s !pos n = lit then begin
      pos := !pos + n;
      v
    end
    else fail (Printf.sprintf "expected '%s'" lit)
  in
  let utf8_add buf code =
    if code < 0x80 then Buffer.add_char buf (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some '"' -> advance (); Buffer.add_char buf '"'; loop ()
          | Some '\\' -> advance (); Buffer.add_char buf '\\'; loop ()
          | Some '/' -> advance (); Buffer.add_char buf '/'; loop ()
          | Some 'b' -> advance (); Buffer.add_char buf '\b'; loop ()
          | Some 'f' -> advance (); Buffer.add_char buf '\012'; loop ()
          | Some 'n' -> advance (); Buffer.add_char buf '\n'; loop ()
          | Some 'r' -> advance (); Buffer.add_char buf '\r'; loop ()
          | Some 't' -> advance (); Buffer.add_char buf '\t'; loop ()
          | Some 'u' ->
              advance ();
              if !pos + 4 > len then fail "truncated \\u escape";
              let hex = String.sub s !pos 4 in
              pos := !pos + 4;
              (match int_of_string_opt ("0x" ^ hex) with
              | Some code -> utf8_add buf code
              | None -> fail "bad \\u escape");
              loop ()
          | _ -> fail "bad escape")
      | Some c ->
          advance ();
          Buffer.add_char buf c;
          loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while (match peek () with Some c when is_num_char c -> true | _ -> false) do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    match int_of_string_opt tok with
    | Some i -> Jint i
    | None -> (
        match float_of_string_opt tok with
        | Some f -> Jfloat f
        | None -> fail (Printf.sprintf "bad number '%s'" tok))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Jobj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((k, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Jobj (members [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Jarr []
        end
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          Jarr (elements [])
        end
    | Some '"' -> Jstr (parse_string ())
    | Some 't' -> literal "true" (Jbool true)
    | Some 'f' -> literal "false" (Jbool false)
    | Some 'n' -> literal "null" Jnull
    | Some _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> len then fail "trailing garbage";
  v

(* Parse a JSON-lines buffer: one value per non-empty line. *)
let json_lines_of_string s =
  String.split_on_char '\n' s
  |> List.filter (fun l -> String.trim l <> "")
  |> List.map json_of_string

(* Map a parsed JSON object back onto a schema — the round-trip contract:
   [row_of_json schema (json_of_string (json_of_row schema row)) = row].
   Unknown keys (e.g. an "experiment" tag) are ignored; missing keys fail. *)
let row_of_json schema j =
  let fields = match j with Jobj f -> f | _ -> raise (Parse_error "expected a JSON object") in
  let rec value_of typ j =
    match (typ, j) with
    | TInt, Jint i -> Int i
    | TFloat _, Jfloat f -> Float f
    | TFloat _, Jint i -> Float (float_of_int i)
    | TBool, Jbool b -> Bool b
    | TStr, Jstr s -> Str s
    | TOpt _, Jnull -> Opt None
    | TOpt { some; _ }, j -> Opt (Some (value_of some j))
    | _ -> raise (Parse_error "JSON value does not match schema type")
  in
  List.map
    (fun c ->
      match List.assoc_opt c.name fields with
      | Some j -> value_of c.typ j
      | None -> raise (Parse_error (Printf.sprintf "missing key '%s'" c.name)))
    schema

(** Public coins: the shared random string of the model (Section 2.1).

    Players and the referee hold the same seed and re-derive any part of the
    shared randomness by key, so "sharing randomness" costs zero
    communication — exactly the public-coin assumption of the paper. Keys
    are strings (a protocol-chosen label) plus an optional integer (vertex
    id, round number, repetition index, ...). *)

type t

val create : int -> t
(** From a master seed. *)

val seed : t -> int

val global : t -> string -> Stdx.Prng.t
(** A stream every participant can derive, keyed by label. Repeated calls
    with the same label restart the same stream. *)

val keyed : t -> string -> int -> Stdx.Prng.t
(** [keyed coins label i]: an independent stream per (label, index) — e.g.
    per-vertex coins, per-repetition hash functions. *)

val derive : t -> string -> int -> t
(** A whole derived coin space (not just one stream), keyed by
    (label, index); used when a protocol stacks several independent
    instances of a sub-protocol (e.g. [k] forest sketches). Every
    participant derives the same sub-coins for free. *)

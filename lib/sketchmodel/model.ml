module Graph = Dgraph.Graph

type view = { n : int; vertex : int; neighbors : int array }

let views g = Array.init (Graph.n g) (fun v -> { n = Graph.n g; vertex = v; neighbors = Graph.neighbors g v })

type 'a protocol = {
  name : string;
  player : view -> Public_coins.t -> Stdx.Bitbuf.Writer.t;
  referee : n:int -> sketches:Stdx.Bitbuf.Reader.t array -> Public_coins.t -> 'a;
}

type stats = { max_bits : int; total_bits : int; avg_bits : float; players : int }

(* [schedule] is the order player sketches are computed in; sketch slots are
   always indexed by player, so the referee's input — and therefore output
   and stats — cannot depend on it. This is the contract that lets the
   experiment suite compute trials (and their inner Model.run calls) on any
   domain in any order; test_sketchmodel pins it with shuffled schedules. *)
let run_views ?schedule protocol ~n player_views coins =
  let players = Array.length player_views in
  let schedule =
    match schedule with
    | None -> Array.init players (fun i -> i)
    | Some order ->
        let sorted = Array.copy order in
        Array.sort compare sorted;
        if sorted <> Array.init players (fun i -> i) then
          invalid_arg "Model.run_views: schedule is not a permutation of the players";
        order
  in
  let slots = Array.make players None in
  Array.iter (fun p -> slots.(p) <- Some (protocol.player player_views.(p) coins)) schedule;
  let writers = Array.map (function Some w -> w | None -> assert false) slots in
  let sizes = Array.map Stdx.Bitbuf.Writer.length_bits writers in
  let total_bits = Array.fold_left ( + ) 0 sizes in
  let max_bits = Array.fold_left max 0 sizes in
  let sketches = Array.map Stdx.Bitbuf.Reader.of_writer writers in
  let output = protocol.referee ~n ~sketches coins in
  let players = Array.length player_views in
  ( output,
    {
      max_bits;
      total_bits;
      avg_bits = (if players = 0 then 0. else float_of_int total_bits /. float_of_int players);
      players;
    } )

let run protocol g coins = run_views protocol ~n:(Graph.n g) (views g) coins

let success_rate ~trials ~seed experiment =
  if trials <= 0 then invalid_arg "Model.success_rate";
  let successes = ref 0 in
  for trial = 0 to trials - 1 do
    let coins = Public_coins.create (Stdx.Hashing.mix64 (seed + (trial * 7919))) in
    if experiment coins then incr successes
  done;
  float_of_int !successes /. float_of_int trials

let pp_stats ppf s =
  Format.fprintf ppf "players=%d max=%d bits avg=%.1f bits total=%d bits" s.players s.max_bits
    s.avg_bits s.total_bits

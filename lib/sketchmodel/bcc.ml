(* The history is deliberately *not* a materialised list of reader
   arrays: building fresh readers of every prior round for every
   consumer made [run] O(n²·rounds²) in byte copies — the dominant
   allocation of the whole bench suite. Instead a history is a handle
   that mints fresh readers for one round on demand; consumers that
   replay incrementally (e.g. Bcc_mm) touch only the newest round. *)

type history = { upto : int; fresh : int -> Stdx.Bitbuf.Reader.t array }

let rounds_so_far h = h.upto

let round_readers h round =
  if round < 1 || round > h.upto then invalid_arg "Bcc.round_readers: round out of range";
  h.fresh round

type 'a protocol = {
  name : string;
  rounds : int;
  broadcast :
    round:int -> Model.view -> history -> Public_coins.t -> Stdx.Bitbuf.Writer.t;
  output : n:int -> history -> Public_coins.t -> 'a;
}

type stats = { max_bits_per_round : int; max_bits_total : int; rounds_used : int }

let run protocol g coins =
  if protocol.rounds < 1 then invalid_arg "Bcc.run: rounds";
  let n = Dgraph.Graph.n g in
  let views = Model.views g in
  let stored = Array.make protocol.rounds [||] in
  (* Fresh readers for every consumer: broadcast messages are public, but
     each recipient parses its own copy — [fresh] mints a new reader
     array per call, so no two consumers share cursor state. *)
  let history upto =
    { upto; fresh = (fun round -> Array.map Stdx.Bitbuf.Reader.of_writer stored.(round - 1)) }
  in
  let per_round_max = ref 0 in
  let per_vertex_total = Array.make n 0 in
  for round = 1 to protocol.rounds do
    let h = history (round - 1) in
    let writers = Array.map (fun view -> protocol.broadcast ~round view h coins) views in
    let sizes = Array.map Stdx.Bitbuf.Writer.length_bits writers in
    per_round_max := max !per_round_max (Array.fold_left max 0 sizes);
    Array.iteri (fun v s -> per_vertex_total.(v) <- per_vertex_total.(v) + s) sizes;
    stored.(round - 1) <- writers
  done;
  let output = protocol.output ~n (history protocol.rounds) coins in
  ( output,
    {
      max_bits_per_round = !per_round_max;
      max_bits_total = Array.fold_left max 0 per_vertex_total;
      rounds_used = protocol.rounds;
    } )

let of_sketch (p : 'a Model.protocol) =
  {
    name = p.Model.name ^ "@bcc";
    rounds = 1;
    broadcast = (fun ~round view history coins ->
        ignore round;
        ignore history;
        p.Model.player view coins);
    output =
      (fun ~n history coins ->
        if rounds_so_far history <> 1 then
          invalid_arg "Bcc.of_sketch: expected exactly one round of history";
        p.Model.referee ~n ~sketches:(round_readers history 1) coins);
  }

let to_sketch (p : 'a protocol) =
  if p.rounds <> 1 then invalid_arg "Bcc.to_sketch: protocol uses more than one round";
  let empty = { upto = 0; fresh = (fun _ -> [||]) } in
  {
    Model.name = p.name ^ "@sketch";
    player = (fun view coins -> p.broadcast ~round:1 view empty coins);
    (* The referee's readers pass through as round 1 (not re-minted:
       sketching hands each consumer its readers exactly once). *)
    referee = (fun ~n ~sketches coins -> p.output ~n { upto = 1; fresh = (fun _ -> sketches) } coins);
  }

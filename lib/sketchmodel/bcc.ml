type history = Stdx.Bitbuf.Reader.t array list

type 'a protocol = {
  name : string;
  rounds : int;
  broadcast :
    round:int -> Model.view -> history -> Public_coins.t -> Stdx.Bitbuf.Writer.t;
  output : n:int -> history -> Public_coins.t -> 'a;
}

type stats = { max_bits_per_round : int; max_bits_total : int; rounds_used : int }

let run protocol g coins =
  if protocol.rounds < 1 then invalid_arg "Bcc.run: rounds";
  let n = Dgraph.Graph.n g in
  let views = Model.views g in
  let stored : Stdx.Bitbuf.Writer.t array list ref = ref [] in
  (* Fresh readers for every consumer: broadcast messages are public, but
     each recipient parses its own copy. *)
  let fresh_history () =
    List.map (fun writers -> Array.map Stdx.Bitbuf.Reader.of_writer writers) !stored
  in
  let per_round_max = ref 0 in
  let per_vertex_total = Array.make n 0 in
  for round = 1 to protocol.rounds do
    let writers =
      Array.map (fun view -> protocol.broadcast ~round view (fresh_history ()) coins) views
    in
    let sizes = Array.map Stdx.Bitbuf.Writer.length_bits writers in
    per_round_max := max !per_round_max (Array.fold_left max 0 sizes);
    Array.iteri (fun v s -> per_vertex_total.(v) <- per_vertex_total.(v) + s) sizes;
    stored := !stored @ [ writers ]
  done;
  let output = protocol.output ~n (fresh_history ()) coins in
  ( output,
    {
      max_bits_per_round = !per_round_max;
      max_bits_total = Array.fold_left max 0 per_vertex_total;
      rounds_used = protocol.rounds;
    } )

let of_sketch (p : 'a Model.protocol) =
  {
    name = p.Model.name ^ "@bcc";
    rounds = 1;
    broadcast = (fun ~round view history coins ->
        ignore round;
        ignore history;
        p.Model.player view coins);
    output =
      (fun ~n history coins ->
        match history with
        | [ sketches ] -> p.Model.referee ~n ~sketches coins
        | _ -> invalid_arg "Bcc.of_sketch: expected exactly one round of history");
  }

let to_sketch (p : 'a protocol) =
  if p.rounds <> 1 then invalid_arg "Bcc.to_sketch: protocol uses more than one round";
  {
    Model.name = p.name ^ "@sketch";
    player = (fun view coins -> p.broadcast ~round:1 view [] coins);
    referee = (fun ~n ~sketches coins -> p.output ~n [ sketches ] coins);
  }

(** The two-round adaptive extension of the model (Section 1.1's
    [O(√n)] upper-bound discussion).

    After the first simultaneous round the referee may broadcast one message
    to all players, who then send a second sketch. The broadcast must be
    serialisable — its bit size is accounted separately — and players only
    see the {e decoded} broadcast, never the referee's state.

    The per-player cost of a two-round protocol is the worst case of
    (round-1 bits + round-2 bits) over players; the broadcast size is
    reported on the side, matching how the congested-clique literature
    charges the referee. *)

type ('b, 'a) protocol = {
  name : string;
  round1 : Model.view -> Public_coins.t -> Stdx.Bitbuf.Writer.t;
  decide :
    n:int -> sketches:Stdx.Bitbuf.Reader.t array -> Public_coins.t -> 'b;
      (** Referee state after round 1, to be broadcast. *)
  encode_broadcast : 'b -> Stdx.Bitbuf.Writer.t;
      (** How the broadcast would be serialised; only its length is used. *)
  round2 : Model.view -> 'b -> Public_coins.t -> Stdx.Bitbuf.Writer.t;
  finish :
    n:int -> broadcast:'b -> sketches:Stdx.Bitbuf.Reader.t array -> Public_coins.t -> 'a;
}

type stats = {
  max_bits : int;  (** worst-case per-player total over both rounds *)
  round1_max : int;
  round2_max : int;
  broadcast_bits : int;
  total_bits : int;
}

val run : ('b, 'a) protocol -> Dgraph.Graph.t -> Public_coins.t -> 'a * stats
(** Run both rounds and account every bit. Each round is wrapped in a
    [protocol.round] trace span (args [round], [protocol]) so traces show
    the round boundary; tracing never changes the output or the stats. *)

val pp_stats : Format.formatter -> stats -> unit

type t = { seed : int }

let create seed = { seed }

let seed c = c.seed

(* Stable 62-bit string hash (FNV-1a folded through the SplitMix mixer);
   Hashtbl.hash only keeps 30 bits and is version-dependent, so roll our
   own to keep runs reproducible across OCaml releases. *)
let string_key label =
  let h = ref 0x3bf29ce484222325 in
  String.iter (fun c -> h := (!h lxor Char.code c) * 0x100000001b3) label;
  Stdx.Hashing.mix64 (!h land max_int)

let global c label = Stdx.Prng.split (Stdx.Prng.create c.seed) (string_key label)

let keyed c label i =
  Stdx.Prng.split (Stdx.Prng.create c.seed) (string_key label lxor Stdx.Hashing.mix64 (i + 1))

let derive c label i =
  { seed = Stdx.Hashing.mix64 (c.seed lxor string_key label lxor Stdx.Hashing.mix64 (i + 0x51)) }

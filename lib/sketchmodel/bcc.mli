(** The broadcast congested clique (BCC), and its equivalence with
    distributed sketching when restricted to one round — the observation
    the paper uses to interpret Result 1 as a BCC lower bound
    (Section 1.1, citing [30, 39]).

    In the BCC, computation proceeds in synchronous rounds: every vertex
    broadcasts one message per round which {e all} vertices (and the
    referee) receive; a vertex's state after round [i] is its input plus
    every message of rounds [1..i]. The equivalence:

    - a one-round sketching protocol {e is} a one-round BCC protocol whose
      output is computed by the referee from the round-1 broadcasts;
    - conversely, a one-round BCC protocol yields a sketching protocol with
      identical per-player cost ({!of_sketch} / {!to_sketch} below are
      cost-preserving by construction, and the tests check it).

    Multi-round BCC protocols are strictly stronger; {!run} supports any
    number of rounds so upper bounds like the [Õ(√n)] two-round protocols
    can also be phrased here. *)

type history
(** Everything broadcast so far: {!rounds_so_far} completed rounds, with
    the messages of any of them available through {!round_readers}.

    The history is an on-demand handle, not a materialised list: readers
    for a round exist only once a consumer asks for that round. A
    protocol that replays incrementally (caching the state it derived
    from rounds [1..k] and consuming only rounds [k+1..]) therefore pays
    for each broadcast bit a constant number of times over the whole
    execution, rather than once per vertex per later round. See
    PERFORMANCE.md ("Broadcast history is lazy"). *)

val rounds_so_far : history -> int
(** Number of completed rounds recorded in the history. [0] for the
    history passed to round 1's broadcasts. *)

val round_readers : history -> int -> Stdx.Bitbuf.Reader.t array
(** [round_readers h r] is one fresh reader per vertex over the messages
    of round [r] (1-based). Each call mints fresh readers, so distinct
    consumers never share cursor state. Raises [Invalid_argument] unless
    [1 <= r <= rounds_so_far h]. *)

type 'a protocol = {
  name : string;
  rounds : int;
  broadcast :
    round:int -> Model.view -> history -> Public_coins.t -> Stdx.Bitbuf.Writer.t;
      (** The message vertex [view.vertex] broadcasts in [round]
          (1-based), given everything broadcast before. *)
  output : n:int -> history -> Public_coins.t -> 'a;
      (** The referee's output from the full history. *)
}

type stats = {
  max_bits_per_round : int;  (** the BCC bandwidth measure *)
  max_bits_total : int;  (** worst-case total bits broadcast by one vertex *)
  rounds_used : int;
}

val run : 'a protocol -> Dgraph.Graph.t -> Public_coins.t -> 'a * stats

val of_sketch : 'a Model.protocol -> 'a protocol
(** A sketching protocol as a one-round BCC protocol (same messages). *)

val to_sketch : 'a protocol -> 'a Model.protocol
(** A {e one-round} BCC protocol as a sketching protocol; raises
    [Invalid_argument] if [rounds <> 1]. *)

type ('b, 'a) protocol = {
  name : string;
  round1 : Model.view -> Public_coins.t -> Stdx.Bitbuf.Writer.t;
  decide : n:int -> sketches:Stdx.Bitbuf.Reader.t array -> Public_coins.t -> 'b;
  encode_broadcast : 'b -> Stdx.Bitbuf.Writer.t;
  round2 : Model.view -> 'b -> Public_coins.t -> Stdx.Bitbuf.Writer.t;
  finish :
    n:int -> broadcast:'b -> sketches:Stdx.Bitbuf.Reader.t array -> Public_coins.t -> 'a;
}

type stats = {
  max_bits : int;
  round1_max : int;
  round2_max : int;
  broadcast_bits : int;
  total_bits : int;
}

(* Each of the two rounds is wrapped in a [protocol.round] trace span
   (same name the multi-round hypergraph runner emits), so a trace of a
   two-round run shows the round boundary: everything up to and
   including [decide] is round 1, the response sketches and [finish] are
   round 2. *)
let round_span protocol r body =
  Stdx.Trace.span
    ~args:(fun () -> [ ("round", Stdx.Trace.Int r); ("protocol", Stdx.Trace.Str protocol.name) ])
    "protocol.round" body

let run protocol g coins =
  let n = Dgraph.Graph.n g in
  let player_views = Model.views g in
  let sizes1, broadcast, broadcast_bits =
    round_span protocol 1 (fun () ->
        let writers1 = Array.map (fun view -> protocol.round1 view coins) player_views in
        let sizes1 = Array.map Stdx.Bitbuf.Writer.length_bits writers1 in
        let sketches1 = Array.map Stdx.Bitbuf.Reader.of_writer writers1 in
        let broadcast = protocol.decide ~n ~sketches:sketches1 coins in
        let broadcast_bits =
          Stdx.Bitbuf.Writer.length_bits (protocol.encode_broadcast broadcast)
        in
        (sizes1, broadcast, broadcast_bits))
  in
  let sizes2, output =
    round_span protocol 2 (fun () ->
        let writers2 = Array.map (fun view -> protocol.round2 view broadcast coins) player_views in
        let sizes2 = Array.map Stdx.Bitbuf.Writer.length_bits writers2 in
        let sketches2 = Array.map Stdx.Bitbuf.Reader.of_writer writers2 in
        (sizes2, protocol.finish ~n ~broadcast ~sketches:sketches2 coins))
  in
  let max2 a = Array.fold_left max 0 a in
  let per_player = Array.init n (fun v -> sizes1.(v) + sizes2.(v)) in
  ( output,
    {
      max_bits = max2 per_player;
      round1_max = max2 sizes1;
      round2_max = max2 sizes2;
      broadcast_bits;
      total_bits = Array.fold_left ( + ) 0 per_player;
    } )

let pp_stats ppf s =
  Format.fprintf ppf "max=%d bits (r1=%d, r2=%d) broadcast=%d bits total=%d bits" s.max_bits
    s.round1_max s.round2_max s.broadcast_bits s.total_bits

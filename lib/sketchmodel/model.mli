(** The one-round distributed sketching model (Section 2.1).

    One player per vertex; a player's whole input is the number of vertices,
    its own id, and its sorted neighbour list. All players simultaneously
    send one message (a {e sketch}) to the referee, who sees only the
    messages and the public coins. Communication cost is the worst-case
    message length in bits — measured exactly from the bit buffers, never
    estimated. *)

type view = {
  n : int;  (** number of vertices in the graph *)
  vertex : int;  (** this player's id *)
  neighbors : int array;  (** sorted ids of adjacent vertices *)
}
(** Everything a player is allowed to see. *)

val views : Dgraph.Graph.t -> view array
(** The honest per-vertex views of a graph. *)

type 'a protocol = {
  name : string;
  player : view -> Public_coins.t -> Stdx.Bitbuf.Writer.t;
      (** The sketch of one vertex: a function of its view and the public
          coins only. *)
  referee : n:int -> sketches:Stdx.Bitbuf.Reader.t array -> Public_coins.t -> 'a;
      (** Output from the sketches and the coins; no access to the graph. *)
}

type stats = {
  max_bits : int;  (** the paper's communication cost *)
  total_bits : int;
  avg_bits : float;
  players : int;
}

val run : 'a protocol -> Dgraph.Graph.t -> Public_coins.t -> 'a * stats
(** Executes one round honestly: builds views, runs every player, hands the
    referee read-only sketches, and accounts bits. *)

val run_views :
  ?schedule:int array -> 'a protocol -> n:int -> view array -> Public_coins.t -> 'a * stats
(** Same, but over explicit views — used by the public/unique augmented
    player model of Section 3.1, where the number of players exceeds [n]
    and views are not the honest per-vertex ones.

    [schedule] (a permutation of the player indices; default identity)
    fixes the {e order} in which player sketches are computed. Players are
    simultaneous and independent, so every schedule must give identical
    output and stats — the referee's accounting is order-independent by
    construction. The knob exists so tests can pin that invariant, which
    is what makes computing sketches concurrently (or trials in parallel
    via {!Stdx.Parallel}) safe. Raises [Invalid_argument] if [schedule]
    is not a permutation. *)

val success_rate :
  trials:int -> seed:int -> (Public_coins.t -> bool) -> float
(** Runs a boolean experiment over [trials] independent public-coin seeds
    and returns the empirical success probability. *)

val pp_stats : Format.formatter -> stats -> unit

(** The signed vertex/edge incidence encoding of AGM sketches [1].

    Each vertex [v] owns a virtual vector over the universe of vertex pairs
    [(a, b)], [a < b]: coordinate [(a, b)] is [+1] if [v = a] and the edge
    exists, [-1] if [v = b] and the edge exists, [0] otherwise. Summing the
    vectors of any vertex set [S] cancels the edges inside [S] exactly and
    leaves [±1] on the edges crossing the cut [(S, V∖S)] — the identity
    that lets a referee find outgoing edges of a component from the sum of
    its members' linear sketches. *)

val universe : int -> int
(** Size of the pair universe for an [n]-vertex graph: [n * n]. *)

val index : n:int -> int -> int -> int
(** Index of the normalised pair. *)

val endpoints : n:int -> int -> int * int
(** Inverse of {!index}. *)

val vertex_updates : n:int -> int -> int array -> (int * int) list
(** [(coordinate, weight)] updates a vertex applies for its neighbour
    list. *)

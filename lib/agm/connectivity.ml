module Model = Sketchmodel.Model
module Public_coins = Sketchmodel.Public_coins
module SF = Spanning_forest
module L0 = Linear_sketch.L0_sampler
module Graph = Dgraph.Graph

type certificate = { forests : Graph.edge list array; union : Graph.t }

let forest_coins coins j = Public_coins.derive coins "agm-kforest" j

let forests_player config ~n ~k (view : Model.view) coins =
  let w = Stdx.Bitbuf.Writer.create () in
  let arena = Stdx.Scratch.domain () in
  for j = 0 to k - 1 do
    (* One arena key for all k stacks: stack j is serialised before the
       borrow for stack j+1 invalidates it. *)
    let params = SF.sampler_params config ~n (forest_coins coins j) in
    let stack = SF.scratch_stack arena "conn.forests-player" params in
    Array.iter
      (fun u -> SF.stack_update ~n stack view.Model.vertex u ~weight:1)
      view.Model.neighbors;
    Array.iter (fun s -> L0.write s w) stack
  done;
  w

let forests_referee config ~n ~k ~sketches coins =
  (* Parse the k stacks of every vertex into one flat arena borrow; the
     whole parse must survive the peeling below, which subtracts prior
     forests from later stacks in place. *)
  let params = Array.init k (fun j -> SF.sampler_params config ~n (forest_coins coins j)) in
  let stack_off = Array.make (k + 1) 0 in
  for j = 0 to k - 1 do
    stack_off.(j + 1) <- stack_off.(j) + SF.stack_words params.(j)
  done;
  let vertex_words = stack_off.(k) in
  let buf =
    Stdx.Scratch.dirty_ints (Stdx.Scratch.domain ()) "conn.forests-referee"
      (Array.length sketches * vertex_words)
  in
  let parsed =
    Array.mapi
      (fun v r ->
        (* Stacks are serialised j = 0 .. k-1, so thread the reader in
           that order at explicit offsets. *)
        let stacks = Array.make k [||] in
        for j = 0 to k - 1 do
          stacks.(j) <- SF.read_stack_into params.(j) buf ((v * vertex_words) + stack_off.(j)) r
        done;
        stacks)
      sketches
  in
  (* Peel: decode forest j after subtracting forests 0..j-1 from stack j —
     pure referee-side linear algebra, no player involvement. *)
  let forests = Array.make k [] in
  for j = 0 to k - 1 do
    let stacks_j = Array.init n (fun v -> parsed.(v).(j)) in
    for prior = 0 to j - 1 do
      List.iter
        (fun (u, v) ->
          SF.stack_update ~n stacks_j.(u) u v ~weight:(-1);
          SF.stack_update ~n stacks_j.(v) v u ~weight:(-1))
        forests.(prior)
    done;
    forests.(j) <- SF.decode_forest ~n ~per_vertex:stacks_j
  done;
  let union =
    let b = Graph.Builder.create ~capacity:(max 1 (k * n)) n in
    Array.iter (List.iter (fun (u, v) -> Graph.Builder.add_edge b u v)) forests;
    Graph.Builder.freeze b
  in
  { forests; union }

let forests_protocol ?(config = SF.default_config) ~n ~k () =
  if k < 1 then invalid_arg "Connectivity.forests_protocol: k";
  {
    Model.name = Printf.sprintf "agm-%d-forests" k;
    player = (fun view coins -> forests_player config ~n ~k view coins);
    referee = (fun ~n ~sketches coins -> forests_referee config ~n ~k ~sketches coins);
  }

let k_forests ?(config = SF.default_config) g ~k coins =
  Model.run (forests_protocol ~config ~n:(Graph.n g) ~k ()) g coins

let certificate_valid g ~k cert =
  Array.length cert.forests = k
  &&
  let seen = Hashtbl.create 256 in
  let disjoint =
    Array.for_all
      (fun forest ->
        List.for_all
          (fun e ->
            if Hashtbl.mem seen e then false
            else begin
              Hashtbl.replace seen e ();
              true
            end)
          forest)
      cert.forests
  in
  disjoint
  &&
  (* F_j must be a spanning forest of G minus the earlier forests. *)
  let removed = Hashtbl.create 256 in
  let ok = ref true in
  Array.iter
    (fun forest ->
      let residual =
        let b = Graph.Builder.create ~capacity:(max 1 (Graph.m g)) (Graph.n g) in
        Graph.iter_edges
          (fun u v -> if not (Hashtbl.mem removed (u, v)) then Graph.Builder.add_edge b u v)
          g;
        Graph.Builder.freeze b
      in
      if not (Dgraph.Components.is_spanning_forest residual forest) then ok := false;
      List.iter (fun e -> Hashtbl.replace removed e ()) forest)
    cert.forests;
  !ok

let edge_connectivity_estimate cert ~k =
  let label, count = Dgraph.Components.components cert.union in
  ignore label;
  if count > 1 then 0 else min k (Dgraph.Mincut.min_cut cert.union)

(* --- bipartiteness via the double cover --- *)

(* Vertex v holds both cover copies v and n+v; edge (v, u) becomes
   (v, n+u) and (n+v, u), applied directly below — no intermediate
   pair lists. *)

let bipartiteness_player config ~n (view : Model.view) coins =
  let w = Stdx.Bitbuf.Writer.create () in
  let arena = Stdx.Scratch.domain () in
  let v = view.Model.vertex in
  (* Stack on G itself (for the component count of G)... *)
  let g_params = SF.sampler_params config ~n (Public_coins.derive coins "agm-bip-g" 0) in
  let g_stack = SF.scratch_stack arena "conn.bip-g" g_params in
  Array.iter (fun u -> SF.stack_update ~n g_stack v u ~weight:1) view.Model.neighbors;
  Array.iter (fun s -> L0.write s w) g_stack;
  (* ...and the two double-cover copies this vertex simulates (the same
     arena key twice: the first copy is serialised before the second
     borrow resets it). *)
  let cover_params =
    SF.sampler_params config ~n:(2 * n) (Public_coins.derive coins "agm-bip-cover" 0)
  in
  let low = SF.scratch_stack arena "conn.bip-cover" cover_params in
  Array.iter (fun u -> SF.stack_update ~n:(2 * n) low v (n + u) ~weight:1) view.Model.neighbors;
  Array.iter (fun s -> L0.write s w) low;
  let high = SF.scratch_stack arena "conn.bip-cover" cover_params in
  Array.iter (fun u -> SF.stack_update ~n:(2 * n) high (n + v) u ~weight:1) view.Model.neighbors;
  Array.iter (fun s -> L0.write s w) high;
  w

let bipartiteness_referee config ~n ~sketches coins =
  let g_params = SF.sampler_params config ~n (Public_coins.derive coins "agm-bip-g" 0) in
  let cover_params =
    SF.sampler_params config ~n:(2 * n) (Public_coins.derive coins "agm-bip-cover" 0)
  in
  let gw = SF.stack_words g_params and cw = SF.stack_words cover_params in
  (* Both decodes below run after the full parse, so all 3n stacks share
     one borrow: per vertex, its G stack then its two cover stacks. *)
  let buf =
    Stdx.Scratch.dirty_ints (Stdx.Scratch.domain ()) "conn.bip-referee" (n * (gw + (2 * cw)))
  in
  let g_stacks = Array.make n [||] in
  let cover_stacks = Array.make (2 * n) [||] in
  Array.iteri
    (fun v r ->
      let off = v * (gw + (2 * cw)) in
      g_stacks.(v) <- SF.read_stack_into g_params buf off r;
      cover_stacks.(v) <- SF.read_stack_into cover_params buf (off + gw) r;
      cover_stacks.(n + v) <- SF.read_stack_into cover_params buf (off + gw + cw) r)
    sketches;
  let g_components = n - List.length (SF.decode_forest ~n ~per_vertex:g_stacks) in
  let cover_components =
    (2 * n) - List.length (SF.decode_forest ~n:(2 * n) ~per_vertex:cover_stacks)
  in
  cover_components = 2 * g_components

let bipartiteness_protocol ?(config = SF.default_config) ~n () =
  {
    Model.name = "agm-bipartiteness";
    player = (fun view coins -> bipartiteness_player config ~n view coins);
    referee = (fun ~n ~sketches coins -> bipartiteness_referee config ~n ~sketches coins);
  }

let is_bipartite_via_sketches ?(config = SF.default_config) g coins =
  Model.run (bipartiteness_protocol ~config ~n:(Graph.n g) ()) g coins

let is_bipartite_exact g =
  let n = Graph.n g in
  let color = Array.make n (-1) in
  let queue = Queue.create () in
  let ok = ref true in
  for start = 0 to n - 1 do
    if color.(start) = -1 then begin
      color.(start) <- 0;
      Queue.add start queue;
      while not (Queue.is_empty queue) do
        let v = Queue.pop queue in
        Graph.iter_neighbors
          (fun u ->
            if color.(u) = -1 then begin
              color.(u) <- 1 - color.(v);
              Queue.add u queue
            end
            else if color.(u) = color.(v) then ok := false)
          g v
      done
    end
  done;
  !ok

module Model = Sketchmodel.Model
module Public_coins = Sketchmodel.Public_coins
module Graph = Dgraph.Graph
module Writer = Stdx.Bitbuf.Writer
module Reader = Stdx.Bitbuf.Reader

type result = {
  bridge : Graph.edge option;
  stats : Model.stats;
  partition_found : bool;
}

let zigzag v = if v >= 0 then 2 * v else (-2 * v) - 1
let unzigzag u = if u land 1 = 0 then u / 2 else -((u + 1) / 2)

(* s_w = sum_{z > w} (z*n + w) - sum_{z < w} (w*n + z): the telescoping sum
   from Footnote 1; edge (w, z), w < z, contributes +(z*n + w) at w and
   -(z*n + w) at z. *)
let telescoping_sum ~n (view : Model.view) =
  Array.fold_left
    (fun acc z ->
      let w = view.Model.vertex in
      if z > w then acc + ((z * n) + w) else acc - ((w * n) + z))
    0 view.Model.neighbors

let player ~n ~samples_per_vertex (view : Model.view) coins =
  let w = Writer.create () in
  let deg = Array.length view.Model.neighbors in
  let count = min deg samples_per_vertex in
  let rng = Public_coins.keyed coins "bridge-sample" view.Model.vertex in
  let picks = Stdx.Prng.sample_distinct rng count deg in
  Writer.uvarint w count;
  Array.iter (fun idx -> Writer.uvarint w view.Model.neighbors.(idx)) picks;
  Writer.uvarint w (zigzag (telescoping_sum ~n view));
  w

let decode_sum ~n total =
  let v = abs total / n and u = abs total mod n in
  if u < v && v < n then Some (u, v) else None

let referee ~n ~sketches _coins =
  let sampled = Array.make n [] in
  let sums = Array.make n 0 in
  Array.iteri
    (fun vertex r ->
      let count = Reader.uvarint r in
      for _ = 1 to count do
        sampled.(vertex) <- Reader.uvarint r :: sampled.(vertex)
      done;
      sums.(vertex) <- unzigzag (Reader.uvarint r))
    sketches;
  let sampled_graph =
    let b = Graph.Builder.create ~capacity:(max 16 n) n in
    for v = 0 to n - 1 do
      List.iter (fun u -> if u <> v then Graph.Builder.add_edge b v u) sampled.(v)
    done;
    Graph.Builder.freeze b
  in
  let label, count = Dgraph.Components.components sampled_graph in
  let side_sum side = Array.to_list label |> List.mapi (fun v l -> if l = side then sums.(v) else 0)
                      |> List.fold_left ( + ) 0 in
  if count = 2 then ((decode_sum ~n (side_sum 0)), true)
  else if count = 1 then begin
    (* The bridge itself was sampled: it is the unique sampled cut edge
       whose removal splits the clouds; verify candidates with the sum. *)
    let all_edges = Graph.edges_array sampled_graph in
    let candidates = Array.to_list all_edges in
    let answer =
      List.find_map
        (fun e ->
          let without = Array.of_list (List.filter (fun e' -> e' <> e) candidates) in
          let g' = Graph.of_edge_array n without in
          let label', count' = Dgraph.Components.components g' in
          if count' <> 2 then None
          else begin
            let sum =
              Array.to_list label'
              |> List.mapi (fun v l -> if l = label'.(0) then sums.(v) else 0)
              |> List.fold_left ( + ) 0
            in
            match decode_sum ~n sum with
            | Some d when d = e -> Some e
            | Some _ | None -> None
          end)
        candidates
    in
    (answer, false)
  end
  else (None, false)

let protocol ~n ~samples_per_vertex =
  {
    Model.name = "footnote1-bridge";
    player = (fun view coins -> player ~n ~samples_per_vertex view coins);
    referee = (fun ~n ~sketches coins -> referee ~n ~sketches coins);
  }

let run g ~samples_per_vertex coins =
  let (bridge, partition_found), stats =
    Model.run (protocol ~n:(Graph.n g) ~samples_per_vertex) g coins
  in
  { bridge; stats; partition_found }

let success_probability ~half ~samples_per_vertex ~trials ~seed =
  Model.success_rate ~trials ~seed (fun coins ->
      let rng = Public_coins.global coins "bridge-instance" in
      let g, planted = Dgraph.Gen.bridge_of_clouds rng ~half ~p:0.5 in
      let result = run g ~samples_per_vertex coins in
      result.bridge = Some planted)

(** Edge-connectivity certificates and bipartiteness testing from linear
    sketches — the further AGM-family positive results ([1], [2]) the
    paper's introduction lists among "everything sketching can do".

    {b k edge-disjoint forests.} The player sends [k] independent sampler
    stacks. The referee peels: decode a spanning forest [F₁] from stack 1,
    {e subtract} its edges from stack 2 (linearity lets the referee do
    this without any player involvement), decode [F₂] of [G − F₁], and so
    on. The union [F₁ ∪ … ∪ F_k] is a sparse certificate preserving every
    cut value up to [k] (Nagamochi–Ibaraki), so
    [min(k, edge-connectivity)] is computable from sketches alone.

    {b Bipartiteness.} [G] is bipartite iff its bipartite double cover has
    exactly twice as many connected components. Each vertex of [G] can
    construct its two double-cover views locally, so one round of
    [2×]-size AGM sketches decides bipartiteness. *)

type certificate = {
  forests : Dgraph.Graph.edge list array;  (** [forests.(j)] is [F_{j+1}] *)
  union : Dgraph.Graph.t;
}

val forests_protocol :
  ?config:Spanning_forest.config ->
  n:int ->
  k:int ->
  unit ->
  certificate Sketchmodel.Model.protocol

val k_forests :
  ?config:Spanning_forest.config ->
  Dgraph.Graph.t ->
  k:int ->
  Sketchmodel.Public_coins.t ->
  certificate * Sketchmodel.Model.stats

val certificate_valid : Dgraph.Graph.t -> k:int -> certificate -> bool
(** The forests are edge-disjoint subforests of [G], each [F_j] spanning in
    [G − F₁ − … − F_{j−1}]. *)

val edge_connectivity_estimate : certificate -> k:int -> int
(** [min(k, edge-connectivity of G)], computed as the min-cut of the
    certificate capped at [k] (exact when the certificate is valid). *)

val bipartiteness_protocol :
  ?config:Spanning_forest.config -> n:int -> unit -> bool Sketchmodel.Model.protocol
(** Referee outputs [true] iff the graph is bipartite (w.h.p.). *)

val is_bipartite_via_sketches :
  ?config:Spanning_forest.config ->
  Dgraph.Graph.t ->
  Sketchmodel.Public_coins.t ->
  bool * Sketchmodel.Model.stats

val is_bipartite_exact : Dgraph.Graph.t -> bool
(** BFS 2-coloring; the ground-truth oracle. *)

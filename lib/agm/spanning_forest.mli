(** The AGM spanning-forest sketch [Ahn–Guha–McGregor, SODA'12]: the
    positive result the paper's introduction contrasts with its lower
    bound. Per-vertex sketches of [O(log^3 n)] bits suffice for the referee
    to output a spanning forest with high probability.

    Each vertex serialises [⌈log2 n⌉ + 1] independent L0-samplers of its
    signed edge-incidence vector (fresh randomness per Borůvka round, so
    adaptivity never reuses a sampler). The referee decodes round by round:
    it sums the current round's samplers over each component, draws an
    outgoing edge, and merges. *)

type config = { sparsity : int; reps : int }

val default_config : config

val protocol :
  ?config:config -> n:int -> unit -> Dgraph.Graph.edge list Sketchmodel.Model.protocol
(** A one-round sketching protocol (the paper's model, Section 2.1) whose
    referee outputs a spanning forest. The graph size [n] parametrises the
    public randomness; communication is measured by the runner. *)

val rounds : int -> int
(** Number of Borůvka rounds / samplers per vertex for an [n]-vertex
    graph. *)

val run :
  ?config:config ->
  Dgraph.Graph.t ->
  Sketchmodel.Public_coins.t ->
  Dgraph.Graph.edge list * Sketchmodel.Model.stats
(** Convenience wrapper around {!Sketchmodel.Model.run}. *)

val connected_components :
  ?config:config ->
  Dgraph.Graph.t ->
  Sketchmodel.Public_coins.t ->
  int * Sketchmodel.Model.stats
(** Number of connected components according to the decoded forest. *)

(** {1 Low-level pieces}

    Exposed so other substrates (the dynamic-stream processor, the
    k-forest connectivity certificate) can reuse the exact same sampler
    stacks, serialisation and Borůvka decoder. *)

val sampler_params :
  config -> n:int -> Sketchmodel.Public_coins.t -> Linear_sketch.L0_sampler.params array
(** One sampler parameter set per Borůvka round, derived from public
    coins (players and referee call this identically). Memoized per
    domain on [(config, n, seed)] — the derivation is pure, so the
    cache changes allocation, never values. *)

val empty_stack :
  config -> n:int -> Sketchmodel.Public_coins.t -> Linear_sketch.L0_sampler.t array
(** Fresh all-zero samplers, one per round, each owning its buffer —
    for long-lived stacks (e.g. the dynamic-stream processor). Hot
    loops use {!scratch_stack} instead. *)

val stack_words : Linear_sketch.L0_sampler.params array -> int
(** Flat size in ints of one vertex's whole sampler stack (the sum of
    the rounds' {!Linear_sketch.L0_sampler.size_words}). *)

val scratch_stack :
  Stdx.Scratch.t -> string -> Linear_sketch.L0_sampler.params array -> Linear_sketch.L0_sampler.t array
(** [scratch_stack arena key params] borrows one zeroed arena buffer of
    {!stack_words} ints and carves it into per-round sampler views —
    the allocation-free {!empty_stack} for stacks that die before the
    key is borrowed again (a player's stack lives only until
    [write_stack]). See the {!Stdx.Scratch} ownership contract. *)

val stack_update : n:int -> Linear_sketch.L0_sampler.t array -> int -> int -> weight:int -> unit
(** [stack_update ~n stack v u ~weight] applies the signed edge-incidence
    update of edge [(v, u)] as seen from vertex [v], scaled by [weight]
    ([+1] insert, [-1] delete), to every round's sampler. *)

val write_stack : Linear_sketch.L0_sampler.t array -> Stdx.Bitbuf.Writer.t
(** Serialise a vertex's samplers — this is the protocol message. *)

val read_stack_into :
  Linear_sketch.L0_sampler.params array ->
  int array ->
  int ->
  Stdx.Bitbuf.Reader.t ->
  Linear_sketch.L0_sampler.t array
(** [read_stack_into params buf off r] deserialises one vertex's stack
    into the caller-owned region at [buf.(off ..)] ({!stack_words} ints,
    every slot overwritten) and returns the per-round sampler views.
    How referees parse whole instances into a single arena borrow. *)

val decode_forest :
  n:int -> per_vertex:Linear_sketch.L0_sampler.t array array -> Dgraph.Graph.edge list
(** The Borůvka referee over deserialised (or directly maintained)
    per-vertex sampler stacks. Component sums accumulate in an arena
    borrow under the key ["sf.decode-acc"]; input stacks are not
    modified. *)

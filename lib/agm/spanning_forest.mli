(** The AGM spanning-forest sketch [Ahn–Guha–McGregor, SODA'12]: the
    positive result the paper's introduction contrasts with its lower
    bound. Per-vertex sketches of [O(log^3 n)] bits suffice for the referee
    to output a spanning forest with high probability.

    Each vertex serialises [⌈log2 n⌉ + 1] independent L0-samplers of its
    signed edge-incidence vector (fresh randomness per Borůvka round, so
    adaptivity never reuses a sampler). The referee decodes round by round:
    it sums the current round's samplers over each component, draws an
    outgoing edge, and merges. *)

type config = { sparsity : int; reps : int }

val default_config : config

val protocol :
  ?config:config -> n:int -> unit -> Dgraph.Graph.edge list Sketchmodel.Model.protocol
(** A one-round sketching protocol (the paper's model, Section 2.1) whose
    referee outputs a spanning forest. The graph size [n] parametrises the
    public randomness; communication is measured by the runner. *)

val rounds : int -> int
(** Number of Borůvka rounds / samplers per vertex for an [n]-vertex
    graph. *)

val run :
  ?config:config ->
  Dgraph.Graph.t ->
  Sketchmodel.Public_coins.t ->
  Dgraph.Graph.edge list * Sketchmodel.Model.stats
(** Convenience wrapper around {!Sketchmodel.Model.run}. *)

val connected_components :
  ?config:config ->
  Dgraph.Graph.t ->
  Sketchmodel.Public_coins.t ->
  int * Sketchmodel.Model.stats
(** Number of connected components according to the decoded forest. *)

(** {1 Low-level pieces}

    Exposed so other substrates (the dynamic-stream processor, the
    k-forest connectivity certificate) can reuse the exact same sampler
    stacks, serialisation and Borůvka decoder. *)

val sampler_params :
  config -> n:int -> Sketchmodel.Public_coins.t -> Linear_sketch.L0_sampler.params array
(** One sampler parameter set per Borůvka round, derived from public
    coins (players and referee call this identically). *)

val empty_stack :
  config -> n:int -> Sketchmodel.Public_coins.t -> Linear_sketch.L0_sampler.t array
(** Fresh all-zero samplers, one per round. *)

val stack_update : n:int -> Linear_sketch.L0_sampler.t array -> int -> int -> weight:int -> unit
(** [stack_update ~n stack v u ~weight] applies the signed edge-incidence
    update of edge [(v, u)] as seen from vertex [v], scaled by [weight]
    ([+1] insert, [-1] delete), to every round's sampler. *)

val write_stack : Linear_sketch.L0_sampler.t array -> Stdx.Bitbuf.Writer.t
(** Serialise a vertex's samplers — this is the protocol message. *)

val decode_forest :
  n:int -> per_vertex:Linear_sketch.L0_sampler.t array array -> Dgraph.Graph.edge list
(** The Borůvka referee over deserialised (or directly maintained)
    per-vertex sampler stacks. *)

let universe n = n * n

let index ~n u v =
  let u, v = Dgraph.Graph.normalize_edge u v in
  (u * n) + v

let endpoints ~n idx = (idx / n, idx mod n)

let vertex_updates ~n v neighbors =
  Array.to_list neighbors
  |> List.map (fun u -> (index ~n v u, if v < u then 1 else -1))

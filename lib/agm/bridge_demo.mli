(** The paper's Footnote 1, implemented verbatim: two disjoint random
    graphs joined by a single bridge edge [(u, v)]. Although [(u, v)] is
    locally indistinguishable from any other edge at [u] and [v], the
    referee recovers it from [O(log n)]-size sketches:

    - every vertex sends [c·log n] uniformly sampled incident edges, which
      w.h.p. reveal the two-cloud partition (each cloud's sampled subgraph
      is connected, and the bridge itself is rarely sampled);
    - every vertex [w] also sends the telescoping sum
      [s_w = Σ_{z ∈ N(w), z > w} (z·n + w) − Σ_{z ∈ N(w), z < w} (w·n + z)].
      Summing [s_w] over one cloud cancels every internal edge and leaves
      [±(v·n + u)] — the bridge's code. *)

type result = {
  bridge : Dgraph.Graph.edge option;  (** referee's answer *)
  stats : Sketchmodel.Model.stats;
  partition_found : bool;  (** whether the sampled subgraph had 2 clouds *)
}

val protocol : n:int -> samples_per_vertex:int -> (Dgraph.Graph.edge option * bool) Sketchmodel.Model.protocol

val run :
  Dgraph.Graph.t -> samples_per_vertex:int -> Sketchmodel.Public_coins.t -> result

val success_probability :
  half:int -> samples_per_vertex:int -> trials:int -> seed:int -> float
(** Fraction of trials (fresh instance + fresh coins each) where the
    referee outputs exactly the planted bridge. *)

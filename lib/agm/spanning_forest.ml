module Model = Sketchmodel.Model
module Public_coins = Sketchmodel.Public_coins
module L0 = Linear_sketch.L0_sampler

type config = { sparsity : int; reps : int }

let default_config = { sparsity = 4; reps = 3 }

let rounds n =
  let rec bits v acc = if v <= 1 then acc else bits ((v + 1) / 2) (acc + 1) in
  max 1 (bits n 0) + 1

let sampler_params config ~n coins =
  let universe = Edge_encoding.universe n in
  Array.init (rounds n) (fun round ->
      let rng = Public_coins.keyed coins "agm-sampler" round in
      L0.make_params rng ~universe ~sparsity:config.sparsity ~reps:config.reps ())

let empty_stack config ~n coins =
  Array.map L0.create (sampler_params config ~n coins)

let stack_update ~n stack v u ~weight =
  if u = v then invalid_arg "Spanning_forest.stack_update: self-loop";
  let idx = Edge_encoding.index ~n v u in
  let w = (if v < u then 1 else -1) * weight in
  Array.iter (fun s -> L0.update s idx w) stack

let player_sketches config ~n coins (view : Model.view) =
  let stack = empty_stack config ~n coins in
  Array.iter (fun u -> stack_update ~n stack view.Model.vertex u ~weight:1) view.Model.neighbors;
  stack

let write_stack sketches =
  let w = Stdx.Bitbuf.Writer.create () in
  Array.iter (fun s -> L0.write s w) sketches;
  w

let read_sketches params r = Array.map (fun p -> L0.read p r) params

(* Borůvka: in round [j] every component sums its members' round-[j]
   samplers and decodes one outgoing edge; internal edges cancel by
   construction, so any decoded coordinate crosses the cut. *)
let decode_forest ~n ~per_vertex =
  let uf = Dgraph.Unionfind.create n in
  let forest = ref [] in
  let round_count = if Array.length per_vertex = 0 then 0 else Array.length per_vertex.(0) in
  let continue = ref true in
  let round = ref 0 in
  while !continue && !round < round_count do
    let members = Dgraph.Unionfind.class_members uf in
    let merged = ref false in
    let candidates = ref [] in
    Array.iteri
      (fun root vs ->
        match vs with
        | [] -> ()
        | first :: rest ->
            ignore root;
            let combined =
              List.fold_left
                (fun acc v -> L0.combine acc per_vertex.(v).(!round))
                per_vertex.(first).(!round) rest
            in
            (match L0.decode combined with
            | Some (idx, _) -> candidates := idx :: !candidates
            | None -> ()))
      members;
    List.iter
      (fun idx ->
        let u, v = Edge_encoding.endpoints ~n idx in
        if u >= 0 && u < n && v >= 0 && v < n && u <> v then
          if Dgraph.Unionfind.union uf u v then begin
            forest := Dgraph.Graph.normalize_edge u v :: !forest;
            merged := true
          end)
      !candidates;
    if not !merged then continue := false;
    incr round
  done;
  List.rev !forest

let referee config ~n ~sketches coins =
  let params = sampler_params config ~n coins in
  let per_vertex = Array.map (read_sketches params) sketches in
  decode_forest ~n ~per_vertex

let protocol ?(config = default_config) ~n () =
  {
    Model.name = "agm-spanning-forest";
    player = (fun view coins -> write_stack (player_sketches config ~n coins view));
    referee = (fun ~n ~sketches coins -> referee config ~n ~sketches coins);
  }

let run ?(config = default_config) g coins =
  Model.run (protocol ~config ~n:(Dgraph.Graph.n g) ()) g coins

let connected_components ?(config = default_config) g coins =
  let forest, stats = run ~config g coins in
  (Dgraph.Graph.n g - List.length forest, stats)

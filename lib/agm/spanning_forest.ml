module Model = Sketchmodel.Model
module Public_coins = Sketchmodel.Public_coins
module L0 = Linear_sketch.L0_sampler

type config = { sparsity : int; reps : int }

let default_config = { sparsity = 4; reps = 3 }

let rounds n =
  let rec bits v acc = if v <= 1 then acc else bits ((v + 1) / 2) (acc + 1) in
  max 1 (bits n 0) + 1

(* Sampler params are a pure function of (config, n, coin seed) —
   [Public_coins.keyed] builds a fresh stream per call — but players
   re-derive them once per vertex, which at n vertices per trial was the
   dominant setup churn (prime search plus reps hash samples per round,
   per vertex). Memoize per domain: the cache is domain-local (no locks,
   no cross-domain sharing, so [Parallel] determinism is untouched) and
   bounded — trials use fresh seeds, so old entries are dead weight. *)
let params_cache :
    (int * int * int * int, L0.params array) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 8)

let sampler_params config ~n coins =
  let cache = Domain.DLS.get params_cache in
  let key = (config.sparsity, config.reps, n, Public_coins.seed coins) in
  match Hashtbl.find_opt cache key with
  | Some ps -> ps
  | None ->
      let universe = Edge_encoding.universe n in
      let ps =
        Array.init (rounds n) (fun round ->
            let rng = Public_coins.keyed coins "agm-sampler" round in
            L0.make_params rng ~universe ~sparsity:config.sparsity ~reps:config.reps ())
      in
      if Hashtbl.length cache >= 64 then Hashtbl.reset cache;
      Hashtbl.add cache key ps;
      ps

let stack_words params = Array.fold_left (fun acc p -> acc + L0.size_words p) 0 params

let scratch_stack arena key params =
  let buf = Stdx.Scratch.ints arena key (stack_words params) in
  let off = ref 0 in
  Array.map
    (fun p ->
      let s = L0.of_buffer p buf !off in
      off := !off + L0.size_words p;
      s)
    params

let empty_stack config ~n coins = Array.map L0.create (sampler_params config ~n coins)

let stack_update ~n stack v u ~weight =
  if u = v then invalid_arg "Spanning_forest.stack_update: self-loop";
  let idx = Edge_encoding.index ~n v u in
  let w = (if v < u then 1 else -1) * weight in
  Array.iter (fun s -> L0.update s idx w) stack

let player_sketches config ~n coins (view : Model.view) =
  (* The stack only lives until [write_stack]; borrow it from the arena
     (zeroed per borrow, reallocated only when n changes). *)
  let stack = scratch_stack (Stdx.Scratch.domain ()) "sf.player" (sampler_params config ~n coins) in
  Array.iter (fun u -> stack_update ~n stack view.Model.vertex u ~weight:1) view.Model.neighbors;
  stack

let write_stack sketches =
  let w = Stdx.Bitbuf.Writer.create () in
  Array.iter (fun s -> L0.write s w) sketches;
  w

let read_stack_into params buf off r =
  let off = ref off in
  Array.map
    (fun p ->
      let s = L0.read_into p buf !off r in
      off := !off + L0.size_words p;
      s)
    params

(* Borůvka: in round [j] every component sums its members' round-[j]
   samplers and decodes one outgoing edge; internal edges cancel by
   construction, so any decoded coordinate crosses the cut. *)
let decode_forest ~n ~per_vertex =
  let arena = Stdx.Scratch.domain () in
  let uf = Dgraph.Unionfind.create n in
  let forest = ref [] in
  let round_count = if Array.length per_vertex = 0 then 0 else Array.length per_vertex.(0) in
  let continue = ref true in
  let round = ref 0 in
  while !continue && !round < round_count do
    let members = Dgraph.Unionfind.class_members uf in
    let merged = ref false in
    let candidates = ref [] in
    Array.iteri
      (fun root vs ->
        match vs with
        | [] -> ()
        | first :: rest ->
            ignore root;
            (* Accumulate the component's samplers into one arena borrow
               instead of a fresh buffer per [combine] — re-borrowed (and
               so invalidated) at the next component, after decoding. *)
            let combined = L0.scratch_copy arena "sf.decode-acc" per_vertex.(first).(!round) in
            List.iter (fun v -> L0.add_into ~dst:combined per_vertex.(v).(!round)) rest;
            (match L0.decode combined with
            | Some (idx, _) -> candidates := idx :: !candidates
            | None -> ()))
      members;
    List.iter
      (fun idx ->
        let u, v = Edge_encoding.endpoints ~n idx in
        if u >= 0 && u < n && v >= 0 && v < n && u <> v then
          if Dgraph.Unionfind.union uf u v then begin
            forest := Dgraph.Graph.normalize_edge u v :: !forest;
            merged := true
          end)
      !candidates;
    if not !merged then continue := false;
    incr round
  done;
  List.rev !forest

let referee config ~n ~sketches coins =
  let params = sampler_params config ~n coins in
  (* Parse every vertex's stack into one flat arena borrow: the regions
     live exactly as long as the Borůvka decode below, which uses the
     distinct keys "sf.decode-acc" / "sparse_recovery.decode". *)
  let sw = stack_words params in
  let buf =
    Stdx.Scratch.dirty_ints (Stdx.Scratch.domain ()) "sf.referee" (Array.length sketches * sw)
  in
  let per_vertex = Array.mapi (fun v r -> read_stack_into params buf (v * sw) r) sketches in
  decode_forest ~n ~per_vertex

let protocol ?(config = default_config) ~n () =
  {
    Model.name = "agm-spanning-forest";
    player = (fun view coins -> write_stack (player_sketches config ~n coins view));
    referee = (fun ~n ~sketches coins -> referee config ~n ~sketches coins);
  }

let run ?(config = default_config) g coins =
  Model.run (protocol ~config ~n:(Dgraph.Graph.n g) ()) g coins

let connected_components ?(config = default_config) g coins =
  let forest, stats = run ~config g coins in
  (Dgraph.Graph.n g - List.length forest, stats)

(** L0-sampling: return {e some} nonzero coordinate of a linear-sketched
    vector.

    The classic subsampling tower: level [ℓ] keeps the coordinates whose
    public hash has at least [ℓ] trailing zero bits (an expected
    [2^{-ℓ}] fraction) in an s-sparse recovery structure. Whatever the
    number of nonzeros, some level holds between 1 and [s] of them with
    good probability, and that level decodes exactly.

    AGM's referee only needs {e an arbitrary} nonzero coordinate (an
    outgoing edge), so the decoder returns the recovered coordinate with
    the smallest hash value — a fixed choice that also makes the sample
    uniform-ish among nonzeros. *)

type params

val make_params :
  Stdx.Prng.t -> universe:int -> ?sparsity:int -> ?reps:int -> unit -> params
(** [sparsity] (default 8) is the per-level recovery capacity; [reps]
    (default 3) the repetitions inside each level. *)

val universe : params -> int

type t

val create : params -> t

val zero_like : t -> t
(** A fresh zero sampler with the same parameters. *)

val update : t -> int -> int -> unit
val combine : t -> t -> t

val decode : t -> (int * int) option
(** [Some (index, weight)] for some nonzero coordinate, or [None] if the
    vector is zero or every level fails (rare). *)

val support_hint : t -> (int * int) list
(** All coordinates recovered by the deepest successfully-decoded level —
    more than one when the vector is sparse. Used opportunistically by the
    spanning-forest referee. *)

val write : t -> Stdx.Bitbuf.Writer.t -> unit
val read : params -> Stdx.Bitbuf.Reader.t -> t
val size_bits : t -> int
(** Serialised size of this sketch in bits. *)

(** L0-sampling: return {e some} nonzero coordinate of a linear-sketched
    vector.

    The classic subsampling tower: level [ℓ] keeps the coordinates whose
    public hash has at least [ℓ] trailing zero bits (an expected
    [2^{-ℓ}] fraction) in an s-sparse recovery structure. Whatever the
    number of nonzeros, some level holds between 1 and [s] of them with
    good probability, and that level decodes exactly.

    AGM's referee only needs {e an arbitrary} nonzero coordinate (an
    outgoing edge), so the decoder returns the recovered coordinate with
    the smallest hash value — a fixed choice that also makes the sample
    uniform-ish among nonzeros.

    {2 Flat representation}

    A sampler is {!size_words} consecutive ints — [levels]
    sparse-recovery regions back to back — viewed through [(buf, off)].
    {!create} owns a private buffer; {!of_buffer} views a caller-owned
    one, which is how the AGM players keep whole per-vertex stacks of
    samplers in single {!Stdx.Scratch} arena buffers (zeroed per borrow,
    reused across trials). The two kinds of sampler are bit-identical in
    every operation. *)

type params

val make_params :
  Stdx.Prng.t -> universe:int -> ?sparsity:int -> ?reps:int -> unit -> params
(** [sparsity] (default 8) is the per-level recovery capacity; [reps]
    (default 3) the repetitions inside each level. *)

val universe : params -> int

type t

val create : params -> t

val size_words : params -> int
(** Flat size of one sampler in ints:
    [levels * Sparse_recovery.words]. *)

val of_buffer : params -> int array -> int -> t
(** [of_buffer params buf off] is the sampler whose state lives at
    [buf.(off .. off + size_words params - 1)]. The caller owns the
    buffer and must hand the region over zeroed (or carrying a valid
    prior state it intends to continue); the sampler aliases it — no
    copy. Raises [Invalid_argument] when the region overruns [buf]. *)

val reset : t -> unit
(** Zero the sampler's region in place — back to the zero vector
    without allocating. The arena-reuse reset. *)

val zero_like : t -> t
(** A fresh zero sampler with the same parameters (own buffer). *)

val update : t -> int -> int -> unit
val combine : t -> t -> t

val add_into : dst:t -> t -> unit
(** [add_into ~dst src] adds [src]'s vector into [dst] in place — the
    allocation-free {!combine}, used by the spanning-forest referee's
    arena-backed component accumulators. Both samplers must share
    params; their regions must not overlap. *)

val decode : t -> (int * int) option
(** [Some (index, weight)] for some nonzero coordinate, or [None] if the
    vector is zero or every level fails (rare). *)

val support_hint : t -> (int * int) list
(** All coordinates recovered by the deepest successfully-decoded level —
    more than one when the vector is sparse. Used opportunistically by the
    spanning-forest referee. *)

val scratch_copy : Stdx.Scratch.t -> string -> t -> t
(** [scratch_copy arena key src] borrows [size_words] ints from [arena]
    under [key] and copies [src]'s state into them, returning a sampler
    view of the borrow. The standard way to seed an {!add_into}
    accumulator without allocating: re-borrowing [key] (e.g. for the
    next component) invalidates the previous copy. *)

val write : t -> Stdx.Bitbuf.Writer.t -> unit
val read : params -> Stdx.Bitbuf.Reader.t -> t

val read_into : params -> int array -> int -> Stdx.Bitbuf.Reader.t -> t
(** [read_into params buf off r] deserialises one sampler into the
    caller-owned region at [buf.(off ..)] (every slot overwritten — a
    dirty arena borrow is fine) and returns the region's sampler view.
    Bit-identical input format to {!read}. *)

val size_bits : t -> int
(** Serialised size of this sketch in bits. *)

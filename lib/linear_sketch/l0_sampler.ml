type params = {
  levels : int;
  salt : int;  (** public salt for the level hash *)
  sparse : Sparse_recovery.params;
  universe : int;
}

(* Trailing zeros of a salted 62-bit mix of the index; the cap is
   threaded as an argument so the loop is a static function (a local
   helper capturing [params] would allocate a closure per update). *)
let rec trailing_zeros h cap acc =
  if acc >= cap then cap
  else if h land 1 = 1 then acc
  else trailing_zeros (h lsr 1) cap (acc + 1)

let level_of params i =
  trailing_zeros (Stdx.Hashing.mix64 (i lxor params.salt)) (params.levels - 1) 0

let hash_rank params i = Stdx.Hashing.mix64 ((i * 2654435761) lxor params.salt lxor 0x5bd1e995)

let make_params rng ~universe ?(sparsity = 8) ?(reps = 3) () =
  if universe <= 0 then invalid_arg "L0_sampler.make_params";
  let levels =
    let rec bits v acc = if v = 0 then acc else bits (v lsr 1) (acc + 1) in
    bits universe 0 + 2
  in
  {
    levels;
    salt = Stdx.Prng.int rng (1 lsl 60);
    sparse = Sparse_recovery.make_params rng ~universe ~buckets:(2 * sparsity) ~reps;
    universe;
  }

let universe params = params.universe

(* Flat layout: [levels] sparse-recovery regions back to back. A sampler
   is a view [(buf, off)] onto such a region — [create] owns a private
   buffer, [of_buffer] views a caller-owned (typically arena) one. *)
let size_words params = params.levels * Sparse_recovery.words params.sparse

type t = { params : params; buf : int array; off : int }

let create params = { params; buf = Array.make (size_words params) 0; off = 0 }

let of_buffer params buf off =
  if off < 0 || off + size_words params > Array.length buf then
    invalid_arg "L0_sampler.of_buffer: region out of bounds";
  { params; buf; off }

let reset sketch = Array.fill sketch.buf sketch.off (size_words sketch.params) 0

let zero_like sketch = create sketch.params

let level_off sketch level = sketch.off + (level * Sparse_recovery.words sketch.params.sparse)

let update sketch i w =
  (* Coordinate i participates in levels 0 .. level_of i. *)
  let top = level_of sketch.params i in
  for level = 0 to top do
    Sparse_recovery.update_at sketch.params.sparse sketch.buf (level_off sketch level) i w
  done

let add_into ~dst src =
  if dst.params != src.params && dst.params <> src.params then invalid_arg "L0_sampler.add_into";
  (* Levels are contiguous, so the whole region adds in one pass. *)
  for level = 0 to dst.params.levels - 1 do
    Sparse_recovery.add_at dst.params.sparse ~dst:dst.buf (level_off dst level) ~src:src.buf
      (level_off src level)
  done

let combine a b =
  if a.params != b.params && a.params <> b.params then invalid_arg "L0_sampler.combine";
  let c =
    { params = a.params; buf = Array.sub a.buf a.off (size_words a.params); off = 0 }
  in
  add_into ~dst:c b;
  c

let decoded_levels sketch =
  (* Deepest-first: deeper levels are sparser and decode more reliably, but
     may be empty; scanning from the top finds the sparsest nonempty one. *)
  let rec scan level =
    if level < 0 then None
    else
      match Sparse_recovery.decode_at sketch.params.sparse sketch.buf (level_off sketch level) with
      | Some ((_ :: _) as items) -> Some items
      | Some [] | None -> scan (level - 1)
  in
  scan (sketch.params.levels - 1)

let support_hint sketch = Option.value ~default:[] (decoded_levels sketch)

let decode sketch =
  match decoded_levels sketch with
  | None -> None
  | Some items ->
      let best =
        List.fold_left
          (fun acc (i, w) ->
            match acc with
            | None -> Some (i, w)
            | Some (j, _) when hash_rank sketch.params i < hash_rank sketch.params j -> Some (i, w)
            | Some _ -> acc)
          None items
      in
      best

let write sketch w =
  for level = 0 to sketch.params.levels - 1 do
    Sparse_recovery.write_at sketch.params.sparse sketch.buf (level_off sketch level) w
  done

let read_into params buf off r =
  let sketch = of_buffer params buf off in
  for level = 0 to params.levels - 1 do
    Sparse_recovery.read_at params.sparse sketch.buf (level_off sketch level) r
  done;
  sketch

let read params r =
  let sketch = create params in
  read_into params sketch.buf sketch.off r

let scratch_copy arena key src =
  let len = size_words src.params in
  let buf = Stdx.Scratch.dirty_ints arena key len in
  Array.blit src.buf src.off buf 0 len;
  { params = src.params; buf; off = 0 }

let size_bits sketch =
  let w = Stdx.Bitbuf.Writer.create () in
  write sketch w;
  Stdx.Bitbuf.Writer.length_bits w

type params = {
  levels : int;
  salt : int;  (** public salt for the level hash *)
  sparse : Sparse_recovery.params;
  universe : int;
}

let level_of params i =
  (* Trailing zeros of a salted 62-bit mix of the index. *)
  let h = Stdx.Hashing.mix64 (i lxor params.salt) in
  let rec count h acc =
    if acc >= params.levels - 1 then params.levels - 1
    else if h land 1 = 1 then acc
    else count (h lsr 1) (acc + 1)
  in
  count h 0

let hash_rank params i = Stdx.Hashing.mix64 ((i * 2654435761) lxor params.salt lxor 0x5bd1e995)

let make_params rng ~universe ?(sparsity = 8) ?(reps = 3) () =
  if universe <= 0 then invalid_arg "L0_sampler.make_params";
  let levels =
    let rec bits v acc = if v = 0 then acc else bits (v lsr 1) (acc + 1) in
    bits universe 0 + 2
  in
  {
    levels;
    salt = Stdx.Prng.int rng (1 lsl 60);
    sparse = Sparse_recovery.make_params rng ~universe ~buckets:(2 * sparsity) ~reps;
    universe;
  }

let universe params = params.universe

type t = { params : params; per_level : Sparse_recovery.t array }

let create params =
  { params; per_level = Array.init params.levels (fun _ -> Sparse_recovery.create params.sparse) }

let zero_like sketch = create sketch.params

let update sketch i w =
  (* Coordinate i participates in levels 0 .. level_of i. *)
  let top = level_of sketch.params i in
  for level = 0 to top do
    Sparse_recovery.update sketch.per_level.(level) i w
  done

let combine a b =
  if a.params != b.params && a.params <> b.params then invalid_arg "L0_sampler.combine";
  { params = a.params; per_level = Array.map2 Sparse_recovery.combine a.per_level b.per_level }

let decoded_levels sketch =
  (* Deepest-first: deeper levels are sparser and decode more reliably, but
     may be empty; scanning from the top finds the sparsest nonempty one. *)
  let rec scan level =
    if level < 0 then None
    else
      match Sparse_recovery.decode sketch.per_level.(level) with
      | Some ((_ :: _) as items) -> Some items
      | Some [] | None -> scan (level - 1)
  in
  scan (sketch.params.levels - 1)

let support_hint sketch = Option.value ~default:[] (decoded_levels sketch)

let decode sketch =
  match decoded_levels sketch with
  | None -> None
  | Some items ->
      let best =
        List.fold_left
          (fun acc (i, w) ->
            match acc with
            | None -> Some (i, w)
            | Some (j, _) when hash_rank sketch.params i < hash_rank sketch.params j -> Some (i, w)
            | Some _ -> acc)
          None items
      in
      best

let write sketch w = Array.iter (fun level -> Sparse_recovery.write level w) sketch.per_level

let read params r =
  { params; per_level = Array.init params.levels (fun _ -> Sparse_recovery.read params.sparse r) }

let size_bits sketch =
  let w = Stdx.Bitbuf.Writer.create () in
  write sketch w;
  Stdx.Bitbuf.Writer.length_bits w

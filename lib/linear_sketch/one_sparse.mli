(** Exact 1-sparse recovery over integer vectors.

    The base cell of the AGM stack. For a vector [x : \[0, universe) -> Z]
    it maintains three linear measurements:
    - [s0 = Σ x_i],
    - [s1 = Σ i·x_i],
    - a fingerprint [f = Σ x_i·z^i mod p] for a public random [z].

    If [x] has exactly one nonzero coordinate [(i, w)] then [s0 = w],
    [s1 = i·w] and [f = w·z^i]; the decoder checks all three. A vector with
    two or more nonzeros passes the check with probability
    [<= universe / p] (Schwartz–Ippel on the degree-[universe]
    polynomial), so false singletons are rare and detected as
    {!result.Collision} otherwise.

    All operations are linear: {!combine} of two cells built from the same
    {!params} is the cell of the summed vectors — the property AGM's
    referee exploits when it merges the sketches of a component. *)

type params
(** Public randomness of a cell: the prime [p], evaluation point [z] and
    the universe size. Players and referee derive equal [params] from
    public coins. *)

val make_params : Stdx.Prng.t -> universe:int -> params
val universe : params -> int

type t

val create : params -> t
val copy : t -> t

val zero_like : t -> t
(** A fresh zero cell with the same parameters. *)

val update : t -> int -> int -> unit
(** [update cell i w] adds [w] to coordinate [i]. *)

val combine : t -> t -> t
(** Cell of the pointwise sum; both arguments must share [params]. *)

val scale : t -> int -> t
(** Cell of the scaled vector. *)

type result =
  | Zero  (** the zero vector (up to fingerprint error) *)
  | Singleton of int * int  (** exactly one nonzero: (index, weight) *)
  | Collision  (** two or more nonzeros *)

val decode : t -> result

val write : t -> Stdx.Bitbuf.Writer.t -> unit
(** Serialise the cell's three counters (exact bit accounting). *)

val read : params -> Stdx.Bitbuf.Reader.t -> t

(** Exact 1-sparse recovery over integer vectors.

    The base cell of the AGM stack. For a vector [x : \[0, universe) -> Z]
    it maintains three linear measurements:
    - [s0 = Σ x_i],
    - [s1 = Σ i·x_i],
    - a fingerprint [f = Σ x_i·z^i mod p] for a public random [z].

    If [x] has exactly one nonzero coordinate [(i, w)] then [s0 = w],
    [s1 = i·w] and [f = w·z^i]; the decoder checks all three. A vector with
    two or more nonzeros passes the check with probability
    [<= universe / p] (Schwartz–Ippel on the degree-[universe]
    polynomial), so false singletons are rare and detected as
    {!result.Collision} otherwise.

    All operations are linear: {!combine} of two cells built from the same
    {!params} is the cell of the summed vectors — the property AGM's
    referee exploits when it merges the sketches of a component.

    {2 Flat representation}

    A cell is {!words} (= 3) consecutive ints [s0; s1; f] in a
    caller-owned [int array]. The [_at] operations act on such a region
    at a given offset; {!Sparse_recovery} and {!L0_sampler} pack all
    their cells into single flat buffers (typically borrowed from a
    {!Stdx.Scratch} arena) and never box individual cells on hot paths.
    The abstract {!t} below is a one-cell view kept for the boxed public
    API; both act on identical bit patterns, so the two layers are
    interchangeable bit-for-bit. *)

type params
(** Public randomness of a cell: the prime [p], evaluation point [z] and
    the universe size. Players and referee derive equal [params] from
    public coins. *)

val make_params : Stdx.Prng.t -> universe:int -> params
val universe : params -> int

val words : int
(** Flat size of one cell in ints — [3]: the [s0], [s1] and [f]
    counters, in that order. *)

val update_at : params -> int array -> int -> int -> int -> unit
(** [update_at params buf off i w] adds [w] to coordinate [i] of the
    cell stored at [buf.(off .. off+words-1)]. Raises
    [Invalid_argument] when [i] is outside the universe. *)

val add_at : params -> dst:int array -> int -> src:int array -> int -> unit
(** [add_at params ~dst doff ~src soff] adds the cell at
    [src.(soff ..)] into the cell at [dst.(doff ..)] in place — the
    in-place {!combine}, used by arena-backed accumulators. The two
    regions must not overlap unless they coincide exactly. *)

type result =
  | Zero  (** the zero vector (up to fingerprint error) *)
  | Singleton of int * int  (** exactly one nonzero: (index, weight) *)
  | Collision  (** two or more nonzeros *)

val decode_at : params -> int array -> int -> result
(** Decode the cell stored at [buf.(off .. off+words-1)]. *)

val write_at : params -> int array -> int -> Stdx.Bitbuf.Writer.t -> unit
(** Serialise the cell at [off] (zigzag varints for [s0], [s1]; the
    fingerprint at the field width of [p]) — exact bit accounting,
    byte-identical to {!write} of the equivalent boxed cell. *)

val read_at : params -> int array -> int -> Stdx.Bitbuf.Reader.t -> unit
(** Deserialise one cell into [buf.(off .. off+words-1)], overwriting
    the three slots. *)

type t
(** A boxed one-cell view: [params] plus a private 3-int buffer. *)

val create : params -> t
val copy : t -> t

val zero_like : t -> t
(** A fresh zero cell with the same parameters. *)

val update : t -> int -> int -> unit
(** [update cell i w] adds [w] to coordinate [i]. *)

val combine : t -> t -> t
(** Cell of the pointwise sum; both arguments must share [params]. *)

val scale : t -> int -> t
(** Cell of the scaled vector. *)

val decode : t -> result

val write : t -> Stdx.Bitbuf.Writer.t -> unit
(** Serialise the cell's three counters (exact bit accounting). *)

val read : params -> Stdx.Bitbuf.Reader.t -> t

(** Exact s-sparse recovery by hashing into 1-sparse cells and peeling.

    [reps] independent pairwise-independent hash functions each spread the
    coordinates over [buckets] cells. Decoding peels: any cell that decodes
    to a singleton reveals one coordinate, which is subtracted from every
    repetition, possibly turning collisions into new singletons. Decoding
    succeeds iff the whole residual reaches zero, which happens with
    constant probability per repetition when the vector is at most
    [buckets/2]-sparse, amplified by [reps]. *)

type params

val make_params : Stdx.Prng.t -> universe:int -> buckets:int -> reps:int -> params
val universe : params -> int

type t

val create : params -> t

val zero_like : t -> t
(** A fresh zero sketch with the same parameters. *)

val update : t -> int -> int -> unit
val combine : t -> t -> t

val decode : t -> (int * int) list option
(** [Some assoc] with the exact nonzero coordinates (sorted by index) if
    peeling terminates at zero; [None] when the vector is too dense to
    recover. The input sketch is not modified. *)

val write : t -> Stdx.Bitbuf.Writer.t -> unit
val read : params -> Stdx.Bitbuf.Reader.t -> t

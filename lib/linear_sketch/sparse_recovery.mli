(** Exact s-sparse recovery by hashing into 1-sparse cells and peeling.

    [reps] independent pairwise-independent hash functions each spread the
    coordinates over [buckets] cells. Decoding peels: any cell that decodes
    to a singleton reveals one coordinate, which is subtracted from every
    repetition, possibly turning collisions into new singletons. Decoding
    succeeds iff the whole residual reaches zero, which happens with
    constant probability per repetition when the vector is at most
    [buckets/2]-sparse, amplified by [reps].

    {2 Flat representation}

    A sketch is [reps x buckets] one-sparse cells packed row-major by
    repetition into {!words} consecutive ints of a caller-owned buffer;
    the [_at] operations act on such a region at a given offset.
    {!L0_sampler} packs its levels this way into one flat buffer, and
    players keep whole stacks of samplers in single {!Stdx.Scratch}
    arena buffers. The boxed {!t} owns a private region and is
    bit-identical to the flat layer. *)

type params

val make_params : Stdx.Prng.t -> universe:int -> buckets:int -> reps:int -> params
val universe : params -> int

val words : params -> int
(** Flat size of one sketch in ints: [reps * buckets * One_sparse.words].
    Independent of the universe size, so arena buffers keyed by a fixed
    (reps, buckets) never reallocate across universes. *)

val update_at : params -> int array -> int -> int -> int -> unit
(** [update_at params buf off i w] adds [w] to coordinate [i] of the
    sketch region at [buf.(off .. off + words params - 1)]. *)

val add_at : params -> dst:int array -> int -> src:int array -> int -> unit
(** In-place {!combine}: add the sketch region at [src.(soff ..)] into
    the one at [dst.(doff ..)] cell by cell. *)

val decode_at : params -> int array -> int -> (int * int) list option
(** Decode the region at [off] by peeling (see {!decode}). Works on a
    scratch copy borrowed from the calling domain's {!Stdx.Scratch}
    arena under the key ["sparse_recovery.decode"] — the input region
    is not modified, and callers must not hold a borrow of that same
    key across the call. *)

val write_at : params -> int array -> int -> Stdx.Bitbuf.Writer.t -> unit
(** Serialise the region's cells row-major — byte-identical to
    {!write} of the equivalent boxed sketch. *)

val read_at : params -> int array -> int -> Stdx.Bitbuf.Reader.t -> unit
(** Deserialise one sketch into the region at [off], overwriting it. *)

type t

val create : params -> t

val zero_like : t -> t
(** A fresh zero sketch with the same parameters. *)

val update : t -> int -> int -> unit
val combine : t -> t -> t

val decode : t -> (int * int) list option
(** [Some assoc] with the exact nonzero coordinates (sorted by index) if
    peeling terminates at zero; [None] when the vector is too dense to
    recover. The input sketch is not modified. *)

val write : t -> Stdx.Bitbuf.Writer.t -> unit
val read : params -> Stdx.Bitbuf.Reader.t -> t

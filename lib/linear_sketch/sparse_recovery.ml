type params = {
  cell : One_sparse.params;
  hashes : Stdx.Hashing.t array;  (** one per repetition *)
  buckets : int;
}

let make_params rng ~universe ~buckets ~reps =
  if buckets < 1 || reps < 1 then invalid_arg "Sparse_recovery.make_params";
  {
    cell = One_sparse.make_params rng ~universe;
    hashes = Array.init reps (fun _ -> Stdx.Hashing.sample rng ~universe ~buckets);
    buckets;
  }

let universe params = One_sparse.universe params.cell

(* Flat layout: reps x buckets one-sparse cells, row-major by
   repetition, each [One_sparse.words] ints wide, in a caller-owned
   region starting at some offset. *)
let cells params = Array.length params.hashes * params.buckets
let words params = cells params * One_sparse.words

let update_at params buf off i w =
  Array.iteri
    (fun rep h ->
      let bucket = Stdx.Hashing.apply h i in
      One_sparse.update_at params.cell buf
        (off + ((rep * params.buckets) + bucket) * One_sparse.words)
        i w)
    params.hashes

let add_at params ~dst doff ~src soff =
  for c = 0 to cells params - 1 do
    let o = c * One_sparse.words in
    One_sparse.add_at params.cell ~dst (doff + o) ~src (soff + o)
  done

(* Peeling decode over a scratch copy of the region. The work buffer is
   borrowed from the domain arena under one fixed key: decode never
   nests inside itself, and its length is constant per (reps, buckets),
   so steady workloads hit the cached buffer every call. *)
let scratch_key = "sparse_recovery.decode"

let rec all_zero buf off len = len = 0 || (buf.(off) = 0 && all_zero buf (off + 1) (len - 1))

let decode_at params buf off =
  let len = words params in
  (* Empty levels dominate the referee's scans: an all-zero region peels
     to nothing and verifies clean, so answer without borrowing scratch
     or building the recovery table. *)
  if all_zero buf off len then Some []
  else begin
  let work = Stdx.Scratch.dirty_ints (Stdx.Scratch.domain ()) scratch_key len in
  Array.blit buf off work 0 len;
  let recovered = Hashtbl.create 16 in
  let subtract i w = update_at params work 0 i (-w) in
  (* A false singleton (fingerprint collision) could in principle make
     peeling oscillate; cap the number of passes to rule that out. *)
  let passes = ref 0 in
  let max_passes = 4 + (4 * cells params) in
  let progress = ref true in
  while !progress && !passes < max_passes do
    incr passes;
    progress := false;
    for c = 0 to cells params - 1 do
      match One_sparse.decode_at params.cell work (c * One_sparse.words) with
      | Singleton (i, w) when w <> 0 ->
          let prev = Option.value ~default:0 (Hashtbl.find_opt recovered i) in
          Hashtbl.replace recovered i (prev + w);
          subtract i w;
          progress := true
      | Zero | Singleton _ | Collision -> ()
    done
  done;
  let clean = ref true in
  for c = 0 to cells params - 1 do
    if One_sparse.decode_at params.cell work (c * One_sparse.words) <> Zero then clean := false
  done;
  if not !clean then None
  else
    Some
      (Hashtbl.fold (fun i w acc -> if w <> 0 then (i, w) :: acc else acc) recovered []
      |> List.sort compare)
  end

let write_at params buf off w =
  for c = 0 to cells params - 1 do
    One_sparse.write_at params.cell buf (off + (c * One_sparse.words)) w
  done

let read_at params buf off r =
  for c = 0 to cells params - 1 do
    One_sparse.read_at params.cell buf (off + (c * One_sparse.words)) r
  done

(* ------------------------------------------------------------------ *)
(* Boxed view                                                          *)

type t = { params : params; buf : int array; off : int }

let create params = { params; buf = Array.make (words params) 0; off = 0 }

let zero_like sketch = create sketch.params

let update sketch i w = update_at sketch.params sketch.buf sketch.off i w

let combine a b =
  if a.params != b.params && a.params <> b.params then
    invalid_arg "Sparse_recovery.combine: params mismatch";
  let c = { params = a.params; buf = Array.sub a.buf a.off (words a.params); off = 0 } in
  add_at a.params ~dst:c.buf c.off ~src:b.buf b.off;
  c

let decode sketch = decode_at sketch.params sketch.buf sketch.off

let write sketch w = write_at sketch.params sketch.buf sketch.off w

let read params r =
  let sketch = create params in
  read_at params sketch.buf sketch.off r;
  sketch

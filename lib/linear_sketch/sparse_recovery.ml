type params = {
  cell : One_sparse.params;
  hashes : Stdx.Hashing.t array;  (** one per repetition *)
  buckets : int;
}

let make_params rng ~universe ~buckets ~reps =
  if buckets < 1 || reps < 1 then invalid_arg "Sparse_recovery.make_params";
  {
    cell = One_sparse.make_params rng ~universe;
    hashes = Array.init reps (fun _ -> Stdx.Hashing.sample rng ~universe ~buckets);
    buckets;
  }

let universe params = One_sparse.universe params.cell

type t = { params : params; cells : One_sparse.t array array (* reps x buckets *) }

let create params =
  {
    params;
    cells =
      Array.init (Array.length params.hashes) (fun _ ->
          Array.init params.buckets (fun _ -> One_sparse.create params.cell));
  }

let zero_like sketch = create sketch.params

let update sketch i w =
  Array.iteri
    (fun rep row -> One_sparse.update row.(Stdx.Hashing.apply sketch.params.hashes.(rep) i) i w)
    sketch.cells

let combine a b =
  if a.params != b.params && a.params <> b.params then
    invalid_arg "Sparse_recovery.combine: params mismatch";
  {
    params = a.params;
    cells = Array.map2 (fun ra rb -> Array.map2 One_sparse.combine ra rb) a.cells b.cells;
  }

let decode sketch =
  let params = sketch.params in
  let work = Array.map (Array.map One_sparse.copy) sketch.cells in
  let recovered = Hashtbl.create 16 in
  let subtract i w =
    Array.iteri
      (fun rep row -> One_sparse.update row.(Stdx.Hashing.apply params.hashes.(rep) i) i (-w))
      work
  in
  (* A false singleton (fingerprint collision) could in principle make
     peeling oscillate; cap the number of passes to rule that out. *)
  let passes = ref 0 in
  let max_passes = 4 + (4 * Array.length params.hashes * params.buckets) in
  let progress = ref true in
  while !progress && !passes < max_passes do
    incr passes;
    progress := false;
    Array.iter
      (fun row ->
        Array.iter
          (fun cell ->
            match One_sparse.decode cell with
            | Singleton (i, w) when w <> 0 ->
                let prev = Option.value ~default:0 (Hashtbl.find_opt recovered i) in
                Hashtbl.replace recovered i (prev + w);
                subtract i w;
                progress := true
            | Zero | Singleton _ | Collision -> ())
          row)
      work
  done;
  let clean =
    Array.for_all (fun row -> Array.for_all (fun cell -> One_sparse.decode cell = Zero) row) work
  in
  if not clean then None
  else
    Some
      (Hashtbl.fold (fun i w acc -> if w <> 0 then (i, w) :: acc else acc) recovered []
      |> List.sort compare)

let write sketch w =
  Array.iter (fun row -> Array.iter (fun cell -> One_sparse.write cell w) row) sketch.cells

let read params r =
  {
    params;
    cells =
      Array.init (Array.length params.hashes) (fun _ ->
          Array.init params.buckets (fun _ -> One_sparse.read params.cell r));
  }

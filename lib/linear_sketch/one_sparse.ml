type params = { p : int; z : int; universe : int }

let make_params rng ~universe =
  if universe <= 0 || universe >= 1 lsl 30 then invalid_arg "One_sparse.make_params: universe";
  let p = Stdx.Prime.next_prime_above (max universe (1 lsl 20)) in
  { p; z = 1 + Stdx.Prng.int rng (p - 1); universe }

let universe params = params.universe

type t = { params : params; mutable s0 : int; mutable s1 : int; mutable f : int }

let create params = { params; s0 = 0; s1 = 0; f = 0 }

let copy cell = { cell with s0 = cell.s0 }

let zero_like cell = create cell.params

let powmod base exp m =
  let rec go base exp acc =
    if exp = 0 then acc
    else
      let acc = if exp land 1 = 1 then acc * base mod m else acc in
      go (base * base mod m) (exp lsr 1) acc
  in
  go (base mod m) exp 1

let update cell i w =
  if i < 0 || i >= cell.params.universe then invalid_arg "One_sparse.update: index";
  let p = cell.params.p in
  cell.s0 <- cell.s0 + w;
  cell.s1 <- cell.s1 + (i * w);
  let wp = ((w mod p) + p) mod p in
  cell.f <- (cell.f + (wp * powmod cell.params.z i p)) mod p

let combine a b =
  if a.params <> b.params then invalid_arg "One_sparse.combine: params mismatch";
  { params = a.params; s0 = a.s0 + b.s0; s1 = a.s1 + b.s1; f = (a.f + b.f) mod a.params.p }

let scale cell c =
  let p = cell.params.p in
  let cp = ((c mod p) + p) mod p in
  { cell with s0 = cell.s0 * c; s1 = cell.s1 * c; f = cell.f * cp mod p }

type result = Zero | Singleton of int * int | Collision

let decode cell =
  let p = cell.params.p in
  if cell.s0 = 0 && cell.s1 = 0 && cell.f = 0 then Zero
  else if cell.s0 = 0 then Collision
  else if cell.s1 mod cell.s0 <> 0 then Collision
  else begin
    let i = cell.s1 / cell.s0 in
    if i < 0 || i >= cell.params.universe then Collision
    else begin
      let wp = ((cell.s0 mod p) + p) mod p in
      if wp * powmod cell.params.z i p mod p = cell.f then Singleton (i, cell.s0) else Collision
    end
  end

(* Zigzag mapping so varints handle negative counters. *)
let zigzag v = if v >= 0 then 2 * v else (-2 * v) - 1
let unzigzag u = if u land 1 = 0 then u / 2 else -((u + 1) / 2)

let field_width params =
  let rec bits v acc = if v = 0 then acc else bits (v lsr 1) (acc + 1) in
  bits params.p 0

let write cell w =
  Stdx.Bitbuf.Writer.uvarint w (zigzag cell.s0);
  Stdx.Bitbuf.Writer.uvarint w (zigzag cell.s1);
  Stdx.Bitbuf.Writer.bits w cell.f ~width:(field_width cell.params)

let read params r =
  let s0 = unzigzag (Stdx.Bitbuf.Reader.uvarint r) in
  let s1 = unzigzag (Stdx.Bitbuf.Reader.uvarint r) in
  let f = Stdx.Bitbuf.Reader.bits r ~width:(field_width params) in
  { params; s0; s1; f }

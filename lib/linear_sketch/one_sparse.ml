type params = { p : int; z : int; universe : int }

let make_params rng ~universe =
  if universe <= 0 || universe >= 1 lsl 30 then invalid_arg "One_sparse.make_params: universe";
  let p = Stdx.Prime.next_prime_above (max universe (1 lsl 20)) in
  { p; z = 1 + Stdx.Prng.int rng (p - 1); universe }

let universe params = params.universe

(* Flat layout: a cell is [words] consecutive ints [s0; s1; f] inside a
   caller-owned [int array]. Sparse_recovery and L0_sampler pack their
   reps x buckets (x levels) cells into single flat buffers and drive
   them through the [_at] operations below — no per-cell boxes on the
   hot paths. The record [t] further down is a 3-word view kept for the
   boxed public API. *)
let words = 3

(* [m] is threaded as an argument: a local recursive helper capturing it
   would heap-allocate one closure per call, and [powmod] runs once per
   cell per update/decode on the hot paths. *)
let rec powmod_loop base exp m acc =
  if exp = 0 then acc
  else
    let acc = if exp land 1 = 1 then acc * base mod m else acc in
    powmod_loop (base * base mod m) (exp lsr 1) m acc

let powmod base exp m = powmod_loop (base mod m) exp m 1

let update_at params buf off i w =
  if i < 0 || i >= params.universe then invalid_arg "One_sparse.update: index";
  let p = params.p in
  buf.(off) <- buf.(off) + w;
  buf.(off + 1) <- buf.(off + 1) + (i * w);
  let wp = ((w mod p) + p) mod p in
  buf.(off + 2) <- (buf.(off + 2) + (wp * powmod params.z i p)) mod p

let add_at params ~dst doff ~src soff =
  dst.(doff) <- dst.(doff) + src.(soff);
  dst.(doff + 1) <- dst.(doff + 1) + src.(soff + 1);
  dst.(doff + 2) <- (dst.(doff + 2) + src.(soff + 2)) mod params.p

type result = Zero | Singleton of int * int | Collision

let decode_at params buf off =
  let s0 = buf.(off) and s1 = buf.(off + 1) and f = buf.(off + 2) in
  let p = params.p in
  if s0 = 0 && s1 = 0 && f = 0 then Zero
  else if s0 = 0 then Collision
  else if s1 mod s0 <> 0 then Collision
  else begin
    let i = s1 / s0 in
    if i < 0 || i >= params.universe then Collision
    else begin
      let wp = ((s0 mod p) + p) mod p in
      if wp * powmod params.z i p mod p = f then Singleton (i, s0) else Collision
    end
  end

(* Zigzag mapping so varints handle negative counters. *)
let zigzag v = if v >= 0 then 2 * v else (-2 * v) - 1
let unzigzag u = if u land 1 = 0 then u / 2 else -((u + 1) / 2)

let field_width params =
  let rec bits v acc = if v = 0 then acc else bits (v lsr 1) (acc + 1) in
  bits params.p 0

let write_at params buf off w =
  Stdx.Bitbuf.Writer.uvarint w (zigzag buf.(off));
  Stdx.Bitbuf.Writer.uvarint w (zigzag buf.(off + 1));
  Stdx.Bitbuf.Writer.bits w buf.(off + 2) ~width:(field_width params)

let read_at params buf off r =
  buf.(off) <- unzigzag (Stdx.Bitbuf.Reader.uvarint r);
  buf.(off + 1) <- unzigzag (Stdx.Bitbuf.Reader.uvarint r);
  buf.(off + 2) <- Stdx.Bitbuf.Reader.bits r ~width:(field_width params)

(* ------------------------------------------------------------------ *)
(* Boxed single-cell view                                              *)

type t = { params : params; buf : int array; off : int }

let create params = { params; buf = Array.make words 0; off = 0 }

let copy cell = { params = cell.params; buf = Array.sub cell.buf cell.off words; off = 0 }

let zero_like cell = create cell.params

let update cell i w = update_at cell.params cell.buf cell.off i w

let combine a b =
  if a.params <> b.params then invalid_arg "One_sparse.combine: params mismatch";
  let c = copy a in
  add_at a.params ~dst:c.buf c.off ~src:b.buf b.off;
  c

let scale cell c =
  let p = cell.params.p in
  let cp = ((c mod p) + p) mod p in
  let buf =
    [|
      cell.buf.(cell.off) * c;
      cell.buf.(cell.off + 1) * c;
      cell.buf.(cell.off + 2) * cp mod p;
    |]
  in
  { params = cell.params; buf; off = 0 }

let decode cell = decode_at cell.params cell.buf cell.off

let write cell w = write_at cell.params cell.buf cell.off w

let read params r =
  let cell = create params in
  read_at params cell.buf cell.off r;
  cell

(* Schema descriptions for the columnar incidence store (DESIGN.md §11).

   A schema names the *part kinds* of a structure (e.g. "vertex" and
   "edge") and the *morphism columns* between them (e.g. "src"/"dst", or
   a variable-arity "pins" column). Parts split into two roles derived
   from the morphisms: a part that is the domain of at least one morphism
   is a relation part (its elements are the rows fed to the freeze
   pipeline); every other part is an object part (its element count is
   fixed up front). The store itself lives in [Store]; this module is
   pure description plus validation. *)

type arity = Fixed | Variable

type morphism = {
  m_name : string;
  m_dom : string;
  m_cod : string;
  m_arity : arity;
  m_indexed : bool;
}

type t = {
  parts : string array;
  morphisms : morphism array;
  part_morphisms : int array array;
      (* per part: indices (in schema order) of the morphisms it is the
         domain of — the columns of one row of that part *)
}

let fixed ?(indexed = false) ~dom ~cod name =
  { m_name = name; m_dom = dom; m_cod = cod; m_arity = Fixed; m_indexed = indexed }

let variable ?(indexed = false) ~dom ~cod name =
  { m_name = name; m_dom = dom; m_cod = cod; m_arity = Variable; m_indexed = indexed }

let find_part t name =
  let rec go i =
    if i >= Array.length t.parts then None else if t.parts.(i) = name then Some i else go (i + 1)
  in
  go 0

let part_index t name =
  match find_part t name with
  | Some i -> i
  | None -> invalid_arg (Printf.sprintf "Schema.part_index: unknown part %S" name)

let find_morphism t name =
  let rec go i =
    if i >= Array.length t.morphisms then None
    else if t.morphisms.(i).m_name = name then Some i
    else go (i + 1)
  in
  go 0

let morphism_index t name =
  match find_morphism t name with
  | Some i -> i
  | None -> invalid_arg (Printf.sprintf "Schema.morphism_index: unknown morphism %S" name)

let make ~parts ~morphisms =
  let parts = Array.of_list parts in
  let morphisms = Array.of_list morphisms in
  if Array.length parts = 0 then invalid_arg "Schema.make: no parts";
  Array.iteri
    (fun i p ->
      if p = "" then invalid_arg "Schema.make: empty part name";
      for j = 0 to i - 1 do
        if parts.(j) = p then invalid_arg (Printf.sprintf "Schema.make: duplicate part %S" p)
      done)
    parts;
  let part_ix name =
    let rec go i =
      if i >= Array.length parts then
        invalid_arg (Printf.sprintf "Schema.make: morphism references unknown part %S" name)
      else if parts.(i) = name then i
      else go (i + 1)
    in
    go 0
  in
  Array.iteri
    (fun i m ->
      if m.m_name = "" then invalid_arg "Schema.make: empty morphism name";
      ignore (part_ix m.m_dom);
      ignore (part_ix m.m_cod);
      for j = 0 to i - 1 do
        if morphisms.(j).m_name = m.m_name then
          invalid_arg (Printf.sprintf "Schema.make: duplicate morphism %S" m.m_name)
      done)
    morphisms;
  let part_morphisms =
    Array.init (Array.length parts) (fun p ->
        let out = ref [] in
        Array.iteri (fun mi m -> if part_ix m.m_dom = p then out := mi :: !out) morphisms;
        Array.of_list (List.rev !out))
  in
  (* One row of a relation part is its fixed columns followed by the tail
     of at most one variable column: reject layouts the row encoding
     cannot represent. *)
  Array.iteri
    (fun p ms ->
      let saw_variable = ref false in
      Array.iter
        (fun mi ->
          match morphisms.(mi).m_arity with
          | Variable ->
              if !saw_variable then
                invalid_arg
                  (Printf.sprintf
                     "Schema.make: part %S has more than one variable-arity morphism" parts.(p));
              saw_variable := true
          | Fixed ->
              if !saw_variable then
                invalid_arg
                  (Printf.sprintf
                     "Schema.make: part %S declares a fixed morphism after a variable one"
                     parts.(p)))
        ms)
    part_morphisms;
  { parts; morphisms; part_morphisms }

let parts t = Array.copy t.parts
let n_parts t = Array.length t.parts
let n_morphisms t = Array.length t.morphisms
let part_name t i = t.parts.(i)
let morphism t i = t.morphisms.(i)
let morphisms_of_part t p = Array.copy t.part_morphisms.(p)
let dom t mi = part_index t t.morphisms.(mi).m_dom
let cod t mi = part_index t t.morphisms.(mi).m_cod
let is_relation_part t p = Array.length t.part_morphisms.(p) > 0

(* The variable morphism of a part, if any (always last in row order). *)
let variable_morphism t p =
  let ms = t.part_morphisms.(p) in
  let k = Array.length ms in
  if k > 0 && t.morphisms.(ms.(k - 1)).m_arity = Variable then Some ms.(k - 1) else None

let fixed_morphisms t p =
  let ms = t.part_morphisms.(p) in
  match variable_morphism t p with
  | None -> Array.copy ms
  | Some _ -> Array.sub ms 0 (Array.length ms - 1)

(* Columnar freeze primitives shared by every store instance: key
   sorting, adjacent deduplication, and CSR index fills. Everything here
   is allocation-disciplined plain-int-array code — the hot interior of
   [Store.freeze] and [Dgraph.Graph.of_keys]. *)

let int_compare (a : int) b = compare a b

(* Below this length the constant costs of counting passes lose to the
   stdlib's in-place sort; measured on the `u*n+v` key distribution the
   crossover sits well under this, so the threshold is conservative. *)
let radix_threshold = 512

(* LSD radix sort, base 256, on non-negative keys. One scratch array of
   [len] plus one 257-slot count buffer reused across passes; the number
   of passes is the byte-width of the largest key, so graph keys bounded
   by n^2 take ceil(2*log2(n)/8) passes instead of the comparison sort's
   log-factor of generic-compare calls. Replaces [Array.sort] in the
   `graph.sort` phase (ISSUE 7 / ROADMAP allocation offensive). Both
   scratch buffers are arena borrows (PERFORMANCE.md): the sort is a
   leaf, so the keys are exclusive to this call site, and repeated
   freezes of same-sized key sets reuse the same buffers. *)
let radix_sort_nonneg a =
  let len = Array.length a in
  if len > 1 then begin
    let max_key = ref 0 in
    for i = 0 to len - 1 do
      if a.(i) > !max_key then max_key := a.(i)
    done;
    let arena = Stdx.Scratch.domain () in
    let buf = Stdx.Scratch.dirty_ints arena "cset.radix-buf" len in
    let count = Stdx.Scratch.dirty_ints arena "cset.radix-count" 257 in
    let src = ref a and dst = ref buf in
    let shift = ref 0 in
    while !shift = 0 || !max_key lsr !shift > 0 do
      Array.fill count 0 257 0;
      let s = !src and d = !dst in
      let sh = !shift in
      for i = 0 to len - 1 do
        let b = (s.(i) lsr sh) land 0xff in
        count.(b + 1) <- count.(b + 1) + 1
      done;
      for b = 1 to 256 do
        count.(b) <- count.(b) + count.(b - 1)
      done;
      for i = 0 to len - 1 do
        let key = s.(i) in
        let b = (key lsr sh) land 0xff in
        d.(count.(b)) <- key;
        count.(b) <- count.(b) + 1
      done;
      let t = !src in
      src := !dst;
      dst := t;
      shift := sh + 8
    done;
    if !src != a then Array.blit !src 0 a 0 len
  end

let sort_keys a =
  if Array.length a < radix_threshold then Array.sort int_compare a else radix_sort_nonneg a

(* Number of distinct values in a sorted array. *)
let count_distinct keys =
  let count = ref 0 and last = ref min_int in
  Array.iter
    (fun key ->
      if key <> !last then begin
        incr count;
        last := key
      end)
    keys;
  !count

(* [iter_distinct f keys] applies [f] to each distinct value of a sorted
   array, in order. *)
let iter_distinct f keys =
  let last = ref min_int in
  Array.iter
    (fun key ->
      if key <> !last then begin
        f key;
        last := key
      end)
    keys

(* The merged neighbour CSR of an undirected edge list in lexicographic
   (eu, ev) order with eu < ev: count degrees, prefix-sum, then scatter
   both directions. Scanning edges lexicographically appends, for every
   row w, first the smaller neighbours (edges (x, w), x ascending) and
   then the larger ones (edges (w, y), y ascending), so each row comes
   out sorted without a per-row sort. *)
let neighbor_csr ~n ~eu ~ev =
  let m = Array.length eu in
  let row_start = Array.make (n + 1) 0 in
  for i = 0 to m - 1 do
    row_start.(eu.(i) + 1) <- row_start.(eu.(i) + 1) + 1;
    row_start.(ev.(i) + 1) <- row_start.(ev.(i) + 1) + 1
  done;
  for v = 1 to n do
    row_start.(v) <- row_start.(v) + row_start.(v - 1)
  done;
  let col = Array.make (2 * m) 0 in
  (* The write cursors are a throwaway copy of the prefix sums — an arena
     borrow, not an allocation, since they never escape the fill. *)
  let cursor = Stdx.Scratch.dirty_ints (Stdx.Scratch.domain ()) "cset.neighbor-cursor" (max n 1) in
  Array.blit row_start 0 cursor 0 (max n 1);
  for i = 0 to m - 1 do
    let u = eu.(i) and v = ev.(i) in
    col.(cursor.(u)) <- v;
    cursor.(u) <- cursor.(u) + 1;
    col.(cursor.(v)) <- u;
    cursor.(v) <- cursor.(v) + 1
  done;
  (row_start, col)

(* Incidence CSR of a fixed column: for each codomain element, the domain
   elements mapping to it, ascending (scatter in domain order). *)
let incidence_of_fixed ~cod_count vals =
  let dom_count = Array.length vals in
  let row = Array.make (cod_count + 1) 0 in
  for i = 0 to dom_count - 1 do
    row.(vals.(i) + 1) <- row.(vals.(i) + 1) + 1
  done;
  for v = 1 to cod_count do
    row.(v) <- row.(v) + row.(v - 1)
  done;
  let ids = Array.make dom_count 0 in
  let cursor =
    Stdx.Scratch.dirty_ints (Stdx.Scratch.domain ()) "cset.incidence-fixed-cursor"
      (max cod_count 1)
  in
  Array.blit row 0 cursor 0 (max cod_count 1);
  for i = 0 to dom_count - 1 do
    let v = vals.(i) in
    ids.(cursor.(v)) <- i;
    cursor.(v) <- cursor.(v) + 1
  done;
  (row, ids)

(* Incidence CSR of a variable column: one entry per (row, value)
   occurrence, domain ids ascending within each codomain row. *)
let incidence_of_segments ~cod_count ~seg_row ~seg_val =
  let dom_count = Array.length seg_row - 1 in
  let total = Array.length seg_val in
  let row = Array.make (cod_count + 1) 0 in
  for i = 0 to total - 1 do
    row.(seg_val.(i) + 1) <- row.(seg_val.(i) + 1) + 1
  done;
  for v = 1 to cod_count do
    row.(v) <- row.(v) + row.(v - 1)
  done;
  let ids = Array.make total 0 in
  let cursor =
    Stdx.Scratch.dirty_ints (Stdx.Scratch.domain ()) "cset.incidence-seg-cursor"
      (max cod_count 1)
  in
  Array.blit row 0 cursor 0 (max cod_count 1);
  for e = 0 to dom_count - 1 do
    for idx = seg_row.(e) to seg_row.(e + 1) - 1 do
      let v = seg_val.(idx) in
      ids.(cursor.(v)) <- e;
      cursor.(v) <- cursor.(v) + 1
    done
  done;
  (row, ids)

(** The schema-driven columnar incidence store.

    A frozen store is a set of immutable flat int columns described by a
    {!Schema.t}: per part an element count, per morphism either one value
    column ([Fixed]) or a CSR segment pair ([Variable]), and — for
    morphisms the schema marks [indexed] — an incident-lookup CSR from
    codomain elements back to the domain rows touching them.

    All construction funnels through one sort + dedup + index pipeline:
    rows of a relation part accumulate in a mutable {!Builder}, then
    {!Builder.freeze} sorts them (a packed-int radix sort when every
    column of the part is [Fixed] and a row fits one native int — the
    generalisation of the historical graph [u*n + v] key pipeline — or a
    lexicographic row sort otherwise), collapses duplicates, and splits
    the survivors into columns. The pipeline phases run inside trace
    spans [<span_prefix>.sort] / [<span_prefix>.dedup] /
    [<span_prefix>.csr-fill], so a graph, a hypergraph, and any future
    instance share one tracing and benchmarking surface.
    [Dgraph.Graph] and [Dgraph.Hypergraph] are the two in-tree
    instances. *)

type t
(** A frozen store: immutable once built. *)

val schema : t -> Schema.t

val count : t -> int -> int
(** Element count of a part (by schema index). For relation parts this is
    the post-dedup row count. *)

val fixed_column : t -> int -> int array
(** The value column of a [Fixed] morphism (by schema index), length
    [count t (dom)]. The returned array is the store's own — callers must
    not mutate it. Raises [Invalid_argument] on a [Variable] morphism. *)

val segments : t -> int -> int array * int array
(** [(row, vals)] of a [Variable] morphism: row [i]'s values are
    [vals.(row.(i)) .. vals.(row.(i+1)-1)]. Arrays are the store's own —
    callers must not mutate them. Raises [Invalid_argument] on a [Fixed]
    morphism. *)

val incidence : t -> int -> int array * int array
(** [(row, dom_ids)] of an [indexed] morphism's incident-lookup CSR:
    for codomain element [v], the domain rows touching it are
    [dom_ids.(row.(v)) .. dom_ids.(row.(v+1)-1)], ascending. Raises
    [Invalid_argument] when the schema does not index the morphism. *)

val equal : t -> t -> bool
(** Same schema (physically), counts and columns. *)

(** Mutable row accumulator for the relation parts of a schema. Create
    with the object-part counts, [add_row] (or [add_packed]) in any
    order — duplicate rows are fine — then [freeze] once. *)
module Builder : sig
  type store := t

  type t

  val create : ?capacity:int -> Schema.t -> counts:int array -> t
  (** [create schema ~counts] is an empty builder; [counts] gives the
      element count of every part by schema index (entries for relation
      parts are ignored — their counts are determined at freeze).
      [capacity] (default 16) pre-sizes the row stores. *)

  val length : t -> part:int -> int
  (** Rows added to a relation part so far (before deduplication). *)

  val add_row : t -> part:int -> int array -> unit
  (** Append one row: the part's [Fixed] column values in schema order,
      then — when the part has a [Variable] column — its value tail.
      Validates width and codomain ranges; raises [Invalid_argument]
      otherwise, or when [part] is not a relation part. The array is
      copied; the caller may reuse it. *)

  val add_packed : t -> part:int -> int -> unit
  (** Fast path for packable parts (all columns [Fixed], rows fitting one
      native int): append a pre-packed row-major key — for a graph edge
      part over [n] vertices, exactly the historical [u*n + v]. No
      per-value validation beyond the key range; raises
      [Invalid_argument] when the part is not packed. *)

  val freeze : ?span_prefix:string -> t -> store
  (** Sort + dedup every relation part and build the indexed morphisms'
      incidence CSRs, inside [<span_prefix>.sort] / [.dedup] /
      [.csr-fill] trace spans (default prefix ["cset"]). The builder is
      consumed: using it after [freeze] is unspecified. *)
end

val freeze_keys :
  ?span_prefix:string -> Schema.t -> part:int -> counts:int array -> int array -> int -> t
(** [freeze_keys schema ~part ~counts keys len] runs the packed pipeline
    directly over the first [len] entries of a caller-owned key array
    (destroyed by sorting) — the zero-copy entry [Dgraph.Graph.of_keys]
    feeds. [part] must be the schema's only relation part and packable
    under [counts]; raises [Invalid_argument] otherwise. *)

(** A pre-built column for {!unsafe_of_columns}, by morphism arity. *)
type column = Fixed_col of int array | Seg_col of int array * int array

val unsafe_of_columns : Schema.t -> counts:int array -> columns:column array -> t
(** Adopt already-sorted, already-deduplicated columns without re-running
    the pipeline (the [Graph.of_sorted_csr] / [disjoint_union] fast
    paths). Only shapes are checked; row order and dedup are trusted, and
    the arrays are adopted, not copied. Incidence CSRs of indexed
    morphisms are still built. *)

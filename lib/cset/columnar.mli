(** Columnar freeze primitives: key sorting, deduplication helpers and
    CSR index fills.

    These are the allocation-disciplined interior loops of
    {!Store.freeze} (and, through it, [Dgraph.Graph.of_keys]): plain int
    arrays in, plain int arrays out, no closures on the hot paths. Their
    internal scratch (the radix sort's swap buffer and byte counters,
    the CSR fills' write cursors) is borrowed from the per-domain
    {!Stdx.Scratch} arena rather than allocated, so repeated freezes of
    same-shaped inputs allocate only their results — see PERFORMANCE.md
    for the ownership contract and the reserved key names. *)

val sort_keys : int array -> unit
(** Sort non-negative int keys ascending, in place. Large arrays (length
    [>= 512]) take an LSD base-256 radix sort whose pass count is the
    byte-width of the largest key — on [u*n+v] edge keys this replaces
    the generic comparison sort's [O(len log len)] compare calls with
    [ceil(bits/8)] counting passes over the data (one scratch array of
    the same length). Small arrays fall back to [Array.sort]. The result
    is identical either way. Scratch is an arena borrow (keys
    ["cset.radix-buf"] / ["cset.radix-count"]). *)

val radix_sort_nonneg : int array -> unit
(** The radix sort itself, without the small-array fallback — exposed for
    tests pinning [sort_keys]'s equivalence to [Array.sort]. *)

val count_distinct : int array -> int
(** Number of distinct values in an ascending-sorted array (containing no
    [min_int]). *)

val iter_distinct : (int -> unit) -> int array -> unit
(** Apply a function to each distinct value of an ascending-sorted array
    (containing no [min_int]), in order. *)

val neighbor_csr : n:int -> eu:int array -> ev:int array -> int array * int array
(** [(row_start, col)] of the merged undirected neighbour CSR of the
    normalised edge columns ([eu.(i) < ev.(i)], lexicographic order):
    [row_start] has length [n+1], each row of [col] is sorted ascending.
    One counting pass, one prefix sum, one scatter — no per-row sort. *)

val incidence_of_fixed : cod_count:int -> int array -> int array * int array
(** [(row_start, dom_ids)] of a fixed column's incidence index: for each
    codomain element, the domain elements mapping to it, ascending. *)

val incidence_of_segments :
  cod_count:int -> seg_row:int array -> seg_val:int array -> int array * int array
(** Incidence index of a variable column ([seg_row]/[seg_val] CSR over
    domain elements): one entry per (row, value) occurrence, domain ids
    ascending within each codomain row. *)

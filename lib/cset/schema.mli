(** Schema descriptions for the columnar incidence store.

    A schema names {e part kinds} (e.g. ["vertex"], ["edge"]) and typed
    {e morphism columns} between them (e.g. ["src"]/["dst"] from edges to
    vertices, or a variable-arity ["pins"] incidence column for
    hypergraphs) — the C-set pattern specialised to what the freeze
    pipeline needs. A part that is the domain of at least one morphism is
    a {e relation part}: its elements are the rows the {!Store.Builder}
    accumulates and {!Store.freeze} sorts and deduplicates. Every other
    part is an {e object part} whose element count is fixed at build
    time. Schemas are immutable descriptions; validation happens once in
    {!make}. *)

(** Column shape: [Fixed] stores exactly one codomain value per domain
    element; [Variable] stores a sorted segment of values per domain
    element (CSR-style). *)
type arity = Fixed | Variable

type morphism = {
  m_name : string;  (** Column name, unique within the schema. *)
  m_dom : string;  (** Domain part (the rows the column belongs to). *)
  m_cod : string;  (** Codomain part (the values the column holds). *)
  m_arity : arity;
  m_indexed : bool;
      (** Whether {!Store.freeze} builds the incident-lookup CSR index
          (codomain element -> domain elements) for this column. *)
}

type t

val fixed : ?indexed:bool -> dom:string -> cod:string -> string -> morphism
(** [fixed ~dom ~cod name] declares a one-value-per-row column;
    [indexed] (default [false]) requests the incidence index. *)

val variable : ?indexed:bool -> dom:string -> cod:string -> string -> morphism
(** [variable ~dom ~cod name] declares a variable-arity column — each row
    carries a segment of codomain values (a hyperedge's pins). *)

val make : parts:string list -> morphisms:morphism list -> t
(** Validates and freezes a schema. Raises [Invalid_argument] on empty or
    duplicate names, morphisms over unknown parts, more than one variable
    column per part, or a fixed column declared after a variable one
    (rows are encoded as all fixed values then the variable tail). *)

val parts : t -> string array
(** Part names, in declaration order (a fresh copy). *)

val n_parts : t -> int
val n_morphisms : t -> int

val part_index : t -> string -> int
(** Index of a part by name; raises [Invalid_argument] when unknown. *)

val find_part : t -> string -> int option
val part_name : t -> int -> string

val morphism_index : t -> string -> int
(** Index of a morphism by name; raises [Invalid_argument] when unknown. *)

val find_morphism : t -> string -> int option
val morphism : t -> int -> morphism

val dom : t -> int -> int
(** Domain part index of a morphism. *)

val cod : t -> int -> int
(** Codomain part index of a morphism. *)

val morphisms_of_part : t -> int -> int array
(** Morphism indices whose domain is the given part, in declaration order
    — the columns of one row of that part. *)

val is_relation_part : t -> int -> bool
(** Whether the part is the domain of at least one morphism. *)

val variable_morphism : t -> int -> int option
(** The part's variable column, if it has one (always last in row order). *)

val fixed_morphisms : t -> int -> int array
(** The part's fixed columns, in row order. *)

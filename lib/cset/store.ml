(* The schema-driven columnar incidence store (DESIGN.md §11).

   A frozen store holds, per part, an element count, and per morphism
   either one flat value column (Fixed) or a CSR segment pair (Variable),
   plus — for morphisms the schema marks [indexed] — an incident-lookup
   CSR from codomain elements back to the domain rows touching them.

   All construction funnels through one sort+dedup+index pipeline
   ([freeze] / [freeze_keys]): rows of a relation part are accumulated
   mutably ([Builder]), sorted (packed-int radix sort when every column
   of the part is Fixed and the row fits one native int; lexicographic
   row sort otherwise), deduplicated, and split into immutable columns.
   [Dgraph.Graph] instantiates this with parts vertex/edge and fixed
   src/dst columns — its packed keys are exactly the historical
   [u*n + v] encoding — and [Dgraph.Hypergraph] with a variable,
   indexed pins column. The pipeline phases run inside trace spans
   [<prefix>.sort] / [<prefix>.dedup] / [<prefix>.csr-fill], so every
   instance shares one tracing/bench surface. *)

module S = Schema

type t = {
  schema : S.t;
  counts : int array;
  fixed : int array array;  (* per morphism; [||] for Variable *)
  seg_row : int array array;  (* per morphism; [||] for Fixed *)
  seg_val : int array array;
  inc_row : int array array;  (* per morphism; [||] unless indexed *)
  inc_ids : int array array;
}

let schema t = t.schema
let count t p = t.counts.(p)

let fixed_column t mi =
  match (S.morphism t.schema mi).S.m_arity with
  | S.Fixed -> t.fixed.(mi)
  | S.Variable -> invalid_arg "Store.fixed_column: variable-arity morphism"

let segments t mi =
  match (S.morphism t.schema mi).S.m_arity with
  | S.Variable -> (t.seg_row.(mi), t.seg_val.(mi))
  | S.Fixed -> invalid_arg "Store.segments: fixed-arity morphism"

let incidence t mi =
  if not (S.morphism t.schema mi).S.m_indexed then
    invalid_arg "Store.incidence: morphism not indexed";
  (t.inc_row.(mi), t.inc_ids.(mi))

(* ------------------------------------------------------------------ *)
(* Packing                                                             *)

(* A relation part packs into single-int keys when all its columns are
   Fixed and the row-major product of codomain counts fits a native int.
   Strides are row-major so the packed order is lexicographic row order
   — and so a graph edge (u, v) packs to the historical [u*n + v]. *)
let packing schema counts p =
  match S.variable_morphism schema p with
  | Some _ -> None
  | None ->
      let ms = S.morphisms_of_part schema p in
      let k = Array.length ms in
      if k = 0 then None
      else begin
        let cods = Array.map (fun mi -> counts.(S.cod schema mi)) ms in
        let ok = ref true in
        let total = ref 1 in
        (* A zero-count codomain packs trivially: no row can exist, so
           [total] is 0 and [add_packed] rejects every key. *)
        Array.iter
          (fun c ->
            if c = 0 || !total = 0 then total := 0
            else if !total > max_int / c then ok := false
            else total := !total * c)
          cods;
        if not !ok then None
        else begin
          let strides = Array.make k 1 in
          for j = k - 2 downto 0 do
            strides.(j) <- strides.(j + 1) * cods.(j + 1)
          done;
          Some (strides, cods, !total)
        end
      end

(* ------------------------------------------------------------------ *)
(* Freezing                                                            *)

(* Shared incidence pass: build the incident-lookup CSR of every indexed
   morphism, inside one <prefix>.csr-fill span (emitted only when the
   schema asks for at least one index). *)
let build_incidence ~span_prefix schema counts fixed seg_row seg_val =
  let nm = S.n_morphisms schema in
  let inc_row = Array.make nm [||] and inc_ids = Array.make nm [||] in
  let any = ref false in
  for mi = 0 to nm - 1 do
    if (S.morphism schema mi).S.m_indexed then any := true
  done;
  if !any then begin
    Stdx.Trace.begin_ (span_prefix ^ ".csr-fill");
    for mi = 0 to nm - 1 do
      let m = S.morphism schema mi in
      if m.S.m_indexed then begin
        let cod_count = counts.(S.cod schema mi) in
        let row, ids =
          match m.S.m_arity with
          | S.Fixed -> Columnar.incidence_of_fixed ~cod_count fixed.(mi)
          | S.Variable ->
              Columnar.incidence_of_segments ~cod_count ~seg_row:seg_row.(mi)
                ~seg_val:seg_val.(mi)
        in
        inc_row.(mi) <- row;
        inc_ids.(mi) <- ids
      end
    done;
    Stdx.Trace.end_ ()
  end;
  (inc_row, inc_ids)

(* Packed-part pipeline over a caller-owned key array (destroyed by
   sorting) — the generalisation of the historical [Graph.of_keys]. *)
let freeze_packed_part ~span_prefix schema counts p ~strides ~cods keys len =
  let keys = if len = Array.length keys then keys else Array.sub keys 0 len in
  Stdx.Trace.begin_ (span_prefix ^ ".sort");
  Columnar.sort_keys keys;
  Stdx.Trace.end_ ();
  Stdx.Trace.begin_ (span_prefix ^ ".dedup");
  let m = Columnar.count_distinct keys in
  let ms = S.morphisms_of_part schema p in
  let k = Array.length ms in
  let cols = Array.init k (fun _ -> Array.make m 0) in
  let i = ref 0 in
  Columnar.iter_distinct
    (fun key ->
      for j = 0 to k - 1 do
        cols.(j).(!i) <- key / strides.(j) mod cods.(j)
      done;
      incr i)
    keys;
  Stdx.Trace.end_ ();
  counts.(p) <- m;
  (ms, cols)

(* Row-buffer pipeline: lexicographic sort of row indices, adjacent
   dedup, then split into fixed columns plus the variable tail. *)
let freeze_rows_part ~span_prefix schema counts p ~nfixed ~data ~offs ~rlen =
  let row_len i = (if i + 1 < rlen then offs.(i + 1) else offs.(rlen)) - offs.(i) in
  let compare_rows a b =
    let la = row_len a and lb = row_len b in
    let oa = offs.(a) and ob = offs.(b) in
    let rec go j =
      if j >= la || j >= lb then compare la lb
      else
        let c = compare (data.(oa + j) : int) data.(ob + j) in
        if c <> 0 then c else go (j + 1)
    in
    go 0
  in
  let order = Array.init rlen (fun i -> i) in
  Stdx.Trace.begin_ (span_prefix ^ ".sort");
  Array.sort compare_rows order;
  Stdx.Trace.end_ ();
  Stdx.Trace.begin_ (span_prefix ^ ".dedup");
  let keep = Array.make rlen false in
  let m = ref 0 in
  let total_var = ref 0 in
  for i = 0 to rlen - 1 do
    if i = 0 || compare_rows order.(i - 1) order.(i) <> 0 then begin
      keep.(i) <- true;
      incr m;
      total_var := !total_var + row_len order.(i) - nfixed
    end
  done;
  let m = !m in
  let ms = S.morphisms_of_part schema p in
  let has_var = S.variable_morphism schema p <> None in
  let cols = Array.init nfixed (fun _ -> Array.make m 0) in
  let seg_row = if has_var then Array.make (m + 1) 0 else [||] in
  let seg_val = if has_var then Array.make !total_var 0 else [||] in
  let out = ref 0 and vout = ref 0 in
  for i = 0 to rlen - 1 do
    if keep.(i) then begin
      let r = order.(i) in
      let o = offs.(r) and l = row_len r in
      for j = 0 to nfixed - 1 do
        cols.(j).(!out) <- data.(o + j)
      done;
      if has_var then begin
        for j = nfixed to l - 1 do
          seg_val.(!vout) <- data.(o + j);
          incr vout
        done;
        seg_row.(!out + 1) <- !vout
      end;
      incr out
    end
  done;
  Stdx.Trace.end_ ();
  counts.(p) <- m;
  (ms, cols, seg_row, seg_val)

(* ------------------------------------------------------------------ *)
(* Builder                                                             *)

module Builder = struct
  type store = t

  type packed = {
    strides : int array;
    cods : int array;
    total : int;
    mutable keys : int array;
    mutable len : int;
  }

  type rows = {
    nfixed : int;
    fixed_cods : int array;
    var_cod : int;  (* -1 when the part has no variable column *)
    mutable data : int array;
    mutable dlen : int;
    mutable offs : int array;
    mutable rlen : int;
  }

  type repr = Packed of packed | Rows of rows

  type t = { schema : S.t; counts : int array; reprs : repr option array }

  let create ?(capacity = 16) schema ~counts =
    if Array.length counts <> S.n_parts schema then
      invalid_arg "Store.Builder.create: counts length mismatch";
    Array.iter (fun c -> if c < 0 then invalid_arg "Store.Builder.create: negative count") counts;
    let counts = Array.copy counts in
    let capacity = max capacity 1 in
    let reprs =
      Array.init (S.n_parts schema) (fun p ->
          if not (S.is_relation_part schema p) then None
          else begin
            counts.(p) <- 0;
            match packing schema counts p with
            | Some (strides, cods, total) ->
                Some (Packed { strides; cods; total; keys = Array.make capacity 0; len = 0 })
            | None ->
                let fixed_ms = S.fixed_morphisms schema p in
                let fixed_cods = Array.map (fun mi -> counts.(S.cod schema mi)) fixed_ms in
                let var_cod =
                  match S.variable_morphism schema p with
                  | Some mi -> counts.(S.cod schema mi)
                  | None -> -1
                in
                Some
                  (Rows
                     {
                       nfixed = Array.length fixed_ms;
                       fixed_cods;
                       var_cod;
                       data = Array.make (capacity * 4) 0;
                       dlen = 0;
                       offs = Array.make capacity 0;
                       rlen = 0;
                     })
          end)
    in
    { schema; counts; reprs }

  let repr b part =
    match b.reprs.(part) with
    | Some r -> r
    | None -> invalid_arg "Store.Builder: not a relation part"

  let length b ~part =
    match repr b part with Packed p -> p.len | Rows r -> r.rlen

  let push_key p key =
    if p.len = Array.length p.keys then begin
      let bigger = Array.make (2 * p.len) 0 in
      Array.blit p.keys 0 bigger 0 p.len;
      p.keys <- bigger
    end;
    p.keys.(p.len) <- key;
    p.len <- p.len + 1
    [@@inline]

  let add_packed b ~part key =
    match repr b part with
    | Packed p ->
        if key < 0 || key >= p.total then invalid_arg "Store.Builder.add_packed: key out of range";
        push_key p key
    | Rows _ -> invalid_arg "Store.Builder.add_packed: part is not packed"

  let add_row b ~part vals =
    match repr b part with
    | Packed p ->
        let k = Array.length p.strides in
        if Array.length vals <> k then invalid_arg "Store.Builder.add_row: row width mismatch";
        let key = ref 0 in
        for j = 0 to k - 1 do
          let v = vals.(j) in
          if v < 0 || v >= p.cods.(j) then
            invalid_arg "Store.Builder.add_row: value out of range";
          key := !key + (v * p.strides.(j))
        done;
        push_key p !key
    | Rows r ->
        let l = Array.length vals in
        if l < r.nfixed then invalid_arg "Store.Builder.add_row: row width mismatch";
        if l > r.nfixed && r.var_cod < 0 then
          invalid_arg "Store.Builder.add_row: row width mismatch";
        for j = 0 to l - 1 do
          let cod = if j < r.nfixed then r.fixed_cods.(j) else r.var_cod in
          if vals.(j) < 0 || vals.(j) >= cod then
            invalid_arg "Store.Builder.add_row: value out of range"
        done;
        if r.rlen = Array.length r.offs then begin
          let bigger = Array.make (2 * r.rlen) 0 in
          Array.blit r.offs 0 bigger 0 r.rlen;
          r.offs <- bigger
        end;
        r.offs.(r.rlen) <- r.dlen;
        r.rlen <- r.rlen + 1;
        if r.dlen + l > Array.length r.data then begin
          let bigger = Array.make (max (2 * Array.length r.data) (r.dlen + l)) 0 in
          Array.blit r.data 0 bigger 0 r.dlen;
          r.data <- bigger
        end;
        Array.blit vals 0 r.data r.dlen l;
        r.dlen <- r.dlen + l

  let freeze ?(span_prefix = "cset") b : store =
    let schema = b.schema in
    let nm = S.n_morphisms schema in
    let counts = Array.copy b.counts in
    let fixed = Array.make nm [||] in
    let seg_row = Array.make nm [||] and seg_val = Array.make nm [||] in
    Array.iteri
      (fun p repr ->
        match repr with
        | None -> ()
        | Some (Packed pk) ->
            let ms, cols =
              freeze_packed_part ~span_prefix schema counts p ~strides:pk.strides ~cods:pk.cods
                pk.keys pk.len
            in
            Array.iteri (fun j mi -> fixed.(mi) <- cols.(j)) ms
        | Some (Rows r) ->
            (* Seal the offsets array so offs.(rlen) is the data length. *)
            let offs =
              if r.rlen < Array.length r.offs then r.offs
              else begin
                let bigger = Array.make (r.rlen + 1) 0 in
                Array.blit r.offs 0 bigger 0 r.rlen;
                bigger
              end
            in
            offs.(r.rlen) <- r.dlen;
            let ms, cols, srow, sval =
              freeze_rows_part ~span_prefix schema counts p ~nfixed:r.nfixed ~data:r.data ~offs
                ~rlen:r.rlen
            in
            Array.iteri
              (fun j mi -> if j < r.nfixed then fixed.(mi) <- cols.(j))
              ms;
            (match S.variable_morphism schema p with
            | Some mi ->
                seg_row.(mi) <- srow;
                seg_val.(mi) <- sval
            | None -> ()))
      b.reprs;
    let inc_row, inc_ids = build_incidence ~span_prefix schema counts fixed seg_row seg_val in
    { schema; counts; fixed; seg_row; seg_val; inc_row; inc_ids }
end

(* ------------------------------------------------------------------ *)
(* Direct entries                                                      *)

let freeze_keys ?(span_prefix = "cset") schema ~part ~counts keys len =
  if Array.length counts <> S.n_parts schema then
    invalid_arg "Store.freeze_keys: counts length mismatch";
  let counts = Array.copy counts in
  for p = 0 to S.n_parts schema - 1 do
    if p <> part && S.is_relation_part schema p then
      invalid_arg "Store.freeze_keys: schema has other relation parts"
  done;
  match packing schema counts part with
  | None -> invalid_arg "Store.freeze_keys: part is not packable"
  | Some (strides, cods, _total) ->
      let nm = S.n_morphisms schema in
      let fixed = Array.make nm [||] in
      let seg_row = Array.make nm [||] and seg_val = Array.make nm [||] in
      let ms, cols =
        freeze_packed_part ~span_prefix schema counts part ~strides ~cods keys len
      in
      Array.iteri (fun j mi -> fixed.(mi) <- cols.(j)) ms;
      let inc_row, inc_ids = build_incidence ~span_prefix schema counts fixed seg_row seg_val in
      { schema; counts; fixed; seg_row; seg_val; inc_row; inc_ids }

type column = Fixed_col of int array | Seg_col of int array * int array

let unsafe_of_columns schema ~counts ~columns =
  if Array.length counts <> S.n_parts schema then
    invalid_arg "Store.unsafe_of_columns: counts length mismatch";
  if Array.length columns <> S.n_morphisms schema then
    invalid_arg "Store.unsafe_of_columns: columns length mismatch";
  let counts = Array.copy counts in
  let nm = S.n_morphisms schema in
  let fixed = Array.make nm [||] in
  let seg_row = Array.make nm [||] and seg_val = Array.make nm [||] in
  Array.iteri
    (fun mi col ->
      match (col, (S.morphism schema mi).S.m_arity) with
      | Fixed_col vals, S.Fixed -> fixed.(mi) <- vals
      | Seg_col (row, vals), S.Variable ->
          seg_row.(mi) <- row;
          seg_val.(mi) <- vals
      | _ -> invalid_arg "Store.unsafe_of_columns: column shape mismatch")
    columns;
  let inc_row, inc_ids = build_incidence ~span_prefix:"cset" schema counts fixed seg_row seg_val in
  { schema; counts; fixed; seg_row; seg_val; inc_row; inc_ids }

let equal a b =
  a.schema == b.schema && a.counts = b.counts && a.fixed = b.fixed && a.seg_row = b.seg_row
  && a.seg_val = b.seg_val

module Graph = Dgraph.Graph

type report = {
  all_matchings : bool;
  equal_sizes : bool;
  edge_partition : bool;
  all_induced : bool;
}

let check graph matchings =
  let n = Graph.n graph in
  let all_matchings =
    Array.for_all
      (fun m ->
        let seen = Stdx.Bitset.create n in
        Array.for_all
          (fun (u, v) ->
            if u = v || Stdx.Bitset.mem seen u || Stdx.Bitset.mem seen v then false
            else begin
              Stdx.Bitset.add seen u;
              Stdx.Bitset.add seen v;
              true
            end)
          m)
      matchings
  in
  let equal_sizes =
    Array.length matchings > 0
    && Array.for_all (fun m -> Array.length m = Array.length matchings.(0)) matchings
  in
  let edge_partition =
    let counted = Hashtbl.create 256 in
    let no_dup =
      Array.for_all
        (fun m ->
          Array.for_all
            (fun (u, v) ->
              let e = Graph.normalize_edge u v in
              if Hashtbl.mem counted e then false
              else begin
                Hashtbl.replace counted e ();
                true
              end)
            m)
        matchings
    in
    no_dup
    && Hashtbl.length counted = Graph.m graph
    && Graph.fold_edges (fun u v acc -> acc && Hashtbl.mem counted (Graph.normalize_edge u v)) graph true
  in
  let all_induced =
    Array.for_all
      (fun m ->
        let endpoints = Stdx.Bitset.create n in
        Array.iter
          (fun (u, v) ->
            Stdx.Bitset.add endpoints u;
            Stdx.Bitset.add endpoints v)
          m;
        let in_class e = Array.exists (fun (a, b) -> Graph.normalize_edge a b = e) m in
        Graph.fold_edges
          (fun u v acc ->
            acc
            &&
            if Stdx.Bitset.mem endpoints u && Stdx.Bitset.mem endpoints v then
              in_class (Graph.normalize_edge u v)
            else true)
          graph true)
      matchings
  in
  { all_matchings; equal_sizes; edge_partition; all_induced }

let is_valid_rs rs =
  let report = check rs.Rs_graph.graph rs.Rs_graph.matchings in
  report.all_matchings && report.equal_sizes && report.edge_partition && report.all_induced

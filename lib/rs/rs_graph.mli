(** Ruzsa–Szemerédi graphs: graphs whose edge set partitions into [t]
    {e induced} matchings of size [r] each (Section 2.2 of the paper).

    The workhorse is {!bipartite}, the Behrend-based construction of
    Proposition 2.1 (our constants: [N = 5m], [t = m = N/5],
    [r = |A|] for a 3-AP-free [A ⊆ [m]]; the paper's [t = N/3] differs only
    in constants — see DESIGN.md §3 for the construction and proof). *)

type t = {
  graph : Dgraph.Graph.t;
  matchings : Dgraph.Graph.edge array array;  (** [matchings.(j)] is [M_j]. *)
  r : int;  (** size of every matching *)
  t_count : int;  (** number of matchings, the paper's [t] *)
}

val n : t -> int
(** Number of vertices [N]. *)

val bipartite : int -> t
(** [bipartite m] is the Behrend-based [(r, t)]-RS graph on [N = 5m]
    vertices with [t = m] and [r = |Behrend.best m|]. Matching [M_x]
    ([x ∈ [m]]) is [{(x+a, x+2a) : a ∈ A}] with left endpoints living on
    vertices [0 .. 2m-1] and right endpoints on [2m .. 5m-1].
    Requires [m >= 2]. *)

val of_matchings : n:int -> Dgraph.Graph.edge array array -> t
(** Builds an RS graph from explicit matchings. Validates that each given
    class is a matching, that all classes have equal size, that classes are
    edge-disjoint, and that each class is induced in the union graph;
    raises [Invalid_argument] otherwise. *)

val trivial : r:int -> t:int -> t
(** [t] vertex-disjoint matchings of size [r]: the degenerate RS graph on
    [N = 2rt] vertices used by the micro accounting instances. *)

val matching_vertices : t -> int -> int array
(** The [2r] vertices incident on matching [j], sorted ascending — the
    paper's [V*] when [j = j*]. A fresh array (the endpoints of a matching
    are pairwise distinct, so no dedup is needed). *)

val matching_index_of_edge : t -> Dgraph.Graph.edge -> int option
(** Which matching an edge belongs to ([None] for non-edges). *)

(** Parameter arithmetic for Proposition 2.1 and Theorem 1.

    Everything in the lower-bound proof is parametric in the RS parameters
    [(N, r, t)] and the number of copies [k]; this module centralises the
    arithmetic so the experiment harness, CLI and benches all report the
    same numbers. *)

type rs_row = {
  m : int;  (** construction parameter *)
  big_n : int;  (** vertices [N = 5m] *)
  r : int;  (** induced-matching size [|A|] *)
  t : int;  (** number of matchings [= m] *)
  edges : int;  (** [r * t] *)
  density : float;  (** [edges / (N choose 2)] *)
  r_over_n : float;  (** the [e^{-Θ(√log N)}] decay the table exhibits *)
}

val rs_row : int -> rs_row
(** Builds (and validates) the RS graph for parameter [m] and measures it. *)

type bound = {
  n_vertices : int;  (** [n = N - 2r + 2rk] of [D_MM] *)
  k : int;
  info_needed : float;  (** Lemma 3.3: [k·r / 6] bits *)
  public_players : int;  (** [N - 2r] *)
  unique_players : int;  (** [k · N] *)
  bits_lower_bound : float;
      (** Theorem 1's final arithmetic:
          [b >= (k·r/6) / (|P| + k·N/t)] — with [k = t] this is the paper's
          [b >= r/36] up to the constants of our construction. *)
  trivial_upper_bound : float;  (** [Θ(n log n)]: full neighbourhood *)
  two_round_upper_bound : float;  (** [Θ(√n · log n)]: the adaptive sketches *)
}

val bound : big_n:int -> r:int -> t:int -> k:int -> bound
val bound_of_rs : Rs_graph.t -> k:int -> bound

val behrend_rate : int -> float
(** [ln (m / |best m|) / √(ln m)]: should stay bounded as [m] grows —
    the [Θ(√log)] exponent constant of Behrend's theorem, measured. *)

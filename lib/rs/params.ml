type rs_row = {
  m : int;
  big_n : int;
  r : int;
  t : int;
  edges : int;
  density : float;
  r_over_n : float;
}

let rs_row m =
  let rs = Rs_graph.bipartite m in
  let big_n = Rs_graph.n rs in
  let edges = Dgraph.Graph.m rs.Rs_graph.graph in
  {
    m;
    big_n;
    r = rs.Rs_graph.r;
    t = rs.Rs_graph.t_count;
    edges;
    density = float_of_int edges /. (float_of_int (big_n * (big_n - 1)) /. 2.);
    r_over_n = float_of_int rs.Rs_graph.r /. float_of_int big_n;
  }

type bound = {
  n_vertices : int;
  k : int;
  info_needed : float;
  public_players : int;
  unique_players : int;
  bits_lower_bound : float;
  trivial_upper_bound : float;
  two_round_upper_bound : float;
}

let log2 x = log x /. log 2.

let bound ~big_n ~r ~t ~k =
  if k < 1 || t < 1 || r < 1 || big_n <= 2 * r then invalid_arg "Params.bound";
  let n_vertices = big_n - (2 * r) + (2 * r * k) in
  let info_needed = float_of_int (k * r) /. 6. in
  let public_players = big_n - (2 * r) in
  let unique_players = k * big_n in
  let budget_coefficient =
    (* kr/6 <= |P| b + (k N / t) b, so b >= (kr/6) / (|P| + kN/t). *)
    float_of_int public_players +. (float_of_int (k * big_n) /. float_of_int t)
  in
  let nf = float_of_int n_vertices in
  {
    n_vertices;
    k;
    info_needed;
    public_players;
    unique_players;
    bits_lower_bound = info_needed /. budget_coefficient;
    trivial_upper_bound = nf *. log2 nf;
    two_round_upper_bound = sqrt nf *. log2 nf;
  }

let bound_of_rs rs ~k =
  bound ~big_n:(Rs_graph.n rs) ~r:rs.Rs_graph.r ~t:rs.Rs_graph.t_count ~k

let behrend_rate m =
  let size = List.length (Behrend.best m) in
  if size = 0 then nan else log (float_of_int m /. float_of_int size) /. sqrt (log (float_of_int m))

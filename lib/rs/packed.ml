module Graph = Dgraph.Graph

(* A candidate matching is compatible iff (a) none of its edges exists
   already, (b) it adds no edge between endpoints of an existing matching,
   and (c) no existing edge lies between the candidate's endpoints. All
   three are exactly "every matching stays induced in the union". *)
let compatible ~edges_so_far ~endpoint_sets candidate =
  let cand_endpoints = Hashtbl.create 16 in
  List.iter
    (fun (u, v) ->
      Hashtbl.replace cand_endpoints u ();
      Hashtbl.replace cand_endpoints v ())
    candidate;
  List.for_all (fun e -> not (Hashtbl.mem edges_so_far e)) candidate
  && List.for_all
       (fun endpoints ->
         (* No candidate edge inside an existing matching's endpoint set. *)
         List.for_all
           (fun (u, v) -> not (Hashtbl.mem endpoints u && Hashtbl.mem endpoints v))
           candidate)
       endpoint_sets
  && Hashtbl.fold
       (fun e () acc ->
         (* No existing edge inside the candidate's endpoint set. *)
         acc
         &&
         let u, v = e in
         not (Hashtbl.mem cand_endpoints u && Hashtbl.mem cand_endpoints v))
       edges_so_far true

let pack rng ~big_n ~r ~tries =
  if r < 1 || 2 * r > big_n then invalid_arg "Packed.pack: 2r must fit in N";
  let edges_so_far = Hashtbl.create 256 in
  let endpoint_sets = ref [] in
  let matchings = ref [] in
  for _ = 1 to tries do
    let vertices = Stdx.Prng.sample_distinct rng (2 * r) big_n in
    Stdx.Prng.shuffle rng vertices;
    let candidate =
      List.init r (fun i -> Graph.normalize_edge vertices.(2 * i) vertices.((2 * i) + 1))
    in
    if compatible ~edges_so_far ~endpoint_sets:!endpoint_sets candidate then begin
      List.iter (fun e -> Hashtbl.replace edges_so_far e ()) candidate;
      let endpoints = Hashtbl.create 16 in
      List.iter
        (fun (u, v) ->
          Hashtbl.replace endpoints u ();
          Hashtbl.replace endpoints v ())
        candidate;
      endpoint_sets := endpoints :: !endpoint_sets;
      matchings := Array.of_list candidate :: !matchings
    end
  done;
  match !matchings with
  | [] -> None
  | ms -> Some (Rs_graph.of_matchings ~n:big_n (Array.of_list (List.rev ms)))

let achieved_t rng ~big_n ~r ~tries =
  match pack rng ~big_n ~r ~tries with
  | None -> 0
  | Some rs -> rs.Rs_graph.t_count

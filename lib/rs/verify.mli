(** Independent verification of the RS graph properties.

    {!Rs_graph.of_matchings} already validates on construction; this module
    re-derives the properties from scratch on any [(graph, matchings)] pair
    so tests do not have to trust the constructor. *)

type report = {
  all_matchings : bool;  (** each class is vertex-disjoint within itself *)
  equal_sizes : bool;
  edge_partition : bool;  (** classes are edge-disjoint and cover the graph *)
  all_induced : bool;
}

val check : Dgraph.Graph.t -> Dgraph.Graph.edge array array -> report

val is_valid_rs : Rs_graph.t -> bool
(** All four report fields hold for the graph and matchings inside. *)

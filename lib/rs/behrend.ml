let is_ap_free elements =
  let arr = Array.of_list (List.sort_uniq compare elements) in
  let set = Hashtbl.create (Array.length arr) in
  Array.iter (fun x -> Hashtbl.replace set x ()) arr;
  let ok = ref true in
  let len = Array.length arr in
  for i = 0 to len - 1 do
    for j = i + 1 to len - 1 do
      let a = arr.(i) and c = arr.(j) in
      if (a + c) mod 2 = 0 then begin
        let b = (a + c) / 2 in
        if b <> a && b <> c && Hashtbl.mem set b then ok := false
      end
    done
  done;
  !ok

(* Adding x creates an AP iff x is an endpoint (exists b in S with 2b - x in
   S, b strictly between) or x is the midpoint (exists a in S with 2x - a in
   S, a <> x). *)
let creates_ap members x =
  let cap = Stdx.Bitset.capacity members in
  let mem v = v >= 0 && v < cap && Stdx.Bitset.mem members v in
  let found = ref false in
  Stdx.Bitset.iter
    (fun b ->
      if not !found then begin
        (* x as endpoint of (x, b, 2b - x) or (2b - x, b, x) *)
        let far = (2 * b) - x in
        if b <> x && far <> b && mem far then found := true;
        (* x as midpoint of (b, x, 2x - b) *)
        let other = (2 * x) - b in
        if b <> x && other <> x && mem other then found := true
      end)
    members;
  !found

let greedy m =
  let members = Stdx.Bitset.create (m + 1) in
  let out = ref [] in
  for x = 1 to m do
    if not (creates_ap members x) then begin
      Stdx.Bitset.add members x;
      out := x :: !out
    end
  done;
  List.rev !out

(* Behrend's sphere construction for a fixed digit dimension [d]:
   digits in [0, q), value sum_i digit_i * (2q - 1)^i; vectors on the most
   popular squared-norm shell.  A 3-AP in values forces a digitwise identity
   x + z = 2 y (no carries since digits stay below (2q-1)/2 after doubling
   ... more precisely each digit of x+z is < 2q - 1), and the parallelogram
   law on a sphere forces x = z. *)
let behrend_dim m d =
  if d < 2 then []
  else begin
    (* Largest q with (2q - 1)^d <= m, so every value fits in [0, m]. *)
    let fits q =
      let base = (2 * q) - 1 in
      let rec pow acc i = if i = 0 then acc <= m else if acc > m then false else pow (acc * base) (i - 1) in
      pow 1 d
    in
    let q = ref 1 in
    while fits (!q + 1) do
      incr q
    done;
    let q = !q in
    if q < 2 then []
    else begin
      let base = (2 * q) - 1 in
      (* Enumerate all q^d digit vectors, bucketing values by squared norm. *)
      let shells = Hashtbl.create 97 in
      let digits = Array.make d 0 in
      let rec enumerate pos value norm =
        if pos = d then begin
          let cur = Option.value ~default:[] (Hashtbl.find_opt shells norm) in
          Hashtbl.replace shells norm (value :: cur)
        end
        else
          for digit = 0 to q - 1 do
            digits.(pos) <- digit;
            enumerate (pos + 1) ((value * base) + digit) (norm + (digit * digit))
          done
      in
      let total_vectors =
        let rec pow acc i = if i = 0 then acc else pow (acc * q) (i - 1) in
        pow 1 d
      in
      if total_vectors > 4_000_000 then []
      else begin
        enumerate 0 0 0;
        let best = ref [] in
        Hashtbl.iter (fun _ values -> if List.length values > List.length !best then best := values) shells;
        (* Shift by 1 so elements live in [1, m]. *)
        List.sort compare (List.map (fun v -> v + 1) !best)
      end
    end
  end

let behrend m =
  let candidates = List.init 7 (fun i -> behrend_dim m (i + 2)) in
  List.fold_left (fun acc c -> if List.length c > List.length acc then c else acc) [] candidates

let maximum m =
  if m > 34 then invalid_arg "Behrend.maximum: m too large for exact search";
  (* Branch and bound over elements in decreasing order. *)
  let best = ref [] in
  let members = Stdx.Bitset.create (m + 1) in
  let rec search x size current =
    if size + x < List.length !best then ()
    else if x = 0 then begin
      if size > List.length !best then best := current
    end
    else begin
      (* Branch 1: include x if legal. *)
      if not (creates_ap members x) then begin
        Stdx.Bitset.add members x;
        search (x - 1) (size + 1) (x :: current);
        Stdx.Bitset.remove members x
      end;
      (* Branch 2: skip x. *)
      search (x - 1) size current
    end
  in
  search m 0 [];
  List.sort compare !best

let best m =
  let g = greedy m and b = behrend m in
  if List.length b > List.length g then b else g

let shift c a = List.map (fun x -> x + c) a

(** Sets of integers with no 3-term arithmetic progression.

    Proposition 2.1 rests on Behrend's 1946 theorem: [\[1, m\]] contains a
    3-AP-free subset of size [m / e^{Θ(√log m)}]. We provide

    - {!behrend}: the original sphere construction (digit vectors on a
      fixed-norm shell), the asymptotically large one;
    - {!greedy}: the Erdős–Turán greedy sequence, better at small [m];
    - {!maximum}: exact optimum by branch and bound, for tiny [m] (test
      oracle);
    - {!best}: the larger of the first two, which the RS construction uses.

    All constructions return strictly increasing elements of [\[1, m\]] and
    are re-checked by {!is_ap_free} in tests. *)

val is_ap_free : int list -> bool
(** No three distinct elements [a < b < c] with [a + c = 2b]. *)

val creates_ap : Stdx.Bitset.t -> int -> bool
(** [creates_ap members x]: would adding [x] to the set create a 3-term AP?
    [members] indexes by integer value. *)

val greedy : int -> int list
(** Greedy scan of [1, 2, ..., m]. *)

val behrend : int -> int list
(** Behrend's construction, maximised over the digit dimension. *)

val maximum : int -> int list
(** Exact maximum-size AP-free subset of [\[1, m\]]; exponential time, keep
    [m <= 30] or so. *)

val best : int -> int list
(** The larger of {!greedy} and {!behrend}. *)

val shift : int -> int list -> int list
(** [shift c a] adds [c] to every element; AP-freeness is preserved. *)

(** Closure operations on RS graphs.

    The RS property is preserved by several natural operations; these give
    the accounting and test suites a cheap way to build bespoke instances
    with prescribed [(r, t)] from verified building blocks. Everything
    returned here re-validates through {!Rs_graph.of_matchings}. *)

val disjoint_union : Rs_graph.t -> Rs_graph.t -> Rs_graph.t
(** [(r, t₁)] ⊎ [(r, t₂)] = [(r, t₁ + t₂)]: matchings of the second graph
    are shifted past the first. Requires equal [r]. *)

val widen : Rs_graph.t -> Rs_graph.t -> Rs_graph.t
(** Pair matchings side by side: [(r₁, t)] ⊎ [(r₂, t)] = [(r₁ + r₂, t)]
    (matching [j] of the result is [M_j ⊎ M'_j] on disjoint vertex sets).
    Requires equal [t]. *)

val take_matchings : Rs_graph.t -> int -> Rs_graph.t
(** The sub-RS graph on the first [t'] matchings: [(r, t')]. Unused
    vertices are kept (the vertex set is unchanged). *)

val shrink_matchings : Rs_graph.t -> int -> Rs_graph.t
(** Keep only the first [r'] edges of every matching: [(r', t)]. *)

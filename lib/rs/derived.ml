module Graph = Dgraph.Graph

let shift_matchings offset matchings =
  Array.map (Array.map (fun (u, v) -> (u + offset, v + offset))) matchings

let disjoint_union a b =
  if a.Rs_graph.r <> b.Rs_graph.r then invalid_arg "Derived.disjoint_union: unequal r";
  let na = Rs_graph.n a in
  let matchings = Array.append a.Rs_graph.matchings (shift_matchings na b.Rs_graph.matchings) in
  Rs_graph.of_matchings ~n:(na + Rs_graph.n b) matchings

let widen a b =
  if a.Rs_graph.t_count <> b.Rs_graph.t_count then invalid_arg "Derived.widen: unequal t";
  let na = Rs_graph.n a in
  let shifted = shift_matchings na b.Rs_graph.matchings in
  let matchings =
    Array.init a.Rs_graph.t_count (fun j -> Array.append a.Rs_graph.matchings.(j) shifted.(j))
  in
  Rs_graph.of_matchings ~n:(na + Rs_graph.n b) matchings

let take_matchings rs t' =
  if t' < 1 || t' > rs.Rs_graph.t_count then invalid_arg "Derived.take_matchings";
  Rs_graph.of_matchings ~n:(Rs_graph.n rs) (Array.sub rs.Rs_graph.matchings 0 t')

let shrink_matchings rs r' =
  if r' < 1 || r' > rs.Rs_graph.r then invalid_arg "Derived.shrink_matchings";
  Rs_graph.of_matchings ~n:(Rs_graph.n rs)
    (Array.map (fun m -> Array.sub m 0 r') rs.Rs_graph.matchings)

module Graph = Dgraph.Graph

type t = {
  graph : Graph.t;
  matchings : Graph.edge array array;
  r : int;
  t_count : int;
}

let n rs = Graph.n rs.graph

let validate n matchings =
  let size =
    match Array.length matchings with
    | 0 -> invalid_arg "Rs_graph: no matchings"
    | _ -> Array.length matchings.(0)
  in
  if size = 0 then invalid_arg "Rs_graph: empty matchings";
  Array.iter
    (fun m -> if Array.length m <> size then invalid_arg "Rs_graph: unequal matching sizes")
    matchings;
  (* Pairwise vertex-disjointness inside each matching. *)
  Array.iter
    (fun m ->
      let seen = Stdx.Bitset.create n in
      Array.iter
        (fun (u, v) ->
          if u = v || Stdx.Bitset.mem seen u || Stdx.Bitset.mem seen v then
            invalid_arg "Rs_graph: class is not a matching";
          Stdx.Bitset.add seen u;
          Stdx.Bitset.add seen v)
        m)
    matchings;
  (* Edge-disjointness across matchings. *)
  let owner = Hashtbl.create 256 in
  Array.iteri
    (fun j m ->
      Array.iter
        (fun (u, v) ->
          let e = Graph.normalize_edge u v in
          if Hashtbl.mem owner e then invalid_arg "Rs_graph: edge in two matchings";
          Hashtbl.replace owner e j)
        m)
    matchings;
  let graph =
    let b = Graph.Builder.create ~capacity:(Hashtbl.length owner) n in
    Hashtbl.iter (fun (u, v) _ -> Graph.Builder.add_edge b u v) owner;
    Graph.Builder.freeze b
  in
  (* Induced property: any graph edge between endpoints of M_j lies in M_j. *)
  Array.iteri
    (fun j m ->
      let endpoints = Stdx.Bitset.create n in
      Array.iter
        (fun (u, v) ->
          Stdx.Bitset.add endpoints u;
          Stdx.Bitset.add endpoints v)
        m;
      Graph.iter_edges
        (fun u v ->
          if Stdx.Bitset.mem endpoints u && Stdx.Bitset.mem endpoints v then
            if Hashtbl.find owner (Graph.normalize_edge u v) <> j then
              invalid_arg "Rs_graph: matching is not induced")
        graph)
    matchings;
  (graph, size)

let of_matchings ~n matchings =
  let graph, size = validate n matchings in
  { graph; matchings = Array.map Array.copy matchings; r = size; t_count = Array.length matchings }

let bipartite m =
  if m < 2 then invalid_arg "Rs_graph.bipartite: m >= 2 required";
  let a = Array.of_list (Behrend.best m) in
  if Array.length a = 0 then invalid_arg "Rs_graph.bipartite: empty AP-free set";
  let nn = 5 * m in
  (* x in [1, m], a in A subset [1, m]; left endpoint x+a in [2, 2m] maps to
     vertex x+a-1, right endpoint x+2a in [3, 3m] maps to 2m + x + 2a - 1. *)
  let matchings =
    Array.init m (fun xi ->
        let x = xi + 1 in
        Array.map (fun av -> (x + av - 1, (2 * m) + x + (2 * av) - 1)) a)
  in
  of_matchings ~n:nn matchings

let trivial ~r ~t =
  if r < 1 || t < 1 then invalid_arg "Rs_graph.trivial";
  let matchings =
    Array.init t (fun j -> Array.init r (fun i ->
        let base = (2 * r * j) + (2 * i) in
        (base, base + 1)))
  in
  of_matchings ~n:(2 * r * t) matchings

let matching_vertices rs j =
  if j < 0 || j >= rs.t_count then invalid_arg "Rs_graph.matching_vertices";
  let mj = rs.matchings.(j) in
  let out = Array.make (2 * Array.length mj) 0 in
  Array.iteri
    (fun i (u, v) ->
      out.(2 * i) <- u;
      out.((2 * i) + 1) <- v)
    mj;
  Array.sort (fun (a : int) b -> compare a b) out;
  out

let matching_index_of_edge rs (u, v) =
  let e = Graph.normalize_edge u v in
  let found = ref None in
  Array.iteri
    (fun j m -> if Array.exists (fun (a, b) -> Graph.normalize_edge a b = e) m then found := Some j)
    rs.matchings;
  !found

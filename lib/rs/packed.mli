(** Randomized induced-matching packing: an alternative RS-graph family.

    The literature has several incomparable RS constructions (the paper
    cites [5, 32, 34, 36] besides the Behrend-based one); this module
    explores the trade-off curve empirically. Starting from an empty graph
    on [N] vertices, repeatedly draw a random perfect-ish matching on a
    random [2r]-subset and add it if the result keeps every previously
    added matching induced. The achieved [t] for a given [(N, r)] is the
    packing number this greedy process reaches — compared against the
    Behrend-based construction in experiment T2b. *)

val pack : Stdx.Prng.t -> big_n:int -> r:int -> tries:int -> Rs_graph.t option
(** [pack rng ~big_n ~r ~tries] attempts [tries] random matchings and
    keeps the compatible ones; returns [None] if not even one matching
    was placed (impossible for [2r <= big_n]). The result is validated by
    {!Rs_graph.of_matchings}, so it is a genuine RS graph. *)

val achieved_t : Stdx.Prng.t -> big_n:int -> r:int -> tries:int -> int
(** Just the number of matchings placed. *)

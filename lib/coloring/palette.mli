(** (Δ+1)-coloring by palette sparsification [Assadi–Chen–Khanna, SODA'19]
    — the polylog-sketch symmetry-breaking result the paper's Result 1 is
    contrasted against.

    With public coins, every vertex [v] draws a list [L(v)] of
    [O(log n)] colors from [\[Δ+1\]]. ACK19 shows the graph is
    [L]-list-colorable w.h.p., and the only information the referee is
    missing is the {e conflict graph}: the edges [(u, v)] with
    [L(u) ∩ L(v) ≠ ∅]. Since lists are public, each endpoint recognises
    its conflicting neighbours locally and reports them — an expected
    [O(log² n)] ids per vertex.

    [Δ] is a promise parameter (every player must know it); this matches
    the standard presentation of the sketch. *)

type outcome = {
  coloring : int array option;  (** [None] when list-coloring failed *)
  conflict_edges : int;
}

val protocol :
  n:int -> delta:int -> list_size:int -> restarts:int -> outcome Sketchmodel.Model.protocol

val run :
  Dgraph.Graph.t ->
  ?list_size:int ->
  ?restarts:int ->
  Sketchmodel.Public_coins.t ->
  outcome * Sketchmodel.Model.stats
(** Computes [Δ] from the graph (the promise), runs the one-round protocol,
    and returns the referee's outcome. Default [list_size] is
    [⌈4·ln(n+1)⌉ + 4], default [restarts] 10. *)

val is_proper : Dgraph.Graph.t -> int array -> bool
val max_color : int array -> int

module Model = Sketchmodel.Model
module Public_coins = Sketchmodel.Public_coins
module Graph = Dgraph.Graph
module Writer = Stdx.Bitbuf.Writer
module Reader = Stdx.Bitbuf.Reader

type outcome = { coloring : int array option; conflict_edges : int }

(* L(v) is a deterministic function of the public coins and v, so every
   player (and the referee) can recompute anyone's list for free. *)
let list_of coins ~delta ~list_size v =
  let rng = Public_coins.keyed coins "palette" v in
  let seen = Hashtbl.create list_size in
  let out = ref [] in
  (* Distinct colors; list_size is far below delta + 1 in the interesting
     regime, but cap defensively. *)
  let target = min list_size (delta + 1) in
  while Hashtbl.length seen < target do
    let c = Stdx.Prng.int rng (delta + 1) in
    if not (Hashtbl.mem seen c) then begin
      Hashtbl.replace seen c ();
      out := c :: !out
    end
  done;
  List.sort compare !out

let lists_intersect a b = List.exists (fun c -> List.mem c b) a

let player ~list_fn (view : Model.view) =
  let w = Writer.create () in
  let own = list_fn view.Model.vertex in
  let conflicts =
    Array.to_list view.Model.neighbors |> List.filter (fun u -> lists_intersect own (list_fn u))
  in
  Writer.int_list w conflicts;
  w

let try_color ~n ~list_fn conflict_adj order =
  let colors = Array.make n (-1) in
  let ok = ref true in
  Array.iter
    (fun v ->
      if !ok then begin
        let lv = list_fn v in
        let used = List.filter_map (fun u -> if colors.(u) >= 0 then Some colors.(u) else None) conflict_adj.(v) in
        match List.find_opt (fun c -> not (List.mem c used)) lv with
        | Some c -> colors.(v) <- c
        | None -> ok := false
      end)
    order;
  if !ok then Some colors else None

let referee ~list_fn ~restarts ~n ~sketches coins =
  let conflict_adj = Array.make n [] in
  let edge_count = ref 0 in
  Array.iteri
    (fun v r ->
      let reported = Reader.int_list r in
      List.iter
        (fun u ->
          if u >= 0 && u < n && u <> v then begin
            conflict_adj.(v) <- u :: conflict_adj.(v);
            (* Count each conflict edge once (it is reported by both
               endpoints). *)
            if v < u then incr edge_count
          end)
        reported)
    sketches;
  let rec attempt i =
    if i >= restarts then None
    else begin
      let rng = Public_coins.keyed coins "palette-order" i in
      let order = Stdx.Prng.permutation rng n in
      match try_color ~n ~list_fn conflict_adj order with
      | Some colors -> Some colors
      | None -> attempt (i + 1)
    end
  in
  { coloring = attempt 0; conflict_edges = !edge_count }

let protocol ~n ~delta ~list_size ~restarts =
  ignore n;
  (* One cache per protocol instantiation; keyed on the vertex only, so it
     is rebuilt whenever the coins change (a fresh protocol value is made
     per run). *)
  let cache : (int, (int, int list) Hashtbl.t) Hashtbl.t = Hashtbl.create 4 in
  let list_fn coins =
    let key = Public_coins.seed coins in
    let table =
      match Hashtbl.find_opt cache key with
      | Some t -> t
      | None ->
          let t = Hashtbl.create 1024 in
          Hashtbl.replace cache key t;
          t
    in
    fun v ->
      match Hashtbl.find_opt table v with
      | Some l -> l
      | None ->
          let l = list_of coins ~delta ~list_size v in
          Hashtbl.replace table v l;
          l
  in
  {
    Model.name = "palette-sparsification";
    player = (fun view coins -> player ~list_fn:(list_fn coins) view);
    referee =
      (fun ~n ~sketches coins -> referee ~list_fn:(list_fn coins) ~restarts ~n ~sketches coins);
  }

let run g ?list_size ?(restarts = 10) coins =
  let n = Graph.n g in
  let delta = max 1 (Graph.max_degree g) in
  let list_size =
    match list_size with
    | Some s -> s
    | None -> int_of_float (ceil (4. *. log (float_of_int (n + 1)))) + 4
  in
  Model.run (protocol ~n ~delta ~list_size ~restarts) g coins

let is_proper g colors =
  Array.length colors = Graph.n g
  && Array.for_all (fun c -> c >= 0) colors
  && Graph.fold_edges (fun u v acc -> acc && colors.(u) <> colors.(v)) g true

let max_color colors = Array.fold_left max 0 colors

(* Bench harness: regenerates every table/figure of DESIGN.md §4 (the
   paper's quantitative statements) and then times the computational kernel
   behind each one with Bechamel.

   Usage: dune exec bench/main.exe            (tables + micro-benches + serve)
          dune exec bench/main.exe -- tables  (tables only)
          dune exec bench/main.exe -- bench   (micro-benches only)
          dune exec bench/main.exe -- serve   (sketchd end-to-end latency)
          dune exec bench/main.exe -- streams (multipass per-round/per-pass accounting)

   The tables pass also writes BENCH_tables.json (JSON-lines: one object
   per table with id, wall-clock and rows); `--fast` shrinks sizes. *)

open Bechamel
open Toolkit
module R = Core.Exp_registry
module T = Report.Tabular

(* Regenerate every registered table (text to stdout, as `run_all` always
   did) and seed BENCH_tables.json: one JSON line per table with its id,
   wall-clock seconds, rows through the JSON renderer, and a span-derived
   per-phase breakdown so perf PRs can point at the exact phase they
   moved. Tracing is always on for this pass; each table's events are
   selected from the shared rings by their timestamp window. *)
let tables ?(fast = false) ?jobs () =
  let jobs =
    match jobs with Some j when j > 0 -> j | Some _ | None -> Stdx.Parallel.default_jobs ()
  in
  (* Larger rings than the default: a full Monte-Carlo table freezes one
     graph per trial. Oldest events drop first, so the current table's
     window is the best-preserved slice either way. *)
  Stdx.Trace.enable ~capacity:(1 lsl 18) ();
  let oc = open_out "BENCH_tables.json" in
  let total = ref 0. in
  List.iter
    (fun e ->
      let overrides = R.overrides_for ~fast e @ [ ("jobs", R.Vint jobs) ] in
      (* GC cost comes from the registry, which snapshots counters around
         the experiment body only (rendering and harness work excluded).
         The counters are domain-local, so at jobs>1 the figures cover the
         main-domain share; at jobs=1 (the CI setting) they are the full
         cost of the table. *)
      let c0 = Stdx.Trace.now_us () in
      let (tbl, gc), wall = Stdx.Parallel.timed (fun () -> R.measured_table e overrides) in
      let c1 = Stdx.Trace.now_us () in
      print_string (T.to_text tbl);
      Printf.printf "    [%s: %.2f s wall, %.2f MB alloc, %d minor / %d major GC]\n%!"
        (R.title e) wall
        (gc.R.alloc_bytes /. 1048576.)
        gc.R.minor_collections gc.R.major_collections;
      total := !total +. wall;
      let phases =
        Report.Trace_export.phase_totals ~since:c0 ~until:c1 (Stdx.Trace.dump ())
      in
      let phases_json =
        "{"
        ^ String.concat ","
            (List.map (fun (name, s) -> Printf.sprintf "%S:%s" name (T.float_repr s)) phases)
        ^ "}"
      in
      let rows = List.map (T.json_of_row tbl.T.schema) tbl.T.rows in
      Printf.fprintf oc
        "{\"id\":%S,\"title\":%S,\"wall_s\":%s,\"alloc_bytes\":%.0f,\"minor_collections\":%d,\"major_collections\":%d,\"phases\":%s,\"rows\":[%s]}\n"
        (R.id e) (R.title e) (T.float_repr wall) gc.R.alloc_bytes gc.R.minor_collections
        gc.R.major_collections phases_json (String.concat "," rows))
    (Core.Exp_all.all ());
  Printf.printf
    "\nTotal wall-clock: %.2f s (jobs=%d; every table bit-identical at any job count)\n" !total
    jobs;
  (let tr = Stdx.Trace.stats () in
   if tr.Stdx.Trace.dropped > 0 then
     Printf.printf "bench: trace rings dropped %d events; phase breakdowns undercount\n"
       tr.Stdx.Trace.dropped);
  close_out oc;
  print_endline "bench: wrote BENCH_tables.json"

(* One Test.make per experiment: the kernel that generates that table.

   [rng] is consumed only by this one-off setup below. Staged closures must
   NOT share it: Bechamel calls each closure many times, and drawing from a
   shared mutable generator would give every iteration a different input
   (measuring a drifting workload instead of one kernel). Closures that
   need randomness split a fresh generator per call, so every iteration
   re-runs the identical instance. *)
let micro_tests () =
  let rng = Stdx.Prng.create 99 in
  let fresh key = Stdx.Prng.split (Stdx.Prng.create 99) key in
  let rs25 = Rsgraph.Rs_graph.bipartite 25 in
  let rs10 = Rsgraph.Rs_graph.bipartite 10 in
  let dmm25 = Core.Hard_dist.sample rs25 rng in
  let dmm10 = Core.Hard_dist.sample rs10 rng in
  let coins = Sketchmodel.Public_coins.create 4242 in
  let g128 = Dgraph.Gen.gnp rng 128 0.25 in
  let g256 = Dgraph.Gen.gnp rng 256 0.25 in
  let g1024 = Dgraph.Gen.gnp rng 1024 0.05 in
  let bridge_g, _ = Dgraph.Gen.bridge_of_clouds rng ~half:128 ~p:0.5 in
  [
    Test.make ~name:"T1:rs-construction(m=50)"
      (Staged.stage (fun () -> ignore (Rsgraph.Rs_graph.bipartite 50)));
    Test.make ~name:"T2:behrend-best(m=2000)"
      (Staged.stage (fun () -> ignore (Rsgraph.Behrend.best 2000)));
    Test.make ~name:"T3:dmm-sample+claim(m=25)"
      (Staged.stage (fun () ->
           let dmm = Core.Hard_dist.sample rs25 (fresh 303) in
           ignore (Core.Claims.check dmm ())));
    Test.make ~name:"F4:budget-protocol(m=25,b=64)"
      (Staged.stage (fun () ->
           ignore
             (Sketchmodel.Model.run
                (Protocols.Sampled_mm.protocol ~budget_bits:64
                   ~strategy:Protocols.Sampled_mm.Uniform)
                dmm25.Core.Hard_dist.graph coins)));
    Test.make ~name:"F5:info-accounting(micro,b=4)"
      (Staged.stage (fun () ->
           ignore
             (Core.Accounting.analyze
                {
                  Core.Accounting.rs = Core.Accounting.micro_rs ();
                  k = 2;
                  bits = 4;
                  strategy = Core.Accounting.Truncate;
                  sigma_mode = Core.Accounting.Fix_sigma;
                })));
    Test.make ~name:"T6:agm-forest(n=128)"
      (Staged.stage (fun () -> ignore (Agm.Spanning_forest.run g128 coins)));
    Test.make ~name:"T6b:coloring(n=256)"
      (Staged.stage (fun () -> ignore (Coloring.Palette.run g256 coins)));
    Test.make ~name:"T6:two-round-mm(n=1024)"
      (Staged.stage (fun () -> ignore (Protocols.Two_round_mm.run g1024 coins)));
    Test.make ~name:"T6:two-round-mis(n=1024)"
      (Staged.stage (fun () -> ignore (Protocols.Two_round_mis.run g1024 coins)));
    Test.make ~name:"T8:reduction-end-to-end(m=10)"
      (Staged.stage (fun () ->
           ignore (Core.Reduction.end_to_end_cost dmm10 Protocols.Trivial.mis coins)));
    Test.make ~name:"F9:bridge(half=128)"
      (Staged.stage (fun () -> ignore (Agm.Bridge_demo.run bridge_g ~samples_per_vertex:3 coins)));
    Test.make ~name:"F10:blossom-maximum(n=128)"
      (Staged.stage (fun () -> ignore (Dgraph.Blossom.maximum_matching g128)));
    Test.make ~name:"T10:stream-feed+decode(n=64)"
      (Staged.stage (fun () ->
           let rng = fresh 1010 in
           let g = Dgraph.Gen.gnp rng 64 0.1 in
           let stream = Streams.Stream.with_decoys rng g ~decoys:50 in
           let proc = Streams.Sketch_stream.create ~n:64 coins in
           Streams.Sketch_stream.feed_all proc stream;
           ignore (Streams.Sketch_stream.spanning_forest proc)));
    Test.make ~name:"T11:k-forests(n=48,k=3)"
      (Staged.stage (fun () ->
           let g = Dgraph.Gen.gnp (fresh 1111) 48 0.2 in
           ignore (Agm.Connectivity.k_forests g ~k:3 coins)));
    Test.make ~name:"T11:mincut-stoer-wagner(n=64)"
      (Staged.stage (fun () ->
           let g = Dgraph.Gen.gnp (fresh 1112) 64 0.3 in
           ignore (Dgraph.Mincut.min_cut g)));
    Test.make ~name:"T12:one-round-local-minima(n=1024)"
      (Staged.stage (fun () ->
           ignore (Protocols.One_round_mis.undominated_fraction g1024 coins)));
    Test.make ~name:"T13:yao-derandomize(m=5)"
      (Staged.stage (fun () ->
           let rs5 = Rsgraph.Rs_graph.bipartite 5 in
           let instances = Array.init 4 (fun i -> Core.Hard_dist.sample rs5 (Stdx.Prng.create i)) in
           ignore
             (Core.Yao.derandomize ~seeds:[ 1; 2 ] ~instances ~run:(fun c dmm ->
                  let p =
                    Protocols.Sampled_mm.protocol ~budget_bits:24
                      ~strategy:Protocols.Sampled_mm.Uniform
                  in
                  let out, _ = Sketchmodel.Model.run p dmm.Core.Hard_dist.graph c in
                  Dgraph.Matching.is_maximal dmm.Core.Hard_dist.graph out))));
    Test.make ~name:"T14:bcc-logn-mm(n=128)"
      (Staged.stage (fun () -> ignore (Protocols.Bcc_mm.run g128 coins)));
    Test.make ~name:"T15:hyper-iterated-mm(n=400,m=300,k=3)"
      (Staged.stage (fun () ->
           let h = Dgraph.Hgen.uniform_random (fresh 1515) ~n:400 ~m:300 ~k:3 in
           ignore (Protocols.Hyper_mm.run_iterated h coins)));
    Test.make ~name:"T2b:packed-rs(N=50,r=5)"
      (Staged.stage (fun () ->
           ignore (Rsgraph.Packed.achieved_t (Stdx.Prng.create 3) ~big_n:50 ~r:5 ~tries:500)));
    (* The freeze pipeline's sort kernel, head-to-head: the LSD radix sort
       Cset uses for packed edge keys against the stdlib comparison sort it
       replaced, on the same 200k-key workload (~ a 450-vertex gnp(0.5)
       freeze). The BENCH_tables.json `phases."graph.sort"` column shows
       the same win in situ. *)
    Test.make ~name:"cset:radix-sort(200k keys)"
      (Staged.stage
         (let keys = Array.init 200_000 (fun i -> (i * 2654435761) land 0x3FFFFFFF) in
          fun () -> Cset.Columnar.radix_sort_nonneg (Array.copy keys)));
    Test.make ~name:"cset:stdlib-sort(200k keys)"
      (Staged.stage
         (let keys = Array.init 200_000 (fun i -> (i * 2654435761) land 0x3FFFFFFF) in
          fun () ->
            let a = Array.copy keys in
            Array.sort compare a));
  ]

(* `serve`: end-to-end latency of the sketchd stack over loopback TCP —
   an in-process daemon, one persistent client connection, and four
   request mixes: ping (transport floor), uncached runs (distinct seeds,
   every request computes), cached runs (one seed repeated, every request
   after the first is an LRU hit) and cached simulates. Percentiles per
   mix plus throughput, and a BENCH_serve.json line per mix. *)
let serve_bench ?(fast = false) ?(connections = 0) () =
  print_endline "=== sketchd end-to-end latency (loopback TCP, persistent connection) ===";
  (* With an idle herd the cap is exactly herd + the one active
     connection, so the shed probe below must see 503 conn-limit frames. *)
  let max_conns = if connections > 0 then connections + 1 else 8192 in
  let d = Server.Daemon.start ~workers:2 ~capacity:32 ~max_conns () in
  let port = Server.Daemon.port d in
  let iters = if fast then 25 else 200 in
  let oc = open_out "BENCH_serve.json" in
  (* Idle herd: [connections] open-but-quiet clients held for the whole
     bench. The poll engine must carry every one (no FD_SETSIZE cliff,
     no per-connection thread) while the active connection runs the
     mixes at full speed. *)
  let herd = Array.init connections (fun _ -> Server.Client.connect ~port ()) in
  Server.Client.with_connection ~port (fun c ->
      let time_one payload =
        let response, s = Stdx.Parallel.timed (fun () -> Server.Client.request c payload) in
        (match T.member "ok" (T.json_of_string response) with
        | Some (T.Jbool true) -> ()
        | _ -> failwith ("serve bench: request failed: " ^ response));
        s *. 1000.
      in
      let mix name payloads =
        let samples = Array.of_list (List.map time_one payloads) in
        let q p = Stdx.Stats.quantile samples p in
        let total_s = Array.fold_left ( +. ) 0. samples /. 1000. in
        let rps = float_of_int (Array.length samples) /. total_s in
        Printf.printf "%-18s n=%-4d p50=%8.3f ms  p90=%8.3f ms  p99=%8.3f ms  %8.0f req/s\n%!"
          name (Array.length samples) (q 0.5) (q 0.9) (q 0.99) rps;
        Printf.fprintf oc
          "{\"mix\":%S,\"n\":%d,\"p50_ms\":%s,\"p90_ms\":%s,\"p99_ms\":%s,\"throughput_rps\":%s}\n"
          name (Array.length samples) (T.float_repr (q 0.5)) (T.float_repr (q 0.9))
          (T.float_repr (q 0.99)) (T.float_repr rps)
      in
      let jobj fields = T.string_of_json (T.Jobj fields) in
      let run_payload seed =
        jobj
          [
            ("op", T.Jstr "run");
            ("id", T.Jstr "claim31");
            ("smoke", T.Jbool true);
            ("seed", T.Jint seed);
          ]
      in
      let simulate_payload =
        jobj
          [
            ("op", T.Jstr "simulate");
            ("protocol", T.Jstr "two-round-mm");
            ("graph", T.Jobj [ ("kind", T.Jstr "gnp"); ("n", T.Jint 64); ("p", T.Jfloat 0.1) ]);
            ("seed", T.Jint 7);
          ]
      in
      mix "ping" (List.init iters (fun _ -> jobj [ ("op", T.Jstr "ping") ]));
      (* Distinct seeds: every request misses the cache and computes. *)
      mix "run-uncached" (List.init iters (fun i -> run_payload (1000 + i)));
      (* One seed repeated: after the warm-up miss, every request hits. *)
      ignore (time_one (run_payload 1));
      mix "run-cached" (List.init iters (fun _ -> run_payload 1));
      ignore (time_one simulate_payload);
      mix "simulate-cached" (List.init iters (fun _ -> simulate_payload));
      if connections > 0 then begin
        (* Conn-limit shedding: each connect beyond the cap must be
           answered with one 503 conn-limit frame, then closed. Raw
           sockets here — the frame arrives unprompted at accept time. *)
        let shed = ref 0 in
        for _ = 1 to 8 do
          let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
          (try
             Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
             Unix.setsockopt_float fd Unix.SO_RCVTIMEO 5.0;
             match T.member "error" (T.json_of_string (Server.Wire.read_frame fd)) with
             | Some (T.Jstr "conn-limit") -> incr shed
             | _ -> ()
           with _ -> ());
          try Unix.close fd with Unix.Unix_error _ -> ()
        done;
        (* A sample of the herd must still answer after the mixes: idle
           connections survive back-pressure and the shed probe. *)
        let ping = jobj [ ("op", T.Jstr "ping") ] in
        let step = max 1 (connections / 16) in
        let alive = ref 0 and sampled = ref 0 in
        let i = ref 0 in
        while !i < connections do
          incr sampled;
          (match T.member "ok" (T.json_of_string (Server.Client.request herd.(!i) ping)) with
          | Some (T.Jbool true) -> incr alive
          | _ -> ()
          | exception _ -> ());
          i := !i + step
        done;
        let conn_field name =
          match
            T.member "connections"
              (T.json_of_string (Server.Client.request c (jobj [ ("op", T.Jstr "stats") ])))
          with
          | Some (T.Jobj fields) -> (
              match List.assoc_opt name fields with Some (T.Jint n) -> n | _ -> -1)
          | _ -> -1
        in
        let open_now = conn_field "open" in
        let accepted = conn_field "accepted" in
        let rejected = conn_field "rejected" in
        Printf.printf
          "%-18s target=%d open=%d accepted=%d shed=%d (saw %d/8 conn-limit frames) \
           herd-alive=%d/%d\n\
           %!"
          "connections" connections open_now accepted rejected !shed !alive !sampled;
        Printf.fprintf oc
          "{\"mix\":\"connections\",\"target\":%d,\"open\":%d,\"accepted\":%d,\"shed\":%d,\"shed_frames_seen\":%d,\"herd_sampled\":%d,\"herd_alive\":%d}\n"
          connections open_now accepted rejected !shed !sampled !alive
      end);
  Array.iter Server.Client.close herd;
  Server.Daemon.stop d;
  Server.Daemon.wait d;
  close_out oc;
  print_endline "bench: wrote BENCH_serve.json"

(* End-to-end latency through the routing tier: one sketchproxy in front
   of four in-process sketchd backends, all on loopback TCP, so every
   request pays client -> proxy -> backend framing twice. Same mixes as
   the single-daemon bench; tail percentiles (p50/p95/p99) land in
   BENCH_cluster.json, one line per mix. *)
let cluster_bench ?(fast = false) () =
  print_endline "=== 1-proxy/4-backend cluster latency (loopback TCP, persistent connection) ===";
  let backends = List.init 4 (fun _ -> Server.Daemon.start ~workers:1 ~capacity:32 ()) in
  let addrs =
    List.map (fun d -> Printf.sprintf "127.0.0.1:%d" (Server.Daemon.port d)) backends
  in
  (* A long health interval keeps the background pinger out of the
     latency samples; every request here probes health on its own. *)
  let proxy = Server.Proxy.start ~health_interval_s:60. ~backends:addrs () in
  let port = Server.Proxy.port proxy in
  let iters = if fast then 25 else 200 in
  let oc = open_out "BENCH_cluster.json" in
  Server.Client.with_connection ~port (fun c ->
      let time_one payload =
        let response, s = Stdx.Parallel.timed (fun () -> Server.Client.request c payload) in
        (match T.member "ok" (T.json_of_string response) with
        | Some (T.Jbool true) -> ()
        | _ -> failwith ("cluster bench: request failed: " ^ response));
        s *. 1000.
      in
      let mix name payloads =
        let samples = Array.of_list (List.map time_one payloads) in
        let q p = Stdx.Stats.quantile samples p in
        let total_s = Array.fold_left ( +. ) 0. samples /. 1000. in
        let rps = float_of_int (Array.length samples) /. total_s in
        Printf.printf "%-18s n=%-4d p50=%8.3f ms  p95=%8.3f ms  p99=%8.3f ms  %8.0f req/s\n%!"
          name (Array.length samples) (q 0.5) (q 0.95) (q 0.99) rps;
        Printf.fprintf oc
          "{\"mix\":%S,\"n\":%d,\"p50_ms\":%s,\"p95_ms\":%s,\"p99_ms\":%s,\"throughput_rps\":%s}\n"
          name (Array.length samples) (T.float_repr (q 0.5)) (T.float_repr (q 0.95))
          (T.float_repr (q 0.99)) (T.float_repr rps)
      in
      let jobj fields = T.string_of_json (T.Jobj fields) in
      let run_payload seed =
        jobj
          [
            ("op", T.Jstr "run");
            ("id", T.Jstr "claim31");
            ("smoke", T.Jbool true);
            ("seed", T.Jint seed);
          ]
      in
      let simulate_payload =
        jobj
          [
            ("op", T.Jstr "simulate");
            ("protocol", T.Jstr "two-round-mm");
            ("graph", T.Jobj [ ("kind", T.Jstr "gnp"); ("n", T.Jint 64); ("p", T.Jfloat 0.1) ]);
            ("seed", T.Jint 7);
          ]
      in
      mix "ping" (List.init iters (fun _ -> jobj [ ("op", T.Jstr "ping") ]));
      (* Distinct seeds: every request misses its backend's cache and
         computes; the ring spreads the seeds across all four shards. *)
      mix "run-uncached" (List.init iters (fun i -> run_payload (1000 + i)));
      (* One seed repeated: it routes to one backend whose cache serves
         every request after the warm-up miss. *)
      ignore (time_one (run_payload 1));
      mix "run-cached" (List.init iters (fun _ -> run_payload 1));
      ignore (time_one simulate_payload);
      mix "simulate-cached" (List.init iters (fun _ -> simulate_payload)));
  Server.Proxy.stop proxy;
  Server.Proxy.wait proxy;
  List.iter
    (fun d ->
      Server.Daemon.stop d;
      Server.Daemon.wait d)
    backends;
  close_out oc;
  print_endline "bench: wrote BENCH_cluster.json"

(* `streams`: the multipass wing's accounting, one JSON line per run in
   BENCH_streams.json. Two families: the r-round frontier protocols on a
   D_MM instance (per-round player bits and broadcast bits) and the
   multi-pass streaming matcher on gnp inputs (per-pass memory and
   matching growth). The `--fast` sizes are what CI's streams smoke
   validates with jsoncheck. *)
let streams_bench ?(fast = false) () =
  print_endline "=== multipass wing: per-round / per-pass accounting ===";
  let oc = open_out "BENCH_streams.json" in
  let jarr l = "[" ^ String.concat "," (List.map string_of_int l) ^ "]" in
  let jarr_a a = jarr (Array.to_list a) in
  (* Round frontier on D_MM. *)
  let m = if fast then 5 else 25 in
  let rs = Rsgraph.Rs_graph.bipartite m in
  let dmm = Core.Hard_dist.sample rs (Stdx.Prng.create 77) in
  let g = dmm.Core.Hard_dist.graph in
  let coins = Sketchmodel.Public_coins.create 78 in
  let round_runs =
    List.map
      (fun r ->
        (Printf.sprintf "prefix-mis-r%d" r, fun () -> Multipass.Frontier.run ~rounds:r g coins))
      (if fast then [ 1; 2; 4 ] else [ 1; 2; 3; 4; 6 ])
    @ List.map
        (fun kind ->
          ( "luby-mis-" ^ Multipass.Luby.priority_name kind,
            fun () -> Multipass.Luby.run kind g coins ))
        [ Multipass.Luby.Random; Multipass.Luby.Degree; Multipass.Luby.Index ]
  in
  List.iter
    (fun (name, run) ->
      let (mis, stats), wall = Stdx.Parallel.timed run in
      let s : Multipass.Rounds.stats = stats in
      Printf.printf "%-18s rounds=%-3d max=%6d bits  total=%8d bits  bcast=%6d bits  %s\n%!"
        name s.Multipass.Rounds.rounds s.Multipass.Rounds.max_bits
        s.Multipass.Rounds.total_bits s.Multipass.Rounds.broadcast_bits
        (if Dgraph.Mis.is_maximal g mis then "maximal" else "NOT MAXIMAL");
      Printf.fprintf oc
        "{\"bench\":\"rounds\",\"protocol\":%S,\"m\":%d,\"n\":%d,\"rounds\":%d,\"max_bits\":%d,\"total_bits\":%d,\"broadcast_bits\":%d,\"round_max\":%s,\"round_total\":%s,\"round_broadcast\":%s,\"wall_s\":%s}\n"
        name m (Dgraph.Graph.n g) s.Multipass.Rounds.rounds s.Multipass.Rounds.max_bits
        s.Multipass.Rounds.total_bits s.Multipass.Rounds.broadcast_bits
        (jarr_a s.Multipass.Rounds.round_max)
        (jarr_a s.Multipass.Rounds.round_total)
        (jarr_a s.Multipass.Rounds.round_broadcast)
        (T.float_repr wall))
    round_runs;
  (* Multi-pass streaming matching on gnp. *)
  let n = if fast then 48 else 192 in
  let rng = Stdx.Prng.create 79 in
  let sg = Dgraph.Gen.gnp rng n (8.0 /. float_of_int n) in
  let stream = Streams.Stream.shuffled rng sg in
  let optimum = Dgraph.Blossom.maximum_matching_size sg in
  List.iter
    (fun eps_pct ->
      let eps = float_of_int eps_pct /. 100.0 in
      let res, wall = Stdx.Parallel.timed (fun () -> Multipass.Stream_matching.run ~eps stream) in
      let passes = res.Multipass.Stream_matching.passes in
      let per f = List.map f passes in
      let size = Dgraph.Matching.size res.Multipass.Stream_matching.matching in
      Printf.printf
        "stream-matching    eps=%-3d%% passes=%-3d peak=%6d bits  matching=%d/%d  %s\n%!"
        eps_pct (List.length passes) res.Multipass.Stream_matching.peak_memory_bits size optimum
        (if res.Multipass.Stream_matching.converged then "converged" else "budget");
      Printf.fprintf oc
        "{\"bench\":\"passes\",\"protocol\":\"stream-matching\",\"n\":%d,\"eps_pct\":%d,\"passes\":%d,\"peak_memory_bits\":%d,\"matching\":%d,\"optimum\":%d,\"converged\":%b,\"pass_memory_bits\":%s,\"pass_matching\":%s,\"pass_augmented\":%s,\"wall_s\":%s}\n"
        n eps_pct (List.length passes) res.Multipass.Stream_matching.peak_memory_bits size
        optimum res.Multipass.Stream_matching.converged
        (jarr (per (fun p -> p.Multipass.Stream_matching.memory_bits)))
        (jarr (per (fun p -> p.Multipass.Stream_matching.matching_size)))
        (jarr (per (fun p -> p.Multipass.Stream_matching.augmented)))
        (T.float_repr wall))
    [ 50; 25; 10 ];
  close_out oc;
  print_endline "bench: wrote BENCH_streams.json"

let run_benchmarks () =
  print_endline "\n=== Bechamel micro-benchmarks (one kernel per table/figure) ===";
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |] in
  let instance = Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
  let grouped = Test.make_grouped ~name:"sketchlb" ~fmt:"%s %s" (micro_tests ()) in
  let raw = Benchmark.all cfg [ instance ] grouped in
  let results = Analyze.all ols instance raw in
  let rows = Hashtbl.fold (fun name ols_result acc -> (name, ols_result) :: acc) results [] in
  let rows = List.sort (fun (a, _) (b, _) -> compare a b) rows in
  Printf.printf "%-50s %15s\n" "kernel" "time/run";
  List.iter
    (fun (name, ols_result) ->
      let estimate =
        match Analyze.OLS.estimates ols_result with Some (e :: _) -> e | Some [] | None -> nan
      in
      let pretty =
        if estimate >= 1e9 then Printf.sprintf "%.2f s" (estimate /. 1e9)
        else if estimate >= 1e6 then Printf.sprintf "%.2f ms" (estimate /. 1e6)
        else if estimate >= 1e3 then Printf.sprintf "%.2f us" (estimate /. 1e3)
        else Printf.sprintf "%.0f ns" estimate
      in
      Printf.printf "%-50s %15s\n" name pretty)
    rows

let () =
  (* Usage: main.exe [tables|bench|serve|cluster|all] [-j N] [--fast] [--trace FILE].
     [-j] shards the Monte-Carlo tables over N domains; the printed tables
     are identical at any N. [--trace] writes the whole run's span trace as
     a Perfetto-loadable Chrome trace_event file. *)
  let args = Array.to_list Sys.argv in
  let rec parse mode jobs fast trace conns = function
    | [] -> (mode, jobs, fast, trace, conns)
    | ("-j" | "--jobs") :: v :: rest -> parse mode (int_of_string_opt v) fast trace conns rest
    | "--fast" :: rest -> parse mode jobs true trace conns rest
    | "--trace" :: v :: rest -> parse mode jobs fast (Some v) conns rest
    | "--connections" :: v :: rest -> parse mode jobs fast trace (int_of_string_opt v) rest
    | ("tables" | "bench" | "serve" | "cluster" | "streams" | "all") as m :: rest ->
        parse m jobs fast trace conns rest
    | _ :: rest -> parse mode jobs fast trace conns rest
  in
  let mode, jobs, fast, trace, conns = parse "all" None false None None (List.tl args) in
  let jobs = match jobs with Some j when j > 0 -> Some j | Some _ | None -> None in
  let connections = match conns with Some n when n > 0 -> n | Some _ | None -> 0 in
  Report.Trace_export.with_file trace (fun () ->
      match mode with
      | "tables" -> tables ~fast ?jobs ()
      | "bench" -> run_benchmarks ()
      | "serve" -> serve_bench ~fast ~connections ()
      | "cluster" -> cluster_bench ~fast ()
      | "streams" -> streams_bench ~fast ()
      | _ ->
          tables ~fast ?jobs ();
          run_benchmarks ();
          serve_bench ~fast ~connections ();
          cluster_bench ~fast ();
          streams_bench ~fast ());
  print_endline "\nbench: done"

(* Command-line driver: one subcommand per experiment of DESIGN.md §4, with
   every size knob exposed so larger-than-default runs are one flag away. *)

open Cmdliner

let ints_arg ~doc ~default name =
  Arg.(value & opt (list int) default & info [ name ] ~doc ~docv:"INTS")

let int_arg ~doc ~default name = Arg.(value & opt int default & info [ name ] ~doc ~docv:"INT")

let seed_arg = int_arg ~doc:"Random seed." ~default:7 "seed"

(* Worker domains for the parallelized Monte-Carlo tables. Results are
   bit-identical at every job count (see Stdx.Parallel). *)
let jobs_arg =
  Arg.(
    value
    & opt int 0
    & info [ "j"; "jobs" ]
        ~doc:"Worker domains for trial sharding (0 = Domain.recommended_domain_count)."
        ~docv:"INT")

let jobs_opt j = if j <= 0 then None else Some j

(* T1 *)
let rs_table_cmd =
  let run ms =
    Core.Experiments.print_rs_table (Core.Experiments.rs_table ~ms)
  in
  Cmd.v
    (Cmd.info "rs-table" ~doc:"T1: Proposition 2.1 RS-graph parameter table (verified).")
    Term.(const run $ ints_arg ~doc:"Construction parameters m." ~default:[ 5; 10; 25; 50; 100; 200 ] "m")

(* T2 *)
let behrend_cmd =
  let run ms =
    Core.Experiments.print_behrend_table (Core.Experiments.behrend_table ~ms)
  in
  Cmd.v
    (Cmd.info "behrend" ~doc:"T2: 3-AP-free set sizes (greedy vs Behrend vs exact).")
    Term.(const run $ ints_arg ~doc:"Set range bounds m." ~default:[ 10; 30; 100; 300; 1000; 3000; 10000 ] "m")

(* T3 *)
let claim31_cmd =
  let run ms samples seed jobs =
    Core.Experiments.print_claim31
      (Core.Experiments.claim31 ?jobs:(jobs_opt jobs) ~ms ~samples ~seed ())
  in
  Cmd.v
    (Cmd.info "claim31" ~doc:"T3: Claim 3.1 — unique-unique edges in maximal matchings of D_MM.")
    Term.(
      const run
      $ ints_arg ~doc:"RS parameters m." ~default:[ 10; 25; 50 ] "m"
      $ int_arg ~doc:"Samples per m." ~default:20 "samples"
      $ seed_arg $ jobs_arg)

(* F4 *)
let sweep_cmd =
  let run m k budgets trials seed jobs =
    let k = if k <= 0 then None else Some k in
    Core.Experiments.print_budget_sweep
      (Core.Experiments.budget_sweep ?jobs:(jobs_opt jobs) ~m ?k ~budgets ~trials ~seed ())
  in
  Cmd.v
    (Cmd.info "budget-sweep" ~doc:"F4: success of budget-b protocols on D_MM vs b.")
    Term.(
      const run
      $ int_arg ~doc:"RS parameter m." ~default:25 "m"
      $ int_arg ~doc:"Copies k (0 = t, the paper's choice)." ~default:0 "k"
      $ ints_arg ~doc:"Per-player budgets in bits."
          ~default:[ 8; 16; 32; 64; 128; 256; 512; 1024 ] "budgets"
      $ int_arg ~doc:"Trials per configuration." ~default:10 "trials"
      $ seed_arg $ jobs_arg)

(* F5 *)
let info_cmd =
  let run bits =
    Core.Experiments.print_info_accounting (Core.Experiments.info_accounting ~bits)
  in
  Cmd.v
    (Cmd.info "info-accounting"
       ~doc:"F5: exact Lemma 3.3-3.5 information accounting on micro instances.")
    Term.(const run $ ints_arg ~doc:"Per-player budgets in bits." ~default:[ 0; 2; 4; 6; 10 ] "bits")

(* T6 *)
let upper_cmd =
  let run ns seed =
    Core.Experiments.print_upper_bounds (Core.Experiments.upper_bounds ~ns ~seed)
  in
  Cmd.v
    (Cmd.info "upper-bounds" ~doc:"T6: measured sketch sizes of the cited upper bounds.")
    Term.(const run $ ints_arg ~doc:"Graph sizes n." ~default:[ 64; 128; 256 ] "n" $ seed_arg)

(* T6b *)
let coloring_cmd =
  let run ns seed =
    Core.Experiments.print_coloring_contrast (Core.Experiments.coloring_contrast ~ns ~seed)
  in
  Cmd.v
    (Cmd.info "coloring-contrast"
       ~doc:"T6b: palette sparsification vs trivial on dense graphs.")
    Term.(const run $ ints_arg ~doc:"Graph sizes n." ~default:[ 256; 512; 1024; 2048 ] "n" $ seed_arg)

(* F7 *)
let curve_cmd =
  let run ms = Core.Experiments.print_bound_curve (Core.Experiments.bound_curve ~ms) in
  Cmd.v
    (Cmd.info "bound-curve" ~doc:"F7: Theorem 1 arithmetic vs upper bounds along the curve.")
    Term.(const run $ ints_arg ~doc:"RS parameters m." ~default:[ 10; 25; 50; 100; 200; 400 ] "m")

(* T8 *)
let reduction_cmd =
  let run ms samples seed =
    Core.Experiments.print_reduction (Core.Experiments.reduction_check ~ms ~samples ~seed)
  in
  Cmd.v
    (Cmd.info "reduction" ~doc:"T8: the Section-4 MM-to-MIS reduction, end to end.")
    Term.(
      const run
      $ ints_arg ~doc:"RS parameters m." ~default:[ 5; 10; 25 ] "m"
      $ int_arg ~doc:"Samples per m." ~default:10 "samples"
      $ seed_arg)

(* F9 *)
let bridge_cmd =
  let run halves samples trials seed =
    Core.Experiments.print_bridge (Core.Experiments.bridge ~halves ~samples ~trials ~seed)
  in
  Cmd.v
    (Cmd.info "bridge" ~doc:"F9: Footnote 1 — find the bridge between two random clouds.")
    Term.(
      const run
      $ ints_arg ~doc:"Cloud sizes (n/2)." ~default:[ 32; 128; 512 ] "halves"
      $ ints_arg ~doc:"Sampled edges per vertex." ~default:[ 1; 2; 4 ] "samples"
      $ int_arg ~doc:"Trials per configuration." ~default:20 "trials"
      $ seed_arg)

(* F10 *)
let approx_cmd =
  let run ns budgets trials seed =
    Core.Experiments.print_approx_matching
      (Core.Experiments.approx_matching ~ns ~budgets ~trials ~seed)
  in
  Cmd.v
    (Cmd.info "approx-matching" ~doc:"F10: approximation ratio of budget protocols (Blossom oracle).")
    Term.(
      const run
      $ ints_arg ~doc:"Graph sizes n." ~default:[ 40; 80; 160 ] "n"
      $ ints_arg ~doc:"Budgets in bits." ~default:[ 8; 24; 64; 256 ] "budgets"
      $ int_arg ~doc:"Trials per configuration." ~default:8 "trials"
      $ seed_arg)

(* F11 *)
let ksweep_cmd =
  let run m ks budgets trials seed =
    Core.Experiments.print_k_sweep (Core.Experiments.k_sweep ~m ~ks ~budgets ~trials ~seed)
  in
  Cmd.v
    (Cmd.info "k-sweep" ~doc:"F11: ablation decoupling k from t.")
    Term.(
      const run
      $ int_arg ~doc:"RS parameter m." ~default:25 "m"
      $ ints_arg ~doc:"Values of k." ~default:[ 3; 6; 12; 25 ] "k"
      $ ints_arg ~doc:"Budgets in bits." ~default:[ 4; 8; 16; 32; 64; 128 ] "budgets"
      $ int_arg ~doc:"Trials per configuration." ~default:8 "trials"
      $ seed_arg)

(* T10 *)
let streams_cmd =
  let run ns seed =
    Core.Experiments.print_stream_table (Core.Experiments.stream_table ~ns ~seed)
  in
  Cmd.v
    (Cmd.info "streams" ~doc:"T10: dynamic streams = linear sketches, bit for bit.")
    Term.(const run $ ints_arg ~doc:"Graph sizes n." ~default:[ 24; 48; 96 ] "n" $ seed_arg)

(* T11 *)
let connectivity_cmd =
  let run seed =
    Core.Experiments.print_connectivity_table (Core.Experiments.connectivity_table ~seed)
  in
  Cmd.v
    (Cmd.info "connectivity" ~doc:"T11: k-forest edge-connectivity and bipartiteness sketches.")
    Term.(const run $ seed_arg)

(* T12 *)
let rounds_cmd =
  let run ms seed =
    Core.Experiments.print_rounds_table (Core.Experiments.rounds_table ~ms ~seed)
  in
  Cmd.v
    (Cmd.info "rounds" ~doc:"T12: one-round MIS failure vs two-round success on D_MM.")
    Term.(const run $ ints_arg ~doc:"RS parameters m." ~default:[ 10; 25; 50 ] "m" $ seed_arg)

(* T2b *)
let packing_cmd =
  let run ms tries seed jobs =
    Core.Experiments.print_packing_table
      (Core.Experiments.packing_table ?jobs:(jobs_opt jobs) ~ms ~tries ~seed ())
  in
  Cmd.v
    (Cmd.info "packing" ~doc:"T2b: random induced-matching packing vs Behrend RS graphs.")
    Term.(
      const run
      $ ints_arg ~doc:"RS parameters m." ~default:[ 5; 10; 25; 50 ] "m"
      $ int_arg ~doc:"Packing attempts." ~default:3000 "tries"
      $ seed_arg $ jobs_arg)

(* F5b *)
let estimate_cmd =
  let run bits samples seed jobs =
    Core.Experiments.print_estimate_accounting
      (Core.Experiments.estimate_accounting ?jobs:(jobs_opt jobs) ~bits ~samples ~seed ())
  in
  Cmd.v
    (Cmd.info "estimate-info" ~doc:"F5b: sampled MI estimates vs exact enumeration.")
    Term.(
      const run
      $ ints_arg ~doc:"Budgets in bits." ~default:[ 6; 10; 14 ] "bits"
      $ int_arg ~doc:"Samples." ~default:6000 "samples"
      $ seed_arg $ jobs_arg)

(* T13 *)
let yao_cmd =
  let run m budgets instances seeds seed =
    Core.Experiments.print_yao_table (Core.Experiments.yao_table ~m ~budgets ~instances ~seeds ~seed)
  in
  Cmd.v
    (Cmd.info "yao" ~doc:"T13: derandomization by averaging on D_MM.")
    Term.(
      const run
      $ int_arg ~doc:"RS parameter m." ~default:10 "m"
      $ ints_arg ~doc:"Budgets in bits." ~default:[ 16; 32; 48 ] "budgets"
      $ int_arg ~doc:"Sampled instances." ~default:20 "instances"
      $ int_arg ~doc:"Coin seeds evaluated." ~default:8 "seeds"
      $ seed_arg)

(* T14 *)
let bcc_cmd =
  let run ms trials seed =
    Core.Experiments.print_bcc_table (Core.Experiments.bcc_table ~ms ~trials ~seed)
  in
  Cmd.v
    (Cmd.info "bcc" ~doc:"T14: BCC rounds/bandwidth trade-off on D_MM.")
    Term.(
      const run
      $ ints_arg ~doc:"RS parameters m." ~default:[ 10; 25 ] "m"
      $ int_arg ~doc:"One-round trials." ~default:10 "trials"
      $ seed_arg)

(* P1 *)
let speedup_cmd =
  let run m samples seed jobs =
    Core.Experiments.print_parallel_speedup ~m ~samples
      (Core.Experiments.parallel_speedup ?jobs:(jobs_opt jobs) ~m ~samples ~seed ())
  in
  Cmd.v
    (Cmd.info "speedup"
       ~doc:
         "P1: wall-clock of the deterministic trial engine (claim31) at 1, 2, 4, ... domains, \
          with a bit-identity check against the sequential run.")
    Term.(
      const run
      $ int_arg ~doc:"RS parameter m." ~default:25 "m"
      $ int_arg ~doc:"Samples." ~default:2000 "samples"
      $ seed_arg $ jobs_arg)

let all_cmd =
  let run fast jobs = Core.Experiments.run_all ~fast ?jobs:(jobs_opt jobs) () in
  Cmd.v
    (Cmd.info "all" ~doc:"Run every experiment at default sizes.")
    Term.(
      const run
      $ Arg.(value & flag & info [ "fast" ] ~doc:"Shrunk sizes (for smoke tests).")
      $ jobs_arg)

let () =
  let doc =
    "Reproduction harness for 'Lower Bounds for Distributed Sketching of Maximal Matchings \
     and Maximal Independent Sets' (PODC 2020)."
  in
  let info = Cmd.info "sketchlb" ~version:"1.0.0" ~doc in
  let group =
    Cmd.group info
      [
        rs_table_cmd;
        behrend_cmd;
        claim31_cmd;
        sweep_cmd;
        info_cmd;
        upper_cmd;
        coloring_cmd;
        curve_cmd;
        reduction_cmd;
        bridge_cmd;
        approx_cmd;
        ksweep_cmd;
        streams_cmd;
        connectivity_cmd;
        rounds_cmd;
        packing_cmd;
        estimate_cmd;
        yao_cmd;
        bcc_cmd;
        speedup_cmd;
        all_cmd;
      ]
  in
  exit (Cmd.eval group)

(* Command-line driver, generated from the experiment registry: one
   subcommand per registered experiment, its flags derived from the
   experiment's parameter spec, plus registry-wide `run`, `list` and
   `all` commands. Every command takes `--format text|csv|json` and
   `--out FILE`. *)

open Cmdliner
module T = Report.Tabular
module R = Core.Exp_registry

let format_arg =
  let formats = [ ("text", T.Text); ("csv", T.Csv); ("json", T.Json) ] in
  Arg.(
    value
    & opt (enum formats) T.Text
    & info [ "format" ] ~doc:"Output format: $(b,text), $(b,csv) or $(b,json) (JSON-lines)."
        ~docv:"FORMAT")

let out_arg =
  Arg.(
    value
    & opt string "-"
    & info [ "out" ] ~doc:"Write rows to $(docv) instead of stdout (\"-\" = stdout)." ~docv:"FILE")

(* Every command takes --trace FILE: enable Stdx.Trace for the whole run
   and write a Chrome trace_event JSON file (load it in ui.perfetto.dev
   or chrome://tracing). Tracing only writes to side buffers, so table
   output is byte-identical with or without it (pinned by test_trace). *)
let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ]
        ~doc:"Record a Chrome trace_event profile of the run to $(docv) (Perfetto-loadable)."
        ~docv:"FILE")

(* SIGINT/SIGTERM during a long run (`all` especially) must not truncate a
   half-written --out file: the handler raises, [with_out]'s protector
   closes (= flushes) the channel with every completed row intact, and the
   driver exits with the conventional 128+signal code. *)
exception Interrupted of int

let () =
  let graceful signal = Sys.set_signal signal (Sys.Signal_handle (fun _ -> raise (Interrupted signal))) in
  graceful Sys.sigint;
  graceful Sys.sigterm

let with_out path f =
  if path = "-" then f stdout
  else begin
    let oc = open_out path in
    Fun.protect ~finally:(fun () -> close_out oc) (fun () -> f oc)
  end

(* A cmdliner term evaluating to parameter overrides, one flag per spec
   entry; defaults come from the spec itself, so the term only records
   flags the user actually passed. *)
let term_of_params (specs : R.param list) : R.params Term.t =
  List.fold_left
    (fun acc (p : R.param) ->
      match p.R.default with
      | R.Vint d ->
          let arg = Arg.(value & opt int d & info p.R.keys ~doc:p.R.doc ~docv:"INT") in
          Term.(const (fun ps v -> (p.R.name, R.Vint v) :: ps) $ acc $ arg)
      | R.Vints d ->
          let arg = Arg.(value & opt (list int) d & info p.R.keys ~doc:p.R.doc ~docv:"INTS") in
          Term.(const (fun ps v -> (p.R.name, R.Vints v) :: ps) $ acc $ arg))
    (Term.const []) specs

let emit_experiment e overrides format path =
  with_out path (fun out -> T.emit ~format ~out (R.table e overrides))

(* One subcommand per experiment, flags straight from its param spec. *)
let exp_cmd e =
  let run overrides format path trace =
    Report.Trace_export.with_file trace (fun () -> emit_experiment e overrides format path)
  in
  Cmd.v
    (Cmd.info (R.id e) ~doc:(R.doc e))
    Term.(const run $ term_of_params (R.params e) $ format_arg $ out_arg $ trace_arg)

(* `run ID`: look an experiment up by id and run it at spec defaults,
   with only the uniform seed/jobs knobs (plus --smoke) exposed. *)
let run_cmd =
  let id_arg =
    Arg.(required & pos 0 (some string) None & info [] ~doc:"Experiment id (see `list`)." ~docv:"ID")
  in
  let smoke_arg =
    Arg.(value & flag & info [ "smoke" ] ~doc:"Tiny sizes (the registry test's parameters).")
  in
  let seed_arg =
    Arg.(value & opt (some int) None & info [ "seed" ] ~doc:"Random seed override." ~docv:"INT")
  in
  let jobs_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ] ~doc:"Worker domains for trial sharding." ~docv:"INT")
  in
  let run id smoke seed jobs format path trace =
    match Core.Exp_all.find id with
    | None ->
        `Error
          ( false,
            Printf.sprintf "unknown experiment %S; `sketchlb list` shows the catalogue" id )
    | Some e ->
        (* Merge keeps the first binding per name, so explicit --seed/--jobs
           must precede the --smoke defaults to win over them. *)
        let overrides =
          (match seed with Some s -> [ ("seed", R.Vint s) ] | None -> [])
          @ (match jobs with Some j -> [ ("jobs", R.Vint j) ] | None -> [])
          @ (if smoke then R.smoke e else [])
        in
        Report.Trace_export.with_file trace (fun () -> emit_experiment e overrides format path);
        `Ok ()
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run one experiment by id at its default parameters.")
    Term.(
      ret (const run $ id_arg $ smoke_arg $ seed_arg $ jobs_arg $ format_arg $ out_arg $ trace_arg))

(* `list`: the registry catalogue. *)
let list_cmd =
  let run () =
    List.iter
      (fun e -> Printf.printf "%-18s %-4s %s\n" (R.id e) (R.title e) (R.doc e))
      (Core.Exp_all.all ())
  in
  Cmd.v (Cmd.info "list" ~doc:"List every registered experiment id.") Term.(const run $ const ())

let jobs_arg =
  Arg.(
    value
    & opt int 0
    & info [ "j"; "jobs" ]
        ~doc:"Worker domains for trial sharding (0 = Domain.recommended_domain_count)."
        ~docv:"INT")

let jobs_opt j = if j <= 0 then None else Some j

let all_cmd =
  let run fast jobs format path trace =
    Report.Trace_export.with_file trace (fun () ->
        with_out path (fun out -> Core.Exp_all.run_all ~fast ?jobs:(jobs_opt jobs) ~format ~out ()))
  in
  Cmd.v
    (Cmd.info "all" ~doc:"Run every experiment at default sizes.")
    Term.(
      const run
      $ Arg.(value & flag & info [ "fast" ] ~doc:"Shrunk sizes (for smoke tests).")
      $ jobs_arg $ format_arg $ out_arg $ trace_arg)

let () =
  let doc =
    "Reproduction harness for 'Lower Bounds for Distributed Sketching of Maximal Matchings \
     and Maximal Independent Sets' (PODC 2020)."
  in
  let info = Cmd.info "sketchlb" ~version:Stdx.Version.current ~doc in
  let group =
    Cmd.group info
      (List.map exp_cmd (Core.Exp_all.all ()) @ [ run_cmd; list_cmd; all_cmd ])
  in
  (* ~catch:false so [Interrupted] reaches us instead of cmdliner's
     catch-all backtrace printer; by now every [with_out] protector has
     already flushed and closed its partial output file. *)
  match Cmd.eval ~catch:false group with
  | code -> exit code
  | exception Interrupted signal ->
      let name = if signal = Sys.sigterm then "SIGTERM" else "SIGINT" in
      Printf.eprintf "sketchlb: interrupted by %s; partial output flushed\n%!" name;
      exit (128 + if signal = Sys.sigterm then 15 else 2)

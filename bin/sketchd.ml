(* sketchd: the concurrent sketch-service daemon.

   Serves the experiment registry (`list`/`run`), protocol simulations
   (`simulate`) and observability (`stats`) over a length-prefixed JSON
   frame protocol on TCP, with a deterministic result cache in front of a
   bounded domain-pool scheduler. `sketchctl` is the matching client.

   The first stdout line is machine-readable ("sketchd listening on
   HOST:PORT ...") so scripts can scrape the kernel-chosen port;
   `--port-file` writes the bare port number for the same purpose.
   SIGINT/SIGTERM begin a graceful stop: listener closed, in-flight
   computations completed, then exit. *)

open Cmdliner

let serve host port workers capacity cache_entries cache_mb max_conns idle_timeout rate_limit
    no_keepalive port_file quiet trace =
  (* --trace: record the daemon's whole life (accept → decode → cache →
     schedule → compute → encode spans) and write the Perfetto-loadable
     file when the drain completes. *)
  Report.Trace_export.with_file trace @@ fun () ->
  let log =
    if quiet then fun _ -> ()
    else fun line ->
      Printf.eprintf "sketchd: %s\n%!" line
  in
  let daemon =
    try
      Server.Daemon.start ~host ~port ~workers ~capacity ~cache_entries
        ~cache_bytes:(cache_mb * 1024 * 1024) ~max_conns ~idle_timeout_s:idle_timeout
        ~rate_limit ~keepalive:(not no_keepalive) ~log ()
    with Unix.Unix_error (e, _, _) ->
      Printf.eprintf "sketchd: cannot listen on %s:%d: %s\n%!" host port (Unix.error_message e);
      exit 1
  in
  let actual_port = Server.Daemon.port daemon in
  (match port_file with
  | Some path ->
      let oc = open_out path in
      Printf.fprintf oc "%d\n" actual_port;
      close_out oc
  | None -> ());
  Printf.printf "sketchd listening on %s:%d (version %s, workers=%d, queue=%d)\n%!" host
    actual_port Stdx.Version.current workers capacity;
  let graceful _ = Server.Daemon.stop ~abort_connections:true daemon in
  Sys.set_signal Sys.sigint (Sys.Signal_handle graceful);
  Sys.set_signal Sys.sigterm (Sys.Signal_handle graceful);
  Server.Daemon.wait daemon;
  Printf.printf "sketchd: drained, bye\n%!"

let host_arg =
  Arg.(
    value
    & opt string "127.0.0.1"
    & info [ "host" ] ~doc:"Address to bind (dotted quad)." ~docv:"ADDR")

let port_arg =
  Arg.(
    value
    & opt int 0
    & info [ "p"; "port" ] ~doc:"TCP port; 0 lets the kernel choose (printed on stdout)."
        ~docv:"PORT")

let workers_arg =
  Arg.(
    value
    & opt int 2
    & info [ "workers" ] ~doc:"Worker domains computing experiment runs." ~docv:"INT")

let capacity_arg =
  Arg.(
    value
    & opt int 16
    & info [ "queue" ] ~doc:"Bounded request-queue depth; beyond it requests are shed (429)."
        ~docv:"INT")

let cache_entries_arg =
  Arg.(
    value & opt int 512 & info [ "cache-entries" ] ~doc:"Result-cache entry bound." ~docv:"INT")

let cache_mb_arg =
  Arg.(
    value
    & opt int 64
    & info [ "cache-mb" ] ~doc:"Result-cache payload bound in MiB." ~docv:"INT")

let max_conns_arg =
  Arg.(
    value
    & opt int 8192
    & info [ "max-conns" ]
        ~doc:"Concurrent-connection cap; excess connections get a 503 frame and a close."
        ~docv:"INT")

let idle_timeout_arg =
  Arg.(
    value
    & opt float 0.
    & info [ "idle-timeout" ]
        ~doc:"Evict connections idle longer than $(docv) seconds (0 disables)." ~docv:"SEC")

let rate_limit_arg =
  Arg.(
    value
    & opt float 0.
    & info [ "rate-limit" ]
        ~doc:
          "Per-connection request budget in requests/second; beyond it requests are answered \
           429 (0 disables)."
        ~docv:"RPS")

let no_keepalive_arg =
  Arg.(
    value & flag & info [ "no-keepalive" ] ~doc:"Do not set SO_KEEPALIVE on accepted sockets.")

let port_file_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "port-file" ] ~doc:"Also write the chosen port number to $(docv)." ~docv:"FILE")

let quiet_arg =
  Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Suppress per-request log lines on stderr.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ]
        ~doc:
          "Record a Chrome trace_event profile of the daemon's lifetime to $(docv) (written at \
           shutdown; Perfetto-loadable)."
        ~docv:"FILE")

let () =
  let doc = "Concurrent sketch-service daemon with a deterministic result cache." in
  let info = Cmd.info "sketchd" ~version:Stdx.Version.current ~doc in
  let term =
    Term.(
      const serve $ host_arg $ port_arg $ workers_arg $ capacity_arg $ cache_entries_arg
      $ cache_mb_arg $ max_conns_arg $ idle_timeout_arg $ rate_limit_arg $ no_keepalive_arg
      $ port_file_arg $ quiet_arg $ trace_arg)
  in
  exit (Cmd.eval (Cmd.v info term))

(* sketchproxy: consistent-hash routing tier in front of N sketchd
   backends.

   Speaks the same length-prefixed JSON frame protocol as sketchd on both
   sides. `run`/`simulate` requests route by their canonical cache key so
   each backend's cache stays hot for its shard; the determinism contract
   makes failover transparent — a replica recomputes the byte-identical
   response a dead backend would have served. `ping`/`cluster`/`stats`
   are answered by the proxy itself (`stats` aggregated cluster-wide).

   Same scriptability conventions as sketchd: first stdout line is
   machine-readable, `--port-file` writes the bare port,
   SIGINT/SIGTERM drain gracefully. *)

open Cmdliner

let serve host port backends vnodes health_interval max_conns idle_timeout rate_limit
    no_keepalive port_file quiet trace =
  if backends = [] then begin
    Printf.eprintf "sketchproxy: need at least one --backend HOST:PORT\n%!";
    exit 2
  end;
  Report.Trace_export.with_file trace @@ fun () ->
  let log =
    if quiet then fun _ -> ()
    else fun line -> Printf.eprintf "sketchproxy: %s\n%!" line
  in
  let proxy =
    try
      Server.Proxy.start ~host ~port ~vnodes ~health_interval_s:health_interval ~max_conns
        ~idle_timeout_s:idle_timeout ~rate_limit ~keepalive:(not no_keepalive) ~log ~backends
        ()
    with
    | Unix.Unix_error (e, _, _) ->
        Printf.eprintf "sketchproxy: cannot listen on %s:%d: %s\n%!" host port
          (Unix.error_message e);
        exit 1
    | Invalid_argument msg ->
        Printf.eprintf "sketchproxy: %s\n%!" msg;
        exit 2
  in
  let actual_port = Server.Proxy.port proxy in
  (match port_file with
  | Some path ->
      let oc = open_out path in
      Printf.fprintf oc "%d\n" actual_port;
      close_out oc
  | None -> ());
  Printf.printf "sketchproxy listening on %s:%d (version %s, backends=%d, vnodes=%d)\n%!" host
    actual_port Stdx.Version.current (List.length backends) vnodes;
  let graceful _ = Server.Proxy.stop ~abort_connections:true proxy in
  Sys.set_signal Sys.sigint (Sys.Signal_handle graceful);
  Sys.set_signal Sys.sigterm (Sys.Signal_handle graceful);
  Server.Proxy.wait proxy;
  Printf.printf "sketchproxy: drained, bye\n%!"

let host_arg =
  Arg.(
    value
    & opt string "127.0.0.1"
    & info [ "host" ] ~doc:"Address to bind (dotted quad)." ~docv:"ADDR")

let port_arg =
  Arg.(
    value
    & opt int 0
    & info [ "p"; "port" ] ~doc:"TCP port; 0 lets the kernel choose (printed on stdout)."
        ~docv:"PORT")

let backends_arg =
  Arg.(
    value
    & opt_all string []
    & info [ "b"; "backend" ]
        ~doc:"A sketchd backend as $(docv). Repeatable; at least one is required."
        ~docv:"HOST:PORT")

let vnodes_arg =
  Arg.(
    value
    & opt int 128
    & info [ "vnodes" ] ~doc:"Consistent-hash ring points per backend." ~docv:"INT")

let health_interval_arg =
  Arg.(
    value
    & opt float 2.0
    & info [ "health-interval" ] ~doc:"Seconds between background ping sweeps." ~docv:"SEC")

let max_conns_arg =
  Arg.(
    value
    & opt int 8192
    & info [ "max-conns" ]
        ~doc:"Concurrent-connection cap; excess connections get a 503 frame and a close."
        ~docv:"INT")

let idle_timeout_arg =
  Arg.(
    value
    & opt float 0.
    & info [ "idle-timeout" ]
        ~doc:"Evict connections idle longer than $(docv) seconds (0 disables)." ~docv:"SEC")

let rate_limit_arg =
  Arg.(
    value
    & opt float 0.
    & info [ "rate-limit" ]
        ~doc:
          "Per-connection request budget in requests/second; beyond it requests are answered \
           429 (0 disables)."
        ~docv:"RPS")

let no_keepalive_arg =
  Arg.(
    value & flag & info [ "no-keepalive" ] ~doc:"Do not set SO_KEEPALIVE on accepted sockets.")

let port_file_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "port-file" ] ~doc:"Also write the chosen port number to $(docv)." ~docv:"FILE")

let quiet_arg =
  Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Suppress per-request log lines on stderr.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ]
        ~doc:
          "Record a Chrome trace_event profile of the proxy's lifetime to $(docv) (written at \
           shutdown; Perfetto-loadable)."
        ~docv:"FILE")

let () =
  let doc = "Consistent-hash routing proxy for a fleet of sketchd backends." in
  let info = Cmd.info "sketchproxy" ~version:Stdx.Version.current ~doc in
  let term =
    Term.(
      const serve $ host_arg $ port_arg $ backends_arg $ vnodes_arg $ health_interval_arg
      $ max_conns_arg $ idle_timeout_arg $ rate_limit_arg $ no_keepalive_arg $ port_file_arg
      $ quiet_arg $ trace_arg)
  in
  exit (Cmd.eval (Cmd.v info term))

(* sketchctl: command-line client for sketchd.

   Prints the server's raw response payload (byte-exact JSON) to stdout —
   `sketchctl run <id> --seed S` twice must print identical bytes, the
   second served from the daemon's cache; CI diffs exactly that. Exits
   nonzero when the server reports {"ok":false}. *)

open Cmdliner
module T = Report.Tabular

let host_arg =
  Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~doc:"Server address." ~docv:"ADDR")

let port_arg =
  Arg.(
    required
    & opt (some int) None
    & info [ "p"; "port" ] ~doc:"Server TCP port (required)." ~docv:"PORT")

let deadline_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "deadline-ms" ] ~doc:"Per-request deadline budget in milliseconds." ~docv:"INT")

(* Send one payload; print the byte-exact response; exit 1 on {"ok":false},
   2 on connection failure. *)
let roundtrip host port payload =
  match
    Server.Client.with_connection ~host ~port (fun c -> Server.Client.request c payload)
  with
  | response ->
      print_string response;
      print_newline ();
      let ok =
        match T.member "ok" (T.json_of_string response) with
        | Some (T.Jbool true) -> true
        | _ | (exception T.Parse_error _) -> false
      in
      if ok then `Ok () else `Error (false, "server reported an error (payload above)")
  | exception Unix.Unix_error (e, _, _) ->
      `Error (false, Printf.sprintf "cannot reach sketchd at %s:%d: %s" host port (Unix.error_message e))
  | exception (Server.Wire.Closed | Server.Wire.Malformed _) ->
      `Error (false, "connection lost mid-request")

let jobj fields = T.string_of_json (T.Jobj fields)

let simple_cmd name ~doc op =
  let run host port = roundtrip host port (jobj [ ("op", T.Jstr op) ]) in
  Cmd.v (Cmd.info name ~doc) Term.(ret (const run $ host_arg $ port_arg))

let list_cmd = simple_cmd "list" ~doc:"Fetch the experiment and protocol catalogue." "list"
let stats_cmd = simple_cmd "stats" ~doc:"Fetch server statistics (cache, queue, latency)." "stats"
let ping_cmd = simple_cmd "ping" ~doc:"Check liveness and version." "ping"
let shutdown_cmd = simple_cmd "shutdown" ~doc:"Ask the server to drain and exit." "shutdown"

let cluster_cmd =
  simple_cmd "cluster" ~doc:"Fetch a sketchproxy's backend health table (proxy only)." "cluster"

(* `cache ACTION`: inspect or invalidate the server's result cache. *)
let cache_cmd =
  let action_arg =
    Arg.(
      required
      & pos 0 (some (enum [ ("stats", "stats"); ("keys", "keys"); ("invalidate", "invalidate") ]))
          None
      & info [] ~doc:"One of $(b,stats), $(b,keys) or $(b,invalidate)." ~docv:"ACTION")
  in
  let prefix_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "prefix" ]
          ~doc:
            "Key prefix to match. Optional for $(b,keys) (default: every entry); required for \
             $(b,invalidate) — pass an explicit empty string to clear everything."
          ~docv:"PREFIX")
  in
  let limit_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "limit" ] ~doc:"Maximum keys listed by $(b,keys) (server default 100)."
          ~docv:"INT")
  in
  let run host port action prefix limit =
    let fields =
      [ ("op", T.Jstr "cache"); ("action", T.Jstr action) ]
      @ (match prefix with Some p -> [ ("prefix", T.Jstr p) ] | None -> [])
      @ match limit with Some l -> [ ("limit", T.Jint l) ] | None -> []
    in
    if action = "invalidate" && prefix = None then
      `Error (false, "cache invalidate requires --prefix (\"\" clears everything)")
    else roundtrip host port (jobj fields)
  in
  Cmd.v
    (Cmd.info "cache"
       ~doc:
         "Inspect the server's result cache (stats, keys by prefix) or invalidate entries by \
          key prefix.")
    Term.(ret (const run $ host_arg $ port_arg $ action_arg $ prefix_arg $ limit_arg))

(* `run ID`: uniform seed/jobs/smoke knobs plus free-form -P name=v,... *)
let run_cmd =
  let id_arg =
    Arg.(required & pos 0 (some string) None & info [] ~doc:"Experiment id (see `list`)." ~docv:"ID")
  in
  let smoke_arg = Arg.(value & flag & info [ "smoke" ] ~doc:"Tiny sizes (registry test sizes).") in
  let seed_arg =
    Arg.(value & opt (some int) None & info [ "seed" ] ~doc:"Random seed override." ~docv:"INT")
  in
  let jobs_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ]
          ~doc:"Worker domains for trial sharding server-side (default 1; never changes rows)."
          ~docv:"INT")
  in
  let param_arg =
    Arg.(
      value
      & opt_all string []
      & info [ "P"; "param" ]
          ~doc:"Experiment parameter override, $(b,NAME=INT) or $(b,NAME=I1,I2,...); repeatable."
          ~docv:"NAME=V")
  in
  let parse_param s =
    match String.index_opt s '=' with
    | None -> Error (Printf.sprintf "bad --param %S (expected NAME=V)" s)
    | Some i -> (
        let name = String.sub s 0 i in
        let v = String.sub s (i + 1) (String.length s - i - 1) in
        match int_of_string_opt v with
        | Some n -> Ok (name, T.Jint n)
        | None -> (
            let parts = String.split_on_char ',' v in
            match
              List.fold_right
                (fun p acc ->
                  match (int_of_string_opt p, acc) with
                  | Some n, Some l -> Some (T.Jint n :: l)
                  | _ -> None)
                parts (Some [])
            with
            | Some l -> Ok (name, T.Jarr l)
            | None -> Error (Printf.sprintf "bad --param %S (values must be integers)" s)))
  in
  let run host port id smoke seed jobs params deadline =
    let rec conv acc = function
      | [] -> Ok (List.rev acc)
      | s :: rest -> ( match parse_param s with Ok kv -> conv (kv :: acc) rest | Error e -> Error e)
    in
    match conv [] params with
    | Error e -> `Error (false, e)
    | Ok params ->
        let fields =
          [ ("op", T.Jstr "run"); ("id", T.Jstr id) ]
          @ (if smoke then [ ("smoke", T.Jbool true) ] else [])
          @ (if params <> [] then [ ("params", T.Jobj params) ] else [])
          @ (match seed with Some s -> [ ("seed", T.Jint s) ] | None -> [])
          @ (match jobs with Some x -> [ ("jobs", T.Jint x) ] | None -> [])
          @ match deadline with Some d -> [ ("deadline_ms", T.Jint d) ] | None -> []
        in
        roundtrip host port (jobj fields)
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run one experiment by id on the server (cached by content).")
    Term.(
      ret
        (const run $ host_arg $ port_arg $ id_arg $ smoke_arg $ seed_arg $ jobs_arg $ param_arg
       $ deadline_arg))

(* `simulate PROTOCOL`: named protocol on a generated graph. *)
let simulate_cmd =
  let protocol_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info []
          ~doc:
            "Protocol name (see `list`): trivial-mm, two-round-mis, prefix-mis-r4, \
             luby-mis-random, stream-matching, ..."
          ~docv:"PROTOCOL")
  in
  let kind_arg =
    Arg.(
      value
      & opt string "gnp"
      & info [ "graph" ] ~doc:"Graph kind: gnp, path, cycle, complete, star or hyperk."
          ~docv:"KIND")
  in
  let n_arg =
    Arg.(value & opt int 64 & info [ "n"; "vertices" ] ~doc:"Number of vertices." ~docv:"INT")
  in
  let p_arg =
    Arg.(value & opt float 0.1 & info [ "prob" ] ~doc:"Edge probability (gnp only)." ~docv:"P")
  in
  let m_arg =
    Arg.(
      value & opt int 32
      & info [ "m"; "edges" ] ~doc:"Number of hyperedges (hyperk only)." ~docv:"INT")
  in
  let k_arg =
    Arg.(
      value & opt int 3
      & info [ "k"; "arity" ] ~doc:"Pins per hyperedge (hyperk only)." ~docv:"INT")
  in
  let seed_arg = Arg.(value & opt int 7 & info [ "seed" ] ~doc:"Random seed." ~docv:"INT") in
  let run host port protocol kind n p m k seed deadline =
    let graph =
      ("kind", T.Jstr kind) :: ("n", T.Jint n)
      ::
      (match kind with
      | "gnp" -> [ ("p", T.Jfloat p) ]
      | "hyperk" -> [ ("m", T.Jint m); ("k", T.Jint k) ]
      | _ -> [])
    in
    let fields =
      [
        ("op", T.Jstr "simulate");
        ("protocol", T.Jstr protocol);
        ("graph", T.Jobj graph);
        ("seed", T.Jint seed);
      ]
      @ match deadline with Some d -> [ ("deadline_ms", T.Jint d) ] | None -> []
    in
    roundtrip host port (jobj fields)
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Run a named sketching protocol on a generated graph; exact bit accounting.")
    Term.(
      ret
        (const run $ host_arg $ port_arg $ protocol_arg $ kind_arg $ n_arg $ p_arg $ m_arg
       $ k_arg $ seed_arg $ deadline_arg))

let () =
  let doc = "Client for the sketchd sketch-service daemon." in
  let info = Cmd.info "sketchctl" ~version:Stdx.Version.current ~doc in
  let group =
    Cmd.group info
      [
        list_cmd; run_cmd; simulate_cmd; stats_cmd; cache_cmd; cluster_cmd; ping_cmd;
        shutdown_cmd;
      ]
  in
  exit (Cmd.eval group)

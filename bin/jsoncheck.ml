(* CI smoke gate: parse a JSON-lines stream (file argument or stdin) with
   the same minimal parser the test suite uses, failing loudly on the
   first malformed line. *)

let read_all ic = In_channel.input_all ic

let () =
  let input =
    match Sys.argv with
    | [| _ |] -> read_all stdin
    | [| _; file |] -> In_channel.with_open_bin file read_all
    | _ ->
        prerr_endline "usage: jsoncheck [FILE]  (reads stdin when FILE is omitted)";
        exit 2
  in
  match Report.Tabular.json_lines_of_string input with
  | [] ->
      prerr_endline "jsoncheck: no JSON lines found";
      exit 1
  | lines -> Printf.printf "jsoncheck: %d JSON lines parsed\n" (List.length lines)
  | exception Report.Tabular.Parse_error msg ->
      Printf.eprintf "jsoncheck: %s\n" msg;
      exit 1

(* CI smoke gate: parse a JSON-lines stream (file argument or stdin) with
   the same minimal parser the test suite uses, failing loudly on the
   first malformed line.

   With [--tables] the stream must additionally satisfy the
   BENCH_tables.json schema: every line an object carrying "id", "title",
   "wall_s", "alloc_bytes" and the GC-cost columns "minor_collections" /
   "major_collections" (ints >= 0) that the bench harness snapshots
   around each experiment body (see PERFORMANCE.md). *)

module T = Report.Tabular

let read_all ic = In_channel.input_all ic

let fail fmt = Printf.ksprintf (fun msg -> prerr_endline ("jsoncheck: " ^ msg); exit 1) fmt

(* One BENCH_tables.json line: presence and shape of the required fields. *)
let check_table_line i line =
  let want name = match T.member name line with
    | Some v -> v
    | None -> fail "line %d: missing field %S" i name
  in
  (match want "id" with T.Jstr _ -> () | _ -> fail "line %d: \"id\" is not a string" i);
  (match want "title" with T.Jstr _ -> () | _ -> fail "line %d: \"title\" is not a string" i);
  (match want "wall_s" with
  | T.Jint _ | T.Jfloat _ -> ()
  | _ -> fail "line %d: \"wall_s\" is not a number" i);
  (match want "alloc_bytes" with
  | T.Jint n when n >= 0 -> ()
  | T.Jfloat f when f >= 0. -> ()
  | T.Jint _ | T.Jfloat _ -> fail "line %d: \"alloc_bytes\" is negative" i
  | _ -> fail "line %d: \"alloc_bytes\" is not a number" i);
  List.iter
    (fun name ->
      match want name with
      | T.Jint n when n >= 0 -> ()
      | T.Jint _ -> fail "line %d: %S is negative" i name
      | _ -> fail "line %d: %S is not an int" i name)
    [ "minor_collections"; "major_collections" ];
  match want "rows" with
  | T.Jarr _ -> ()
  | _ -> fail "line %d: \"rows\" is not an array" i

let () =
  let tables, file =
    match Array.to_list Sys.argv with
    | [ _ ] -> (false, None)
    | [ _; "--tables" ] -> (true, None)
    | [ _; "--tables"; f ] | [ _; f; "--tables" ] -> (true, Some f)
    | [ _; f ] -> (false, Some f)
    | _ ->
        prerr_endline "usage: jsoncheck [--tables] [FILE]  (reads stdin when FILE is omitted)";
        exit 2
  in
  let input =
    match file with None -> read_all stdin | Some f -> In_channel.with_open_bin f read_all
  in
  match T.json_lines_of_string input with
  | [] -> fail "no JSON lines found"
  | lines ->
      if tables then List.iteri (fun i l -> check_table_line (i + 1) l) lines;
      Printf.printf "jsoncheck: %d JSON lines parsed%s\n" (List.length lines)
        (if tables then " (tables schema ok)" else "")
  | exception T.Parse_error msg -> fail "%s" msg

.PHONY: all build test smoke smoke-json serve-smoke trace-smoke cluster-smoke streams-smoke alloc-smoke doc check bench bench-release clean

all: build

build:
	dune build @all

test: build
	dune runtest

# Tiny end-to-end run exercising the parallel trial engine (jobs > 1):
# must print the same table as --jobs 1, per the determinism contract.
smoke: build
	dune exec bin/sketchlb.exe -- claim31 -m 5 --samples 3 --seed 1 --jobs 2
	dune exec bin/sketchlb.exe -- claim31 -m 5 --samples 3 --seed 1 --jobs 1

# Every experiment at shrunk sizes through the JSON-lines renderer,
# validated by the bundled parser. Built binaries are invoked directly:
# two `dune exec` processes joined by a pipe deadlock on the build lock.
smoke-json: build
	./_build/default/bin/sketchlb.exe all --fast --jobs 1 --format json --out - \
	  | ./_build/default/bin/jsoncheck.exe

# End-to-end smoke of the sketchd service: random port, catalogue, a
# cached-vs-uncached run pair (byte-identical payloads + a cache hit in
# stats), the cache RPC, graceful shutdown, then a 5000-idle-connection
# herd on the poll engine. See scripts/serve_smoke.sh.
serve-smoke: build
	bash scripts/serve_smoke.sh

# Smoke of the tracing layer: --trace must leave table output
# byte-identical and produce a valid Chrome trace_event JSON file with the
# expected spans. See scripts/trace_smoke.sh.
trace-smoke: build
	bash scripts/trace_smoke.sh

# End-to-end smoke of the sketchproxy routing tier: 1 proxy + 2 backends,
# simulate through the proxy, kill -9 the serving backend, failover must
# be byte-identical and the cluster RPC must report the death. See
# scripts/cluster_smoke.sh.
cluster-smoke: build
	bash scripts/cluster_smoke.sh

# End-to-end smoke of the multi-pass wing: round-frontier and
# stream-matching at smoke sizes, `bench streams --fast` with a
# validated BENCH_streams.json, and the multipass simulate protocols
# through sketchd + sketchproxy with byte-identical cached replay. See
# scripts/streams_smoke.sh.
streams-smoke: build
	bash scripts/streams_smoke.sh

# Allocation regression gate: regenerate BENCH_tables.json at --fast
# with jobs=1, validate its schema (GC columns included), and fail if a
# gated experiment's body allocation exceeds its committed ceiling. See
# scripts/alloc_smoke.sh and PERFORMANCE.md.
alloc-smoke: build
	bash scripts/alloc_smoke.sh

# The odoc API site (every lib/ module with its interface docs), rendered
# to _build/default/_doc/_html. Needs odoc on the switch.
doc:
	dune build @doc

check: build test smoke smoke-json serve-smoke trace-smoke cluster-smoke streams-smoke alloc-smoke

# Regenerates every table and writes BENCH_tables.json (one JSON line per
# table: id, title, wall-clock, body-only alloc_bytes and GC collection
# counts, rows). See PERFORMANCE.md for how to read the GC columns.
bench: build
	dune exec bench/main.exe -- tables

# Same, under the release profile at shrunk sizes — what the CI
# bench-release job runs. jobs=1 so the domain-local GC counters cover
# the full table.
bench-release:
	dune build --profile release @all
	./_build/default/bench/main.exe tables --fast -j 1
	./_build/default/bin/jsoncheck.exe --tables BENCH_tables.json

clean:
	dune clean

.PHONY: all build test smoke check bench clean

all: build

build:
	dune build @all

test: build
	dune runtest

# Tiny end-to-end run exercising the parallel trial engine (jobs > 1):
# must print the same table as --jobs 1, per the determinism contract.
smoke: build
	dune exec bin/sketchlb.exe -- claim31 -m 5 --samples 3 --seed 1 --jobs 2
	dune exec bin/sketchlb.exe -- claim31 -m 5 --samples 3 --seed 1 --jobs 1

check: build test smoke

bench: build
	dune exec bench/main.exe -- tables

clean:
	dune clean

(* Quickstart: the distributed sketching model in five minutes.

   We build a random graph, then run three one-round sketching protocols on
   it — every vertex sends a single message to a referee who never sees the
   graph — and check the referee's outputs against ground truth:

   1. AGM spanning forest  (polylog-size sketches; the positive result the
      paper contrasts against),
   2. (Delta+1)-coloring by palette sparsification (also polylog),
   3. trivial maximal matching (Theta(n log n): ship the whole
      neighbourhood — the only known one-round approach, per the paper's
      lower bound).

   Run with: dune exec examples/quickstart.exe
   Pass `--trace out.json` to export a Chrome trace_event file of the run
   (chrome://tracing or Perfetto): each stage below is an [example.*]
   span, with the graph-freeze and protocol spans nested inside. *)

let trace_out =
  match Array.to_list Sys.argv with _ :: "--trace" :: path :: _ -> Some path | _ -> None

let stage name f = Stdx.Trace.span ("example." ^ name) f

let () =
  Report.Trace_export.with_file trace_out @@ fun () ->
  let n = 96 in
  let rng = Stdx.Prng.create 2020 in
  let g = stage "build-graph" (fun () -> Dgraph.Gen.gnp rng n 0.15) in
  Printf.printf "input graph: n=%d m=%d max_degree=%d\n\n" (Dgraph.Graph.n g) (Dgraph.Graph.m g)
    (Dgraph.Graph.max_degree g);

  (* Public coins: one seed shared by all players and the referee. *)
  let coins = Sketchmodel.Public_coins.create 42 in

  (* 1. Spanning forest from AGM sketches. *)
  let forest, stats = stage "agm-forest" (fun () -> Agm.Spanning_forest.run g coins) in
  Printf.printf "AGM spanning forest: %d edges, valid=%b\n" (List.length forest)
    (Dgraph.Components.is_spanning_forest g forest);
  Format.printf "  cost: %a@." Sketchmodel.Model.pp_stats stats;

  (* 2. (Delta+1)-coloring. *)
  let outcome, stats = stage "palette-coloring" (fun () -> Coloring.Palette.run g coins) in
  (match outcome.Coloring.Palette.coloring with
  | Some colors ->
      Printf.printf "palette coloring: proper=%b colors_used<=%d (Delta+1=%d)\n"
        (Coloring.Palette.is_proper g colors)
        (Coloring.Palette.max_color colors + 1)
        (Dgraph.Graph.max_degree g + 1)
  | None -> print_endline "palette coloring: failed (rerun with larger lists)");
  Format.printf "  cost: %a@." Sketchmodel.Model.pp_stats stats;

  (* 3. Maximal matching the only way one round allows: send everything. *)
  let matching, stats =
    stage "trivial-mm" (fun () -> Sketchmodel.Model.run Protocols.Trivial.mm g coins)
  in
  Printf.printf "trivial maximal matching: %d edges, maximal=%b\n" (List.length matching)
    (Dgraph.Matching.is_maximal g matching);
  Format.printf "  cost: %a@." Sketchmodel.Model.pp_stats stats;

  print_endline
    "\nThe paper proves the third cost is unavoidable in one round: any maximal-matching\n\
     or MIS sketch needs Omega(sqrt n) bits per vertex, while forests and colorings\n\
     need only polylog(n)."

(* Dynamic graph streams and linear sketches — the connection the paper's
   related-work discussion draws (Section 1.1 / 1.3).

   AGM sketches are linear, so they survive edge deletions: we feed a
   stream full of inserted-then-deleted decoy edges through a streaming
   processor and observe (1) the final sketch state is bit-for-bit the set
   of messages the one-round distributed protocol would have sent on the
   final graph, and (2) the referee decodes a correct spanning forest —
   while the classical insertion-only greedy matching breaks the moment a
   matched edge is deleted.

   Run with: dune exec examples/streaming.exe
   Pass `--trace out.json` for a Chrome trace_event export of the run:
   the stream build, the sketch feed and the decode are [example.*]
   spans, with the [graph.*] freeze spans nested inside. *)

let trace_out =
  match Array.to_list Sys.argv with _ :: "--trace" :: path :: _ -> Some path | _ -> None

let stage name f = Stdx.Trace.span ("example." ^ name) f

let () =
  Report.Trace_export.with_file trace_out @@ fun () ->
  let n = 48 in
  let rng = Stdx.Prng.create 2026 in
  let g = Dgraph.Gen.gnp rng n 0.12 in
  let coins = Sketchmodel.Public_coins.create 99 in

  (* A stream ending at g, with as many decoy edges as real ones. *)
  let stream =
    stage "build-stream" (fun () -> Streams.Stream.with_decoys rng g ~decoys:(Dgraph.Graph.m g))
  in
  Printf.printf "final graph: n=%d m=%d; stream: %d events (%d of them deletions)\n" n
    (Dgraph.Graph.m g)
    (Streams.Stream.length stream)
    ((Streams.Stream.length stream - Dgraph.Graph.m g) / 2);

  let proc = Streams.Sketch_stream.create ~n coins in
  stage "feed-sketches" (fun () -> Streams.Sketch_stream.feed_all proc stream);

  let forest = stage "decode-forest" (fun () -> Streams.Sketch_stream.spanning_forest proc) in
  Printf.printf "streamed AGM sketches: %d bits of state, forest valid = %b\n"
    (Streams.Sketch_stream.space_bits proc)
    (Dgraph.Components.is_spanning_forest g forest);
  Printf.printf "state == one-round distributed messages, bit for bit: %b\n"
    (Streams.Sketch_stream.messages_equal_distributed proc g);

  (* The insertion-only baseline handles pure insertions... *)
  let mm = Streams.Insertion_greedy.mm_of_stream (Streams.Stream.shuffled rng g) in
  Printf.printf "\ninsertion-only greedy matching on a pure-insert stream: maximal = %b\n"
    (Dgraph.Matching.is_maximal g mm);

  (* ...but is structurally unable to process deletions. *)
  (try ignore (Streams.Insertion_greedy.mm_of_stream stream)
   with Invalid_argument msg -> Printf.printf "on the dynamic stream it refuses: %s\n" msg);

  print_endline
    "\nThis is why the known streaming lower bounds for MM/MIS only bind LINEAR\n\
     sketches (the paper's Section 1.1): linearity is what deletions force. The\n\
     paper's Result 1 is stronger - it binds arbitrary one-round sketches."

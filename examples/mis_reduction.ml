(* The Section-4 reduction: maximal matching on D_MM from a maximal
   independent set on the doubled graph H.

   H = two disjoint copies of G plus a complete bipartite graph between the
   two copies of the public vertices. Lemma 4.1: on a side whose public
   copies avoid the MIS, a hidden-matching pair (u, v) survived the edge
   dropping iff not both of its copies are independent-set members — so an
   MIS of H hands the referee the hidden matching of G, and an efficient
   MIS sketch would contradict Theorem 1 (that is Theorem 2).

   Run with: dune exec examples/mis_reduction.exe
   Pass `--trace out.json` for a Chrome trace_event export: sampling,
   the H construction and the end-to-end run are [example.*] spans,
   with the [graph.*] freeze spans of build_h nested inside. *)

let trace_out =
  match Array.to_list Sys.argv with _ :: "--trace" :: path :: _ -> Some path | _ -> None

let stage name f = Stdx.Trace.span ("example." ^ name) f

let () =
  Report.Trace_export.with_file trace_out @@ fun () ->
  let rs = Rsgraph.Rs_graph.bipartite 5 in
  let rng = Stdx.Prng.create 3 in
  let dmm = stage "sample-dmm" (fun () -> Core.Hard_dist.sample rs rng) in
  let g = dmm.Core.Hard_dist.graph in
  let h = stage "build-h" (fun () -> Core.Reduction.build_h dmm) in
  Printf.printf "G ~ D_MM: n=%d, m=%d; doubled graph H: n=%d, m=%d\n" (Dgraph.Graph.n g)
    (Dgraph.Graph.m g) (Dgraph.Graph.n h) (Dgraph.Graph.m h);

  (* Referee-side exact MIS of H (any maximal independent set works). *)
  let mis =
    Dgraph.Mis.greedy h ~order:(Stdx.Prng.permutation (Stdx.Prng.create 9) (Dgraph.Graph.n h)) ()
  in
  Printf.printf "MIS of H: %d vertices (independent=%b maximal=%b)\n" (List.length mis)
    (Dgraph.Mis.is_independent h mis)
    (Dgraph.Mis.is_maximal h mis);

  let empty_left = Core.Reduction.side_public_empty dmm mis Core.Reduction.Left in
  let empty_right = Core.Reduction.side_public_empty dmm mis Core.Reduction.Right in
  Printf.printf "public copies avoided by the MIS: left=%b right=%b (biclique forces >= one)\n"
    empty_left empty_right;

  let verdict = Core.Reduction.check dmm mis in
  Printf.printf "Lemma 4.1 holds on the public-free side: %b\n" verdict.Core.Reduction.lemma41_ok;
  Printf.printf
    "paper's referee (larger side): %d pairs, contains all %d surviving hidden edges=%b, %d valid\n"
    verdict.Core.Reduction.output_size verdict.Core.Reduction.surviving
    verdict.Core.Reduction.complete verdict.Core.Reduction.valid_edges;

  let exact = Core.Reduction.referee_output_min dmm mis in
  let survivors =
    List.sort compare (List.map snd (Core.Hard_dist.surviving_special dmm))
  in
  Printf.printf "min-side ablation recovers the hidden matching exactly: %b\n"
    (List.sort compare exact = survivors);

  (* End-to-end with a real sketching protocol: every G-vertex simulates
     both of its H-copies, so per-player cost at most doubles. *)
  let coins = Sketchmodel.Public_coins.create 555 in
  let verdict2, g_cost, h_cost =
    stage "end-to-end" (fun () -> Core.Reduction.end_to_end_cost dmm Protocols.Trivial.mis coins)
  in
  Printf.printf
    "\nend-to-end with the trivial MIS sketch: complete=%b\n\
    \  per-H-player max %d bits -> per-G-player max %d bits (blow-up %.2fx <= 2)\n"
    verdict2.Core.Reduction.complete h_cost.Sketchmodel.Model.max_bits
    g_cost.Sketchmodel.Model.max_bits
    (float_of_int g_cost.Sketchmodel.Model.max_bits /. float_of_int h_cost.Sketchmodel.Model.max_bits);

  print_endline
    "\nTheorem 2 follows: an MIS sketch of o(sqrt n) bits would yield a maximal-matching\n\
     sketch of o(sqrt n) bits on D_MM, contradicting Theorem 1."

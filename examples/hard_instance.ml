(* Inside the hard distribution D_MM (Section 3.1 of the paper).

   We sample an instance, dissect its hidden structure (the secret matching
   index j*, the public/unique vertex split, the surviving hidden
   matching), and then watch budget-limited protocols fail on it until the
   per-player budget reaches Theta(r log n) — while players handed the
   secret sigma and j-star by an oracle succeed with a handful of bits. The
   paper's whole lower bound is the statement that no protocol can
   substitute for that oracle.

   Run with: dune exec examples/hard_instance.exe
   Pass `--trace out.json` for a Chrome trace_event export: sampling,
   the Claim 3.1 check and the budget sweep are [example.*] spans. *)

let trace_out =
  match Array.to_list Sys.argv with _ :: "--trace" :: path :: _ -> Some path | _ -> None

let stage name f = Stdx.Trace.span ("example." ^ name) f

let () =
  Report.Trace_export.with_file trace_out @@ fun () ->
  let m = 10 in
  let rs = Rsgraph.Rs_graph.bipartite m in
  let rng = Stdx.Prng.create 77 in
  let dmm = stage "sample-dmm" (fun () -> Core.Hard_dist.sample rs rng) in

  Printf.printf "RS graph: N=%d vertices, t=%d induced matchings of size r=%d (verified=%b)\n"
    (Rsgraph.Rs_graph.n rs) rs.Rsgraph.Rs_graph.t_count rs.Rsgraph.Rs_graph.r
    (Rsgraph.Verify.is_valid_rs rs);
  Printf.printf "D_MM instance: k=%d copies, n=%d vertices, %d edges\n" dmm.Core.Hard_dist.k
    dmm.Core.Hard_dist.n
    (Dgraph.Graph.m dmm.Core.Hard_dist.graph);
  Printf.printf "  secret j* = %d; %d public vertices, %d unique vertices\n"
    dmm.Core.Hard_dist.j_star
    (Array.length dmm.Core.Hard_dist.public_labels)
    (dmm.Core.Hard_dist.n - Array.length dmm.Core.Hard_dist.public_labels);

  let surviving = Core.Hard_dist.surviving_special dmm in
  let k = dmm.Core.Hard_dist.k and r = Core.Hard_dist.r dmm in
  Printf.printf "  surviving hidden matching: %d edges (E = kr/2 = %.0f; Claim 3.1 floor kr/4 = %.0f)\n\n"
    (List.length surviving)
    (float_of_int (k * r) /. 2.)
    (float_of_int (k * r) /. 4.);

  (* Claim 3.1 in action: even an adversarial maximal matching is forced to
     contain many unique-unique edges. *)
  let stats = stage "claim31-check" (fun () -> Core.Claims.check dmm ()) in
  print_endline "Claim 3.1 — unique-unique edges in maximal matchings under various edge orders:";
  List.iter
    (fun (name, uu, _) -> Printf.printf "  %-16s %d (>= kr/4 = %.0f)\n" name uu stats.Core.Claims.claim_threshold)
    stats.Core.Claims.per_order;

  (* The budget sweep: protocols without the secret need Theta(r log n)
     bits; the oracle protocol needs ~log n. *)
  print_endline "\nBudget-limited protocols (uniform edge sampling), per-player bits vs outcome:";
  let coins = Sketchmodel.Public_coins.create 4242 in
  stage "budget-sweep" (fun () ->
  List.iter
    (fun budget ->
      let protocol =
        Protocols.Sampled_mm.protocol ~budget_bits:budget ~strategy:Protocols.Sampled_mm.Uniform
      in
      let output, msg_stats = Sketchmodel.Model.run protocol dmm.Core.Hard_dist.graph coins in
      let out_set = Hashtbl.create 64 in
      List.iter (fun e -> Hashtbl.replace out_set e ()) output;
      let hit = List.length (List.filter (fun (_, e) -> Hashtbl.mem out_set e) surviving) in
      Printf.printf "  b=%4d bits: recovered %d/%d hidden edges, maximal=%b (max msg=%d bits)\n"
        budget hit (List.length surviving)
        (Dgraph.Matching.is_maximal dmm.Core.Hard_dist.graph output)
        msg_stats.Sketchmodel.Model.max_bits)
    [ 8; 32; 128; 512 ]);

  print_endline
    "\nTheorem 1: any one-round protocol succeeding with probability 0.99 on D_MM needs\n\
     Omega(r) = Omega(sqrt(n) / e^Theta(sqrt(log n))) bits from some player — the secrecy\n\
     of (sigma, j*) is the entire obstruction, as the oracle ablation in\n\
     `sketchlb budget-sweep` shows."

(* A tour of what one-round sketches CAN do — the landscape the paper's
   introduction paints before proving maximal matching and MIS are the
   exceptions.

   1. Footnote 1, verbatim: two random clouds joined by one bridge edge;
      the referee pins down the bridge from O(log n)-bit sketches using
      sampled edges plus the telescoping sum trick.
   2. Connectivity / component counting via AGM sketches.
   3. The two-round adaptive escape hatch: with one extra round, maximal
      matching and MIS drop to Otilde(sqrt n) bits per player.

   Run with: dune exec examples/sketch_gallery.exe *)

let () =
  let rng = Stdx.Prng.create 1234 in

  (* --- 1. Footnote 1 --- *)
  print_endline "1. Footnote 1: the bridge between two random clouds";
  let half = 64 in
  let g, planted = Dgraph.Gen.bridge_of_clouds rng ~half ~p:0.5 in
  let coins = Sketchmodel.Public_coins.create 31337 in
  let result = Agm.Bridge_demo.run g ~samples_per_vertex:3 coins in
  let pu, pv = planted in
  Printf.printf "   planted bridge (%d, %d); referee found %s; max sketch %d bits\n" pu pv
    (match result.Agm.Bridge_demo.bridge with
    | Some (u, v) -> Printf.sprintf "(%d, %d)" u v
    | None -> "nothing")
    result.Agm.Bridge_demo.stats.Sketchmodel.Model.max_bits;

  (* --- 2. Connectivity --- *)
  print_endline "\n2. Component counting from AGM sketches";
  let components = 4 in
  let blocks =
    List.init components (fun i -> Dgraph.Gen.gnp rng 24 (0.3 +. (0.05 *. float_of_int i)))
  in
  let g = List.fold_left Dgraph.Graph.disjoint_union (List.hd blocks) (List.tl blocks) in
  let decoded, stats = Agm.Spanning_forest.connected_components g coins in
  let _, truth = Dgraph.Components.components g in
  Printf.printf "   true components=%d decoded=%d (max sketch %d bits for n=%d)\n" truth decoded
    stats.Sketchmodel.Model.max_bits (Dgraph.Graph.n g);

  (* --- 3. Two rounds --- *)
  print_endline "\n3. One extra round: Otilde(sqrt n) maximal matching and MIS";
  let n = 512 in
  let g = Dgraph.Gen.gnp rng n 0.1 in
  let mm, mm_stats = Protocols.Two_round_mm.run g coins in
  Printf.printf "   filtering MM : maximal=%b  per-player %d bits (r1=%d r2=%d), sqrt(n)=%.0f\n"
    (Dgraph.Matching.is_maximal g mm)
    mm_stats.Sketchmodel.Rounds.max_bits mm_stats.Sketchmodel.Rounds.round1_max
    mm_stats.Sketchmodel.Rounds.round2_max
    (sqrt (float_of_int n));
  let mis, mis_stats = Protocols.Two_round_mis.run g coins in
  Printf.printf "   prefix MIS   : maximal=%b  per-player %d bits (r1=%d r2=%d)\n"
    (Dgraph.Mis.is_maximal g mis)
    mis_stats.Sketchmodel.Rounds.max_bits mis_stats.Sketchmodel.Rounds.round1_max
    mis_stats.Sketchmodel.Rounds.round2_max;

  print_endline
    "\nThe paper's Result 1 sits exactly between these: one round is Omega(sqrt n)-hard\n\
     for MM/MIS, two rounds are Otilde(sqrt n)-easy, and connectivity-type problems\n\
     are polylog-easy in a single round."

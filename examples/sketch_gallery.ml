(* A tour of what one-round sketches CAN do — the landscape the paper's
   introduction paints before proving maximal matching and MIS are the
   exceptions.

   1. Footnote 1, verbatim: two random clouds joined by one bridge edge;
      the referee pins down the bridge from O(log n)-bit sketches using
      sampled edges plus the telescoping sum trick.
   2. Connectivity / component counting via AGM sketches.
   3. The two-round adaptive escape hatch: with one extra round, maximal
      matching and MIS drop to Otilde(sqrt n) bits per player.
   4. The k-uniform generalisation: hypergraph maximal matching through
      the same model, one-round trivial vs multi-round proposals.

   Run with: dune exec examples/sketch_gallery.exe
   Pass `--trace out.json` to export a Chrome trace_event file: every
   numbered section is an [example.*] span, with the [protocol.round]
   spans of sections 3 and 4 nested inside. *)

let trace_out =
  match Array.to_list Sys.argv with _ :: "--trace" :: path :: _ -> Some path | _ -> None

let stage name f = Stdx.Trace.span ("example." ^ name) f

let () =
  Report.Trace_export.with_file trace_out @@ fun () ->
  let rng = Stdx.Prng.create 1234 in

  (* --- 1. Footnote 1 --- *)
  print_endline "1. Footnote 1: the bridge between two random clouds";
  let half = 64 in
  let g, planted = Dgraph.Gen.bridge_of_clouds rng ~half ~p:0.5 in
  let coins = Sketchmodel.Public_coins.create 31337 in
  let result = stage "bridge" (fun () -> Agm.Bridge_demo.run g ~samples_per_vertex:3 coins) in
  let pu, pv = planted in
  Printf.printf "   planted bridge (%d, %d); referee found %s; max sketch %d bits\n" pu pv
    (match result.Agm.Bridge_demo.bridge with
    | Some (u, v) -> Printf.sprintf "(%d, %d)" u v
    | None -> "nothing")
    result.Agm.Bridge_demo.stats.Sketchmodel.Model.max_bits;

  (* --- 2. Connectivity --- *)
  print_endline "\n2. Component counting from AGM sketches";
  let components = 4 in
  let blocks =
    List.init components (fun i -> Dgraph.Gen.gnp rng 24 (0.3 +. (0.05 *. float_of_int i)))
  in
  let g = List.fold_left Dgraph.Graph.disjoint_union (List.hd blocks) (List.tl blocks) in
  let decoded, stats =
    stage "components" (fun () -> Agm.Spanning_forest.connected_components g coins)
  in
  let _, truth = Dgraph.Components.components g in
  Printf.printf "   true components=%d decoded=%d (max sketch %d bits for n=%d)\n" truth decoded
    stats.Sketchmodel.Model.max_bits (Dgraph.Graph.n g);

  (* --- 3. Two rounds --- *)
  print_endline "\n3. One extra round: Otilde(sqrt n) maximal matching and MIS";
  let n = 512 in
  let g = Dgraph.Gen.gnp rng n 0.1 in
  let mm, mm_stats = stage "two-round-mm" (fun () -> Protocols.Two_round_mm.run g coins) in
  Printf.printf "   filtering MM : maximal=%b  per-player %d bits (r1=%d r2=%d), sqrt(n)=%.0f\n"
    (Dgraph.Matching.is_maximal g mm)
    mm_stats.Sketchmodel.Rounds.max_bits mm_stats.Sketchmodel.Rounds.round1_max
    mm_stats.Sketchmodel.Rounds.round2_max
    (sqrt (float_of_int n));
  let mis, mis_stats = stage "two-round-mis" (fun () -> Protocols.Two_round_mis.run g coins) in
  Printf.printf "   prefix MIS   : maximal=%b  per-player %d bits (r1=%d r2=%d)\n"
    (Dgraph.Mis.is_maximal g mis)
    mis_stats.Sketchmodel.Rounds.max_bits mis_stats.Sketchmodel.Rounds.round1_max
    mis_stats.Sketchmodel.Rounds.round2_max;

  (* --- 4. Hypergraphs --- *)
  print_endline "\n4. k-uniform hypergraph maximal matching (DESIGN.md \xc2\xa711)";
  let h = Dgraph.Hgen.uniform_random (Stdx.Prng.create 7) ~n:60 ~m:40 ~k:3 in
  let hcoins = Sketchmodel.Public_coins.create 71 in
  let triv, triv_stats = stage "hyper-trivial-mm" (fun () -> Protocols.Hyper_mm.run_trivial h hcoins) in
  Printf.printf "   trivial MM   : |M|=%d  max sketch %d bits (one round)\n" (List.length triv)
    triv_stats.Sketchmodel.Model.max_bits;
  let it, it_stats = stage "hyper-iterated-mm" (fun () -> Protocols.Hyper_mm.run_iterated h hcoins) in
  Printf.printf "   iterated MM  : |M|=%d  max sketch %d bits over %d rounds (bcast %d bits)\n"
    (List.length it) it_stats.Protocols.Hyper_views.max_bits
    it_stats.Protocols.Hyper_views.rounds it_stats.Protocols.Hyper_views.broadcast_bits;

  print_endline
    "\nThe paper's Result 1 sits exactly between these: one round is Omega(sqrt n)-hard\n\
     for MM/MIS, two rounds are Otilde(sqrt n)-easy, and connectivity-type problems\n\
     are polylog-easy in a single round."

(* Registry lookup: run one experiment programmatically and render CSV.

   The experiment catalogue (lib/core/exp_all.ml) registers every DESIGN.md
   §4 table under a stable id. Here we look one up by id, override its
   parameters down to tiny sizes, and stream the resulting table through
   the CSV renderer — the same path `sketchlb run behrend --format csv`
   takes, minus the command line.

   Run with: dune exec examples/registry_csv.exe
   Pass `--trace out.json` for a Chrome trace_event export: the table
   computation is an [example.run-table] span with the registry's own
   [registry.*]/[trial.*] spans nested inside. *)

module R = Core.Exp_registry
module T = Report.Tabular

let trace_out =
  match Array.to_list Sys.argv with _ :: "--trace" :: path :: _ -> Some path | _ -> None

let stage name f = Stdx.Trace.span ("example." ^ name) f

let () =
  Report.Trace_export.with_file trace_out @@ fun () ->
  let id = "behrend" in
  let e =
    match Core.Exp_all.find id with
    | Some e -> e
    | None -> failwith ("experiment not registered: " ^ id)
  in
  Printf.printf "# %s — %s (%s)\n" (R.id e) (R.doc e) (R.title e);

  (* [R.smoke] is the registry's own tiny-parameter set (the one the test
     suite uses); any `params` entry can be overridden the same way. *)
  let table = stage "run-table" (fun () -> R.table e (R.smoke e)) in
  T.emit ~format:T.Csv ~out:stdout table;

  (* The same table as JSON-lines, tagged with the experiment id — this is
     what `--format json` and BENCH_tables.json emit per row. *)
  print_newline ();
  Printf.printf "# same rows as tagged JSON-lines:\n";
  T.emit ~tag:("experiment", R.id e) ~format:T.Json ~out:stdout table

(* Tests for Protocols: trivial, budget-limited, and two-round MM/MIS. *)

module Model = Sketchmodel.Model
module PC = Sketchmodel.Public_coins
module G = Dgraph.Graph

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let random_graph seed n p = Dgraph.Gen.gnp (Stdx.Prng.create seed) n p

let test_trivial_mm_correct () =
  List.iter
    (fun g ->
      let m, _ = Model.run Protocols.Trivial.mm g (PC.create 1) in
      checkb "maximal matching" true (Dgraph.Matching.is_maximal g m))
    [ random_graph 1 30 0.2; Dgraph.Gen.complete 9; G.empty 5; Dgraph.Gen.star 12 ]

let test_trivial_mis_correct () =
  List.iter
    (fun g ->
      let s, _ = Model.run Protocols.Trivial.mis g (PC.create 1) in
      checkb "maximal IS" true (Dgraph.Mis.is_maximal g s))
    [ random_graph 2 30 0.2; Dgraph.Gen.complete 9; G.empty 5; Dgraph.Gen.cycle 11 ]

let test_trivial_reconstruct_exact () =
  let g = random_graph 3 25 0.3 in
  let views = Model.views g in
  let writers = Array.map (fun v -> Protocols.Trivial.mm.Model.player v (PC.create 0)) views in
  let sketches = Array.map Stdx.Bitbuf.Reader.of_writer writers in
  let g' = Protocols.Trivial.reconstruct ~n:(G.n g) ~sketches in
  checkb "exact reconstruction" true (G.equal g g')

let test_trivial_cost_scales_with_degree () =
  let sparse = random_graph 4 200 0.02 and dense = random_graph 4 200 0.5 in
  let _, s1 = Model.run Protocols.Trivial.mm sparse (PC.create 2) in
  let _, s2 = Model.run Protocols.Trivial.mm dense (PC.create 2) in
  checkb "dense costs much more" true (s2.Model.max_bits > 5 * s1.Model.max_bits)

let test_sampled_budget_respected () =
  let g = random_graph 5 100 0.4 in
  List.iter
    (fun budget ->
      List.iter
        (fun strategy ->
          let protocol = Protocols.Sampled_mm.protocol ~budget_bits:budget ~strategy in
          let _, stats = Model.run protocol g (PC.create 3) in
          checkb
            (Printf.sprintf "b=%d %s within budget" budget
               (Protocols.Sampled_mm.strategy_name strategy))
            true
            (stats.Model.max_bits <= budget))
        Protocols.Sampled_mm.all_strategies)
    [ 0; 8; 17; 64; 256 ]

let test_sampled_output_disjoint_and_valid () =
  (* The referee's greedy output over reports is always vertex-disjoint,
     and since players only report real incident edges, every edge is in
     the graph. *)
  let g = random_graph 6 80 0.2 in
  let protocol =
    Protocols.Sampled_mm.protocol ~budget_bits:40 ~strategy:Protocols.Sampled_mm.Uniform
  in
  let output, _ = Model.run protocol g (PC.create 4) in
  let verdict = Dgraph.Matching.verify g output in
  checkb "disjoint" true verdict.Dgraph.Matching.disjoint;
  checkb "edges exist" true verdict.Dgraph.Matching.edges_exist

let test_sampled_large_budget_is_maximal () =
  let g = random_graph 7 60 0.15 in
  (* Budget big enough to ship every neighbourhood. *)
  let protocol =
    Protocols.Sampled_mm.protocol ~budget_bits:100000 ~strategy:Protocols.Sampled_mm.Prefix
  in
  let output, _ = Model.run protocol g (PC.create 5) in
  checkb "maximal with full reports" true (Dgraph.Matching.is_maximal g output)

let test_sampled_zero_budget () =
  let g = random_graph 8 40 0.3 in
  let protocol =
    Protocols.Sampled_mm.protocol ~budget_bits:0 ~strategy:Protocols.Sampled_mm.Uniform
  in
  let output, stats = Model.run protocol g (PC.create 6) in
  checki "no bits" 0 stats.Model.max_bits;
  checki "empty output" 0 (List.length output)

let test_two_round_mm_always_maximal () =
  List.iter
    (fun (seed, n, p) ->
      let g = random_graph seed n p in
      let m, stats = Protocols.Two_round_mm.run g (PC.create (seed * 7)) in
      checkb (Printf.sprintf "maximal n=%d p=%.2f" n p) true (Dgraph.Matching.is_maximal g m);
      checkb "cost positive" true (stats.Sketchmodel.Rounds.max_bits >= 0))
    [ (1, 50, 0.05); (2, 50, 0.3); (3, 120, 0.1); (4, 120, 0.5); (5, 30, 0.9); (6, 10, 0.) ]

let test_two_round_mis_always_maximal () =
  List.iter
    (fun (seed, n, p) ->
      let g = random_graph seed n p in
      let s, _ = Protocols.Two_round_mis.run g (PC.create (seed * 11)) in
      checkb (Printf.sprintf "maximal IS n=%d p=%.2f" n p) true (Dgraph.Mis.is_maximal g s))
    [ (1, 50, 0.05); (2, 50, 0.3); (3, 120, 0.1); (4, 120, 0.5); (5, 30, 0.9); (6, 10, 0.) ]

let test_two_round_structured_workloads () =
  let rng = Stdx.Prng.create 14 in
  let degrees = Dgraph.Gen.power_law_degrees rng ~n:120 ~exponent:2.2 ~dmax:30 in
  List.iter
    (fun (name, g) ->
      let mm, _ = Protocols.Two_round_mm.run g (PC.create 15) in
      checkb (name ^ " mm") true (Dgraph.Matching.is_maximal g mm);
      let mis, _ = Protocols.Two_round_mis.run g (PC.create 16) in
      checkb (name ^ " mis") true (Dgraph.Mis.is_maximal g mis))
    [
      ("grid", Dgraph.Gen.grid 8 9);
      ("power-law", Dgraph.Gen.configuration_model rng ~degrees);
      ("complete bipartite", Dgraph.Gen.complete_bipartite 20 30);
    ]

let test_two_round_round1_capped () =
  let g = random_graph 9 100 0.9 in
  (* cap_factor 1.0: round-1 ships at most ceil(sqrt(100)) = 10 neighbour
     ids; each id is at most 2 varint bytes plus the list length prefix. *)
  let _, stats = Protocols.Two_round_mm.run g (PC.create 12) in
  checkb "round1 bounded by cap" true (stats.Sketchmodel.Rounds.round1_max <= (11 * 16) + 16)

let test_two_round_cost_sublinear () =
  (* On dense graphs the two-round protocols beat the trivial one by a
     growing factor. *)
  let g = random_graph 10 400 0.5 in
  let coins = PC.create 13 in
  let _, trivial = Model.run Protocols.Trivial.mm g coins in
  let _, mm2 = Protocols.Two_round_mm.run g coins in
  checkb "2-round much cheaper on dense input" true
    (3 * mm2.Sketchmodel.Rounds.max_bits < trivial.Model.max_bits)

let qcheck_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"trivial MM maximal on random graphs" ~count:60
         QCheck.(pair (int_range 1 40) (int_range 0 1000))
         (fun (n, seed) ->
           let g = random_graph seed n 0.25 in
           let m, _ = Model.run Protocols.Trivial.mm g (PC.create seed) in
           Dgraph.Matching.is_maximal g m));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"two-round MM maximal on random graphs" ~count:40
         QCheck.(pair (int_range 2 60) (int_range 0 1000))
         (fun (n, seed) ->
           let g = random_graph seed n 0.2 in
           let m, _ = Protocols.Two_round_mm.run g (PC.create (seed + 1)) in
           Dgraph.Matching.is_maximal g m));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"two-round MIS maximal on random graphs" ~count:40
         QCheck.(pair (int_range 2 60) (int_range 0 1000))
         (fun (n, seed) ->
           let g = random_graph seed n 0.2 in
           let s, _ = Protocols.Two_round_mis.run g (PC.create (seed + 2)) in
           Dgraph.Mis.is_maximal g s));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"sampled budget never exceeded" ~count:60
         QCheck.(triple (int_range 2 40) (int_range 0 500) (int_range 0 200))
         (fun (n, seed, budget) ->
           let g = random_graph seed n 0.3 in
           let protocol =
             Protocols.Sampled_mm.protocol ~budget_bits:budget
               ~strategy:Protocols.Sampled_mm.Uniform
           in
           let _, stats = Model.run protocol g (PC.create seed) in
           stats.Model.max_bits <= budget));
  ]

let () =
  Alcotest.run "protocols"
    [
      ( "trivial",
        [
          Alcotest.test_case "mm correct" `Quick test_trivial_mm_correct;
          Alcotest.test_case "mis correct" `Quick test_trivial_mis_correct;
          Alcotest.test_case "reconstruct exact" `Quick test_trivial_reconstruct_exact;
          Alcotest.test_case "cost scales with degree" `Quick test_trivial_cost_scales_with_degree;
        ] );
      ( "sampled",
        [
          Alcotest.test_case "budget respected" `Quick test_sampled_budget_respected;
          Alcotest.test_case "output disjoint and valid" `Quick
            test_sampled_output_disjoint_and_valid;
          Alcotest.test_case "large budget maximal" `Quick test_sampled_large_budget_is_maximal;
          Alcotest.test_case "zero budget" `Quick test_sampled_zero_budget;
        ] );
      ( "two-round",
        [
          Alcotest.test_case "mm always maximal" `Quick test_two_round_mm_always_maximal;
          Alcotest.test_case "mis always maximal" `Quick test_two_round_mis_always_maximal;
          Alcotest.test_case "structured workloads" `Quick test_two_round_structured_workloads;
          Alcotest.test_case "round1 capped" `Quick test_two_round_round1_capped;
          Alcotest.test_case "cost sublinear" `Quick test_two_round_cost_sublinear;
        ] );
      ("protocols-properties", qcheck_tests);
    ]

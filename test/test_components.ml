(* Tests for Dgraph.Components and Dgraph.Unionfind. *)

module G = Dgraph.Graph
module C = Dgraph.Components
module UF = Dgraph.Unionfind

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let test_unionfind_basic () =
  let uf = UF.create 6 in
  checki "initial classes" 6 (UF.count uf);
  checkb "union works" true (UF.union uf 0 1);
  checkb "repeat union no-op" false (UF.union uf 0 1);
  checkb "same" true (UF.same uf 0 1);
  checkb "not same" false (UF.same uf 0 2);
  ignore (UF.union uf 1 2);
  checkb "transitive" true (UF.same uf 0 2);
  checki "classes after merges" 4 (UF.count uf)

let test_unionfind_members () =
  let uf = UF.create 5 in
  ignore (UF.union uf 0 3);
  ignore (UF.union uf 1 4);
  let members = UF.class_members uf in
  let sizes = Array.to_list members |> List.map List.length |> List.filter (fun s -> s > 0) in
  Alcotest.(check (list int)) "class sizes" [ 2; 2; 1 ] (List.sort (fun a b -> compare b a) sizes);
  (* Every vertex appears exactly once across classes. *)
  let all = List.concat (Array.to_list members) |> List.sort compare in
  Alcotest.(check (list int)) "partition" [ 0; 1; 2; 3; 4 ] all

let test_components_shapes () =
  let _, c1 = C.components (Dgraph.Gen.path 7) in
  checki "path connected" 1 c1;
  let _, c2 = C.components (G.empty 5) in
  checki "empty graph all isolated" 5 c2;
  let g = G.disjoint_union (Dgraph.Gen.cycle 4) (Dgraph.Gen.path 3) in
  let label, c3 = C.components g in
  checki "two components" 2 c3;
  checkb "same side" true (label.(0) = label.(2));
  checkb "different sides" true (label.(0) <> label.(5))

let test_same_component () =
  let g = G.create 4 [ (0, 1); (2, 3) ] in
  checkb "same" true (C.same_component g 0 1);
  checkb "different" false (C.same_component g 1 2)

let test_spanning_forest () =
  let rng = Stdx.Prng.create 9 in
  List.iter
    (fun g ->
      let f = C.spanning_forest g in
      checkb "valid forest" true (C.is_spanning_forest g f);
      let _, c = C.components g in
      checki "edge count" (G.n g - c) (List.length f))
    [
      Dgraph.Gen.path 8;
      Dgraph.Gen.cycle 8;
      Dgraph.Gen.complete 6;
      G.empty 4;
      Dgraph.Gen.gnp rng 40 0.1;
      G.disjoint_union (Dgraph.Gen.cycle 5) (Dgraph.Gen.complete 4);
    ]

let test_is_spanning_forest_rejects () =
  let g = Dgraph.Gen.cycle 4 in
  (* A cycle of edges is not a forest. *)
  checkb "cycle rejected" false
    (C.is_spanning_forest g (Array.to_list (G.edges_array g)));
  (* Too few edges: does not span. *)
  checkb "not spanning" false (C.is_spanning_forest g [ (0, 1) ]);
  (* An edge not in the graph. *)
  checkb "foreign edge" false (C.is_spanning_forest g [ (0, 2); (1, 3); (0, 1) ]);
  (* A correct spanning tree passes. *)
  checkb "valid tree" true (C.is_spanning_forest g [ (0, 1); (1, 2); (2, 3) ])

let test_structured_workloads () =
  let rng = Stdx.Prng.create 12 in
  let degrees = Dgraph.Gen.power_law_degrees rng ~n:80 ~exponent:2.3 ~dmax:12 in
  List.iter
    (fun (name, g) ->
      checkb name true (C.is_spanning_forest g (C.spanning_forest g)))
    [
      ("grid", Dgraph.Gen.grid 7 8);
      ("power-law", Dgraph.Gen.configuration_model rng ~degrees);
      ("regular-ish", Dgraph.Gen.random_regular_ish rng 50 4);
    ]

let qcheck_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"BFS forest always valid" ~count:300
         QCheck.(pair (int_range 1 40) (int_range 0 1000))
         (fun (n, seed) ->
           let rng = Stdx.Prng.create seed in
           let g = Dgraph.Gen.gnp rng n 0.1 in
           C.is_spanning_forest g (C.spanning_forest g)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"components consistent with union-find over edges" ~count:300
         QCheck.(pair (int_range 1 30) (int_range 0 1000))
         (fun (n, seed) ->
           let rng = Stdx.Prng.create seed in
           let g = Dgraph.Gen.gnp rng n 0.15 in
           let uf = UF.create n in
           G.iter_edges (fun u v -> ignore (UF.union uf u v)) g;
           let label, count = C.components g in
           count = UF.count uf
           && List.for_all
                (fun (u, v) -> (label.(u) = label.(v)) = UF.same uf u v)
                (List.concat_map (fun u -> List.init n (fun v -> (u, v))) (List.init n (fun u -> u)))));
  ]

let () =
  Alcotest.run "components"
    [
      ( "unionfind",
        [
          Alcotest.test_case "basic" `Quick test_unionfind_basic;
          Alcotest.test_case "members" `Quick test_unionfind_members;
        ] );
      ( "components",
        [
          Alcotest.test_case "shapes" `Quick test_components_shapes;
          Alcotest.test_case "same component" `Quick test_same_component;
          Alcotest.test_case "spanning forest" `Quick test_spanning_forest;
          Alcotest.test_case "rejects bad forests" `Quick test_is_spanning_forest_rejects;
          Alcotest.test_case "structured workloads" `Quick test_structured_workloads;
        ] );
      ("components-properties", qcheck_tests);
    ]

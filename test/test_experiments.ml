(* Smoke tests for Core.Experiments: every table/figure generator returns
   rows with internally consistent fields at small sizes. *)

module E = Core.Experiments

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let test_rs_table () =
  let rows = E.rs_table ~ms:[ 3; 6 ] in
  checki "two rows" 2 (List.length rows);
  List.iter
    (fun { E.row; verified } ->
      checkb "verified" true verified;
      checki "edges = r*t" (row.Rsgraph.Params.r * row.Rsgraph.Params.t) row.Rsgraph.Params.edges)
    rows

let test_behrend_table () =
  let rows = E.behrend_table ~ms:[ 10; 25 ] in
  List.iter
    (fun r ->
      checkb "best = max(greedy, behrend)" true
        (r.E.best_size = max r.E.greedy_size r.E.behrend_size);
      (match r.E.exact_size with
      | Some e -> checkb "exact >= best" true (e >= r.E.best_size)
      | None -> ());
      checkb "rate positive" true (r.E.rate > 0.))
    rows

let test_claim31 () =
  let rows = E.claim31 ~ms:[ 5 ] ~samples:3 ~seed:1 () in
  List.iter
    (fun r ->
      checkb "min <= mean" true (float_of_int r.E.min_union <= r.E.mean_union +. 1e-9);
      checkb "violations bounded" true (r.E.violations >= 0 && r.E.violations <= r.E.samples))
    rows

let test_budget_sweep () =
  let sweep = E.budget_sweep ~m:5 ~budgets:[ 4; 4096 ] ~trials:2 ~seed:2 () in
  checki "rows = budgets x strategies" (2 * 3) (List.length sweep.E.rows);
  List.iter
    (fun r ->
      checkb "fractions in range" true
        (r.E.special_recovered >= 0. && r.E.special_recovered <= 1.
        && r.E.relaxed_success >= 0. && r.E.relaxed_success <= 1.))
    sweep.E.rows;
  (* Huge budget should reach full relaxed success; oracle always does. *)
  let big = List.filter (fun r -> r.E.budget_bits = 4096) sweep.E.rows in
  List.iter (fun r -> checkb "large budget succeeds" true (r.E.relaxed_success >= 0.99)) big;
  checkb "oracle succeeds" true (sweep.E.oracle_success >= 0.99);
  checkb "oracle is cheap" true (sweep.E.oracle_bits <= 32)

let test_info_accounting () =
  let reports = E.info_accounting ~bits:[ 2 ] in
  checki "two sigma modes" 2 (List.length reports);
  List.iter
    (fun r -> checkb "inequalities hold" true (Core.Accounting.all_inequalities_hold r))
    reports

let test_upper_bounds () =
  let rows = E.upper_bounds ~ns:[ 48 ] ~seed:3 in
  List.iter
    (fun r ->
      checkb "agm ok" true r.E.agm_ok;
      checkb "coloring ok" true r.E.coloring_ok;
      checkb "two-round mm ok" true r.E.two_round_mm_ok;
      checkb "two-round mis ok" true r.E.two_round_mis_ok;
      checkb "bits positive" true (r.E.trivial_mm_bits > 0))
    rows

let test_coloring_contrast () =
  let rows = E.coloring_contrast ~ns:[ 128 ] ~seed:4 in
  List.iter
    (fun r ->
      checkb "proper" true r.E.proper;
      checkb "ratio sane" true (r.E.ratio > 0. && r.E.ratio <= 1.2))
    rows

let test_bound_curve () =
  let rows = E.bound_curve ~ms:[ 5; 20 ] in
  (match rows with
  | [ a; b ] ->
      checkb "n grows" true (b.E.n_dmm > a.E.n_dmm);
      checkb "LB below 2-round UB" true (a.E.lower_bound_bits < a.E.two_round_bits);
      checkb "2-round below trivial" true (a.E.two_round_bits < a.E.trivial_bits)
  | _ -> Alcotest.fail "expected two rows")

let test_reduction () =
  let rows = E.reduction_check ~ms:[ 4 ] ~samples:2 ~seed:5 in
  List.iter
    (fun r ->
      checkb "lemma" true r.E.lemma41_all;
      checkb "complete" true r.E.complete_all;
      checkb "min exact" true r.E.min_rule_exact_all;
      checkb "ratio <= 2" true (r.E.cost_ratio <= 2. +. 1e-9))
    rows

let test_bridge () =
  let rows = E.bridge ~halves:[ 24 ] ~samples:[ 3 ] ~trials:4 ~seed:6 in
  List.iter
    (fun r ->
      checkb "success rate valid" true (r.E.success >= 0. && r.E.success <= 1.);
      checkb "bits positive" true (r.E.max_bits > 0))
    rows

let test_packing () =
  let rows = E.packing_table ~ms:[ 4 ] ~tries:300 ~seed:7 () in
  List.iter
    (fun r -> checkb "some packing" true (r.E.packed_t >= 1 && r.E.behrend_t >= 1))
    rows

let test_estimate () =
  let rows = E.estimate_accounting ~bits:[ 14 ] ~samples:2000 ~seed:8 () in
  List.iter (fun r -> checkb "error small at saturating b" true (r.E.abs_error < 0.25)) rows

let test_yao () =
  let rows = E.yao_table ~m:5 ~budgets:[ 24 ] ~instances:6 ~seeds:3 ~seed:9 in
  List.iter
    (fun r ->
      checkb "dominates" true r.E.dominates;
      checkb "rates in range" true
        (r.E.randomized >= 0. && r.E.randomized <= r.E.derandomized +. 1e-9))
    rows

let test_bcc () =
  let rows = E.bcc_table ~ms:[ 5 ] ~trials:2 ~seed:10 in
  List.iter
    (fun r ->
      checkb "bcc maximal" true r.E.bcc_maximal;
      checkb "bits per round tiny" true (r.E.bcc_bits_per_round <= 24))
    rows

let test_k_sweep_smoke () =
  let rows = E.k_sweep ~m:5 ~ks:[ 2; 5 ] ~budgets:[ 8; 512 ] ~trials:2 ~seed:11 in
  checki "rows" 2 (List.length rows);
  List.iter (fun r -> checkb "LB positive" true (r.E.predicted > 0.)) rows

let test_streams_smoke () =
  let rows = E.stream_table ~ns:[ 20 ] ~seed:12 in
  List.iter
    (fun r ->
      checkb "forest ok" true r.E.forest_ok;
      checkb "bits equal" true r.E.messages_identical)
    rows

let test_connectivity_smoke () =
  let rows = E.connectivity_table ~seed:13 in
  List.iter
    (fun r ->
      checkb "cert valid" true r.E.cert_valid;
      checki "estimate exact" r.E.truth r.E.estimate;
      checkb "bipartite agrees" true (r.E.bipartite_sketch = r.E.bipartite_truth))
    rows

let test_rounds_smoke () =
  let rows = E.rounds_table ~ms:[ 5 ] ~seed:14 in
  List.iter
    (fun r ->
      checkb "two-round mm" true r.E.two_round_mm_maximal;
      checkb "two-round mis" true r.E.two_round_mis_maximal;
      checkb "one-round fraction valid" true
        (r.E.one_round_undominated >= 0. && r.E.one_round_undominated < 1.))
    rows

let test_approx_smoke () =
  let rows = E.approx_matching ~ns:[ 24 ] ~budgets:[ 16 ] ~trials:2 ~seed:15 in
  List.iter
    (fun r -> checkb "ratio in (0,1]" true (r.E.ratio_mean > 0. && r.E.ratio_mean <= 1.))
    rows

let () =
  Alcotest.run "experiments"
    [
      ( "experiments",
        [
          Alcotest.test_case "T1 rs table" `Quick test_rs_table;
          Alcotest.test_case "T2 behrend table" `Quick test_behrend_table;
          Alcotest.test_case "T3 claim31" `Quick test_claim31;
          Alcotest.test_case "F4 budget sweep" `Quick test_budget_sweep;
          Alcotest.test_case "F5 info accounting" `Slow test_info_accounting;
          Alcotest.test_case "T6 upper bounds" `Quick test_upper_bounds;
          Alcotest.test_case "T6b coloring contrast" `Quick test_coloring_contrast;
          Alcotest.test_case "F7 bound curve" `Quick test_bound_curve;
          Alcotest.test_case "T8 reduction" `Quick test_reduction;
          Alcotest.test_case "F9 bridge" `Quick test_bridge;
          Alcotest.test_case "T2b packing" `Quick test_packing;
          Alcotest.test_case "F5b estimate" `Quick test_estimate;
          Alcotest.test_case "T13 yao" `Quick test_yao;
          Alcotest.test_case "T14 bcc" `Quick test_bcc;
          Alcotest.test_case "F11 k-sweep" `Quick test_k_sweep_smoke;
          Alcotest.test_case "T10 streams" `Quick test_streams_smoke;
          Alcotest.test_case "T11 connectivity" `Slow test_connectivity_smoke;
          Alcotest.test_case "T12 rounds" `Quick test_rounds_smoke;
          Alcotest.test_case "F10 approx" `Quick test_approx_smoke;
        ] );
    ]

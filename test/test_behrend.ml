(* Tests for Rsgraph.Behrend: 3-AP-free set constructions. *)

module B = Rsgraph.Behrend

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let test_is_ap_free_positive () =
  List.iter
    (fun s -> checkb (String.concat "," (List.map string_of_int s)) true (B.is_ap_free s))
    [ []; [ 5 ]; [ 1; 2 ]; [ 1; 2; 4; 5 ]; [ 10; 11; 13; 14 ]; [ 1; 10; 100 ] ]

let test_is_ap_free_negative () =
  List.iter
    (fun s -> checkb (String.concat "," (List.map string_of_int s)) false (B.is_ap_free s))
    [ [ 1; 2; 3 ]; [ 2; 4; 6 ]; [ 1; 5; 9 ]; [ 1; 2; 4; 6 ]; [ 7; 1; 4 ] (* unsorted AP *) ]

let test_greedy_is_stanley () =
  (* Greedy from 1 gives 1,2,4,5,10,11,13,14,28,... (the Stanley sequence:
     n-1 has no digit 2 in base 3). *)
  Alcotest.(check (list int)) "stanley prefix" [ 1; 2; 4; 5; 10; 11; 13; 14; 28; 29 ]
    (B.greedy 29)

let test_greedy_ap_free () =
  List.iter
    (fun m ->
      let s = B.greedy m in
      checkb "ap free" true (B.is_ap_free s);
      checkb "in range" true (List.for_all (fun x -> x >= 1 && x <= m) s);
      checkb "sorted" true (List.sort compare s = s))
    [ 1; 2; 10; 100; 500 ]

let test_behrend_ap_free () =
  List.iter
    (fun m ->
      let s = B.behrend m in
      checkb "ap free" true (B.is_ap_free s);
      checkb "in range" true (List.for_all (fun x -> x >= 1 && x <= m) s);
      checkb "distinct" true (List.length (List.sort_uniq compare s) = List.length s))
    [ 10; 50; 200; 1000; 5000 ]

let test_maximum_small () =
  (* Known optimum sizes of AP-free subsets of [1, m] (OEIS A003002 r3(m)):
     m:      1 2 3 4 5 6 7 8 9 10 ...
     size:   1 2 2 3 4 4 4 4 5  5 *)
  List.iter
    (fun (m, size) -> checki (Printf.sprintf "r3(%d)" m) size (List.length (B.maximum m)))
    [ (1, 1); (2, 2); (3, 2); (4, 3); (5, 4); (6, 4); (8, 4); (9, 5); (10, 5); (13, 7); (14, 8) ]

let test_maximum_is_ap_free () =
  for m = 1 to 15 do
    checkb (string_of_int m) true (B.is_ap_free (B.maximum m))
  done

let test_best_dominates () =
  List.iter
    (fun m ->
      let best = List.length (B.best m) in
      checkb "best >= greedy" true (best >= List.length (B.greedy m));
      checkb "best >= behrend" true (best >= List.length (B.behrend m)))
    [ 10; 100; 1000 ]

let test_best_close_to_optimal_small () =
  (* Greedy is actually optimal-ish at tiny sizes; require >= 80% of exact. *)
  List.iter
    (fun m ->
      let best = List.length (B.best m) in
      let opt = List.length (B.maximum m) in
      checkb (Printf.sprintf "m=%d best=%d opt=%d" m best opt) true (best * 5 >= opt * 4))
    [ 5; 10; 15; 20; 25 ]

let test_shift () =
  let s = B.greedy 50 in
  checkb "shift preserves ap-freeness" true (B.is_ap_free (B.shift 1000 s));
  Alcotest.(check (list int)) "shift adds" [ 11; 12; 14 ] (B.shift 10 [ 1; 2; 4 ])

let test_creates_ap_consistency () =
  (* creates_ap must agree with is_ap_free of the extended set. *)
  let cap = 40 in
  let sets = [ [ 1; 2 ]; [ 1; 2; 4; 5 ]; [ 3; 7 ]; [] ] in
  List.iter
    (fun s ->
      let members = Stdx.Bitset.of_list cap s in
      for x = 1 to cap - 1 do
        if not (List.mem x s) then
          checkb
            (Printf.sprintf "x=%d into [%s]" x (String.concat ";" (List.map string_of_int s)))
            (not (B.is_ap_free (x :: s)))
            (B.creates_ap members x)
      done)
    sets

let qcheck_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"creates_ap matches is_ap_free" ~count:300
         QCheck.(pair (list_of_size Gen.(int_range 0 8) (int_range 1 30)) (int_range 1 30))
         (fun (raw, x) ->
           let s = List.sort_uniq compare raw in
           if (not (B.is_ap_free s)) || List.mem x s then true
           else begin
             let members = Stdx.Bitset.of_list 31 s in
             B.creates_ap members x = not (B.is_ap_free (x :: s))
           end));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"greedy monotone in m" ~count:50 (QCheck.int_range 2 300)
         (fun m ->
           List.length (B.greedy m) >= List.length (B.greedy (m - 1))));
  ]

let () =
  Alcotest.run "behrend"
    [
      ( "behrend",
        [
          Alcotest.test_case "ap-free positive" `Quick test_is_ap_free_positive;
          Alcotest.test_case "ap-free negative" `Quick test_is_ap_free_negative;
          Alcotest.test_case "greedy = stanley" `Quick test_greedy_is_stanley;
          Alcotest.test_case "greedy ap-free" `Quick test_greedy_ap_free;
          Alcotest.test_case "behrend ap-free" `Quick test_behrend_ap_free;
          Alcotest.test_case "maximum matches known values" `Quick test_maximum_small;
          Alcotest.test_case "maximum ap-free" `Quick test_maximum_is_ap_free;
          Alcotest.test_case "best dominates" `Quick test_best_dominates;
          Alcotest.test_case "best near optimal (small)" `Quick test_best_close_to_optimal_small;
          Alcotest.test_case "shift" `Quick test_shift;
          Alcotest.test_case "creates_ap consistency" `Quick test_creates_ap_consistency;
        ] );
      ("behrend-properties", qcheck_tests);
    ]

(* Tests for Core.Accounting: the exact Lemma 3.3-3.5 chain on enumerable
   micro-instances — the heart of the Theorem 1 reproduction. *)

module A = Core.Accounting

let checkb = Alcotest.(check bool)
let checkf msg = Alcotest.(check (float 1e-6)) msg

let tiny_spec ?(strategy = A.Truncate) bits =
  { A.rs = A.tiny_rs (); k = 2; bits; strategy; sigma_mode = A.Enumerate_sigma }

let micro_spec ?(strategy = A.Truncate) bits =
  { A.rs = A.micro_rs (); k = 2; bits; strategy; sigma_mode = A.Fix_sigma }

let test_tiny_all_inequalities () =
  List.iter
    (fun b ->
      let r = A.analyze (tiny_spec b) in
      checkb (Printf.sprintf "b=%d" b) true (A.all_inequalities_hold r))
    [ 0; 1; 2; 3; 4; 6 ]

let test_micro_all_inequalities () =
  List.iter
    (fun b ->
      let r = A.analyze (micro_spec b) in
      checkb (Printf.sprintf "b=%d" b) true (A.all_inequalities_hold r))
    [ 0; 2; 6; 10; 14 ]

let test_hash_strategy () =
  List.iter
    (fun b ->
      let r = A.analyze (tiny_spec ~strategy:A.Hash b) in
      checkb (Printf.sprintf "hash b=%d" b) true (A.all_inequalities_hold r))
    [ 0; 1; 3 ]

let test_zero_budget_no_information () =
  let r = A.analyze (tiny_spec 0) in
  checkf "I = 0" 0. r.A.info;
  checkf "H(M|Pi) = kr" r.A.kr r.A.h_m_given_pi;
  checkf "nothing recovered" 0. r.A.expected_recovered;
  checkf "no public entropy" 0. r.A.h_public

let test_saturating_budget_full_information () =
  (* With budget >= n, the Truncate message is the full adjacency bitmap,
     so the transcript determines the graph and I = kr. *)
  let r = A.analyze (tiny_spec 6) in
  checkf "I = kr" r.A.kr r.A.info;
  checkf "H(M|Pi) = 0" 0. r.A.h_m_given_pi;
  checkf "all special edges recovered" (r.A.kr /. 2.) r.A.expected_recovered

let test_info_monotone_in_budget () =
  let infos =
    List.map (fun b -> (A.analyze (tiny_spec b)).A.info) [ 0; 1; 2; 3; 4; 5; 6 ]
  in
  let rec monotone = function
    | a :: (b :: _ as rest) -> a <= b +. 1e-9 && monotone rest
    | [ _ ] | [] -> true
  in
  checkb "info non-decreasing in b" true (monotone infos)

let test_eq1_exact () =
  List.iter
    (fun b ->
      let r = A.analyze (tiny_spec b) in
      checkb "Eq (1) holds to 1e-9" true (r.A.eq1_residual < 1e-9))
    [ 0; 2; 4 ]

let test_lemma35_needs_sigma () =
  (* The per-copy direct-sum discount (Lemma 3.5) is guaranteed under full
     sigma enumeration; check slacks explicitly. *)
  let r = A.analyze (tiny_spec 3) in
  Array.iter (fun s -> checkb "lemma 3.5 slack >= 0" true (s >= -1e-9)) r.A.lemma35_slacks;
  checkb "sigma was enumerated" true r.A.sigma_enumerated

let test_outcome_count () =
  let r = A.analyze (tiny_spec 2) in
  (* n = 6 -> 720 sigmas; t = 2; 2 copies x 2 edges -> 16 drop patterns. *)
  Alcotest.(check int) "outcomes" (720 * 2 * 16) r.A.outcomes;
  let r2 = A.analyze (micro_spec 2) in
  (* fixed sigma; t = 2; 2 copies x 4 edges -> 256 drop patterns. *)
  Alcotest.(check int) "micro outcomes" (2 * 256) r2.A.outcomes

let test_budget_bound_formula () =
  let r = A.analyze (micro_spec 4) in
  (* micro RS: N = 10, r = 2, t = 2, k = 2: |P| = 6, kN/t = 10 -> 16 b. *)
  checkf "budget bound" 64. r.A.budget_bound

let test_guards () =
  let raises f = try f (); false with Invalid_argument _ -> true in
  checkb "space too large" true
    (raises (fun () ->
         ignore
           (A.analyze
              { A.rs = Rsgraph.Rs_graph.bipartite 3; k = 3; bits = 1; strategy = A.Truncate;
                sigma_mode = A.Fix_sigma })));
  checkb "sigma enumeration too large" true
    (raises (fun () ->
         ignore
           (A.analyze
              { A.rs = A.micro_rs (); k = 2; bits = 1; strategy = A.Truncate;
                sigma_mode = A.Enumerate_sigma })))

let test_other_shapes () =
  (* The chain must hold for other micro shapes too: k=1, k=3 on the tiny
     family, and a derived (r=2, t=2) trivial instance. *)
  let shapes =
    [
      ("k=1 tiny", { A.rs = A.tiny_rs (); k = 1; bits = 3; strategy = A.Truncate;
                     sigma_mode = A.Fix_sigma });
      ("k=3 tiny", { A.rs = A.tiny_rs (); k = 3; bits = 3; strategy = A.Truncate;
                     sigma_mode = A.Fix_sigma });
      ("r=2 t=2 trivial",
       { A.rs = Rsgraph.Rs_graph.trivial ~r:2 ~t:2; k = 2; bits = 4; strategy = A.Truncate;
         sigma_mode = A.Fix_sigma });
      ("derived shrink of bipartite",
       { A.rs = Rsgraph.Derived.shrink_matchings (Rsgraph.Derived.take_matchings
                   (Rsgraph.Rs_graph.bipartite 3) 2) 1;
         k = 2; bits = 5; strategy = A.Truncate; sigma_mode = A.Fix_sigma });
    ]
  in
  List.iter
    (fun (name, spec) ->
      let r = A.analyze spec in
      checkb name true (A.all_inequalities_hold r))
    shapes

let test_bipartite_m3_subset () =
  (* A genuinely larger micro space: first two matchings of the m=3
     bipartite RS graph, k=2 (2 x 4 edges -> 256 codes x t=2). *)
  let rs = Rsgraph.Derived.take_matchings (Rsgraph.Rs_graph.bipartite 3) 2 in
  (* n = 19 with 11 public labels under the identity sigma, so the
     adjacency prefix must reach past label 11 to reveal anything about
     the unique vertices. *)
  let spec = { A.rs; k = 2; bits = 16; strategy = A.Truncate; sigma_mode = A.Fix_sigma } in
  let r = A.analyze spec in
  checkb "inequalities hold" true (A.all_inequalities_hold r);
  checkb "info positive at b=16" true (r.A.info > 0.)

let test_theorem_chain_interpretation () =
  (* The final chain: info <= H(Pi(P)) + sum_i H(Pi(U_i))/t <= budget bound.
     Verify the middle quantity explicitly. *)
  let r = A.analyze (tiny_spec 4) in
  let t = 2. in
  let middle =
    r.A.h_public +. Array.fold_left (fun acc h -> acc +. (h /. t)) 0. r.A.per_copy_h
  in
  checkb "info <= H(P) + sum H(U_i)/t" true (r.A.info <= middle +. 1e-9);
  checkb "middle <= budget bound" true (middle <= r.A.budget_bound +. 1e-9)

(* The graph-free enumeration path vs the reference: for random outcomes
   (σ, j, code), [enumerated_views] must equal
   [Hard_dist.augmented_views (Hard_dist.make ...)] on the materialised
   graph, and [enumerated_messages] (the Truncate bitmap fast path) must
   equal [message] applied to those reference views. This is the
   byte-identity contract that lets [analyze] skip graph freezes
   (PERFORMANCE.md, "Graph-free accounting frames"). *)
let test_graph_free_enumeration_matches_reference () =
  let view_eq (a : Sketchmodel.Model.view) (b : Sketchmodel.Model.view) =
    a.Sketchmodel.Model.n = b.Sketchmodel.Model.n
    && a.Sketchmodel.Model.vertex = b.Sketchmodel.Model.vertex
    && a.Sketchmodel.Model.neighbors = b.Sketchmodel.Model.neighbors
  in
  List.iter
    (fun (name, spec) ->
      let rs = spec.A.rs in
      let edge_count = Dgraph.Graph.m rs.Rsgraph.Rs_graph.graph in
      let k = spec.A.k in
      let nn = Rsgraph.Rs_graph.n rs in
      let rr = rs.Rsgraph.Rs_graph.r in
      let n = nn - (2 * rr) + (2 * rr * k) in
      let rng = Stdx.Prng.create 4242 in
      for trial = 1 to 25 do
        (* Fisher–Yates permutation of the G-labels. *)
        let sigma = Array.init n (fun i -> i) in
        for i = n - 1 downto 1 do
          let j = Stdx.Prng.int rng (i + 1) in
          let tmp = sigma.(i) in
          sigma.(i) <- sigma.(j);
          sigma.(j) <- tmp
        done;
        let j = Stdx.Prng.int rng rs.Rsgraph.Rs_graph.t_count in
        let code = Stdx.Prng.int rng (1 lsl (k * edge_count)) in
        let kept =
          Array.init k (fun i ->
              Array.init edge_count (fun e -> code land (1 lsl ((i * edge_count) + e)) <> 0))
        in
        let dmm = Core.Hard_dist.make rs ~k ~j_star:j ~sigma ~kept in
        let reference = Core.Hard_dist.augmented_views dmm in
        let fast = A.enumerated_views spec ~sigma ~j ~code in
        checkb
          (Printf.sprintf "%s trial %d: views identical" name trial)
          true
          (Array.length fast = Array.length reference
          && Array.for_all2 view_eq fast reference);
        let ref_msgs = Array.map (A.message spec) reference in
        let fast_msgs = A.enumerated_messages spec ~sigma ~j ~code in
        checkb
          (Printf.sprintf "%s trial %d: messages byte-identical" name trial)
          true (fast_msgs = ref_msgs)
      done)
    [
      ("tiny/truncate", tiny_spec 3);
      ("tiny/hash", tiny_spec ~strategy:A.Hash 3);
      ("micro/truncate", micro_spec 4);
      ("micro/truncate b=0", micro_spec 0);
    ]

let () =
  Alcotest.run "accounting"
    [
      ( "accounting",
        [
          Alcotest.test_case "tiny: all inequalities" `Slow test_tiny_all_inequalities;
          Alcotest.test_case "micro: all inequalities" `Quick test_micro_all_inequalities;
          Alcotest.test_case "hash strategy" `Slow test_hash_strategy;
          Alcotest.test_case "zero budget" `Quick test_zero_budget_no_information;
          Alcotest.test_case "saturating budget" `Quick test_saturating_budget_full_information;
          Alcotest.test_case "monotone in budget" `Slow test_info_monotone_in_budget;
          Alcotest.test_case "Eq (1) exact" `Quick test_eq1_exact;
          Alcotest.test_case "lemma 3.5 under sigma enumeration" `Quick test_lemma35_needs_sigma;
          Alcotest.test_case "outcome counts" `Quick test_outcome_count;
          Alcotest.test_case "budget bound formula" `Quick test_budget_bound_formula;
          Alcotest.test_case "guards" `Quick test_guards;
          Alcotest.test_case "other shapes" `Quick test_other_shapes;
          Alcotest.test_case "bipartite m=3 subset" `Slow test_bipartite_m3_subset;
          Alcotest.test_case "theorem chain" `Quick test_theorem_chain_interpretation;
          Alcotest.test_case "graph-free path == reference" `Quick
            test_graph_free_enumeration_matches_reference;
        ] );
    ]

(* Tests for Rsgraph.Rs_graph, Rsgraph.Verify and Rsgraph.Params. *)

module Rs = Rsgraph.Rs_graph
module V = Rsgraph.Verify
module P = Rsgraph.Params
module G = Dgraph.Graph

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let test_bipartite_construction () =
  List.iter
    (fun m ->
      let rs = Rs.bipartite m in
      checki "N = 5m" (5 * m) (Rs.n rs);
      checki "t = m" m rs.Rs.t_count;
      checki "r = |A|" (List.length (Rsgraph.Behrend.best m)) rs.Rs.r;
      checki "edges = r * t" (rs.Rs.r * rs.Rs.t_count) (G.m rs.Rs.graph);
      checkb "verified" true (V.is_valid_rs rs))
    [ 2; 3; 5; 10; 25; 60 ]

let test_bipartite_sides () =
  (* Left endpoints live in [0, 2m), right endpoints in [2m, 5m). *)
  let m = 10 in
  let rs = Rs.bipartite m in
  G.iter_edges
    (fun u v ->
      let u, v = G.normalize_edge u v in
      checkb "bipartite sides" true (u < 2 * m && v >= 2 * m))
    rs.Rs.graph

let test_matching_sizes_equal () =
  let rs = Rs.bipartite 20 in
  Array.iter (fun mt -> checki "size r" rs.Rs.r (Array.length mt)) rs.Rs.matchings

let test_trivial () =
  let rs = Rs.trivial ~r:3 ~t:4 in
  checki "N = 2rt" 24 (Rs.n rs);
  checki "r" 3 rs.Rs.r;
  checki "t" 4 rs.Rs.t_count;
  checkb "verified" true (V.is_valid_rs rs);
  checki "max degree 1" 1 (G.max_degree rs.Rs.graph)

let test_matching_vertices () =
  let rs = Rs.bipartite 10 in
  for j = 0 to rs.Rs.t_count - 1 do
    checki "2r vertices" (2 * rs.Rs.r) (Array.length (Rs.matching_vertices rs j))
  done

let test_matching_index_roundtrip () =
  let rs = Rs.bipartite 8 in
  Array.iteri
    (fun j mt ->
      Array.iter
        (fun e ->
          match Rs.matching_index_of_edge rs e with
          | Some j' -> checki "index roundtrip" j j'
          | None -> Alcotest.fail "edge lost")
        mt)
    rs.Rs.matchings;
  checkb "non-edge" true (Rs.matching_index_of_edge rs (0, 1) = None)

let test_of_matchings_rejections () =
  let raises_invalid f = try f (); false with Invalid_argument _ -> true in
  (* Not a matching: shared endpoint. *)
  checkb "shared endpoint" true
    (raises_invalid (fun () -> ignore (Rs.of_matchings ~n:4 [| [| (0, 1); (1, 2) |] |])));
  (* Unequal sizes. *)
  checkb "unequal sizes" true
    (raises_invalid (fun () ->
         ignore (Rs.of_matchings ~n:8 [| [| (0, 1); (2, 3) |]; [| (4, 5) |] |])));
  (* Duplicate edge across classes. *)
  checkb "duplicate edge" true
    (raises_invalid (fun () -> ignore (Rs.of_matchings ~n:4 [| [| (0, 1) |]; [| (0, 1) |] |])));
  (* Non-induced: K4 minus nothing - matchings {01,23} and {02,13}: edge 02
     connects endpoints of the first matching. *)
  checkb "non-induced" true
    (raises_invalid (fun () ->
         ignore (Rs.of_matchings ~n:4 [| [| (0, 1); (2, 3) |]; [| (0, 2); (1, 3) |] |])));
  (* Empty. *)
  checkb "no matchings" true (raises_invalid (fun () -> ignore (Rs.of_matchings ~n:2 [||])))

let test_of_matchings_accepts_valid () =
  (* Two disjoint matchings on separate vertices: trivially induced. *)
  let rs = Rs.of_matchings ~n:8 [| [| (0, 1); (2, 3) |]; [| (4, 5); (6, 7) |] |] in
  checkb "valid" true (V.is_valid_rs rs)

let test_verify_catches_planted_violation () =
  (* Build a valid RS graph, then hand-check the verifier rejects a graph
     with an extra cross edge. *)
  let rs = Rs.trivial ~r:2 ~t:2 in
  let bad_graph = G.union rs.Rs.graph (G.create (Rs.n rs) [ (0, 2) ]) in
  let report = V.check bad_graph rs.Rs.matchings in
  checkb "partition broken" false report.V.edge_partition;
  checkb "induced broken" false report.V.all_induced;
  checkb "matchings still fine" true report.V.all_matchings

let test_params_bound () =
  let rs = Rs.bipartite 25 in
  let b = P.bound_of_rs rs ~k:rs.Rs.t_count in
  let nn = Rs.n rs and r = rs.Rs.r and t = rs.Rs.t_count in
  checki "n formula" (nn - (2 * r) + (2 * r * t)) b.P.n_vertices;
  checki "public players" (nn - (2 * r)) b.P.public_players;
  checki "unique players" (t * nn) b.P.unique_players;
  checkb "info needed = kr/6" true (abs_float (b.P.info_needed -. (float_of_int (t * r) /. 6.)) < 1e-9);
  (* b >= (kr/6) / (|P| + kN/t); with k = t this is kr / (6(|P| + N)). *)
  let expected =
    float_of_int (t * r) /. 6. /. (float_of_int (nn - (2 * r)) +. float_of_int nn)
  in
  checkb "bound arithmetic" true (abs_float (b.P.bits_lower_bound -. expected) < 1e-9)

let test_params_row () =
  let row = P.rs_row 10 in
  checki "m" 10 row.P.m;
  checki "N" 50 row.P.big_n;
  checki "edges" (row.P.r * row.P.t) row.P.edges;
  checkb "density in (0,1)" true (row.P.density > 0. && row.P.density < 1.)

let test_params_guards () =
  Alcotest.check_raises "bad k" (Invalid_argument "Params.bound") (fun () ->
      ignore (P.bound ~big_n:10 ~r:2 ~t:3 ~k:0));
  Alcotest.check_raises "N too small" (Invalid_argument "Params.bound") (fun () ->
      ignore (P.bound ~big_n:4 ~r:2 ~t:3 ~k:1))

let test_behrend_rate_bounded () =
  (* The Behrend exponent constant should stay bounded (say < 2) as m
     grows: that is the e^{Theta(sqrt(log))} shape of Proposition 2.1. *)
  List.iter
    (fun m ->
      let rate = P.behrend_rate m in
      checkb (Printf.sprintf "rate(%d)=%.3f" m rate) true (rate > 0. && rate < 2.))
    [ 100; 1000; 10000 ]

let test_derived_disjoint_union () =
  let a = Rs.trivial ~r:2 ~t:3 and b = Rs.trivial ~r:2 ~t:2 in
  let u = Rsgraph.Derived.disjoint_union a b in
  checki "t adds" 5 u.Rs.t_count;
  checki "r unchanged" 2 u.Rs.r;
  checkb "valid" true (V.is_valid_rs u);
  Alcotest.check_raises "unequal r" (Invalid_argument "Derived.disjoint_union: unequal r")
    (fun () -> ignore (Rsgraph.Derived.disjoint_union a (Rs.trivial ~r:3 ~t:1)))

let test_derived_widen () =
  let a = Rs.bipartite 3 and b = Rs.trivial ~r:1 ~t:3 in
  let w = Rsgraph.Derived.widen a b in
  checki "r adds" (a.Rs.r + 1) w.Rs.r;
  checki "t unchanged" 3 w.Rs.t_count;
  checkb "valid" true (V.is_valid_rs w)

let test_derived_take_shrink () =
  let rs = Rs.bipartite 6 in
  let taken = Rsgraph.Derived.take_matchings rs 2 in
  checki "t shrinks" 2 taken.Rs.t_count;
  checkb "valid" true (V.is_valid_rs taken);
  let shrunk = Rsgraph.Derived.shrink_matchings rs 1 in
  checki "r shrinks" 1 shrunk.Rs.r;
  checki "t kept" rs.Rs.t_count shrunk.Rs.t_count;
  checkb "valid" true (V.is_valid_rs shrunk)

let qcheck_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"bipartite RS verified for random m" ~count:20
         (QCheck.int_range 2 40)
         (fun m -> V.is_valid_rs (Rs.bipartite m)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"trivial RS verified" ~count:30
         QCheck.(pair (int_range 1 6) (int_range 1 6))
         (fun (r, t) -> V.is_valid_rs (Rs.trivial ~r ~t)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"every matching induced (independent re-check)" ~count:10
         (QCheck.int_range 2 25)
         (fun m ->
           let rs = Rs.bipartite m in
           (* For each matching, the induced subgraph on its endpoints has
              exactly r edges. *)
           Array.for_all
             (fun mt ->
               let vs =
                 Array.to_list mt |> List.concat_map (fun (u, v) -> [ u; v ])
                 |> List.sort_uniq compare
               in
               let sub, _ = G.induced rs.Rs.graph vs in
               G.m sub = Array.length mt)
             rs.Rs.matchings));
  ]

let () =
  Alcotest.run "rs"
    [
      ( "rs-graph",
        [
          Alcotest.test_case "bipartite construction" `Quick test_bipartite_construction;
          Alcotest.test_case "bipartite sides" `Quick test_bipartite_sides;
          Alcotest.test_case "matching sizes equal" `Quick test_matching_sizes_equal;
          Alcotest.test_case "trivial" `Quick test_trivial;
          Alcotest.test_case "matching vertices" `Quick test_matching_vertices;
          Alcotest.test_case "matching index roundtrip" `Quick test_matching_index_roundtrip;
          Alcotest.test_case "of_matchings rejections" `Quick test_of_matchings_rejections;
          Alcotest.test_case "of_matchings accepts valid" `Quick test_of_matchings_accepts_valid;
          Alcotest.test_case "verify catches violations" `Quick
            test_verify_catches_planted_violation;
        ] );
      ( "derived",
        [
          Alcotest.test_case "disjoint union" `Quick test_derived_disjoint_union;
          Alcotest.test_case "widen" `Quick test_derived_widen;
          Alcotest.test_case "take/shrink" `Quick test_derived_take_shrink;
        ] );
      ( "params",
        [
          Alcotest.test_case "bound arithmetic" `Quick test_params_bound;
          Alcotest.test_case "row" `Quick test_params_row;
          Alcotest.test_case "guards" `Quick test_params_guards;
          Alcotest.test_case "behrend rate bounded" `Quick test_behrend_rate_bounded;
        ] );
      ("rs-properties", qcheck_tests);
    ]

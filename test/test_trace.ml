(* Stdx.Trace + Report.Trace_export: span pairing across domains, the
   zero-allocation disabled fast path, exporter round-trips through
   Tabular's JSON parser, a golden snapshot of the trace_event schema,
   and the inertness regression — golden table output is byte-identical
   with tracing enabled. *)

module Tr = Stdx.Trace
module E = Report.Trace_export
module T = Report.Tabular
module R = Core.Exp_registry

(* Every test shares one process-wide tracer; start each from a clean,
   disabled state. *)
let fresh () =
  Tr.disable ();
  Tr.reset ()

let events_named name evs = List.filter (fun (e : Tr.event) -> e.Tr.name = name) evs

(* --------------------------------------------------------------- *)
(* Span pairing and nesting                                         *)

let test_begin_end_balance () =
  fresh ();
  Tr.enable ();
  Tr.begin_ "t.outer";
  Tr.begin_ "t.inner";
  Tr.end_ ();
  Tr.end_ ();
  Tr.disable ();
  let evs = Tr.dump () in
  Alcotest.(check int) "two events" 2 (List.length evs);
  (* LIFO: the inner span closes first but starts later. *)
  let outer = List.hd (events_named "t.outer" evs) in
  let inner = List.hd (events_named "t.inner" evs) in
  Alcotest.(check bool) "inner starts after outer" true (inner.Tr.ts_us >= outer.Tr.ts_us);
  Alcotest.(check bool) "inner nests inside outer" true
    (inner.Tr.ts_us +. inner.Tr.dur_us <= outer.Tr.ts_us +. outer.Tr.dur_us +. 1e-6);
  Alcotest.(check string) "category is the dot-prefix" "t" outer.Tr.cat

let test_unbalanced_end_ignored () =
  fresh ();
  Tr.enable ();
  Tr.end_ ();
  (* An end_ with no open span must not record or raise. *)
  Tr.disable ();
  Alcotest.(check int) "no events" 0 (List.length (Tr.dump ()))

let test_open_span_not_dumped () =
  fresh ();
  Tr.enable ();
  Tr.begin_ "t.open";
  Alcotest.(check int) "open span invisible" 0 (List.length (Tr.dump ()));
  Tr.end_ ();
  Alcotest.(check int) "closed span visible" 1 (List.length (Tr.dump ()));
  Tr.disable ()

let test_per_domain_stacks () =
  fresh ();
  Tr.enable ();
  (* Two domains each record a balanced pair concurrently; the stacks are
     per-domain, so the four events pair up by tid. *)
  let worker () =
    Tr.begin_ "t.domain-outer";
    Tr.begin_ "t.domain-inner";
    Tr.end_ ();
    Tr.end_ ()
  in
  let d1 = Domain.spawn worker and d2 = Domain.spawn worker in
  Domain.join d1;
  Domain.join d2;
  Tr.disable ();
  let evs = Tr.dump () in
  Alcotest.(check int) "four events" 4 (List.length evs);
  let tids = List.sort_uniq compare (List.map (fun (e : Tr.event) -> e.Tr.tid) evs) in
  Alcotest.(check int) "two distinct domains" 2 (List.length tids);
  List.iter
    (fun tid ->
      let mine = List.filter (fun (e : Tr.event) -> e.Tr.tid = tid) evs in
      let outer = List.hd (events_named "t.domain-outer" mine) in
      let inner = List.hd (events_named "t.domain-inner" mine) in
      Alcotest.(check bool)
        (Printf.sprintf "tid %d inner inside outer" tid)
        true
        (inner.Tr.ts_us >= outer.Tr.ts_us
        && inner.Tr.ts_us +. inner.Tr.dur_us <= outer.Tr.ts_us +. outer.Tr.dur_us +. 1e-6))
    tids

let test_ring_drops_oldest () =
  fresh ();
  (* Tiny ring: 10 slots, 25 instants -> 10 kept (the newest), 15 dropped.
     Buffers already created keep their capacity, so the writes must come
     from a fresh domain, whose buffer is created at the new size. *)
  Tr.enable ~capacity:10 ();
  let d =
    Domain.spawn (fun () ->
        for i = 1 to 25 do
          Tr.instant (Printf.sprintf "t.i%d" i)
        done)
  in
  Domain.join d;
  Tr.disable ();
  let evs = Tr.dump () in
  let st = Tr.stats () in
  Alcotest.(check int) "ring keeps capacity" 10 (List.length evs);
  Alcotest.(check int) "drop counter" 15 st.Tr.dropped;
  Alcotest.(check bool) "newest survives" true
    (List.exists (fun (e : Tr.event) -> e.Tr.name = "t.i25") evs);
  Alcotest.(check bool) "oldest dropped" true
    (not (List.exists (fun (e : Tr.event) -> e.Tr.name = "t.i1") evs));
  (* Restore the default so later tests are not stuck with 10 slots. *)
  Tr.enable ();
  Tr.disable ();
  Tr.reset ()

let test_stats_and_counter () =
  fresh ();
  Tr.enable ();
  Tr.counter "t.depth" 3;
  Tr.instant "t.mark";
  Tr.disable ();
  let st = Tr.stats () in
  Alcotest.(check bool) "disabled after disable" false st.Tr.tracing;
  Alcotest.(check int) "two events" 2 st.Tr.events;
  Alcotest.(check int) "nothing dropped" 0 st.Tr.dropped;
  let c = List.hd (events_named "t.depth" (Tr.dump ())) in
  Alcotest.(check bool) "counter phase" true (c.Tr.ph = Tr.Counter);
  Alcotest.(check bool) "counter value in args" true
    (List.assoc "value" c.Tr.args = Tr.Int 3)

(* --------------------------------------------------------------- *)
(* Disabled fast path allocates nothing                             *)

let test_disabled_no_alloc () =
  fresh ();
  assert (not (Tr.enabled ()));
  let iters = 100_000 in
  (* Warm up so any one-time lazy setup (DLS buffer) is paid outside the
     measured window. *)
  for _ = 1 to 100 do
    Tr.begin_ "t.hot";
    Tr.end_ ();
    Tr.counter "t.c" 1;
    Tr.instant "t.i"
  done;
  let a0 = Gc.allocated_bytes () in
  for _ = 1 to iters do
    Tr.begin_ "t.hot";
    Tr.end_ ();
    Tr.counter "t.c" 1;
    Tr.instant "t.i"
  done;
  let a1 = Gc.allocated_bytes () in
  (* [Gc.allocated_bytes] itself allocates its boxed float result, so the
     budget is a small constant, not zero: anything per-call would cost
     >= one word * iters, orders of magnitude above this bound. *)
  let delta = a1 -. a0 in
  if delta > 512. then
    Alcotest.failf "disabled tracing allocated %.0f bytes over %d iterations" delta iters

(* --------------------------------------------------------------- *)
(* Exporter: JSON round-trip + schema                               *)

let arg_gen =
  let open QCheck.Gen in
  oneof
    [
      map (fun i -> Tr.Int i) small_signed_int;
      map (fun f -> Tr.Float f) (float_bound_inclusive 1e6);
      map (fun s -> Tr.Str s) (small_string ~gen:printable);
      map (fun b -> Tr.Bool b) bool;
    ]

let event_gen =
  let open QCheck.Gen in
  let name = oneofl [ "g.freeze"; "exp.claim31"; "rpc.run"; "pool.job"; "plain" ] in
  let ph = oneofl [ Tr.Complete; Tr.Instant; Tr.Counter ] in
  map
    (fun (name, ph, ts, dur, tid, args) ->
      {
        Tr.name;
        cat = (match String.index_opt name '.' with
              | Some i -> String.sub name 0 i
              | None -> name);
        ph;
        ts_us = ts;
        dur_us = (match ph with Tr.Complete -> dur | _ -> 0.);
        tid;
        args;
      })
    (tup6 name ph (float_bound_inclusive 1e9) (float_bound_inclusive 1e6) (int_bound 8)
       (list_size (int_bound 3) (pair (small_string ~gen:printable) arg_gen)))

let events_arb =
  QCheck.make
    ~print:(fun evs -> E.to_string evs)
    QCheck.Gen.(list_size (int_bound 20) event_gen)

(* Any exported trace re-parses through Tabular and keeps its shape. *)
let export_roundtrip evs =
  let j = T.json_of_string (E.to_string ~dropped:3 evs) in
  (match T.member "traceEvents" j with
  | Some (T.Jarr items) ->
      List.length items = List.length evs
      && List.for_all2
           (fun item (e : Tr.event) ->
             T.member "name" item = Some (T.Jstr e.Tr.name)
             && T.member "pid" item = Some (T.Jint 1)
             && T.member "tid" item = Some (T.Jint e.Tr.tid)
             &&
             match e.Tr.ph with
             | Tr.Complete ->
                 T.member "ph" item = Some (T.Jstr "X") && T.member "dur" item <> None
             | Tr.Instant ->
                 T.member "ph" item = Some (T.Jstr "i")
                 && T.member "s" item = Some (T.Jstr "t")
             | Tr.Counter -> T.member "ph" item = Some (T.Jstr "C"))
           items evs
  | _ -> false)
  && T.member "displayTimeUnit" j = Some (T.Jstr "ms")
  &&
  match T.member "otherData" j with
  | Some od -> T.member "droppedEvents" od = Some (T.Jint 3)
  | None -> false

(* Golden schema snapshot: fixed synthetic events (no live timestamps)
   rendered byte-for-byte. Guards the exporter's field set and order —
   what Perfetto and downstream tooling parse. *)
let test_golden_schema () =
  let evs =
    [
      {
        Tr.name = "graph.freeze";
        cat = "graph";
        ph = Tr.Complete;
        ts_us = 10.5;
        dur_us = 2.25;
        tid = 0;
        args = [ ("edges", Tr.Int 42) ];
      };
      {
        Tr.name = "cache.hit";
        cat = "cache";
        ph = Tr.Instant;
        ts_us = 20.;
        dur_us = 0.;
        tid = 1;
        args = [];
      };
      {
        Tr.name = "scheduler.depth";
        cat = "scheduler";
        ph = Tr.Counter;
        ts_us = 30.;
        dur_us = 0.;
        tid = 1;
        args = [ ("value", Tr.Int 7) ];
      };
    ]
  in
  (* The producer string embeds the version; pin the schema, not the
     version, by substituting it out. *)
  let replace_once ~sub ~by s =
    let n = String.length sub in
    let rec find i =
      if i + n > String.length s then None
      else if String.sub s i n = sub then Some i
      else find (i + 1)
    in
    match find 0 with
    | None -> s
    | Some i -> String.sub s 0 i ^ by ^ String.sub s (i + n) (String.length s - i - n)
  in
  let got =
    replace_once ~sub:Stdx.Version.current ~by:"VERSION" (E.to_string ~dropped:1 evs) ^ "\n"
  in
  let expected =
    In_channel.with_open_bin (Filename.concat "golden" "trace_schema.txt") In_channel.input_all
  in
  if got <> expected then
    Alcotest.failf "trace schema drifted\n--- golden ---\n%s--- got ---\n%s" expected got

let test_phase_totals () =
  let mk name ts dur =
    { Tr.name; cat = "t"; ph = Tr.Complete; ts_us = ts; dur_us = dur; tid = 0; args = [] }
  in
  let evs =
    [ mk "t.a" 0. 1e6; mk "t.b" 5. 2e6; mk "t.a" 10. 3e6;
      { (mk "t.skip" 15. 9e6) with ph = Tr.Instant } ]
  in
  let totals = E.phase_totals evs in
  Alcotest.(check (list (pair string (float 1e-9))))
    "sums by name in first-seen order, seconds"
    [ ("t.a", 4.); ("t.b", 2.) ]
    totals;
  let windowed = E.phase_totals ~since:4. ~until:12. evs in
  Alcotest.(check (list (pair string (float 1e-9))))
    "window selects by start timestamp"
    [ ("t.b", 2.); ("t.a", 3.) ]
    windowed

(* --------------------------------------------------------------- *)
(* Inertness: tracing on does not change table bytes                *)

let golden_with_tracing_on id overrides () =
  let e =
    match Core.Exp_all.find id with
    | Some e -> e
    | None -> Alcotest.failf "experiment %S not registered" id
  in
  let expected =
    In_channel.with_open_bin (Filename.concat "golden" (id ^ ".txt")) In_channel.input_all
  in
  fresh ();
  Tr.enable ();
  let got = T.to_text (R.table e overrides) in
  Tr.disable ();
  Alcotest.(check bool) "trace recorded events" true ((Tr.stats ()).Tr.events > 0);
  Tr.reset ();
  if got <> expected then
    Alcotest.failf "%s: output changed when tracing was enabled" id

let () =
  let vi i = R.Vint i and vl l = R.Vints l in
  Alcotest.run "trace"
    [
      ( "spans",
        [
          Alcotest.test_case "begin/end balance and nest" `Quick test_begin_end_balance;
          Alcotest.test_case "unbalanced end_ ignored" `Quick test_unbalanced_end_ignored;
          Alcotest.test_case "open span not dumped" `Quick test_open_span_not_dumped;
          Alcotest.test_case "stacks are per-domain" `Quick test_per_domain_stacks;
          Alcotest.test_case "ring drops oldest" `Quick test_ring_drops_oldest;
          Alcotest.test_case "stats and counter args" `Quick test_stats_and_counter;
        ] );
      ( "fast-path",
        [ Alcotest.test_case "disabled path allocates nothing" `Quick test_disabled_no_alloc ] );
      ( "export",
        [
          QCheck_alcotest.to_alcotest
            (QCheck.Test.make ~name:"exported trace re-parses via Tabular" ~count:200 events_arb
               export_roundtrip);
          Alcotest.test_case "golden trace_event schema" `Quick test_golden_schema;
          Alcotest.test_case "phase_totals sums and windows" `Quick test_phase_totals;
        ] );
      ( "inertness",
        [
          Alcotest.test_case "claim31 golden unchanged with tracing on" `Quick
            (golden_with_tracing_on "claim31"
               [ ("m", vl [ 5; 10 ]); ("samples", vi 4); ("seed", vi 7); ("jobs", vi 1) ]);
          Alcotest.test_case "reduction golden unchanged with tracing on" `Quick
            (golden_with_tracing_on "reduction"
               [ ("m", vl [ 4 ]); ("samples", vi 2); ("seed", vi 23) ]);
        ] );
    ]

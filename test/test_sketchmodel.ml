(* Tests for Sketchmodel: public coins, the one-round model and the
   two-round extension, with exact bit accounting. *)

module PC = Sketchmodel.Public_coins
module Model = Sketchmodel.Model
module Rounds = Sketchmodel.Rounds
module W = Stdx.Bitbuf.Writer
module R = Stdx.Bitbuf.Reader
module G = Dgraph.Graph

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let test_coins_deterministic () =
  let a = PC.create 1 and b = PC.create 1 in
  checki "seed stored" 1 (PC.seed a);
  Alcotest.check Alcotest.int64 "global deterministic"
    (Stdx.Prng.bits64 (PC.global a "x"))
    (Stdx.Prng.bits64 (PC.global b "x"));
  Alcotest.check Alcotest.int64 "keyed deterministic"
    (Stdx.Prng.bits64 (PC.keyed a "y" 5))
    (Stdx.Prng.bits64 (PC.keyed b "y" 5))

let test_coins_keys_differ () =
  let c = PC.create 2 in
  checkb "labels differ" true
    (Stdx.Prng.bits64 (PC.global c "a") <> Stdx.Prng.bits64 (PC.global c "b"));
  checkb "indices differ" true
    (Stdx.Prng.bits64 (PC.keyed c "a" 0) <> Stdx.Prng.bits64 (PC.keyed c "a" 1));
  checkb "seeds differ" true
    (Stdx.Prng.bits64 (PC.global (PC.create 3) "a")
    <> Stdx.Prng.bits64 (PC.global (PC.create 4) "a"))

let test_views () =
  let g = G.create 4 [ (0, 1); (0, 2) ] in
  let views = Model.views g in
  checki "one per vertex" 4 (Array.length views);
  checki "n propagated" 4 views.(0).Model.n;
  Alcotest.(check (array int)) "neighbors of 0" [| 1; 2 |] views.(0).Model.neighbors;
  Alcotest.(check (array int)) "neighbors of 3" [||] views.(3).Model.neighbors;
  checki "vertex id" 2 views.(2).Model.vertex

(* A protocol whose message sizes are fully predictable: vertex v sends
   v+1 zero bits; referee returns total bits seen. *)
let counting_protocol =
  {
    Model.name = "counting";
    player =
      (fun view _ ->
        let w = W.create () in
        for _ = 0 to view.Model.vertex do
          W.bit w false
        done;
        w);
    referee =
      (fun ~n ~sketches _ ->
        ignore n;
        Array.fold_left (fun acc r -> acc + R.remaining_bits r) 0 sketches);
  }

let test_run_accounting () =
  let g = G.empty 4 in
  let total, stats = Model.run counting_protocol g (PC.create 0) in
  checki "referee sees all bits" 10 total;
  checki "max = biggest player" 4 stats.Model.max_bits;
  checki "total" 10 stats.Model.total_bits;
  checki "players" 4 stats.Model.players;
  checkb "avg" true (abs_float (stats.Model.avg_bits -. 2.5) < 1e-9)

let test_run_views_custom () =
  (* The augmented-model entry point: more players than vertices. *)
  let views =
    Array.init 6 (fun i -> { Model.n = 3; vertex = i mod 3; neighbors = [||] })
  in
  let proto =
    {
      Model.name = "six-players";
      player =
        (fun _ _ ->
          let w = W.create () in
          W.bit w true;
          w);
      referee = (fun ~n ~sketches _ -> (n, Array.length sketches));
    }
  in
  let (n, player_count), stats = Model.run_views proto ~n:3 views (PC.create 1) in
  checki "n" 3 n;
  checki "players" 6 player_count;
  checki "total bits" 6 stats.Model.total_bits

let test_success_rate () =
  Alcotest.(check (float 1e-9)) "always true" 1.
    (Model.success_rate ~trials:20 ~seed:5 (fun _ -> true));
  Alcotest.(check (float 1e-9)) "always false" 0.
    (Model.success_rate ~trials:20 ~seed:5 (fun _ -> false));
  let p = Model.success_rate ~trials:400 ~seed:5 (fun coins ->
      Stdx.Prng.bool (PC.global coins "flip")) in
  checkb "fair coin near half" true (abs_float (p -. 0.5) < 0.1)

let test_success_rate_fresh_coins () =
  (* Different trials must see different coins. *)
  let seen = Hashtbl.create 16 in
  ignore
    (Model.success_rate ~trials:10 ~seed:1 (fun coins ->
         Hashtbl.replace seen (PC.seed coins) ();
         true));
  checki "10 distinct seeds" 10 (Hashtbl.length seen)

(* Two-round protocol with predictable sizes: round1 sends 2 bits,
   broadcast is 5 bits, round2 sends 3 bits for even vertices. *)
let two_round_fixture =
  {
    Rounds.name = "fixture";
    round1 =
      (fun _ _ ->
        let w = W.create () in
        W.bits w 3 ~width:2;
        w);
    decide = (fun ~n ~sketches _ -> ignore sketches; n);
    encode_broadcast =
      (fun b ->
        let w = W.create () in
        W.bits w (b land 31) ~width:5;
        w);
    round2 =
      (fun view _ _ ->
        let w = W.create () in
        if view.Model.vertex mod 2 = 0 then W.bits w 7 ~width:3;
        w);
    finish = (fun ~n ~broadcast ~sketches _ -> ignore sketches; n + broadcast);
  }

let test_two_round_accounting () =
  let g = G.empty 5 in
  let out, stats = Rounds.run two_round_fixture g (PC.create 7) in
  checki "finish ran" 10 out;
  checki "round1 max" 2 stats.Rounds.round1_max;
  checki "round2 max" 3 stats.Rounds.round2_max;
  checki "per player max = 5" 5 stats.Rounds.max_bits;
  checki "broadcast" 5 stats.Rounds.broadcast_bits;
  (* totals: 5 players * 2 bits + 3 even vertices * 3 bits *)
  checki "total" (10 + 9) stats.Rounds.total_bits

let test_run_deterministic () =
  let g = Dgraph.Gen.gnp (Stdx.Prng.create 17) 20 0.3 in
  let proto =
    {
      Model.name = "coin-echo";
      player =
        (fun view coins ->
          let w = W.create () in
          W.uvarint w (Stdx.Prng.int (PC.keyed coins "x" view.Model.vertex) 1000);
          w);
      referee =
        (fun ~n ~sketches _ ->
          ignore n;
          Array.to_list sketches |> List.map R.uvarint);
    }
  in
  let a, _ = Model.run proto g (PC.create 9) in
  let b, _ = Model.run proto g (PC.create 9) in
  checkb "identical runs under identical coins" true (a = b);
  let c, _ = Model.run proto g (PC.create 10) in
  checkb "different coins differ" true (a <> c)

let test_zero_players () =
  let proto =
    {
      Model.name = "nobody";
      player = (fun _ _ -> W.create ());
      referee = (fun ~n ~sketches _ -> (n, Array.length sketches));
    }
  in
  let (n, players), stats = Model.run_views proto ~n:5 [||] (PC.create 1) in
  checki "n still passed" 5 n;
  checki "no players" 0 players;
  checki "no bits" 0 stats.Model.total_bits;
  checkb "avg is zero, not NaN" true (stats.Model.avg_bits = 0.)

let test_player_isolation () =
  (* A player only gets its own view: check the runner passes the right
     view to the right player by echoing ids. *)
  let g = G.create 3 [ (0, 1) ] in
  let proto =
    {
      Model.name = "echo";
      player =
        (fun view _ ->
          let w = W.create () in
          W.uvarint w view.Model.vertex;
          W.uvarint w (Array.length view.Model.neighbors);
          w);
      referee =
        (fun ~n ~sketches _ ->
          ignore n;
          Array.to_list sketches
          |> List.map (fun r ->
                 let vertex = R.uvarint r in
                 let deg = R.uvarint r in
                 (vertex, deg)));
    }
  in
  let echoed, _ = Model.run proto g (PC.create 3) in
  Alcotest.(check (list (pair int int))) "views routed correctly"
    [ (0, 1); (1, 1); (2, 0) ] echoed

(* Regression for the parallel trial engine's core assumption: the order in
   which player sketches are computed must not change the referee's output
   or the bit accounting. Runs a real protocol (sampled MM) on a D_MM-sized
   random graph under shuffled schedules and demands bit-equality. *)
let test_schedule_independence () =
  let rng = Stdx.Prng.create 2024 in
  let g = Dgraph.Gen.gnp rng 48 0.2 in
  let coins = PC.create 77 in
  let protocol =
    Protocols.Sampled_mm.protocol ~budget_bits:32 ~strategy:Protocols.Sampled_mm.Uniform
  in
  let views = Model.views g in
  let reference_out, reference_stats = Model.run_views protocol ~n:(G.n g) views coins in
  List.iter
    (fun shuffle_seed ->
      let schedule = Stdx.Prng.permutation (Stdx.Prng.create shuffle_seed) (G.n g) in
      let out, stats = Model.run_views ~schedule protocol ~n:(G.n g) views coins in
      Alcotest.(check (list (pair int int)))
        "output independent of sketch order" reference_out out;
      checki "max_bits independent of sketch order" reference_stats.Model.max_bits
        stats.Model.max_bits;
      checki "total_bits independent of sketch order" reference_stats.Model.total_bits
        stats.Model.total_bits)
    [ 1; 2; 3; 4 ];
  Alcotest.check_raises "non-permutation schedule rejected"
    (Invalid_argument "Model.run_views: schedule is not a permutation of the players")
    (fun () ->
      ignore (Model.run_views ~schedule:(Array.make (G.n g) 0) protocol ~n:(G.n g) views coins))

let () =
  Alcotest.run "sketchmodel"
    [
      ( "public-coins",
        [
          Alcotest.test_case "deterministic" `Quick test_coins_deterministic;
          Alcotest.test_case "keys differ" `Quick test_coins_keys_differ;
        ] );
      ( "model",
        [
          Alcotest.test_case "views" `Quick test_views;
          Alcotest.test_case "run accounting" `Quick test_run_accounting;
          Alcotest.test_case "run_views custom players" `Quick test_run_views_custom;
          Alcotest.test_case "success rate" `Quick test_success_rate;
          Alcotest.test_case "success rate fresh coins" `Quick test_success_rate_fresh_coins;
          Alcotest.test_case "player isolation" `Quick test_player_isolation;
          Alcotest.test_case "run deterministic" `Quick test_run_deterministic;
          Alcotest.test_case "zero players" `Quick test_zero_players;
          Alcotest.test_case "schedule independence" `Quick test_schedule_independence;
        ] );
      ( "rounds",
        [ Alcotest.test_case "two-round accounting" `Quick test_two_round_accounting ] );
    ]

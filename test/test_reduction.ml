(* Tests for Core.Reduction: the Section-4 MM-to-MIS reduction. *)

module HD = Core.Hard_dist
module R = Core.Reduction
module Rs = Rsgraph.Rs_graph
module G = Dgraph.Graph

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let sample ?(m = 5) seed = HD.sample (Rs.bipartite m) (Stdx.Prng.create seed)

let greedy_mis seed g =
  Dgraph.Mis.greedy g ~order:(Stdx.Prng.permutation (Stdx.Prng.create seed) (G.n g)) ()

let test_h_structure () =
  let dmm = sample 1 in
  let h = R.build_h dmm in
  let n = dmm.HD.n in
  checki "2n vertices" (2 * n) (G.n h);
  (* Both copies of G are intact. *)
  G.iter_edges
    (fun u v ->
      checkb "left copy" true (G.mem_edge h u v);
      checkb "right copy" true (G.mem_edge h (u + n) (v + n)))
    dmm.HD.graph;
  (* Full public biclique, including same-vertex pairs. *)
  Array.iter
    (fun u ->
      Array.iter
        (fun v -> checkb "biclique" true (G.mem_edge h u (v + n)))
        dmm.HD.public_labels)
    dmm.HD.public_labels;
  (* Edge count: 2|E(G)| + |P|^2. *)
  let p = Array.length dmm.HD.public_labels in
  checki "edge count" ((2 * G.m dmm.HD.graph) + (p * p)) (G.m h)

let test_no_cross_edges_between_unique_copies () =
  let dmm = sample 2 in
  let h = R.build_h dmm in
  let n = dmm.HD.n in
  G.iter_edges
    (fun u v ->
      let u', v' = (min u v, max u v) in
      if u' < n && v' >= n then begin
        (* Any crossing edge must be public-public. *)
        checkb "crossing edges are public biclique" true
          (HD.is_public dmm u' && HD.is_public dmm (v' - n))
      end)
    h

let test_side_public_empty_disjunction () =
  for seed = 1 to 10 do
    let dmm = sample seed in
    let mis = greedy_mis seed (R.build_h dmm) in
    checkb "at least one side public-free" true
      (R.side_public_empty dmm mis R.Left || R.side_public_empty dmm mis R.Right)
  done

let test_lemma41 () =
  for seed = 1 to 10 do
    let dmm = sample ~m:(3 + (seed mod 4)) seed in
    let verdict = R.check dmm (greedy_mis (seed * 3) (R.build_h dmm)) in
    checkb (Printf.sprintf "lemma 4.1 seed=%d" seed) true verdict.R.lemma41_ok;
    checkb "complete" true verdict.R.complete;
    checkb "valid <= output" true (verdict.R.valid_edges <= verdict.R.output_size);
    checki "valid = surviving (output contains exactly them among real edges)"
      verdict.R.surviving verdict.R.valid_edges
  done

let test_min_rule_exact () =
  for seed = 1 to 10 do
    let dmm = sample seed in
    let mis = greedy_mis (seed + 100) (R.build_h dmm) in
    let out = List.sort compare (R.referee_output_min dmm mis) in
    let survivors = List.sort compare (List.map snd (HD.surviving_special dmm)) in
    checkb "min rule exact" true (out = survivors)
  done

let test_max_rule_superset () =
  let dmm = sample 11 in
  let mis = greedy_mis 7 (R.build_h dmm) in
  let out = R.referee_output dmm mis in
  let survivors = List.map snd (HD.surviving_special dmm) in
  checkb "max rule contains survivors" true (List.for_all (fun e -> List.mem e out) survivors);
  (* Output pairs are always special pairs, hence vertex-disjoint. *)
  let seen = Hashtbl.create 64 in
  List.iter
    (fun (u, v) ->
      checkb "disjoint" false (Hashtbl.mem seen u || Hashtbl.mem seen v);
      Hashtbl.replace seen u ();
      Hashtbl.replace seen v ())
    out

let test_extract_respects_membership () =
  let dmm = sample 12 in
  let h = R.build_h dmm in
  let mis = greedy_mis 13 h in
  let in_mis = Hashtbl.create 64 in
  List.iter (fun v -> Hashtbl.replace in_mis v ()) mis;
  let ml = R.extract dmm mis R.Left in
  List.iter
    (fun (u, v) ->
      checkb "not both copies in MIS" false (Hashtbl.mem in_mis u && Hashtbl.mem in_mis v))
    ml

let test_end_to_end_cost () =
  let dmm = sample 13 in
  let coins = Sketchmodel.Public_coins.create 4444 in
  let verdict, g_stats, h_stats = R.end_to_end_cost dmm Protocols.Trivial.mis coins in
  checkb "complete end-to-end" true verdict.R.complete;
  checkb "lemma holds end-to-end" true verdict.R.lemma41_ok;
  checkb "per-G-player at most doubles" true
    (g_stats.Sketchmodel.Model.max_bits <= 2 * h_stats.Sketchmodel.Model.max_bits);
  checki "G players" dmm.HD.n g_stats.Sketchmodel.Model.players;
  checki "H players" (2 * dmm.HD.n) h_stats.Sketchmodel.Model.players;
  checki "total bits preserved" h_stats.Sketchmodel.Model.total_bits
    g_stats.Sketchmodel.Model.total_bits

let test_luby_solver_also_works () =
  let dmm = sample 14 in
  let solver g = Dgraph.Mis.luby g (Stdx.Prng.create 5) in
  let verdict = R.run_with_solver dmm solver in
  checkb "lemma 4.1 with Luby MIS" true verdict.R.lemma41_ok;
  checkb "complete" true verdict.R.complete

let test_remarks () =
  for seed = 1 to 5 do
    let dmm = sample ~m:(3 + seed) seed in
    checkb "base graph shared (3.6-i)" true (Core.Remarks.base_graph_shared dmm);
    (* (iii): H is constructible from purely local player knowledge. *)
    checkb "distributed H = referee H (3.6-iii)" true
      (G.equal (Core.Remarks.distributed_h dmm) (R.build_h dmm));
    (* (iv): the full surviving matching always satisfies the relaxed goal
       when Claim 3.1's event holds. *)
    let survivors = List.map snd (Core.Hard_dist.surviving_special dmm) in
    if
      4 * List.length survivors
      >= dmm.Core.Hard_dist.k * Core.Hard_dist.r dmm
    then checkb "survivors meet remark (iv)" true (Core.Remarks.meets_remark_iv dmm survivors);
    (* An empty output never does (kr/4 > 0). *)
    checkb "empty fails remark (iv)" false (Core.Remarks.meets_remark_iv dmm [])
  done

let qcheck_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"reduction correct for random instances" ~count:20
         QCheck.(pair (int_range 2 7) (int_range 0 10000))
         (fun (m, seed) ->
           let dmm = sample ~m seed in
           let verdict = R.check dmm (greedy_mis seed (R.build_h dmm)) in
           verdict.R.lemma41_ok && verdict.R.complete));
  ]

let () =
  Alcotest.run "reduction"
    [
      ( "construction",
        [
          Alcotest.test_case "H structure" `Quick test_h_structure;
          Alcotest.test_case "no unique cross edges" `Quick
            test_no_cross_edges_between_unique_copies;
        ] );
      ( "lemma-4.1",
        [
          Alcotest.test_case "one side public-free" `Quick test_side_public_empty_disjunction;
          Alcotest.test_case "lemma 4.1" `Quick test_lemma41;
          Alcotest.test_case "min rule exact" `Quick test_min_rule_exact;
          Alcotest.test_case "max rule superset" `Quick test_max_rule_superset;
          Alcotest.test_case "extract membership" `Quick test_extract_respects_membership;
        ] );
      ( "remark-3.6",
        [ Alcotest.test_case "executable remarks" `Quick test_remarks ] );
      ( "end-to-end",
        [
          Alcotest.test_case "cost blow-up <= 2" `Quick test_end_to_end_cost;
          Alcotest.test_case "luby solver" `Quick test_luby_solver_also_works;
        ] );
      ("reduction-properties", qcheck_tests);
    ]

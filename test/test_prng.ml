(* Tests for Stdx.Prng: determinism, bounds, and statistical sanity. *)

let check = Alcotest.check
let checkb = Alcotest.(check bool)

let test_determinism () =
  let a = Stdx.Prng.create 42 and b = Stdx.Prng.create 42 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Stdx.Prng.bits64 a) (Stdx.Prng.bits64 b)
  done

let test_different_seeds () =
  let a = Stdx.Prng.create 1 and b = Stdx.Prng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Stdx.Prng.bits64 a = Stdx.Prng.bits64 b then incr same
  done;
  checkb "streams differ" true (!same < 4)

let test_split_independent () =
  let g = Stdx.Prng.create 7 in
  let a = Stdx.Prng.split g 1 and b = Stdx.Prng.split g 2 in
  let a' = Stdx.Prng.split g 1 in
  check Alcotest.int64 "split deterministic" (Stdx.Prng.bits64 a) (Stdx.Prng.bits64 a');
  checkb "split keys differ" true (Stdx.Prng.bits64 a <> Stdx.Prng.bits64 b)

(* Golden values pinning the trial-key derivation documented on
   [Prng.split]: first word of [split (create seed) key]. The parallel
   engine's determinism contract (trial i <-> split root i) and every
   published table depend on this exact derivation; if this test fails,
   the seeding scheme changed and all recorded experiment outputs are
   silently different. Update these constants only on purpose. *)
let test_split_golden () =
  List.iter
    (fun (seed, key, expected) ->
      check Alcotest.int64
        (Printf.sprintf "split (create %d) %d" seed key)
        expected
        (Stdx.Prng.bits64 (Stdx.Prng.split (Stdx.Prng.create seed) key)))
    [
      (0, 0, 0x112869f07c59d976L);
      (0, 1, 0x67cfad6b945c5e67L);
      (7, 0, 0xf15372a7610d380L);
      (7, 1, 0x1bd90e81a3995153L);
      (7, 2, 0x65cb288236869b1aL);
      (42, 1000, 0x3f1ad5c171df2c2bL);
      (123456789, 31337, 0xcbe6d94bb88c8f46L);
    ]

let test_split_does_not_advance () =
  let g = Stdx.Prng.create 7 and h = Stdx.Prng.create 7 in
  ignore (Stdx.Prng.split g 5);
  check Alcotest.int64 "parent unchanged" (Stdx.Prng.bits64 h) (Stdx.Prng.bits64 g)

let test_copy () =
  let g = Stdx.Prng.create 9 in
  ignore (Stdx.Prng.bits64 g);
  let c = Stdx.Prng.copy g in
  check Alcotest.int64 "copy continues identically" (Stdx.Prng.bits64 g) (Stdx.Prng.bits64 c)

let test_int_bounds () =
  let g = Stdx.Prng.create 3 in
  List.iter
    (fun bound ->
      for _ = 1 to 200 do
        let v = Stdx.Prng.int g bound in
        checkb "in range" true (v >= 0 && v < bound)
      done)
    [ 1; 2; 3; 7; 8; 100; 1 lsl 20; (1 lsl 20) + 7 ]

let test_int_invalid () =
  let g = Stdx.Prng.create 3 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Stdx.Prng.int g 0))

let test_int_in () =
  let g = Stdx.Prng.create 4 in
  for _ = 1 to 100 do
    let v = Stdx.Prng.int_in g 5 9 in
    checkb "in [5,9]" true (v >= 5 && v <= 9)
  done

let test_uniformity () =
  let g = Stdx.Prng.create 11 in
  let buckets = Array.make 10 0 in
  let n = 20000 in
  for _ = 1 to n do
    let v = Stdx.Prng.int g 10 in
    buckets.(v) <- buckets.(v) + 1
  done;
  Array.iteri
    (fun i c ->
      checkb (Printf.sprintf "bucket %d near uniform" i) true
        (abs (c - (n / 10)) < n / 25))
    buckets

let test_float_range () =
  let g = Stdx.Prng.create 12 in
  for _ = 1 to 1000 do
    let f = Stdx.Prng.float g in
    checkb "float in [0,1)" true (f >= 0. && f < 1.)
  done

let test_bernoulli_rate () =
  let g = Stdx.Prng.create 13 in
  let hits = ref 0 in
  let n = 20000 in
  for _ = 1 to n do
    if Stdx.Prng.bernoulli g 0.3 then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int n in
  checkb "bernoulli(0.3) near 0.3" true (abs_float (rate -. 0.3) < 0.02)

let test_permutation () =
  let g = Stdx.Prng.create 14 in
  let p = Stdx.Prng.permutation g 50 in
  let sorted = Array.copy p in
  Array.sort compare sorted;
  check Alcotest.(array int) "is a permutation" (Array.init 50 (fun i -> i)) sorted

let test_shuffle_preserves () =
  let g = Stdx.Prng.create 15 in
  let a = Array.init 30 (fun i -> i * i) in
  let b = Array.copy a in
  Stdx.Prng.shuffle g b;
  Array.sort compare b;
  check Alcotest.(array int) "multiset preserved" a b

let test_sample_distinct () =
  let g = Stdx.Prng.create 16 in
  for _ = 1 to 50 do
    let s = Stdx.Prng.sample_distinct g 10 25 in
    check Alcotest.int "right count" 10 (Array.length s);
    let sorted = Array.copy s in
    Array.sort compare sorted;
    for i = 0 to 8 do
      checkb "distinct" true (sorted.(i) < sorted.(i + 1))
    done;
    Array.iter (fun v -> checkb "in range" true (v >= 0 && v < 25)) s
  done;
  let full = Stdx.Prng.sample_distinct g 25 25 in
  let sorted = Array.copy full in
  Array.sort compare sorted;
  check Alcotest.(array int) "k = n gives everything" (Array.init 25 (fun i -> i)) sorted

let test_subset_mask () =
  let g = Stdx.Prng.create 17 in
  let mask = Stdx.Prng.subset_mask g 10000 ~p:0.5 in
  let kept = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 mask in
  checkb "half kept" true (abs (kept - 5000) < 300)

let qcheck_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"int bound respected" ~count:500
         QCheck.(pair (int_range 0 1000) (int_range 1 10000))
         (fun (seed, bound) ->
           let g = Stdx.Prng.create seed in
           let v = Stdx.Prng.int g bound in
           v >= 0 && v < bound));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"permutation valid" ~count:100
         QCheck.(pair (int_range 0 1000) (int_range 1 100))
         (fun (seed, n) ->
           let p = Stdx.Prng.permutation (Stdx.Prng.create seed) n in
           let sorted = Array.copy p in
           Array.sort compare sorted;
           sorted = Array.init n (fun i -> i)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"sample_distinct distinct and in range" ~count:200
         QCheck.(triple (int_range 0 1000) (int_range 0 40) (int_range 40 200))
         (fun (seed, k, n) ->
           let s = Stdx.Prng.sample_distinct (Stdx.Prng.create seed) k n in
           let l = Array.to_list s in
           List.length (List.sort_uniq compare l) = k && List.for_all (fun v -> v >= 0 && v < n) l));
    (* Pins the stream-position contract on [Prng.fill_bools]: the bulk
       fill consumes exactly the draws repeated [bool] would, so the
       batched kept-mask fill in [Hard_dist.sample] cannot drift from
       the golden tables recorded with per-edge draws. *)
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"fill_bools matches repeated bool" ~count:200
         QCheck.(pair (int_range 0 1000) (int_range 0 300))
         (fun (seed, len) ->
           let g = Stdx.Prng.create seed in
           let a = Array.make len false in
           Stdx.Prng.fill_bools g a;
           let g' = Stdx.Prng.create seed in
           let b = Array.init len (fun _ -> Stdx.Prng.bool g') in
           a = b && Stdx.Prng.bits64 g = Stdx.Prng.bits64 g'));
  ]

let () =
  Alcotest.run "prng"
    [
      ( "prng",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "different seeds" `Quick test_different_seeds;
          Alcotest.test_case "split independent" `Quick test_split_independent;
          Alcotest.test_case "split golden values" `Quick test_split_golden;
          Alcotest.test_case "split no advance" `Quick test_split_does_not_advance;
          Alcotest.test_case "copy" `Quick test_copy;
          Alcotest.test_case "int bounds" `Quick test_int_bounds;
          Alcotest.test_case "int invalid" `Quick test_int_invalid;
          Alcotest.test_case "int_in" `Quick test_int_in;
          Alcotest.test_case "uniformity" `Quick test_uniformity;
          Alcotest.test_case "float range" `Quick test_float_range;
          Alcotest.test_case "bernoulli rate" `Quick test_bernoulli_rate;
          Alcotest.test_case "permutation" `Quick test_permutation;
          Alcotest.test_case "shuffle preserves" `Quick test_shuffle_preserves;
          Alcotest.test_case "sample distinct" `Quick test_sample_distinct;
          Alcotest.test_case "subset mask" `Quick test_subset_mask;
        ] );
      ("prng-properties", qcheck_tests);
    ]
